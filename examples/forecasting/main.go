// Forecasting (§IV-C / Figures 8, 10, 12): predict the total execution
// time of the next k time steps from the network counters of the last m
// steps, using scalar dot-product attention over the step features. The
// example trains on short campaign runs and then forecasts a much longer
// production-style run the model has never seen.
//
//	go run ./examples/forecasting
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"dragonvar"
	"dragonvar/internal/apps"
)

func main() {
	log.SetFlags(0)
	fmt.Fprintln(os.Stderr, "simulating a 10-day campaign (a couple of minutes)...")

	machine := dragonvar.SmallMachine()
	milc := apps.Find(apps.MILC, 128)
	cfg := dragonvar.ClusterConfig{
		Machine: machine,
		Days:    10,
		Seed:    5,
		Models:  []*dragonvar.AppModel{milc},
	}
	cl, err := dragonvar.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	camp, err := cl.RunCampaign()
	if err != nil {
		log.Fatal(err)
	}
	ds := camp.Get("MILC-128")
	fmt.Printf("training data: %d MILC runs of %d steps each\n\n", len(ds.Runs), ds.Steps())

	// Ablation: how do the temporal context m and the horizon k affect
	// accuracy, and do the placement features help?
	opt := dragonvar.ForecastOptions{Folds: 3}
	for _, spec := range []dragonvar.ForecastSpec{
		{M: 10, K: 20, Features: dragonvar.FeatureSet{}},
		{M: 30, K: 20, Features: dragonvar.FeatureSet{}},
		{M: 30, K: 40, Features: dragonvar.FeatureSet{}},
		{M: 30, K: 40, Features: dragonvar.FeatureSet{Placement: true, IO: true, Sys: true}},
	} {
		res := dragonvar.Forecast(ds, spec, opt, 17)
		fmt.Printf("%-38s MAPE %5.1f%%  (%d windows)\n", spec, res.MAPE, res.Windows)
	}

	// The Figure 12 scenario: a long-running production job. The model is
	// trained only on the short campaign runs.
	fmt.Fprintln(os.Stderr, "\nsimulating a 320-step MILC run and forecasting it in segments...")
	long, err := cl.SimulateLongRun(milc, 320, camp.Days*86400/2, 23)
	if err != nil {
		log.Fatal(err)
	}
	spec := dragonvar.ForecastSpec{M: 30, K: 40, Features: dragonvar.FeatureSet{Placement: true, IO: true, Sys: true}}
	segs := dragonvar.ForecastLongRun(ds, long, spec, opt, 29)

	fmt.Printf("\n%-10s %10s %10s %8s\n", "segment", "observed", "predicted", "error")
	for _, sg := range segs {
		errPct := 100 * (sg.Predicted - sg.Observed) / sg.Observed
		fmt.Printf("%4d-%4d  %9.1fs %9.1fs %+7.1f%%  %s\n",
			sg.StartStep, sg.StartStep+spec.K, sg.Observed, sg.Predicted, errPct,
			strings.Repeat("*", int(sg.Observed/20)))
	}
}
