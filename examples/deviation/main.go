// Deviation analysis (§IV-B / Figure 9): which hardware counters predict
// that a time step deviated from the application's mean behaviour? Trains
// gradient boosted regressors with recursive feature elimination and
// prints the cross-validated relevance score of every Table II counter.
//
//	go run ./examples/deviation
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"dragonvar"
)

func main() {
	log.SetFlags(0)
	fmt.Fprintln(os.Stderr, "simulating an 8-day campaign (about a minute)...")

	var small []*dragonvar.AppModel
	for _, m := range dragonvar.AppRegistry() {
		if m.Nodes == 128 {
			small = append(small, m)
		}
	}
	camp, err := dragonvar.GenerateCampaign(dragonvar.CampaignConfig{
		Cluster: dragonvar.ClusterConfig{
			Machine: dragonvar.SmallMachine(),
			Days:    8,
			Seed:    99,
			Models:  small,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, ds := range camp.Datasets {
		if len(ds.Runs) < 4 {
			continue
		}
		// Each (run, step) pair is one sample; both the counters and the
		// step times have their per-step mean trend removed, so the model
		// explains the *deviation*, not the absolute time.
		res := dragonvar.AnalyzeDeviation(ds, dragonvar.DeviationOptions{
			Folds:      5,
			MaxSamples: 1500,
		}, 1)

		fmt.Printf("\n%s — %d samples, out-of-fold MAPE %.1f%% on absolute step times\n",
			ds.Name, res.Samples, res.MAPE)

		type scored struct {
			name string
			rel  float64
		}
		rows := make([]scored, len(res.FeatureNames))
		for i := range rows {
			rows[i] = scored{res.FeatureNames[i], res.Relevance[i]}
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].rel > rows[j].rel })
		for _, r := range rows {
			bar := strings.Repeat("#", int(r.rel*30))
			fmt.Printf("  %-14s %5.2f %s\n", r.name, r.rel, bar)
		}
	}

	fmt.Println("\nreading the bars: a score of 1.0 means the counter was part of the")
	fmt.Println("best-performing feature subset in every cross-validation fold.")
}
