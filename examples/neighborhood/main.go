// Neighborhood analysis (§IV-A / Table III): who is to blame when our jobs
// run slow? Ranks concurrently running users by the mutual information
// between their presence and run optimality.
//
//	go run ./examples/neighborhood
package main

import (
	"fmt"
	"log"
	"os"

	"dragonvar"
)

func main() {
	log.SetFlags(0)
	fmt.Fprintln(os.Stderr, "simulating a 12-day campaign (a couple of minutes)...")

	var small []*dragonvar.AppModel
	for _, m := range dragonvar.AppRegistry() {
		if m.Nodes == 128 {
			small = append(small, m)
		}
	}
	camp, err := dragonvar.GenerateCampaign(dragonvar.CampaignConfig{
		Cluster: dragonvar.ClusterConfig{
			Machine: dragonvar.SmallMachine(),
			Days:    12,
			Seed:    7,
			Models:  small,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Per dataset: mark runs optimal when faster than the mean (τ = 1),
	// then compute each qualified user's MI with optimality.
	opt := dragonvar.NeighborhoodOptions{MinNodes: 64, Tau: 1, TopK: 6}
	listCount := map[string]int{}
	for _, ds := range camp.Datasets {
		if len(ds.Runs) < 4 {
			continue
		}
		res := dragonvar.AnalyzeNeighborhood(ds, opt)
		fmt.Printf("\n%s (%d runs, %d optimal):\n", ds.Name, res.Runs, res.Optimal)
		top := res.TopUsers(opt.TopK)
		for _, u := range res.Users {
			mark := " "
			for _, t := range top {
				if t == u.User {
					mark = "*"
					listCount[u.User]++
				}
			}
			if u.MI == 0 {
				continue
			}
			fmt.Printf("  %s %-9s MI=%.4f  present in %d/%d runs\n",
				mark, u.User, u.MI, u.Present, res.Runs)
		}
	}

	// The paper's Table III keeps users that recur across datasets: those
	// are the ones whose jobs systematically hurt their neighbors.
	fmt.Println("\nusers appearing in multiple datasets' high-MI lists:")
	for user, n := range listCount {
		if n >= 2 {
			fmt.Printf("  %-9s %d lists%s\n", user, n, roleOf(user))
		}
	}
}

// roleOf annotates the synthetic heavy hitters with their paper roles.
func roleOf(user string) string {
	roles := map[string]string{
		"User-2":  "genome assembly (comm- and I/O-heavy)",
		"User-8":  "our own controlled jobs interfering with each other",
		"User-9":  "particle-mesh N-body with burst-buffer I/O",
		"User-11": "climate modeling",
		"User-6":  "material science",
		"User-10": "material science",
		"User-14": "material science",
	}
	if r, ok := roles[user]; ok {
		return "  — " + r
	}
	return ""
}
