// Quickstart: build a dragonfly machine, simulate a small controlled
// experiment campaign, and look at the variability it produced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dragonvar"
)

func main() {
	log.SetFlags(0)

	// The machine the paper measured (Cori) is available as
	// dragonvar.Cori(); the reduced machine keeps this example fast.
	machine := dragonvar.SmallMachine()
	d, err := dragonvar.NewMachine(machine)
	if err != nil {
		log.Fatal(err)
	}
	census := d.TakeCensus()
	fmt.Printf("machine: %d groups, %d routers, %d nodes (%d KNL / %d Haswell / %d I/O)\n",
		census.Groups, census.Routers, census.Nodes,
		census.KNLNodes, census.HaswellNodes, census.IONodes)
	fmt.Printf("links:   %d green (row), %d black (column), %d blue (global)\n\n",
		census.GreenLinks, census.BlackLinks, census.BlueLinks)

	// Simulate a short campaign: the four applications of Table I are
	// submitted daily into a production background of ~40 synthetic users.
	fmt.Fprintln(os.Stderr, "simulating a 6-day campaign (about a minute)...")
	models := dragonvar.AppRegistry()
	// keep the 128-node configurations; 512-node jobs need the full machine
	var small []*dragonvar.AppModel
	for _, m := range models {
		if m.Nodes == 128 {
			small = append(small, m)
		}
	}
	camp, err := dragonvar.GenerateCampaign(dragonvar.CampaignConfig{
		Cluster: dragonvar.ClusterConfig{
			Machine: machine,
			Days:    6,
			Seed:    2026,
			Models:  small,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campaign: %d instrumented runs\n\n", camp.TotalRuns())
	for _, ds := range camp.Datasets {
		if len(ds.Runs) == 0 {
			continue
		}
		best := ds.BestTotalTime()
		var worst float64
		for _, r := range ds.Runs {
			if t := r.TotalTime(); t > worst {
				worst = t
			}
		}
		fmt.Printf("%-14s %3d runs   best %6.0fs   worst %6.0fs   (%.2fx slower)\n",
			ds.Name, len(ds.Runs), best, worst, worst/best)
	}

	// Every run records per-step times and the Table II hardware counters
	// of the routers its nodes attach to.
	ds := camp.Datasets[0]
	if len(ds.Runs) > 0 {
		r := ds.Runs[0]
		fmt.Printf("\nfirst %s run: %d steps, placed on %d routers in %d groups\n",
			ds.Name, r.Steps(), r.NumRouters, r.NumGroups)
		fmt.Printf("step 0: %.1fs wall, RT_FLIT_TOT=%.3g RT_RB_STL=%.3g\n",
			r.StepTimes[0], r.Counters[0][0], r.Counters[0][3])
		fmt.Printf("neighbors during the run: %d users\n", len(r.Neighbors))
	}
}
