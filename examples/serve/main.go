// Serving (the operational end of §V/§VII): train a small forecaster,
// persist it to a content-addressed model store, load it back, serve it
// over HTTP with batching + caching, and act as a client — forecast
// twice (the second answer comes from the LRU cache), then drain
// gracefully. Everything runs in this one process; point the same client
// code at a long-running `dfserved` daemon in real use.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"dragonvar/internal/modelstore"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
	"dragonvar/internal/serve"
)

func main() {
	log.SetFlags(0)
	const m, h = 5, 3 // window: 5 steps × 3 features

	// 1. train a toy forecaster on synthetic windows
	fmt.Fprintln(os.Stderr, "training a toy forecaster...")
	s := rng.New(42)
	samples := make([]nn.Sample, 80)
	for i := range samples {
		steps := make([][]float64, m)
		for st := range steps {
			row := make([]float64, h)
			for j := range row {
				row[j] = s.Float64() * 4
			}
			steps[st] = row
		}
		samples[i] = nn.Sample{Steps: steps, Target: 10 + 2*steps[m-1][0]}
	}
	model := nn.Train(samples, nn.Config{Epochs: 10}, s)

	// 2. persist it, then load it back — the stored model predicts
	// byte-identically to the in-memory one
	dir, err := os.MkdirTemp("", "modelstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := modelstore.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	meta := modelstore.Meta{Dataset: "toy", Seed: 42, Spec: "m=5 k=1 app", M: m, K: 1,
		FeatureNames: []string{"f0", "f1", "f2"}}
	id, err := store.PutForecaster("forecast/toy", meta, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored forecast/toy -> %s\n", id[:12])
	loaded, meta, err := store.GetForecaster("forecast/toy")
	if err != nil {
		log.Fatal(err)
	}

	// 3. serve it
	srv := serve.New(serve.Config{Forecaster: loaded, ForecastMeta: meta, ForecastID: id})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// 4. be a client: same window twice — the repeat is a cache hit
	window := make([][]float64, m)
	for st := range window {
		window[st] = []float64{1.5, 0.5, 2.5}
	}
	payload, _ := json.Marshal(map[string]any{"window": window})
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/forecast", "application/json", bytes.NewReader(payload))
		if err != nil {
			log.Fatal(err)
		}
		var out struct {
			Prediction float64 `json:"prediction"`
			Cached     bool    `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("forecast #%d: prediction=%.6f cached=%v\n", i+1, out.Prediction, out.Cached)
	}
	fmt.Printf("direct model call:          %.6f (identical)\n", loaded.Predict(window))

	// 5. drain: in-flight requests finish, new ones get 503, then stop
	srv.Drain()
	httpSrv.Close()
	fmt.Println("drained cleanly")
}
