// Scheduler advisory (the paper's future work, §V-A/§VII): learn which
// users' jobs predict slowdowns from the first half of a campaign, then
// check — on the held-out second half — whether the runs the advisor would
// have delayed really were the slow ones.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"os"

	"dragonvar"
	"dragonvar/internal/advisor"
)

func main() {
	log.SetFlags(0)
	fmt.Fprintln(os.Stderr, "simulating a 16-day campaign (a couple of minutes)...")

	var small []*dragonvar.AppModel
	for _, m := range dragonvar.AppRegistry() {
		if m.Nodes == 128 {
			small = append(small, m)
		}
	}
	camp, err := dragonvar.GenerateCampaign(dragonvar.CampaignConfig{
		Cluster: dragonvar.ClusterConfig{
			Machine: dragonvar.SmallMachine(),
			Days:    16,
			Seed:    11,
			Models:  small,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Train on days 0-7: run the Table III analysis and keep the users
	// that recur across datasets' high-MI lists.
	a := advisor.Train(camp, advisor.Options{
		Neighborhood: dragonvar.NeighborhoodOptions{MinNodes: 96, TopK: 4},
		MinLists:     3,
	})
	fmt.Printf("blame list learned from the first half: %v\n", a.Blamed())

	// A decision the resource manager could make right now:
	delay, present := a.ShouldDelay([]string{"User-2", "User-17", "User-23"})
	fmt.Printf("\nincoming communication-sensitive job with User-2 running:\n")
	fmt.Printf("  delay? %v (blamed users present: %v)\n", delay, present)

	// Replay days 8-15: were the flagged runs actually slower?
	ev := advisor.Evaluate(camp, a)
	fmt.Printf("\nheld-out evaluation (%d flagged, %d admitted runs):\n", ev.Flagged, ev.Admitted)
	switch {
	case ev.Flagged == 0 || ev.Admitted == 0:
		fmt.Println("  every held-out run fell on one side of the advice — the small test")
		fmt.Println("  machine is busy enough that blamed users are (almost) always present.")
		fmt.Println("  Rerun with more days, or on the full machine, for a split evaluation.")
	default:
		fmt.Printf("  mean relative time when advisor says DELAY: %.3f\n", ev.FlaggedMeanRel)
		fmt.Printf("  mean relative time when advisor says ADMIT: %.3f\n", ev.AdmittedMeanRel)
		fmt.Printf("  signal: flagged runs were %.1f%% slower on average\n",
			100*ev.Improvement/ev.AdmittedMeanRel)
		if ev.Improvement > 0 {
			fmt.Println("\nthe blame lists carry actionable scheduling signal — delaying")
			fmt.Println("communication-sensitive jobs under these neighbors avoids slow runs.")
		} else {
			fmt.Println("\nno actionable signal at this campaign scale (try more days).")
		}
	}
}
