# dragonvar build/test/reproduction targets.

GO ?= go
CACHE ?= testdata/campaign.gob
DAYS ?= 130
SEED ?= 42

.PHONY: all build test vet race lint-docs verify bench bench-engine bench-serve campaign report plots csv clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Documentation lint: every package has a godoc comment, intra-repo
# markdown links resolve, and docs/OBSERVABILITY.md covers every
# telemetry name. (Also part of plain `make test`; split out so doc-only
# changes can be checked in isolation.)
lint-docs:
	$(GO) test -run 'TestPackageDocComments|TestMarkdownLinks|TestObservabilityDocCoverage' .

# Tier-1 verification: everything the merge gate runs.
verify: build vet lint-docs test race

# Full benchmark harness: regenerates every table/figure from the cached
# campaign (generated on first run, ~5 minutes).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Execution-engine benchmark: same campaign serial vs parallel, verifies
# byte-identical output, appends per-policy rows to BENCH_engine.json (the
# default adaptive/firstfit pair plus the minimal-routing baseline).
# Speedup tracks the host's core count (a 1-CPU container reports ~1.0x by
# construction).
bench-engine:
	$(GO) run ./cmd/dfbench -days 30 -seed $(SEED) -workers 4 -out BENCH_engine.json
	$(GO) run ./cmd/dfbench -days 30 -seed $(SEED) -workers 4 -routing minimal -out BENCH_engine.json

# Serving benchmark: train a small model set, start dfserved, drive it at
# a target rate with the built-in load generator (RPS/DURATION env vars to
# tune), drain with SIGTERM, write BENCH_serve.json.
bench-serve:
	sh scripts/bench_serve.sh

# Simulate the four-month controlled-experiment campaign.
campaign:
	$(GO) run ./cmd/dfvar campaign -days $(DAYS) -seed $(SEED) -cache $(CACHE)

# Regenerate every table and figure of the paper (text form).
report:
	$(GO) run ./cmd/dfvar report -cache $(CACHE) -days $(DAYS) -seed $(SEED) all

# Figure SVGs and CSV dumps.
plots:
	$(GO) run ./cmd/dfvar plot -cache $(CACHE) -days $(DAYS) -seed $(SEED) -out plots

csv:
	$(GO) run ./cmd/dfvar export -cache $(CACHE) -days $(DAYS) -seed $(SEED) -out csv

clean:
	rm -rf plots csv
