#!/bin/sh
# Serving benchmark: train (or load) a small model set, start dfserved,
# drive it with the built-in load generator at a target request rate —
# once with the default reused-window pool (mostly cache hits, the LRU
# path) and once with -distinct (every window unique, the uncached model
# path) — then drain the daemon with SIGTERM and require a clean exit.
# Writes BENCH_serve.json in the repo root with both rows:
#   {"cached": {...}, "uncached": {...}}
#
# Tunables: RPS (default 500), DURATION (default 10s), ADDR, WORKDIR.
set -eu

RPS=${RPS:-500}
DURATION=${DURATION:-10s}
ADDR=${ADDR:-127.0.0.1:18700}
WORKDIR=${WORKDIR:-$(mktemp -d)}
OUT=${OUT:-BENCH_serve.json}

echo "bench-serve: building dfserved..." >&2
go build -o "$WORKDIR/dfserved" ./cmd/dfserved

echo "bench-serve: starting daemon on $ADDR (training on first run)..." >&2
"$WORKDIR/dfserved" -small -fast -days 2 \
    -cache "$WORKDIR/campaign.gob" -store "$WORKDIR/models" \
    -addr "$ADDR" >"$WORKDIR/serve.log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

ready=0
for _ in $(seq 1 180); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "bench-serve: daemon died during startup:" >&2
        cat "$WORKDIR/serve.log" >&2
        exit 1
    fi
    sleep 1
done
if [ "$ready" != 1 ]; then
    echo "bench-serve: daemon never became ready:" >&2
    cat "$WORKDIR/serve.log" >&2
    exit 1
fi

echo "bench-serve: driving $RPS rps for $DURATION (cached: reused window pool)..." >&2
"$WORKDIR/dfserved" -loadgen -target "http://$ADDR" \
    -rps "$RPS" -duration "$DURATION" -out "$WORKDIR/bench_cached.json"

echo "bench-serve: driving $RPS rps for $DURATION (uncached: -distinct windows)..." >&2
"$WORKDIR/dfserved" -loadgen -distinct -target "http://$ADDR" \
    -rps "$RPS" -duration "$DURATION" -out "$WORKDIR/bench_uncached.json"

echo "bench-serve: draining daemon with SIGTERM..." >&2
kill -TERM "$PID"
if wait "$PID"; then
    trap - EXIT
else
    echo "bench-serve: daemon did not exit cleanly on SIGTERM:" >&2
    cat "$WORKDIR/serve.log" >&2
    exit 1
fi

# compose both rows into one ledger without requiring jq
{
    printf '{\n  "cached": '
    cat "$WORKDIR/bench_cached.json"
    printf ',\n  "uncached": '
    cat "$WORKDIR/bench_uncached.json"
    printf '}\n'
} >"$OUT"

echo "bench-serve: wrote $OUT (cached + uncached rows)" >&2
