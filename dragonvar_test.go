package dragonvar

import (
	"testing"

	"dragonvar/internal/topology"
)

// The facade tests exercise the public API end to end at a small scale;
// the heavy lifting is tested inside the internal packages.

func TestFacadeMachineConstruction(t *testing.T) {
	d, err := NewMachine(SmallMachine())
	if err != nil {
		t.Fatal(err)
	}
	c := d.TakeCensus()
	if c.Routers == 0 || c.BlueLinks == 0 {
		t.Fatalf("census = %+v", c)
	}
	cori := Cori()
	if cori.Groups != 34 || cori.RoutersPerGroup() != 96 {
		t.Fatalf("Cori config = %+v", cori)
	}
}

func TestFacadeAppRegistry(t *testing.T) {
	reg := AppRegistry()
	if len(reg) != 6 {
		t.Fatalf("registry = %d entries", len(reg))
	}
}

func TestFacadeCampaignAndAnalyses(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	var models []*AppModel
	for _, m := range AppRegistry() {
		if m.Nodes == 128 && (m.App.String() == "AMG" || m.App.String() == "MILC") {
			mm := *m
			if mm.Steps > 16 {
				mm.Steps = 16
			}
			models = append(models, &mm)
		}
	}
	camp, err := GenerateCampaign(CampaignConfig{
		Cluster: ClusterConfig{
			Machine:        SmallMachine(),
			Days:           4,
			Seed:           77,
			Models:         models,
			MeanRunsPerDay: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalRuns() == 0 {
		t.Fatal("no runs")
	}

	ds := camp.Get("MILC-128")
	if ds == nil || len(ds.Runs) == 0 {
		t.Skip("MILC-128 empty at this tiny scale")
	}

	// neighborhood
	n := AnalyzeNeighborhood(ds, NeighborhoodOptions{MinNodes: 32})
	if n.Runs != len(ds.Runs) {
		t.Fatal("neighborhood run count wrong")
	}

	// deviation
	dev := AnalyzeDeviation(ds, DeviationOptions{Folds: 3, MaxSamples: 300}, 1)
	if len(dev.Relevance) != 13 {
		t.Fatalf("relevance features = %d", len(dev.Relevance))
	}

	// forecasting (only when runs are long enough)
	if ds.Steps() >= 11 {
		res := Forecast(ds, ForecastSpec{M: 5, K: 5}, ForecastOptions{Folds: 2}, 1)
		if res.Windows > 0 && res.MAPE < 0 {
			t.Fatalf("forecast MAPE = %v", res.MAPE)
		}
	}
}

func TestFacadeTypesAreAliases(t *testing.T) {
	// compile-time checks that facade aliases interoperate with internals
	var cfg TopologyConfig = topology.Small()
	if _, err := NewMachine(cfg); err != nil {
		t.Fatal(err)
	}
	var fs FeatureSet
	if fs.Count() != 13 {
		t.Fatalf("base feature count = %d", fs.Count())
	}
}
