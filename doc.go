// Package dragonvar is a simulation-backed reproduction of "The Case of
// Performance Variability on Dragonfly-based Systems" (Bhatele et al.,
// IPDPS 2020): a Cray XC-style dragonfly network simulator with Aries
// hardware counters, application workload models, a production scheduler,
// and the paper's analysis stack — mutual-information neighborhood
// analysis, gradient-boosted deviation models with recursive feature
// elimination, and an attention-based execution-time forecaster.
//
// This package is the public facade: it re-exports the user-facing types
// of the internal packages. Typical use:
//
//	camp, err := dragonvar.GenerateCampaign(dragonvar.CampaignConfig{
//	    Cluster:   dragonvar.ClusterConfig{Days: 30, Seed: 42},
//	    CachePath: "campaign.gob",
//	})
//	res := dragonvar.AnalyzeDeviation(camp.Get("MILC-128"),
//	    dragonvar.DeviationOptions{}, 42)
//
// See the examples/ directory for runnable programs.
//
// # Documentation map
//
//   - docs/ARCHITECTURE.md — package layering, campaign data flow, the
//     determinism contract, and the fault-spec grammar.
//   - DESIGN.md — modelling decisions and paper fidelity notes, section
//     by section.
//   - docs/OBSERVABILITY.md — every telemetry metric and span the system
//     emits about itself, and how to read a -telemetry snapshot.
//   - EXPERIMENTS.md — paper-versus-measured for every table and figure.
//
// Every package under internal/ carries its own doc comment; the
// doc-lint test at the repository root (lint_docs_test.go) enforces that,
// checks intra-repository markdown links, and keeps
// docs/OBSERVABILITY.md in sync with the telemetry name registry.
package dragonvar
