package dragonvar

import (
	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/experiments"
	"dragonvar/internal/netsim"
	"dragonvar/internal/topology"
)

// Machine topology.
type (
	// TopologyConfig parameterizes a Cray XC-style dragonfly machine.
	TopologyConfig = topology.Config
	// Dragonfly is a wired dragonfly machine.
	Dragonfly = topology.Dragonfly
)

// Cori returns the configuration of the machine the paper measured.
func Cori() TopologyConfig { return topology.Cori() }

// SmallMachine returns a reduced configuration for experimentation.
func SmallMachine() TopologyConfig { return topology.Small() }

// NewMachine wires a dragonfly from the configuration.
func NewMachine(cfg TopologyConfig) (*Dragonfly, error) { return topology.New(cfg) }

// Network simulation.
type (
	// NetworkConfig sets the simulated interconnect's physical constants.
	NetworkConfig = netsim.Config
	// Network is the flow-level congestion simulator.
	Network = netsim.Network
)

// DefaultNetworkConfig returns the campaign's interconnect calibration.
func DefaultNetworkConfig() NetworkConfig { return netsim.DefaultConfig() }

// Applications and campaign.
type (
	// AppModel is one application/node-count configuration (Table I row).
	AppModel = apps.Model
	// ClusterConfig parameterizes the campaign: machine, background
	// workload, submission schedule.
	ClusterConfig = cluster.Config
	// Cluster is a machine with its background workload.
	Cluster = cluster.Cluster
	// Campaign is the full experiment output (the six datasets).
	Campaign = dataset.Campaign
	// Dataset is all runs of one application configuration.
	Dataset = dataset.Dataset
	// Run is one controlled experiment.
	Run = dataset.Run
)

// AppRegistry returns the six Table I dataset configurations.
func AppRegistry() []*AppModel { return apps.Registry() }

// NewCluster builds the machine and generates its background timeline.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// Analyses (the paper's contribution).
type (
	// CampaignConfig couples a cluster configuration with a cache path.
	CampaignConfig = core.CampaignConfig
	// FeatureSet selects the model feature groups (app/placement/io/sys).
	FeatureSet = counters.FeatureSet
	// NeighborhoodOptions parameterizes the §IV-A analysis.
	NeighborhoodOptions = core.NeighborhoodOptions
	// NeighborhoodResult ranks neighbors by mutual information.
	NeighborhoodResult = core.NeighborhoodResult
	// DeviationOptions parameterizes the §IV-B analysis.
	DeviationOptions = core.DeviationOptions
	// DeviationResult carries counter relevance scores and model MAPE.
	DeviationResult = core.DeviationResult
	// ForecastSpec names one forecasting experiment (m, k, features).
	ForecastSpec = core.ForecastSpec
	// ForecastOptions parameterizes forecaster training.
	ForecastOptions = core.ForecastOptions
	// ForecastResult is the cross-validated forecast error.
	ForecastResult = core.ForecastResult
	// SegmentForecast is one observed/predicted segment of a long run.
	SegmentForecast = core.SegmentForecast
	// Suite regenerates every table and figure of the paper.
	Suite = experiments.Suite
)

// GenerateCampaign simulates (or loads from cache) the controlled
// experiment campaign.
func GenerateCampaign(cfg CampaignConfig) (*Campaign, error) { return core.LoadOrGenerate(cfg) }

// LoadCampaign reads a cached campaign.
func LoadCampaign(path string) (*Campaign, error) { return dataset.Load(path) }

// AnalyzeNeighborhood ranks a dataset's concurrent users by mutual
// information with run optimality (Table III).
func AnalyzeNeighborhood(ds *Dataset, opt NeighborhoodOptions) NeighborhoodResult {
	return core.AnalyzeNeighborhood(ds, opt)
}

// AnalyzeDeviation ranks hardware counters by relevance in predicting
// per-step deviation from mean behaviour (Figure 9).
func AnalyzeDeviation(ds *Dataset, opt DeviationOptions, seed int64) DeviationResult {
	return core.AnalyzeDeviation(ds, opt, seed)
}

// Forecast trains and cross-validates the attention forecaster (Figures 8
// and 10).
func Forecast(ds *Dataset, spec ForecastSpec, opt ForecastOptions, seed int64) ForecastResult {
	return core.Forecast(ds, spec, opt, seed)
}

// ForecastLongRun predicts a long run segment by segment using a model
// trained only on campaign data (Figure 12).
func ForecastLongRun(train *Dataset, long *Run, spec ForecastSpec, opt ForecastOptions, seed int64) []SegmentForecast {
	return core.ForecastLongRun(train, long, spec, opt, seed)
}
