// Command dfserved is the forecast-serving daemon: it trains (or loads
// from a modelstore) the campaign's forecaster, deviation model, and
// scheduling advisor, and serves them over HTTP/JSON with request
// batching, prediction caching, load shedding, and graceful drain
// (internal/serve).
//
// Usage:
//
//	dfserved [-addr HOST:PORT] [-store DIR] [-dataset NAME] [-m N] [-k N]
//	         [-features placement,io,sys] [-retrain] [campaign flags]
//	    Train-or-load models and serve /v1/forecast, /v1/deviation,
//	    /v1/advisor/blame, /v1/spec, /healthz, /readyz, /metrics.
//	    SIGINT/SIGTERM drains in-flight requests and exits 0.
//	    -reload-interval polls the store refs and hot-swaps the served
//	    models when a publisher (dfvard) advances them; SIGHUP forces
//	    one poll immediately.
//
//	dfserved -loadgen [-target URL] [-rps N] [-duration D] [-distinct] [-out FILE]
//	    Drive a running daemon at a target request rate and write a
//	    latency-histogram benchmark report (make bench-serve). -distinct
//	    gives every request a unique window, measuring the uncached path.
//
//	dfserved -list [-store DIR]
//	    Print every model ref in the store.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dragonvar/internal/advisor"
	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/modelstore"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
	"dragonvar/internal/serve"
	"dragonvar/internal/sigctx"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "dfserved: %v\n", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

type options struct {
	// modes
	loadgen bool
	list    bool

	// serving
	addr           string
	store          string
	dataset        string
	m, k           int
	features       string
	retrain        bool
	maxInflight    int
	maxQueue       int
	maxBatch       int
	batchWindow    time.Duration
	cacheSize      int
	reloadInterval time.Duration
	telemetry      string
	trace          string

	// campaign (same semantics as dfvar)
	cache  string
	days   float64
	seed   int64
	small  bool
	fast   bool
	faults string

	// load generator
	target   string
	rps      float64
	duration time.Duration
	workers  int
	pool     int
	distinct bool
	out      string
}

func run(args []string) error {
	fs := flag.NewFlagSet("dfserved", flag.ContinueOnError)
	var o options
	fs.BoolVar(&o.loadgen, "loadgen", false, "run as a load generator against -target instead of serving")
	fs.BoolVar(&o.list, "list", false, "list the model store's refs and exit")

	fs.StringVar(&o.addr, "addr", "localhost:8600", "listen address (port 0 picks a free port)")
	fs.StringVar(&o.store, "store", "models", "model store directory")
	fs.StringVar(&o.dataset, "dataset", "AMG-128", "campaign dataset to serve")
	fs.IntVar(&o.m, "m", 5, "forecast window length (steps)")
	fs.IntVar(&o.k, "k", 2, "forecast horizon (steps)")
	fs.StringVar(&o.features, "features", "", `extra forecast feature groups: "placement,io,sys" (app counters always included)`)
	fs.BoolVar(&o.retrain, "retrain", false, "retrain and repoint refs even when the store already has the models")
	fs.IntVar(&o.maxInflight, "max-inflight", 0, "concurrent executing requests (0 = default)")
	fs.IntVar(&o.maxQueue, "max-queue", 0, "waiting requests before 429 shedding (0 = default)")
	fs.IntVar(&o.maxBatch, "max-batch", 0, "forecast requests coalesced per model call (0 = default)")
	fs.DurationVar(&o.batchWindow, "batch-window", 0, "batch collection window (0 = default)")
	fs.IntVar(&o.cacheSize, "cache-size", 0, "prediction cache entries (0 = default)")
	fs.DurationVar(&o.reloadInterval, "reload-interval", 0,
		"poll the model store refs this often and hot-swap the served models when one advances (0 = poll only on SIGHUP)")
	fs.StringVar(&o.telemetry, "telemetry", "", "write a telemetry snapshot to this JSON file on exit")
	fs.StringVar(&o.trace, "trace", "",
		`write the span stream (per-request serve/request spans) to this JSONL file on exit (stitch with "dfvar trace")`)

	fs.StringVar(&o.cache, "cache", "campaign.gob", "campaign cache file (empty to disable)")
	fs.Float64Var(&o.days, "days", 130, "campaign length in days (training only)")
	fs.Int64Var(&o.seed, "seed", 42, "campaign seed")
	fs.BoolVar(&o.small, "small", false, "use the reduced test machine instead of Cori")
	fs.BoolVar(&o.fast, "fast", false, "faster, less accurate training settings")
	fs.StringVar(&o.faults, "faults", "", "fault-injection spec for campaign generation (see DESIGN.md)")

	fs.StringVar(&o.target, "target", "http://localhost:8600", "loadgen: base URL of the daemon")
	fs.Float64Var(&o.rps, "rps", 500, "loadgen: target requests per second")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "loadgen: how long to drive load")
	fs.IntVar(&o.workers, "workers", 64, "loadgen: concurrent request workers")
	fs.IntVar(&o.pool, "pool", 64, "loadgen: distinct request windows (reuse exercises the cache)")
	fs.BoolVar(&o.distinct, "distinct", false,
		"loadgen: use a fresh window for every request (cache-busting: measures the uncached model path)")
	fs.StringVar(&o.out, "out", "", "loadgen: write the JSON report here (default stdout)")

	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	switch {
	case o.list:
		return runList(o)
	case o.loadgen:
		return runLoadgen(o)
	default:
		return runServe(o)
	}
}

func runList(o options) error {
	st, err := modelstore.Open(o.store)
	if err != nil {
		return err
	}
	entries, err := st.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Printf("store %s is empty\n", o.store)
		return nil
	}
	for _, e := range entries {
		fmt.Printf("%-40s %s  kind=%s dataset=%s seed=%d", e.Name, e.ID[:12], e.Meta.Kind, e.Meta.Dataset, e.Meta.Seed)
		if e.Meta.Spec != "" {
			fmt.Printf(" spec=%q", e.Meta.Spec)
		}
		fmt.Println()
	}
	return nil
}

// parseFeatures turns "placement,io" into a FeatureSet (app is implicit).
func parseFeatures(s string) (counters.FeatureSet, error) {
	var f counters.FeatureSet
	if s == "" {
		return f, nil
	}
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '+' || r == ' ' }) {
		switch tok {
		case "app": // always on
		case "placement":
			f.Placement = true
		case "io":
			f.IO = true
		case "sys":
			f.Sys = true
		default:
			return f, fmt.Errorf("unknown feature group %q (want placement, io, sys)", tok)
		}
	}
	return f, nil
}

// refNames derives the store ref names for one serving configuration.
func refNames(o options, spec core.ForecastSpec) (forecast, deviation, adv string) {
	slug := strings.ReplaceAll(spec.Features.String(), " + ", "+")
	forecast = fmt.Sprintf("forecast/%s/m%d-k%d-%s", o.dataset, o.m, o.k, slug)
	deviation = fmt.Sprintf("deviation/%s", o.dataset)
	adv = fmt.Sprintf("advisor/seed%d", o.seed)
	return
}

// loadCampaign lazily loads (or generates) the training campaign; the
// first call pays, later calls reuse. When every model is already in the
// store, no campaign is touched at all.
type campaignLoader struct {
	o    options
	camp *dataset.Campaign
}

func (cl *campaignLoader) get(ctx context.Context) (*dataset.Campaign, error) {
	if cl.camp != nil {
		return cl.camp, nil
	}
	o := cl.o
	fmt.Fprintf(os.Stderr, "dfserved: loading campaign (days=%g seed=%d cache=%q)...\n", o.days, o.seed, o.cache)
	ccfg := core.CampaignConfig{CachePath: o.cache}
	ccfg.Cluster.Days = o.days
	ccfg.Cluster.Seed = o.seed
	ccfg.Cluster.FaultSpec = o.faults
	if o.small {
		ccfg.Cluster.Machine = topology.Small()
	}
	camp, err := core.LoadOrGenerateCtx(ctx, ccfg)
	if err != nil {
		return nil, err
	}
	cl.camp = camp
	return camp, nil
}

func (cl *campaignLoader) getDataset(ctx context.Context, name string) (*dataset.Dataset, error) {
	camp, err := cl.get(ctx)
	if err != nil {
		return nil, err
	}
	ds := camp.Get(name)
	if ds == nil {
		var names []string
		for _, d := range camp.Datasets {
			names = append(names, d.Name)
		}
		return nil, fmt.Errorf("campaign has no dataset %q (have: %s)", name, strings.Join(names, ", "))
	}
	return ds, nil
}

// trainOptions maps -fast onto the training knobs the way dfvar's
// experiment suite does: fewer epochs and smaller sample caps.
func trainOptions(o options) (core.ForecastOptions, core.DeviationOptions) {
	var fo core.ForecastOptions
	var do core.DeviationOptions
	if o.fast {
		fo.NN = nn.Config{EmbedDim: 8, HiddenDim: 16, Epochs: 10, BatchSize: 16,
			LearningRate: 0.01, UseAttention: true, MaxSamples: 400}
		do.MaxSamples = 800
	}
	return fo, do
}

// provision returns a fully-populated serve.Config, training whatever the
// store is missing (or everything, with -retrain) and loading the rest.
func provision(ctx context.Context, o options, st *modelstore.Store) (serve.Config, error) {
	spec := core.ForecastSpec{M: o.m, K: o.k}
	var err error
	if spec.Features, err = parseFeatures(o.features); err != nil {
		return serve.Config{}, err
	}
	fRef, dRef, aRef := refNames(o, spec)
	cl := &campaignLoader{o: o}
	fo, do := trainOptions(o)
	cfg := serve.Config{
		MaxInflight: o.maxInflight, MaxQueue: o.maxQueue, MaxBatch: o.maxBatch,
		BatchWindow: o.batchWindow, CacheSize: o.cacheSize,
	}

	if o.retrain || !st.Has(fRef) {
		ds, err := cl.getDataset(ctx, o.dataset)
		if err != nil {
			return cfg, err
		}
		fmt.Fprintf(os.Stderr, "dfserved: training forecaster %s...\n", fRef)
		model, windows, err := core.TrainServingForecaster(ds, spec, fo, o.seed)
		if err != nil {
			return cfg, err
		}
		meta := modelstore.Meta{Dataset: o.dataset, Seed: o.seed, Spec: spec.String(),
			M: o.m, K: o.k, FeatureNames: spec.Features.Names()}
		id, err := st.PutForecaster(fRef, meta, model)
		if err != nil {
			return cfg, err
		}
		fmt.Fprintf(os.Stderr, "dfserved: stored %s -> %s (%d windows)\n", fRef, id[:12], windows)
	}
	if cfg.Forecaster, cfg.ForecastMeta, err = st.GetForecaster(fRef); err != nil {
		return cfg, err
	}
	if cfg.ForecastID, _, err = st.Resolve(fRef); err != nil {
		return cfg, err
	}

	if o.retrain || !st.Has(dRef) {
		ds, err := cl.getDataset(ctx, o.dataset)
		if err != nil {
			return cfg, err
		}
		fmt.Fprintf(os.Stderr, "dfserved: training deviation model %s...\n", dRef)
		model, samples, err := core.TrainServingDeviation(ds, do, o.seed)
		if err != nil {
			return cfg, err
		}
		meta := modelstore.Meta{Dataset: o.dataset, Seed: o.seed,
			FeatureNames: core.DeviationFeatureNames()}
		id, err := st.PutGBR(dRef, meta, model)
		if err != nil {
			return cfg, err
		}
		fmt.Fprintf(os.Stderr, "dfserved: stored %s -> %s (%d samples)\n", dRef, id[:12], samples)
	}
	if cfg.GBR, cfg.GBRMeta, err = st.GetGBR(dRef); err != nil {
		return cfg, err
	}
	if cfg.GBRID, _, err = st.Resolve(dRef); err != nil {
		return cfg, err
	}

	if o.retrain || !st.Has(aRef) {
		camp, err := cl.get(ctx)
		if err != nil {
			return cfg, err
		}
		fmt.Fprintf(os.Stderr, "dfserved: training advisor %s...\n", aRef)
		adv := advisor.Train(camp, advisor.Options{})
		id, err := st.PutAdvisor(aRef, modelstore.Meta{Seed: o.seed}, adv)
		if err != nil {
			return cfg, err
		}
		fmt.Fprintf(os.Stderr, "dfserved: stored %s -> %s (%d blamed users)\n", aRef, id[:12], len(adv.Blamed()))
	}
	if cfg.Adv, _, err = st.GetAdvisor(aRef); err != nil {
		return cfg, err
	}
	if cfg.AdvisorID, _, err = st.Resolve(aRef); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// startReloader watches the model store refs and hot-swaps the served
// models when any of them advances — on every -reload-interval tick, and
// on SIGHUP regardless of the interval. This is how a replica picks up
// dfvard's retrains without a restart. The returned stop function is
// idempotent to call once and blocks until the watcher goroutine exits.
func startReloader(ctx context.Context, o options, st *modelstore.Store, srv *serve.Server, fRef, dRef, aRef string) func() {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		var tick <-chan time.Time
		if o.reloadInterval > 0 {
			t := time.NewTicker(o.reloadInterval)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-tick:
			case <-hup:
			}
			if err := maybeReload(st, srv, fRef, dRef, aRef); err != nil {
				fmt.Fprintf(os.Stderr, "dfserved: reload: %v\n", err)
			}
		}
	}()
	return func() {
		signal.Stop(hup)
		close(done)
		<-stopped
	}
}

// maybeReload compares the store's current ref ids against the served
// ones and atomically swaps in a freshly loaded model set when any ref
// advanced. A publish landing mid-load just means the next poll swaps
// again — each swap is internally consistent.
func maybeReload(st *modelstore.Store, srv *serve.Server, fRef, dRef, aRef string) error {
	curF, curD, curA := srv.ModelIDs()
	newF, _, err := st.Resolve(fRef)
	if err != nil {
		return err
	}
	newD, _, err := st.Resolve(dRef)
	if err != nil {
		return err
	}
	newA, _, err := st.Resolve(aRef)
	if err != nil {
		return err
	}
	if newF == curF && newD == curD && newA == curA {
		return nil
	}
	var m serve.Models
	if m.Forecaster, m.ForecastMeta, err = st.GetForecaster(fRef); err != nil {
		return err
	}
	m.ForecastID = newF
	if m.GBR, m.GBRMeta, err = st.GetGBR(dRef); err != nil {
		return err
	}
	m.GBRID = newD
	if m.Adv, _, err = st.GetAdvisor(aRef); err != nil {
		return err
	}
	m.AdvisorID = newA
	if err := srv.Swap(m); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dfserved: reloaded models (forecast %.12s deviation %.12s advisor %.12s)\n",
		newF, newD, newA)
	return nil
}

func runServe(o options) error {
	// the daemon is always instrumented: /metrics is part of its API
	reg := telemetry.New()
	reg.SetRole("dfserved")
	telemetry.Enable(reg)
	defer func() {
		if err := telemetry.Flush(o.telemetry); err != nil {
			fmt.Fprintf(os.Stderr, "dfserved: %v\n", err)
		}
		if err := telemetry.FlushTrace(o.trace); err != nil {
			fmt.Fprintf(os.Stderr, "dfserved: %v\n", err)
		}
	}()
	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()

	st, err := modelstore.Open(o.store)
	if err != nil {
		return err
	}
	cfg, err := provision(ctx, o, st)
	if err != nil {
		return err
	}
	srv := serve.New(cfg)
	defer srv.Drain()

	spec := core.ForecastSpec{M: o.m, K: o.k}
	if spec.Features, err = parseFeatures(o.features); err != nil {
		return err
	}
	fRef, dRef, aRef := refNames(o, spec)
	stopReload := startReloader(ctx, o, st, srv, fRef, dRef, aRef)
	defer stopReload()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Printf("dfserved: serving %s (m=%d k=%d) on http://%s\n", o.dataset, o.m, o.k, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "dfserved: draining...")
	srv.Drain() // in-flight requests complete; new ones get 503
	shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	fmt.Fprintln(os.Stderr, "dfserved: drained, bye")
	return nil
}

// --- load generator ---

// specProbe is the slice of /v1/spec the generator needs.
type specProbe struct {
	M              int      `json:"m"`
	WindowFeatures []string `json:"window_features"`
}

// benchReport is the BENCH_serve.json schema.
type benchReport struct {
	Target      string  `json:"target"`
	TargetRPS   float64 `json:"target_rps"`
	DurationSec float64 `json:"duration_seconds"`
	Distinct    bool    `json:"distinct,omitempty"` // cache-busting mode: every window unique
	Sent        int64   `json:"sent"`
	OK          int64   `json:"ok"`
	Cached      int64   `json:"cached"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`

	Latency struct {
		MeanSec float64 `json:"mean"`
		P50Sec  float64 `json:"p50"`
		P90Sec  float64 `json:"p90"`
		P99Sec  float64 `json:"p99"`
		MaxSec  float64 `json:"max"`
	} `json:"latency_seconds"`
	Histogram []benchBucket `json:"latency_histogram"`
}

type benchBucket struct {
	LE    float64 `json:"le"` // upper bound in seconds; +Inf bucket omitted
	Count int64   `json:"count"`
}

func runLoadgen(o options) error {
	base := strings.TrimSuffix(o.target, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	resp, err := client.Get(base + "/v1/spec")
	if err != nil {
		return fmt.Errorf("probe %s/v1/spec: %w", base, err)
	}
	var spec specProbe
	err = json.NewDecoder(resp.Body).Decode(&spec)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("probe %s/v1/spec: %w", base, err)
	}
	if spec.M <= 0 || len(spec.WindowFeatures) == 0 {
		return fmt.Errorf("daemon at %s serves no forecaster (spec: m=%d, %d features)",
			base, spec.M, len(spec.WindowFeatures))
	}

	if o.rps <= 0 {
		return fmt.Errorf("-rps must be positive")
	}
	interval := time.Duration(float64(time.Second) / o.rps)
	total := int(o.rps * o.duration.Seconds())

	// a fixed pool of synthetic windows: distinct enough to exercise the
	// model, reused enough to exercise the cache. -distinct gives every
	// request its own window instead, so no request can be answered from
	// the prediction cache — the uncached model path under load.
	if o.pool <= 0 {
		o.pool = 64
	}
	if o.distinct {
		o.pool = total
	}
	// distinct mode draws from its own stream so its windows never collide
	// with a pooled run's against the same daemon (same seed, shared RNG
	// prefix would re-hit the cache for the first -pool requests)
	label := "loadgen"
	if o.distinct {
		label = "loadgen-distinct"
	}
	s := rng.NewLabeled(o.seed, label)
	payloads := make([][]byte, o.pool)
	for i := range payloads {
		w := make([][]float64, spec.M)
		for st := range w {
			row := make([]float64, len(spec.WindowFeatures))
			for j := range row {
				row[j] = s.Float64() * 4
			}
			w[st] = row
		}
		payloads[i], _ = json.Marshal(map[string]any{"window": w})
	}
	mode := "cached"
	if o.distinct {
		mode = "distinct (cache-busting)"
	}
	fmt.Fprintf(os.Stderr, "dfserved: loadgen %g rps for %v against %s (%d requests, %s windows)...\n",
		o.rps, o.duration, base, total, mode)

	var sent, ok, cached, shed, errs atomic.Int64
	lats := make([]float64, 0, total)
	var latMu sync.Mutex

	work := make(chan []byte, o.workers)
	var wg sync.WaitGroup
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for payload := range work {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/forecast", "application/json",
					strings.NewReader(string(payload)))
				lat := time.Since(t0).Seconds()
				if err != nil {
					errs.Add(1)
					continue
				}
				var fr struct {
					Cached bool `json:"cached"`
				}
				json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&fr)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
					if fr.Cached {
						cached.Add(1)
					}
					latMu.Lock()
					lats = append(lats, lat)
					latMu.Unlock()
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	tick := time.NewTicker(interval)
	for i := 0; i < total; i++ {
		<-tick.C
		select {
		case work <- payloads[i%len(payloads)]:
			sent.Add(1)
		default:
			// all workers busy and the hand-off buffer is full: the target
			// can't absorb the offered rate; count it against the generator
			shed.Add(1)
		}
	}
	tick.Stop()
	close(work)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := benchReport{
		Target:      base,
		TargetRPS:   o.rps,
		DurationSec: o.duration.Seconds(),
		Distinct:    o.distinct,
		Sent:        sent.Load(),
		OK:          ok.Load(),
		Cached:      cached.Load(),
		Shed:        shed.Load(),
		Errors:      errs.Load(),
	}
	if elapsed > 0 {
		rep.AchievedRPS = float64(ok.Load()) / elapsed
	}
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		var sum float64
		for _, l := range lats {
			sum += l
		}
		rep.Latency.MeanSec = sum / float64(n)
		rep.Latency.P50Sec = lats[n/2]
		rep.Latency.P90Sec = lats[min(n-1, n*90/100)]
		rep.Latency.P99Sec = lats[min(n-1, n*99/100)]
		rep.Latency.MaxSec = lats[n-1]
	}
	rep.Histogram = make([]benchBucket, len(telemetry.LatencyBuckets))
	for i, le := range telemetry.LatencyBuckets {
		rep.Histogram[i].LE = le
	}
	for _, l := range lats {
		for i, le := range telemetry.LatencyBuckets {
			if l <= le {
				rep.Histogram[i].Count++
				break
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if o.out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(o.out, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dfserved: loadgen: %d ok (%d cached, %.0f rps achieved), %d shed, %d errors; p50=%.2gs p99=%.2gs -> %s\n",
		rep.OK, rep.Cached, rep.AchievedRPS, rep.Shed, rep.Errors,
		rep.Latency.P50Sec, rep.Latency.P99Sec, o.out)
	if rep.OK == 0 {
		return fmt.Errorf("no request succeeded")
	}
	return nil
}
