package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dragonvar/internal/telemetry"
)

// cmdTrace stitches span-stream files written by -trace in several
// processes (coordinator + workers, daemon + load generator) into one
// cross-process timeline: a process table, the merged span tree's roots
// and cross-process edges, a flame summary, and the coordinator-wait vs
// worker-compute vs network/retry breakdown. Orphaned spans — a parent
// recorded in no input file — are flagged, because they usually mean a
// process's trace file was forgotten.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	out := fs.String("out", "",
		"also write the merged Chrome trace-event view (open in chrome://tracing or Perfetto) to this file")
	jsonOut := fs.String("json", "",
		`also write the machine-readable stitch summary to this JSON file ("-" = stdout instead of the report)`)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return usageError{fmt.Errorf("trace: need at least one span file (written by -trace FILE)")}
	}
	files := make([]*telemetry.TraceFile, 0, fs.NArg())
	for _, path := range fs.Args() {
		tf, err := telemetry.ReadTraceFile(path)
		if err != nil {
			return err
		}
		files = append(files, tf)
	}
	st := telemetry.StitchTraces(files)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := st.MergedTraceEvents(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dfvar: merged trace-event view written to %s\n", *out)
	}
	if *jsonOut != "" {
		enc := func(f *os.File) error {
			e := json.NewEncoder(f)
			e.SetIndent("", "  ")
			return e.Encode(st.Summary())
		}
		if *jsonOut == "-" {
			return enc(os.Stdout)
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := enc(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dfvar: stitch summary written to %s\n", *jsonOut)
	}
	fmt.Print(st.Report())
	return nil
}
