// Command dfvar drives the dragonfly performance-variability study: it
// generates the controlled-experiment campaign (§III), runs the analyses
// (§IV–V), and regenerates every table and figure of the paper.
//
// Usage:
//
//	dfvar campaign [-days N] [-seed S] [-cache FILE] [-small] [-faults SPEC]
//	    Simulate the campaign and cache it. -faults injects link/router
//	    failures, node drains, and counter-sampler dropouts (DESIGN.md).
//
//	dfvar report [-cache FILE] [-days N] [-seed S] [-small] [-fast] [artifact ...]
//	    Regenerate artifacts: table1 table2 table3 fig1 fig2 fig3 fig4 fig5
//	    fig7 fig8 fig9 fig10 fig11 fig12, or "all" (default: the cheap ones).
//
//	dfvar census [-small]
//	    Print the machine census (Figure 2) without simulating anything.
//
//	dfvar campaign -distribute ADDR / dfvar worker -join URL
//	    Distributed campaign execution: the coordinator serves work units
//	    to worker processes with lease-based re-dispatch and checkpoint
//	    resume (internal/dist); output is byte-identical to a local run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/dist"
	"dragonvar/internal/engine"
	"dragonvar/internal/experiments"
	"dragonvar/internal/export"
	"dragonvar/internal/monitor"
	"dragonvar/internal/routing"
	"dragonvar/internal/sigctx"
	"dragonvar/internal/slurm"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// first SIGINT/SIGTERM cancels ctx for a graceful shutdown (in-flight
	// campaign results are flushed as a partial cache); a second one kills
	// the process the default way
	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()
	var err error
	switch os.Args[1] {
	case "campaign":
		err = cmdCampaign(ctx, os.Args[2:])
	case "worker":
		err = cmdWorker(ctx, os.Args[2:])
	case "report":
		err = cmdReport(ctx, os.Args[2:])
	case "census":
		err = cmdCensus(os.Args[2:])
	case "export":
		err = cmdExport(ctx, os.Args[2:])
	case "plot":
		err = cmdPlot(ctx, os.Args[2:])
	case "ab":
		err = cmdAB(ctx, os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dfvar: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "dfvar: %v\n", err)
		if errors.Is(err, context.Canceled) {
			os.Exit(130) // interrupted, the shell convention
		}
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks bad command-line input so main exits 2 (usage) instead
// of 1 (runtime failure).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// parseFlags parses with ContinueOnError semantics: -h propagates
// flag.ErrHelp (exit 0), anything else becomes a wrapped usage error.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{fmt.Errorf("%s: %w", fs.Name(), err)}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dfvar campaign [-days N] [-seed S] [-cache FILE] [-small] [-faults SPEC] [-workers N] [-telemetry FILE] [-trace FILE] [-pprof ADDR] [-monitor FILE|-]
                 [-distribute ADDR] [-dist-checkpoint FILE] [-dist-lease DUR]
  dfvar worker   -join URL [-name NAME] [-telemetry FILE] [-trace FILE] [-pprof ADDR]
  dfvar report   [-cache FILE] [-days N] [-seed S] [-small] [-fast] [-faults SPEC] [-workers N] [-telemetry FILE] [-pprof ADDR] [-monitor FILE|-] [artifact ...]
  dfvar census   [-small]
  dfvar export   [-cache FILE] [-days N] [-seed S] [-small] -out DIR
  dfvar plot     [-cache FILE] [-days N] [-seed S] [-small] [-fast] -out DIR
  dfvar ab       [-days N] [-seed S] [-small] [-faults SPEC] -arms R/P,R/P[,...] [-out FILE] [-verify] [-blame]
  dfvar trace    [-out FILE.chrome.json] [-json FILE|-] SPANFILE [SPANFILE ...]
artifacts: table1 table2 table3 fig1 fig2 fig3 fig4 fig5 fig7 fig8 fig9 fig10 fig11 fig12 all
routing policies: minimal, valiant, adaptive (UGAL-style), feedback (stall-EWMA
  biased); placement policies: firstfit, compact, interference. -routing and
  -placement (default $DRAGONVAR_ROUTING / $DRAGONVAR_PLACEMENT) select them for
  campaign/report/export/plot; "dfvar ab" reruns the same seeded campaign under
  each -arms pair and prints per-dataset variability distributions with deltas
  (-verify additionally proves each arm's serial == parallel byte-identity).
fault specs: links=N routers=N drains=N dropouts=N outage=SEC droplen=SEC,
  link:ID@T0-T1[*FRAC] router:ID@T0-T1 drain:ROUTER@T0-T1 dropout@T0-T1 (comma-separated)
-workers 0 (the default) uses $DRAGONVAR_WORKERS, falling back to GOMAXPROCS;
  any worker count produces byte-identical output. SIGINT cancels gracefully,
  flushing completed campaign runs to the cache as a partial dataset.
-telemetry FILE writes a metrics + span-trace snapshot (docs/OBSERVABILITY.md)
  on exit; -pprof ADDR serves net/http/pprof plus live /telemetry and /metrics
  (OpenMetrics) endpoints; -monitor FILE streams network-weather anomaly events
  as JSONL while the campaign simulates ("-" = stderr) and prints a weather
  report. All three are observation-only: output bytes are identical on or off.
-trace FILE streams every finished span (with trace/span IDs and process
  identity) to a JSONL file on exit, plus a Chrome trace-event view at
  FILE.chrome.json; spans propagate across processes via W3C traceparent, and
  "dfvar trace" stitches the files from a coordinator and its workers into one
  cross-process timeline with a wait/compute/network breakdown.
-distribute ADDR serves a campaign to "dfvar worker" processes instead of
  simulating locally: workers lease runs, crashed or hung workers are detected
  and their work re-dispatched, and with -dist-checkpoint a killed coordinator
  resumes where it stopped. The result is byte-identical to a local run.`)
}

// commonFlags defines the flags shared by campaign and report.
type commonFlags struct {
	days      float64
	seed      int64
	cache     string
	small     bool
	fast      bool
	faults    string
	routing   string
	placement string
	workers   int
	telemetry string
	trace     string
	pprof     string
	monitor   string
}

func addCommon(fs *flag.FlagSet, c *commonFlags) {
	fs.Float64Var(&c.days, "days", 130, "campaign length in days")
	fs.Int64Var(&c.seed, "seed", 42, "campaign seed")
	fs.StringVar(&c.cache, "cache", "campaign.gob", "campaign cache file (empty to disable)")
	fs.BoolVar(&c.small, "small", false, "use the reduced test machine instead of Cori")
	fs.BoolVar(&c.fast, "fast", false, "faster, less accurate ML settings")
	fs.StringVar(&c.faults, "faults", "", `fault-injection spec, e.g. "links=2,routers=1,dropouts=2" (see DESIGN.md)`)
	fs.StringVar(&c.routing, "routing", os.Getenv(cluster.EnvRouting),
		"routing policy: "+strings.Join(routing.PolicyNames(), ", ")+
			" (default $"+cluster.EnvRouting+" or the engine default, adaptive)")
	fs.StringVar(&c.placement, "placement", os.Getenv(cluster.EnvPlacement),
		"placement policy: "+strings.Join(slurm.PlacementPolicyNames(), ", ")+
			" (default $"+cluster.EnvPlacement+" or firstfit)")
	fs.IntVar(&c.workers, "workers", 0,
		"simulation/analysis worker count (0 = $"+engine.EnvWorkers+" or GOMAXPROCS); results are identical for any value")
	fs.StringVar(&c.telemetry, "telemetry", "",
		"write a telemetry snapshot (metrics + span trace, docs/OBSERVABILITY.md) to this JSON file on exit")
	fs.StringVar(&c.trace, "trace", "",
		`write the span stream to this JSONL file on exit (plus a Chrome trace-event view at FILE`+telemetry.TraceEventsSuffix+`); stitch files from several processes with "dfvar trace"`)
	fs.StringVar(&c.pprof, "pprof", "",
		"serve net/http/pprof and a live /telemetry + /metrics endpoint on this address (e.g. localhost:6060)")
	fs.StringVar(&c.monitor, "monitor", "",
		`attach the streaming network-weather monitor to the simulation; anomaly events go to this JSONL file ("-" = stderr)`)
}

// attachMonitor wires a live network-weather monitor into the campaign's
// cluster config when -monitor was given. Like telemetry it is observation-
// only: campaign bytes are identical with it on or off. The returned finish
// prints the weather report to stderr and closes the event stream; call it
// after the simulation. Without the flag both are cheap no-ops.
func (c commonFlags) attachMonitor(cfg *cluster.Config) (finish func(), err error) {
	if c.monitor == "" {
		return func() {}, nil
	}
	var events io.Writer
	var closer io.Closer
	if c.monitor == "-" {
		events = os.Stderr
	} else {
		f, err := os.Create(c.monitor)
		if err != nil {
			return nil, err
		}
		events = f
		closer = f
	}
	topo := topology.Cori()
	if c.small {
		topo = topology.Small()
	}
	// DetectTimeGaps stays off: parallel campaign rounds interleave runs out
	// of time order, so only explicit missing markers count as gaps.
	m, err := monitor.New(monitor.Config{
		NumRouters:      topo.NumRouters(),
		SeriesPerRouter: cluster.LDMSSeriesPerRouter,
		RoutersPerGroup: topo.RoutersPerGroup(),
		HeatmapBin:      3600,
		Events:          events,
		Source:          "campaign",
	})
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, err
	}
	cfg.Monitor = m
	return func() {
		if err := m.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "dfvar: monitor: %v\n", err)
		}
		if s := m.Summary(); s.Samples > 0 {
			fmt.Fprint(os.Stderr, m.Report(5))
		} else {
			fmt.Fprintln(os.Stderr, "network-weather monitor: no rounds observed (campaign loaded from cache?)")
		}
		if closer != nil {
			if err := closer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dfvar: monitor: %v\n", err)
			}
		}
	}, nil
}

// startTelemetry installs the process-wide registry when -telemetry,
// -trace, or -pprof was given, stamped with the process role so stitched
// multi-process traces attribute spans. It must run before any
// instrumented component is constructed (handles are captured at
// construction time), and the returned flush must be deferred so the
// snapshot and span stream are written on every exit path — including the
// graceful-cancellation return after SIGINT.
func (c commonFlags) startTelemetry(role string) (flush func(), err error) {
	if c.telemetry != "" || c.trace != "" || c.pprof != "" {
		reg := telemetry.New()
		reg.SetRole(role)
		telemetry.Enable(reg)
	}
	if c.pprof != "" {
		if err := telemetry.ServePprof(c.pprof); err != nil {
			return nil, err
		}
	}
	path, tracePath := c.telemetry, c.trace
	return func() {
		if err := telemetry.Flush(path); err != nil {
			fmt.Fprintf(os.Stderr, "dfvar: %v\n", err)
		}
		if err := telemetry.FlushTrace(tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "dfvar: %v\n", err)
		}
	}, nil
}

// checkPolicies validates -routing/-placement (or their environment
// defaults) up front, so a typo is a usage error instead of a runtime one.
func (c commonFlags) checkPolicies() error {
	if c.routing != "" && !routing.ValidPolicy(c.routing) {
		return usageError{fmt.Errorf("unknown routing policy %q (have %s)",
			c.routing, strings.Join(routing.PolicyNames(), ", "))}
	}
	if c.placement != "" && !slurm.ValidPlacementPolicy(c.placement) {
		return usageError{fmt.Errorf("unknown placement policy %q (have %s)",
			c.placement, strings.Join(slurm.PlacementPolicyNames(), ", "))}
	}
	return nil
}

func (c commonFlags) clusterConfig() cluster.Config {
	cfg := cluster.Config{Days: c.days, Seed: c.seed, FaultSpec: c.faults, Workers: c.workers}
	cfg.Net.Routing = c.routing
	cfg.Placement = c.placement
	if c.small {
		cfg.Machine = topology.Small()
	}
	cfg.Progress = func(done, total int) {
		if done%25 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\rsimulating runs: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	return cfg
}

func cmdCampaign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var c commonFlags
	addCommon(fs, &c)
	distribute := fs.String("distribute", "",
		"coordinate a distributed campaign on this listen address (e.g. :9631) instead of simulating locally; run \"dfvar worker -join\" processes against it")
	distCheckpoint := fs.String("dist-checkpoint", "",
		"spill completed work units to this file so a killed coordinator resumes instead of restarting (removed on success)")
	distLease := fs.Duration("dist-lease", 0,
		"distributed work-unit lease duration before re-dispatch (default 2m)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := c.checkPolicies(); err != nil {
		return err
	}
	role := "dfvar"
	if *distribute != "" {
		role = "coordinator"
	}
	flush, err := c.startTelemetry(role)
	if err != nil {
		return err
	}
	defer flush()

	ccfg := c.clusterConfig()
	if *distribute != "" {
		if c.monitor != "" {
			return usageError{fmt.Errorf("campaign: -monitor observes local simulation and cannot be combined with -distribute")}
		}
		return runDistributed(ctx, c, ccfg, *distribute, *distCheckpoint, *distLease)
	}
	finish, err := c.attachMonitor(&ccfg)
	if err != nil {
		return err
	}

	start := time.Now()
	camp, err := core.LoadOrGenerateCtx(ctx, core.CampaignConfig{Cluster: ccfg, CachePath: c.cache})
	if err != nil {
		return err
	}
	finish()
	fmt.Printf("campaign: %d runs across %d datasets in %v\n",
		camp.TotalRuns(), len(camp.Datasets), time.Since(start).Round(time.Second))
	for _, ds := range camp.Datasets {
		fmt.Printf("  %-14s %d runs\n", ds.Name, len(ds.Runs))
	}
	if camp.Faults != "" {
		fmt.Printf("faults %q: %d requeues, %.2f%% of samples lost to dropouts\n",
			camp.Faults, camp.TotalRequeues(), 100*camp.GapFraction())
	}
	if c.cache != "" {
		fmt.Printf("cached to %s\n", c.cache)
	}
	return nil
}

// runDistributed executes the campaign through the internal/dist
// coordinator: workers lease units over HTTP, crashes re-dispatch, and the
// merged result — byte-identical to a local run — lands in the same cache.
func runDistributed(ctx context.Context, c commonFlags, ccfg cluster.Config, addr, checkpoint string, lease time.Duration) error {
	co, err := dist.NewCoordinator(dist.Config{
		Cluster:        ccfg,
		Addr:           addr,
		CheckpointPath: checkpoint,
		Lease:          lease,
		Log:            os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "coordinating %d work units on %s; join workers with:\n  dfvar worker -join http://%s\n",
		co.NumUnits(), co.Addr(), co.Addr())
	start := time.Now()
	camp, err := co.Run(ctx)
	if err != nil {
		// mirror the local path: an interrupted campaign still flushes
		// completed runs as an inspectable partial cache
		if camp != nil && camp.Partial && c.cache != "" && camp.TotalRuns() > 0 {
			if serr := camp.Save(c.cache); serr != nil {
				fmt.Fprintf(os.Stderr, "dfvar: could not flush partial campaign: %v\n", serr)
			} else {
				fmt.Fprintf(os.Stderr, "dfvar: interrupted; flushed partial campaign (%d runs) to %s\n",
					camp.TotalRuns(), c.cache)
			}
		}
		return err
	}
	fmt.Printf("campaign: %d runs across %d datasets in %v (distributed)\n",
		camp.TotalRuns(), len(camp.Datasets), time.Since(start).Round(time.Second))
	for _, ds := range camp.Datasets {
		fmt.Printf("  %-14s %d runs\n", ds.Name, len(ds.Runs))
	}
	if camp.Faults != "" {
		fmt.Printf("faults %q: %d requeues, %.2f%% of samples lost to dropouts\n",
			camp.Faults, camp.TotalRequeues(), 100*camp.GapFraction())
	}
	if c.cache != "" {
		if err := camp.Save(c.cache); err != nil {
			return fmt.Errorf("cache campaign: %w", err)
		}
		fmt.Printf("cached to %s\n", c.cache)
	}
	return nil
}

// cmdWorker joins a coordinator and simulates leased work units until the
// campaign completes. SIGTERM/SIGINT drain gracefully: the in-flight unit
// is finished and delivered, no new lease is taken.
func cmdWorker(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	join := fs.String("join", "", "coordinator URL, e.g. http://host:9631 (required)")
	name := fs.String("name", "", "worker label in coordinator logs (default host:pid)")
	telemetryPath := fs.String("telemetry", "",
		"write a telemetry snapshot (docs/OBSERVABILITY.md) to this JSON file on exit")
	tracePath := fs.String("trace", "",
		`write the span stream to this JSONL file on exit (stitch with "dfvar trace")`)
	pprofAddr := fs.String("pprof", "",
		"serve net/http/pprof and live /telemetry + /metrics on this address")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *join == "" {
		return usageError{errors.New("worker: -join URL is required")}
	}
	c := commonFlags{telemetry: *telemetryPath, trace: *tracePath, pprof: *pprofAddr}
	flush, err := c.startTelemetry("worker")
	if err != nil {
		return err
	}
	defer flush()
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w, err := dist.NewWorker(dist.WorkerConfig{Coord: *join, Name: *name, Log: os.Stderr})
	if err != nil {
		return err
	}
	return w.Run(ctx)
}

func cmdCensus(args []string) error {
	fs := flag.NewFlagSet("census", flag.ContinueOnError)
	small := fs.Bool("small", false, "use the reduced test machine")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cfg := topology.Cori()
	if *small {
		cfg = topology.Small()
	}
	d, err := topology.New(cfg)
	if err != nil {
		return err
	}
	suite := &experiments.Suite{Clust: &cluster.Cluster{Topo: d}}
	fmt.Print(suite.Figure2())
	return nil
}

func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var c commonFlags
	addCommon(fs, &c)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := c.checkPolicies(); err != nil {
		return err
	}
	flush, err := c.startTelemetry("dfvar")
	if err != nil {
		return err
	}
	defer flush()

	wanted := fs.Args()
	if len(wanted) == 0 {
		wanted = experiments.CheapArtifacts()
	} else if len(wanted) == 1 && wanted[0] == "all" {
		wanted = experiments.AllArtifacts()
	}

	ccfg := c.clusterConfig()
	finish, err := c.attachMonitor(&ccfg)
	if err != nil {
		return err
	}
	camp, err := core.LoadOrGenerateCtx(ctx, core.CampaignConfig{Cluster: ccfg, CachePath: c.cache})
	if err != nil {
		return err
	}
	finish()
	suite := &experiments.Suite{Camp: camp, Seed: c.seed, Fast: c.fast, Workers: c.workers}
	if experiments.NeedsCluster(wanted) {
		fmt.Fprintln(os.Stderr, "rebuilding cluster state for fig2/fig12...")
		cl, err := cluster.New(c.clusterConfig())
		if err != nil {
			return err
		}
		suite.Clust = cl
	}

	// independent artifacts render concurrently; output order (and bytes)
	// match rendering them one at a time
	outs, err := suite.All(ctx, wanted)
	if err != nil {
		return err
	}
	for _, out := range outs {
		fmt.Println(out)
	}
	return nil
}

func cmdExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	var c commonFlags
	addCommon(fs, &c)
	out := fs.String("out", "csv", "output directory for CSV files")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := c.checkPolicies(); err != nil {
		return err
	}
	flush, err := c.startTelemetry("dfvar")
	if err != nil {
		return err
	}
	defer flush()
	ccfg := c.clusterConfig()
	finish, err := c.attachMonitor(&ccfg)
	if err != nil {
		return err
	}
	camp, err := core.LoadOrGenerateCtx(ctx, core.CampaignConfig{Cluster: ccfg, CachePath: c.cache})
	if err != nil {
		return err
	}
	finish()
	if err := export.CampaignToDir(camp, *out); err != nil {
		return err
	}
	fmt.Printf("exported %d datasets to %s/\n", len(camp.Datasets), *out)
	return nil
}
