package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/experiments"
	"dragonvar/internal/viz"
)

// cmdPlot renders figure SVGs from a cached campaign.
func cmdPlot(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	var c commonFlags
	addCommon(fs, &c)
	out := fs.String("out", "plots", "output directory for SVG files")
	fig12 := fs.Bool("fig12", false, "also simulate and plot the Figure 12 long run (slow: rebuilds the cluster)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if err := c.checkPolicies(); err != nil {
		return err
	}
	flush, err := c.startTelemetry("dfvar")
	if err != nil {
		return err
	}
	defer flush()

	ccfg := c.clusterConfig()
	finish, err := c.attachMonitor(&ccfg)
	if err != nil {
		return err
	}
	camp, err := core.LoadOrGenerateCtx(ctx, core.CampaignConfig{Cluster: ccfg, CachePath: c.cache})
	if err != nil {
		return err
	}
	finish()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	suite := &experiments.Suite{Camp: camp, Seed: c.seed, Fast: c.fast, Workers: c.workers}

	write := func(name, svg string) error {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	// Figure 1: relative performance scatter over days
	fig1 := viz.NewPlot("Figure 1: performance relative to best run", "campaign day", "relative performance").Scatter()
	for _, ds := range camp.Datasets {
		if ds.Nodes != 128 {
			continue
		}
		pts := core.RelativePerformance(ds)
		x := make([]float64, len(pts))
		y := make([]float64, len(pts))
		for i, p := range pts {
			x[i] = float64(p.Day)
			y[i] = p.Relative
		}
		fig1.Line(ds.Name, x, y)
	}
	if err := write("fig1-relative-performance.svg", fig1.SVG()); err != nil {
		return err
	}

	// Figure 3: mean step trends, one plot per dataset
	for _, ds := range camp.Datasets {
		if len(ds.Runs) == 0 {
			continue
		}
		mean := ds.MeanStepTimes()
		x := make([]float64, len(mean))
		for i := range x {
			x[i] = float64(i)
		}
		p := viz.NewPlot(fmt.Sprintf("Figure 3: mean time per step, %s", ds.Name), "step", "seconds")
		p.Line("mean over runs", x, mean)
		if err := write(fmt.Sprintf("fig3-%s.svg", ds.Name), p.SVG()); err != nil {
			return err
		}
	}

	// Figure 9: relevance bars per dataset
	_, devResults := suite.Figure9()
	for _, res := range devResults {
		if res.MAPE < 0 {
			continue // dataset empty at this campaign scale
		}
		bc := &viz.BarChart{
			Title:  fmt.Sprintf("Figure 9: deviation-prediction relevance, %s (MAPE %.1f%%)", res.Dataset, res.MAPE),
			Labels: res.FeatureNames,
			Values: res.Relevance,
			XLabel: "relevance (fraction of CV folds in best subset)",
		}
		if err := write(fmt.Sprintf("fig9-%s.svg", res.Dataset), bc.SVG()); err != nil {
			return err
		}
	}

	// Figures 8 and 10: forecast MAPE bars
	plotForecast := func(prefix string, results []core.ForecastResult) error {
		byDS := map[string][]core.ForecastResult{}
		for _, r := range results {
			if r.MAPE >= 0 {
				byDS[r.Dataset] = append(byDS[r.Dataset], r)
			}
		}
		names := make([]string, 0, len(byDS))
		for n := range byDS {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			rs := byDS[name]
			labels := make([]string, len(rs))
			values := make([]float64, len(rs))
			for i, r := range rs {
				labels[i] = r.Spec.String()
				values[i] = r.MAPE
			}
			bc := &viz.BarChart{
				Title:  fmt.Sprintf("%s: forecast MAPE, %s", prefix, name),
				Labels: labels, Values: values, XLabel: "MAPE (%)",
			}
			if err := write(fmt.Sprintf("%s-%s.svg", prefix, name), bc.SVG()); err != nil {
				return err
			}
		}
		return nil
	}
	_, f8 := suite.Figure8()
	if err := plotForecast("fig8", f8); err != nil {
		return err
	}
	_, f10 := suite.Figure10()
	if err := plotForecast("fig10", f10); err != nil {
		return err
	}

	if *fig12 {
		fmt.Fprintln(os.Stderr, "rebuilding cluster state for fig12...")
		cl, err := cluster.New(c.clusterConfig())
		if err != nil {
			return err
		}
		suite.Clust = cl
		_, segs, err := suite.Figure12()
		if err != nil {
			return err
		}
		if err := plotFigure12(*out, segs); err != nil {
			return err
		}
		fmt.Println("wrote", filepath.Join(*out, "fig12-longrun.svg"))
	}

	// Figure 11: forecast importances
	_, imps := suite.Figure11()
	full := counters.FeatureSet{Placement: true, IO: true, Sys: true}
	amgFS := counters.FeatureSet{Placement: true}
	for _, name := range viz.SortedKeys(imps) {
		imp := imps[name]
		labels := full.Names()
		if len(imp) == amgFS.Count() {
			labels = amgFS.Names()
		}
		if len(labels) != len(imp) {
			continue
		}
		bc := &viz.BarChart{
			Title:  fmt.Sprintf("Figure 11: forecast-model feature importances, %s", name),
			Labels: labels, Values: imp, XLabel: "permutation importance (MAPE increase)",
		}
		if err := write(fmt.Sprintf("fig11-%s.svg", name), bc.SVG()); err != nil {
			return err
		}
	}
	return nil
}

// plotFigure12 renders the long-run forecast series (requires cluster
// state, so it is invoked from cmdReport when available).
func plotFigure12(dir string, segs []core.SegmentForecast) error {
	x := make([]float64, len(segs))
	obs := make([]float64, len(segs))
	pred := make([]float64, len(segs))
	for i, sg := range segs {
		x[i] = float64(sg.StartStep)
		obs[i] = sg.Observed
		pred[i] = sg.Predicted
	}
	p := viz.NewPlot("Figure 12: long-running MILC job, 40-step segments", "step", "time per segment (s)")
	p.Line("observed", x, obs)
	p.Line("predicted", x, pred)
	return os.WriteFile(filepath.Join(dir, "fig12-longrun.svg"), []byte(p.SVG()), 0o644)
}
