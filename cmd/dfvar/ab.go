package main

import (
	"context"
	"flag"
	"fmt"
	"strings"

	"dragonvar/internal/experiments"
	"dragonvar/internal/routing"
	"dragonvar/internal/slurm"
)

// cmdAB runs the A/B variability harness: the same seeded campaign rerun
// under each routing/placement arm, with Figure-3-style run-time
// distributions and deltas against the first arm.
func cmdAB(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ab", flag.ContinueOnError)
	var c commonFlags
	addCommon(fs, &c)
	arms := fs.String("arms", "minimal/firstfit,adaptive/firstfit",
		`comma-separated ROUTING/PLACEMENT arms; the first is the baseline deltas are relative to`)
	out := fs.String("out", "", "also write the result as JSON to this file")
	verify := fs.Bool("verify", false,
		"rerun each arm serially and assert the campaign bytes match the parallel run")
	blame := fs.Bool("blame", false,
		"train the interference advisor on the baseline arm and feed its blamed users to interference arms")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if c.routing != "" || c.placement != "" {
		return usageError{fmt.Errorf("ab: policies come from -arms, not -routing/-placement")}
	}
	parsed, err := parseArms(*arms)
	if err != nil {
		return usageError{fmt.Errorf("ab: %w", err)}
	}
	flush, err := c.startTelemetry("dfvar")
	if err != nil {
		return err
	}
	defer flush()

	cfg := experiments.ABConfig{
		Cluster: c.clusterConfig(),
		Arms:    parsed,
		Verify:  *verify,
		Blame:   *blame,
	}
	res, err := experiments.RunAB(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *verify {
		for _, ar := range res.Arms {
			if ar.Identical != nil && !*ar.Identical {
				return fmt.Errorf("ab: arm %s violated the serial == parallel contract", ar.ABArm)
			}
		}
	}
	return nil
}

// parseArms parses "minimal/firstfit,adaptive/compact" into arms,
// validating each policy name.
func parseArms(spec string) ([]experiments.ABArm, error) {
	var arms []experiments.ABArm
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rp := strings.Split(part, "/")
		if len(rp) != 2 {
			return nil, fmt.Errorf("arm %q is not ROUTING/PLACEMENT", part)
		}
		arm := experiments.ABArm{Routing: rp[0], Placement: rp[1]}
		if !routing.ValidPolicy(arm.Routing) {
			return nil, fmt.Errorf("arm %q: unknown routing policy %q (have %s)",
				part, arm.Routing, strings.Join(routing.PolicyNames(), ", "))
		}
		if !slurm.ValidPlacementPolicy(arm.Placement) {
			return nil, fmt.Errorf("arm %q: unknown placement policy %q (have %s)",
				part, arm.Placement, strings.Join(slurm.PlacementPolicyNames(), ", "))
		}
		arms = append(arms, arm)
	}
	if len(arms) < 2 {
		return nil, fmt.Errorf("need at least 2 arms, got %d", len(arms))
	}
	return arms, nil
}
