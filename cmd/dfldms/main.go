// Command dfldms records and inspects system-wide counter streams — the
// scaled-down stand-in for the LDMS pipeline that sampled every Aries
// router on Cori once per second (~5 TB/day, §III-C).
//
//	dfldms record [-small] [-days N] [-seed S] [-hours H] [-interval SEC] [-faults SPEC] -out FILE
//	    Replay the background timeline and stream per-router counters.
//	    -faults injects link/router failures and sampler dropouts; dropout
//	    windows are recorded as explicit missing-sample markers.
//
//	dfldms summarize -in FILE [-top K]
//	    Read a log back and report its busiest routers and gap fractions
//	    (global and per-router, so dropout faults are attributable).
//
//	dfldms analyze -in FILE [-events FILE|-] [-heatmap FILE.svg] [-csv FILE] ...
//	    Replay a log through the streaming network-weather monitor: anomaly
//	    events as JSONL, a per-group × time congestion heatmap, and a
//	    human-readable weather report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/engine"
	"dragonvar/internal/export"
	"dragonvar/internal/monitor"
	"dragonvar/internal/sigctx"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
	"dragonvar/internal/traceio"
	"dragonvar/internal/viz"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dfldms: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "dfldms: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  dfldms record    [-small] [-days N] [-seed S] [-hours H] [-interval SEC] [-faults SPEC] [-workers N] [-telemetry FILE] [-pprof ADDR] -out FILE
  dfldms summarize -in FILE [-top K]
  dfldms analyze   -in FILE [-events FILE|-] [-heatmap FILE.svg] [-csv FILE] [-top K]
                   [-rpg N] [-hot-z Z] [-stall-onset R] [-stall-clear R] [-bin SEC] [-interval SEC]`)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	small := fs.Bool("small", false, "use the reduced test machine")
	days := fs.Float64("days", 2, "background timeline length")
	seed := fs.Int64("seed", 42, "timeline seed")
	hours := fs.Float64("hours", 1, "recording window length")
	interval := fs.Float64("interval", 60, "sampling interval, seconds")
	faults := fs.String("faults", "", `fault spec, e.g. "dropout@3600-7200" (see DESIGN.md)`)
	out := fs.String("out", "ldms.bin", "output log file")
	workers := fs.Int("workers", 0,
		"worker count for any campaign simulation on this cluster (0 = $"+engine.EnvWorkers+" or GOMAXPROCS)")
	tmPath := fs.String("telemetry", "", "write a telemetry snapshot (metrics + span trace) to this JSON file on exit")
	tracePath := fs.String("trace", "", `write the span stream to this JSONL file on exit (stitch with "dfvar trace")`)
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and /telemetry on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// enable before cluster.New: instrumented components capture their
	// metric handles at construction time
	if *tmPath != "" || *tracePath != "" || *pprofAddr != "" {
		reg := telemetry.New()
		reg.SetRole("dfldms")
		telemetry.Enable(reg)
	}
	if *pprofAddr != "" {
		if err := telemetry.ServePprof(*pprofAddr); err != nil {
			return err
		}
	}
	defer func() {
		if err := telemetry.Flush(*tmPath); err != nil {
			fmt.Fprintf(os.Stderr, "dfldms: %v\n", err)
		}
		if err := telemetry.FlushTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "dfldms: %v\n", err)
		}
	}()

	cfg := cluster.Config{Days: *days, Seed: *seed, FaultSpec: *faults, Workers: *workers}
	if *small {
		cfg.Machine = topology.Small()
	}
	fmt.Fprintln(os.Stderr, "building machine and background timeline...")
	c, err := cluster.New(cfg)
	if err != nil {
		return err
	}

	fh, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer fh.Close()
	nr := c.Topo.Cfg.NumRouters()
	w, err := traceio.NewWriter(fh, nr*cluster.LDMSSeriesPerRouter)
	if err != nil {
		return err
	}

	// record from the middle of the timeline (steady state)
	t0 := c.Timeline.Horizon()/2 - *hours*1800
	t1 := t0 + *hours*3600
	// SIGINT stops the recorder at a sample boundary and flushes; the log
	// on disk stays readable, just shorter than requested
	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()
	start := time.Now()
	n, err := c.RecordLDMSCtx(ctx, w, t0, t1, *interval)
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "interrupted: flushed %d samples recorded so far\n", n)
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d samples of %d routers × %d series in %v\n",
		n, nr, cluster.LDMSSeriesPerRouter, time.Since(start).Round(time.Millisecond))
	fmt.Printf("log: %s (%.1f MiB, %.2f bytes per counter sample)\n",
		*out, float64(info.Size())/(1<<20),
		float64(info.Size())/float64(n*nr*cluster.LDMSSeriesPerRouter))
	perDay := float64(info.Size()) / (*hours) * 24 / (1 << 30)
	fmt.Printf("at this rate a full day is %.2f GiB (Cori's real 1 Hz feed was ~5 TB/day)\n", perDay)
	return nil
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ContinueOnError)
	in := fs.String("in", "ldms.bin", "input log file")
	top := fs.Int("top", 10, "busiest routers to list")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fh, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer fh.Close()
	r, err := traceio.NewReader(fh)
	if err != nil {
		return err
	}
	series := r.NumSeries()
	routers := series / cluster.LDMSSeriesPerRouter

	// deltas are taken between the first and last HEALTHY samples: missing
	// markers carry no counter values, only the gap itself
	var first, last []float64
	var t0, t1 float64
	samples, missing := 0, 0
	gaps := make([]int, routers) // per-router samples with any NaN series
	buf := make([]float64, series)
	for {
		t, v, err := r.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("reading %s: %w", *in, err)
		}
		if samples == 0 {
			t0 = t
		}
		t1 = t
		samples++
		if r.Missing() {
			missing++
		}
		healthy := true
		for ri := 0; ri < routers; ri++ {
			base := ri * cluster.LDMSSeriesPerRouter
			for s := 0; s < cluster.LDMSSeriesPerRouter; s++ {
				if math.IsNaN(v[base+s]) {
					gaps[ri]++
					healthy = false
					break
				}
			}
		}
		if !healthy {
			continue
		}
		if first == nil {
			first = append([]float64(nil), v...)
		}
		if last == nil {
			last = make([]float64, series)
		}
		copy(last, v)
	}
	if samples-missing < 2 {
		return fmt.Errorf("log has %d healthy samples (%d missing); need at least 2", samples-missing, missing)
	}

	fmt.Printf("log: %d samples over %.0fs, %d routers\n", samples, t1-t0, routers)
	if missing > 0 {
		fmt.Printf("sampler dropouts: %d of %d samples missing (%.1f%%)\n",
			missing, samples, 100*float64(missing)/float64(samples))
		reportRouterGaps(gaps, samples, *top)
	}
	type load struct {
		router int
		flits  float64
		stalls float64
	}
	var loads []load
	for ri := 0; ri < routers; ri++ {
		base := ri * cluster.LDMSSeriesPerRouter
		loads = append(loads, load{
			router: ri,
			flits:  last[base] - first[base],
			stalls: last[base+1] - first[base+1],
		})
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].flits > loads[j].flits })
	fmt.Printf("\nbusiest routers by RT_FLIT_TOT over the window:\n")
	for i := 0; i < *top && i < len(loads); i++ {
		fmt.Printf("  router %4d: %.3g flits, %.3g stall cycles\n",
			loads[i].router, loads[i].flits, loads[i].stalls)
	}
	return nil
}

// reportRouterGaps prints the per-router gap distribution so dropout faults
// can be attributed to specific routers rather than the sampler as a whole.
func reportRouterGaps(gaps []int, samples, top int) {
	lo, hi := gaps[0], gaps[0]
	total := 0
	for _, g := range gaps {
		total += g
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	pct := func(n int) float64 { return 100 * float64(n) / float64(samples) }
	fmt.Printf("per-router gap fraction: min %.1f%%, mean %.1f%%, max %.1f%%\n",
		pct(lo), 100*float64(total)/float64(len(gaps))/float64(samples), pct(hi))
	if lo == hi {
		fmt.Println("  (uniform across routers: sampler-wide dropout windows)")
		return
	}
	type rg struct{ router, n int }
	worst := make([]rg, 0, len(gaps))
	for ri, g := range gaps {
		if g > lo {
			worst = append(worst, rg{ri, g})
		}
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].n != worst[j].n {
			return worst[i].n > worst[j].n
		}
		return worst[i].router < worst[j].router
	})
	fmt.Println("  most-gapped routers:")
	for i := 0; i < top && i < len(worst); i++ {
		fmt.Printf("    router %4d: %d of %d samples missing (%.1f%%)\n",
			worst[i].router, worst[i].n, samples, pct(worst[i].n))
	}
}

// inferGroupSize guesses the dragonfly group size from the router count by
// matching the known machine configs; an unknown machine collapses to a
// single group (rollups still work, just coarser).
func inferGroupSize(routers int) int {
	for _, cfg := range []topology.Config{topology.Cori(), topology.Small()} {
		if cfg.NumRouters() == routers {
			return cfg.RoutersPerGroup()
		}
	}
	return routers
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "ldms.bin", "input log file")
	eventsOut := fs.String("events", "", `write anomaly events as JSONL to this file ("-" = stdout)`)
	heatOut := fs.String("heatmap", "", "write the per-group congestion heatmap to this SVG file")
	csvOut := fs.String("csv", "", "write the heatmap matrix to this CSV file")
	top := fs.Int("top", 10, "routers to list in the report")
	rpg := fs.Int("rpg", 0, "routers per dragonfly group (0 = infer from router count)")
	hotZ := fs.Float64("hot-z", 0, "hot-router onset threshold in cross-sectional std devs (0 = default)")
	stallOnset := fs.Float64("stall-onset", 0, "group congestion onset threshold on smoothed stall ratio (0 = default)")
	stallClear := fs.Float64("stall-clear", 0, "congestion clear threshold (0 = onset/2)")
	bin := fs.Float64("bin", 0, "heatmap time-bin width, seconds (0 = default)")
	interval := fs.Float64("interval", 0, "expected sampling interval for time-jump gap detection (0 = infer)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fh, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer fh.Close()
	rd, err := traceio.NewReader(fh)
	if err != nil {
		return err
	}
	series := rd.NumSeries()
	if series%cluster.LDMSSeriesPerRouter != 0 {
		return fmt.Errorf("%s holds %d series, not a multiple of %d per router",
			*in, series, cluster.LDMSSeriesPerRouter)
	}
	routers := series / cluster.LDMSSeriesPerRouter
	if *rpg <= 0 {
		*rpg = inferGroupSize(routers)
	}

	var events io.Writer
	if *eventsOut == "-" {
		events = os.Stdout
	} else if *eventsOut != "" {
		ef, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer ef.Close()
		events = ef
	}

	m, err := monitor.New(monitor.Config{
		NumRouters:      routers,
		SeriesPerRouter: cluster.LDMSSeriesPerRouter,
		RoutersPerGroup: *rpg,
		Interval:        *interval,
		DetectTimeGaps:  true, // replay is time-ordered
		HotZ:            *hotZ,
		StallOnset:      *stallOnset,
		StallClear:      *stallClear,
		HeatmapBin:      *bin,
		Events:          events,
		Source:          "replay",
	})
	if err != nil {
		return err
	}
	st, err := monitor.Replay(rd, m)
	if err != nil {
		return fmt.Errorf("analyzing %s: %w", *in, err)
	}
	fmt.Fprintf(os.Stderr, "replayed %d samples (%d missing) over [%.0fs, %.0fs], %d routers in groups of %d\n",
		st.Samples, st.Missing, st.FirstT, st.LastT, routers, *rpg)
	fmt.Print(m.Report(*top))

	if *heatOut != "" || *csvOut != "" {
		rows, xs, vals := m.HeatmapData()
		if *heatOut != "" {
			h := viz.NewHeatmap("Network weather: group stall ratio", "time (s)", "group", rows, xs, vals)
			if err := os.WriteFile(*heatOut, []byte(h.SVG()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "heatmap: %s\n", *heatOut)
		}
		if *csvOut != "" {
			cf, err := os.Create(*csvOut)
			if err != nil {
				return err
			}
			if err := export.Matrix(cf, "group", rows, xs, vals); err != nil {
				cf.Close()
				return err
			}
			if err := cf.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "heatmap csv: %s\n", *csvOut)
		}
	}
	return nil
}
