// Command dfvard is the continuous-operation campaign daemon: it drives
// an endless seeded workload (faults included) through the campaign
// engine, streams every completed run into an append-only windowed
// dataset, retrains the forecaster/deviation/advisor models on a sealed-
// window schedule (or early, on forecast drift), and publishes each
// retrain to a modelstore so live dfserved replicas hot-reload it.
//
// Usage:
//
//	dfvard [-state DIR] [-store DIR] [-seed S] [-small] [-fast]
//	       [-days N] [-faults SPEC] [-routing POLICY] [-placement POLICY]
//	       [-window-runs N] [-window-span SECS]
//	       [-retrain-windows N] [-drift-factor F] [-drift-windows N]
//	       [-max-epochs N] [-dataset NAME] [-m N] [-k N] [-features LIST]
//	       [-monitor FILE|-] [-monitor-max-bytes N] [-monitor-max-age D]
//	       [-telemetry FILE] [-trace FILE] [-pprof ADDR] [-workers N]
//
// All state lives under -state: the run stream (WAL + sealed segments),
// the progress checkpoint, and the publish log. The daemon may be killed
// at any instant — even SIGKILL — and restarted with the same flags; it
// resumes from its checkpoint and produces byte-identical output to a
// never-interrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/counters"
	"dragonvar/internal/daemon"
	"dragonvar/internal/modelstore"
	"dragonvar/internal/monitor"
	"dragonvar/internal/sigctx"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "dfvard: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	state string
	store string

	seed      int64
	small     bool
	fast      bool
	days      float64
	faults    string
	routing   string
	placement string
	workers   int

	windowRuns int
	windowSpan float64

	retrainWindows int
	driftFactor    float64
	driftWindows   int
	maxEpochs      int

	dataset  string
	m, k     int
	features string

	monitor         string
	monitorMaxBytes int64
	monitorMaxAge   time.Duration

	telemetry string
	trace     string
	pprof     string
}

func run(args []string) error {
	fs := flag.NewFlagSet("dfvard", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.state, "state", "dfvard-state", "state directory (stream, checkpoint, publish log)")
	fs.StringVar(&o.store, "store", "models", "model store directory to publish retrained models into")

	fs.Int64Var(&o.seed, "seed", 42, "root seed; the endless workload is a pure function of it")
	fs.BoolVar(&o.small, "small", false, "use the small test machine instead of the Cori-scale one")
	fs.BoolVar(&o.fast, "fast", false, "reduced training knobs (fewer epochs, smaller sample caps)")
	fs.Float64Var(&o.days, "days", 7, "simulated days per campaign epoch")
	fs.StringVar(&o.faults, "faults", "", `fault spec for every epoch ("links=3,dropouts=2", ...)`)
	fs.StringVar(&o.routing, "routing", "", "routing policy name (default: the engine default; $"+cluster.EnvRouting+" overrides)")
	fs.StringVar(&o.placement, "placement", "", "placement policy name (default firstfit; $"+cluster.EnvPlacement+" overrides)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent runs per epoch (0 = automatic)")

	fs.IntVar(&o.windowRuns, "window-runs", 16, "runs per ingest window (a window seals at this count)")
	fs.Float64Var(&o.windowSpan, "window-span", 0, "max campaign-clock seconds per window (0 = unbounded)")

	fs.IntVar(&o.retrainWindows, "retrain-windows", 4, "retrain every N sealed windows")
	fs.Float64Var(&o.driftFactor, "drift-factor", 1.5, "early retrain when live MAPE exceeds this factor of the training MAPE (<=0 disables)")
	fs.IntVar(&o.driftWindows, "drift-windows", 3, "rolling window (in sealed segments) of the live-MAPE mean")
	fs.IntVar(&o.maxEpochs, "max-epochs", 0, "stop after N epochs (0 = run until signalled)")

	fs.StringVar(&o.dataset, "dataset", "AMG-128", "dataset whose forecaster is served")
	fs.IntVar(&o.m, "m", 5, "forecast window length (steps)")
	fs.IntVar(&o.k, "k", 2, "forecast horizon (steps)")
	fs.StringVar(&o.features, "features", "", `extra forecast feature groups: "placement,io,sys" (app counters always included)`)

	fs.StringVar(&o.monitor, "monitor", "", `stream network-weather + drift events to this JSONL file ("-" = stderr), with rotation`)
	fs.Int64Var(&o.monitorMaxBytes, "monitor-max-bytes", 64<<20, "rotate the event stream past this size (0 = never)")
	fs.DurationVar(&o.monitorMaxAge, "monitor-max-age", 0, "rotate the event stream past this age (0 = never)")

	fs.StringVar(&o.telemetry, "telemetry", "", "write a metrics snapshot to this file on exit")
	fs.StringVar(&o.trace, "trace", "", "write collected trace spans to this file on exit")
	fs.StringVar(&o.pprof, "pprof", "", "serve net/http/pprof on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Policy env defaults, resolved here like every other CLI.
	if o.routing == "" {
		o.routing = os.Getenv(cluster.EnvRouting)
	}
	if o.placement == "" {
		o.placement = os.Getenv(cluster.EnvPlacement)
	}

	// The daemon is always instrumented: its counters are how the smoke
	// test (and an operator) sees retrains and drift happen.
	reg := telemetry.New()
	reg.SetRole("dfvard")
	telemetry.Enable(reg)
	defer func() {
		if err := telemetry.Flush(o.telemetry); err != nil {
			fmt.Fprintf(os.Stderr, "dfvard: %v\n", err)
		}
		if err := telemetry.FlushTrace(o.trace); err != nil {
			fmt.Fprintf(os.Stderr, "dfvard: %v\n", err)
		}
	}()
	if o.pprof != "" {
		go func() {
			if err := telemetry.ServePprof(o.pprof); err != nil {
				fmt.Fprintf(os.Stderr, "dfvard: pprof: %v\n", err)
			}
		}()
	}

	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()

	st, err := modelstore.Open(o.store)
	if err != nil {
		return err
	}

	cfg := daemon.Config{
		StateDir:     o.state,
		Store:        st,
		Seed:         o.seed,
		Routing:      o.routing,
		Placement:    o.placement,
		FaultSpec:    o.faults,
		EpochDays:    o.days,
		WindowRuns:   o.windowRuns,
		WindowSpan:   o.windowSpan,
		RetrainEvery: o.retrainWindows,
		DriftFactor:  o.driftFactor,
		DriftWindow:  o.driftWindows,
		Dataset:      o.dataset,
		M:            o.m,
		K:            o.k,
		Fast:         o.fast,
		MaxEpochs:    o.maxEpochs,
		Workers:      o.workers,
		Logf:         func(format string, args ...any) { fmt.Fprintf(os.Stderr, "dfvard: "+format+"\n", args...) },
	}
	if o.small {
		cfg.Machine = topology.Small()
	}
	if cfg.Features, err = parseFeatures(o.features); err != nil {
		return err
	}

	mon, finishMonitor, err := attachMonitor(o)
	if err != nil {
		return err
	}
	defer finishMonitor()
	cfg.Monitor = mon

	d, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	defer d.Close()

	fmt.Fprintf(os.Stderr, "dfvard: state=%s store=%s seed=%d (%g days/epoch, retrain every %d windows of %d runs)\n",
		o.state, o.store, o.seed, o.days, o.retrainWindows, o.windowRuns)

	err = d.Run(ctx)
	epoch, sealed, retrains, drift := d.Progress()
	fmt.Fprintf(os.Stderr, "dfvard: %d epochs, %d windows sealed, %d retrains (%d drift-triggered)\n",
		epoch, sealed, retrains, drift)
	if err != nil && errors.Is(err, context.Canceled) {
		// A signal is the normal way to stop a daemon; all state is
		// checkpointed, so the next start continues exactly here.
		fmt.Fprintln(os.Stderr, "dfvard: checkpointed, bye")
		return nil
	}
	return err
}

// attachMonitor builds the live monitor when -monitor was given: network
// weather plus the daemon's drift events, written as JSONL through a
// size/age-rotated file ("-" streams to stderr, unrotated).
func attachMonitor(o options) (*monitor.Monitor, func(), error) {
	if o.monitor == "" {
		return nil, func() {}, nil
	}
	var events io.Writer
	var closer io.Closer
	if o.monitor == "-" {
		events = os.Stderr
	} else {
		w, err := monitor.NewRotatingWriter(o.monitor, o.monitorMaxBytes, o.monitorMaxAge)
		if err != nil {
			return nil, nil, err
		}
		events = w
		closer = w
	}
	topo := topology.Cori()
	if o.small {
		topo = topology.Small()
	}
	// DetectTimeGaps stays off: parallel campaign rounds interleave runs
	// out of time order, so only explicit missing markers count as gaps.
	m, err := monitor.New(monitor.Config{
		NumRouters:      topo.NumRouters(),
		SeriesPerRouter: cluster.LDMSSeriesPerRouter,
		RoutersPerGroup: topo.RoutersPerGroup(),
		HeatmapBin:      3600,
		Events:          events,
		Source:          "dfvard",
	})
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, nil, err
	}
	finish := func() {
		if err := m.Finish(); err != nil {
			fmt.Fprintf(os.Stderr, "dfvard: monitor: %v\n", err)
		}
		if closer != nil {
			if err := closer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "dfvard: monitor: %v\n", err)
			}
		}
	}
	return m, finish, nil
}

// parseFeatures maps the -features flag onto a counters.FeatureSet, the
// same grammar dfserved uses so the two daemons meet on the same refs.
func parseFeatures(s string) (counters.FeatureSet, error) {
	var f counters.FeatureSet
	if s == "" {
		return f, nil
	}
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '+' || r == ' ' }) {
		switch tok {
		case "app": // always on
		case "placement":
			f.Placement = true
		case "io":
			f.IO = true
		case "sys":
			f.Sys = true
		default:
			return f, fmt.Errorf("unknown feature group %q (want placement, io, sys)", tok)
		}
	}
	return f, nil
}
