// Command dfcalib summarizes the variability a campaign configuration
// produces: per dataset, the best/mean/worst total times, the worst-to-best
// ratio (the paper's headline "up to 3× slower"), and the MPI time
// fraction. Use it to sanity-check simulator calibration against §III-B
// before running the full evaluation.
//
//	dfcalib -days 15 -seed 42 [-small] [-cache FILE] [-workers N] [-telemetry FILE] [-pprof ADDR]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/engine"
	"dragonvar/internal/report"
	"dragonvar/internal/sigctx"
	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

func main() {
	days := flag.Float64("days", 15, "campaign length in days")
	seed := flag.Int64("seed", 42, "campaign seed")
	small := flag.Bool("small", false, "use the reduced test machine")
	cache := flag.String("cache", "", "optional campaign cache file")
	workers := flag.Int("workers", 0,
		"simulation worker count (0 = $"+engine.EnvWorkers+" or GOMAXPROCS); results are identical for any value")
	tmPath := flag.String("telemetry", "", "write a telemetry snapshot (metrics + span trace) to this JSON file on exit")
	tracePath := flag.String("trace", "", `write the span stream to this JSONL file on exit (stitch with "dfvar trace")`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /telemetry on this address (e.g. localhost:6060)")
	flag.Parse()

	// telemetry must be live before cluster construction: instrumented
	// components capture their metric handles when they are built
	if *tmPath != "" || *tracePath != "" || *pprofAddr != "" {
		reg := telemetry.New()
		reg.SetRole("dfcalib")
		telemetry.Enable(reg)
	}
	if *pprofAddr != "" {
		if err := telemetry.ServePprof(*pprofAddr); err != nil {
			fmt.Fprintf(os.Stderr, "dfcalib: %v\n", err)
			os.Exit(1)
		}
	}
	flush := func() {
		if err := telemetry.Flush(*tmPath); err != nil {
			fmt.Fprintf(os.Stderr, "dfcalib: %v\n", err)
		}
		if err := telemetry.FlushTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "dfcalib: %v\n", err)
		}
	}
	defer flush()

	cfg := cluster.Config{Days: *days, Seed: *seed, Workers: *workers}
	if *small {
		cfg.Machine = topology.Small()
	}
	cfg.Progress = func(done, total int) {
		if done%50 == 0 || done == total {
			fmt.Fprintf(os.Stderr, "\rsimulating: %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	// SIGINT cancels the campaign gracefully; completed runs are flushed to
	// the cache (when one is configured) as a partial dataset
	ctx, stop := sigctx.WithShutdown(context.Background())
	defer stop()

	start := time.Now()
	camp, err := core.LoadOrGenerateCtx(ctx, core.CampaignConfig{Cluster: cfg, CachePath: *cache})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfcalib: %v\n", err)
		flush() // os.Exit skips defers; the partial snapshot still lands
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "campaign ready in %v\n", time.Since(start).Round(time.Second))

	t := report.NewTable(
		fmt.Sprintf("calibration summary (%d runs, %g days, seed %d)", camp.TotalRuns(), *days, *seed),
		"dataset", "runs", "best s", "mean s", "p90 s", "worst s", "worst/best", "MPI %")
	for _, ds := range camp.Datasets {
		if len(ds.Runs) == 0 {
			t.AddRow(ds.Name, 0, "-", "-", "-", "-", "-", "-")
			continue
		}
		var totals, fracs []float64
		for _, r := range ds.Runs {
			totals = append(totals, r.TotalTime())
			fracs = append(fracs, r.Profile.Total()/r.TotalTime())
		}
		best, worst := stats.Min(totals), stats.Max(totals)
		t.AddRow(ds.Name, len(ds.Runs),
			fmt.Sprintf("%.0f", best),
			fmt.Sprintf("%.0f", stats.Mean(totals)),
			fmt.Sprintf("%.0f", stats.Quantile(totals, 0.9)),
			fmt.Sprintf("%.0f", worst),
			fmt.Sprintf("%.2f", worst/best),
			fmt.Sprintf("%.0f", 100*stats.Mean(fracs)))
	}
	fmt.Print(t.String())
	fmt.Println("\npaper targets (§III-B): miniVite worst 3.76x, UMT worst 3.3x; MPI% = 76/82 (AMG), 89 (MILC), 98 (miniVite), 30 (UMT)")
}
