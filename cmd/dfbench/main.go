// Command dfbench measures the execution engine: it runs the same campaign
// serially and with a parallel worker pool, verifies the outputs are
// byte-identical (the engine's core contract), and writes the timings as
// JSON for the benchmark ledger.
//
//	dfbench [-days N] [-seed S] [-workers N] [-cori] [-routing POLICY] [-placement POLICY]
//	        [-reps N] [-out BENCH_engine.json] [-telemetry FILE] [-pprof ADDR]
//
// The ledger is append-only: each invocation adds one row (keyed by the
// routing/placement pair it benchmarked) and keeps prior rows, so per-policy
// engine timings accumulate side by side. -reps repeats the serial
// measurement and records mean/std/std_rel of the timings.
//
// The speedup is bounded by the host: on a single-core container the
// parallel run can be no faster than the serial one (the JSON records the
// CPU count so readers can tell). On a multi-core host expect near-linear
// scaling up to the worker count, since campaign runs are independent.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/netsim"
	"dragonvar/internal/rng"
	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

type result struct {
	Benchmark  string  `json:"benchmark"`
	CPUs       int     `json:"cpus"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Machine    string  `json:"machine"`
	Days       float64 `json:"days"`
	Seed       int64   `json:"seed"`
	Runs       int     `json:"runs"`
	Workers    int     `json:"workers"`
	Routing    string  `json:"routing"`
	Placement  string  `json:"placement"`
	SerialSec  float64 `json:"serial_sec"`
	// -reps repeats the serial measurement; the ledger records the spread
	// in the mean/std/std_rel convention so timing noise is visible.
	Reps            int     `json:"reps"`
	SerialSecMean   float64 `json:"serial_sec_mean"`
	SerialSecStd    float64 `json:"serial_sec_std"`
	SerialSecStdRel float64 `json:"serial_sec_std_rel"`
	ParallelSec     float64 `json:"parallel_sec"`
	// parallel timings get the same reps treatment as serial ones, and the
	// speedup is the ratio of the two means
	ParallelSecMean   float64 `json:"parallel_sec_mean"`
	ParallelSecStd    float64 `json:"parallel_sec_std"`
	ParallelSecStdRel float64 `json:"parallel_sec_std_rel"`
	Speedup           float64 `json:"speedup"`
	// single-worker round-loop throughput on the fixed 256-flow microbench
	// workload (internal/netsim RunRoundRouted, same shape as the repo's
	// BenchmarkNetsimRound), so the hot-path trend is visible per ledger row
	RoundLoopNsOp float64 `json:"round_loop_ns_op"`
	Identical     bool    `json:"identical"`
	Hash          string  `json:"campaign_sha256"`
}

func main() {
	days := flag.Float64("days", 10, "campaign length in days")
	seed := flag.Int64("seed", 42, "campaign seed")
	workers := flag.Int("workers", 4, "parallel worker count to compare against serial")
	cori := flag.Bool("cori", false, "benchmark the full Cori machine instead of the small one")
	routingPolicy := flag.String("routing", "", "routing policy to benchmark (empty = engine default, adaptive)")
	placementPolicy := flag.String("placement", "", "placement policy to benchmark (empty = firstfit)")
	reps := flag.Int("reps", 1, "serial measurement repetitions for the mean/std/std_rel timing row")
	out := flag.String("out", "BENCH_engine.json", "output JSON ledger; existing entries are kept and the new row appended")
	allowHashChange := flag.Bool("allow-hash-change", false, "permit appending a row whose campaign hash differs from the previous same-config ledger entry (required after intentional behavior changes)")
	tmPath := flag.String("telemetry", "", "write a telemetry snapshot (metrics + span trace) to this JSON file on exit")
	tracePath := flag.String("trace", "", `write the span stream to this JSONL file on exit (stitch with "dfvar trace")`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /telemetry on this address (e.g. localhost:6060)")
	flag.Parse()

	// enable before the clusters are built so their handles are live; the
	// determinism check below then doubles as proof that telemetry is
	// observation-only (identical hashes with instrumentation recording)
	if *tmPath != "" || *tracePath != "" || *pprofAddr != "" {
		reg := telemetry.New()
		reg.SetRole("dfbench")
		telemetry.Enable(reg)
	}
	if *pprofAddr != "" {
		if err := telemetry.ServePprof(*pprofAddr); err != nil {
			fatal(err)
		}
	}
	defer func() {
		if err := telemetry.Flush(*tmPath); err != nil {
			fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		}
		if err := telemetry.FlushTrace(*tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		}
	}()

	cfg := cluster.Config{Days: *days, Seed: *seed}
	cfg.Net.Routing = *routingPolicy
	cfg.Placement = *placementPolicy
	machine := "small"
	if !*cori {
		cfg.Machine = topology.Small()
	} else {
		machine = "cori"
	}
	if *reps < 1 {
		*reps = 1
	}

	var serialCamp *dataset.Campaign
	var w stats.Welford
	serialSec := 0.0
	for rep := 0; rep < *reps; rep++ {
		camp, sec, err := timeCampaign(cfg, 1)
		if err != nil {
			fatal(err)
		}
		w.Add(sec)
		if rep == 0 {
			serialCamp, serialSec = camp, sec
		} else if campaignHash(camp) != campaignHash(serialCamp) {
			fatal(fmt.Errorf("DETERMINISM VIOLATION: serial rep %d differs from rep 0", rep))
		}
		fmt.Fprintf(os.Stderr, "serial   (workers=1, rep %d/%d): %d runs in %.2fs\n",
			rep+1, *reps, camp.TotalRuns(), sec)
	}

	var parCamp *dataset.Campaign
	var pw stats.Welford
	parSec := 0.0
	for rep := 0; rep < *reps; rep++ {
		camp, sec, err := timeCampaign(cfg, *workers)
		if err != nil {
			fatal(err)
		}
		pw.Add(sec)
		if rep == 0 {
			parCamp, parSec = camp, sec
		} else if campaignHash(camp) != campaignHash(parCamp) {
			fatal(fmt.Errorf("DETERMINISM VIOLATION: parallel rep %d differs from rep 0", rep))
		}
		fmt.Fprintf(os.Stderr, "parallel (workers=%d, rep %d/%d): %d runs in %.2fs\n",
			*workers, rep+1, *reps, camp.TotalRuns(), sec)
	}

	h1, h2 := campaignHash(serialCamp), campaignHash(parCamp)
	routingName, placementName := cfg.EffectivePolicies()
	roundNs := measureRoundLoop(cfg)
	fmt.Fprintf(os.Stderr, "round loop (%s, 256 flows): %.0f ns/op\n", routingName, roundNs)
	res := result{
		Benchmark:       "campaign-engine",
		CPUs:            runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Machine:         machine,
		Days:            *days,
		Seed:            *seed,
		Runs:            serialCamp.TotalRuns(),
		Workers:         *workers,
		Routing:         routingName,
		Placement:       placementName,
		SerialSec:       serialSec,
		Reps:            *reps,
		SerialSecMean:   w.Mean(),
		SerialSecStd:    w.Std(),
		ParallelSec:     parSec,
		ParallelSecMean: pw.Mean(),
		ParallelSecStd:  pw.Std(),
		Speedup:         w.Mean() / pw.Mean(),
		RoundLoopNsOp:   roundNs,
		Identical:       h1 == h2,
		Hash:            hex.EncodeToString(h1[:8]),
	}
	if res.SerialSecMean > 0 {
		res.SerialSecStdRel = res.SerialSecStd / res.SerialSecMean
	}
	if res.ParallelSecMean > 0 {
		res.ParallelSecStdRel = res.ParallelSecStd / res.ParallelSecMean
	}
	if !res.Identical {
		fatal(fmt.Errorf("DETERMINISM VIOLATION: workers=1 and workers=%d campaigns differ", *workers))
	}
	if err := checkHashContinuity(*out, res, *allowHashChange); err != nil {
		fatal(err)
	}

	blob, err := appendLedger(*out, res)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "speedup %.2fx on %d CPUs, outputs identical; appended %s/%s row to %s\n",
		res.Speedup, res.CPUs, res.Routing, res.Placement, *out)
	os.Stdout.Write(blob)
}

// appendLedger appends res to the JSON ledger at path, keeping existing
// entries: the ledger is an array of result objects, and a legacy
// single-object file is wrapped into an array first. Returns the bytes
// written.
func appendLedger(path string, res result) ([]byte, error) {
	var entries []map[string]interface{}
	if old, err := os.ReadFile(path); err == nil {
		trimmed := bytes.TrimSpace(old)
		if len(trimmed) > 0 && trimmed[0] == '[' {
			if err := json.Unmarshal(trimmed, &entries); err != nil {
				return nil, fmt.Errorf("ledger %s is not a valid result array: %w", path, err)
			}
		} else if len(trimmed) > 0 {
			var one map[string]interface{}
			if err := json.Unmarshal(trimmed, &one); err != nil {
				return nil, fmt.Errorf("ledger %s is not valid JSON: %w", path, err)
			}
			entries = append(entries, one)
		}
	}
	blob, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	var entry map[string]interface{}
	if err := json.Unmarshal(blob, &entry); err != nil {
		return nil, err
	}
	entries = append(entries, entry)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return nil, err
	}
	out = append(out, '\n')
	return out, os.WriteFile(path, out, 0o644)
}

// measureRoundLoop times the single-worker netsim round loop on the fixed
// 256-flow microbench workload (the same shape as the repo's
// BenchmarkNetsimRound), so every ledger row carries a hot-path throughput
// number alongside the campaign timings.
func measureRoundLoop(cfg cluster.Config) float64 {
	d, err := topology.New(topology.Small())
	if err != nil {
		fatal(err)
	}
	ncfg := netsim.DefaultConfig()
	if cfg.Net.Routing != "" {
		ncfg.Routing = cfg.Net.Routing
	}
	n := netsim.New(d, ncfg, rng.New(1))
	n.ReuseSlowdowns(true)
	var flows []netsim.Flow
	for g := 0; g < 8; g++ {
		for c := 0; c < 32; c++ {
			flows = append(flows, netsim.Flow{
				Src:             d.RouterAt(topology.GroupID(g), c%4, c%6),
				Dst:             d.RouterAt(topology.GroupID((g+3)%9), (c+1)%4, (c+2)%6),
				Flits:           1e8,
				Packets:         1e4,
				RequestFraction: 0.8,
			})
		}
	}
	routed := n.Resolve(flows)
	for i := 0; i < 16; i++ { // warm the caches before timing
		n.RunRoundRouted(flows, routed, nil, 1.0)
	}
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		n.RunRoundRouted(flows, routed, nil, 1.0)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// checkHashContinuity refuses to append a row whose campaign hash differs
// from the most recent ledger entry with the same configuration, unless the
// -allow-hash-change flag is set. The ledger's hashes are the repo's
// determinism anchors; silently appending a changed hash would let a
// behavior regression masquerade as timing noise.
func checkHashContinuity(path string, res result, allow bool) error {
	old, err := os.ReadFile(path)
	if err != nil {
		return nil // no ledger yet — nothing to be continuous with
	}
	trimmed := bytes.TrimSpace(old)
	if len(trimmed) == 0 {
		return nil
	}
	var entries []map[string]interface{}
	if trimmed[0] == '[' {
		if json.Unmarshal(trimmed, &entries) != nil {
			return nil // appendLedger reports malformed ledgers
		}
	} else {
		var one map[string]interface{}
		if json.Unmarshal(trimmed, &one) != nil {
			return nil
		}
		entries = append(entries, one)
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if jstr(e["benchmark"]) != res.Benchmark || jstr(e["machine"]) != res.Machine ||
			jnum(e["days"]) != res.Days || jnum(e["seed"]) != float64(res.Seed) ||
			jstr(e["routing"]) != res.Routing || jstr(e["placement"]) != res.Placement {
			continue
		}
		prev := jstr(e["campaign_sha256"])
		if prev == "" || prev == res.Hash {
			return nil
		}
		if !allow {
			return fmt.Errorf("campaign hash %s differs from previous same-config ledger row (%s); rerun with -allow-hash-change if the behavior change is intentional", res.Hash, prev)
		}
		fmt.Fprintf(os.Stderr, "dfbench: note: campaign hash changed %s -> %s (allowed by flag)\n", prev, res.Hash)
		return nil
	}
	return nil
}

func jstr(v interface{}) string  { s, _ := v.(string); return s }
func jnum(v interface{}) float64 { f, _ := v.(float64); return f }

func timeCampaign(cfg cluster.Config, workers int) (*dataset.Campaign, float64, error) {
	cfg.Workers = workers
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	camp, err := c.RunCampaign()
	if err != nil {
		return nil, 0, err
	}
	return camp, time.Since(start).Seconds(), nil
}

func campaignHash(camp *dataset.Campaign) [32]byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(camp); err != nil {
		fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
	os.Exit(1)
}
