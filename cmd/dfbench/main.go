// Command dfbench measures the execution engine: it runs the same campaign
// serially and with a parallel worker pool, verifies the outputs are
// byte-identical (the engine's core contract), and writes the timings as
// JSON for the benchmark ledger.
//
//	dfbench [-days N] [-seed S] [-workers N] [-cori] [-out BENCH_engine.json] [-telemetry FILE] [-pprof ADDR]
//
// The speedup is bounded by the host: on a single-core container the
// parallel run can be no faster than the serial one (the JSON records the
// CPU count so readers can tell). On a multi-core host expect near-linear
// scaling up to the worker count, since campaign runs are independent.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

type result struct {
	Benchmark   string  `json:"benchmark"`
	CPUs        int     `json:"cpus"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Machine     string  `json:"machine"`
	Days        float64 `json:"days"`
	Seed        int64   `json:"seed"`
	Runs        int     `json:"runs"`
	Workers     int     `json:"workers"`
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"`
	Hash        string  `json:"campaign_sha256"`
}

func main() {
	days := flag.Float64("days", 10, "campaign length in days")
	seed := flag.Int64("seed", 42, "campaign seed")
	workers := flag.Int("workers", 4, "parallel worker count to compare against serial")
	cori := flag.Bool("cori", false, "benchmark the full Cori machine instead of the small one")
	out := flag.String("out", "BENCH_engine.json", "output JSON file")
	tmPath := flag.String("telemetry", "", "write a telemetry snapshot (metrics + span trace) to this JSON file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and /telemetry on this address (e.g. localhost:6060)")
	flag.Parse()

	// enable before the clusters are built so their handles are live; the
	// determinism check below then doubles as proof that telemetry is
	// observation-only (identical hashes with instrumentation recording)
	if *tmPath != "" || *pprofAddr != "" {
		telemetry.Enable(telemetry.New())
	}
	if *pprofAddr != "" {
		if err := telemetry.ServePprof(*pprofAddr); err != nil {
			fatal(err)
		}
	}
	defer func() {
		if err := telemetry.Flush(*tmPath); err != nil {
			fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
		}
	}()

	cfg := cluster.Config{Days: *days, Seed: *seed}
	machine := "small"
	if !*cori {
		cfg.Machine = topology.Small()
	} else {
		machine = "cori"
	}

	serialCamp, serialSec, err := timeCampaign(cfg, 1)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serial   (workers=1): %d runs in %.2fs\n", serialCamp.TotalRuns(), serialSec)

	parCamp, parSec, err := timeCampaign(cfg, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "parallel (workers=%d): %d runs in %.2fs\n", *workers, parCamp.TotalRuns(), parSec)

	h1, h2 := campaignHash(serialCamp), campaignHash(parCamp)
	res := result{
		Benchmark:   "campaign-engine",
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Machine:     machine,
		Days:        *days,
		Seed:        *seed,
		Runs:        serialCamp.TotalRuns(),
		Workers:     *workers,
		SerialSec:   serialSec,
		ParallelSec: parSec,
		Speedup:     serialSec / parSec,
		Identical:   h1 == h2,
		Hash:        hex.EncodeToString(h1[:8]),
	}
	if !res.Identical {
		fatal(fmt.Errorf("DETERMINISM VIOLATION: workers=1 and workers=%d campaigns differ", *workers))
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "speedup %.2fx on %d CPUs, outputs identical; wrote %s\n", res.Speedup, res.CPUs, *out)
	os.Stdout.Write(blob)
}

func timeCampaign(cfg cluster.Config, workers int) (*dataset.Campaign, float64, error) {
	cfg.Workers = workers
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	camp, err := c.RunCampaign()
	if err != nil {
		return nil, 0, err
	}
	return camp, time.Since(start).Seconds(), nil
}

func campaignHash(camp *dataset.Campaign) [32]byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(camp); err != nil {
		fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dfbench: %v\n", err)
	os.Exit(1)
}
