package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAppendLedgerWrapsLegacyObject: a pre-policy ledger holding a single
// result object is wrapped into an array and its fields survive verbatim;
// new rows append.
func TestAppendLedgerWrapsLegacyObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	legacy := `{
  "benchmark": "campaign-engine",
  "seed": 42,
  "identical": true,
  "campaign_sha256": "d3c8bfd035f1e016"
}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	res := result{Benchmark: "campaign-engine", Seed: 42, Routing: "minimal",
		Placement: "firstfit", Reps: 3, Identical: true, Hash: "aaaa"}
	if _, err := appendLedger(path, res); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]interface{}
	if err := json.Unmarshal(blob, &entries); err != nil {
		t.Fatalf("ledger is not an array: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("want 2 entries, got %d", len(entries))
	}
	if entries[0]["campaign_sha256"] != "d3c8bfd035f1e016" {
		t.Fatalf("legacy entry lost: %v", entries[0])
	}
	if _, ok := entries[0]["routing"]; ok {
		t.Fatal("legacy entry grew a routing field it never had")
	}
	if entries[1]["routing"] != "minimal" || entries[1]["placement"] != "firstfit" {
		t.Fatalf("new entry wrong: %v", entries[1])
	}
	// the CI determinism grep must keep matching
	if !strings.Contains(string(blob), `"identical": true`) {
		t.Fatal(`ledger lost the "identical": true marker CI greps for`)
	}

	// appending again keeps accumulating
	res.Routing = "adaptive"
	if _, err := appendLedger(path, res); err != nil {
		t.Fatal(err)
	}
	blob, _ = os.ReadFile(path)
	if err := json.Unmarshal(blob, &entries); err != nil || len(entries) != 3 {
		t.Fatalf("want 3 entries, got %d (err %v)", len(entries), err)
	}
}

// TestAppendLedgerFreshFile starts a ledger from nothing.
func TestAppendLedgerFreshFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	if _, err := appendLedger(path, result{Benchmark: "campaign-engine", Routing: "feedback"}); err != nil {
		t.Fatal(err)
	}
	var entries []result
	blob, _ := os.ReadFile(path)
	if err := json.Unmarshal(blob, &entries); err != nil || len(entries) != 1 {
		t.Fatalf("want 1 entry, got %d (err %v)", len(entries), err)
	}
	if entries[0].Routing != "feedback" {
		t.Fatalf("row lost its policy: %+v", entries[0])
	}
}
