package traceio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := [][]float64{
		{100, 200, 300},
		{150, 200, 290}, // counters may also decrease (derived values)
		{151, 250, 500},
	}
	times := []float64{0.5, 1.5, 61.5}
	for i := range in {
		if err := w.WriteSample(times[i], in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	gotT, gotV, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotT) != 3 {
		t.Fatalf("samples = %d", len(gotT))
	}
	for i := range in {
		if math.Abs(gotT[i]-times[i]) > 1e-9 {
			t.Fatalf("time[%d] = %v, want %v", i, gotT[i], times[i])
		}
		for j := range in[i] {
			if gotV[i][j] != in[i][j] {
				t.Fatalf("value[%d][%d] = %v, want %v", i, j, gotV[i][j], in[i][j])
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(raw [4][2]int32, startMs uint16) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 2)
		if err != nil {
			return false
		}
		tcur := float64(startMs) / 1000
		var want [][]float64
		for _, pair := range raw {
			vals := []float64{float64(pair[0]), float64(pair[1])}
			if err := w.WriteSample(tcur, vals); err != nil {
				return false
			}
			want = append(want, vals)
			tcur += 0.25
		}
		if err := w.Flush(); err != nil {
			return false
		}
		_, got, err := ReadAll(&buf)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// monotone counters with small increments should compress far below
	// 8 bytes per value
	var buf bytes.Buffer
	series := 100
	w, err := NewWriter(&buf, series)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, series)
	for s := 0; s < 1000; s++ {
		for j := range vals {
			vals[j] += float64(j % 7)
		}
		if err := w.WriteSample(float64(s), vals); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	raw := 1000 * series * 8
	if buf.Len() > raw/4 {
		t.Fatalf("log is %d bytes; raw float64 would be %d — compression too weak", buf.Len(), raw)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("zero series should be rejected")
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	if err := w.WriteSample(1, []float64{1}); err == nil {
		t.Fatal("short sample should be rejected")
	}
	if err := w.WriteSample(5, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSample(4, []float64{1, 2}); err == nil {
		t.Fatal("time going backwards should be rejected")
	}
}

func TestReaderValidation(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTALOG!xxxx"))); err == nil {
		t.Fatal("bad magic should be rejected")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should be rejected")
	}
	// header with zero series count
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], 0)
	buf.Write(tmp[:n])
	if _, err := NewReader(&buf); err == nil {
		t.Fatal("zero series count should be rejected")
	}
}

func TestTruncatedLog(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 4)
	w.WriteSample(1, []float64{1, 2, 3, 4})
	w.WriteSample(2, []float64{5, 6, 7, 8})
	w.Flush()
	// chop the tail mid-sample
	data := buf.Bytes()[:buf.Len()-2]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(nil); err != nil {
		t.Fatal("first sample should read fine")
	}
	_, _, err = r.Next(nil)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("truncated sample should be a hard error, got %v", err)
	}
}

func TestNextDstReuse(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.WriteSample(1, []float64{10, 20})
	w.WriteSample(2, []float64{30, 40})
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 2)
	_, v1, err := r.Next(dst)
	if err != nil || &v1[0] != &dst[0] {
		t.Fatal("Next should fill the provided buffer")
	}
	if _, _, err := r.Next(make([]float64, 3)); err == nil {
		t.Fatal("wrong-size dst should be rejected")
	}
}
