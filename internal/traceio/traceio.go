// Package traceio implements a compact binary log for system-wide counter
// samples — the stand-in for the LDMS monitoring pipeline of §III-C, which
// on Cori sampled every router once per second and produced on the order
// of 5 TB per day. Samples are stored as varint-encoded deltas against the
// previous sample, which compresses monotonically increasing hardware
// counters by an order of magnitude compared to raw float64 dumps.
//
// The format:
//
//	magic "DFLDMS1\n"
//	uvarint numSeries
//	repeated samples:
//	    uvarint dtMillis   (against the previous sample; first is absolute)
//	    numSeries × varint delta of the quantized (rounded) value
//
// A Writer and Reader pair round-trips any series whose values fit int64
// after rounding; hardware counters do.
package traceio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

const magic = "DFLDMS1\n"

// Writer streams samples to an underlying writer.
type Writer struct {
	w         *bufio.Writer
	numSeries int
	prev      []int64
	prevMs    uint64
	started   bool
	buf       []byte
}

// NewWriter writes the header and returns a writer for numSeries parallel
// counter series.
func NewWriter(w io.Writer, numSeries int) (*Writer, error) {
	if numSeries <= 0 {
		return nil, fmt.Errorf("traceio: numSeries must be positive")
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(numSeries))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{
		w:         bw,
		numSeries: numSeries,
		prev:      make([]int64, numSeries),
		buf:       make([]byte, binary.MaxVarintLen64),
	}, nil
}

// WriteSample appends one sample at time t (seconds). len(values) must be
// numSeries. Timestamps must be non-decreasing.
func (w *Writer) WriteSample(t float64, values []float64) error {
	if len(values) != w.numSeries {
		return fmt.Errorf("traceio: sample has %d series, want %d", len(values), w.numSeries)
	}
	ms := uint64(math.Round(t * 1000))
	var dt uint64
	if w.started {
		if ms < w.prevMs {
			return fmt.Errorf("traceio: timestamps must be non-decreasing (%d after %d)", ms, w.prevMs)
		}
		dt = ms - w.prevMs
	} else {
		dt = ms
		w.started = true
	}
	w.prevMs = ms
	n := binary.PutUvarint(w.buf, dt)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	for i, v := range values {
		q := int64(math.Round(v))
		delta := q - w.prev[i]
		w.prev[i] = q
		n := binary.PutVarint(w.buf, delta)
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader iterates a log produced by Writer.
type Reader struct {
	r         *bufio.Reader
	numSeries int
	prev      []int64
	prevMs    uint64
	started   bool
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("traceio: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("traceio: bad magic — not a DFLDMS1 log")
	}
	ns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading series count: %w", err)
	}
	if ns == 0 || ns > 1<<28 {
		return nil, fmt.Errorf("traceio: implausible series count %d", ns)
	}
	return &Reader{r: br, numSeries: int(ns), prev: make([]int64, ns)}, nil
}

// NumSeries returns the number of parallel series in the log.
func (r *Reader) NumSeries() int { return r.numSeries }

// Next returns the next sample, filling dst (allocated when nil) with the
// reconstructed absolute values. Returns io.EOF cleanly at end of log.
func (r *Reader) Next(dst []float64) (t float64, values []float64, err error) {
	dt, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("traceio: reading timestamp: %w", err)
	}
	if r.started {
		r.prevMs += dt
	} else {
		r.prevMs = dt
		r.started = true
	}
	if dst == nil {
		dst = make([]float64, r.numSeries)
	}
	if len(dst) != r.numSeries {
		return 0, nil, fmt.Errorf("traceio: dst has %d series, want %d", len(dst), r.numSeries)
	}
	for i := 0; i < r.numSeries; i++ {
		delta, err := binary.ReadVarint(r.r)
		if err != nil {
			// EOF mid-sample is corruption, not a clean end of log
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("traceio: truncated sample: %w", err)
		}
		r.prev[i] += delta
		dst[i] = float64(r.prev[i])
	}
	return float64(r.prevMs) / 1000, dst, nil
}

// ReadAll drains the log, returning timestamps and samples.
func ReadAll(r io.Reader) (times []float64, samples [][]float64, err error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	for {
		t, v, err := rd.Next(nil)
		if errors.Is(err, io.EOF) {
			return times, samples, nil
		}
		if err != nil {
			return nil, nil, err
		}
		times = append(times, t)
		samples = append(samples, v)
	}
}
