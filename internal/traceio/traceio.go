// Package traceio implements a compact binary log for system-wide counter
// samples — the stand-in for the LDMS monitoring pipeline of §III-C, which
// on Cori sampled every router once per second and produced on the order
// of 5 TB per day. Samples are stored as varint-encoded deltas against the
// previous sample, which compresses monotonically increasing hardware
// counters by an order of magnitude compared to raw float64 dumps.
//
// The current format (version 2):
//
//	magic "DFLDMS2\n"
//	uvarint numSeries
//	repeated samples:
//	    uvarint dtMillis   (against the previous sample; first is absolute)
//	    flags byte         (bit 0: missing sample — sampler was down)
//	    if not missing:
//	        numSeries × varint delta of the quantized (rounded) value
//
// A missing sample carries only its timestamp: the monitor knew the wall
// clock but lost the counter reads (a sampler dropout, §"Fault model" in
// DESIGN.md). Readers surface it as a row of NaN plus the Missing flag.
// Version-1 logs ("DFLDMS1\n", no flags byte) are still readable.
//
// A Writer and Reader pair round-trips any series whose values fit int64
// after rounding; hardware counters do.
package traceio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

const (
	magic   = "DFLDMS2\n"
	magicV1 = "DFLDMS1\n"

	// flagMissing marks a sample whose counter values were lost; all other
	// flag bits are reserved and must be zero.
	flagMissing = 1 << 0

	// maxSeries bounds the header series count. A full Cori-scale machine
	// is ~12k routers × 4 series ≈ 5·10⁴; anything near the cap is a
	// corrupt or hostile header, and rejecting it early keeps Reader from
	// allocating gigabytes off four bytes of input.
	maxSeries = 1 << 20
)

// Writer streams samples to an underlying writer, always in version-2
// format.
type Writer struct {
	w         *bufio.Writer
	numSeries int
	prev      []int64
	prevMs    uint64
	started   bool
	buf       []byte
}

// NewWriter writes the header and returns a writer for numSeries parallel
// counter series.
func NewWriter(w io.Writer, numSeries int) (*Writer, error) {
	if numSeries <= 0 {
		return nil, fmt.Errorf("traceio: numSeries must be positive")
	}
	if numSeries > maxSeries {
		return nil, fmt.Errorf("traceio: numSeries %d exceeds the format cap %d", numSeries, maxSeries)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(numSeries))
	if _, err := bw.Write(tmp[:n]); err != nil {
		return nil, err
	}
	return &Writer{
		w:         bw,
		numSeries: numSeries,
		prev:      make([]int64, numSeries),
		buf:       make([]byte, binary.MaxVarintLen64),
	}, nil
}

// writeStamp encodes the timestamp delta and flags byte shared by both
// sample kinds.
func (w *Writer) writeStamp(t float64, flags byte) error {
	ms := uint64(math.Round(t * 1000))
	var dt uint64
	if w.started {
		if ms < w.prevMs {
			return fmt.Errorf("traceio: timestamps must be non-decreasing (%d after %d)", ms, w.prevMs)
		}
		dt = ms - w.prevMs
	} else {
		dt = ms
		w.started = true
	}
	w.prevMs = ms
	n := binary.PutUvarint(w.buf, dt)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	return w.w.WriteByte(flags)
}

// WriteSample appends one sample at time t (seconds). len(values) must be
// numSeries and every value finite — a sampler outage is recorded with
// WriteMissing, never as NaN values. Timestamps must be non-decreasing.
func (w *Writer) WriteSample(t float64, values []float64) error {
	if len(values) != w.numSeries {
		return fmt.Errorf("traceio: sample has %d series, want %d", len(values), w.numSeries)
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("traceio: series %d is %v at t=%v; record sampler outages with WriteMissing, not non-finite values", i, v, t)
		}
	}
	if err := w.writeStamp(t, 0); err != nil {
		return err
	}
	for i, v := range values {
		q := int64(math.Round(v))
		delta := q - w.prev[i]
		w.prev[i] = q
		n := binary.PutVarint(w.buf, delta)
		if _, err := w.w.Write(w.buf[:n]); err != nil {
			return err
		}
	}
	return nil
}

// WriteMissing appends a missing-sample marker at time t: the sampler was
// in a dropout window and recorded no counter values. The delta baseline is
// unchanged, so the first healthy sample after the gap still round-trips.
func (w *Writer) WriteMissing(t float64) error {
	return w.writeStamp(t, flagMissing)
}

// Flush pushes buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader iterates a log produced by Writer. It reads both the current
// version-2 format and legacy version-1 logs (which cannot contain missing
// markers).
type Reader struct {
	r         *bufio.Reader
	numSeries int
	prev      []int64
	prevMs    uint64
	started   bool
	v1        bool
	missing   bool
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("traceio: reading header: %w", err)
	}
	var v1 bool
	switch string(head) {
	case magic:
	case magicV1:
		v1 = true
	default:
		return nil, errors.New("traceio: bad magic — not a DFLDMS log")
	}
	ns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading series count: %w", err)
	}
	if ns == 0 || ns > maxSeries {
		return nil, fmt.Errorf("traceio: implausible series count %d", ns)
	}
	return &Reader{r: br, numSeries: int(ns), prev: make([]int64, ns), v1: v1}, nil
}

// NumSeries returns the number of parallel series in the log.
func (r *Reader) NumSeries() int { return r.numSeries }

// Missing reports whether the sample most recently returned by Next was a
// missing-sample marker (its values are all NaN).
func (r *Reader) Missing() bool { return r.missing }

// Next returns the next sample, filling dst (allocated when nil) with the
// reconstructed absolute values. For a missing-sample marker the values are
// all NaN and Missing() reports true until the following Next call.
// Returns io.EOF cleanly at end of log.
func (r *Reader) Next(dst []float64) (t float64, values []float64, err error) {
	dt, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("traceio: reading timestamp: %w", err)
	}
	if r.started {
		r.prevMs += dt
	} else {
		r.prevMs = dt
		r.started = true
	}
	r.missing = false
	if !r.v1 {
		flags, err := r.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("traceio: truncated sample: %w", err)
		}
		if flags&^flagMissing != 0 {
			return 0, nil, fmt.Errorf("traceio: unknown sample flags %#x (corrupt log?)", flags)
		}
		r.missing = flags&flagMissing != 0
	}
	if dst == nil {
		dst = make([]float64, r.numSeries)
	}
	if len(dst) != r.numSeries {
		return 0, nil, fmt.Errorf("traceio: dst has %d series, want %d", len(dst), r.numSeries)
	}
	if r.missing {
		for i := range dst {
			dst[i] = math.NaN()
		}
		return float64(r.prevMs) / 1000, dst, nil
	}
	for i := 0; i < r.numSeries; i++ {
		delta, err := binary.ReadVarint(r.r)
		if err != nil {
			// EOF mid-sample is corruption, not a clean end of log
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, fmt.Errorf("traceio: truncated sample: %w", err)
		}
		r.prev[i] += delta
		dst[i] = float64(r.prev[i])
	}
	return float64(r.prevMs) / 1000, dst, nil
}

// ReadAll drains the log, returning timestamps and samples. Missing-sample
// markers appear as all-NaN rows.
func ReadAll(r io.Reader) (times []float64, samples [][]float64, err error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	for {
		t, v, err := rd.Next(nil)
		if errors.Is(err, io.EOF) {
			return times, samples, nil
		}
		if err != nil {
			return nil, nil, err
		}
		times = append(times, t)
		samples = append(samples, v)
	}
}
