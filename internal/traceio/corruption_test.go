package traceio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// buildLog returns a small healthy v2 log with a missing marker in the
// middle. Writes to a bytes.Buffer cannot fail, so errors are impossible
// here.
func buildLog() []byte {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 3)
	w.WriteSample(1, []float64{10, 20, 30})
	w.WriteMissing(2)
	w.WriteSample(3, []float64{15, 25, 35})
	w.Flush()
	return buf.Bytes()
}

func TestMissingMarkerRoundTrip(t *testing.T) {
	data := buildLog()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, v, err := r.Next(nil)
	if err != nil || r.Missing() {
		t.Fatalf("first sample: err %v, missing %v", err, r.Missing())
	}
	if v[0] != 10 {
		t.Fatalf("first sample value %v", v[0])
	}
	ts, v, err := r.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Missing() {
		t.Fatal("second sample should be the missing marker")
	}
	if ts != 2 {
		t.Fatalf("missing marker at t=%v, want 2", ts)
	}
	for i, x := range v {
		if !math.IsNaN(x) {
			t.Fatalf("missing value[%d] = %v, want NaN", i, x)
		}
	}
	// the healthy sample after the gap reconstructs against the pre-gap
	// baseline
	_, v, err = r.Next(nil)
	if err != nil || r.Missing() {
		t.Fatalf("third sample: err %v, missing %v", err, r.Missing())
	}
	if v[0] != 15 || v[1] != 25 || v[2] != 35 {
		t.Fatalf("post-gap sample %v", v)
	}
	if _, _, err := r.Next(nil); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestWriteSampleRejectsNaN(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	if err := w.WriteSample(1, []float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN value should be rejected")
	}
	if err := w.WriteSample(1, []float64{math.Inf(1), 2}); err == nil {
		t.Fatal("Inf value should be rejected")
	}
	if err := w.WriteSample(1, []float64{1, 2}); err != nil {
		t.Fatalf("finite sample after rejection should still work: %v", err)
	}
}

func TestReadV1Log(t *testing.T) {
	// hand-rolled legacy log: v1 magic, series count, samples with no
	// flags byte
	var buf bytes.Buffer
	buf.WriteString(magicV1)
	var tmp [binary.MaxVarintLen64]byte
	put := func(u uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], u)]) }
	putS := func(v int64) { buf.Write(tmp[:binary.PutVarint(tmp[:], v)]) }
	put(2)    // numSeries
	put(1000) // t = 1s
	putS(7)   // series 0
	putS(-3)  // series 1
	put(500)  // t = 1.5s
	putS(1)
	putS(1)
	times, samples, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 1.5 {
		t.Fatalf("times = %v", times)
	}
	if samples[0][0] != 7 || samples[0][1] != -3 || samples[1][0] != 8 || samples[1][1] != -2 {
		t.Fatalf("samples = %v", samples)
	}
}

func TestUnknownFlagsRejected(t *testing.T) {
	data := buildLog()
	// the flags byte of the first sample sits right after the header and
	// the one-byte timestamp varint
	idx := len(magic) + 1 + 1
	data[idx] |= 0x80
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(nil); err == nil {
		t.Fatal("unknown flag bits should be a hard error")
	}
}

// TestTruncationAtEveryByte chops a healthy log at every possible length
// and asserts the reader never panics: it either errors descriptively or
// ends with a clean EOF at a sample boundary.
func TestTruncationAtEveryByte(t *testing.T) {
	data := buildLog()
	for n := 0; n < len(data); n++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic reading log truncated to %d bytes: %v", n, p)
				}
			}()
			r, err := NewReader(bytes.NewReader(data[:n]))
			if err != nil {
				return // header rejected: fine
			}
			for {
				_, _, err := r.Next(nil)
				if errors.Is(err, io.EOF) {
					return // clean boundary: fine
				}
				if err != nil {
					return // descriptive error: fine
				}
			}
		}()
	}
}

// TestRandomCorruption flips bytes in a healthy log and asserts reading
// never panics and never loops forever.
func TestRandomCorruption(t *testing.T) {
	base := buildLog()
	for pos := 0; pos < len(base); pos++ {
		for _, b := range []byte{0x00, 0xff, 0x80} {
			data := append([]byte(nil), base...)
			data[pos] = b
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("panic reading log with byte %d set to %#x: %v", pos, b, p)
					}
				}()
				r, err := NewReader(bytes.NewReader(data))
				if err != nil {
					return
				}
				for i := 0; i < 100; i++ { // bounded: corrupt dt can't add samples
					if _, _, err := r.Next(nil); err != nil {
						return
					}
				}
				t.Fatalf("corrupt log at byte %d=%#x yielded >100 samples", pos, b)
			}()
		}
	}
}

func FuzzReader(f *testing.F) {
	f.Add(buildLog())
	f.Add([]byte(magic))
	f.Add([]byte(magicV1 + "\x02\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, _, err := r.Next(nil); err != nil {
				return
			}
		}
	})
}
