// Package counters implements the Aries network hardware performance
// counters of Table II of the paper, the per-router counter boards the
// network simulator accumulates into, the AriesNCL-style per-job collection
// (counters may only be read for routers directly connected to a job's
// nodes), and the LDMS-style system-wide sampling that produces the "io"
// and "sys" features of §V-C.
package counters

import (
	"fmt"
	"math"

	"dragonvar/internal/topology"
)

// Missing returns the explicit missing-sample marker recorded when the
// counter samplers were in a dropout window: NaN, which is never produced
// by a healthy read (counters are finite and non-negative) and which the
// gap-tolerant analysis code in internal/dataset detects with IsMissing.
// A missing observation must never be confused with a zero delta.
func Missing() float64 { return math.NaN() }

// IsMissing reports whether a recorded value is the missing-sample marker.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Index identifies one of the 13 job-visible hardware counters, in the
// order of Table II (which is also the feature order of Figures 9 and 11).
type Index int

const (
	// RTFlitTot is AR_RTR_INQ_PRF_INCOMING_FLIT_TOTAL (derived): total
	// number of flits received on the router tiles.
	RTFlitTot Index = iota
	// RTPktTot is AR_RTR_INQ_PRF_INCOMING_PKT_TOTAL (derived): total number
	// of packets received on the router tiles.
	RTPktTot
	// RTRB2xUsg is AR_RTR_INQ_PRF_ROWBUS_2X_USAGE_CNT: cycles in which two
	// stalls occur on a router tile.
	RTRB2xUsg
	// RTRBStl is AR_RTR_INQ_PRF_ROWBUS_STALL_CNT: total cycles stalled on
	// router tiles.
	RTRBStl
	// PTCBStlRq is AR_RTR_PT_COLBUF_PERF_STALL_RQ: cycles a processor tile
	// is stalled for request VCs.
	PTCBStlRq
	// PTCBStlRs is AR_RTR_PT_COLBUF_PERF_STALL_RS: cycles a processor tile
	// is stalled for response VCs.
	PTCBStlRs
	// PTFlitVC0 is AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC0: flits received on
	// processor tiles on VC0 (requests).
	PTFlitVC0
	// PTFlitVC4 is AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC4: flits received on
	// processor tiles on VC4 (responses).
	PTFlitVC4
	// PTFlitTot is AR_RTR_PT_INQ_PRF_INCOMING_FLIT_TOTAL (derived): total
	// flits received on processor tiles.
	PTFlitTot
	// PTPktTot is AR_RTR_PT_INQ_PRF_INCOMING_PKT_TOTAL (derived):
	// PT_RB_STL_RQ + PT_RB_STL_RS per Table II's derivation.
	PTPktTot
	// PTRBStlRq is AR_RTR_PT_INQ_PRF_REQ_ROWBUS_STALL_CNT: cycles stalled
	// on processor-tile request VCs.
	PTRBStlRq
	// PTRB2xUsg is AR_RTR_PT_INQ_PRF_ROWBUS_2X_USAGE_CNT: cycles in which
	// two stalls occur on a processor tile.
	PTRB2xUsg
	// PTRBStlRs is AR_RTR_PT_INQ_PRF_RSP_ROWBUS_STALL_CNT: cycles stalled
	// on processor-tile response VCs.
	PTRBStlRs

	// NumJob is the number of job-visible counters.
	NumJob int = iota
)

// Info describes one Table II row.
type Info struct {
	Abbrev      string // short name used throughout the paper's figures
	AriesName   string // full hardware counter name
	Derived     bool   // derived from raw counters rather than read directly
	Description string
}

// Table is the Table II registry, indexed by Index.
var Table = [NumJob]Info{
	RTFlitTot: {"RT_FLIT_TOT", "AR_RTR_INQ_PRF_INCOMING_FLIT_TOTAL", true, "Total number of flits received on router tile"},
	RTPktTot:  {"RT_PKT_TOT", "AR_RTR_INQ_PRF_INCOMING_PKT_TOTAL", true, "Total number of packets received on router tile"},
	RTRB2xUsg: {"RT_RB_2X_USG", "AR_RTR_INQ_PRF_ROWBUS_2X_USAGE_CNT", false, "Number of cycles in which two stalls occur on a router tile"},
	RTRBStl:   {"RT_RB_STL", "AR_RTR_INQ_PRF_ROWBUS_STALL_CNT", false, "Total number of cycles stalled on router tile"},
	PTCBStlRq: {"PT_CB_STL_RQ", "AR_RTR_PT_COLBUF_PERF_STALL_RQ", false, "Number of cycles a processor tile is stalled for request VCs"},
	PTCBStlRs: {"PT_CB_STL_RS", "AR_RTR_PT_COLBUF_PERF_STALL_RS", false, "Number of cycles a processor tile is stalled for response VCs"},
	PTFlitVC0: {"PT_FLIT_VC0", "AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC0", false, "Number of flits received on processor tile on VC0"},
	PTFlitVC4: {"PT_FLIT_VC4", "AR_RTR_PT_INQ_PRF_INCOMING_FLIT_VC4", false, "Number of flits received on processor tile on VC4"},
	PTFlitTot: {"PT_FLIT_TOT", "AR_RTR_PT_INQ_PRF_INCOMING_FLIT_TOTAL", true, "Total number of flits received on processor tile"},
	PTPktTot:  {"PT_PKT_TOT", "AR_RTR_PT_INQ_PRF_INCOMING_PKT_TOTAL", true, "PT_RB_STL_RQ + PT_RB_STL_RS"},
	PTRBStlRq: {"PT_RB_STL_RQ", "AR_RTR_PT_INQ_PRF_REQ_ROWBUS_STALL_CNT", false, "Number of cycles stalled on processor tile request VCs"},
	PTRB2xUsg: {"PT_RB_2X_USG", "AR_RTR_PT_INQ_PRF_ROWBUS_2X_USAGE_CNT", false, "Number of cycles in which two stalls occur on a processor tile"},
	PTRBStlRs: {"PT_RB_STL_RS", "AR_RTR_PT_INQ_PRF_RSP_ROWBUS_STALL_CNT", false, "Number of cycles stalled on processor tile response VCs"},
}

// String returns the paper abbreviation of the counter.
func (i Index) String() string {
	if i < 0 || int(i) >= NumJob {
		return fmt.Sprintf("Index(%d)", int(i))
	}
	return Table[i].Abbrev
}

// RouterCounters is the counter bank of one Aries router.
type RouterCounters [NumJob]float64

// Board holds cumulative counters for every router of a machine, the way
// the hardware exposes them: monotonically increasing since boot. Consumers
// read deltas between snapshots, exactly like AriesNCL does per time step.
//
// Storage is one flat arena, router-major: router r's bank occupies
// Data[r*NumJob : (r+1)*NumJob]. Bulk operations (Reset, SnapshotInto,
// DeltaInto) are single passes over the arena, and At hands the simulator a
// dense *RouterCounters view without copying.
type Board struct {
	Data []float64
}

// NewBoard allocates a zeroed board for n routers.
func NewBoard(n int) *Board {
	return &Board{Data: make([]float64, n*NumJob)}
}

// NumRouters returns the number of router banks on the board.
func (b *Board) NumRouters() int { return len(b.Data) / NumJob }

// At returns router r's counter bank as a dense array view into the arena.
func (b *Board) At(r topology.RouterID) *RouterCounters {
	return (*RouterCounters)(b.Data[int(r)*NumJob : int(r)*NumJob+NumJob])
}

// Reset zeroes every counter, as if the routers had just booted. The
// campaign resets the board before each simulated run: deltas of cumulative
// floats are not exact ((X+a)-X ≠ a in floating point), so starting every
// run from zero is what makes its recorded deltas independent of whichever
// runs the same Network simulated before it.
func (b *Board) Reset() {
	clear(b.Data)
}

// Add accumulates v into counter c of router r.
func (b *Board) Add(r topology.RouterID, c Index, v float64) {
	b.Data[int(r)*NumJob+int(c)] += v
}

// Get returns the cumulative value of counter c at router r.
func (b *Board) Get(r topology.RouterID, c Index) float64 {
	return b.Data[int(r)*NumJob+int(c)]
}

// Snapshot returns a deep copy of the board, for later delta computation.
func (b *Board) Snapshot() *Board {
	out := NewBoard(b.NumRouters())
	copy(out.Data, b.Data)
	return out
}

// SnapshotInto copies the board into dst, reusing dst's storage (resized
// if needed). Lets per-step callers avoid an allocation per snapshot.
func (b *Board) SnapshotInto(dst *Board) {
	if len(dst.Data) != len(b.Data) {
		dst.Data = make([]float64, len(b.Data))
	}
	copy(dst.Data, b.Data)
}

// DeltaSum returns, for each counter, the total increase over the given
// routers since the snapshot: the per-step per-job counter vector that
// AriesNCL yields (only routers directly connected to the job's nodes may
// be read, §III-C).
func (b *Board) DeltaSum(since *Board, routers []topology.RouterID) RouterCounters {
	var out RouterCounters
	for _, r := range routers {
		base := int(r) * NumJob
		cur := b.Data[base : base+NumJob]
		old := since.Data[base : base+NumJob]
		for c := 0; c < NumJob; c++ {
			out[c] += cur[c] - old[c]
		}
	}
	return out
}

// LDMSFeature identifies the four counters the LDMS-derived io/sys feature
// groups expose (§V-C): RT flit totals, RT stalls, PT flit totals, and PT
// packet totals, aggregated over I/O routers ("io") or over all routers
// disjoint from the job ("sys").
type LDMSFeature int

const (
	LDMSRTFlitTot LDMSFeature = iota
	LDMSRTRBStl
	LDMSPTFlitTot
	LDMSPTPktTot

	// NumLDMS is the number of LDMS-derived features per group.
	NumLDMS int = iota
)

// ldmsSource maps each LDMS feature to the underlying router counter.
var ldmsSource = [NumLDMS]Index{
	LDMSRTFlitTot: RTFlitTot,
	LDMSRTRBStl:   RTRBStl,
	LDMSPTFlitTot: PTFlitTot,
	LDMSPTPktTot:  PTPktTot,
}

// LDMSNames returns the feature names with the given prefix ("IO" or
// "SYS"), matching Figure 11's axis labels.
func LDMSNames(prefix string) []string {
	out := make([]string, NumLDMS)
	for i := 0; i < NumLDMS; i++ {
		out[i] = prefix + "_" + Table[ldmsSource[i]].Abbrev
	}
	return out
}

// LDMSSample aggregates the LDMS feature deltas since the snapshot over
// the given routers (callers pass the machine's I/O routers for "io" and
// the complement of the job's routers for "sys").
func (b *Board) LDMSSample(since *Board, routers []topology.RouterID) [NumLDMS]float64 {
	var out [NumLDMS]float64
	for _, r := range routers {
		base := int(r) * NumJob
		cur := b.Data[base : base+NumJob]
		old := since.Data[base : base+NumJob]
		for i := 0; i < NumLDMS; i++ {
			c := ldmsSource[i]
			out[i] += cur[c] - old[c]
		}
	}
	return out
}

// SampleInto fills dst with the cumulative value of each source counter at
// every router, laid out row-major (router-major): dst[r*len(sources)+k] =
// counter sources[k] at router r. dst must have NumRouters()*len(sources)
// elements. This is the wire layout of a DFLDMS sample row.
func (b *Board) SampleInto(sources []Index, dst []float64) {
	k := len(sources)
	nr := b.NumRouters()
	for r := 0; r < nr; r++ {
		rc := b.Data[r*NumJob : r*NumJob+NumJob]
		for i, src := range sources {
			dst[r*k+i] = rc[src]
		}
	}
}

// DeltaInto fills dst with the per-router increase of each source counter
// since the snapshot, in the same router-major layout as SampleInto. dst
// must have NumRouters()*len(sources) elements.
func (b *Board) DeltaInto(since *Board, sources []Index, dst []float64) {
	k := len(sources)
	nr := b.NumRouters()
	for r := 0; r < nr; r++ {
		cur := b.Data[r*NumJob : r*NumJob+NumJob]
		old := since.Data[r*NumJob : r*NumJob+NumJob]
		for i, src := range sources {
			dst[r*k+i] = cur[src] - old[src]
		}
	}
}

// FeatureSet selects which feature groups a model sees, mirroring the
// ablations of §V-C: the job's own counters are always present; placement,
// io, and sys features are optional extras.
type FeatureSet struct {
	Placement bool // NUM_ROUTERS, NUM_GROUPS
	IO        bool // LDMS features over I/O routers
	Sys       bool // LDMS features over routers disjoint from the job
}

// String names the feature set the way the paper's legends do.
func (f FeatureSet) String() string {
	s := "app"
	if f.Placement {
		s += " + placement"
	}
	if f.IO {
		s += " + io"
	}
	if f.Sys {
		s += " + sys"
	}
	return s
}

// Names returns the feature names of the set, in model column order:
// the 13 Table II counters, then NUM_ROUTERS/NUM_GROUPS, then IO_*, then
// SYS_* — the exact order of Figure 11's right plot.
func (f FeatureSet) Names() []string {
	out := make([]string, 0, NumJob+2+2*NumLDMS)
	for i := 0; i < NumJob; i++ {
		out = append(out, Table[i].Abbrev)
	}
	if f.Placement {
		out = append(out, "NUM_ROUTERS", "NUM_GROUPS")
	}
	if f.IO {
		out = append(out, LDMSNames("IO")...)
	}
	if f.Sys {
		out = append(out, LDMSNames("SYS")...)
	}
	return out
}

// Count returns the number of feature columns in the set.
func (f FeatureSet) Count() int {
	n := NumJob
	if f.Placement {
		n += 2
	}
	if f.IO {
		n += NumLDMS
	}
	if f.Sys {
		n += NumLDMS
	}
	return n
}
