package counters

import (
	"strings"
	"testing"

	"dragonvar/internal/topology"
)

func TestTableComplete(t *testing.T) {
	if NumJob != 13 {
		t.Fatalf("NumJob = %d, want 13 (Table II)", NumJob)
	}
	seen := map[string]bool{}
	for i := 0; i < NumJob; i++ {
		info := Table[i]
		if info.Abbrev == "" || info.AriesName == "" || info.Description == "" {
			t.Fatalf("incomplete Table entry %d: %+v", i, info)
		}
		if seen[info.Abbrev] {
			t.Fatalf("duplicate abbreviation %q", info.Abbrev)
		}
		seen[info.Abbrev] = true
		if !strings.HasPrefix(info.AriesName, "AR_RTR_") {
			t.Fatalf("counter %d has non-Aries name %q", i, info.AriesName)
		}
	}
	// router-tile counters come before processor-tile counters, per Table II
	if !strings.HasPrefix(Table[RTFlitTot].Abbrev, "RT_") || !strings.HasPrefix(Table[PTRBStlRs].Abbrev, "PT_") {
		t.Fatal("counter prefixes wrong")
	}
}

func TestIndexString(t *testing.T) {
	if RTRBStl.String() != "RT_RB_STL" {
		t.Fatalf("RTRBStl.String() = %q", RTRBStl.String())
	}
	if Index(-1).String() != "Index(-1)" {
		t.Fatal("out-of-range String() should be diagnostic")
	}
}

func TestBoardAddGet(t *testing.T) {
	b := NewBoard(10)
	b.Add(3, RTRBStl, 5)
	b.Add(3, RTRBStl, 2)
	if b.Get(3, RTRBStl) != 7 {
		t.Fatalf("Get = %v", b.Get(3, RTRBStl))
	}
	if b.Get(3, RTFlitTot) != 0 {
		t.Fatal("untouched counter should be 0")
	}
}

func TestSnapshotIndependent(t *testing.T) {
	b := NewBoard(4)
	b.Add(1, PTFlitTot, 10)
	snap := b.Snapshot()
	b.Add(1, PTFlitTot, 5)
	if snap.Get(1, PTFlitTot) != 10 {
		t.Fatal("snapshot should not track later writes")
	}
}

func TestDeltaSum(t *testing.T) {
	b := NewBoard(6)
	b.Add(2, RTFlitTot, 100)
	snap := b.Snapshot()
	b.Add(2, RTFlitTot, 30)
	b.Add(4, RTFlitTot, 7)
	b.Add(5, RTFlitTot, 1000) // not in our router set

	d := b.DeltaSum(snap, []topology.RouterID{2, 4})
	if d[RTFlitTot] != 37 {
		t.Fatalf("delta = %v, want 37", d[RTFlitTot])
	}
	if d[RTRBStl] != 0 {
		t.Fatal("counter never written should have zero delta")
	}
}

func TestDeltaSumOnlyJobRouters(t *testing.T) {
	// AriesNCL limitation: only the job's own routers are visible
	b := NewBoard(3)
	snap := b.Snapshot()
	b.Add(0, PTRBStlRq, 50)
	d := b.DeltaSum(snap, []topology.RouterID{1, 2})
	if d[PTRBStlRq] != 0 {
		t.Fatal("foreign router counters leaked into the job's view")
	}
}

func TestLDMSSample(t *testing.T) {
	b := NewBoard(4)
	snap := b.Snapshot()
	b.Add(0, RTFlitTot, 10)
	b.Add(0, RTRBStl, 20)
	b.Add(0, PTFlitTot, 30)
	b.Add(0, PTPktTot, 40)
	b.Add(0, PTFlitVC0, 999) // not an LDMS feature

	s := b.LDMSSample(snap, []topology.RouterID{0})
	if s[LDMSRTFlitTot] != 10 || s[LDMSRTRBStl] != 20 || s[LDMSPTFlitTot] != 30 || s[LDMSPTPktTot] != 40 {
		t.Fatalf("LDMS sample = %v", s)
	}
}

func TestLDMSNames(t *testing.T) {
	names := LDMSNames("IO")
	want := []string{"IO_RT_FLIT_TOT", "IO_RT_RB_STL", "IO_PT_FLIT_TOT", "IO_PT_PKT_TOT"}
	if len(names) != len(want) {
		t.Fatalf("LDMSNames len = %d", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("LDMSNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestFeatureSetNamesAndCount(t *testing.T) {
	cases := []struct {
		fs    FeatureSet
		count int
		label string
	}{
		{FeatureSet{}, 13, "app"},
		{FeatureSet{Placement: true}, 15, "app + placement"},
		{FeatureSet{Placement: true, IO: true}, 19, "app + placement + io"},
		{FeatureSet{Placement: true, IO: true, Sys: true}, 23, "app + placement + io + sys"},
	}
	for _, tc := range cases {
		if got := tc.fs.Count(); got != tc.count {
			t.Errorf("%v Count = %d, want %d", tc.fs, got, tc.count)
		}
		if got := len(tc.fs.Names()); got != tc.count {
			t.Errorf("%v Names len = %d, want %d", tc.fs, got, tc.count)
		}
		if got := tc.fs.String(); got != tc.label {
			t.Errorf("String = %q, want %q", got, tc.label)
		}
	}
}

func TestFeatureSetFullOrderMatchesFigure11(t *testing.T) {
	names := FeatureSet{Placement: true, IO: true, Sys: true}.Names()
	want := []string{
		"RT_FLIT_TOT", "RT_PKT_TOT", "RT_RB_2X_USG", "RT_RB_STL",
		"PT_CB_STL_RQ", "PT_CB_STL_RS", "PT_FLIT_VC0", "PT_FLIT_VC4",
		"PT_FLIT_TOT", "PT_PKT_TOT", "PT_RB_STL_RQ", "PT_RB_2X_USG", "PT_RB_STL_RS",
		"NUM_ROUTERS", "NUM_GROUPS",
		"IO_RT_FLIT_TOT", "IO_RT_RB_STL", "IO_PT_FLIT_TOT", "IO_PT_PKT_TOT",
		"SYS_RT_FLIT_TOT", "SYS_RT_RB_STL", "SYS_PT_FLIT_TOT", "SYS_PT_PKT_TOT",
	}
	if len(names) != len(want) {
		t.Fatalf("feature count = %d, want %d", len(names), len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("feature[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSnapshotInto(t *testing.T) {
	b := NewBoard(3)
	b.Add(1, RTFlitTot, 42)
	dst := NewBoard(3)
	b.SnapshotInto(dst)
	if dst.Get(1, RTFlitTot) != 42 {
		t.Fatal("SnapshotInto lost data")
	}
	b.Add(1, RTFlitTot, 1)
	if dst.Get(1, RTFlitTot) != 42 {
		t.Fatal("SnapshotInto should not alias")
	}
	// resizing path
	small := NewBoard(1)
	b.SnapshotInto(small)
	if small.NumRouters() != 3 || small.Get(1, RTFlitTot) != 43 {
		t.Fatal("SnapshotInto resize failed")
	}
}

func TestSampleIntoAndDeltaInto(t *testing.T) {
	b := NewBoard(3)
	b.Add(0, RTFlitTot, 100)
	b.Add(0, RTRBStl, 7)
	b.Add(2, PTFlitTot, 50)
	b.Add(2, PTPktTot, 5)
	sources := []Index{RTFlitTot, RTRBStl, PTFlitTot, PTPktTot}

	dst := make([]float64, 3*len(sources))
	b.SampleInto(sources, dst)
	want := []float64{
		100, 7, 0, 0, // router 0
		0, 0, 0, 0, // router 1
		0, 0, 50, 5, // router 2
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("SampleInto[%d] = %v, want %v", i, dst[i], want[i])
		}
	}

	before := b.Snapshot()
	b.Add(0, RTFlitTot, 10)
	b.Add(1, RTRBStl, 3)
	b.Add(2, PTPktTot, 1)
	b.DeltaInto(before, sources, dst)
	wantDelta := []float64{
		10, 0, 0, 0,
		0, 3, 0, 0,
		0, 0, 0, 1,
	}
	for i := range wantDelta {
		if dst[i] != wantDelta[i] {
			t.Fatalf("DeltaInto[%d] = %v, want %v", i, dst[i], wantDelta[i])
		}
	}
}
