package experiments

import (
	"strings"
	"sync"
	"testing"

	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/mpi"
	"dragonvar/internal/netsim"
	"dragonvar/internal/topology"
)

var (
	suiteOnce sync.Once
	suiteVal  *Suite
)

// testSuite builds one small campaign for the whole package.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		amg := *apps.Find(apps.AMG, 128)
		amg.Steps = 10
		milc := *apps.Find(apps.MILC, 128)
		milc.Steps = 30
		vit := *apps.Find(apps.MiniVite, 128)
		umt := *apps.Find(apps.UMT, 128)
		cl, err := cluster.New(cluster.Config{
			Machine:        topology.Small(),
			Net:            netsim.DefaultConfig(),
			Days:           8,
			Seed:           3,
			Models:         []*apps.Model{&amg, &milc, &vit, &umt},
			MeanRunsPerDay: 2,
		})
		if err != nil {
			panic(err)
		}
		camp, err := cl.RunCampaign()
		if err != nil {
			panic(err)
		}
		suiteVal = &Suite{Camp: camp, Clust: cl, Seed: 3, Fast: true}
	})
	if suiteVal == nil {
		t.Fatal("suite construction failed")
	}
	return suiteVal
}

func TestFigure1(t *testing.T) {
	s := testSuite(t)
	out, maxima := s.Figure1()
	if !strings.Contains(out, "Figure 1") {
		t.Fatal("missing header")
	}
	if len(maxima) < 3 {
		t.Fatalf("maxima for %d datasets", len(maxima))
	}
	for name, v := range maxima {
		if v < 1 {
			t.Fatalf("%s max relative %v < 1", name, v)
		}
	}
}

func TestFigure2(t *testing.T) {
	s := testSuite(t)
	out := s.Figure2()
	if !strings.Contains(out, "groups") || !strings.Contains(out, "blue (global) links") {
		t.Fatalf("census incomplete:\n%s", out)
	}
	// without a cluster the figure degrades gracefully
	empty := &Suite{}
	if !strings.Contains(empty.Figure2(), "unavailable") {
		t.Fatal("nil cluster should degrade gracefully")
	}
}

func TestTable1(t *testing.T) {
	out := (&Suite{}).Table1()
	for _, want := range []string{"AMG 1.1", "MILC 7.8.0", "miniVite 1.0", "UMT 2.0", "nlpkkt240"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := (&Suite{}).Table2()
	for _, want := range []string{"AR_RTR_INQ_PRF_INCOMING_FLIT_TOTAL", "RT_RB_STL", "PT_CB_STL_RQ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	s := testSuite(t)
	out, trends := s.Figure3()
	if !strings.Contains(out, "Figure 3") {
		t.Fatal("missing header")
	}
	milc := trends["MILC-128"]
	if len(milc) != 30 {
		t.Fatalf("MILC trend has %d steps", len(milc))
	}
	// warmup faster than main trajectories, as in the paper
	if milc[5] >= milc[25] {
		t.Fatal("MILC warmup/main structure lost")
	}
}

func TestFigures4And5(t *testing.T) {
	s := testSuite(t)
	f4 := s.Figure4()
	// the small campaign has no 512-node runs; the figure must say so
	if !strings.Contains(f4, "no data") {
		t.Fatalf("Figure 4 should report missing 512-node data:\n%s", f4)
	}
	f5 := s.Figure5()
	for _, want := range []string{"miniVite-128", "UMT-128", "Waitall", "Allreduce"} {
		if !strings.Contains(f5, want) {
			t.Fatalf("Figure 5 missing %q:\n%s", want, f5)
		}
	}
}

func TestFigure7(t *testing.T) {
	s := testSuite(t)
	out, corr := s.Figure7()
	if !strings.Contains(out, "RT_FLIT_TOT") {
		t.Fatal("missing counter trend")
	}
	// Figure 7's claim: counter trends track the time trend
	if corr["RT_FLIT_TOT"] < 0.3 {
		t.Fatalf("flit trend does not track time trend: r=%v", corr["RT_FLIT_TOT"])
	}
}

func TestTable3(t *testing.T) {
	s := testSuite(t)
	out, rows, _ := s.Table3()
	if !strings.Contains(out, "Table III") {
		t.Fatal("missing header")
	}
	if len(rows) != len(s.Camp.Datasets) {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFigure9(t *testing.T) {
	s := testSuite(t)
	out, results := s.Figure9()
	if !strings.Contains(out, "Figure 9") {
		t.Fatal("missing header")
	}
	if len(results) != len(s.Camp.Datasets) {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.MAPE < 0 || r.MAPE > 25 {
			t.Fatalf("%s deviation MAPE = %v%%", r.Dataset, r.MAPE)
		}
	}
}

func TestFigure8(t *testing.T) {
	s := testSuite(t)
	out, results := s.Figure8()
	if !strings.Contains(out, "Figure 8") {
		t.Fatal("missing header")
	}
	// AMG-512 missing on the small machine; AMG-128 has 10 steps so only
	// the m=3/k=5 specs produce windows
	valid := 0
	for _, r := range results {
		if r.MAPE >= 0 {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("no valid forecast results")
	}
}

func TestFigure10(t *testing.T) {
	s := testSuite(t)
	out, results := s.Figure10()
	if !strings.Contains(out, "Figure 10") {
		t.Fatal("missing header")
	}
	valid := 0
	for _, r := range results {
		if r.MAPE >= 0 && r.MAPE < 100 {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("no valid forecast results")
	}
}

func TestFigure11(t *testing.T) {
	s := testSuite(t)
	out, imps := s.Figure11()
	if !strings.Contains(out, "Figure 11") {
		t.Fatal("missing header")
	}
	// MILC-128 (30 steps) supports the fast spec; importance vector sane
	if len(imps) == 0 {
		t.Skip("no dataset long enough for importances at this scale")
	}
	for name, imp := range imps {
		for _, v := range imp {
			if v < 0 {
				t.Fatalf("%s has negative importance", name)
			}
		}
	}
}

func TestFigure12(t *testing.T) {
	s := testSuite(t)
	out, segs, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 12") {
		t.Fatal("missing header")
	}
	if len(segs) < 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	// no cluster → error, not panic
	if _, _, err := (&Suite{Camp: s.Camp}).Figure12(); err == nil {
		t.Fatal("expected error without cluster")
	}
}

func TestMPIProfileFractions(t *testing.T) {
	s := testSuite(t)
	fr := s.MPIProfileFractions()
	if fr["miniVite-128"] < 0.9 {
		t.Fatalf("miniVite MPI fraction = %v, want ~0.98", fr["miniVite-128"])
	}
	if fr["UMT-128"] > 0.7 {
		t.Fatalf("UMT MPI fraction = %v, want ~0.3-0.5", fr["UMT-128"])
	}
}

func TestDominantRoutines(t *testing.T) {
	s := testSuite(t)
	dom := s.DominantRoutines()
	if dom["miniVite-128"] != mpi.Waitall {
		t.Fatalf("miniVite dominant routine = %v, want Waitall", dom["miniVite-128"])
	}
}
