package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dragonvar/internal/cluster"
	"dragonvar/internal/topology"
)

func abBaseConfig(seed int64) cluster.Config {
	return cluster.Config{
		Machine:        topology.Small(),
		Days:           2,
		Seed:           seed,
		MeanRunsPerDay: 2,
		Workers:        2,
	}
}

func TestRunABDistributionsAndDeltas(t *testing.T) {
	cfg := ABConfig{
		Cluster: abBaseConfig(17),
		Arms: []ABArm{
			{Routing: "minimal", Placement: "firstfit"},
			{Routing: "adaptive", Placement: "firstfit"},
		},
		Verify: true,
	}
	res, err := RunAB(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("want 2 arms, got %d", len(res.Arms))
	}
	if res.Arms[0].Hash == res.Arms[1].Hash {
		t.Fatal("minimal and adaptive arms produced identical campaigns")
	}
	anyRuns := false
	for _, ar := range res.Arms {
		if ar.Identical == nil || !*ar.Identical {
			t.Fatalf("arm %s failed serial == parallel verification", ar.ABArm)
		}
		for _, ds := range ar.Datasets {
			if ds.Runs > 0 {
				anyRuns = true
				if ds.Mean <= 0 || ds.Min <= 0 || ds.Max < ds.Min {
					t.Fatalf("arm %s dataset %s has degenerate stats: %+v", ar.ABArm, ds.Dataset, ds)
				}
			}
		}
	}
	if !anyRuns {
		t.Fatal("no dataset recorded any runs")
	}
	if len(res.Deltas) == 0 {
		t.Fatal("no deltas against the baseline")
	}
	for _, d := range res.Deltas {
		if d.Arm != "adaptive/firstfit" {
			t.Fatalf("delta attributed to %q", d.Arm)
		}
	}
	text := res.Render()
	for _, want := range []string{"baseline minimal/firstfit", "adaptive/firstfit", "deltas vs baseline", "byte-identical"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, text)
		}
	}
}

func TestRunABSameArmTwiceIsIdentical(t *testing.T) {
	cfg := ABConfig{
		Cluster: abBaseConfig(17),
		Arms: []ABArm{
			{Routing: "valiant", Placement: "compact"},
			{Routing: "valiant", Placement: "compact"},
		},
	}
	res, err := RunAB(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arms[0].Hash != res.Arms[1].Hash {
		t.Fatal("the same arm run twice produced different campaigns")
	}
	for _, d := range res.Deltas {
		if d.MeanDeltaPct != 0 || d.StdRelDelta != 0 {
			t.Fatalf("nonzero delta between identical arms: %+v", d)
		}
	}
}

func TestRunABBlameFeedsInterference(t *testing.T) {
	cfg := ABConfig{
		Cluster: abBaseConfig(17),
		Arms: []ABArm{
			{Routing: "adaptive", Placement: "firstfit"},
			{Routing: "adaptive", Placement: "interference"},
		},
		Blame: true,
	}
	res, err := RunAB(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms[0].Blamed) != 0 {
		t.Fatal("baseline arm should not carry a blame list")
	}
	// the advisor may legitimately blame nobody on a tiny campaign; the
	// wiring (list propagated to the interference arm) is what's under test
	if res.Arms[1].Blamed == nil {
		t.Skip("advisor blamed no users on this tiny campaign")
	}
}

func TestABResultWriteJSON(t *testing.T) {
	res := &ABResult{
		Seed: 3, Days: 1,
		Arms: []ABArmResult{{ABArm: ABArm{Routing: "minimal", Placement: "firstfit"}, Hash: "ab"}},
	}
	path := filepath.Join(t.TempDir(), "ab.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ABResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed != 3 || len(back.Arms) != 1 || back.Arms[0].Routing != "minimal" {
		t.Fatalf("round-trip lost data: %+v", back)
	}
}

func TestRunABNeedsTwoArms(t *testing.T) {
	_, err := RunAB(context.Background(), ABConfig{Cluster: abBaseConfig(1),
		Arms: []ABArm{{Routing: "minimal", Placement: "firstfit"}}})
	if err == nil {
		t.Fatal("RunAB accepted a single arm")
	}
}
