// Package experiments regenerates every table and figure of the paper's
// evaluation from a simulated campaign. Each method renders one artifact as
// text (via package report) and returns the structured numbers behind it,
// so the CLI, the examples, and the benchmark harness all share one
// implementation.
//
// Index (see DESIGN.md for the full mapping):
//
//	Figure1  — relative performance of the four applications over the campaign
//	Figure2  — dragonfly topology census
//	Table1   — application versions and inputs
//	Figure3  — mean time-per-step behaviour per dataset
//	Figure4  — AMG & MILC compute/MPI split and routine breakdown
//	Figure5  — miniVite & UMT compute/MPI split and routine breakdown
//	Table2   — network hardware counter registry
//	Figure7  — mean counter trends track the mean step-time trend
//	Table3   — users with high MI w.r.t. run optimality
//	Figure9  — RFE relevance scores of counters for deviation prediction
//	Figure8  — forecast MAPE for AMG (m, k, feature ablations)
//	Figure10 — forecast MAPE for MILC (m, k, feature ablations)
//	Figure11 — forecast-model feature importances
//	Figure12 — long-running MILC job: observed vs predicted segments
package experiments

import (
	"context"
	"fmt"
	"strings"

	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/engine"
	"dragonvar/internal/mpi"
	"dragonvar/internal/report"
	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
)

// Suite holds everything needed to regenerate the evaluation.
type Suite struct {
	Camp  *dataset.Campaign
	Clust *cluster.Cluster // nil disables the experiments that re-simulate (Figure 12)
	Seed  int64

	// Fast trades accuracy for speed in the ML-heavy experiments
	// (fewer folds, smaller models); used by tests.
	Fast bool
	// Workers bounds the concurrency of All and of the ML loops inside the
	// per-artifact analyses (0 means engine.Workers). Rendered output is
	// identical at every worker count.
	Workers int
}

func (s *Suite) forecastOpts() core.ForecastOptions {
	if s.Fast {
		return core.ForecastOptions{Folds: 2, Workers: s.Workers}
	}
	return core.ForecastOptions{Folds: 3, Workers: s.Workers}
}

func (s *Suite) deviationOpts() core.DeviationOptions {
	if s.Fast {
		return core.DeviationOptions{Folds: 4, MaxSamples: 800, Workers: s.Workers}
	}
	return core.DeviationOptions{Folds: 10, MaxSamples: 3000, Workers: s.Workers}
}

// cheapArtifacts are the artifact names rendered by default; the ML-heavy
// ones must be requested explicitly (or via AllArtifacts).
var cheapArtifacts = []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig7", "table3"}

// heavyArtifacts run the ML pipelines (RFE, forecaster training, the long
// re-simulated run of Figure 12).
var heavyArtifacts = []string{"fig9", "fig8", "fig10", "fig11", "fig12"}

// CheapArtifacts returns the default artifact list, in render order.
func CheapArtifacts() []string {
	return append([]string(nil), cheapArtifacts...)
}

// AllArtifacts returns every artifact name, in render order.
func AllArtifacts() []string {
	return append(CheapArtifacts(), heavyArtifacts...)
}

// NeedsCluster reports whether any of the named artifacts re-simulates and
// therefore needs Suite.Clust (Figure 2 reads the topology, Figure 12 runs
// the long MILC job).
func NeedsCluster(names []string) bool {
	for _, n := range names {
		if n == "fig2" || n == "fig12" {
			return true
		}
	}
	return false
}

// Render regenerates one artifact by name ("table1" … "fig12") and returns
// its text rendering. Unknown names are an error. Render is safe to call
// concurrently: every analysis derives its randomness from (Seed, artifact)
// and re-simulation runs on a private worker context.
func (s *Suite) Render(name string) (string, error) {
	_, span := telemetry.Start(context.Background(), telemetry.SpanReportPrefix+name)
	defer span.End()
	switch name {
	case "table1":
		return s.Table1(), nil
	case "table2":
		return s.Table2(), nil
	case "table3":
		out, _, _ := s.Table3()
		return out, nil
	case "fig1":
		out, _ := s.Figure1()
		return out, nil
	case "fig2":
		return s.Figure2(), nil
	case "fig3":
		out, _ := s.Figure3()
		return out, nil
	case "fig4":
		return s.Figure4(), nil
	case "fig5":
		return s.Figure5(), nil
	case "fig7":
		out, _ := s.Figure7()
		return out, nil
	case "fig8":
		out, _ := s.Figure8()
		return out, nil
	case "fig9":
		out, _ := s.Figure9()
		return out, nil
	case "fig10":
		out, _ := s.Figure10()
		return out, nil
	case "fig11":
		out, _ := s.Figure11()
		return out, nil
	case "fig12":
		out, _, err := s.Figure12()
		return out, err
	default:
		return "", fmt.Errorf("experiments: unknown artifact %q", name)
	}
}

// All renders the named artifacts concurrently on the shared engine and
// returns their texts in input order — the output is byte-identical to
// rendering the names one by one.
func (s *Suite) All(ctx context.Context, names []string) ([]string, error) {
	return engine.MapOrdered(ctx, s.Workers, len(names),
		func(_ context.Context, i int) (string, error) {
			return s.Render(names[i])
		})
}

// Figure1 renders the relative-performance-over-time series and returns
// the per-dataset maxima (the "up to 3× slower" observation).
func (s *Suite) Figure1() (string, map[string]float64) {
	var b strings.Builder
	b.WriteString("Figure 1: performance relative to best observed run, per campaign day\n")
	maxima := map[string]float64{}
	for _, ds := range s.Camp.Datasets {
		if ds.Nodes != 128 {
			continue // the figure shows the 128-node configurations
		}
		pts := core.RelativePerformance(ds)
		// aggregate to a daily-mean series for the sparkline
		byDay := map[int][]float64{}
		maxDay := 0
		for _, p := range pts {
			byDay[p.Day] = append(byDay[p.Day], p.Relative)
			if p.Day > maxDay {
				maxDay = p.Day
			}
		}
		series := make([]float64, maxDay+1)
		for d := range series {
			vs := byDay[d]
			if len(vs) == 0 {
				series[d] = 1
				continue
			}
			var sum float64
			for _, v := range vs {
				sum += v
			}
			series[d] = sum / float64(len(vs))
		}
		maxima[ds.Name] = core.MaxRelative(pts)
		b.WriteString(report.Series(fmt.Sprintf("%-14s", ds.Name), series))
		fmt.Fprintf(&b, "%-14s  worst run: %.2fx slower than best\n", "", maxima[ds.Name])
	}
	return b.String(), maxima
}

// Figure2 renders the machine census.
func (s *Suite) Figure2() string {
	if s.Clust == nil {
		return "Figure 2: (cluster unavailable)\n"
	}
	c := s.Clust.Topo.TakeCensus()
	t := report.NewTable("Figure 2: dragonfly machine census", "component", "count")
	t.AddRow("groups", c.Groups)
	t.AddRow("routers per group", c.RoutersPerGroup)
	t.AddRow("routers", c.Routers)
	t.AddRow("nodes", c.Nodes)
	t.AddRow("KNL nodes", c.KNLNodes)
	t.AddRow("Haswell nodes", c.HaswellNodes)
	t.AddRow("I/O service nodes", c.IONodes)
	t.AddRow("green (row) links", c.GreenLinks)
	t.AddRow("black (column) links", c.BlackLinks)
	t.AddRow("blue (global) links", c.BlueLinks)
	t.AddRow("global links per group pair (min)", c.MinBluePerGroupPair)
	t.AddRow("global links per group pair (max)", c.MaxBluePerGroupPair)
	return t.String()
}

// Table1 renders the application/input registry.
func (s *Suite) Table1() string {
	t := report.NewTable("Table I: application versions and their inputs",
		"Application", "No. of Nodes", "Input Parameters")
	for _, m := range apps.Registry() {
		t.AddRow(fmt.Sprintf("%s %s", m.App, m.Version), m.Nodes, m.InputParams)
	}
	return t.String()
}

// Figure3 renders the mean time-per-step trends and returns them.
func (s *Suite) Figure3() (string, map[string][]float64) {
	var b strings.Builder
	b.WriteString("Figure 3: mean time per step across all runs\n")
	trends := map[string][]float64{}
	for _, ds := range s.Camp.Datasets {
		mean := ds.MeanStepTimes()
		trends[ds.Name] = mean
		b.WriteString(report.Series(fmt.Sprintf("%-14s (s/step)", ds.Name), mean))
	}
	return b.String(), trends
}

// profileFigure renders a Figure 4/5-style panel for the named datasets.
func (s *Suite) profileFigure(title string, names []string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, name := range names {
		ds := s.Camp.Get(name)
		if ds == nil || len(ds.Runs) == 0 {
			fmt.Fprintf(&b, "%s: (no data)\n", name)
			continue
		}
		sum := cluster.SummarizeProfiles(ds)
		t := report.NewTable(fmt.Sprintf("%s: time in computation and MPI (seconds)", name),
			"run", "Compute", "MPI")
		t.AddRow("best", sum.BestCompute, sum.BestMPI)
		t.AddRow("average", sum.AvgCompute, sum.AvgMPI)
		t.AddRow("worst", sum.WorstCompute, sum.WorstMPI)
		b.WriteString(t.String())

		rt := report.NewTable(fmt.Sprintf("%s: time per MPI routine (seconds)", name),
			"routine", "best", "average", "worst")
		for _, share := range sum.Avg.Dominant() {
			r := share.Routine
			rt.AddRow(r.String(), sum.Best[r], sum.Avg[r], sum.Worst[r])
		}
		b.WriteString(rt.String())
	}
	return b.String()
}

// Figure4 renders the AMG and MILC 512-node profiles.
func (s *Suite) Figure4() string {
	return s.profileFigure("Figure 4: AMG and MILC on 512 nodes", []string{"AMG-512", "MILC-512"})
}

// Figure5 renders the miniVite and UMT 128-node profiles.
func (s *Suite) Figure5() string {
	return s.profileFigure("Figure 5: miniVite and UMT on 128 nodes", []string{"miniVite-128", "UMT-128"})
}

// Table2 renders the counter registry.
func (s *Suite) Table2() string {
	t := report.NewTable("Table II: network hardware performance counters",
		"Counter name", "Abbreviation", "Derived", "Description")
	for i := 0; i < counters.NumJob; i++ {
		info := counters.Table[i]
		derived := ""
		if info.Derived {
			derived = "yes"
		}
		t.AddRow(info.AriesName, info.Abbrev, derived, info.Description)
	}
	return t.String()
}

// Figure7 renders, for AMG-128, the mean step-time trend next to two mean
// counter trends, and returns the correlation of each counter trend with
// the time trend (the figure's claim is that they track each other).
func (s *Suite) Figure7() (string, map[string]float64) {
	ds := s.Camp.Get("AMG-128")
	var b strings.Builder
	corr := map[string]float64{}
	if ds == nil || len(ds.Runs) == 0 {
		return "Figure 7: (no AMG-128 data)\n", corr
	}
	b.WriteString("Figure 7: mean trends over runs, per time step (AMG-128)\n")
	timeTrend := ds.MeanStepTimes()
	b.WriteString(report.Series("time per step   ", timeTrend))
	for _, c := range []counters.Index{counters.RTFlitTot, counters.RTRBStl} {
		trend := ds.MeanCounterTrend(c)
		b.WriteString(report.Series(fmt.Sprintf("%-16s", c.String()), trend))
		corr[c.String()] = stats.Pearson(timeTrend, trend)
	}
	fmt.Fprintf(&b, "trend correlation with time/step: RT_FLIT_TOT %.2f, RT_RB_STL %.2f\n",
		corr["RT_FLIT_TOT"], corr["RT_RB_STL"])
	return b.String(), corr
}

// Table3 renders the neighborhood analysis and returns the rows plus the
// per-user list counts.
func (s *Suite) Table3() (string, []core.Table3Row, map[string]int) {
	rows, recurring := core.Table3(s.Camp, core.NeighborhoodOptions{})
	t := report.NewTable("Table III: users highly correlated with performance optimality",
		"Application", "No. of nodes", "Highly correlated users")
	for _, r := range rows {
		t.AddRow(r.Dataset, r.Nodes, strings.Join(r.Users, ", "))
	}
	var b strings.Builder
	b.WriteString(t.String())
	return b.String(), rows, recurring
}

// Figure9 runs the deviation analysis on every dataset and renders the
// relevance bars; it returns the per-dataset results.
func (s *Suite) Figure9() (string, []core.DeviationResult) {
	var b strings.Builder
	b.WriteString("Figure 9: relevance of each counter for predicting deviation from mean behaviour\n")
	var results []core.DeviationResult
	for _, ds := range s.Camp.Datasets {
		if len(ds.Runs) == 0 {
			fmt.Fprintf(&b, "%s: (no data)\n", ds.Name)
			continue
		}
		res := core.AnalyzeDeviation(ds, s.deviationOpts(), s.Seed)
		results = append(results, res)
		label := fmt.Sprintf("%s (MAPE %.1f%%, top: %s)", res.Dataset, res.MAPE, res.TopCounter())
		if res.GapFraction > 0 {
			label = fmt.Sprintf("%s (MAPE %.1f%%, top: %s, gaps %.1f%%)",
				res.Dataset, res.MAPE, res.TopCounter(), 100*res.GapFraction)
		}
		b.WriteString(report.Bars(label, res.FeatureNames, res.Relevance, 40))
		b.WriteByte('\n')
	}
	return b.String(), results
}

// forecastFigure runs the forecasting grid of Figure 8 or 10.
func (s *Suite) forecastFigure(title string, datasets []string, ms, ks []int, features []counters.FeatureSet) (string, []core.ForecastResult) {
	var b strings.Builder
	b.WriteString(title + "\n")
	var results []core.ForecastResult
	for _, name := range datasets {
		ds := s.Camp.Get(name)
		if ds == nil || len(ds.Runs) == 0 {
			fmt.Fprintf(&b, "%s: (no data)\n", name)
			continue
		}
		title := name
		if gf := ds.GapFraction(); gf > 0 {
			title = fmt.Sprintf("%s (gaps %.1f%%, imputed)", name, 100*gf)
		}
		t := report.NewTable(title, "spec", "MAPE %")
		for _, k := range ks {
			for _, m := range ms {
				for _, fs := range features {
					res := core.Forecast(ds, core.ForecastSpec{M: m, K: k, Features: fs}, s.forecastOpts(), s.Seed)
					results = append(results, res)
					t.AddRow(res.Spec.String(), res.MAPE)
				}
			}
		}
		b.WriteString(t.String())
	}
	return b.String(), results
}

// Figure8 runs the AMG forecasting grid: m ∈ {3,8}, k ∈ {5,10}, app and
// app+placement feature sets.
func (s *Suite) Figure8() (string, []core.ForecastResult) {
	return s.forecastFigure(
		"Figure 8: forecast MAPE, AMG datasets",
		[]string{"AMG-128", "AMG-512"},
		[]int{3, 8}, []int{5, 10},
		[]counters.FeatureSet{{}, {Placement: true}},
	)
}

// Figure10 runs the MILC forecasting grid: m ∈ {10,30}, k ∈ {20,40}, with
// the io and sys feature ablations of §V-C.
func (s *Suite) Figure10() (string, []core.ForecastResult) {
	return s.forecastFigure(
		"Figure 10: forecast MAPE, MILC datasets",
		[]string{"MILC-128", "MILC-512"},
		[]int{10, 30}, []int{20, 40},
		[]counters.FeatureSet{
			{},
			{Placement: true},
			{Placement: true, IO: true},
			{Placement: true, IO: true, Sys: true},
		},
	)
}

// Figure11 renders forecast-model feature importances for the AMG datasets
// (largest m, k; app+placement) and the MILC datasets (largest m, k; all
// features), mirroring the paper's two panels.
func (s *Suite) Figure11() (string, map[string][]float64) {
	var b strings.Builder
	b.WriteString("Figure 11: feature importances of the forecasting models\n")
	out := map[string][]float64{}
	panel := func(names []string, spec core.ForecastSpec) {
		for _, name := range names {
			ds := s.Camp.Get(name)
			if ds == nil || len(ds.Runs) == 0 {
				continue
			}
			fn, imp := core.ForecastImportances(ds, spec, s.forecastOpts(), s.Seed)
			if imp == nil {
				continue
			}
			out[name] = imp
			b.WriteString(report.Bars(fmt.Sprintf("%s (%s)", name, spec), fn, imp, 40))
			b.WriteByte('\n')
		}
	}
	panel([]string{"AMG-128", "AMG-512"},
		core.ForecastSpec{M: 8, K: 10, Features: counters.FeatureSet{Placement: true}})
	panel([]string{"MILC-128", "MILC-512"},
		core.ForecastSpec{M: 30, K: 40, Features: counters.FeatureSet{Placement: true, IO: true, Sys: true}})
	return b.String(), out
}

// Figure12 simulates the 620-step MILC long run, forecasts it in 40-step
// segments from the previous 30 steps with a model trained only on the
// campaign runs, and renders observed vs predicted.
func (s *Suite) Figure12() (string, []core.SegmentForecast, error) {
	if s.Clust == nil {
		return "", nil, fmt.Errorf("experiments: Figure 12 needs the cluster to simulate the long run")
	}
	ds := s.Camp.Get("MILC-128")
	if ds == nil || len(ds.Runs) == 0 {
		return "", nil, fmt.Errorf("experiments: no MILC-128 dataset")
	}
	steps := 620
	m, k := 30, 40
	if s.Fast {
		steps, m, k = 200, 10, 20
	}
	long, err := s.Clust.SimulateLongRun(apps.Find(apps.MILC, 128), steps,
		s.Camp.Days*86400*0.5, s.Seed+620)
	if err != nil {
		return "", nil, err
	}
	spec := core.ForecastSpec{M: m, K: k, Features: counters.FeatureSet{Placement: true, IO: true, Sys: true}}
	segs := core.ForecastLongRun(ds, long, spec, s.forecastOpts(), s.Seed)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: %d-step MILC-128 run, %d-step segments forecast from the previous %d steps\n",
		steps, k, m)
	obs := make([]float64, len(segs))
	pred := make([]float64, len(segs))
	for i, sg := range segs {
		obs[i] = sg.Observed
		pred[i] = sg.Predicted
	}
	b.WriteString(report.Series("observed ", obs))
	b.WriteString(report.Series("predicted", pred))
	fmt.Fprintf(&b, "segment MAPE: %.1f%%\n", core.SegmentMAPE(segs))
	return b.String(), segs, nil
}

// MPIProfileFractions reports the campaign's mean MPI time fraction per
// dataset — the §III-B characterization numbers.
func (s *Suite) MPIProfileFractions() map[string]float64 {
	out := map[string]float64{}
	for _, ds := range s.Camp.Datasets {
		var sum float64
		for _, r := range ds.Runs {
			sum += r.Profile.Total() / r.TotalTime()
		}
		if len(ds.Runs) > 0 {
			out[ds.Name] = sum / float64(len(ds.Runs))
		}
	}
	return out
}

// DominantRoutines reports each dataset's top MPI routine over the
// campaign, for the §III-B claims (AMG: Iprobe/Test/Waitall/...; miniVite:
// Waitall; UMT: Allreduce/Barrier/Wait; MILC: Allreduce/Wait/Isend/Irecv).
func (s *Suite) DominantRoutines() map[string]mpi.Routine {
	out := map[string]mpi.Routine{}
	for _, ds := range s.Camp.Datasets {
		var total mpi.Profile
		for _, r := range ds.Runs {
			p := r.Profile
			total.Add(&p)
		}
		dom := total.Dominant()
		if len(dom) > 0 {
			out[ds.Name] = dom[0].Routine
		}
	}
	return out
}
