package experiments

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"dragonvar/internal/advisor"
	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/report"
	"dragonvar/internal/stats"
)

// ABArm names one routing/placement policy pair to run the campaign under.
type ABArm struct {
	Routing   string `json:"routing"`
	Placement string `json:"placement"`
}

func (a ABArm) String() string { return a.Routing + "/" + a.Placement }

// ABConfig describes an A/B variability experiment: the same seeded
// campaign rerun under each arm's policy pair, everything else pinned.
type ABConfig struct {
	// Cluster is the base campaign configuration (seed, days, machine,
	// faults, workers). Its Net.Routing and Placement fields are
	// overwritten per arm.
	Cluster cluster.Config
	// Arms lists the policy pairs. Arm 0 is the baseline the deltas are
	// relative to.
	Arms []ABArm
	// Verify reruns every arm serially (Workers=1) and records whether the
	// campaign bytes match the parallel run — the per-policy determinism
	// contract, checked rather than assumed.
	Verify bool
	// Blame trains the interference advisor on the baseline arm's campaign
	// and feeds its blamed-user list to every later arm that uses the
	// interference placement policy, closing the paper's §V loop: detect
	// the aggressors on the unmitigated system, then place around them.
	Blame bool
}

// ABDatasetStats summarizes one dataset's per-run total times under one
// arm, following the benchmark ledger's mean/std/std_rel convention.
type ABDatasetStats struct {
	Dataset string  `json:"dataset"`
	Runs    int     `json:"runs"`
	Mean    float64 `json:"mean_sec"`
	Std     float64 `json:"std_sec"`
	StdRel  float64 `json:"std_rel"` // std / mean, the paper's variability measure
	Min     float64 `json:"min_sec"`
	Max     float64 `json:"max_sec"`
}

// ABArmResult is one arm's full outcome.
type ABArmResult struct {
	ABArm
	Hash     string           `json:"campaign_sha256"`
	Requeues int              `json:"requeues"`
	Datasets []ABDatasetStats `json:"datasets"`
	Blamed   []string         `json:"blamed_users,omitempty"`
	// Identical is set when ABConfig.Verify is on: true iff the serial
	// rerun produced byte-identical campaign bytes.
	Identical *bool `json:"identical,omitempty"`
}

// ABDelta compares one arm's dataset against the baseline arm.
type ABDelta struct {
	Arm          string  `json:"arm"`
	Dataset      string  `json:"dataset"`
	MeanDeltaPct float64 `json:"mean_delta_pct"` // (mean − base) / base × 100
	StdRelDelta  float64 `json:"std_rel_delta"`  // std_rel − base std_rel
}

// ABResult is the experiment's full outcome.
type ABResult struct {
	Seed   int64         `json:"seed"`
	Days   float64       `json:"days"`
	Faults string        `json:"faults,omitempty"`
	Arms   []ABArmResult `json:"arms"`
	Deltas []ABDelta     `json:"deltas"`
}

// RunAB reruns the same seeded campaign under each arm's policy pair and
// summarizes the per-dataset run-time distributions (Figure-3 style) with
// deltas against arm 0. Each arm regenerates from the same seed, so the
// submission schedule, fault timeline, and background load draws are
// identical across arms; only the policies differ.
func RunAB(ctx context.Context, cfg ABConfig) (*ABResult, error) {
	if len(cfg.Arms) < 2 {
		return nil, fmt.Errorf("experiments: A/B needs at least 2 arms, got %d", len(cfg.Arms))
	}
	res := &ABResult{Seed: cfg.Cluster.Seed, Days: cfg.Cluster.Days, Faults: cfg.Cluster.FaultSpec}
	var blamed []string
	for i, arm := range cfg.Arms {
		ccfg := cfg.Cluster
		ccfg.Net.Routing = arm.Routing
		ccfg.Placement = arm.Placement
		if cfg.Blame && i > 0 && arm.Placement == "interference" {
			ccfg.BlamedUsers = blamed
		}
		camp, err := runArm(ctx, ccfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: arm %s: %w", arm, err)
		}
		ar := ABArmResult{
			ABArm:    arm,
			Hash:     campaignSHA(camp),
			Requeues: camp.TotalRequeues(),
			Blamed:   ccfg.BlamedUsers,
		}
		for _, ds := range camp.Datasets {
			ar.Datasets = append(ar.Datasets, datasetStats(ds))
		}
		if cfg.Verify {
			serial := ccfg
			serial.Workers = 1
			scamp, err := runArm(ctx, serial)
			if err != nil {
				return nil, fmt.Errorf("experiments: arm %s serial verify: %w", arm, err)
			}
			ok := campaignSHA(scamp) == ar.Hash
			ar.Identical = &ok
		}
		res.Arms = append(res.Arms, ar)
		if cfg.Blame && i == 0 {
			blamed = advisor.Train(camp, advisor.Options{}).Blamed()
		}
	}
	base := map[string]ABDatasetStats{}
	for _, ds := range res.Arms[0].Datasets {
		base[ds.Dataset] = ds
	}
	for _, ar := range res.Arms[1:] {
		for _, ds := range ar.Datasets {
			b, ok := base[ds.Dataset]
			if !ok || b.Mean == 0 || ds.Runs == 0 {
				continue
			}
			res.Deltas = append(res.Deltas, ABDelta{
				Arm:          ar.ABArm.String(),
				Dataset:      ds.Dataset,
				MeanDeltaPct: 100 * (ds.Mean - b.Mean) / b.Mean,
				StdRelDelta:  ds.StdRel - b.StdRel,
			})
		}
	}
	return res, nil
}

// runArm regenerates the campaign for one policy configuration. No cache:
// every arm simulates from scratch so the comparison is honest.
func runArm(ctx context.Context, ccfg cluster.Config) (*dataset.Campaign, error) {
	c, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	return c.RunCampaignCtx(ctx)
}

func datasetStats(ds *dataset.Dataset) ABDatasetStats {
	st := ABDatasetStats{Dataset: ds.Name, Runs: len(ds.Runs)}
	if st.Runs == 0 {
		return st
	}
	var w stats.Welford
	for i, r := range ds.Runs {
		t := r.TotalTime()
		w.Add(t)
		if i == 0 || t < st.Min {
			st.Min = t
		}
		if t > st.Max {
			st.Max = t
		}
	}
	st.Mean = w.Mean()
	st.Std = w.Std()
	if st.Mean > 0 {
		st.StdRel = st.Std / st.Mean
	}
	return st
}

// campaignSHA hashes the campaign's gob encoding — the same byte-identity
// criterion dfbench and the determinism tests use.
func campaignSHA(camp *dataset.Campaign) string {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(camp); err != nil {
		panic(err) // campaign types are gob-safe by construction
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// Render formats the A/B result as text: one Figure-3-style distribution
// table per arm, then the deltas against the baseline.
func (r *ABResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A/B variability: seed=%d days=%v", r.Seed, r.Days)
	if r.Faults != "" {
		fmt.Fprintf(&b, " faults=%q", r.Faults)
	}
	b.WriteString("\n")
	for i, ar := range r.Arms {
		role := "baseline"
		if i > 0 {
			role = fmt.Sprintf("arm %d", i)
		}
		title := fmt.Sprintf("%s %s: total run time per dataset (seconds)", role, ar.ABArm)
		t := report.NewTable(title, "dataset", "runs", "mean", "std", "std/mean", "min", "max")
		for _, ds := range ar.Datasets {
			t.AddRow(ds.Dataset, ds.Runs,
				fmt.Sprintf("%.1f", ds.Mean), fmt.Sprintf("%.1f", ds.Std),
				fmt.Sprintf("%.4f", ds.StdRel),
				fmt.Sprintf("%.1f", ds.Min), fmt.Sprintf("%.1f", ds.Max))
		}
		b.WriteString(t.String())
		if ar.Identical != nil {
			verdict := "serial == parallel: byte-identical"
			if !*ar.Identical {
				verdict = "serial != parallel: DETERMINISM VIOLATION"
			}
			fmt.Fprintf(&b, "  %s (campaign %s)\n", verdict, ar.Hash[:16])
		}
		if len(ar.Blamed) > 0 {
			fmt.Fprintf(&b, "  blamed users fed to placement: %s\n", strings.Join(ar.Blamed, ", "))
		}
	}
	if len(r.Deltas) > 0 {
		t := report.NewTable("deltas vs baseline "+r.Arms[0].ABArm.String(),
			"arm", "dataset", "mean Δ%", "std/mean Δ")
		for _, d := range r.Deltas {
			t.AddRow(d.Arm, d.Dataset,
				fmt.Sprintf("%+.2f", d.MeanDeltaPct), fmt.Sprintf("%+.4f", d.StdRelDelta))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// WriteJSON writes the result to path, indented.
func (r *ABResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
