package experiments

import (
	"context"
	"testing"
)

// TestArtifactsIdenticalAcrossWorkerCounts renders the scatter figure and
// the ML-heavy deviation figure at several worker counts and demands the
// text match byte-for-byte: the worker knob must change wall-clock time
// only, never an artifact.
func TestArtifactsIdenticalAcrossWorkerCounts(t *testing.T) {
	base := testSuite(t)
	names := []string{"fig1", "fig9"}

	serial := *base
	serial.Workers = 1
	want := make(map[string]string)
	for _, name := range names {
		out, err := serial.Render(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = out
	}

	for _, workers := range []int{2, 4} {
		s := *base
		s.Workers = workers
		for _, name := range names {
			out, err := s.Render(name)
			if err != nil {
				t.Fatal(err)
			}
			if out != want[name] {
				t.Fatalf("workers=%d: %s differs from serial rendering", workers, name)
			}
		}
	}
}

// TestAllMatchesSerialRender checks the concurrent suite runner: All must
// return the same artifacts, in input order, as rendering one at a time.
func TestAllMatchesSerialRender(t *testing.T) {
	s := *testSuite(t)
	s.Workers = 4
	names := []string{"table1", "fig1", "fig3", "table3"}

	outs, err := s.All(context.Background(), names)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(names) {
		t.Fatalf("All returned %d artifacts, want %d", len(outs), len(names))
	}
	for i, name := range names {
		want, err := s.Render(name)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i] != want {
			t.Fatalf("All()[%d] (%s) differs from serial Render", i, name)
		}
	}
}

func TestAllRejectsUnknownArtifact(t *testing.T) {
	s := *testSuite(t)
	if _, err := s.All(context.Background(), []string{"table1", "figNaN"}); err == nil {
		t.Fatal("unknown artifact should error")
	}
}
