package rfe

import (
	"testing"

	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
	"dragonvar/internal/tree"
)

// mkData: y depends strongly on features 0 and 1, weakly on 2, not at all
// on 3..5.
func mkData(n int, s *rng.Stream) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 6)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			x.Set(i, j, s.Float64())
		}
		y[i] = 8*x.At(i, 0) + 6*x.At(i, 1) + 0.5*x.At(i, 2) + 0.05*s.NormFloat64()
	}
	return x, y
}

func fastOpts() Options {
	return Options{
		Folds: 4,
		GBR: gbr.Options{
			NumTrees: 15,
			Tree:     tree.Options{MaxDepth: 3},
		},
	}
}

func TestRelevanceIdentifiesSignalFeatures(t *testing.T) {
	s := rng.New(1)
	x, y := mkData(600, s)
	res := Run(x, y, fastOpts(), rng.New(2))
	if len(res.Relevance) != 6 {
		t.Fatalf("relevance length = %d", len(res.Relevance))
	}
	for f, v := range res.Relevance {
		if v < 0 || v > 1 {
			t.Fatalf("relevance[%d] = %v out of [0,1]", f, v)
		}
	}
	// the strong features must outrank all junk features
	for _, strong := range []int{0, 1} {
		for _, junk := range []int{3, 4, 5} {
			if res.Relevance[strong] < res.Relevance[junk] {
				t.Fatalf("relevance ranks junk %d over signal %d: %v", junk, strong, res.Relevance)
			}
		}
	}
	if res.Relevance[0] < 0.9 {
		t.Fatalf("dominant feature relevance = %v, want near 1", res.Relevance[0])
	}
}

func TestEliminationOrderComplete(t *testing.T) {
	s := rng.New(3)
	x, y := mkData(400, s)
	opt := fastOpts()
	res := Run(x, y, opt, rng.New(4))
	if len(res.Elimination) != opt.Folds {
		t.Fatalf("elimination folds = %d", len(res.Elimination))
	}
	for f, order := range res.Elimination {
		if len(order) != 6 {
			t.Fatalf("fold %d eliminated %d features, want 6", f, len(order))
		}
		seen := map[int]bool{}
		for _, feat := range order {
			if feat < 0 || feat >= 6 || seen[feat] {
				t.Fatalf("fold %d has invalid elimination order %v", f, order)
			}
			seen[feat] = true
		}
		// the strongest feature should survive to (almost) the end
		lastTwo := map[int]bool{order[4]: true, order[5]: true}
		if !lastTwo[0] && !lastTwo[1] {
			t.Fatalf("fold %d eliminated both strong features early: %v", f, order)
		}
	}
}

func TestOOFPredictionsReasonable(t *testing.T) {
	s := rng.New(5)
	x, y := mkData(500, s)
	res := Run(x, y, fastOpts(), rng.New(6))
	if len(res.OOFPred) != 500 {
		t.Fatalf("OOFPred length = %d", len(res.OOFPred))
	}
	var sse, sst float64
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for i := range y {
		d := res.OOFPred[i] - y[i]
		sse += d * d
		dm := y[i] - mean
		sst += dm * dm
	}
	if r2 := 1 - sse/sst; r2 < 0.7 {
		t.Fatalf("out-of-fold R^2 = %v", r2)
	}
}

func TestDeterministic(t *testing.T) {
	s := rng.New(7)
	x, y := mkData(300, s)
	a := Run(x, y, fastOpts(), rng.New(8))
	b := Run(x, y, fastOpts(), rng.New(8))
	for f := range a.Relevance {
		if a.Relevance[f] != b.Relevance[f] {
			t.Fatal("RFE not deterministic under identical seeds")
		}
	}
	for i := range a.OOFPred {
		if a.OOFPred[i] != b.OOFPred[i] {
			t.Fatal("OOF predictions not deterministic")
		}
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	// smoke: explicit worker count must work and agree with defaults
	s := rng.New(9)
	x, y := mkData(200, s)
	opt := fastOpts()
	opt.Workers = 2
	a := Run(x, y, opt, rng.New(10))
	opt.Workers = 1
	b := Run(x, y, opt, rng.New(10))
	for f := range a.Relevance {
		if a.Relevance[f] != b.Relevance[f] {
			t.Fatal("worker count must not change results")
		}
	}
}
