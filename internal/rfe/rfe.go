// Package rfe implements recursive feature elimination over gradient
// boosted regression (§IV-B): repeatedly fit a model, drop the feature
// with the lowest importance, and repeat until no features remain. Features
// are scored by how often, across cross-validation folds, they belong to
// the best-performing subset — the relevance scores of Figure 9.
//
// Folds run concurrently on the shared execution engine; results are merged
// in fold order, so the output is identical at every worker count.
package rfe

import (
	"context"

	"dragonvar/internal/engine"
	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
)

// Options configures the elimination run.
type Options struct {
	Folds   int // cross-validation folds; default 10 (the paper's setting)
	GBR     gbr.Options
	Workers int // concurrent folds; default engine.Workers(0)
}

func (o Options) withDefaults() Options {
	if o.Folds < 2 {
		o.Folds = 10
	}
	return o
}

// Result is the outcome of an RFE run.
type Result struct {
	// Relevance[f] is the fraction of folds in which feature f was part of
	// the best-performing (lowest validation error) subset.
	Relevance []float64
	// Elimination[fold] lists features in elimination order (first
	// eliminated first; the last entry survived longest).
	Elimination [][]int
	// OOFPred holds out-of-fold predictions of the full-feature model,
	// aligned with the sample rows; used for the MAPE < 5% check of §V-B.
	OOFPred []float64
}

// foldResult is the output of one fold, merged serially after the pool.
type foldResult struct {
	elim, best []int
	fullPred   []float64
}

// Run performs cross-validated RFE on samples x (rows) and targets y.
func Run(x *linalg.Matrix, y []float64, opt Options, s *rng.Stream) *Result {
	opt = opt.withDefaults()
	n := x.Rows
	h := x.Cols
	res := &Result{
		Relevance:   make([]float64, h),
		Elimination: make([][]int, opt.Folds),
		OOFPred:     make([]float64, n),
	}

	// precompute fold index sets (shuffled contiguous blocks)
	perm := s.Split("folds").Perm(n)
	folds := make([][]int, opt.Folds)
	for f := 0; f < opt.Folds; f++ {
		lo, hi := f*n/opt.Folds, (f+1)*n/opt.Folds
		folds[f] = perm[lo:hi]
	}

	out, _ := engine.MapOrdered(context.Background(), opt.Workers, opt.Folds,
		func(_ context.Context, f int) (foldResult, error) {
			test := folds[f]
			train := make([]int, 0, n-len(test))
			for g := 0; g < opt.Folds; g++ {
				if g != f {
					train = append(train, folds[g]...)
				}
			}
			foldStream := s.Split("fold").Split(string(rune('a' + f)))
			telemetry.C(telemetry.MRFEFolds).Inc()
			elim, best, fullPred := eliminate(x, y, train, test, opt.GBR, foldStream)
			telemetry.C(telemetry.MRFERounds).Add(int64(len(elim)))
			return foldResult{elim: elim, best: best, fullPred: fullPred}, nil
		})

	for f, fr := range out {
		res.Elimination[f] = fr.elim
		for _, feat := range fr.best {
			res.Relevance[feat]++
		}
		for k, i := range folds[f] {
			res.OOFPred[i] = fr.fullPred[k]
		}
	}
	for i := range res.Relevance {
		res.Relevance[i] /= float64(opt.Folds)
	}
	return res
}

// eliminate runs one fold's RFE: returns the elimination order, the
// best-performing subset, and the full-feature model's test predictions.
func eliminate(x *linalg.Matrix, y []float64, train, test []int, opt gbr.Options, s *rng.Stream) (elim []int, best []int, fullPred []float64) {
	h := x.Cols
	features := make([]int, h)
	for i := range features {
		features[i] = i
	}

	bestErr := 0.0
	for round := 0; len(features) > 0; round++ {
		model := gbr.Fit(x, y, train, features, opt, s)
		if round == 0 {
			fullPred = model.PredictRows(x, test)
		}
		// validation error of the current subset
		var sse float64
		for _, i := range test {
			d := model.Predict(x.Row(i)) - y[i]
			sse += d * d
		}
		if round == 0 || sse < bestErr {
			bestErr = sse
			best = append(best[:0], features...)
		}
		// eliminate the worst feature (lowest importance among survivors)
		imp := model.Importance()
		worst := 0
		for k := 1; k < len(features); k++ {
			if imp[features[k]] < imp[features[worst]] {
				worst = k
			}
		}
		elim = append(elim, features[worst])
		features = append(features[:worst], features[worst+1:]...)
	}
	return elim, best, fullPred
}
