// Package slurm models the production side of the machine: the user
// population, their job streams, node allocation, and the sacct-style job
// queue log the paper mines for its neighborhood analysis (§III-C, §IV-A).
//
// The roster contains synthetic users whose workloads play the roles the
// paper identified on Cori: a genome-assembly pipeline that is both
// communication-intensive and filesystem-heavy (the paper's User 2 running
// HipMer), climate modeling (User 11, E3SM), a particle-mesh N-body solver
// with frequent allreduces and burst-buffer I/O (User 9, FastPM), several
// material-science users (Users 6, 10, 14), and a long tail of light users.
// The campaign's own controlled jobs are submitted under User 8 (the paper:
// "User 8 is Bhatele"), so the neighborhood analysis can rediscover
// self-interference between our own jobs.
package slurm

import (
	"context"
	"fmt"
	"math"
	"sort"

	"dragonvar/internal/engine"
	"dragonvar/internal/faults"
	"dragonvar/internal/mpi"
	"dragonvar/internal/netsim"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Job completion states, mirroring sacct's State column.
const (
	StateCompleted = "COMPLETED"
	StateNodeFail  = "NODE_FAIL"
)

// requeueBackoff is the wall-clock delay before a node-failed job is
// resubmitted: 15 min doubling per attempt, like a conservative
// SchedulerParameters requeue policy.
func requeueBackoff(attempt int) float64 { return 900 * math.Pow(2, float64(attempt)) }

// maxRequeues bounds how many times one submission is requeued after
// node failures before the scheduler gives up on it.
const maxRequeues = 3

// SelfUserID is the anonymized ID under which the campaign's controlled
// jobs appear in the queue log (User 8 in Table III).
const SelfUserID = 8

// User is one synthetic production user.
type User struct {
	ID       int    // anonymized numeric ID; "User-<ID>" in reports
	AppName  string // the job name its submissions carry
	Workload Workload
}

// Name returns the anonymized user name used in Table III.
func (u *User) Name() string { return fmt.Sprintf("User-%d", u.ID) }

// Workload parameterizes a user's job stream and traffic behaviour.
type Workload struct {
	JobsPerDay float64 // mean job submissions per day (Poisson)

	NodesMin, NodesMax int     // job size range (log-uniform)
	MeanDurationSec    float64 // mean job duration (lognormal, sigma 0.5)

	// Traffic at unit intensity.
	BytesPerNodePerSec   float64 // MPI traffic volume
	MsgBytes             float64 // typical message size
	IOBytesPerNodePerSec float64 // filesystem traffic toward I/O routers
	ReqFraction          float64 // request-VC share

	// Intensity modulation: an AR(1) process per job, minute resolution.
	// This is what makes congestion autocorrelated across application time
	// steps — the property the forecaster exploits.
	IntensityRho float64
	IntensityStd float64

	Fanout int // irregular communication fanout (node-level)
}

// commHeavy reports whether the user's jobs are heavy network citizens
// (used only by tests and reports).
func (w Workload) CommHeavy() bool { return w.BytesPerNodePerSec >= 1e9 }

// Roster returns the synthetic user population. IDs 1–14 are the
// "qualified" users of Table III (ID 8 is reserved for the campaign's own
// jobs and is not in the roster); IDs 15+ are the light tail.
func Roster() []*User {
	heavy := func(app string, id int, jobsPerDay, bytesPerNode float64, msg float64, io float64, nmin, nmax int, dur float64, fanout int) *User {
		return &User{ID: id, AppName: app, Workload: Workload{
			JobsPerDay: jobsPerDay,
			NodesMin:   nmin, NodesMax: nmax,
			MeanDurationSec:      dur,
			BytesPerNodePerSec:   bytesPerNode,
			MsgBytes:             msg,
			IOBytesPerNodePerSec: io,
			ReqFraction:          0.8,
			IntensityRho:         0.93,
			IntensityStd:         0.45,
			Fanout:               fanout,
		}}
	}
	users := []*User{
		// the recurring heavy hitters of Table III
		heavy("hipmer", 2, 3.0, 2.6e9, 4096, 5e8, 256, 1024, 6*3600, 10),
		heavy("e3sm", 11, 2.5, 2.2e9, 32768, 2e8, 256, 1024, 8*3600, 8),
		heavy("fastpm", 9, 2.0, 1.7e9, 1024, 6e8, 256, 768, 5*3600, 8),
		heavy("vasp", 6, 2.5, 1.5e9, 8192, 3e8, 128, 512, 6*3600, 8),
		heavy("qe_scf", 10, 2.5, 1.5e9, 8192, 3e8, 128, 512, 6*3600, 8),
		heavy("lammps_ms", 14, 2.0, 1.4e9, 16384, 2.5e8, 128, 512, 7*3600, 8),
		// users that appear in one or two Table III lists
		heavy("chroma", 1, 2.0, 1.1e9, 32768, 1e8, 128, 384, 5*3600, 6),
		heavy("nwchem", 3, 2.0, 1.0e9, 8192, 1.5e8, 128, 384, 5*3600, 6),
		heavy("gromacs", 4, 1.5, 0.9e9, 8192, 1e8, 128, 256, 4*3600, 6),
		heavy("castro", 5, 1.5, 0.9e9, 16384, 2e8, 128, 256, 4*3600, 6),
		heavy("wrf", 7, 1.5, 0.8e9, 16384, 1.5e8, 128, 256, 4*3600, 6),
		heavy("athena", 12, 1.5, 0.8e9, 8192, 1e8, 128, 256, 4*3600, 6),
		heavy("flash", 13, 1.5, 0.7e9, 8192, 1e8, 128, 256, 4*3600, 6),
	}
	// light tail: small, quiet jobs that should NOT show up in Table III
	for id := 15; id <= 40; id++ {
		users = append(users, &User{ID: id, AppName: fmt.Sprintf("job_%d", id), Workload: Workload{
			JobsPerDay: 4.0,
			NodesMin:   4, NodesMax: 64,
			MeanDurationSec:      2 * 3600,
			BytesPerNodePerSec:   1.5e8,
			MsgBytes:             8192,
			IOBytesPerNodePerSec: 2e7,
			ReqFraction:          0.8,
			IntensityRho:         0.9,
			IntensityStd:         0.3,
			Fanout:               4,
		}})
	}
	return users
}

// Job is one placed background job.
type Job struct {
	ID     int
	User   *User
	Nodes  []topology.NodeID
	Start  float64 // seconds since campaign epoch
	End    float64
	Load   *netsim.LoadSet // unit-intensity network footprint
	booked float64         // per-second unit scale (flits/s at intensity 1)

	// State is the sacct completion state (StateCompleted unless the job
	// was killed by a node drain/failure) and Attempt counts requeues of
	// the same submission (0 = first placement).
	State   string
	Attempt int

	intensity []float64 // per-minute AR(1) intensity factors
}

// Routers returns the distinct routers the job's nodes attach to.
func (j *Job) Routers(topo *topology.Dragonfly) []topology.RouterID {
	seen := map[topology.RouterID]bool{}
	var out []topology.RouterID
	for _, n := range j.Nodes {
		r := topo.RouterOfNode(n)
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Duration returns the job's wall time in seconds.
func (j *Job) Duration() float64 { return j.End - j.Start }

// Overlaps reports whether the job runs during any part of [t0, t1).
func (j *Job) Overlaps(t0, t1 float64) bool { return j.Start < t1 && j.End > t0 }

// IntensityAt returns the job's traffic intensity factor at absolute time
// t (1.0 is nominal), or 0 outside its lifetime.
func (j *Job) IntensityAt(t float64) float64 {
	if t < j.Start || t >= j.End || len(j.intensity) == 0 {
		return 0
	}
	min := int((t - j.Start) / 60)
	if min >= len(j.intensity) {
		min = len(j.intensity) - 1
	}
	return j.intensity[min]
}

// ScaledLoadAt returns the job's network footprint for a window of the
// given duration starting at t. The scale folds together the per-second
// unit volume, the window length, and the job's current intensity.
func (j *Job) ScaledLoadAt(t, duration float64) netsim.ScaledLoad {
	return netsim.ScaledLoad{Set: j.Load, Scale: j.IntensityAt(t) * duration}
}

// Record is one sacct log row.
type Record struct {
	JobID    int
	UserName string
	JobName  string
	NumNodes int
	Start    float64
	End      float64
	State    string // COMPLETED, or NODE_FAIL for drain-killed jobs
	Attempt  int    // requeue generation of this submission (0 = first)
}

// Timeline is the generated background schedule of the machine.
type Timeline struct {
	Topo *topology.Dragonfly
	Jobs []*Job // sorted by Start

	days float64
}

// Days returns the campaign length the timeline was generated for.
func (tl *Timeline) Days() float64 { return tl.days }

// Horizon returns the timeline length in seconds.
func (tl *Timeline) Horizon() float64 { return tl.days * 86400 }

// Overlapping returns the jobs active during any part of [t0, t1),
// in start order.
func (tl *Timeline) Overlapping(t0, t1 float64) []*Job {
	var out []*Job
	for _, j := range tl.Jobs {
		if j.Start >= t1 {
			break
		}
		if j.Overlaps(t0, t1) {
			out = append(out, j)
		}
	}
	return out
}

// Records returns the sacct-style log of all background jobs.
func (tl *Timeline) Records() []Record {
	out := make([]Record, len(tl.Jobs))
	for i, j := range tl.Jobs {
		state := j.State
		if state == "" {
			state = StateCompleted
		}
		out[i] = Record{
			JobID:    j.ID,
			UserName: j.User.Name(),
			JobName:  j.User.AppName,
			NumNodes: len(j.Nodes),
			Start:    j.Start,
			End:      j.End,
			State:    state,
			Attempt:  j.Attempt,
		}
	}
	return out
}

// Requeues counts the jobs in the timeline that are resubmissions of a
// node-failed attempt.
func (tl *Timeline) Requeues() int {
	n := 0
	for _, j := range tl.Jobs {
		if j.Attempt > 0 {
			n++
		}
	}
	return n
}

// NeighborUsers returns the distinct user names with at least one job of
// minNodes or more nodes running during the entire window... more
// precisely, per §V-A, with a job running at any point during [t0, t1).
func (tl *Timeline) NeighborUsers(t0, t1 float64, minNodes int) []string {
	seen := map[string]bool{}
	var out []string
	for _, j := range tl.Overlapping(t0, t1) {
		if len(j.Nodes) < minNodes {
			continue
		}
		name := j.User.Name()
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// BusyNodesAt returns the set of nodes owned by background jobs running in
// the window [t0, t1).
func (tl *Timeline) BusyNodesAt(t0, t1 float64) map[topology.NodeID]bool {
	busy := make(map[topology.NodeID]bool)
	for _, j := range tl.Overlapping(t0, t1) {
		for _, n := range j.Nodes {
			busy[n] = true
		}
	}
	return busy
}

// PlacementFeatures derives the paper's placement features from an
// allocation: NUM_ROUTERS is the number of distinct routers the nodes
// attach to, NUM_GROUPS the number of distinct dragonfly groups.
func PlacementFeatures(topo *topology.Dragonfly, nodes []topology.NodeID) (numRouters, numGroups int) {
	routers := map[topology.RouterID]bool{}
	groups := map[topology.GroupID]bool{}
	for _, n := range nodes {
		r := topo.RouterOfNode(n)
		routers[r] = true
		groups[topo.Group(r)] = true
	}
	return len(routers), len(groups)
}

// GenerateConfig controls timeline generation.
type GenerateConfig struct {
	Days  float64
	Users []*User // defaults to Roster()
	// MaxJobFraction caps a single job at this fraction of the compute
	// pool, so rosters tuned for Cori still generate on small test
	// machines. Default 0.25.
	MaxJobFraction float64
	// Faults, when non-nil, makes the scheduler fault-aware: it avoids
	// nodes that are drained at submission time, kills jobs whose routers
	// drain or fail mid-run (sacct state NODE_FAIL), and requeues them
	// with bounded exponential backoff in campaign wall-clock time.
	Faults *faults.Schedule
	// Workers bounds the footprint-building worker pool (0 = automatic).
	// The timeline is identical for any value.
	Workers int
}

// Generate builds a background timeline: Poisson arrivals per user,
// lognormal durations, first-fit allocation with queue-wait retries, and a
// precomputed unit network footprint per job.
func Generate(net *netsim.Network, cfg GenerateConfig, s *rng.Stream) *Timeline {
	topo := net.Topology()
	users := cfg.Users
	if users == nil {
		users = Roster()
	}
	if cfg.MaxJobFraction <= 0 {
		cfg.MaxJobFraction = 0.25
	}
	horizon := cfg.Days * 86400

	type arrival struct {
		t       float64
		user    *User
		try     int // queue-wait retries of this placement attempt
		attempt int // requeue generation after node failures
	}
	var arrivals []arrival
	insert := func(a arrival) {
		idx := sort.Search(len(arrivals), func(i int) bool { return arrivals[i].t >= a.t })
		arrivals = append(arrivals, arrival{})
		copy(arrivals[idx+1:], arrivals[idx:])
		arrivals[idx] = a
	}
	arrStream := s.Split("arrivals")
	for _, u := range users {
		n := poisson(arrStream, u.Workload.JobsPerDay*cfg.Days)
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, arrival{t: arrStream.Uniform(0, horizon), user: u})
		}
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].t < arrivals[j].t })

	alloc := NewAllocator(topo)
	maxNodes := int(float64(alloc.FreeCount()) * cfg.MaxJobFraction)
	placeStream := s.Split("placement")
	jobStream := s.Split("jobshape")

	// running jobs as a simple min-heap on End
	var running jobHeap
	tl := &Timeline{Topo: topo, days: cfg.Days}
	nextID := 1000

	for len(arrivals) > 0 {
		a := arrivals[0]
		arrivals = arrivals[1:]
		if a.t >= horizon {
			continue // queue-wait retries pushed the job past the campaign
		}
		// release finished jobs
		for len(running) > 0 && running[0].End <= a.t {
			alloc.Free(running[0].Nodes)
			running.pop()
		}
		w := a.user.Workload
		// log-uniform size in [NodesMin, NodesMax], clamped to the machine
		size := int(math.Round(math.Exp(jobStream.Uniform(math.Log(float64(w.NodesMin)), math.Log(float64(w.NodesMax)+1)))))
		if size < 1 {
			size = 1
		}
		if size > maxNodes {
			size = maxNodes
		}
		// drained nodes are unallocatable right now; the scheduler cannot
		// see future drains, so jobs can still be caught by one mid-run
		var nodes []topology.NodeID
		if drained := cfg.Faults.DrainedNodes(a.t); len(drained) > 0 {
			nodes = alloc.AllocAvoiding(size, placeStream.Float64(), drained, placeStream)
		} else {
			nodes = alloc.Alloc(size, placeStream.Float64(), placeStream)
		}
		if nodes == nil {
			// queue wait: retry later a few times, then give up
			if a.try < 4 {
				a.try++
				a.t += placeStream.Uniform(1800, 7200)
				insert(a)
			}
			continue
		}
		dur := jobStream.LogNormal(math.Log(w.MeanDurationSec), 0.5)
		if dur < 300 {
			dur = 300
		}
		end := a.t + dur
		if end > horizon {
			end = horizon
		}
		j := &Job{
			ID:      nextID,
			User:    a.user,
			Nodes:   nodes,
			Start:   a.t,
			End:     end,
			State:   StateCompleted,
			Attempt: a.attempt,
		}
		nextID++
		// the intensity series spans the PLANNED duration, before any
		// fault truncation below: the per-minute draw count then stays
		// identical between a faulted campaign and its clean twin, so the
		// shared stream never diverges before the first fault actually hits
		j.buildIntensity(jobStream)
		// a drain or router failure starting mid-run kills the job; the
		// scheduler requeues the submission with exponential backoff
		if tf, failed := cfg.Faults.FirstFailure(j.Routers(topo), j.Start, j.End); failed {
			if tf <= j.Start {
				tf = j.Start + 60 // killed within the first scheduling tick
			}
			j.End = tf
			j.State = StateNodeFail
			if a.attempt < maxRequeues {
				insert(arrival{t: tf + requeueBackoff(a.attempt), user: a.user, attempt: a.attempt + 1})
			}
		}
		tl.Jobs = append(tl.Jobs, j)
		running.push(j)
	}
	sort.Slice(tl.Jobs, func(i, j int) bool { return tl.Jobs[i].Start < tl.Jobs[j].Start })
	// Footprints consume no randomness and depend only on each job's own
	// nodes and workload, so they build in parallel after the (serial,
	// stream-ordered) event loop. Each worker writes only its own job, and
	// BuildLoadSet uses a private routing engine over the shared read-only
	// topology.
	engine.Map(context.Background(), cfg.Workers, len(tl.Jobs), func(_ context.Context, _, i int) error {
		tl.Jobs[i].buildFootprint(net)
		return nil
	})
	return tl
}

// buildFootprint computes the job's unit-intensity LoadSet: an irregular
// node-level exchange plus filesystem traffic, scaled so that a round of
// duration D at intensity 1 injects BytesPerNodePerSec*D per node.
func (j *Job) buildFootprint(net *netsim.Network) {
	topo := net.Topology()
	w := j.User.Workload
	mapper := &mpi.RankMapper{Topo: topo, Nodes: j.Nodes, RanksPerNode: 1}
	b := mpi.NewPatternBuilder()
	fanout := w.Fanout
	if fanout < 1 {
		fanout = 1
	}
	b.AddIrregular(mapper, fanout, 1)
	if w.IOBytesPerNodePerSec > 0 && w.BytesPerNodePerSec > 0 {
		// the irregular pattern carries ~nodes*fanout units of weight, so
		// scale the I/O share to preserve the byte ratio
		ioShare := w.IOBytesPerNodePerSec / w.BytesPerNodePerSec
		b.AddIOTraffic(mapper, ioShare*float64(len(j.Nodes)*fanout))
	}
	// cap the footprint of very large jobs: 256 router pairs are plenty to
	// place their congestion realistically, and it bounds campaign memory
	pattern := b.Build().Downsample(256)
	bytesPerSec := w.BytesPerNodePerSec * float64(len(j.Nodes))
	flits := mpi.FlitsFor(bytesPerSec)
	msgs := bytesPerSec / math.Max(w.MsgBytes, 1)
	flows := pattern.Instantiate(flits, msgs, w.ReqFraction, nil)
	j.Load = net.BuildLoadSet(flows)
	j.booked = flits
}

// buildIntensity precomputes the per-minute AR(1) intensity series.
func (j *Job) buildIntensity(s *rng.Stream) {
	w := j.User.Workload
	minutes := int(math.Ceil(j.Duration()/60)) + 1
	ar := rng.AR1{Mean: 1, Std: w.IntensityStd, Rho: w.IntensityRho}
	j.intensity = make([]float64, minutes)
	for i := range j.intensity {
		j.intensity[i] = ar.Next(s)
	}
}

// poisson draws a Poisson variate (Knuth's method for small means, normal
// approximation above 30).
func poisson(s *rng.Stream, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// jobHeap is a min-heap on Job.End.
type jobHeap []*Job

func (h *jobHeap) push(j *Job) {
	*h = append(*h, j)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].End <= (*h)[i].End {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *jobHeap) pop() *Job {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].End < (*h)[smallest].End {
			smallest = l
		}
		if r < n && (*h)[r].End < (*h)[smallest].End {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
