package slurm

import (
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func placementTopo(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlacementPolicyRegistry(t *testing.T) {
	names := PlacementPolicyNames()
	want := []string{"compact", "firstfit", "interference"}
	if len(names) != len(want) {
		t.Fatalf("PlacementPolicyNames() = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PlacementPolicyNames() = %v, want %v", names, want)
		}
		if !ValidPlacementPolicy(n) {
			t.Errorf("ValidPlacementPolicy(%q) = false", n)
		}
		p, err := NewPlacementPolicy(n)
		if err != nil {
			t.Fatalf("NewPlacementPolicy(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("NewPlacementPolicy(%q).Name() = %q", n, p.Name())
		}
	}
	if ValidPlacementPolicy("round-robin") {
		t.Error("ValidPlacementPolicy accepted an unknown name")
	}
	if _, err := NewPlacementPolicy("round-robin"); err == nil {
		t.Error("NewPlacementPolicy accepted an unknown name")
	}
}

// TestFirstFitMatchesAllocator: firstfit is the historical behavior
// verbatim — identical streams produce identical node lists.
func TestFirstFitMatchesAllocator(t *testing.T) {
	d := placementTopo(t)
	p, _ := NewPlacementPolicy("firstfit")
	got := p.Place(NewAllocator(d), 16, 0.3, nil, nil, rng.New(5))
	want := NewAllocator(d).AllocAvoiding(16, 0.3, nil, rng.New(5))
	if len(got) != len(want) {
		t.Fatalf("firstfit %d nodes, allocator %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d: firstfit %v, allocator %v", i, got[i], want[i])
		}
	}
}

// TestCompactSpansFewerGroups: with the scheduler's drawn compactness at
// the fragmented end, the compact policy still pins to 0.95 and lands the
// job on no more groups than firstfit does.
func TestCompactSpansFewerGroups(t *testing.T) {
	d := placementTopo(t)
	ff, _ := NewPlacementPolicy("firstfit")
	cp, _ := NewPlacementPolicy("compact")
	const n = 24
	ffNodes := ff.Place(NewAllocator(d), n, 0.05, nil, nil, rng.New(9))
	cpNodes := cp.Place(NewAllocator(d), n, 0.05, nil, nil, rng.New(9))
	if ffNodes == nil || cpNodes == nil {
		t.Fatal("placement failed on an empty machine")
	}
	_, ffGroups := PlacementFeatures(d, ffNodes)
	_, cpGroups := PlacementFeatures(d, cpNodes)
	if cpGroups > ffGroups {
		t.Fatalf("compact spans %d groups, firstfit %d", cpGroups, ffGroups)
	}
}

// TestInterferenceAvoidsHotGroups: nodes never land in a flagged group
// while the machine has room elsewhere, and the avoidance degrades
// gracefully (rather than starving the job) when it doesn't fit.
func TestInterferenceAvoidsHotGroups(t *testing.T) {
	d := placementTopo(t)
	p, _ := NewPlacementPolicy("interference")
	hot := topology.GroupID(0)
	adv := &PlacementAdvice{HotGroups: map[topology.GroupID]bool{hot: true}}
	advise := func() *PlacementAdvice { return adv }
	nodes := p.Place(NewAllocator(d), 16, 0.5, nil, advise, rng.New(3))
	if nodes == nil {
		t.Fatal("interference placement failed with one hot group")
	}
	for _, n := range nodes {
		if g := d.Group(d.RouterOfNode(n)); g == hot {
			t.Fatalf("node %v landed in hot group %d", n, g)
		}
	}

	// every group hot: the advice cannot be honored, the job still places
	allHot := &PlacementAdvice{HotGroups: map[topology.GroupID]bool{}}
	for g := 0; g < d.Cfg.Groups; g++ {
		allHot.HotGroups[topology.GroupID(g)] = true
	}
	nodes = p.Place(NewAllocator(d), 16, 0.5, nil, func() *PlacementAdvice { return allHot }, rng.New(3))
	if nodes == nil {
		t.Fatal("interference starved the job when the advice did not fit")
	}
}

// TestInterferenceWithoutSignalIsPlainAlloc: no hot groups and no blame →
// the same nodes as a plain allocation with the same stream.
func TestInterferenceWithoutSignalIsPlainAlloc(t *testing.T) {
	d := placementTopo(t)
	p, _ := NewPlacementPolicy("interference")
	advise := func() *PlacementAdvice { return &PlacementAdvice{} }
	got := p.Place(NewAllocator(d), 12, 0.4, nil, advise, rng.New(11))
	want := NewAllocator(d).AllocAvoiding(12, 0.4, nil, rng.New(11))
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("node %d: interference %v, plain %v", i, got[i], want[i])
		}
	}
}

// TestInterferenceCompactsUnderBlame: an active blamed user shrinks the
// job's cross-section (fewer groups) compared to the unblamed placement.
func TestInterferenceCompactsUnderBlame(t *testing.T) {
	d := placementTopo(t)
	p, _ := NewPlacementPolicy("interference")
	const n = 24
	calm := p.Place(NewAllocator(d), n, 0.05, nil,
		func() *PlacementAdvice { return &PlacementAdvice{} }, rng.New(2))
	noisy := p.Place(NewAllocator(d), n, 0.05, nil,
		func() *PlacementAdvice { return &PlacementAdvice{BlamedActive: true} }, rng.New(2))
	if calm == nil || noisy == nil {
		t.Fatal("placement failed on an empty machine")
	}
	_, calmGroups := PlacementFeatures(d, calm)
	_, noisyGroups := PlacementFeatures(d, noisy)
	if noisyGroups > calmGroups {
		t.Fatalf("blame active spans %d groups, calm %d", noisyGroups, calmGroups)
	}
}
