package slurm

import (
	"fmt"
	"sort"

	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// PlacementAdvice is the deterministic congestion view a placement policy
// may consult before choosing nodes: the expected per-group load over the
// job's window (from the background timeline and any advisor-blamed
// users' jobs, weighted up), and the groups the monitor's hot-spot
// criterion flags as outliers of that view. It is computed by the caller
// (internal/cluster) from schedule state only — never from the live
// monitor, which observes worker-interleaved rounds and would break the
// serial ≡ parallel byte-identity contract.
type PlacementAdvice struct {
	// GroupLoad[g] is the expected flits/s entering group g during the
	// job's window.
	GroupLoad []float64
	// HotGroups flags the groups whose expected load is a cross-sectional
	// outlier (monitor.CrossSectionHot over GroupLoad).
	HotGroups map[topology.GroupID]bool
	// BlamedActive reports whether any advisor-blamed user has a job
	// overlapping the window — the signal that interference is likely.
	BlamedActive bool
}

// PlacementPolicy decides where a job's nodes land. Place behaves like
// Allocator.AllocAvoiding: it returns n free nodes outside busy, or nil
// when the job cannot be placed right now (the caller requeues). compact
// is the compactness the scheduler drew for this submission in [0.05,
// 0.95]; policies may reinterpret it but must not consume additional
// randomness beyond the shared stream s, so every policy sees the same
// stream state for the same submission. advise lazily computes the
// congestion view; policies that do not consult it must not call it.
type PlacementPolicy interface {
	Name() string
	Place(a *Allocator, n int, compact float64, busy map[topology.NodeID]bool,
		advise func() *PlacementAdvice, s *rng.Stream) []topology.NodeID
}

// PlacementPolicyNames lists the built-in placement policies, sorted.
func PlacementPolicyNames() []string {
	names := []string{"firstfit", "compact", "interference"}
	sort.Strings(names)
	return names
}

// ValidPlacementPolicy reports whether name is a built-in placement policy.
func ValidPlacementPolicy(name string) bool {
	for _, n := range PlacementPolicyNames() {
		if n == name {
			return true
		}
	}
	return false
}

// NewPlacementPolicy builds a built-in placement policy by name.
func NewPlacementPolicy(name string) (PlacementPolicy, error) {
	switch name {
	case "firstfit":
		return firstFitPolicy{}, nil
	case "compact":
		return compactPolicy{}, nil
	case "interference":
		return &interferencePolicy{
			tmAvoided:  telemetry.C(telemetry.MSlurmHotGroupAvoided),
			tmFallback: telemetry.C(telemetry.MSlurmAdviceFallback),
		}, nil
	default:
		return nil, fmt.Errorf("slurm: unknown placement policy %q (have %v)", name, PlacementPolicyNames())
	}
}

// firstFitPolicy is the historical behavior: allocate with the scheduler's
// drawn compactness, exactly as Allocator.AllocAvoiding always has.
type firstFitPolicy struct{}

func (firstFitPolicy) Name() string { return "firstfit" }

func (firstFitPolicy) Place(a *Allocator, n int, compact float64, busy map[topology.NodeID]bool,
	_ func() *PlacementAdvice, s *rng.Stream) []topology.NodeID {
	return a.AllocAvoiding(n, compact, busy, s)
}

// compactPolicy pins compactness to the top of the scheduler's range,
// draining whole groups in sequence: the few-groups/few-routers end of the
// paper's placement-feature spectrum, minimizing the job's exposure to
// shared links (and with it, variability) at the price of intra-group
// contention.
type compactPolicy struct{}

func (compactPolicy) Name() string { return "compact" }

func (compactPolicy) Place(a *Allocator, n int, _ float64, busy map[topology.NodeID]bool,
	_ func() *PlacementAdvice, s *rng.Stream) []topology.NodeID {
	return a.AllocAvoiding(n, 0.95, busy, s)
}

// interferencePolicy closes the scheduling loop: it consults the advice —
// the advisor's blame list folded into the expected per-group load, and
// the monitor's hot-group criterion over it — and keeps the job's nodes
// out of the flagged groups. When the machine is too full to honor the
// advice the policy falls back to the plain allocation rather than
// starving the job. With blamed users active it also compacts harder, the
// mitigation the paper's §VI discussion (and the advisor's delay signal)
// points at.
type interferencePolicy struct {
	tmAvoided  *telemetry.Counter
	tmFallback *telemetry.Counter
}

func (*interferencePolicy) Name() string { return "interference" }

func (p *interferencePolicy) Place(a *Allocator, n int, compact float64, busy map[topology.NodeID]bool,
	advise func() *PlacementAdvice, s *rng.Stream) []topology.NodeID {
	adv := advise()
	if adv != nil && adv.BlamedActive {
		// noisy neighborhood: shrink the job's network cross-section
		compact = 0.5 + 0.5*compact
	}
	if adv == nil || len(adv.HotGroups) == 0 {
		return a.AllocAvoiding(n, compact, busy, s)
	}
	// exclude every node of the hot groups, on top of the busy set
	avoid := make(map[topology.NodeID]bool, len(busy))
	for node := range busy {
		avoid[node] = true
	}
	for node, g := range a.nodeGroups() {
		if adv.HotGroups[g] {
			avoid[node] = true
		}
	}
	if out := a.AllocAvoiding(n, compact, avoid, s); out != nil {
		p.tmAvoided.Add(int64(len(adv.HotGroups)))
		return out
	}
	// the advice doesn't fit; place the job anyway
	p.tmFallback.Add(1)
	return a.AllocAvoiding(n, compact, busy, s)
}

// nodeGroups enumerates every allocatable node with its group.
func (a *Allocator) nodeGroups() map[topology.NodeID]topology.GroupID {
	out := make(map[topology.NodeID]topology.GroupID, len(a.position))
	for node := range a.position {
		out[node] = a.topo.Group(a.topo.RouterOfNode(node))
	}
	return out
}
