package slurm

import (
	"strconv"
	"strings"
	"testing"

	"dragonvar/internal/faults"
	"dragonvar/internal/rng"
)

// genFaulted drains every router for a mid-campaign window so that many
// running jobs get killed and requeued.
func genFaulted(t *testing.T, seed int64) *Timeline {
	t.Helper()
	net := testNet(t)
	topo := net.Topology()
	var clauses []string
	for r := 0; r < topo.Cfg.NumRouters(); r++ {
		clauses = append(clauses, "drain:"+strconv.Itoa(r)+"@43200-50400")
	}
	sched, err := faults.Parse(strings.Join(clauses, ","), topo, 2*86400, seed)
	if err != nil {
		t.Fatal(err)
	}
	return Generate(net, GenerateConfig{Days: 2, Faults: sched}, rng.New(seed))
}

func TestDrainKillsAndRequeues(t *testing.T) {
	tl := genFaulted(t, 31)
	var killed, requeued int
	for _, j := range tl.Jobs {
		if j.State == StateNodeFail {
			killed++
			// killed exactly at (or a tick after) the drain start, never past it
			if j.End < 43200 || j.End > 43260+1 {
				t.Fatalf("NODE_FAIL job %d ends at %v, want the drain start", j.ID, j.End)
			}
		}
		if j.Attempt > 0 {
			requeued++
			// resubmission waits out at least the first backoff
			if prev := j.Start; prev < 43200+requeueBackoff(0) {
				t.Fatalf("requeued job %d starts at %v, before backoff elapsed", j.ID, prev)
			}
		}
	}
	if killed == 0 {
		t.Fatal("machine-wide drain killed no jobs")
	}
	if requeued == 0 {
		t.Fatal("no killed job was requeued")
	}
	if tl.Requeues() != requeued {
		t.Fatalf("Requeues() = %d, counted %d", tl.Requeues(), requeued)
	}
	// requeue states must appear in the sacct log
	var nodeFail, attempts int
	for _, rec := range tl.Records() {
		switch {
		case rec.State == StateNodeFail:
			nodeFail++
		case rec.State != StateCompleted:
			t.Fatalf("unexpected state %q", rec.State)
		}
		if rec.Attempt > 0 {
			attempts++
		}
	}
	if nodeFail != killed || attempts != requeued {
		t.Fatalf("records disagree: %d/%d vs %d/%d", nodeFail, attempts, killed, requeued)
	}
}

func TestFaultedGenerateDeterministic(t *testing.T) {
	tl1 := genFaulted(t, 37)
	tl2 := genFaulted(t, 37)
	if len(tl1.Jobs) != len(tl2.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(tl1.Jobs), len(tl2.Jobs))
	}
	for i := range tl1.Jobs {
		a, b := tl1.Jobs[i], tl2.Jobs[i]
		if a.Start != b.Start || a.End != b.End || a.State != b.State || a.Attempt != b.Attempt {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestDrainedNodesNotAllocated(t *testing.T) {
	net := testNet(t)
	topo := net.Topology()
	// drain router 0 for the whole campaign: none of its nodes may appear
	sched, err := faults.Parse("drain:0@0-172800", topo, 2*86400, 5)
	if err != nil {
		t.Fatal(err)
	}
	tl := Generate(net, GenerateConfig{Days: 2, Faults: sched}, rng.New(5))
	bad := map[int64]bool{}
	for _, n := range topo.NodesOfRouter(0) {
		bad[int64(n)] = true
	}
	for _, j := range tl.Jobs {
		for _, n := range j.Nodes {
			if bad[int64(n)] {
				t.Fatalf("job %d allocated drained node %d", j.ID, n)
			}
		}
	}
}
