package slurm

import (
	"math"
	"testing"

	"dragonvar/internal/netsim"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func testNet(t *testing.T) *netsim.Network {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return netsim.New(d, netsim.DefaultConfig(), rng.New(11))
}

func TestRosterRoles(t *testing.T) {
	users := Roster()
	byID := map[int]*User{}
	for _, u := range users {
		if byID[u.ID] != nil {
			t.Fatalf("duplicate user ID %d", u.ID)
		}
		byID[u.ID] = u
	}
	// User 8 is reserved for the campaign's own jobs
	if byID[SelfUserID] != nil {
		t.Fatal("roster must not contain User-8 (the campaign user)")
	}
	// the paper's named heavy hitters exist and are communication-heavy
	for _, id := range []int{2, 9, 11, 6, 10, 14} {
		u := byID[id]
		if u == nil {
			t.Fatalf("User-%d missing from roster", id)
		}
		if !u.Workload.CommHeavy() {
			t.Errorf("User-%d should be communication-heavy", id)
		}
	}
	if byID[2].AppName != "hipmer" || byID[11].AppName != "e3sm" || byID[9].AppName != "fastpm" {
		t.Error("heavy-hitter app roles wrong")
	}
	// hipmer is also I/O heavy
	if byID[2].Workload.IOBytesPerNodePerSec < 2*byID[1].Workload.IOBytesPerNodePerSec {
		t.Error("hipmer should be I/O-heavy")
	}
	// light tail is quiet
	if byID[20] == nil || byID[20].Workload.CommHeavy() {
		t.Error("tail users should be light")
	}
	if byID[2].Name() != "User-2" {
		t.Errorf("Name() = %q", byID[2].Name())
	}
}

func TestAllocatorBasics(t *testing.T) {
	net := testNet(t)
	a := NewAllocator(net.Topology())
	total := a.FreeCount()
	if total == 0 {
		t.Fatal("no free nodes")
	}
	s := rng.New(3)
	nodes := a.Alloc(32, 0.5, s)
	if len(nodes) != 32 {
		t.Fatalf("allocated %d nodes", len(nodes))
	}
	if a.FreeCount() != total-32 {
		t.Fatalf("free count = %d", a.FreeCount())
	}
	// no duplicates, none on I/O routers
	seen := map[topology.NodeID]bool{}
	for _, n := range nodes {
		if seen[n] {
			t.Fatal("duplicate node in allocation")
		}
		seen[n] = true
		if net.Topology().NodeClassOf(n) == topology.IONode {
			t.Fatal("allocated an I/O service node")
		}
		if a.IsFree(n) {
			t.Fatal("allocated node still marked free")
		}
	}
	a.Free(nodes)
	if a.FreeCount() != total {
		t.Fatal("free count after release wrong")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	net := testNet(t)
	a := NewAllocator(net.Topology())
	s := rng.New(3)
	if a.Alloc(a.FreeCount()+1, 0.5, s) != nil {
		t.Fatal("oversized allocation should fail")
	}
	all := a.Alloc(a.FreeCount(), 0.5, s)
	if all == nil {
		t.Fatal("full allocation should succeed")
	}
	if a.FreeCount() != 0 {
		t.Fatal("pool should be empty")
	}
	if a.Alloc(1, 0.5, s) != nil {
		t.Fatal("allocation from empty pool should fail")
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	net := testNet(t)
	a := NewAllocator(net.Topology())
	nodes := a.Alloc(4, 0.5, rng.New(3))
	a.Free(nodes)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	a.Free(nodes)
}

func TestCompactnessAffectsFragmentation(t *testing.T) {
	net := testNet(t)
	topo := net.Topology()
	groupsOf := func(compact float64) float64 {
		a := NewAllocator(topo)
		s := rng.New(17)
		var total float64
		for trial := 0; trial < 20; trial++ {
			nodes := a.Alloc(64, compact, s)
			_, g := PlacementFeatures(topo, nodes)
			total += float64(g)
			a.Free(nodes)
		}
		return total / 20
	}
	if compactG, spreadG := groupsOf(1.0), groupsOf(0.0); compactG >= spreadG {
		t.Fatalf("compact allocations should span fewer groups: compact %v, spread %v", compactG, spreadG)
	}
}

func TestAllocAvoiding(t *testing.T) {
	net := testNet(t)
	a := NewAllocator(net.Topology())
	s := rng.New(3)
	busyNodes := a.Alloc(16, 0.5, s)
	a.Free(busyNodes)
	busy := map[topology.NodeID]bool{}
	for _, n := range busyNodes {
		busy[n] = true
	}
	got := a.AllocAvoiding(32, 0.2, busy, s)
	if got == nil {
		t.Fatal("allocation failed")
	}
	for _, n := range got {
		if busy[n] {
			t.Fatal("allocated a busy node")
		}
	}
	// the busy-but-free nodes must be back in the pool afterwards
	for _, n := range busyNodes {
		if !a.IsFree(n) {
			t.Fatal("busy nodes were not returned to the pool")
		}
	}
}

func TestPlacementFeatures(t *testing.T) {
	net := testNet(t)
	topo := net.Topology()
	// all four nodes of one router
	r := topo.RouterAt(3, 2, 2)
	nr, ng := PlacementFeatures(topo, topo.NodesOfRouter(r))
	if nr != 1 || ng != 1 {
		t.Fatalf("single-router placement features = (%d,%d)", nr, ng)
	}
	// two nodes on different groups
	n1 := topo.NodesOfRouter(topo.RouterAt(3, 2, 2))[0]
	n2 := topo.NodesOfRouter(topo.RouterAt(4, 2, 2))[0]
	nr, ng = PlacementFeatures(topo, []topology.NodeID{n1, n2})
	if nr != 2 || ng != 2 {
		t.Fatalf("two-group placement features = (%d,%d)", nr, ng)
	}
}

func genTimeline(t *testing.T, days float64, seed int64) (*netsim.Network, *Timeline) {
	t.Helper()
	net := testNet(t)
	tl := Generate(net, GenerateConfig{Days: days}, rng.New(seed))
	return net, tl
}

func TestGenerateTimeline(t *testing.T) {
	net, tl := genTimeline(t, 3, 21)
	if len(tl.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	horizon := tl.Horizon()
	prevStart := -1.0
	for _, j := range tl.Jobs {
		if j.Start < prevStart {
			t.Fatal("jobs not sorted by start")
		}
		prevStart = j.Start
		if j.End <= j.Start || j.End > horizon+1 {
			t.Fatalf("bad job window [%v, %v]", j.Start, j.End)
		}
		if len(j.Nodes) == 0 {
			t.Fatal("job without nodes")
		}
		if j.Load == nil {
			t.Fatal("job without footprint")
		}
		if len(j.Nodes) > net.Topology().Cfg.NumNodes()/3 {
			t.Fatalf("job too large for machine: %d nodes", len(j.Nodes))
		}
	}
}

func TestNoOverlappingAllocations(t *testing.T) {
	_, tl := genTimeline(t, 2, 23)
	// at a set of probe times, no node may belong to two running jobs
	for probe := 0.0; probe < tl.Horizon(); probe += 3600 {
		owned := map[topology.NodeID]int{}
		for _, j := range tl.Overlapping(probe, probe+1) {
			for _, n := range j.Nodes {
				if prev, clash := owned[n]; clash {
					t.Fatalf("node %d owned by jobs %d and %d at t=%v", n, prev, j.ID, probe)
				}
				owned[n] = j.ID
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, tl1 := genTimeline(t, 2, 29)
	_, tl2 := genTimeline(t, 2, 29)
	if len(tl1.Jobs) != len(tl2.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(tl1.Jobs), len(tl2.Jobs))
	}
	for i := range tl1.Jobs {
		a, b := tl1.Jobs[i], tl2.Jobs[i]
		if a.Start != b.Start || a.End != b.End || len(a.Nodes) != len(b.Nodes) || a.User.ID != b.User.ID {
			t.Fatalf("job %d differs between identical seeds", i)
		}
	}
}

func TestOverlappingWindow(t *testing.T) {
	_, tl := genTimeline(t, 2, 31)
	mid := tl.Horizon() / 2
	jobs := tl.Overlapping(mid, mid+600)
	for _, j := range jobs {
		if !j.Overlaps(mid, mid+600) {
			t.Fatal("non-overlapping job returned")
		}
	}
	// count manually
	count := 0
	for _, j := range tl.Jobs {
		if j.Overlaps(mid, mid+600) {
			count++
		}
	}
	if count != len(jobs) {
		t.Fatalf("Overlapping returned %d, manual count %d", len(jobs), count)
	}
}

func TestIntensityAutocorrelated(t *testing.T) {
	_, tl := genTimeline(t, 2, 37)
	var longest *Job
	for _, j := range tl.Jobs {
		if longest == nil || j.Duration() > longest.Duration() {
			longest = j
		}
	}
	if longest == nil || longest.Duration() < 3600 {
		t.Skip("no long job in small timeline")
	}
	// successive minutes should be strongly correlated
	var x, y []float64
	for m := 0; m < int(longest.Duration()/60)-1; m++ {
		t0 := longest.Start + float64(m)*60
		x = append(x, longest.IntensityAt(t0))
		y = append(y, longest.IntensityAt(t0+60))
	}
	var sxy, sxx, syy, sx, sy float64
	n := float64(len(x))
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	for i := range x {
		sxy += (x[i] - mx) * (y[i] - my)
		sxx += (x[i] - mx) * (x[i] - mx)
		syy += (y[i] - my) * (y[i] - my)
	}
	if sxx == 0 || syy == 0 {
		t.Skip("degenerate intensity series")
	}
	rho := sxy / math.Sqrt(sxx*syy)
	if rho < 0.5 {
		t.Fatalf("intensity autocorrelation = %v, want high", rho)
	}
}

func TestIntensityOutsideLifetime(t *testing.T) {
	_, tl := genTimeline(t, 1, 41)
	j := tl.Jobs[0]
	if j.IntensityAt(j.Start-1) != 0 || j.IntensityAt(j.End+1) != 0 {
		t.Fatal("intensity outside job lifetime should be 0")
	}
	if j.IntensityAt(j.Start+1) <= 0 {
		t.Fatal("intensity during job should be positive")
	}
}

func TestScaledLoadAt(t *testing.T) {
	_, tl := genTimeline(t, 1, 43)
	j := tl.Jobs[0]
	mid := (j.Start + j.End) / 2
	sl := j.ScaledLoadAt(mid, 10)
	if sl.Set != j.Load {
		t.Fatal("ScaledLoadAt should reference the job's footprint")
	}
	if sl.Scale <= 0 {
		t.Fatal("scale should be positive during the job")
	}
	// doubling the window doubles the scale
	sl2 := j.ScaledLoadAt(mid, 20)
	if math.Abs(sl2.Scale-2*sl.Scale) > 1e-9 {
		t.Fatal("scale not linear in duration")
	}
}

func TestRecordsAndNeighbors(t *testing.T) {
	_, tl := genTimeline(t, 3, 47)
	recs := tl.Records()
	if len(recs) != len(tl.Jobs) {
		t.Fatal("records/jobs mismatch")
	}
	for i, r := range recs {
		if r.UserName == "" || r.JobName == "" || r.NumNodes == 0 {
			t.Fatalf("incomplete record %+v", r)
		}
		if r.JobID != tl.Jobs[i].ID {
			t.Fatal("record order mismatch")
		}
	}
	mid := tl.Horizon() / 2
	names := tl.NeighborUsers(mid, mid+1800, 1)
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatal("duplicate neighbor name")
		}
		seen[n] = true
	}
	// minNodes filters
	big := tl.NeighborUsers(mid, mid+1800, 1<<30)
	if len(big) != 0 {
		t.Fatal("absurd minNodes should filter everyone")
	}
}

func TestBusyNodesAt(t *testing.T) {
	_, tl := genTimeline(t, 2, 53)
	mid := tl.Horizon() / 2
	busy := tl.BusyNodesAt(mid, mid+1)
	count := 0
	for _, j := range tl.Overlapping(mid, mid+1) {
		count += len(j.Nodes)
	}
	if len(busy) != count {
		t.Fatalf("busy nodes %d != sum of job nodes %d", len(busy), count)
	}
}

func TestMachineReasonablyUtilized(t *testing.T) {
	net, tl := genTimeline(t, 4, 59)
	totalNodes := float64(net.Topology().Cfg.NumNodes())
	var sum float64
	probes := 0
	// skip the first day (ramp-up from an empty machine)
	for probe := 86400.0; probe < tl.Horizon(); probe += 3600 {
		sum += float64(len(tl.BusyNodesAt(probe, probe+1))) / totalNodes
		probes++
	}
	mean := sum / float64(probes)
	if mean < 0.2 {
		t.Fatalf("machine only %.0f%% utilized — too idle to produce contention", mean*100)
	}
	if mean > 0.98 {
		t.Fatalf("machine %.0f%% utilized — no room for controlled jobs", mean*100)
	}
}

func TestPoisson(t *testing.T) {
	s := rng.New(61)
	// small mean
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(s, 3))
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.15 {
		t.Fatalf("poisson(3) mean = %v", mean)
	}
	// large mean uses normal approximation
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(poisson(s, 100))
	}
	if mean := sum / float64(n); math.Abs(mean-100) > 2 {
		t.Fatalf("poisson(100) mean = %v", mean)
	}
	if poisson(s, 0) != 0 || poisson(s, -1) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestJobHeapOrdering(t *testing.T) {
	var h jobHeap
	ends := []float64{5, 1, 4, 2, 3}
	for _, e := range ends {
		h.push(&Job{End: e})
	}
	prev := -1.0
	for len(h) > 0 {
		j := h.pop()
		if j.End < prev {
			t.Fatalf("heap popped out of order: %v after %v", j.End, prev)
		}
		prev = j.End
	}
}
