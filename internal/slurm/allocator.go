package slurm

import (
	"sort"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Allocator manages the free compute-node pool (KNL and Haswell nodes;
// I/O service nodes are never allocated to jobs). Allocation compactness is
// tunable: production Slurm on Cori hands out allocations of varying
// fragmentation, which is exactly what gives the NUM_ROUTERS / NUM_GROUPS
// placement features their variance.
type Allocator struct {
	topo *topology.Dragonfly

	// freeByGroup[g] holds the free nodes of group g; position[n] is the
	// index of node n within its group slice (-1 when allocated).
	freeByGroup [][]topology.NodeID
	position    map[topology.NodeID]int
	freeTotal   int
}

// NewAllocator returns an allocator with every compute node free.
func NewAllocator(topo *topology.Dragonfly) *Allocator {
	a := &Allocator{
		topo:        topo,
		freeByGroup: make([][]topology.NodeID, topo.Cfg.Groups),
		position:    make(map[topology.NodeID]int),
	}
	for _, class := range []topology.NodeClass{topology.KNL, topology.Haswell} {
		for _, n := range topo.ComputeNodes(class) {
			g := topo.Group(topo.RouterOfNode(n))
			a.position[n] = len(a.freeByGroup[g])
			a.freeByGroup[g] = append(a.freeByGroup[g], n)
			a.freeTotal++
		}
	}
	return a
}

// FreeCount returns the number of free nodes.
func (a *Allocator) FreeCount() int { return a.freeTotal }

// IsFree reports whether node n is currently free.
func (a *Allocator) IsFree(n topology.NodeID) bool {
	idx, ok := a.position[n]
	return ok && idx >= 0
}

// take removes node at index idx of group g's free list.
func (a *Allocator) take(g topology.GroupID, idx int) topology.NodeID {
	list := a.freeByGroup[g]
	n := list[idx]
	last := len(list) - 1
	list[idx] = list[last]
	a.position[list[idx]] = idx
	a.freeByGroup[g] = list[:last]
	a.position[n] = -1
	a.freeTotal--
	return n
}

// Alloc grabs n free nodes and returns them, or nil when fewer than n are
// free. compact in [0,1] steers fragmentation: near 1 the allocation
// drains whole groups in sequence (few groups, few routers); near 0 it
// scatters nodes over many groups, like a busy production machine
// backfilling holes.
func (a *Allocator) Alloc(n int, compact float64, s *rng.Stream) []topology.NodeID {
	if n <= 0 || n > a.freeTotal {
		return nil
	}
	if compact < 0 {
		compact = 0
	} else if compact > 1 {
		compact = 1
	}
	groups := s.Perm(len(a.freeByGroup))
	// spread: how many groups to stripe across (1 = fill group by group)
	spread := 1 + int((1-compact)*7)
	perGroup := (n + spread - 1) / spread

	out := make([]topology.NodeID, 0, n)
	for len(out) < n {
		progress := false
		for _, g := range groups {
			if len(out) >= n {
				break
			}
			list := a.freeByGroup[g]
			if len(list) == 0 {
				continue
			}
			want := perGroup
			if want > n-len(out) {
				want = n - len(out)
			}
			if want > len(list) {
				want = len(list)
			}
			for i := 0; i < want; i++ {
				idx := s.Intn(len(a.freeByGroup[g]))
				out = append(out, a.take(topology.GroupID(g), idx))
			}
			if want > 0 {
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if len(out) < n {
		// cannot happen given the freeTotal check, but stay safe
		a.Free(out)
		return nil
	}
	return out
}

// AllocAvoiding behaves like Alloc but never hands out nodes in the busy
// set. Used when placing instrumented jobs into a pre-generated timeline.
func (a *Allocator) AllocAvoiding(n int, compact float64, busy map[topology.NodeID]bool, s *rng.Stream) []topology.NodeID {
	if len(busy) == 0 {
		return a.Alloc(n, compact, s)
	}
	// temporarily remove the busy nodes that are currently free; iterate in
	// sorted order so allocator state stays deterministic
	busyList := make([]topology.NodeID, 0, len(busy))
	for node := range busy {
		busyList = append(busyList, node)
	}
	sort.Slice(busyList, func(i, j int) bool { return busyList[i] < busyList[j] })
	var removed []topology.NodeID
	for _, node := range busyList {
		if a.IsFree(node) {
			g := a.topo.Group(a.topo.RouterOfNode(node))
			a.take(g, a.position[node])
			removed = append(removed, node)
		}
	}
	out := a.Alloc(n, compact, s)
	a.Free(removed)
	return out
}

// Free returns nodes to the pool. Freeing an already-free node panics:
// that is always a double-release bug in the caller.
func (a *Allocator) Free(nodes []topology.NodeID) {
	for _, n := range nodes {
		if idx, ok := a.position[n]; !ok {
			panic("slurm: freeing unknown node")
		} else if idx >= 0 {
			panic("slurm: double free of node")
		}
		g := a.topo.Group(a.topo.RouterOfNode(n))
		a.position[n] = len(a.freeByGroup[g])
		a.freeByGroup[g] = append(a.freeByGroup[g], n)
		a.freeTotal++
	}
}
