// Package stats implements the statistical primitives used by the
// variability analyses: summary statistics, quantiles, correlation, mean
// absolute percentage error, and the plug-in mutual-information estimator of
// §IV-A of the paper (Eq. 1).
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x; NaN for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the unbiased sample variance of x (0 when len < 2).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x)-1)
}

// Std returns the unbiased sample standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MeanStd returns both the mean and standard deviation in one pass over the
// data (Welford's algorithm).
func MeanStd(x []float64) (mean, std float64) {
	var w Welford
	for _, v := range x {
		w.Add(v)
	}
	return w.Mean(), w.Std()
}

// Min returns the minimum of x; +Inf for an empty slice.
func Min(x []float64) float64 {
	m := math.Inf(1)
	for _, v := range x {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x; -Inf for an empty slice.
func Max(x []float64) float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of x using linear
// interpolation between order statistics. x is not modified.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the median of x.
func Median(x []float64) float64 { return Quantile(x, 0.5) }

// MAPE returns the mean absolute percentage error between predictions and
// observations, in percent, as reported in Figures 8 and 10 of the paper.
// Pairs whose observed value is zero, or where either side is NaN or Inf
// (e.g. a missing-sample marker that leaked into a prediction), are skipped.
func MAPE(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("stats: MAPE length mismatch")
	}
	var s float64
	n := 0
	for i, o := range obs {
		if o == 0 {
			continue
		}
		if math.IsNaN(o) || math.IsInf(o, 0) || math.IsNaN(pred[i]) || math.IsInf(pred[i], 0) {
			continue
		}
		s += math.Abs((pred[i] - o) / o)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * s / float64(n)
}

// RMSE returns the root mean squared error between predictions and
// observations.
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("stats: RMSE length mismatch")
	}
	if len(obs) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range obs {
		d := pred[i] - obs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(obs)))
}

// Pearson returns the Pearson linear correlation coefficient between x and
// y; 0 when either is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks returns the fractional ranks of x (average rank for ties), 1-based.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation between x and y.
func Spearman(x, y []float64) float64 {
	return Pearson(Ranks(x), Ranks(y))
}

// Welford accumulates a running mean and variance in one pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a value into the accumulator.
func (w *Welford) Add(v float64) {
	w.n++
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the number of values accumulated.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased running variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the unbiased running standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// AutoCorr returns the lag-k sample autocorrelation of x (the standard
// biased estimator). Background traffic autocorrelation is what makes
// history-based forecasting possible, so the analyses check it explicitly.
func AutoCorr(x []float64, lag int) float64 {
	n := len(x)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		d := x[i] - m
		den += d * d
		if i+lag < n {
			num += d * (x[i+lag] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
