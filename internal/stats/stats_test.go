package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("Mean = %v", Mean(x))
	}
	// sample variance of this classic dataset is 32/7
	if math.Abs(Variance(x)-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(x))
	}
	if math.Abs(Std(x)-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("Std = %v", Std(x))
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestMeanStdMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				x = append(x, math.Mod(v, 1e6))
			}
		}
		if len(x) < 2 {
			return true
		}
		m1, s1 := MeanStd(x)
		return math.Abs(m1-Mean(x)) < 1e-6 && math.Abs(s1-Std(x)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 4}
	if Min(x) != -1 || Max(x) != 4 {
		t.Fatal("Min/Max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if Quantile(x, 0) != 1 || Quantile(x, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Median(x) != 3 {
		t.Fatalf("Median = %v", Median(x))
	}
	if Quantile(x, 0.25) != 2 {
		t.Fatalf("Q1 = %v", Quantile(x, 0.25))
	}
	// interpolation between order statistics
	y := []float64{0, 10}
	if Quantile(y, 0.5) != 5 {
		t.Fatalf("interpolated median = %v", Quantile(y, 0.5))
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	x := []float64{5, 1, 3}
	Quantile(x, 0.5)
	if x[0] != 5 || x[1] != 1 || x[2] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90}
	obs := []float64{100, 100}
	if math.Abs(MAPE(pred, obs)-10) > 1e-12 {
		t.Fatalf("MAPE = %v, want 10", MAPE(pred, obs))
	}
	// zero observations skipped
	if math.Abs(MAPE([]float64{1, 110}, []float64{0, 100})-10) > 1e-12 {
		t.Fatal("MAPE should skip zero observations")
	}
	if !math.IsNaN(MAPE([]float64{1}, []float64{0})) {
		t.Fatal("MAPE with no valid pairs should be NaN")
	}
}

func TestMAPEPerfectPrediction(t *testing.T) {
	f := func(raw []float64) bool {
		x := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v != 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				x = append(x, v)
			}
		}
		if len(x) == 0 {
			return true
		}
		return MAPE(x, x) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSE(t *testing.T) {
	if RMSE([]float64{0, 0}, []float64{3, 4}) != math.Sqrt(12.5) {
		t.Fatalf("RMSE = %v", RMSE([]float64{0, 0}, []float64{3, 4}))
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if math.Abs(Pearson(x, y)-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %v", Pearson(x, y))
	}
	ny := []float64{8, 6, 4, 2}
	if math.Abs(Pearson(x, ny)+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %v", Pearson(x, ny))
	}
	if Pearson(x, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant variable should give 0")
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	if math.Abs(Spearman(x, y)-1) > 1e-12 {
		t.Fatalf("Spearman of monotone data = %v, want 1", Spearman(x, y))
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range data {
		w.Add(v)
	}
	if w.N() != len(data) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Welford mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("Welford variance = %v", w.Variance())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) {
		t.Fatal("empty Welford mean should be NaN")
	}
	if w.Variance() != 0 {
		t.Fatal("empty Welford variance should be 0")
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// X and Y independent by construction: all 4 combinations equally often
	var x, y []bool
	for i := 0; i < 400; i++ {
		x = append(x, i%2 == 0)
		y = append(y, (i/2)%2 == 0)
	}
	if mi := MutualInformationBinary(x, y); mi > 1e-9 {
		t.Fatalf("MI of independent variables = %v, want 0", mi)
	}
}

func TestMutualInformationIdentical(t *testing.T) {
	var x []bool
	for i := 0; i < 100; i++ {
		x = append(x, i%2 == 0)
	}
	mi := MutualInformationBinary(x, x)
	want := math.Log(2) // entropy of a fair coin, in nats
	if math.Abs(mi-want) > 1e-9 {
		t.Fatalf("MI(X;X) = %v, want %v", mi, want)
	}
}

func TestMutualInformationSymmetric(t *testing.T) {
	f := func(seed uint32) bool {
		n := 64
		x := make([]bool, n)
		y := make([]bool, n)
		s := seed
		next := func() uint32 { s = s*1664525 + 1013904223; return s }
		for i := 0; i < n; i++ {
			x[i] = next()%3 == 0
			y[i] = next()%2 == 0
		}
		a := MutualInformationBinary(x, y)
		b := MutualInformationBinary(y, x)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationNonNegative(t *testing.T) {
	f := func(xs, ys []bool) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		return MutualInformationBinary(xs[:n], ys[:n]) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationBoundedByEntropy(t *testing.T) {
	// I(X;Y) <= H(X)
	f := func(xs, ys []bool) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := xs[:n], ys[:n]
		return MutualInformationBinary(x, y) <= EntropyBinary(x)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMutualInformationDiscreteMatchesBinary(t *testing.T) {
	x := []bool{true, false, true, true, false, false, true, false}
	y := []bool{true, true, false, true, false, true, false, false}
	xi := make([]int, len(x))
	yi := make([]int, len(y))
	for i := range x {
		if x[i] {
			xi[i] = 1
		}
		if y[i] {
			yi[i] = 1
		}
	}
	a := MutualInformationBinary(x, y)
	b := MutualInformationDiscrete(xi, yi)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("binary %v != discrete %v", a, b)
	}
}

func TestDiscretize(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := Discretize(x, 5)
	if b[0] != 0 || b[9] != 4 {
		t.Fatalf("Discretize endpoints = %d, %d", b[0], b[9])
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatal("Discretize not monotone on sorted input")
		}
	}
	// constant input goes to bin 0
	c := Discretize([]float64{5, 5, 5}, 4)
	for _, v := range c {
		if v != 0 {
			t.Fatal("constant input should map to bin 0")
		}
	}
}

func TestEntropyBinaryExtremes(t *testing.T) {
	if EntropyBinary([]bool{true, true, true}) != 0 {
		t.Fatal("deterministic variable should have zero entropy")
	}
	h := EntropyBinary([]bool{true, false})
	if math.Abs(h-math.Log(2)) > 1e-12 {
		t.Fatalf("fair coin entropy = %v", h)
	}
}

func TestAutoCorr(t *testing.T) {
	// lag 0 is always 1 for non-constant series
	x := []float64{1, 2, 3, 2, 1, 2, 3, 2}
	if math.Abs(AutoCorr(x, 0)-1) > 1e-12 {
		t.Fatalf("lag-0 autocorr = %v", AutoCorr(x, 0))
	}
	// a slow ramp is strongly autocorrelated at small lags
	ramp := make([]float64, 100)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	if AutoCorr(ramp, 1) < 0.9 {
		t.Fatalf("ramp lag-1 autocorr = %v", AutoCorr(ramp, 1))
	}
	// alternating series is negatively correlated at lag 1
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if AutoCorr(alt, 1) > -0.5 {
		t.Fatalf("alternating lag-1 autocorr = %v", AutoCorr(alt, 1))
	}
	// edge cases
	if AutoCorr(x, -1) != 0 || AutoCorr(x, len(x)) != 0 {
		t.Fatal("out-of-range lag should give 0")
	}
	if AutoCorr([]float64{5, 5, 5}, 1) != 0 {
		t.Fatal("constant series should give 0")
	}
}
