package stats

import "math"

// MutualInformationBinary computes the mutual information, in nats, between
// two binary variables given as bool slices of equal length, using the
// plug-in estimator over the 2×2 contingency table:
//
//	I(X;Y) = Σ_x Σ_y P(x,y) log( P(x,y) / (P(x)P(y)) )
//
// This is the quantity the neighborhood analysis (§IV-A, Eq. 1) uses to rank
// users by how much their presence tells us about run optimality. Zero means
// statistical independence.
func MutualInformationBinary(x, y []bool) float64 {
	if len(x) != len(y) {
		panic("stats: MutualInformationBinary length mismatch")
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	// joint counts: c[a][b] = #{i : x[i]==a, y[i]==b} with 0 = false, 1 = true
	var c [2][2]float64
	for i := range x {
		a, b := 0, 0
		if x[i] {
			a = 1
		}
		if y[i] {
			b = 1
		}
		c[a][b]++
	}
	nf := float64(n)
	px := [2]float64{(c[0][0] + c[0][1]) / nf, (c[1][0] + c[1][1]) / nf}
	py := [2]float64{(c[0][0] + c[1][0]) / nf, (c[0][1] + c[1][1]) / nf}
	var mi float64
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			pxy := c[a][b] / nf
			if pxy == 0 || px[a] == 0 || py[b] == 0 {
				continue
			}
			mi += pxy * math.Log(pxy/(px[a]*py[b]))
		}
	}
	if mi < 0 { // guard against tiny negative rounding noise
		mi = 0
	}
	return mi
}

// MutualInformationDiscrete computes the mutual information, in nats,
// between two integer-valued variables using the plug-in estimator. Labels
// may be arbitrary ints.
func MutualInformationDiscrete(x, y []int) float64 {
	if len(x) != len(y) {
		panic("stats: MutualInformationDiscrete length mismatch")
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	joint := make(map[[2]int]float64)
	px := make(map[int]float64)
	py := make(map[int]float64)
	for i := range x {
		joint[[2]int{x[i], y[i]}]++
		px[x[i]]++
		py[y[i]]++
	}
	nf := float64(n)
	var mi float64
	for k, c := range joint {
		pxy := c / nf
		mi += pxy * math.Log(pxy*nf*nf/(px[k[0]]*py[k[1]]))
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Discretize maps each value of x to a bin index in [0, bins) using
// equal-width binning over the observed range. Constant input maps to bin 0.
func Discretize(x []float64, bins int) []int {
	out := make([]int, len(x))
	if len(x) == 0 || bins <= 1 {
		return out
	}
	lo, hi := Min(x), Max(x)
	if hi == lo {
		return out
	}
	w := (hi - lo) / float64(bins)
	for i, v := range x {
		b := int((v - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		out[i] = b
	}
	return out
}

// EntropyBinary returns the entropy, in nats, of a binary variable.
func EntropyBinary(x []bool) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	var ones float64
	for _, v := range x {
		if v {
			ones++
		}
	}
	p := ones / float64(n)
	if p == 0 || p == 1 {
		return 0
	}
	return -p*math.Log(p) - (1-p)*math.Log(1-p)
}
