// Package dist shards a controlled-experiment campaign across processes: a
// coordinator owns the deterministic schedule, requeue decisions, and the
// merge, while workers — on the same machine or across a cluster — lease
// work units (single plan indices) over HTTP/JSON and stream results back.
//
// The headline is not the RPC plumbing but the fault-tolerance contract,
// because workers on a shared cluster die, hang, and get preempted:
//
//   - every unit is handed out under a lease (unit + deadline); a lease
//     that expires — worker crashed, hung, or was preempted mid-unit — is
//     re-dispatched to another worker with capped exponential backoff;
//   - workers heartbeat; a silent worker is declared dead early and its
//     leases are re-queued without waiting for the full deadline;
//   - malformed or inconsistent results are rejected and the unit is
//     re-dispatched — one corrupt worker cannot poison the campaign;
//   - workers retry transient coordinator errors with backoff and jitter
//     (honoring Retry-After), and drain gracefully on SIGTERM: the
//     in-flight unit is finished and reported, no new lease is taken;
//   - the coordinator spills every completed unit to an append-only
//     checkpoint, so a killed coordinator resumes without re-running
//     finished units — and resumes byte-identically.
//
// Determinism: a run's result depends only on its plan, so duplicated
// execution (an expired lease whose original worker later answers too) is
// harmless — first result wins, the rest are dropped as stale. Results are
// merged in plan order by the campaign driver (cluster.RunCampaignWith),
// extending the serial ≡ parallel byte-identity contract of
// internal/engine across process boundaries; the chaos test in this
// package SIGKILLs a worker mid-campaign, restarts the coordinator from
// its checkpoint, and still requires the merged campaign to hash
// identically to a serial in-process run.
package dist

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/netsim"
	"dragonvar/internal/topology"
)

// ProtocolVersion guards against mixed deployments: join requests carrying
// a different version are refused.
const ProtocolVersion = 1

// CampaignSpec is the portable identity of a campaign: everything a worker
// needs to rebuild the coordinator's cluster and derive the identical plan
// list. Models and users are always the default registry/roster — the only
// configuration the CLIs produce — which keeps the spec a value type.
type CampaignSpec struct {
	Machine        topology.Config `json:"machine"`
	Net            netsim.Config   `json:"net"`
	Days           float64         `json:"days"`
	Seed           int64           `json:"seed"`
	MeanRunsPerDay float64         `json:"mean_runs_per_day"`
	CounterNoise   float64         `json:"counter_noise"`
	FaultSpec      string          `json:"fault_spec,omitempty"`
}

// SpecFromCluster derives the portable spec from a cluster config. It
// refuses configs with a custom model registry or user roster: those are
// in-process pointers a remote worker cannot reconstruct.
func SpecFromCluster(cfg cluster.Config) (CampaignSpec, error) {
	if cfg.Models != nil || cfg.Users != nil {
		return CampaignSpec{}, fmt.Errorf("dist: distributed campaigns support the default model registry and user roster only")
	}
	r := cfg.Resolved()
	return CampaignSpec{
		Machine:        r.Machine,
		Net:            r.Net,
		Days:           r.Days,
		Seed:           r.Seed,
		MeanRunsPerDay: r.MeanRunsPerDay,
		CounterNoise:   r.CounterNoise,
		FaultSpec:      r.FaultSpec,
	}, nil
}

// ClusterConfig rebuilds the cluster config a worker should simulate with.
func (s CampaignSpec) ClusterConfig() cluster.Config {
	return cluster.Config{
		Machine:        s.Machine,
		Net:            s.Net,
		Days:           s.Days,
		Seed:           s.Seed,
		MeanRunsPerDay: s.MeanRunsPerDay,
		CounterNoise:   s.CounterNoise,
		FaultSpec:      s.FaultSpec,
	}
}

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	ProtocolVersion int    `json:"protocol_version"`
	Name            string `json:"name,omitempty"` // informational (hostname, pid)
}

// JoinResponse hands the worker its identity and the campaign contract.
type JoinResponse struct {
	WorkerID         string       `json:"worker_id"`
	Spec             CampaignSpec `json:"spec"`
	PlanDigest       string       `json:"plan_digest"`
	NumUnits         int          `json:"num_units"`
	LeaseSeconds     float64      `json:"lease_seconds"`     // how long a granted lease lives
	HeartbeatSeconds float64      `json:"heartbeat_seconds"` // expected heartbeat cadence while holding a lease
	// Traceparent carries the coordinator's campaign span context (W3C
	// traceparent format) so the worker's session span joins the campaign
	// trace. Empty when the coordinator runs without telemetry; malformed
	// values make the worker start a fresh root (observation-only either
	// way — tracing never alters scheduling or results).
	Traceparent string `json:"traceparent,omitempty"`
}

// Lease statuses.
const (
	StatusLease = "lease" // a unit is attached; simulate it
	StatusWait  = "wait"  // nothing grantable right now; retry after RetryAfterSeconds
	StatusDone  = "done"  // the campaign is complete; exit cleanly
	StatusOK    = "ok"    // generic success
	StatusStale = "stale" // result for a unit no longer wanted; drop and move on
)

// LeaseRequest asks for the next work unit.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseResponse grants a unit (StatusLease), asks the worker to poll again
// later (StatusWait), or ends the session (StatusDone). Overrides is the
// accumulated requeue state of the campaign so far; the worker applies it
// before simulating (cluster.UnitSim.Apply is idempotent).
type LeaseResponse struct {
	Status            string                 `json:"status"`
	LeaseID           string                 `json:"lease_id,omitempty"`
	Unit              int                    `json:"unit"`
	Round             int                    `json:"round"`
	Attempt           int                    `json:"attempt,omitempty"` // 1-based dispatch count for this unit this round
	Overrides         []cluster.PlanOverride `json:"overrides,omitempty"`
	LeaseSeconds      float64                `json:"lease_seconds,omitempty"`
	RetryAfterSeconds float64                `json:"retry_after_seconds,omitempty"`
	// Traceparent carries the coordinator's per-lease dist/unit span
	// context; the worker parents its unit-execution span under it so the
	// stitched trace shows grant → simulate → deliver across processes.
	Traceparent string `json:"traceparent,omitempty"`
	// CampaignTraceparent carries the campaign span context on grants, so
	// a worker whose join raced ahead of the first round can still root
	// its session span under the campaign instead of starting a second
	// tree.
	CampaignTraceparent string `json:"campaign_traceparent,omitempty"`
}

// ResultRequest reports a unit outcome. RunGob carries the completed
// dataset.Run as gob bytes (base64 in JSON): gob is the repository's
// byte-exact float64 transport, and the run data contains NaN missing-value
// markers that JSON cannot carry. Error reports a non-drain simulation
// failure, which aborts the campaign (mirroring the in-process executor).
type ResultRequest struct {
	WorkerID string  `json:"worker_id"`
	LeaseID  string  `json:"lease_id"`
	Unit     int     `json:"unit"`
	Round    int     `json:"round"`
	Drained  bool    `json:"drained,omitempty"`
	DrainAt  float64 `json:"drain_at,omitempty"`
	RunGob   []byte  `json:"run_gob,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// ResultResponse acknowledges a result (StatusOK) or tells the worker the
// unit was no longer wanted (StatusStale — not an error; the unit was
// re-dispatched and answered by someone else, or the round moved on).
type ResultResponse struct {
	Status string `json:"status"`
}

// HeartbeatRequest is the periodic sign of life a worker sends while
// holding a lease (and while simulating a long unit in particular).
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id,omitempty"`
}

// HeartbeatResponse tells the worker whether the campaign still wants it.
type HeartbeatResponse struct {
	Status string `json:"status"` // StatusOK or StatusDone
}

// errorResponse is the JSON error body on non-2xx responses.
type errorResponse struct {
	Error string `json:"error"`
}

// EncodeRun serializes a completed run for the wire.
func EncodeRun(run *dataset.Run) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(run); err != nil {
		return nil, fmt.Errorf("dist: encode run: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRun deserializes and sanity-checks a wire run. The checks mirror
// dataset.Campaign.Validate at run granularity, so a truncated or corrupt
// payload is rejected here — and the unit re-dispatched — instead of
// poisoning the merged campaign.
func DecodeRun(blob []byte) (*dataset.Run, error) {
	var run dataset.Run
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&run); err != nil {
		return nil, fmt.Errorf("dist: decode run: %w", err)
	}
	t := len(run.StepTimes)
	if t == 0 {
		return nil, fmt.Errorf("dist: decoded run has no steps")
	}
	if len(run.Compute) != t || len(run.Counters) != t || len(run.IO) != t || len(run.Sys) != t {
		return nil, fmt.Errorf("dist: decoded run observation lengths disagree (times=%d compute=%d counters=%d io=%d sys=%d)",
			t, len(run.Compute), len(run.Counters), len(run.IO), len(run.Sys))
	}
	if run.Missing != nil && len(run.Missing) != t {
		return nil, fmt.Errorf("dist: decoded run missing-marker length %d != %d steps", len(run.Missing), t)
	}
	return &run, nil
}
