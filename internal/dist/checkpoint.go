package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"dragonvar/internal/cluster"
	"dragonvar/internal/telemetry"
)

// The checkpoint is the coordinator's crash armor: every completed unit
// outcome is appended to a spill file before it is surrendered to the
// campaign driver, so a coordinator killed mid-campaign resumes from where
// it died instead of re-running finished units — and, because unit results
// are deterministic, resumes byte-identically.
//
// Layout: a header frame identifying the campaign (plan digest + unit
// count), then one frame per completed unit outcome. Each frame is
//
//	uvarint payload length | crc32c(payload) | payload (self-contained gob)
//
// Appends are fsynced; a crash can only truncate or corrupt the tail, and
// the loader tolerates exactly that: it replays frames until the first
// damaged one, discards the rest, and the next Open heals the file by
// atomically rewriting the valid prefix (temp + rename, the modelstore
// pattern). A header mismatch — different campaign — is a hard error, not
// a silent restart.

// checkpointHeader is the first frame of every checkpoint file.
type checkpointHeader struct {
	Version    int
	PlanDigest string
	NumUnits   int
}

// checkpointRecord journals one completed unit outcome. The run travels as
// gob bytes (same encoding as the wire) so replay round-trips it exactly.
type checkpointRecord struct {
	Round   int
	Unit    int
	Drained bool
	DrainAt float64
	RunGob  []byte
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checkpoint is an append-only outcome journal. Not safe for concurrent
// use; the coordinator serializes access under its own lock.
type checkpoint struct {
	path string
	f    *os.File
	recs *telemetry.Counter
}

// openCheckpoint opens (or creates) the journal at path, validates its
// header against the campaign identity, and returns the replayable
// outcomes keyed by round then unit. A damaged tail is dropped and the
// file healed in place; a header for a different campaign is an error.
func openCheckpoint(path, planDigest string, numUnits int) (*checkpoint, map[int]map[int]cluster.UnitOutcome, error) {
	want := checkpointHeader{Version: 1, PlanDigest: planDigest, NumUnits: numUnits}
	replay := map[int]map[int]cluster.UnitOutcome{}

	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// fresh campaign: write the header below
		raw = nil
	case err != nil:
		return nil, nil, fmt.Errorf("dist: read checkpoint %s: %w", path, err)
	}

	var valid []byte // longest cleanly-framed prefix
	if len(raw) > 0 {
		frames, prefix := parseFrames(raw)
		valid = prefix
		if len(frames) == 0 {
			// header itself was damaged; treat as a fresh file
			valid = nil
		} else {
			var hdr checkpointHeader
			if err := gob.NewDecoder(bytes.NewReader(frames[0])).Decode(&hdr); err != nil {
				valid = nil
			} else if hdr != want {
				return nil, nil, fmt.Errorf("dist: checkpoint %s belongs to a different campaign (digest %.12s…, %d units; want %.12s…, %d units)",
					path, hdr.PlanDigest, hdr.NumUnits, want.PlanDigest, want.NumUnits)
			} else {
				for _, frame := range frames[1:] {
					var rec checkpointRecord
					if err := gob.NewDecoder(bytes.NewReader(frame)).Decode(&rec); err != nil {
						break // damaged record: drop it and everything after
					}
					out, err := rec.outcome()
					if err != nil {
						break
					}
					if rec.Unit < 0 || rec.Unit >= numUnits {
						break
					}
					if replay[rec.Round] == nil {
						replay[rec.Round] = map[int]cluster.UnitOutcome{}
					}
					replay[rec.Round][rec.Unit] = out
				}
			}
		}
	}

	if valid == nil {
		var buf bytes.Buffer
		if err := appendFrame(&buf, want); err != nil {
			return nil, nil, err
		}
		valid = buf.Bytes()
		replay = map[int]map[int]cluster.UnitOutcome{}
	}

	// heal: rewrite the valid prefix atomically, then reopen for append.
	// (Unconditional rewrite keeps the logic one path; checkpoints are
	// small — one frame per completed unit.)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return nil, nil, fmt.Errorf("dist: heal checkpoint %s: %w", path, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(valid); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return nil, nil, fmt.Errorf("dist: heal checkpoint %s: %w", path, err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: open checkpoint %s: %w", path, err)
	}
	return &checkpoint{
		path: path,
		f:    f,
		recs: telemetry.Active().Counter(telemetry.MDistCheckpointRecs),
	}, replay, nil
}

// outcome converts a journaled record back into a unit outcome.
func (rec checkpointRecord) outcome() (cluster.UnitOutcome, error) {
	if rec.Drained {
		return cluster.UnitOutcome{Drained: true, DrainAt: rec.DrainAt}, nil
	}
	run, err := DecodeRun(rec.RunGob)
	if err != nil {
		return cluster.UnitOutcome{}, err
	}
	return cluster.UnitOutcome{Run: run}, nil
}

// append journals one completed outcome and fsyncs before returning, so a
// record the driver has seen can never be lost to a crash.
func (cp *checkpoint) append(round, unit int, out cluster.UnitOutcome) error {
	rec := checkpointRecord{Round: round, Unit: unit, Drained: out.Drained, DrainAt: out.DrainAt}
	if !out.Drained {
		blob, err := EncodeRun(out.Run)
		if err != nil {
			return err
		}
		rec.RunGob = blob
	}
	var buf bytes.Buffer
	if err := appendFrame(&buf, rec); err != nil {
		return err
	}
	if _, err := cp.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("dist: append checkpoint: %w", err)
	}
	if err := cp.f.Sync(); err != nil {
		return fmt.Errorf("dist: sync checkpoint: %w", err)
	}
	cp.recs.Add(1)
	return nil
}

// close closes the journal, keeping the file for a future resume.
func (cp *checkpoint) close() error { return cp.f.Close() }

// remove closes and deletes the journal — called when the campaign
// completes and the spill file has served its purpose.
func (cp *checkpoint) remove() error {
	cp.f.Close()
	if err := os.Remove(cp.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// appendFrame gob-encodes v as a self-contained payload and writes the
// framed form (uvarint length, crc32c, payload) to buf.
func appendFrame(buf *bytes.Buffer, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("dist: encode checkpoint frame: %w", err)
	}
	var lenb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenb[:], uint64(payload.Len()))
	buf.Write(lenb[:n])
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(crcb[:])
	buf.Write(payload.Bytes())
	return nil
}

// parseFrames splits raw into whole, checksum-valid frames, returning the
// payloads and the byte prefix they occupy. A truncated or corrupt tail
// simply ends the parse — that is the crash case the format exists for.
func parseFrames(raw []byte) (frames [][]byte, prefix []byte) {
	off := 0
	for off < len(raw) {
		plen, n := binary.Uvarint(raw[off:])
		if n <= 0 || plen > uint64(len(raw)-off-n) || len(raw)-off-n < 4 {
			break
		}
		body := raw[off+n:]
		if uint64(len(body)-4) < plen {
			break
		}
		crc := binary.LittleEndian.Uint32(body[:4])
		payload := body[4 : 4+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		frames = append(frames, payload)
		off += n + 4 + int(plen)
	}
	return frames, raw[:off]
}
