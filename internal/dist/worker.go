package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/engine"
	"dragonvar/internal/telemetry"
)

// WorkerConfig parameterizes a worker process.
type WorkerConfig struct {
	// Coord is the coordinator base URL, e.g. "http://127.0.0.1:9631".
	Coord string

	// Name is an informational label sent at join (hostname, pid).
	Name string

	// Log receives human-oriented progress lines; nil discards them.
	Log io.Writer

	// afterLease, when set (tests only), runs after a lease is granted
	// and before the unit simulates — the seam chaos tests use to hang or
	// kill a worker while it provably holds a lease.
	afterLease func(unit, round int)
}

// Worker joins a coordinator, leases units, simulates them on a local
// deterministically re-derived plan list, and reports outcomes.
type Worker struct {
	cfg    WorkerConfig
	client *client
	log    io.Writer

	id   string
	join JoinResponse
	sim  *cluster.UnitSim

	// session is the worker's dist/worker span, rooted under the campaign
	// trace via the traceparent handed back at join or with the first
	// lease (nil when telemetry is off). sessionCtx carries it so lease
	// RPCs propagate the session's identity to the coordinator.
	session    *telemetry.Span
	sessionCtx context.Context
}

// NewWorker validates the config; the coordinator is first contacted in
// Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coord == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	log := cfg.Log
	if log == nil {
		log = io.Discard
	}
	return &Worker{cfg: cfg, client: newClient(cfg.Coord, 8), log: log}, nil
}

// Run executes the worker loop until the campaign completes or ctx is
// cancelled. Cancellation means graceful drain: the in-flight unit is
// finished and its result delivered (with retries, on a fresh context),
// but no new lease is taken. Transient coordinator failures are retried
// with capped exponential backoff and jitter; a coordinator that forgot
// this worker (restart) is rejoined transparently.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.joinAndPrepare(ctx); err != nil {
		return err
	}
	defer w.endSession()
	if w.join.Traceparent != "" {
		w.startSession(w.join.Traceparent)
	}
	units := 0
	for {
		if ctx.Err() != nil {
			fmt.Fprintf(w.log, "dist: worker %s draining after %d units\n", w.id, units)
			return nil
		}
		var lease LeaseResponse
		err := w.client.post(w.withSession(ctx), "/v1/lease", LeaseRequest{WorkerID: w.id}, &lease)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(w.log, "dist: worker %s draining after %d units\n", w.id, units)
				return nil
			}
			var he *HTTPError
			if errors.As(err, &he) && he.Status == http.StatusNotFound {
				// coordinator restarted and forgot us: rejoin
				if err := w.rejoin(ctx); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("dist: lease: %w", err)
		}
		switch lease.Status {
		case StatusDone:
			fmt.Fprintf(w.log, "dist: worker %s done after %d units\n", w.id, units)
			return nil
		case StatusWait:
			d := time.Duration(lease.RetryAfterSeconds * float64(time.Second))
			if d <= 0 {
				d = 500 * time.Millisecond
			}
			if engine.SleepFor(ctx, d) != nil {
				continue // top of loop handles the drain message
			}
			continue
		case StatusLease:
			if err := w.execute(ctx, lease); err != nil {
				return err
			}
			units++
		default:
			return fmt.Errorf("dist: lease: unknown status %q", lease.Status)
		}
	}
}

// joinAndPrepare registers with the coordinator and builds the local
// simulation state, verifying both processes derived the same plan list.
func (w *Worker) joinAndPrepare(ctx context.Context) error {
	var join JoinResponse
	err := w.client.post(ctx, "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion, Name: w.cfg.Name}, &join)
	if err != nil {
		return fmt.Errorf("dist: join: %w", err)
	}
	sim, err := cluster.NewUnitSim(join.Spec.ClusterConfig())
	if err != nil {
		return fmt.Errorf("dist: build simulation from spec: %w", err)
	}
	if sim.PlanDigest() != join.PlanDigest {
		return fmt.Errorf("dist: plan digest mismatch: coordinator %.12s…, worker %.12s… (differing binaries or configs)",
			join.PlanDigest, sim.PlanDigest())
	}
	if sim.NumUnits() != join.NumUnits {
		return fmt.Errorf("dist: unit count mismatch: coordinator %d, worker %d", join.NumUnits, sim.NumUnits())
	}
	w.id, w.join, w.sim = join.WorkerID, join, sim
	fmt.Fprintf(w.log, "dist: joined %s as %s: %d units, plan %.12s…\n", w.cfg.Coord, w.id, join.NumUnits, join.PlanDigest)
	return nil
}

// startSession opens the worker's dist/worker session span, parented into
// the campaign trace when tp parses and as a fresh root otherwise (the
// malformed-header fallback). Idempotent; no-op when telemetry is off.
func (w *Worker) startSession(tp string) {
	if w.session != nil || !telemetry.Enabled() {
		return
	}
	ctx := context.Background()
	if sc, err := telemetry.ParseTraceparent(tp); err == nil {
		ctx = telemetry.ContextWithRemote(ctx, sc)
	}
	sctx, sp := telemetry.Start(ctx, telemetry.SpanDistWorker)
	if sp == nil {
		return
	}
	sp.SetAttr("worker", w.id)
	if w.cfg.Name != "" {
		sp.SetAttr("name", w.cfg.Name)
	}
	w.session, w.sessionCtx = sp, sctx
}

// withSession grafts the session span's identity onto ctx so RPCs made
// under it carry a traceparent header. Returns ctx unchanged before the
// session starts.
func (w *Worker) withSession(ctx context.Context) context.Context {
	if w.sessionCtx == nil {
		return ctx
	}
	return telemetry.WithSpanFrom(ctx, w.sessionCtx)
}

// endSession closes the session span (nil-safe).
func (w *Worker) endSession() {
	w.session.End()
}

// rejoin re-registers after a coordinator restart, keeping the existing
// simulation state (the digest check guards against a different campaign).
func (w *Worker) rejoin(ctx context.Context) error {
	var join JoinResponse
	if err := w.client.post(ctx, "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion, Name: w.cfg.Name}, &join); err != nil {
		return fmt.Errorf("dist: rejoin: %w", err)
	}
	if join.PlanDigest != w.join.PlanDigest {
		return fmt.Errorf("dist: rejoin: coordinator now runs a different campaign (plan %.12s…, had %.12s…)",
			join.PlanDigest, w.join.PlanDigest)
	}
	w.id, w.join = join.WorkerID, join
	fmt.Fprintf(w.log, "dist: rejoined as %s\n", w.id)
	return nil
}

// execute simulates one leased unit and delivers its outcome. The unit is
// finished and reported even when ctx is cancelled mid-simulation — that
// is the graceful-drain contract — so result delivery runs on a fresh
// context with its own timeout.
func (w *Worker) execute(ctx context.Context, lease LeaseResponse) error {
	if w.cfg.afterLease != nil {
		w.cfg.afterLease(lease.Unit, lease.Round)
	}
	// a worker that joined before the first round roots its session span
	// off the campaign traceparent delivered with the grant
	w.startSession(lease.CampaignTraceparent)
	// the unit's spans parent to the coordinator's dist/unit lease span;
	// a missing or malformed traceparent degrades to a local root
	execCtx := context.Background()
	if sc, perr := telemetry.ParseTraceparent(lease.Traceparent); perr == nil {
		execCtx = telemetry.ContextWithRemote(execCtx, sc)
	}
	execCtx, execSpan := telemetry.Start(execCtx, telemetry.SpanDistUnitExec)
	execSpan.SetAttr("worker", w.id)
	execSpan.SetAttr("unit", fmt.Sprint(lease.Unit))
	execSpan.SetAttr("round", fmt.Sprint(lease.Round))
	execSpan.SetAttr("attempt", fmt.Sprint(lease.Attempt))
	defer execSpan.End()
	// heartbeat while the (possibly long) simulation runs, so the
	// coordinator can tell "slow" from "dead"
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		interval := time.Duration(w.join.HeartbeatSeconds * float64(time.Second))
		if interval <= 0 {
			interval = 5 * time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
				hbCtx, cancel := context.WithTimeout(context.Background(), interval)
				w.client.once(hbCtx, "/v1/heartbeat", mustJSON(HeartbeatRequest{WorkerID: w.id, LeaseID: lease.LeaseID}), nil)
				cancel()
			}
		}
	}()

	res := ResultRequest{WorkerID: w.id, LeaseID: lease.LeaseID, Unit: lease.Unit, Round: lease.Round}
	_, simSpan := telemetry.Start(execCtx, telemetry.SpanDistSimulate)
	err := w.sim.Apply(lease.Overrides)
	if err == nil {
		var out cluster.UnitOutcome
		out, err = w.sim.Simulate(lease.Unit)
		if err == nil {
			if out.Drained {
				res.Drained = true
				res.DrainAt = out.DrainAt
			} else {
				res.RunGob, err = EncodeRun(out.Run)
			}
		}
	}
	simSpan.End()
	if err != nil {
		// report the failure so the coordinator can abort loudly instead
		// of waiting out the lease
		res.Error = err.Error()
	}
	close(hbStop)
	hbWG.Wait()

	deliverCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// the deliver span parents to the unit-exec span but rides the fresh
	// delivery context, covering the RPC including its retries
	dctx, deliverSpan := telemetry.Start(execCtx, telemetry.SpanDistDeliver)
	deliverCtx = telemetry.WithSpanFrom(deliverCtx, dctx)
	var ack ResultResponse
	derr := w.client.post(deliverCtx, "/v1/result", res, &ack)
	deliverSpan.End()
	if derr != nil {
		var he *HTTPError
		if errors.As(derr, &he) && he.Status == http.StatusNotFound {
			return nil // coordinator restarted; next lease rejoins
		}
		return fmt.Errorf("dist: deliver unit %d: %w", lease.Unit, derr)
	}
	if ack.Status == StatusStale {
		fmt.Fprintf(w.log, "dist: unit %d result was stale (re-dispatched elsewhere)\n", lease.Unit)
	}
	if err != nil {
		return fmt.Errorf("dist: unit %d: %w", lease.Unit, err)
	}
	return nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // the protocol types always marshal
	}
	return b
}
