package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/netsim"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// testConfig is a small default-registry campaign (the spec cannot carry a
// custom model registry): ~15 units, under a second on a few cores.
func testConfig(seed int64) cluster.Config {
	return cluster.Config{
		Machine:        topology.Small(),
		Net:            netsim.DefaultConfig(),
		Days:           4,
		Seed:           seed,
		MeanRunsPerDay: 2,
	}
}

// faultedTestConfig adds faults so runs drain mid-campaign and requeue —
// exercising the override path that ships plan mutations to workers.
func faultedTestConfig(t *testing.T, seed int64) cluster.Config {
	t.Helper()
	cfg := testConfig(seed)
	topo, err := topology.New(cfg.Machine)
	if err != nil {
		t.Fatal(err)
	}
	clauses := []string{"links=2", "degraded=3", "dropout@86400-172800"}
	for r := 0; r < topo.Cfg.NumRouters(); r++ {
		clauses = append(clauses, "drain:"+strconv.Itoa(r)+"@216000-237600")
	}
	cfg.FaultSpec = strings.Join(clauses, ",")
	return cfg
}

func campaignHash(t *testing.T, camp *dataset.Campaign) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(camp); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

func serialHash(t *testing.T, cfg cluster.Config) [32]byte {
	t.Helper()
	cfg.Workers = 1
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := c.RunCampaignCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return campaignHash(t, camp)
}

// startWorker runs a worker against the coordinator in a goroutine and
// returns a channel with its terminal error.
func startWorker(ctx context.Context, t *testing.T, coordAddr, name string, hook func(unit, round int)) chan error {
	t.Helper()
	w, err := NewWorker(WorkerConfig{Coord: "http://" + coordAddr, Name: name, afterLease: hook})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return done
}

func TestSpecRejectsCustomModels(t *testing.T) {
	cfg := testConfig(1)
	amg := *apps.Find(apps.AMG, 128)
	cfg.Models = []*apps.Model{&amg}
	if _, err := SpecFromCluster(cfg); err == nil {
		t.Fatal("spec accepted a custom model registry")
	}
	if _, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0"}); err == nil {
		t.Fatal("coordinator accepted a custom model registry")
	}
}

func TestSpecRoundTripsPlanDigest(t *testing.T) {
	cfg := faultedTestConfig(t, 11)
	spec, err := SpecFromCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, digest, err := c.PlanInfo()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cluster.NewUnitSim(spec.ClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sim.PlanDigest() != digest || sim.NumUnits() != n {
		t.Fatalf("worker derived (%d units, %.12s), coordinator (%d units, %.12s)",
			sim.NumUnits(), sim.PlanDigest(), n, digest)
	}
}

func TestDecodeRunRejectsDamage(t *testing.T) {
	if _, err := DecodeRun([]byte("garbage")); err == nil {
		t.Fatal("garbage decoded")
	}
	// a run missing its counter observations must fail the sanity check
	// (full round-trips of real runs are covered by the integration tests)
	run := &dataset.Run{Dataset: "x", StepTimes: []float64{1, 2}, Compute: []float64{0.5, 0.6}}
	blob, err := EncodeRun(run)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRun(blob); err == nil {
		t.Fatal("run with missing observations passed validation")
	}
}

// TestDistributedMatchesSerial is the core contract: a faulted campaign
// executed by a coordinator and two worker loops is byte-identical to the
// serial in-process campaign.
func TestDistributedMatchesSerial(t *testing.T) {
	cfg := faultedTestConfig(t, 41)
	serial := serialHash(t, cfg)

	co, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w1 := startWorker(ctx, t, co.Addr(), "w1", nil)
	w2 := startWorker(ctx, t, co.Addr(), "w2", nil)
	camp, err := co.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := camp.Validate(); err != nil {
		t.Fatalf("distributed campaign invalid: %v", err)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("distributed campaign differs from serial campaign")
	}
	for i, done := range []chan error{w1, w2} {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d: %v", i+1, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("worker %d did not exit", i+1)
		}
	}
}

// TestLeaseExpiryRedispatch wedges a fake worker on a lease it never
// serves; the short lease expires and the unit is re-dispatched to a real
// worker, still yielding the serial bytes.
func TestLeaseExpiryRedispatch(t *testing.T) {
	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()

	cfg := testConfig(43)
	serial := serialHash(t, cfg)

	co, err := NewCoordinator(Config{
		Cluster: cfg, Addr: "127.0.0.1:0",
		Lease: 300 * time.Millisecond, Heartbeat: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	campDone := make(chan struct{})
	var camp *dataset.Campaign
	var runErr error
	go func() { camp, runErr = co.Run(context.Background()); close(campDone) }()

	// the wedged worker: joins, takes one lease, heartbeats forever
	// (alive but hung — only lease expiry can recover the unit)
	cl := newClient("http://"+co.Addr(), 4)
	var join JoinResponse
	if err := cl.post(context.Background(), "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion, Name: "wedged"}, &join); err != nil {
		t.Fatal(err)
	}
	var lease LeaseResponse
	for {
		if err := cl.post(context.Background(), "/v1/lease", LeaseRequest{WorkerID: join.WorkerID}, &lease); err != nil {
			t.Fatal(err)
		}
		if lease.Status == StatusLease {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	go func() {
		tk := time.NewTicker(50 * time.Millisecond)
		defer tk.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tk.C:
				cl.post(hbCtx, "/v1/heartbeat", HeartbeatRequest{WorkerID: join.WorkerID}, nil)
			}
		}
	}()

	// real worker finishes the campaign, including the wedged unit
	w := startWorker(context.Background(), t, co.Addr(), "real", nil)
	<-campDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("campaign with an expired lease differs from serial")
	}
	if err := <-w; err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Counters[telemetry.MDistLeaseExpired] == 0 {
		t.Error("no lease expiry recorded")
	}
	if snap.Counters[telemetry.MDistLeaseRedispatch] == 0 {
		t.Error("no re-dispatch recorded")
	}
}

// TestMalformedResultRedispatch posts garbage for a leased unit: the
// coordinator must reject it, requeue the unit, and the campaign must
// still finish byte-identical.
func TestMalformedResultRedispatch(t *testing.T) {
	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()

	cfg := testConfig(47)
	serial := serialHash(t, cfg)

	co, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	campDone := make(chan struct{})
	var camp *dataset.Campaign
	var runErr error
	go func() { camp, runErr = co.Run(context.Background()); close(campDone) }()

	cl := newClient("http://"+co.Addr(), 4)
	var join JoinResponse
	if err := cl.post(context.Background(), "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion, Name: "corrupt"}, &join); err != nil {
		t.Fatal(err)
	}
	var lease LeaseResponse
	for {
		if err := cl.post(context.Background(), "/v1/lease", LeaseRequest{WorkerID: join.WorkerID}, &lease); err != nil {
			t.Fatal(err)
		}
		if lease.Status == StatusLease {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	err = cl.post(context.Background(), "/v1/result", ResultRequest{
		WorkerID: join.WorkerID, LeaseID: lease.LeaseID,
		Unit: lease.Unit, Round: lease.Round, RunGob: []byte("not a gob"),
	}, nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("malformed result: got %v, want HTTP 400", err)
	}

	w := startWorker(context.Background(), t, co.Addr(), "real", nil)
	<-campDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("campaign with a malformed result differs from serial")
	}
	if err := <-w; err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Counters[telemetry.MDistResultsMalformed] == 0 {
		t.Error("no malformed result recorded")
	}
	if snap.Counters[telemetry.MDistLeaseRedispatch] == 0 {
		t.Error("malformed result did not re-dispatch the unit")
	}
}

// TestWorkerDeathRequeues has a worker take a lease and go silent: missed
// heartbeats must declare it dead and requeue its unit well before the
// (long) lease deadline.
func TestWorkerDeathRequeues(t *testing.T) {
	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()

	cfg := testConfig(53)
	serial := serialHash(t, cfg)

	co, err := NewCoordinator(Config{
		Cluster: cfg, Addr: "127.0.0.1:0",
		Lease: time.Hour, Heartbeat: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	campDone := make(chan struct{})
	var camp *dataset.Campaign
	var runErr error
	start := time.Now()
	go func() { camp, runErr = co.Run(context.Background()); close(campDone) }()

	cl := newClient("http://"+co.Addr(), 4)
	var join JoinResponse
	if err := cl.post(context.Background(), "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion, Name: "doomed"}, &join); err != nil {
		t.Fatal(err)
	}
	var lease LeaseResponse
	for {
		if err := cl.post(context.Background(), "/v1/lease", LeaseRequest{WorkerID: join.WorkerID}, &lease); err != nil {
			t.Fatal(err)
		}
		if lease.Status == StatusLease {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// ... and never speak again

	w := startWorker(context.Background(), t, co.Addr(), "real", nil)
	<-campDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("campaign took %v; death detection did not beat the 1h lease", elapsed)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("campaign with a dead worker differs from serial")
	}
	if err := <-w; err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Counters[telemetry.MDistWorkerDeaths] == 0 {
		t.Error("no worker death recorded")
	}
	if snap.Counters[telemetry.MDistLeaseRedispatch] == 0 {
		t.Error("dead worker's unit was not re-dispatched")
	}
}

// TestMaxAttemptsAborts: a unit that burns its lease budget without ever
// completing must abort the campaign loudly instead of re-dispatching
// forever.
func TestMaxAttemptsAborts(t *testing.T) {
	cfg := testConfig(71)
	co, err := NewCoordinator(Config{
		Cluster: cfg, Addr: "127.0.0.1:0",
		Lease: 100 * time.Millisecond, MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	campDone := make(chan error, 1)
	go func() { _, err := co.Run(context.Background()); campDone <- err }()

	// the only worker keeps taking leases and never serves one; its lease
	// polls keep it alive, so only the attempt cap can end the campaign
	cl := newClient("http://"+co.Addr(), 4)
	var join JoinResponse
	if err := cl.post(context.Background(), "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion, Name: "wedged"}, &join); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			var lease LeaseResponse
			if err := cl.post(context.Background(), "/v1/lease", LeaseRequest{WorkerID: join.WorkerID}, &lease); err != nil || lease.Status == StatusDone {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	select {
	case err := <-campDone:
		if err == nil || !strings.Contains(err.Error(), "giving up") {
			t.Fatalf("campaign ended with %v, want a max-attempts abort", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not abort on exhausted attempts")
	}
}

// TestCoordinatorResume cancels a coordinator mid-campaign and restarts it
// from the checkpoint: completed units replay instead of re-running, and
// the final campaign is byte-identical to serial.
func TestCoordinatorResume(t *testing.T) {
	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()

	cfg := faultedTestConfig(t, 59)
	serial := serialHash(t, cfg)
	cpPath := filepath.Join(t.TempDir(), "campaign.ckpt")

	co1, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0", CheckpointPath: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	campDone := make(chan error, 1)
	go func() { _, err := co1.Run(ctx1); campDone <- err }()

	// a throttled worker: cancel the coordinator after its third unit so
	// the checkpoint holds a strict subset of the campaign
	var mu sync.Mutex
	unitsDone := 0
	hook := func(_, _ int) {
		mu.Lock()
		unitsDone++
		n := unitsDone
		mu.Unlock()
		if n == 4 {
			cancel1()
		}
	}
	wCtx, wCancel := context.WithCancel(context.Background())
	startWorker(wCtx, t, co1.Addr(), "w1", hook) // its terminal error is irrelevant: the coordinator dies under it
	if err := <-campDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled coordinator returned %v", err)
	}
	wCancel()
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("checkpoint not kept after cancel: %v", err)
	}

	// scar the tail: simulate a crash mid-append; the loader must drop
	// the damaged record and keep the valid prefix
	raw, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cpPath, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	co2, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0", CheckpointPath: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	w2 := startWorker(context.Background(), t, co2.Addr(), "w2", nil)
	camp, err := co2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("resumed campaign differs from serial")
	}
	if err := <-w2; err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if snap.Counters[telemetry.MDistResumedUnits] == 0 {
		t.Error("no units resumed from checkpoint")
	}
	if _, err := os.Stat(cpPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not removed after success: %v", err)
	}
}

// TestCheckpointRejectsOtherCampaign: resuming with a different config
// must fail loudly, not silently merge two campaigns.
func TestCheckpointRejectsOtherCampaign(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "c.ckpt")
	cp, _, err := openCheckpoint(cpPath, "digest-a", 10)
	if err != nil {
		t.Fatal(err)
	}
	cp.close()
	if _, _, err := openCheckpoint(cpPath, "digest-b", 10); err == nil {
		t.Fatal("checkpoint for a different digest accepted")
	}
	if _, _, err := openCheckpoint(cpPath, "digest-a", 11); err == nil {
		t.Fatal("checkpoint for a different unit count accepted")
	}
	if _, _, err := openCheckpoint(cpPath, "digest-a", 10); err != nil {
		t.Fatalf("matching reopen failed: %v", err)
	}
}

// TestCheckpointReplayRoundTrip exercises append/replay including drained
// outcomes and tail healing at every truncation point.
func TestCheckpointReplayRoundTrip(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "c.ckpt")
	cp, replay, err := openCheckpoint(cpPath, "d", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh checkpoint replays %d rounds", len(replay))
	}
	if err := cp.append(1, 2, cluster.UnitOutcome{Drained: true, DrainAt: 123.5}); err != nil {
		t.Fatal(err)
	}
	if err := cp.append(2, 0, cluster.UnitOutcome{Drained: true, DrainAt: 9}); err != nil {
		t.Fatal(err)
	}
	cp.close()

	_, replay, err = openCheckpoint(cpPath, "d", 5)
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := replay[1][2]; !ok || !out.Drained || out.DrainAt != 123.5 {
		t.Fatalf("replay[1][2] = %+v, %v", replay[1][2], ok)
	}
	if out, ok := replay[2][0]; !ok || out.DrainAt != 9 {
		t.Fatalf("replay[2][0] = %+v, %v", out, ok)
	}

	// every truncation of the file must load without error and replay a
	// prefix of the records
	full, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		p := filepath.Join(t.TempDir(), fmt.Sprintf("cut%d.ckpt", cut))
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cp, replay, err := openCheckpoint(p, "d", 5)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		// healing must leave a file a follow-up open fully accepts
		if err := cp.append(3, 3, cluster.UnitOutcome{Drained: true, DrainAt: 1}); err != nil {
			t.Fatalf("cut=%d append: %v", cut, err)
		}
		cp.close()
		_, replay2, err := openCheckpoint(p, "d", 5)
		if err != nil {
			t.Fatalf("cut=%d reopen: %v", cut, err)
		}
		if out, ok := replay2[3][3]; !ok || out.DrainAt != 1 {
			t.Fatalf("cut=%d: healed file lost the appended record", cut)
		}
		if len(replay2) < len(replay) {
			t.Fatalf("cut=%d: reopen lost records the heal kept", cut)
		}
	}
}

// TestClientHonorsRetryAfter: a 429 with Retry-After must delay at least
// that long before the retry, and transient errors must be retried while
// contract errors must not.
func TestClientHonorsRetryAfter(t *testing.T) {
	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()

	var mu sync.Mutex
	calls := 0
	var gap time.Duration
	var last time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		now := time.Now()
		if calls == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		gap = now.Sub(last)
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	cl := newClient(srv.URL, 4)
	var resp ResultResponse
	if err := cl.post(context.Background(), "/v1/result", ResultRequest{}, &resp); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if gap < time.Second {
		t.Fatalf("retry after %v, want >= 1s (Retry-After honored)", gap)
	}
	if r.Snapshot().Counters[telemetry.MDistClientRetries] == 0 {
		t.Error("client retry not recorded")
	}
}

func TestClientDoesNotRetryContractErrors(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown worker"}`)
	}))
	defer srv.Close()

	cl := newClient(srv.URL, 4)
	err := cl.post(context.Background(), "/v1/lease", LeaseRequest{}, nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusNotFound {
		t.Fatalf("got %v, want HTTP 404", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("404 was retried (%d calls)", calls)
	}
}

func TestClientRetriesServerFaults(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		n := calls
		calls++
		mu.Unlock()
		if n < 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer srv.Close()

	cl := newClient(srv.URL, 4)
	cl.backoff.Base = time.Millisecond
	cl.backoff.Jitter = 0
	if err := cl.post(context.Background(), "/v1/result", ResultRequest{}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestProtocolVersionMismatchRejected(t *testing.T) {
	cfg := testConfig(61)
	co, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srvDone := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { co.Run(ctx); close(srvDone) }()
	defer func() { cancel(); <-srvDone }()

	cl := newClient("http://"+co.Addr(), 0)
	err = cl.post(context.Background(), "/v1/join", JoinRequest{ProtocolVersion: ProtocolVersion + 1}, nil)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("got %v, want HTTP 400", err)
	}
}
