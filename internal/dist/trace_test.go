package dist

import (
	"context"
	"testing"
	"time"

	"dragonvar/internal/telemetry"
)

// TestDistributedTracedMatchesSerialUntraced extends the byte-identity
// contract to distributed tracing: a distributed, faulted campaign run with
// tracing enabled must hash identically to a serial run with telemetry off
// entirely — span IDs, traceparent propagation, and per-lease spans are
// observation-only. It then checks the recorded spans actually form the
// cross-process tree the stitcher expects: campaign → round → unit →
// unit_exec → {simulate, deliver → rpc/result}, with worker/attempt attrs.
func TestDistributedTracedMatchesSerialUntraced(t *testing.T) {
	cfg := faultedTestConfig(t, 61)
	telemetry.Disable()
	serial := serialHash(t, cfg)

	reg := telemetry.New()
	reg.SetRole("coordinator")
	telemetry.Enable(reg)
	defer telemetry.Disable()

	co, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0", Heartbeat: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w1 := startWorker(ctx, t, co.Addr(), "t1", nil)
	w2 := startWorker(ctx, t, co.Addr(), "t2", nil)
	camp, err := co.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("traced distributed campaign hash differs from untraced serial run")
	}
	if err := <-w1; err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if err := <-w2; err != nil {
		t.Fatalf("worker 2: %v", err)
	}

	// both "processes" share this registry in-process, so the whole tree
	// is in one snapshot; index spans by name
	snap := reg.Snapshot()
	byName := map[string][]telemetry.SpanRecord{}
	ids := map[string]telemetry.SpanRecord{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		ids[sp.SpanID] = sp
	}
	if n := len(byName[telemetry.SpanCampaign]); n != 1 {
		t.Fatalf("campaign spans: %d, want 1", n)
	}
	campaign := byName[telemetry.SpanCampaign][0]
	for _, names := range [][2]string{
		{telemetry.SpanCampaignRound, telemetry.SpanCampaign},
		{telemetry.SpanDistWorker, telemetry.SpanCampaign},
		{telemetry.SpanDistUnit, telemetry.SpanCampaignRound},
		{telemetry.SpanDistUnitExec, telemetry.SpanDistUnit},
		{telemetry.SpanDistSimulate, telemetry.SpanDistUnitExec},
		{telemetry.SpanDistDeliver, telemetry.SpanDistUnitExec},
		{telemetry.SpanDistRPCPrefix + "result", telemetry.SpanDistDeliver},
	} {
		child, parent := names[0], names[1]
		if len(byName[child]) == 0 {
			t.Errorf("no %s spans recorded", child)
			continue
		}
		for _, sp := range byName[child] {
			if sp.TraceID != campaign.TraceID {
				t.Errorf("%s span not in the campaign trace: %s != %s", child, sp.TraceID, campaign.TraceID)
			}
			p, ok := ids[sp.ParentSpanID]
			if !ok {
				t.Errorf("%s span has unknown parent %q", child, sp.ParentSpanID)
				continue
			}
			if p.Name != parent {
				t.Errorf("%s span parented to %s, want %s", child, p.Name, parent)
			}
		}
	}
	// per-unit worker/attempt attribution on both sides of the wire
	for _, name := range []string{telemetry.SpanDistUnit, telemetry.SpanDistUnitExec} {
		for _, sp := range byName[name] {
			for _, key := range []string{"unit", "worker", "attempt", "round"} {
				if sp.Attrs[key] == "" {
					t.Errorf("%s span missing attr %q: %v", name, key, sp.Attrs)
				}
			}
		}
	}
	// every lease span closed with an outcome
	for _, sp := range byName[telemetry.SpanDistUnit] {
		if sp.Attrs["outcome"] == "" {
			t.Errorf("dist/unit span without outcome: %v", sp.Attrs)
		}
	}
}

// TestLeaseCarriesTraceparent pins the wire contract: grants carry both the
// per-lease and the campaign traceparent when the coordinator is traced,
// and none when telemetry is off.
func TestLeaseCarriesTraceparent(t *testing.T) {
	telemetry.Enable(telemetry.New())
	defer telemetry.Disable()
	cfg := testConfig(83)
	serial := serialHash(t, cfg)
	co, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	var sawLease, sawCamp bool
	w, err := NewWorker(WorkerConfig{Coord: "http://" + co.Addr(), Name: "tp"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// drive the protocol by hand for the first lease, then run normally
		ctx := context.Background()
		if err := w.joinAndPrepare(ctx); err != nil {
			done <- err
			return
		}
		for {
			var lease LeaseResponse
			if err := w.client.post(ctx, "/v1/lease", LeaseRequest{WorkerID: w.id}, &lease); err != nil {
				done <- err
				return
			}
			switch lease.Status {
			case StatusDone:
				done <- nil
				return
			case StatusWait:
				time.Sleep(50 * time.Millisecond)
			case StatusLease:
				if lease.Traceparent != "" {
					if _, err := telemetry.ParseTraceparent(lease.Traceparent); err != nil {
						done <- err
						return
					}
					sawLease = true
				}
				if lease.CampaignTraceparent != "" {
					if _, err := telemetry.ParseTraceparent(lease.CampaignTraceparent); err != nil {
						done <- err
						return
					}
					sawCamp = true
				}
				if err := w.execute(ctx, lease); err != nil {
					done <- err
					return
				}
			}
		}
	}()
	camp, err := co.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !sawLease || !sawCamp {
		t.Fatalf("traced coordinator sent traceparents lease=%v campaign=%v, want both", sawLease, sawCamp)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("campaign hash drifted under traceparent propagation")
	}
}
