package dist

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/engine"
	"dragonvar/internal/telemetry"
)

// Config parameterizes a coordinator. The zero value of every optional
// field gets a sensible default.
type Config struct {
	// Cluster is the campaign to run. Custom model registries or user
	// rosters are rejected (they cannot travel to remote workers);
	// Progress, if set, stays local and works as in RunCampaignCtx.
	Cluster cluster.Config

	// Addr is the listen address, e.g. ":9631" or "127.0.0.1:0".
	Addr string

	// CheckpointPath, when non-empty, enables crash recovery: completed
	// unit outcomes are spilled there (append-only, fsynced) and replayed
	// by a restarted coordinator. Removed automatically on campaign
	// success.
	CheckpointPath string

	// Lease is how long a worker holds a unit before the coordinator
	// re-dispatches it (default 2m). Heartbeats do NOT extend leases —
	// the deadline is absolute, so a hung worker that dutifully
	// heartbeats cannot stall the campaign.
	Lease time.Duration

	// Heartbeat is the cadence workers are told to report at; a worker
	// silent for 3 heartbeat intervals (plus slack) is declared dead and
	// its lease re-queued immediately (default 5s).
	Heartbeat time.Duration

	// MaxAttempts caps dispatches per unit; a unit that cannot complete
	// in MaxAttempts leases aborts the campaign (default 8).
	MaxAttempts int

	// Grace is how long the coordinator keeps answering requests after
	// the campaign completes, so workers hear StatusDone and exit
	// cleanly instead of logging connection errors (default 2s).
	Grace time.Duration

	// Log receives human-oriented progress lines; nil discards them.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 2 * time.Minute
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.Grace < 0 {
		c.Grace = 0
	} else if c.Grace == 0 {
		c.Grace = 2 * time.Second
	}
	if c.Log == nil {
		c.Log = io.Discard
	}
	return c
}

// unitState tracks one pending unit of the current round.
type unitState struct {
	k         int // index into the round's pending slice
	leased    bool
	leaseID   string
	worker    string
	deadline  time.Time // absolute; expiry re-dispatches
	notBefore time.Time // re-dispatch backoff gate
	attempts  int       // leases granted for this unit this round
	done      bool
	out       cluster.UnitOutcome
	// span covers the current lease, grant → result/requeue, as a child of
	// the round span (nil when telemetry is off). Its context rides to the
	// worker in LeaseResponse.Traceparent; its outcome attr records how the
	// lease ended (ok, drained, error, lease expired, worker died, …).
	span *telemetry.Span
}

// endLeaseSpanLocked closes the unit's current lease span with an outcome
// attribute. Nil-safe; caller holds co.mu.
func (st *unitState) endLeaseSpanLocked(outcome string) {
	if st.span == nil {
		return
	}
	st.span.SetAttr("outcome", outcome)
	st.span.End()
	st.span = nil
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	name     string
	lastSeen time.Time
	units    int // outcomes accepted from this worker
}

// Coordinator owns a distributed campaign: it runs the deterministic
// campaign driver in-process (via cluster.RunCampaignWith) and serves the
// lease/result/heartbeat protocol that ships units to worker processes.
// It implements cluster.UnitExecutor.
type Coordinator struct {
	cfg      Config
	cl       *cluster.Cluster
	spec     CampaignSpec
	digest   string
	numUnits int
	ln       net.Listener
	backoff  engine.Backoff

	mu        sync.Mutex
	round     int // 1-based during a round; 0 before the first
	units     map[int]*unitState
	overrides []cluster.PlanOverride
	tick      func() // driver's progress callback for the current round
	unitErr   error  // a worker-reported simulation failure (aborts)
	campDone  bool
	workers   map[string]*workerState
	seq       int64 // worker/lease id source
	// roundCtx carries the driver's campaign→round span chain during a
	// round (nil between rounds); per-lease spans are started from it.
	// campTP is the campaign span's traceparent, handed to joining workers
	// so their session spans land in the campaign trace.
	roundCtx context.Context
	campTP   string

	cp     *checkpoint
	replay map[int]map[int]cluster.UnitOutcome

	// telemetry (nil-safe no-op handles when telemetry is off)
	granted, expired, redisp   *telemetry.Counter
	results, malformed, stale  *telemetry.Counter
	deaths, resumed            *telemetry.Counter
	hbGap, workerUnits         *telemetry.Histogram
	gWorkers, gPending, gLease *telemetry.Gauge
}

// NewCoordinator validates the campaign, binds the listen address, and
// opens (or resumes) the checkpoint. Call Run to serve and execute; Close
// releases the listener if Run is never reached.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	// encoding/gob assigns stream type ids in process-global registration
	// order, so a campaign saved by a coordinator — whose process gob-encodes
	// checkpoint frames and run blobs first — would differ byte-wise from a
	// serially saved one despite identical content. Encoding a throwaway
	// Campaign here pins the ids so the two cache files stay cmp-identical.
	gob.NewEncoder(io.Discard).Encode(&dataset.Campaign{})
	spec, err := SpecFromCluster(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	numUnits, digest, err := cl.PlanInfo()
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:      cfg,
		cl:       cl,
		spec:     spec,
		digest:   digest,
		numUnits: numUnits,
		backoff:  engine.Backoff{Base: 250 * time.Millisecond, Max: 15 * time.Second, Factor: 2, Jitter: 0.2},
		workers:  map[string]*workerState{},

		granted:     telemetry.C(telemetry.MDistLeasesGranted),
		expired:     telemetry.C(telemetry.MDistLeaseExpired),
		redisp:      telemetry.C(telemetry.MDistLeaseRedispatch),
		results:     telemetry.C(telemetry.MDistResults),
		malformed:   telemetry.C(telemetry.MDistResultsMalformed),
		stale:       telemetry.C(telemetry.MDistResultsStale),
		deaths:      telemetry.C(telemetry.MDistWorkerDeaths),
		resumed:     telemetry.C(telemetry.MDistResumedUnits),
		hbGap:       telemetry.H(telemetry.MDistHeartbeatGap, telemetry.SecondsBuckets),
		workerUnits: telemetry.H(telemetry.MDistWorkerUnits, telemetry.CountBuckets),
		gWorkers:    telemetry.G(telemetry.GDistWorkers),
		gPending:    telemetry.G(telemetry.GDistPendingUnits),
		gLease:      telemetry.G(telemetry.GDistLeasedUnits),
	}
	if cfg.CheckpointPath != "" {
		cp, replay, err := openCheckpoint(cfg.CheckpointPath, digest, numUnits)
		if err != nil {
			return nil, err
		}
		co.cp, co.replay = cp, replay
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if co.cp != nil {
			co.cp.close()
		}
		return nil, fmt.Errorf("dist: listen %s: %w", cfg.Addr, err)
	}
	co.ln = ln
	return co, nil
}

// Addr returns the bound listen address (useful with ":0").
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// NumUnits returns the campaign's work-unit count.
func (co *Coordinator) NumUnits() int { return co.numUnits }

// PlanDigest returns the campaign's plan-list digest.
func (co *Coordinator) PlanDigest() string { return co.digest }

// Close releases the listener and checkpoint without running. Run performs
// its own cleanup; Close is for abandoning a constructed coordinator.
func (co *Coordinator) Close() error {
	err := co.ln.Close()
	if co.cp != nil {
		co.cp.close()
	}
	return err
}

// Run serves the worker protocol and executes the campaign, returning the
// merged result — byte-identical to an in-process RunCampaignCtx with the
// same config. On success the checkpoint file is removed; on failure or
// cancellation it is kept for a resumed coordinator to pick up.
func (co *Coordinator) Run(ctx context.Context) (*dataset.Campaign, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		telemetry.Active().Snapshot().WriteOpenMetrics(w)
	})
	mux.HandleFunc("/v1/join", co.handleJoin)
	mux.HandleFunc("/v1/lease", co.handleLease)
	mux.HandleFunc("/v1/result", co.handleResult)
	mux.HandleFunc("/v1/heartbeat", co.handleHeartbeat)
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(co.ln) }()
	fmt.Fprintf(co.cfg.Log, "dist: coordinating %d units on %s (plan %.12s…)\n", co.numUnits, co.Addr(), co.digest)

	camp, err := co.cl.RunCampaignWith(ctx, co)

	co.mu.Lock()
	co.campDone = true
	for _, w := range co.workers {
		co.workerUnits.Observe(float64(w.units))
	}
	co.gWorkers.Set(0)
	co.gPending.Set(0)
	co.gLease.Set(0)
	co.mu.Unlock()

	// let polling workers hear StatusDone before tearing the server down
	if err == nil && co.cfg.Grace > 0 {
		engine.SleepFor(context.Background(), co.cfg.Grace)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	srv.Shutdown(shutCtx)
	cancel()
	<-serveErr // always http.ErrServerClosed after Shutdown

	if co.cp != nil {
		if err == nil {
			if rerr := co.cp.remove(); rerr != nil {
				fmt.Fprintf(co.cfg.Log, "dist: remove checkpoint: %v\n", rerr)
			}
		} else {
			co.cp.close()
		}
	}
	return camp, err
}

// ExecuteRound implements cluster.UnitExecutor: it exposes the round's
// units for leasing, re-dispatches expired leases and dead workers'
// units, and returns when every unit has an outcome (or ctx/unit failure
// aborts). Partial outcomes are returned on abort so completed work is
// still merged by the driver.
func (co *Coordinator) ExecuteRound(ctx context.Context, pending []int, overrides []cluster.PlanOverride, completed func()) ([]cluster.UnitOutcome, error) {
	co.mu.Lock()
	co.round++
	round := co.round
	co.roundCtx = ctx
	if rs := telemetry.FromContext(ctx); rs != nil {
		if psc, ok := rs.ParentSpanContext(); ok {
			co.campTP = telemetry.FormatTraceparent(psc)
		}
	}
	co.units = make(map[int]*unitState, len(pending))
	co.overrides = append([]cluster.PlanOverride(nil), overrides...)
	co.tick = completed
	co.unitErr = nil
	remaining := 0
	for k, i := range pending {
		st := &unitState{k: k}
		co.units[i] = st
		if out, ok := co.replay[round][i]; ok {
			st.done = true
			st.out = out
			co.resumed.Add(1)
			if out.Run != nil {
				completed()
			}
			continue
		}
		remaining++
	}
	co.gPending.Set(float64(remaining))
	co.mu.Unlock()
	if remaining < len(pending) {
		fmt.Fprintf(co.cfg.Log, "dist: round %d: %d/%d units resumed from checkpoint\n", round, len(pending)-remaining, len(pending))
	}

	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
	var roundErr error
	for {
		select {
		case <-ctx.Done():
			roundErr = ctx.Err()
		case <-ticker.C:
			co.sweep()
		}
		co.mu.Lock()
		if co.unitErr != nil && roundErr == nil {
			roundErr = co.unitErr
		}
		allDone := true
		for _, st := range co.units {
			if !st.done {
				allDone = false
				break
			}
		}
		if allDone || roundErr != nil {
			outs := make([]cluster.UnitOutcome, len(pending))
			for _, st := range co.units {
				if st.done {
					outs[st.k] = st.out
				}
				// leases still open at round teardown (abort paths) close
				// with an explicit outcome so no span dangles unrecorded
				st.endLeaseSpanLocked("round over")
			}
			co.units = nil
			co.roundCtx = nil
			co.gPending.Set(0)
			co.gLease.Set(0)
			co.mu.Unlock()
			return outs, roundErr
		}
		co.mu.Unlock()
	}
}

// sweep re-dispatches expired leases and requeues units held by workers
// that stopped heartbeating. Runs every 25ms off ExecuteRound's ticker.
func (co *Coordinator) sweep() {
	now := time.Now()
	deadAfter := 3*co.cfg.Heartbeat + co.cfg.Heartbeat/2
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.units == nil {
		return
	}

	// workers first, so their leases requeue without waiting for expiry
	for id, w := range co.workers {
		if now.Sub(w.lastSeen) <= deadAfter {
			continue
		}
		fmt.Fprintf(co.cfg.Log, "dist: worker %s (%s) silent for %.1fs, declaring dead\n", id, w.name, now.Sub(w.lastSeen).Seconds())
		delete(co.workers, id)
		co.deaths.Add(1)
		co.gWorkers.Set(float64(len(co.workers)))
		for i, st := range co.units {
			if st.leased && !st.done && st.worker == id {
				co.requeueLocked(i, st, now, "worker died")
			}
		}
	}
	for i, st := range co.units {
		if st.leased && !st.done && now.After(st.deadline) {
			co.expired.Add(1)
			co.requeueLocked(i, st, now, "lease expired")
		}
	}
}

// requeueLocked returns a unit to the grantable pool with capped
// exponential backoff (jittered — re-dispatch timing is not output), or
// aborts the campaign once the unit has burned MaxAttempts leases without
// completing: at that point the failure is systemic, not transient.
// Caller holds co.mu.
func (co *Coordinator) requeueLocked(i int, st *unitState, now time.Time, why string) {
	st.endLeaseSpanLocked(why)
	st.leased = false
	st.leaseID = ""
	st.worker = ""
	if st.attempts >= co.cfg.MaxAttempts {
		if co.unitErr == nil {
			co.unitErr = fmt.Errorf("dist: unit %d failed %d leases (last: %s); giving up", i, st.attempts, why)
		}
		co.gLease.Add(-1)
		return
	}
	st.notBefore = now.Add(co.backoff.Delay(st.attempts - 1))
	co.redisp.Add(1)
	co.gLease.Add(-1)
	fmt.Fprintf(co.cfg.Log, "dist: unit %d re-dispatched (%s, attempt %d)\n", i, why, st.attempts)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return false
	}
	return true
}

// rpcSpan opens a coordinator-side RPC span when the request carries a
// valid traceparent header (worker calls made under a span propagate one).
// Requests without a header — heartbeats on a background context, plain
// curl — get no span, so the merged trace grows no extra roots. Returns a
// nil-safe handle.
func rpcSpan(r *http.Request, endpoint string) *telemetry.Span {
	sc, err := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader))
	if err != nil {
		return nil
	}
	_, sp := telemetry.Start(telemetry.ContextWithRemote(context.Background(), sc), telemetry.SpanDistRPCPrefix+endpoint)
	return sp
}

func (co *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	defer rpcSpan(r, "join").End()
	var req JoinRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.ProtocolVersion != ProtocolVersion {
		writeError(w, http.StatusBadRequest, "protocol version %d, coordinator speaks %d", req.ProtocolVersion, ProtocolVersion)
		return
	}
	co.mu.Lock()
	if co.campDone {
		co.mu.Unlock()
		writeError(w, http.StatusConflict, "campaign complete")
		return
	}
	co.seq++
	id := fmt.Sprintf("w%d", co.seq)
	co.workers[id] = &workerState{id: id, name: req.Name, lastSeen: time.Now()}
	n := len(co.workers)
	campTP := co.campTP
	co.gWorkers.Set(float64(n))
	co.mu.Unlock()
	fmt.Fprintf(co.cfg.Log, "dist: worker %s joined (%s), %d alive\n", id, req.Name, n)
	writeJSON(w, http.StatusOK, JoinResponse{
		WorkerID:         id,
		Spec:             co.spec,
		PlanDigest:       co.digest,
		NumUnits:         co.numUnits,
		LeaseSeconds:     co.cfg.Lease.Seconds(),
		HeartbeatSeconds: co.cfg.Heartbeat.Seconds(),
		Traceparent:      campTP,
	})
}

// touchLocked records a sign of life from worker id. Caller holds co.mu.
func (co *Coordinator) touchLocked(id string) (*workerState, bool) {
	wk, ok := co.workers[id]
	if !ok {
		return nil, false
	}
	now := time.Now()
	co.hbGap.Observe(now.Sub(wk.lastSeen).Seconds())
	wk.lastSeen = now
	return wk, true
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	defer rpcSpan(r, "lease").End()
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.campDone {
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusDone})
		return
	}
	if _, ok := co.touchLocked(req.WorkerID); !ok {
		writeError(w, http.StatusNotFound, "unknown worker %q (rejoin)", req.WorkerID)
		return
	}
	now := time.Now()
	best := -1
	for i, st := range co.units {
		if st.done || st.leased || now.Before(st.notBefore) {
			continue
		}
		if best == -1 || i < best {
			best = i
		}
	}
	if best == -1 {
		// nothing grantable: between rounds, backoff gates, or all leased
		writeJSON(w, http.StatusOK, LeaseResponse{Status: StatusWait, RetryAfterSeconds: 0.5})
		return
	}
	st := co.units[best]
	st.attempts++
	co.seq++
	st.leased = true
	st.leaseID = fmt.Sprintf("L%d", co.seq)
	st.worker = req.WorkerID
	st.deadline = now.Add(co.cfg.Lease)
	co.granted.Add(1)
	co.gLease.Add(1)
	// open the lease span under the round span; its context rides to the
	// worker so the unit's execution spans parent to it cross-process
	var leaseTP string
	if co.roundCtx != nil {
		_, sp := telemetry.Start(co.roundCtx, telemetry.SpanDistUnit)
		sp.SetAttr("unit", fmt.Sprint(best))
		sp.SetAttr("round", fmt.Sprint(co.round))
		sp.SetAttr("worker", req.WorkerID)
		sp.SetAttr("attempt", fmt.Sprint(st.attempts))
		st.span = sp
		if sc, ok := sp.SpanContext(); ok {
			leaseTP = telemetry.FormatTraceparent(sc)
		}
	}
	writeJSON(w, http.StatusOK, LeaseResponse{
		Status:              StatusLease,
		LeaseID:             st.leaseID,
		Unit:                best,
		Round:               co.round,
		Attempt:             st.attempts,
		Overrides:           co.overrides,
		LeaseSeconds:        co.cfg.Lease.Seconds(),
		Traceparent:         leaseTP,
		CampaignTraceparent: co.campTP,
	})
}

func (co *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	defer rpcSpan(r, "result").End()
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	wk, known := co.touchLocked(req.WorkerID)
	st, current := co.units[req.Unit]
	if co.campDone || !current || req.Round != co.round || st.done {
		// determinism makes duplicates harmless; acknowledge and move on
		co.stale.Add(1)
		writeJSON(w, http.StatusOK, ResultResponse{Status: StatusStale})
		return
	}
	if req.Error != "" {
		// a genuine (non-drain) simulation failure aborts the campaign,
		// mirroring the in-process executor
		co.unitErr = fmt.Errorf("dist: worker %s, unit %d: %s", req.WorkerID, req.Unit, req.Error)
		st.endLeaseSpanLocked("error")
		writeJSON(w, http.StatusOK, ResultResponse{Status: StatusOK})
		return
	}
	var out cluster.UnitOutcome
	if req.Drained {
		out = cluster.UnitOutcome{Drained: true, DrainAt: req.DrainAt}
	} else {
		run, err := DecodeRun(req.RunGob)
		if err != nil {
			// a corrupt result must not poison the campaign: reject it
			// and put the unit straight back in the pool
			co.malformed.Add(1)
			if st.leased {
				co.requeueLocked(req.Unit, st, time.Now(), "malformed result")
			}
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		out = cluster.UnitOutcome{Run: run}
	}
	if st.leased {
		st.leased = false
		co.gLease.Add(-1)
	}
	if out.Drained {
		st.endLeaseSpanLocked("drained")
	} else {
		st.endLeaseSpanLocked("ok")
	}
	st.done = true
	st.out = out
	co.results.Add(1)
	co.gPending.Add(-1)
	if known {
		wk.units++
	}
	if co.cp != nil {
		if err := co.cp.append(co.round, req.Unit, out); err != nil {
			// a dead checkpoint disk must not kill the campaign; resume
			// just gets less help
			fmt.Fprintf(co.cfg.Log, "dist: checkpoint append failed: %v\n", err)
		}
	}
	if out.Run != nil && co.tick != nil {
		co.tick()
	}
	writeJSON(w, http.StatusOK, ResultResponse{Status: StatusOK})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	defer rpcSpan(r, "heartbeat").End()
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.campDone {
		writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusDone})
		return
	}
	if _, ok := co.touchLocked(req.WorkerID); !ok {
		writeError(w, http.StatusNotFound, "unknown worker %q (rejoin)", req.WorkerID)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Status: StatusOK})
}
