package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dragonvar/internal/telemetry"
)

// The chaos test runs a worker as a real OS process and SIGKILLs it while
// it provably holds a lease, then kills the coordinator too and resumes it
// from the checkpoint — the full crash story in one test. TestMain doubles
// as the worker process entry point: the test re-executes its own binary
// with DIST_HELPER_WORKER=1.

const helperHoldingMarker = "DIST_HELPER_HOLDING"

func TestMain(m *testing.M) {
	if os.Getenv("DIST_HELPER_WORKER") == "1" {
		helperWorkerMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// helperWorkerMain is the subprocess body: a normal worker, except that
// after DIST_HELPER_HANG_AFTER completed leases it announces the next
// lease on stdout and hangs — guaranteed to be holding that lease (and
// sending no heartbeats) when the parent SIGKILLs it.
func helperWorkerMain() {
	hangAfter, _ := strconv.Atoi(os.Getenv("DIST_HELPER_HANG_AFTER"))
	leases := 0
	w, err := NewWorker(WorkerConfig{
		Coord: os.Getenv("DIST_HELPER_COORD"),
		Name:  "chaos-helper",
		Log:   os.Stderr,
		afterLease: func(unit, round int) {
			leases++
			if hangAfter > 0 && leases > hangAfter {
				fmt.Printf("%s unit=%d round=%d\n", helperHoldingMarker, unit, round)
				select {} // hang forever; only SIGKILL ends this process
			}
		},
	})
	if err == nil {
		err = w.Run(context.Background())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
}

// TestChaosWorkerKillAndCoordinatorResume is the acceptance test of the
// distributed layer: SIGKILL a worker process mid-lease, verify the
// coordinator declares it dead and re-dispatches its unit, then kill the
// coordinator as well and restart it from the checkpoint — and still
// require the finished campaign to be byte-identical to a serial
// in-process run.
func TestChaosWorkerKillAndCoordinatorResume(t *testing.T) {
	r := telemetry.New()
	telemetry.Enable(r)
	defer telemetry.Disable()

	cfg := faultedTestConfig(t, 67)
	serial := serialHash(t, cfg)
	cpPath := filepath.Join(t.TempDir(), "chaos.ckpt")

	co1, err := NewCoordinator(Config{
		Cluster: cfg, Addr: "127.0.0.1:0", CheckpointPath: cpPath,
		Heartbeat: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	done1 := make(chan error, 1)
	go func() { _, err := co1.Run(ctx1); done1 <- err }()

	// launch the worker as a real process; it completes 2 units, then
	// hangs holding its 3rd lease and announces that on stdout
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"DIST_HELPER_WORKER=1",
		"DIST_HELPER_COORD=http://"+co1.Addr(),
		"DIST_HELPER_HANG_AFTER=2",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	holding := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), helperHoldingMarker) {
			holding = true
			break
		}
	}
	if !holding {
		t.Fatal("helper worker exited without hanging on a lease")
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no goodbye, no drain
		t.Fatal(err)
	}
	go cmd.Wait()

	// the coordinator must notice the silence, declare the worker dead,
	// and put the leased unit back in the pool
	deadline := time.Now().Add(15 * time.Second)
	for {
		snap := r.Snapshot()
		if snap.Counters[telemetry.MDistWorkerDeaths] >= 1 && snap.Counters[telemetry.MDistLeaseRedispatch] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGKILLed worker never declared dead (deaths=%d redispatched=%d)",
				snap.Counters[telemetry.MDistWorkerDeaths], snap.Counters[telemetry.MDistLeaseRedispatch])
		}
		time.Sleep(25 * time.Millisecond)
	}

	// now crash the coordinator too (checkpoint holds the 2 done units)
	cancel1()
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("killed coordinator returned %v", err)
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("checkpoint missing after coordinator death: %v", err)
	}

	// restart from the checkpoint with a fresh worker and finish
	co2, err := NewCoordinator(Config{Cluster: cfg, Addr: "127.0.0.1:0", CheckpointPath: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	wB := startWorker(context.Background(), t, co2.Addr(), "survivor", nil)
	camp, err := co2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := camp.Validate(); err != nil {
		t.Fatalf("resumed campaign invalid: %v", err)
	}
	if got := campaignHash(t, camp); got != serial {
		t.Fatal("campaign after worker SIGKILL + coordinator restart differs from serial")
	}
	select {
	case err := <-wB:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("surviving worker did not exit")
	}

	snap := r.Snapshot()
	if snap.Counters[telemetry.MDistResumedUnits] < 2 {
		t.Errorf("resumed units = %d, want >= 2 (the killed worker completed 2)",
			snap.Counters[telemetry.MDistResumedUnits])
	}
	if _, err := os.Stat(cpPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("checkpoint not cleaned up after success: %v", err)
	}
}
