package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dragonvar/internal/engine"
	"dragonvar/internal/telemetry"
)

// HTTPError is a non-2xx coordinator response. Status 0 never occurs; a
// transport-level failure surfaces as the underlying error instead.
type HTTPError struct {
	Status int
	Path   string
	Msg    string

	// retryAfter is the parsed Retry-After delay, 0 when the response
	// carried none. The client prefers it over its own backoff schedule.
	retryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("dist: %s: HTTP %d: %s", e.Path, e.Status, e.Msg)
	}
	return fmt.Sprintf("dist: %s: HTTP %d", e.Path, e.Status)
}

// Temporary reports whether retrying the same request can help: timeouts,
// overload sheds, and server-side faults are temporary; 4xx contract
// violations (other than 429) are not.
func (e *HTTPError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// client is a JSON POST client with capped-exponential retry on transient
// failures. It honors Retry-After from overload responses (the serve-layer
// convention this repository's daemons emit on 429/503) in preference to
// its own backoff schedule.
type client struct {
	base    string // coordinator base URL, e.g. http://127.0.0.1:9631
	http    *http.Client
	backoff engine.Backoff
	retries int // attempts beyond the first; <0 disables retry
	retryC  *telemetry.Counter
}

func newClient(base string, maxRetries int) *client {
	return &client{
		base:    strings.TrimRight(base, "/"),
		http:    &http.Client{Timeout: 30 * time.Second},
		backoff: engine.Backoff{Base: 200 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0.3},
		retries: maxRetries,
		retryC:  telemetry.Active().Counter(telemetry.MDistClientRetries),
	}
}

// post sends req as JSON to path and decodes the 2xx response into resp.
// Transient failures (network errors, 429, 5xx) are retried with backoff —
// jittered so a worker fleet that loses its coordinator does not stampede
// it on recovery — until ctx is cancelled or the retry budget is spent.
// Non-transient HTTP errors return *HTTPError immediately.
func (c *client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: marshal %s request: %w", path, err)
	}
	var last error
	for attempt := 0; ; attempt++ {
		last = c.once(ctx, path, body, resp)
		if last == nil {
			return nil
		}
		var he *HTTPError
		if errors.As(last, &he) && !he.Temporary() {
			return last
		}
		if attempt >= c.retries {
			return last
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		c.retryC.Add(1)
		var sleepErr error
		if he != nil && he.retryAfter > 0 {
			sleepErr = engine.SleepFor(ctx, he.retryAfter)
		} else {
			sleepErr = c.backoff.Sleep(ctx, attempt)
		}
		if sleepErr != nil {
			return sleepErr
		}
	}
}

func (c *client) once(ctx context.Context, path string, body []byte, resp any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: build %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	telemetry.InjectTraceparent(ctx, hreq.Header)
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return fmt.Errorf("dist: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("dist: read %s response: %w", path, err)
	}
	if hresp.StatusCode < 200 || hresp.StatusCode > 299 {
		he := &HTTPError{Status: hresp.StatusCode, Path: path}
		var eresp errorResponse
		if json.Unmarshal(raw, &eresp) == nil {
			he.Msg = eresp.Error
		}
		if ra := hresp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
				he.retryAfter = time.Duration(secs) * time.Second
			}
		}
		return he
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(raw, resp); err != nil {
		return fmt.Errorf("dist: decode %s response: %w", path, err)
	}
	return nil
}
