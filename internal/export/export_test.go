package export

import (
	"bytes"
	"encoding/csv"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
)

func sampleDataset() *dataset.Dataset {
	ds := &dataset.Dataset{Name: "TEST-128", App: "TEST", Nodes: 128}
	for i := 0; i < 3; i++ {
		r := &dataset.Run{Dataset: ds.Name, RunID: i, Day: i, Start: float64(i) * 1000,
			NumRouters: 30, NumGroups: 5}
		for s := 0; s < 4; s++ {
			r.StepTimes = append(r.StepTimes, float64(10+i))
			r.Compute = append(r.Compute, 2)
			r.Counters = append(r.Counters, [counters.NumJob]float64{float64(s)})
			r.IO = append(r.IO, [counters.NumLDMS]float64{1})
			r.Sys = append(r.Sys, [counters.NumLDMS]float64{2})
		}
		ds.Runs = append(ds.Runs, r)
	}
	return ds
}

func parseCSV(t *testing.T, s string) [][]string {
	t.Helper()
	recs, err := csv.NewReader(strings.NewReader(s)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestRunsCSV(t *testing.T) {
	ds := sampleDataset()
	var b strings.Builder
	if err := Runs(&b, ds); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	// header + 3 runs × 4 steps
	if len(recs) != 1+12 {
		t.Fatalf("rows = %d", len(recs))
	}
	wantCols := 8 + counters.NumJob + 2*counters.NumLDMS
	if len(recs[0]) != wantCols {
		t.Fatalf("columns = %d, want %d", len(recs[0]), wantCols)
	}
	if recs[0][8] != "RT_FLIT_TOT" {
		t.Fatalf("first counter column = %q", recs[0][8])
	}
	// data row sanity: run 0 step 1 has counter value 1
	if recs[2][8] != "1" {
		t.Fatalf("counter cell = %q", recs[2][8])
	}
}

func TestTotalsCSV(t *testing.T) {
	ds := sampleDataset()
	var b strings.Builder
	if err := Totals(&b, ds); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if len(recs) != 1+3 {
		t.Fatalf("rows = %d", len(recs))
	}
	// best run (run 0, total 40) has relative 1
	if recs[1][4] != "1" {
		t.Fatalf("best relative = %q", recs[1][4])
	}
}

func TestRelevanceCSV(t *testing.T) {
	res := []core.DeviationResult{{
		Dataset:      "X-128",
		FeatureNames: []string{"A", "B"},
		Relevance:    []float64{0.5, 1},
		MAPE:         3.2,
	}}
	var b strings.Builder
	if err := Relevance(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if len(recs) != 3 || recs[1][1] != "A" || recs[2][2] != "1" {
		t.Fatalf("recs = %v", recs)
	}
}

func TestForecastsCSV(t *testing.T) {
	res := []core.ForecastResult{{
		Dataset: "X-128",
		Spec:    core.ForecastSpec{M: 3, K: 5, Features: counters.FeatureSet{Placement: true}},
		MAPE:    7.5, Windows: 42,
	}}
	var b strings.Builder
	if err := Forecasts(&b, res); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if recs[1][3] != "app + placement" || recs[1][5] != "42" {
		t.Fatalf("recs = %v", recs)
	}
}

func TestSegmentsCSV(t *testing.T) {
	segs := []core.SegmentForecast{{StartStep: 30, Observed: 100, Predicted: 95}}
	var b strings.Builder
	if err := Segments(&b, segs); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, b.String())
	if recs[1][0] != "30" || recs[1][2] != "95" {
		t.Fatalf("recs = %v", recs)
	}
}

func TestCampaignToDir(t *testing.T) {
	camp := &dataset.Campaign{Datasets: []*dataset.Dataset{sampleDataset()}}
	dir := filepath.Join(t.TempDir(), "csv")
	if err := CampaignToDir(camp, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"TEST-128-steps.csv", "TEST-128-totals.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestMatrixCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []string{"g0", "g1"}
	x := []float64{0, 900}
	values := [][]float64{{0.25, math.NaN()}, {0.5, 0.75}}
	if err := Matrix(&buf, "group", rows, x, values); err != nil {
		t.Fatal(err)
	}
	rec, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 3 {
		t.Fatalf("rows = %d, want 3 (header + 2)", len(rec))
	}
	if rec[0][0] != "group" || rec[0][1] != "0" || rec[0][2] != "900" {
		t.Errorf("header = %v", rec[0])
	}
	if rec[1][0] != "g0" || rec[1][1] != "0.25" || rec[1][2] != "" {
		t.Errorf("row g0 = %v (NaN should be empty)", rec[1])
	}
	if rec[2][0] != "g1" || rec[2][1] != "0.5" || rec[2][2] != "0.75" {
		t.Errorf("row g1 = %v", rec[2])
	}
}
