// Package export writes campaign datasets and experiment results as CSV,
// so the figures can be re-plotted with external tooling (gnuplot,
// matplotlib, R). One file per artifact, headers included.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"

	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
)

// Runs writes one row per (run, step): the step time, compute time, all
// counter deltas, placement features, and io/sys features.
func Runs(w io.Writer, ds *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := []string{"run_id", "day", "start", "step", "step_time_s", "compute_s", "num_routers", "num_groups"}
	for i := 0; i < counters.NumJob; i++ {
		header = append(header, counters.Table[i].Abbrev)
	}
	header = append(header, counters.LDMSNames("IO")...)
	header = append(header, counters.LDMSNames("SYS")...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, r := range ds.Runs {
		for s := 0; s < r.Steps(); s++ {
			row = row[:0]
			row = append(row,
				strconv.Itoa(r.RunID), strconv.Itoa(r.Day), f(r.Start), strconv.Itoa(s),
				f(r.StepTimes[s]), f(r.Compute[s]),
				strconv.Itoa(r.NumRouters), strconv.Itoa(r.NumGroups))
			for c := 0; c < counters.NumJob; c++ {
				row = append(row, f(r.Counters[s][c]))
			}
			for c := 0; c < counters.NumLDMS; c++ {
				row = append(row, f(r.IO[s][c]))
			}
			for c := 0; c < counters.NumLDMS; c++ {
				row = append(row, f(r.Sys[s][c]))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Totals writes one row per run: total/compute time and relative
// performance (the Figure 1 data).
func Totals(w io.Writer, ds *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run_id", "day", "total_s", "compute_s", "relative"}); err != nil {
		return err
	}
	best := ds.BestTotalTime()
	for _, r := range ds.Runs {
		rel := 0.0
		if best > 0 {
			rel = r.TotalTime() / best
		}
		if err := cw.Write([]string{
			strconv.Itoa(r.RunID), strconv.Itoa(r.Day),
			f(r.TotalTime()), f(r.TotalCompute()), f(rel),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Relevance writes the Figure 9 data: one row per (dataset, counter).
func Relevance(w io.Writer, results []core.DeviationResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "counter", "relevance", "mape_pct"}); err != nil {
		return err
	}
	for _, res := range results {
		for i, name := range res.FeatureNames {
			if err := cw.Write([]string{res.Dataset, name, f(res.Relevance[i]), f(res.MAPE)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Forecasts writes Figure 8/10 data: one row per (dataset, spec).
func Forecasts(w io.Writer, results []core.ForecastResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "m", "k", "features", "mape_pct", "windows"}); err != nil {
		return err
	}
	for _, res := range results {
		if err := cw.Write([]string{
			res.Dataset,
			strconv.Itoa(res.Spec.M), strconv.Itoa(res.Spec.K),
			res.Spec.Features.String(), f(res.MAPE), strconv.Itoa(res.Windows),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Segments writes the Figure 12 series: one row per segment.
func Segments(w io.Writer, segs []core.SegmentForecast) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_step", "observed_s", "predicted_s"}); err != nil {
		return err
	}
	for _, sg := range segs {
		if err := cw.Write([]string{strconv.Itoa(sg.StartStep), f(sg.Observed), f(sg.Predicted)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CampaignToDir writes the whole campaign: per dataset a runs CSV and a
// totals CSV in dir (created if needed).
func CampaignToDir(camp *dataset.Campaign, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, ds := range camp.Datasets {
		if err := writeFile(filepath.Join(dir, ds.Name+"-steps.csv"), func(w io.Writer) error {
			return Runs(w, ds)
		}); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(dir, ds.Name+"-totals.csv"), func(w io.Writer) error {
			return Totals(w, ds)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(fh); err != nil {
		fh.Close()
		return fmt.Errorf("export %s: %w", path, err)
	}
	return fh.Close()
}

// f formats a float compactly for CSV.
func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// Matrix writes a labeled row × column matrix as CSV — the export form of
// the monitor's congestion heatmap. The header is rowName followed by one
// column per x value; NaN cells (no data) are written empty.
func Matrix(w io.Writer, rowName string, rows []string, x []float64, values [][]float64) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(x)+1)
	header = append(header, rowName)
	for _, xv := range x {
		header = append(header, f(xv))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for i, label := range rows {
		row = row[:0]
		row = append(row, label)
		for j := range x {
			v := math.NaN()
			if i < len(values) && j < len(values[i]) {
				v = values[i][j]
			}
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, f(v))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
