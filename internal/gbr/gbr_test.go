package gbr

import (
	"math"
	"testing"

	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
	"dragonvar/internal/stats"
)

// friedmanish builds y = 10*x0 + 5*x1^2 + noise with two junk features.
func friedmanish(n int, noise float64, s *rng.Stream) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 4)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, s.Float64())
		}
		y[i] = 10*x.At(i, 0) + 5*x.At(i, 1)*x.At(i, 1) + noise*s.NormFloat64()
	}
	return x, y
}

func TestGBRFitsNonlinearFunction(t *testing.T) {
	s := rng.New(1)
	x, y := friedmanish(1200, 0.1, s)
	m := Fit(x, y, nil, nil, Options{NumTrees: 80}, s)
	pred := m.PredictRows(x, nil)
	// explained variance should be high
	var ssRes float64
	for i := range y {
		d := pred[i] - y[i]
		ssRes += d * d
	}
	ssTot := stats.Variance(y) * float64(len(y)-1)
	r2 := 1 - ssRes/ssTot
	if r2 < 0.9 {
		t.Fatalf("R^2 = %v, want > 0.9", r2)
	}
}

func TestGBRBeatsSingleLeafBaseline(t *testing.T) {
	s := rng.New(2)
	x, y := friedmanish(500, 0.5, s)
	m := Fit(x, y, nil, nil, Options{NumTrees: 30}, s)
	mean := stats.Mean(y)
	var sseModel, sseMean float64
	for i := range y {
		d := m.Predict(x.Row(i)) - y[i]
		sseModel += d * d
		dm := mean - y[i]
		sseMean += dm * dm
	}
	if sseModel > sseMean/3 {
		t.Fatalf("boosting barely beat the mean: %v vs %v", sseModel, sseMean)
	}
}

func TestImportanceRanksRealFeatures(t *testing.T) {
	s := rng.New(3)
	x, y := friedmanish(1000, 0.1, s)
	m := Fit(x, y, nil, nil, Options{NumTrees: 60}, s)
	imp := m.Importance()
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if imp[0] < imp[2] || imp[0] < imp[3] || imp[1] < imp[2] || imp[1] < imp[3] {
		t.Fatalf("junk features outrank real ones: %v", imp)
	}
}

func TestFeatureRestriction(t *testing.T) {
	s := rng.New(4)
	x, y := friedmanish(500, 0.1, s)
	m := Fit(x, y, nil, []int{2, 3}, Options{NumTrees: 20}, s)
	imp := m.Importance()
	if imp[0] != 0 || imp[1] != 0 {
		t.Fatalf("excluded features gained importance: %v", imp)
	}
}

func TestTrainSubsetOnly(t *testing.T) {
	s := rng.New(5)
	x, y := friedmanish(400, 0.1, s)
	// train on the first half only
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = i
	}
	m := Fit(x, y, idx, nil, Options{NumTrees: 40}, s)
	// held-out half should still predict decently (same distribution)
	var sse, sst float64
	mean := stats.Mean(y[200:])
	for i := 200; i < 400; i++ {
		d := m.Predict(x.Row(i)) - y[i]
		sse += d * d
		dm := y[i] - mean
		sst += dm * dm
	}
	if 1-sse/sst < 0.7 {
		t.Fatalf("held-out R^2 = %v", 1-sse/sst)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	sData := rng.New(6)
	x, y := friedmanish(300, 0.2, sData)
	m1 := Fit(x, y, nil, nil, Options{NumTrees: 10}, rng.New(7))
	m2 := Fit(x, y, nil, nil, Options{NumTrees: 10}, rng.New(7))
	for i := 0; i < x.Rows; i++ {
		if m1.Predict(x.Row(i)) != m2.Predict(x.Row(i)) {
			t.Fatal("same seed should give identical models")
		}
	}
}

func TestNumTreesAndDefaults(t *testing.T) {
	s := rng.New(8)
	x, y := friedmanish(100, 0.1, s)
	m := Fit(x, y, nil, nil, Options{}, s)
	if m.NumTrees() != 40 {
		t.Fatalf("default NumTrees = %d, want 40", m.NumTrees())
	}
}

func TestConstantTarget(t *testing.T) {
	s := rng.New(9)
	x := linalg.NewMatrix(60, 2)
	y := make([]float64, 60)
	for i := range y {
		x.Set(i, 0, s.Float64())
		y[i] = 3.5
	}
	m := Fit(x, y, nil, nil, Options{NumTrees: 5}, s)
	if math.Abs(m.Predict([]float64{0.1, 0.9})-3.5) > 1e-9 {
		t.Fatal("constant target should predict the constant")
	}
}
