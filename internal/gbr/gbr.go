// Package gbr implements gradient boosted regression (Friedman, 2001) with
// least-squares loss over histogram-based regression trees — the predictive
// model of the paper's deviation analysis (§IV-B). With squared loss, the
// negative gradient is simply the residual, so each boosting round fits a
// tree to the current residuals and the ensemble accumulates
// learning-rate-scaled corrections.
package gbr

import (
	"time"

	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/tree"
)

// Options configures boosting.
type Options struct {
	NumTrees     int     // boosting rounds; default 40
	LearningRate float64 // shrinkage; default 0.1
	Subsample    float64 // row fraction per round (stochastic GB); default 0.8
	Tree         tree.Options
}

func (o Options) withDefaults() Options {
	if o.NumTrees <= 0 {
		o.NumTrees = 40
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.Subsample <= 0 || o.Subsample > 1 {
		o.Subsample = 0.8
	}
	return o
}

// Model is a fitted gradient boosted ensemble.
type Model struct {
	bias       float64
	lr         float64
	trees      []*tree.Regressor
	importance []float64
}

// Fit trains a model on the rows of x listed in idx (all rows when idx is
// nil), optionally restricted to the given feature columns (nil = all).
func Fit(x *linalg.Matrix, y []float64, idx []int, features []int, opt Options, s *rng.Stream) *Model {
	if telemetry.Enabled() {
		telemetry.C(telemetry.MGBRFits).Inc()
		defer telemetry.H(telemetry.MGBRFitSecs, telemetry.SecondsBuckets).ObserveSince(time.Now())
	}
	opt = opt.withDefaults()
	if idx == nil {
		idx = make([]int, x.Rows)
		for i := range idx {
			idx[i] = i
		}
	}
	binner := tree.NewBinner(x, idx, opt.Tree.Bins)
	binned := binner.BinMatrix(x)

	m := &Model{lr: opt.LearningRate, importance: make([]float64, x.Cols)}
	// residuals over all rows (only idx rows are ever touched)
	resid := make([]float64, x.Rows)
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	m.bias = sum / float64(len(idx))
	for _, i := range idx {
		resid[i] = y[i] - m.bias
	}

	sub := make([]int, 0, len(idx))
	for round := 0; round < opt.NumTrees; round++ {
		sub = sub[:0]
		if opt.Subsample < 1 {
			for _, i := range idx {
				if s.Float64() < opt.Subsample {
					sub = append(sub, i)
				}
			}
			if len(sub) < 2 {
				sub = append(sub[:0], idx...)
			}
		} else {
			sub = append(sub, idx...)
		}
		t := tree.FitBinned(binned, binner, resid, sub, features, opt.Tree, s)
		m.trees = append(m.trees, t)
		for fi, g := range t.Importance() {
			m.importance[fi] += g
		}
		// update residuals on the full training set
		for _, i := range idx {
			resid[i] -= m.lr * t.Predict(x.Row(i))
		}
	}
	// normalize importances to sum to 1
	var total float64
	for _, v := range m.importance {
		total += v
	}
	if total > 0 {
		for i := range m.importance {
			m.importance[i] /= total
		}
	}
	return m
}

// Predict returns the model's prediction for one feature row.
func (m *Model) Predict(row []float64) float64 {
	out := m.bias
	for _, t := range m.trees {
		out += m.lr * t.Predict(row)
	}
	return out
}

// PredictRows returns predictions for the rows of x listed in idx (all
// rows when idx is nil).
func (m *Model) PredictRows(x *linalg.Matrix, idx []int) []float64 {
	if idx == nil {
		idx = make([]int, x.Rows)
		for i := range idx {
			idx[i] = i
		}
	}
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = m.Predict(x.Row(i))
	}
	return out
}

// Importance returns the normalized (sums to 1) gain-based feature
// importances. The slice aliases the model's storage.
func (m *Model) Importance() []float64 { return m.importance }

// NumTrees returns the number of boosting rounds performed.
func (m *Model) NumTrees() int { return len(m.trees) }
