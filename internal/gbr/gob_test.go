package gbr

import (
	"bytes"
	"encoding/gob"
	"testing"

	"dragonvar/internal/rng"
)

// TestGobRoundTripByteIdentical is the persistence contract of the serving
// stack: fit → encode → decode must yield a model whose predictions are
// byte-identical to the in-memory model's, and re-encoding the decoded
// model must reproduce the same bytes.
func TestGobRoundTripByteIdentical(t *testing.T) {
	s := rng.New(7)
	x, y := friedmanish(400, 0.3, s)
	m := Fit(x, y, nil, nil, Options{NumTrees: 25}, s)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	var back Model
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < x.Rows; i++ {
		want := m.Predict(x.Row(i))
		got := back.Predict(x.Row(i))
		if got != want { // exact float64 equality, not a tolerance
			t.Fatalf("row %d: loaded model predicts %v, in-memory %v", i, got, want)
		}
	}
	if back.NumTrees() != m.NumTrees() {
		t.Fatalf("loaded model has %d trees, want %d", back.NumTrees(), m.NumTrees())
	}
	imp, impBack := m.Importance(), back.Importance()
	for i := range imp {
		if imp[i] != impBack[i] {
			t.Fatalf("importance %d: %v != %v", i, impBack[i], imp[i])
		}
	}

	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoding a decoded model changed the bytes")
	}
}

// TestGobDecodeRejectsCorruptTrees exercises the wire-form validation: a
// truncated or inconsistent payload must error, not panic later.
func TestGobDecodeRejectsCorruptTrees(t *testing.T) {
	var m Model
	if err := gob.NewDecoder(bytes.NewReader([]byte("not a gob"))).Decode(&m); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
}
