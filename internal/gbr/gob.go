package gbr

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"dragonvar/internal/tree"
)

// Pin modelWire's process-global gob id at init so serialized ensemble
// bytes don't depend on encode order within the process (gob wire ids
// come from a global counter; see internal/dataset/gob_init.go).
func init() {
	if err := gob.NewEncoder(io.Discard).Encode(modelWire{}); err != nil {
		panic("gbr: gob warm-up: " + err.Error())
	}
}

// modelWire is the gob wire form of a fitted ensemble. Trees serialize
// through their own GobEncode, so the round trip preserves every split
// threshold and leaf value bit-for-bit: a loaded model's Predict is
// byte-identical to the in-memory model's.
type modelWire struct {
	Bias         float64
	LearningRate float64
	Trees        []*tree.Regressor
	Importance   []float64
}

// GobEncode implements gob.GobEncoder, making fitted ensembles persistable
// by internal/modelstore.
func (m *Model) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(modelWire{
		Bias:         m.bias,
		LearningRate: m.lr,
		Trees:        m.trees,
		Importance:   m.importance,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Model) GobDecode(b []byte) error {
	var w modelWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	for i, t := range w.Trees {
		if t == nil {
			return fmt.Errorf("gbr: corrupt wire form: tree %d is nil", i)
		}
	}
	m.bias = w.Bias
	m.lr = w.LearningRate
	m.trees = w.Trees
	m.importance = w.Importance
	return nil
}
