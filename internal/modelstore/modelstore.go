// Package modelstore is the versioned, content-addressed persistence layer
// for trained artifacts: GBR ensembles, attention forecasters, and advisor
// blame lists, together with the feature schema and normalization context
// they were fitted against. Until this package existed every trained model
// died with the process; the serving daemon (cmd/dfserved) now trains once
// and loads forever.
//
// # Layout
//
// A store is a directory:
//
//	<root>/objects/<aa>/<sha256-hex>.gob   immutable artifact envelopes
//	<root>/refs/<name>                     JSON ref: {"id": …, "meta": …}
//
// Objects are content-addressed: the file name is the SHA-256 of the
// encoded envelope, verified on every load, so a bit-flipped or truncated
// artifact fails with a clear error instead of serving garbage
// predictions. Refs are mutable name → id pointers (like git branches);
// putting under an existing name atomically repoints the ref while the
// old object remains addressable by id.
//
// # Determinism
//
// The envelope carries no timestamps or hostnames: encoding the same
// trained model with the same metadata always produces the same bytes and
// therefore the same id. Combined with the models' exact float64 gob
// round-trips (see the gob tests in internal/gbr and internal/nn), a model
// trained by dfvar, saved here, and loaded by dfserved predicts
// byte-identically to in-process inference — the persistence extension of
// the repository's determinism contract.
package modelstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"dragonvar/internal/advisor"
	"dragonvar/internal/gbr"
	"dragonvar/internal/nn"
)

// Pin the envelope's process-global gob id at init so object bytes — and
// therefore content ids — don't depend on what other gob work a process
// did first. See internal/dataset/gob_init.go for the full rationale; the
// model payloads inside envelopes pin their own wire types the same way.
func init() {
	if err := gob.NewEncoder(io.Discard).Encode(envelope{}); err != nil {
		panic("modelstore: gob warm-up: " + err.Error())
	}
}

// Format is the envelope schema version. Bump it when the envelope layout
// changes; Get refuses envelopes from a different format with a clear
// message instead of misdecoding them.
const Format = 1

// Artifact kinds. Get validates the stored kind against the typed
// accessor used, so a ref to a GBR model cannot be loaded as a forecaster.
const (
	KindForecaster = "forecaster"
	KindGBR        = "gbr"
	KindAdvisor    = "advisor"
)

// Meta describes what an artifact was fitted on — enough for a serving
// process to validate request payloads and for an operator to audit what
// is deployed. FeatureNames is the model's column schema in input order.
type Meta struct {
	Kind         string   `json:"kind"`
	Dataset      string   `json:"dataset,omitempty"` // e.g. "MILC-512"
	Seed         int64    `json:"seed"`
	Spec         string   `json:"spec,omitempty"` // e.g. "m=30 k=40 app"
	M            int      `json:"m,omitempty"`    // forecast window length
	K            int      `json:"k,omitempty"`    // forecast horizon
	FeatureNames []string `json:"feature_names,omitempty"`
}

// envelope is the on-disk artifact form: schema version, metadata, and the
// model's own gob bytes.
type envelope struct {
	Format  int
	Meta    Meta
	Payload []byte
}

// ref is the JSON form of a name → id pointer.
type ref struct {
	ID   string `json:"id"`
	Meta Meta   `json:"meta"`
}

// CorruptObjectError reports an object whose bytes no longer hash to its
// content id — a bit flip, truncation, or tampering. The store quarantines
// the damaged file by renaming it to <object>.corrupt so the next Put of
// the same artifact can heal the store instead of colliding with garbage.
type CorruptObjectError struct {
	ID          string // full content id of the damaged object
	GotHash     string // what the bytes actually hash to
	Quarantined bool   // whether the rename to *.corrupt succeeded
}

func (e *CorruptObjectError) Error() string {
	msg := fmt.Sprintf("modelstore: object %.12s: content hash mismatch (got %.12s): store corrupted",
		e.ID, e.GotHash)
	if e.Quarantined {
		msg += " (quarantined as .corrupt)"
	}
	return msg
}

// RefMovedError reports a compare-and-swap ref update that was refused
// because the ref no longer points where the writer last read it: another
// publisher advanced it in between. The caller decides whether to re-read
// and retry or to surface the conflict.
type RefMovedError struct {
	Name   string // ref name
	Expect string // id the writer believed current ("" = expected absent)
	Found  string // id actually current ("" = ref absent)
}

func (e *RefMovedError) Error() string {
	short := func(id string) string {
		if id == "" {
			return "<absent>"
		}
		if len(id) > 12 {
			return id[:12]
		}
		return id
	}
	return fmt.Sprintf("modelstore: ref %s moved: expected %s, found %s (concurrent publish?)",
		e.Name, short(e.Expect), short(e.Found))
}

// Store is a model store rooted at a directory.
type Store struct {
	root string
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, "objects"), filepath.Join(dir, "refs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("modelstore: open: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// validName reports whether a ref name is safe to use as a relative path:
// slash-separated segments of [a-zA-Z0-9._+-], no empty or dot-only
// segments, so a name can never escape the refs directory.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		for _, r := range seg {
			ok := r == '.' || r == '_' || r == '+' || r == '-' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !ok {
				return false
			}
		}
	}
	return true
}

// writeAtomic writes data to path via a temp file + rename in the target
// directory, so a crash or full disk never leaves a truncated object or
// ref behind.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// objectPath maps an id to its object file.
func (s *Store) objectPath(id string) string {
	return filepath.Join(s.root, "objects", id[:2], id+".gob")
}

// encodeObject builds the envelope for a model and returns its content id
// and bytes without touching disk.
func encodeObject(name string, meta Meta, model any) (string, []byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(model); err != nil {
		return "", nil, fmt.Errorf("modelstore: encode %s: %w", name, err)
	}
	var blob bytes.Buffer
	env := envelope{Format: Format, Meta: meta, Payload: payload.Bytes()}
	if err := gob.NewEncoder(&blob).Encode(env); err != nil {
		return "", nil, fmt.Errorf("modelstore: encode envelope %s: %w", name, err)
	}
	sum := sha256.Sum256(blob.Bytes())
	return hex.EncodeToString(sum[:]), blob.Bytes(), nil
}

// lockRef takes the per-ref advisory file lock (refs/<name>.lock created
// O_EXCL) that serializes ref advances across processes. Returns the
// unlock func. A holder that died without unlocking stalls writers for
// the retry budget, then surfaces the stale lock path in the error.
func (s *Store) lockRef(name string) (func(), error) {
	lockPath := filepath.Join(s.root, "refs", name+".lock")
	if err := os.MkdirAll(filepath.Dir(lockPath), 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: lock ref %s: %w", name, err)
	}
	for i := 0; i < 500; i++ {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() { os.Remove(lockPath) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("modelstore: lock ref %s: %w", name, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, fmt.Errorf("modelstore: ref %s: lock held too long (stale %s from a dead writer? remove it)", name, lockPath)
}

// currentRefID returns the id a ref points at, "" when the ref does not
// exist.
func (s *Store) currentRefID(name string) (string, error) {
	id, _, err := s.Resolve(name)
	if err == nil {
		return id, nil
	}
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	return "", err
}

func (s *Store) writeRef(name, id string, meta Meta) error {
	rj, err := json.MarshalIndent(ref{ID: id, Meta: meta}, "", "  ")
	if err != nil {
		return err
	}
	if err := writeAtomic(filepath.Join(s.root, "refs", name), append(rj, '\n')); err != nil {
		return fmt.Errorf("modelstore: write ref %s: %w", name, err)
	}
	return nil
}

// Put stores a model under name, unconditionally repointing the ref (the
// last writer wins). The model must implement gob encoding (all
// repository model types do); meta.Kind must be set. Returns the content
// id (SHA-256 of the envelope bytes). Concurrent publishers that must not
// clobber each other should use PutCAS instead.
func (s *Store) Put(name string, meta Meta, model any) (string, error) {
	if !validName(name) {
		return "", fmt.Errorf("modelstore: invalid ref name %q", name)
	}
	if meta.Kind == "" {
		return "", fmt.Errorf("modelstore: put %s: meta.Kind is empty", name)
	}
	id, blob, err := encodeObject(name, meta, model)
	if err != nil {
		return "", err
	}
	if err := writeAtomic(s.objectPath(id), blob); err != nil {
		return "", fmt.Errorf("modelstore: write object %s: %w", id[:12], err)
	}
	unlock, err := s.lockRef(name)
	if err != nil {
		return "", err
	}
	defer unlock()
	if err := s.writeRef(name, id, meta); err != nil {
		return "", err
	}
	return id, nil
}

// PutCAS stores a model under name with compare-and-swap ref semantics:
// the ref advances only if it still points at expectID ("" = the ref must
// not exist yet). When the ref moved underneath the writer the object is
// still stored (content-addressed, harmless) but the ref is left alone
// and a *RefMovedError is returned — so two publishers can never silently
// clobber each other's advance. Advancing a ref to the id it already
// holds succeeds regardless of expectID: the store is already in the
// requested state (this is what makes a crashed publisher's retry
// idempotent).
func (s *Store) PutCAS(name string, meta Meta, model any, expectID string) (string, error) {
	if !validName(name) {
		return "", fmt.Errorf("modelstore: invalid ref name %q", name)
	}
	if meta.Kind == "" {
		return "", fmt.Errorf("modelstore: put %s: meta.Kind is empty", name)
	}
	id, blob, err := encodeObject(name, meta, model)
	if err != nil {
		return "", err
	}
	if err := writeAtomic(s.objectPath(id), blob); err != nil {
		return "", fmt.Errorf("modelstore: write object %s: %w", id[:12], err)
	}
	unlock, err := s.lockRef(name)
	if err != nil {
		return "", err
	}
	defer unlock()
	current, err := s.currentRefID(name)
	if err != nil {
		return "", err
	}
	if current == id {
		return id, nil
	}
	if current != expectID {
		return "", &RefMovedError{Name: name, Expect: expectID, Found: current}
	}
	if err := s.writeRef(name, id, meta); err != nil {
		return "", err
	}
	return id, nil
}

// Resolve returns the id and metadata a ref name points at.
func (s *Store) Resolve(name string) (string, Meta, error) {
	if !validName(name) {
		return "", Meta{}, fmt.Errorf("modelstore: invalid ref name %q", name)
	}
	blob, err := os.ReadFile(filepath.Join(s.root, "refs", name))
	if err != nil {
		return "", Meta{}, fmt.Errorf("modelstore: ref %s: %w", name, err)
	}
	var r ref
	if err := json.Unmarshal(blob, &r); err != nil {
		return "", Meta{}, fmt.Errorf("modelstore: ref %s: %w", name, err)
	}
	if len(r.ID) != 64 {
		return "", Meta{}, fmt.Errorf("modelstore: ref %s: malformed id %q", name, r.ID)
	}
	return r.ID, r.Meta, nil
}

// get loads and validates the envelope for a ref name, checking the
// content hash, format version, and expected kind before any payload
// decoding.
func (s *Store) get(name, wantKind string) (*envelope, error) {
	id, _, err := s.Resolve(name)
	if err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(s.objectPath(id))
	if err != nil {
		return nil, fmt.Errorf("modelstore: object %s: %w", id[:12], err)
	}
	sum := sha256.Sum256(blob)
	if got := hex.EncodeToString(sum[:]); got != id {
		cerr := &CorruptObjectError{ID: id, GotHash: got}
		// move the damaged file out of the address space so a later Put of
		// the true artifact lands on a clean path; keep the bytes for
		// forensics rather than deleting evidence
		op := s.objectPath(id)
		if err := os.Rename(op, op+".corrupt"); err == nil {
			cerr.Quarantined = true
		}
		return nil, cerr
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&env); err != nil {
		return nil, fmt.Errorf("modelstore: decode object %s: %w", id[:12], err)
	}
	if env.Format != Format {
		return nil, fmt.Errorf("modelstore: object %s: format %d, this build reads %d (regenerate the store)",
			id[:12], env.Format, Format)
	}
	if env.Meta.Kind != wantKind {
		return nil, fmt.Errorf("modelstore: ref %s is a %s artifact, want %s", name, env.Meta.Kind, wantKind)
	}
	return &env, nil
}

// PutForecaster stores a trained forecaster.
func (s *Store) PutForecaster(name string, meta Meta, f *nn.Forecaster) (string, error) {
	meta.Kind = KindForecaster
	if meta.M == 0 || meta.K == 0 {
		return "", fmt.Errorf("modelstore: put %s: forecaster meta needs M and K", name)
	}
	return s.Put(name, meta, f)
}

// PutForecasterCAS is PutForecaster with PutCAS ref semantics.
func (s *Store) PutForecasterCAS(name string, meta Meta, f *nn.Forecaster, expectID string) (string, error) {
	meta.Kind = KindForecaster
	if meta.M == 0 || meta.K == 0 {
		return "", fmt.Errorf("modelstore: put %s: forecaster meta needs M and K", name)
	}
	return s.PutCAS(name, meta, f, expectID)
}

// GetForecaster loads a forecaster and validates its window shape against
// the stored schema.
func (s *Store) GetForecaster(name string) (*nn.Forecaster, Meta, error) {
	env, err := s.get(name, KindForecaster)
	if err != nil {
		return nil, Meta{}, err
	}
	var f nn.Forecaster
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&f); err != nil {
		return nil, Meta{}, fmt.Errorf("modelstore: decode forecaster %s: %w", name, err)
	}
	m, h := f.WindowShape()
	if m != env.Meta.M {
		return nil, Meta{}, fmt.Errorf("modelstore: forecaster %s: window length %d, meta says %d", name, m, env.Meta.M)
	}
	if n := len(env.Meta.FeatureNames); n != 0 && n != h {
		return nil, Meta{}, fmt.Errorf("modelstore: forecaster %s: %d features, schema names %d", name, h, n)
	}
	return &f, env.Meta, nil
}

// PutGBR stores a fitted boosted ensemble.
func (s *Store) PutGBR(name string, meta Meta, m *gbr.Model) (string, error) {
	meta.Kind = KindGBR
	return s.Put(name, meta, m)
}

// PutGBRCAS is PutGBR with PutCAS ref semantics.
func (s *Store) PutGBRCAS(name string, meta Meta, m *gbr.Model, expectID string) (string, error) {
	meta.Kind = KindGBR
	return s.PutCAS(name, meta, m, expectID)
}

// GetGBR loads a boosted ensemble.
func (s *Store) GetGBR(name string) (*gbr.Model, Meta, error) {
	env, err := s.get(name, KindGBR)
	if err != nil {
		return nil, Meta{}, err
	}
	var m gbr.Model
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&m); err != nil {
		return nil, Meta{}, fmt.Errorf("modelstore: decode gbr %s: %w", name, err)
	}
	if n := len(env.Meta.FeatureNames); n != 0 && len(m.Importance()) != 0 && n != len(m.Importance()) {
		return nil, Meta{}, fmt.Errorf("modelstore: gbr %s: %d importances, schema names %d", name, len(m.Importance()), n)
	}
	return &m, env.Meta, nil
}

// PutAdvisor stores a trained advisor.
func (s *Store) PutAdvisor(name string, meta Meta, a *advisor.Advisor) (string, error) {
	meta.Kind = KindAdvisor
	return s.Put(name, meta, a)
}

// PutAdvisorCAS is PutAdvisor with PutCAS ref semantics.
func (s *Store) PutAdvisorCAS(name string, meta Meta, a *advisor.Advisor, expectID string) (string, error) {
	meta.Kind = KindAdvisor
	return s.PutCAS(name, meta, a, expectID)
}

// GetAdvisor loads an advisor.
func (s *Store) GetAdvisor(name string) (*advisor.Advisor, Meta, error) {
	env, err := s.get(name, KindAdvisor)
	if err != nil {
		return nil, Meta{}, err
	}
	var a advisor.Advisor
	if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&a); err != nil {
		return nil, Meta{}, fmt.Errorf("modelstore: decode advisor %s: %w", name, err)
	}
	return &a, env.Meta, nil
}

// Entry is one row of List: a ref name with what it points at.
type Entry struct {
	Name string
	ID   string
	Meta Meta
}

// List returns every ref in the store, sorted by name.
func (s *Store) List() ([]Entry, error) {
	refDir := filepath.Join(s.root, "refs")
	var out []Entry
	err := filepath.WalkDir(refDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name, err := filepath.Rel(refDir, path)
		if err != nil {
			return err
		}
		name = filepath.ToSlash(name)
		// Skip transient writer droppings: per-ref CAS locks and the
		// writeAtomic temp files a concurrent publisher may have in flight.
		base := filepath.Base(path)
		if strings.HasSuffix(base, ".lock") || strings.Contains(base, ".tmp-") {
			return nil
		}
		id, meta, err := s.Resolve(name)
		if err != nil {
			return err
		}
		out = append(out, Entry{Name: name, ID: id, Meta: meta})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("modelstore: list: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Has reports whether a ref exists and resolves cleanly.
func (s *Store) Has(name string) bool {
	_, _, err := s.Resolve(name)
	return err == nil
}
