package modelstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
)

func trainTinyForecaster(t *testing.T) (*nn.Forecaster, []nn.Sample) {
	t.Helper()
	s := rng.New(3)
	samples := make([]nn.Sample, 60)
	for i := range samples {
		steps := make([][]float64, 5)
		for st := range steps {
			row := make([]float64, 3)
			for j := range row {
				row[j] = s.Float64() * 4
			}
			steps[st] = row
		}
		samples[i] = nn.Sample{Steps: steps, Target: 10 + steps[4][0]*2}
	}
	return nn.Train(samples, nn.Config{Epochs: 3}, s), samples
}

func trainTinyGBR(t *testing.T) (*gbr.Model, *linalg.Matrix) {
	t.Helper()
	s := rng.New(4)
	x := linalg.NewMatrix(200, 3)
	y := make([]float64, 200)
	for i := 0; i < 200; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, s.Float64())
		}
		y[i] = 3*x.At(i, 0) + x.At(i, 1)
	}
	return gbr.Fit(x, y, nil, nil, gbr.Options{NumTrees: 10}, s), x
}

func TestForecasterRoundTripThroughStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, samples := trainTinyForecaster(t)
	meta := Meta{Dataset: "AMG-128", Seed: 42, Spec: "m=5 k=2 app", M: 5, K: 2,
		FeatureNames: []string{"a", "b", "c"}}
	id, err := st.PutForecaster("forecast/AMG-128/m5k2/app", meta, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(id) != 64 {
		t.Fatalf("id %q is not a sha256 hex digest", id)
	}
	back, gotMeta, err := st.GetForecaster("forecast/AMG-128/m5k2/app")
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Kind != KindForecaster || gotMeta.Dataset != "AMG-128" || gotMeta.M != 5 {
		t.Fatalf("meta did not round trip: %+v", gotMeta)
	}
	want, got := f.PredictAll(samples), back.PredictAll(samples)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: stored model predicts %v, in-memory %v", i, got[i], want[i])
		}
	}
}

// TestPutIsDeterministic: same model + same meta → same content id, the
// content-addressing extension of the determinism contract.
func TestPutIsDeterministic(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, _ := trainTinyForecaster(t)
	meta := Meta{Dataset: "AMG-128", Seed: 42, M: 5, K: 2}
	id1, err := st.PutForecaster("a", meta, f)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := st.PutForecaster("b", meta, f)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("same artifact stored under two names got two ids: %s != %s", id1[:12], id2[:12])
	}
}

func TestGBRRoundTripThroughStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, x := trainTinyGBR(t)
	if _, err := st.PutGBR("deviation/AMG-128", Meta{Dataset: "AMG-128", Seed: 42,
		FeatureNames: []string{"f0", "f1", "f2"}}, m); err != nil {
		t.Fatal(err)
	}
	back, _, err := st.GetGBR("deviation/AMG-128")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		if back.Predict(x.Row(i)) != m.Predict(x.Row(i)) {
			t.Fatalf("row %d: stored model diverges", i)
		}
	}
}

func TestKindMismatchRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainTinyGBR(t)
	if _, err := st.PutGBR("thing", Meta{Seed: 1}, m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.GetForecaster("thing"); err == nil ||
		!strings.Contains(err.Error(), "gbr artifact") {
		t.Fatalf("loading a gbr ref as forecaster: err = %v, want kind mismatch", err)
	}
}

func TestCorruptObjectDetected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainTinyGBR(t)
	id, err := st.PutGBR("thing", Meta{Seed: 1}, m)
	if err != nil {
		t.Fatal(err)
	}
	// flip one byte of the stored object
	path := filepath.Join(dir, "objects", id[:2], id+".gob")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = st.GetGBR("thing")
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("corrupt object load: err = %v, want hash mismatch", err)
	}
	var cerr *CorruptObjectError
	if !errors.As(err, &cerr) {
		t.Fatalf("corrupt object load: err = %T, want *CorruptObjectError", err)
	}
	if cerr.ID != id || !cerr.Quarantined {
		t.Fatalf("CorruptObjectError = %+v, want ID %.12s… and Quarantined", cerr, id)
	}
	// the damaged file must be moved aside, not left on the content address
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt object still at its content address: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("quarantined .corrupt file missing: %v", err)
	}
	// with the address free again, re-putting the artifact heals the store
	if _, err := st.PutGBR("thing", Meta{Seed: 1}, m); err != nil {
		t.Fatalf("re-put after quarantine: %v", err)
	}
	if _, _, err := st.GetGBR("thing"); err != nil {
		t.Fatalf("load after heal: %v", err)
	}
}

func TestInvalidRefNamesRejected(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainTinyGBR(t)
	for _, name := range []string{"", "..", "a/../b", "a//b", "a b", "/abs"} {
		if _, err := st.PutGBR(name, Meta{Seed: 1}, m); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestListAndRepoint(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainTinyGBR(t)
	if _, err := st.PutGBR("deviation/AMG-128", Meta{Seed: 1}, m); err != nil {
		t.Fatal(err)
	}
	id2, err := st.PutGBR("deviation/AMG-128", Meta{Seed: 2}, m)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries after repoint, want 1", len(entries))
	}
	if entries[0].ID != id2 || entries[0].Meta.Seed != 2 {
		t.Fatalf("ref did not repoint: %+v", entries[0])
	}
	if !st.Has("deviation/AMG-128") || st.Has("deviation/missing") {
		t.Fatal("Has is wrong")
	}
}
