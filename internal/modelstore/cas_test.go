package modelstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
)

// tinyGBRSeed fits a small model whose content varies with the seed, so
// concurrent writers publish distinct objects.
func tinyGBRSeed(seed int64) *gbr.Model {
	s := rng.New(seed)
	x := linalg.NewMatrix(80, 3)
	y := make([]float64, 80)
	for i := 0; i < 80; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, s.Float64())
		}
		y[i] = 3*x.At(i, 0) + x.At(i, 1)
	}
	return gbr.Fit(x, y, nil, nil, gbr.Options{NumTrees: 5}, s)
}

func TestPutCASBasics(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainTinyGBR(t)

	// First publish: the ref must not exist yet, expect "".
	id1, err := st.PutGBRCAS("deviation/TEST", Meta{Seed: 1}, m, "")
	if err != nil {
		t.Fatal(err)
	}
	// Stale expect ("" again) is refused now that the ref exists...
	m2 := tinyGBRSeed(9) // different training seed, different content
	if _, err := st.PutGBRCAS("deviation/TEST", Meta{Seed: 2}, m2, ""); err == nil {
		t.Fatal("stale CAS publish succeeded, want RefMovedError")
	} else {
		var moved *RefMovedError
		if !errors.As(err, &moved) {
			t.Fatalf("stale CAS error = %v, want RefMovedError", err)
		}
		if moved.Found != id1 {
			t.Fatalf("RefMovedError.Found = %s, want %s", moved.Found, id1)
		}
	}
	// ...but the correct expect advances the ref.
	id2, err := st.PutGBRCAS("deviation/TEST", Meta{Seed: 2}, m2, id1)
	if err != nil {
		t.Fatal(err)
	}
	if cur, _, err := st.Resolve("deviation/TEST"); err != nil || cur != id2 {
		t.Fatalf("ref = %s (%v), want %s", cur, err, id2)
	}

	// Republishing the identical model with a stale expect is a success:
	// the ref already points at the content being published (the
	// crashed-publisher retry case).
	if id, err := st.PutGBRCAS("deviation/TEST", Meta{Seed: 2}, m2, "bogus"); err != nil || id != id2 {
		t.Fatalf("idempotent republish = %s, %v; want %s, nil", id, err, id2)
	}
}

func TestPutCASConcurrentPublishers(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := trainTinyGBR(t)
	baseID, err := st.PutGBRCAS("deviation/RACE", Meta{Seed: 1}, base, "")
	if err != nil {
		t.Fatal(err)
	}

	// N writers race to advance the same ref from the same snapshot:
	// exactly one CAS may win, the rest must see RefMovedError. No
	// torn refs, no silent clobbers.
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := tinyGBRSeed(int64(100 + i)) // distinct content per writer
			_, errs[i] = st.PutGBRCAS("deviation/RACE", Meta{Seed: int64(i)}, m, baseID)
		}(i)
	}
	wg.Wait()

	won := 0
	for i, err := range errs {
		switch {
		case err == nil:
			won++
		default:
			var moved *RefMovedError
			if !errors.As(err, &moved) {
				t.Fatalf("writer %d: %v, want RefMovedError", i, err)
			}
		}
	}
	if won != 1 {
		t.Fatalf("%d writers won the CAS, want exactly 1 (errs: %v)", won, errs)
	}
	// The ref moved off the base and resolves to a valid object.
	cur, _, err := st.Resolve("deviation/RACE")
	if err != nil {
		t.Fatal(err)
	}
	if cur == baseID {
		t.Fatal("ref still at base id after a winning CAS")
	}
	if _, _, err := st.GetGBR("deviation/RACE"); err != nil {
		t.Fatalf("winning ref unreadable: %v", err)
	}
}

func TestListSkipsLockFiles(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainTinyGBR(t)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("deviation/DS-%d", i)
		if _, err := st.PutGBR(name, Meta{Seed: int64(i)}, m); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List = %d entries, want 3", len(entries))
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name, ".lock") {
			t.Fatalf("List leaked lock file %q", e.Name)
		}
	}
}
