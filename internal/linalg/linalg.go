// Package linalg provides the small dense linear-algebra kernels used by the
// machine-learning stack (gradient boosted trees, the attention forecaster)
// and by the statistics helpers. Matrices are dense, row-major float64.
//
// The package deliberately implements only what the repository needs; it is
// not a general BLAS. All routines are allocation-conscious: the hot paths
// (MatVec, MatMul, Axpy) write into caller-provided destinations.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into dst (allocated if nil) and returns it.
func (m *Matrix) Col(j int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float64) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// AddInPlace adds other element-wise into m.
func (m *Matrix) AddInPlace(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: AddInPlace shape mismatch")
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// MatVec computes dst = m * x. dst must have length m.Rows (allocated if
// nil) and must not alias x.
func (m *Matrix) MatVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MatVec dim mismatch: x has %d, want %d", len(x), m.Cols))
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// MatVecT computes dst = mᵀ * x (x has length m.Rows, dst m.Cols).
func (m *Matrix) MatVecT(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: MatVecT dim mismatch: x has %d, want %d", len(x), m.Rows))
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
	return dst
}

// MatMul computes dst = a * b; dst is allocated if nil and must not alias
// a or b.
func MatMul(a, b, dst *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == nil {
		dst = NewMatrix(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("linalg: MatMul dst shape mismatch")
		}
		dst.Fill(0)
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
	return dst
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// ArgMax returns the index of the maximum element (first on ties); -1 for
// an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the minimum element (first on ties); -1 for
// an empty slice.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// Softmax writes the softmax of x into dst (allocated if nil) using the
// max-subtraction trick for numerical stability.
func Softmax(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(x))
	}
	if len(x) == 0 {
		return dst
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}
