package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set roundtrip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("fresh matrix not zeroed")
	}
}

func TestFromRowsAndRow(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	// Row aliases storage
	r[0] = 30
	if m.At(1, 0) != 30 {
		t.Fatal("Row should alias matrix storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestCol(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1, nil)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v", c)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MatVec([]float64{1, 1}, nil)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MatVec = %v", y)
	}
}

func TestMatVecT(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MatVecT([]float64{1, 1}, nil)
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("MatVecT = %v", y)
	}
}

func TestMatMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b, nil)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulTransposeProperty(t *testing.T) {
	// (AB)ᵀ == BᵀAᵀ for random small matrices
	f := func(vals [6]float64, vals2 [6]float64) bool {
		// clamp to a sane range so products cannot overflow to ±Inf
		for i := range vals {
			vals[i] = math.Mod(vals[i], 1e3)
			vals2[i] = math.Mod(vals2[i], 1e3)
			if math.IsNaN(vals[i]) {
				vals[i] = 0
			}
			if math.IsNaN(vals2[i]) {
				vals2[i] = 0
			}
		}
		a := &Matrix{Rows: 2, Cols: 3, Data: vals[:]}
		b := &Matrix{Rows: 3, Cols: 2, Data: vals2[:]}
		left := MatMul(a, b, nil).T()
		right := MatMul(b.T(), a.T(), nil)
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDotAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != 9 || y[2] != 12 {
		t.Fatalf("Axpy result = %v", y)
	}
}

func TestNorm2(t *testing.T) {
	if !almostEq(Norm2([]float64{3, 4}), 5) {
		t.Fatal("Norm2 of 3-4-5 triangle wrong")
	}
}

func TestArgMaxArgMin(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5}
	if ArgMax(x) != 4 {
		t.Fatalf("ArgMax = %d", ArgMax(x))
	}
	if ArgMin(x) != 1 {
		t.Fatalf("ArgMin = %d", ArgMin(x))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty slice should return -1")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	x := []float64{1, 2, 3}
	s := Softmax(x, nil)
	var sum float64
	for _, v := range s {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax element out of (0,1): %v", v)
		}
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Fatalf("softmax does not sum to 1: %v", sum)
	}
	if !(s[2] > s[1] && s[1] > s[0]) {
		t.Fatal("softmax not monotone in input")
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(a, b, c, shift float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(shift) {
			return true
		}
		// constrain magnitudes to avoid overflow-driven NaN comparisons
		clamp := func(v float64) float64 { return math.Mod(v, 50) }
		a, b, c, shift = clamp(a), clamp(b), clamp(c), clamp(shift)
		s1 := Softmax([]float64{a, b, c}, nil)
		s2 := Softmax([]float64{a + shift, b + shift, c + shift}, nil)
		for i := range s1 {
			if math.Abs(s1[i]-s2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	s := Softmax([]float64{1000, 1001, 1002}, nil)
	for _, v := range s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable for large inputs: %v", s)
		}
	}
}

func TestScaleAndFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale failed")
	}
	m.Fill(7)
	for _, v := range m.Data {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
}

func TestAddInPlace(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{10, 20}})
	a.AddInPlace(b)
	if a.At(0, 0) != 11 || a.At(0, 1) != 22 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
}

func TestMatVecDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	NewMatrix(2, 3).MatVec([]float64{1, 2}, nil)
}
