package sigctx

import (
	"context"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// stubExit replaces the process-exit hook for one test, returning a
// counter of calls and the last code. Restored on cleanup.
func stubExit(t *testing.T) (*atomic.Int64, *atomic.Int64) {
	t.Helper()
	var calls, code atomic.Int64
	exitMu.Lock()
	prev := exitFn
	exitFn = func(c int) {
		calls.Add(1)
		code.Store(int64(c))
	}
	exitMu.Unlock()
	t.Cleanup(func() {
		exitMu.Lock()
		exitFn = prev
		exitMu.Unlock()
	})
	return &calls, &code
}

// raise sends sig to our own process; the registered handler picks it up.
func raise(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), sig); err != nil {
		t.Fatal(err)
	}
}

func TestFirstSignalCancels(t *testing.T) {
	stubExit(t) // a stray second delivery must not kill the test binary
	ctx, stop := WithShutdown(context.Background())
	defer stop()

	raise(t, syscall.SIGTERM)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled by SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
	}
}

func TestSecondSignalForcesExit(t *testing.T) {
	calls, code := stubExit(t)
	ctx, stop := WithShutdown(context.Background())
	defer stop()

	raise(t, syscall.SIGTERM)
	<-ctx.Done()
	raise(t, syscall.SIGTERM)

	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second signal did not force an exit")
		}
		time.Sleep(time.Millisecond)
	}
	if got := code.Load(); got != forcedExitCode {
		t.Fatalf("forced exit code = %d, want %d", got, forcedExitCode)
	}
}

// TestConcurrentSignalsCancelOnce storms the handler from many goroutines:
// the context must cancel exactly once (no panic, no double close) and the
// test must stay race-clean under -race.
func TestConcurrentSignalsCancelOnce(t *testing.T) {
	stubExit(t)
	ctx, stop := WithShutdown(context.Background())
	defer stop()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raise(t, syscall.SIGTERM)
		}()
	}
	wg.Wait()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled under concurrent signals")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want Canceled", ctx.Err())
	}
	// stop is idempotent and safe concurrently with late deliveries
	var sg sync.WaitGroup
	for i := 0; i < 4; i++ {
		sg.Add(1)
		go func() {
			defer sg.Done()
			stop()
		}()
	}
	sg.Wait()
}

// TestStopRestoresDefault: after stop, the handler goroutine is gone and a
// fresh WithShutdown starts from a clean slate (the previous registration
// does not leak cancellations into the new context).
func TestStopRestoresDefault(t *testing.T) {
	stubExit(t)
	_, stop := WithShutdown(context.Background())
	stop()

	ctx2, stop2 := WithShutdown(context.Background())
	defer stop2()
	select {
	case <-ctx2.Done():
		t.Fatal("fresh context cancelled without a signal")
	case <-time.After(50 * time.Millisecond):
	}
}
