// Package sigctx centralizes the shutdown-signal contract shared by every
// command in the repository: the first SIGINT or SIGTERM cancels the
// returned context for a graceful shutdown (campaigns flush partial
// caches, daemons drain in-flight requests), and a second signal kills
// the process the default way.
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// WithShutdown derives a context that is cancelled on the first
// SIGINT/SIGTERM. The returned stop releases the signal registration —
// defer it so a second signal after cancellation (or any signal after a
// clean exit) terminates the process immediately instead of being
// swallowed.
func WithShutdown(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
