// Package sigctx centralizes the shutdown-signal contract shared by every
// command in the repository: the first SIGINT or SIGTERM cancels the
// returned context for a graceful shutdown (campaigns flush partial
// caches, daemons drain in-flight requests, distributed workers finish
// their in-flight unit), and a second signal force-exits the process —
// an operator pressing Ctrl-C twice means "now", not "whenever the drain
// finishes".
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// forcedExitCode is what the process exits with on the second signal:
// 128+SIGINT, the convention shells use for signal-terminated commands.
const forcedExitCode = 130

// exitFn is swapped out by tests so the second-signal path can be
// exercised without killing the test process. Guarded by exitMu.
var (
	exitMu sync.Mutex
	exitFn func(int) = os.Exit
)

func exit(code int) {
	exitMu.Lock()
	fn := exitFn
	exitMu.Unlock()
	fn(code)
}

// WithShutdown derives a context that is cancelled exactly once on the
// first SIGINT/SIGTERM; a second signal force-exits the process with
// status 130. The returned stop releases the signal registration (defer
// it) — after stop, signals regain their default process-killing
// behavior.
func WithShutdown(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	stopped := make(chan struct{})
	go func() {
		select {
		case <-ch:
			cancel()
		case <-stopped:
			return
		}
		select {
		case <-ch:
			// the graceful path already ran once; the operator wants out
			// now. The registration stays in place: exit does not return,
			// and dropping it early would let a third signal race the exit
			// with default-action process death.
			exit(forcedExitCode)
		case <-stopped:
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(ch)
			close(stopped)
			cancel()
		})
	}
	return ctx, stop
}
