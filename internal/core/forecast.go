package core

import (
	"context"
	"fmt"

	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/engine"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
)

// ForecastSpec names one forecasting experiment: predict the total time of
// the next K steps from the features of the last M steps, using the given
// feature groups (the legends of Figures 8 and 10).
type ForecastSpec struct {
	M, K     int
	Features counters.FeatureSet
}

// String renders "m=30 k=40 app + placement + io".
func (s ForecastSpec) String() string {
	return fmt.Sprintf("m=%d k=%d %s", s.M, s.K, s.Features)
}

// ForecastOptions parameterizes training and evaluation.
type ForecastOptions struct {
	Folds int       // cross-validation folds over runs; default 4
	NN    nn.Config // zero value uses campaign-tuned defaults
	// Gaps selects how windows treat steps lost to sampler dropouts:
	// dataset.GapImpute (default) interpolates, dataset.GapSkip drops
	// affected windows.
	Gaps dataset.GapPolicy
	// Workers is the number of CV folds trained concurrently (0 means
	// engine.Workers). Fold results merge in fold order, so the reported
	// MAPE is identical at every worker count.
	Workers int
}

func (o ForecastOptions) withDefaults() ForecastOptions {
	if o.Folds <= 0 {
		o.Folds = 4
	}
	if o.NN.Epochs == 0 {
		o.NN = nn.Config{
			EmbedDim:     8,
			HiddenDim:    16,
			Epochs:       35,
			BatchSize:    16,
			LearningRate: 0.01,
			UseAttention: true,
			MaxSamples:   1200,
		}
	}
	return o
}

// ForecastResult is the cross-validated error of one spec on one dataset
// — one bar of Figure 8 or 10.
type ForecastResult struct {
	Dataset string
	Spec    ForecastSpec
	MAPE    float64
	Windows int
	// GapFraction is the dataset's share of dropped-out observations; the
	// window builder imputed or skipped them per ForecastOptions.Gaps.
	GapFraction float64
}

// Forecast trains and evaluates the attention forecaster with
// cross-validation over runs: windows of held-out runs are never seen in
// training, mirroring the paper's splits.
func Forecast(ds *dataset.Dataset, spec ForecastSpec, opt ForecastOptions, seed int64) ForecastResult {
	_, span := telemetry.Start(context.Background(), telemetry.SpanMLForecast)
	defer span.End()
	opt = opt.withDefaults()
	s := rng.NewLabeled(seed, "forecast-"+ds.Name+"-"+spec.String())
	windows := ds.BuildWindowsGap(spec.Features, spec.M, spec.K, opt.Gaps)
	if len(windows) == 0 {
		return ForecastResult{Dataset: ds.Name, Spec: spec, MAPE: -1, GapFraction: ds.GapFraction()}
	}

	// group windows by run for run-level folds
	byRun := map[int][]nn.Sample{}
	for _, w := range windows {
		byRun[w.RunIdx] = append(byRun[w.RunIdx], nn.Sample{Steps: w.Steps, Target: w.Target})
	}
	runIdxs := make([]int, 0, len(byRun))
	for ri := range byRun {
		runIdxs = append(runIdxs, ri)
	}
	// map iteration order must not matter: sort
	for i := 1; i < len(runIdxs); i++ {
		for j := i; j > 0 && runIdxs[j] < runIdxs[j-1]; j-- {
			runIdxs[j], runIdxs[j-1] = runIdxs[j-1], runIdxs[j]
		}
	}

	// train the folds concurrently; each fold's stream is split from the
	// parent by fold index, and MAPEs are summed in fold order afterwards,
	// so the result is identical at every worker count
	type foldMAPE struct {
		mape float64
		ok   bool
	}
	splits := dataset.KFoldSplits(len(runIdxs), opt.Folds, s.Split("folds"))
	out, _ := engine.MapOrdered(context.Background(), opt.Workers, len(splits),
		func(_ context.Context, fold int) (foldMAPE, error) {
			var trainSamples, testSamples []nn.Sample
			for _, i := range splits[fold].Train {
				trainSamples = append(trainSamples, byRun[runIdxs[i]]...)
			}
			for _, i := range splits[fold].Test {
				testSamples = append(testSamples, byRun[runIdxs[i]]...)
			}
			if len(trainSamples) == 0 || len(testSamples) == 0 {
				return foldMAPE{}, nil
			}
			model := nn.Train(trainSamples, opt.NN, s.Split(fmt.Sprintf("fold-%d", fold)))
			return foldMAPE{mape: model.MAPE(testSamples), ok: true}, nil
		})
	var mapeSum float64
	var folds int
	for _, f := range out {
		if f.ok {
			mapeSum += f.mape
			folds++
		}
	}
	res := ForecastResult{Dataset: ds.Name, Spec: spec, Windows: len(windows),
		GapFraction: ds.GapFraction()}
	if folds > 0 {
		res.MAPE = mapeSum / float64(folds)
	}
	return res
}

// ForecastImportances trains one model on 3/4 of the runs and returns
// permutation importances on the held-out quarter — one group of bars of
// Figure 11. The returned names parallel the importance values.
func ForecastImportances(ds *dataset.Dataset, spec ForecastSpec, opt ForecastOptions, seed int64) (names []string, importance []float64) {
	_, span := telemetry.Start(context.Background(), telemetry.SpanMLImportances)
	defer span.End()
	opt = opt.withDefaults()
	s := rng.NewLabeled(seed, "fimp-"+ds.Name+"-"+spec.String())
	windows := ds.BuildWindowsGap(spec.Features, spec.M, spec.K, opt.Gaps)
	if len(windows) == 0 {
		return spec.Features.Names(), nil
	}
	nRuns := len(ds.Runs)
	cut := nRuns * 3 / 4
	perm := s.Split("runsplit").Perm(nRuns)
	trainRun := map[int]bool{}
	for _, ri := range perm[:cut] {
		trainRun[ri] = true
	}
	var train, test []nn.Sample
	for _, w := range windows {
		smp := nn.Sample{Steps: w.Steps, Target: w.Target}
		if trainRun[w.RunIdx] {
			train = append(train, smp)
		} else {
			test = append(test, smp)
		}
	}
	if len(train) == 0 || len(test) == 0 {
		return spec.Features.Names(), nil
	}
	model := nn.Train(train, opt.NN, s.Split("train"))
	return spec.Features.Names(), model.PermutationImportance(test, s.Split("perm"))
}

// SegmentForecast is one point of Figure 12: a 40-step segment of a long
// run with its observed and predicted total time.
type SegmentForecast struct {
	StartStep int
	Observed  float64
	Predicted float64
}

// ForecastLongRun trains a forecaster on the campaign dataset (none of the
// long run's data) and predicts the long run segment by segment: each
// segment of spec.K steps is predicted from the spec.M steps before it.
func ForecastLongRun(trainDS *dataset.Dataset, longRun *dataset.Run, spec ForecastSpec, opt ForecastOptions, seed int64) []SegmentForecast {
	_, span := telemetry.Start(context.Background(), telemetry.SpanMLForecastLong)
	defer span.End()
	opt = opt.withDefaults()
	s := rng.NewLabeled(seed, "flong-"+trainDS.Name)
	windows := trainDS.BuildWindowsGap(spec.Features, spec.M, spec.K, opt.Gaps)
	train := make([]nn.Sample, len(windows))
	for i, w := range windows {
		train[i] = nn.Sample{Steps: w.Steps, Target: w.Target}
	}
	model := nn.Train(train, opt.NN, s.Split("train"))

	var out []SegmentForecast
	for start := spec.M; start+spec.K <= longRun.Steps(); start += spec.K {
		steps := make([][]float64, spec.M)
		for i := 0; i < spec.M; i++ {
			steps[i] = longRun.FeatureVector(start-spec.M+i, spec.Features, nil)
		}
		var obs float64
		for i := start; i < start+spec.K; i++ {
			obs += longRun.StepTimes[i]
		}
		out = append(out, SegmentForecast{
			StartStep: start,
			Observed:  obs,
			Predicted: model.Predict(steps),
		})
	}
	return out
}

// SegmentMAPE summarizes a long-run forecast series.
func SegmentMAPE(segs []SegmentForecast) float64 {
	pred := make([]float64, len(segs))
	obs := make([]float64, len(segs))
	for i, sg := range segs {
		pred[i] = sg.Predicted
		obs[i] = sg.Observed
	}
	return stats.MAPE(pred, obs)
}
