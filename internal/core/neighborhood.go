// Package core implements the paper's analysis methodology (§IV) on top of
// the campaign datasets: the mutual-information neighborhood analysis that
// assigns blame for slowdowns to concurrently running users (Table III),
// the GBR+RFE deviation models that rank hardware counters by their power
// to predict per-step deviations from mean behaviour (Figure 9), and the
// attention-based forecaster that predicts the aggregate time of future
// steps (Figures 8, 10, 11, 12).
package core

import (
	"sort"

	"dragonvar/internal/dataset"
	"dragonvar/internal/stats"
)

// UserScore is one user's dependence on a dataset's run optimality.
type UserScore struct {
	User    string
	MI      float64 // mutual information with optimality (nats)
	Present int     // number of runs the user overlapped
}

// NeighborhoodResult ranks a dataset's neighbors by mutual information.
type NeighborhoodResult struct {
	Dataset string
	Runs    int
	Optimal int // runs marked optimal at the given τ
	Users   []UserScore
}

// NeighborhoodOptions parameterizes the analysis of §IV-A.
type NeighborhoodOptions struct {
	// MinNodes qualifies a neighbor: only users with at least one
	// overlapping job of this size are considered (paper: 128).
	MinNodes int
	// Tau marks run r optimal when t_r < τ·t_m (paper: τ = 1).
	Tau float64
	// TopK bounds each dataset's high-MI list (paper lists have 3–9).
	TopK int
}

func (o NeighborhoodOptions) withDefaults() NeighborhoodOptions {
	if o.MinNodes <= 0 {
		o.MinNodes = 128
	}
	if o.Tau <= 0 {
		o.Tau = 1
	}
	if o.TopK <= 0 {
		o.TopK = 9
	}
	return o
}

// AnalyzeNeighborhood computes, for one dataset, the mutual information
// between each qualified user's presence and run optimality, ranked
// descending.
func AnalyzeNeighborhood(ds *dataset.Dataset, opt NeighborhoodOptions) NeighborhoodResult {
	opt = opt.withDefaults()
	res := NeighborhoodResult{Dataset: ds.Name, Runs: len(ds.Runs)}
	users, m := ds.Cooccurrence(opt.MinNodes)
	optimal := ds.Optimality(opt.Tau)
	for _, v := range optimal {
		if v {
			res.Optimal++
		}
	}
	for ui, name := range users {
		col := make([]bool, len(ds.Runs))
		present := 0
		for ri := range ds.Runs {
			col[ri] = m[ri][ui]
			if col[ri] {
				present++
			}
		}
		// a user present in every run (or none) carries no information
		mi := stats.MutualInformationBinary(col, optimal)
		res.Users = append(res.Users, UserScore{User: name, MI: mi, Present: present})
	}
	sort.Slice(res.Users, func(i, j int) bool {
		if res.Users[i].MI != res.Users[j].MI {
			return res.Users[i].MI > res.Users[j].MI
		}
		return res.Users[i].User < res.Users[j].User
	})
	return res
}

// TopUsers returns the dataset's high-MI list: the top-K users with
// strictly positive MI.
func (r NeighborhoodResult) TopUsers(k int) []string {
	var out []string
	for _, u := range r.Users {
		if len(out) >= k || u.MI <= 0 {
			break
		}
		out = append(out, u.User)
	}
	return out
}

// Table3Row is one row of Table III: the dataset and its highly correlated
// users (restricted to users appearing in more than one dataset's list).
type Table3Row struct {
	Dataset string
	Nodes   int
	Users   []string
}

// Table3 reproduces Table III: per dataset, the high-MI users that appear
// in at least two datasets' lists. The second return value maps each such
// user to the number of lists it appears in (the paper's "Users 2, 8 and
// 11 appear in four lists" observation).
func Table3(camp *dataset.Campaign, opt NeighborhoodOptions) ([]Table3Row, map[string]int) {
	opt = opt.withDefaults()
	lists := make([][]string, len(camp.Datasets))
	counts := map[string]int{}
	for i, ds := range camp.Datasets {
		lists[i] = AnalyzeNeighborhood(ds, opt).TopUsers(opt.TopK)
		for _, u := range lists[i] {
			counts[u]++
		}
	}
	recurring := map[string]int{}
	for u, c := range counts {
		if c >= 2 {
			recurring[u] = c
		}
	}
	rows := make([]Table3Row, len(camp.Datasets))
	for i, ds := range camp.Datasets {
		rows[i] = Table3Row{Dataset: ds.App, Nodes: ds.Nodes}
		for _, u := range lists[i] {
			if recurring[u] > 0 {
				rows[i].Users = append(rows[i].Users, u)
			}
		}
		sortUsersNumeric(rows[i].Users)
	}
	return rows, recurring
}

// sortUsersNumeric orders "User-<n>" names by n, like the paper's table.
func sortUsersNumeric(users []string) {
	num := func(s string) int {
		n := 0
		for i := len("User-"); i < len(s); i++ {
			n = n*10 + int(s[i]-'0')
		}
		return n
	}
	sort.Slice(users, func(i, j int) bool { return num(users[i]) < num(users[j]) })
}
