package core

import (
	"context"

	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/rfe"
	"dragonvar/internal/rng"
	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/tree"
)

// DeviationOptions parameterizes the per-step deviation analysis of §IV-B.
type DeviationOptions struct {
	// Folds is the cross-validation fold count (paper: 10).
	Folds int
	// MaxSamples caps the (run, step) sample count fed to RFE; the full
	// N·T set is subsampled deterministically beyond it. 0 = no cap.
	MaxSamples int
	// GBR overrides the boosted-model hyperparameters; zero value uses
	// defaults tuned for the campaign datasets.
	GBR gbr.Options
	// Workers is the number of RFE folds run concurrently (0 means
	// engine.Workers); passed through to rfe.Options.
	Workers int
}

func (o DeviationOptions) withDefaults() DeviationOptions {
	if o.Folds <= 0 {
		o.Folds = 10
	}
	if o.MaxSamples == 0 {
		o.MaxSamples = 3000
	}
	if o.GBR.NumTrees == 0 {
		o.GBR = gbr.Options{NumTrees: 40, LearningRate: 0.1, Subsample: 0.7,
			Tree: tree.Options{MaxDepth: 3, MinSamplesLeaf: 8}}
	}
	return o
}

// DeviationResult is one dataset's outcome: the relevance score of each of
// the 13 counters in predicting deviation from mean behaviour (one group
// of bars in Figure 9), and the out-of-fold MAPE of the full model on
// absolute step times (§V-B reports < 5%).
type DeviationResult struct {
	Dataset      string
	FeatureNames []string
	Relevance    []float64
	MAPE         float64
	Samples      int
	// GapFraction is the share of (run, step) observations lost to sampler
	// dropouts; those samples are excluded before fitting.
	GapFraction float64
}

// AnalyzeDeviation runs the GBR + RFE pipeline on one dataset.
func AnalyzeDeviation(ds *dataset.Dataset, opt DeviationOptions, seed int64) DeviationResult {
	_, span := telemetry.Start(context.Background(), telemetry.SpanMLDeviation)
	defer span.End()
	opt = opt.withDefaults()
	names := make([]string, counters.NumJob)
	for i := 0; i < counters.NumJob; i++ {
		names[i] = counters.Table[i].Abbrev
	}
	if len(ds.Runs) == 0 || ds.Steps() == 0 {
		// nothing to analyze: MAPE -1 is the "no data" sentinel
		return DeviationResult{Dataset: ds.Name, FeatureNames: names,
			Relevance: make([]float64, counters.NumJob), MAPE: -1}
	}
	x, y, stepMean, stepOf := ds.DeviationSamples()
	if x.Rows == 0 {
		// every sample lost to dropouts
		return DeviationResult{Dataset: ds.Name, FeatureNames: names,
			Relevance: make([]float64, counters.NumJob), MAPE: -1,
			GapFraction: ds.GapFraction()}
	}

	s := rng.NewLabeled(seed, "deviation-"+ds.Name)
	// deterministic subsample of the (run, step) samples
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	if opt.MaxSamples > 0 && len(idx) > opt.MaxSamples {
		s.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:opt.MaxSamples]
	}
	xs := linalg.NewMatrix(len(idx), x.Cols)
	ys := make([]float64, len(idx))
	for k, i := range idx {
		copy(xs.Row(k), x.Row(i))
		ys[k] = y[i]
	}

	res := rfe.Run(xs, ys, rfe.Options{Folds: opt.Folds, GBR: opt.GBR, Workers: opt.Workers}, s.Split("rfe"))

	// MAPE on reconstructed absolute step times: prediction = deviation
	// prediction + the step's mean trend
	pred := make([]float64, len(idx))
	obs := make([]float64, len(idx))
	for k, i := range idx {
		step := stepOf[i]
		pred[k] = res.OOFPred[k] + stepMean[step]
		obs[k] = y[i] + stepMean[step]
	}

	return DeviationResult{
		Dataset:      ds.Name,
		FeatureNames: names,
		Relevance:    res.Relevance,
		MAPE:         stats.MAPE(pred, obs),
		Samples:      len(idx),
		GapFraction:  ds.GapFraction(),
	}
}

// TopCounter returns the name of the most relevant counter.
func (r DeviationResult) TopCounter() string {
	best := 0
	for i := 1; i < len(r.Relevance); i++ {
		if r.Relevance[i] > r.Relevance[best] {
			best = i
		}
	}
	return r.FeatureNames[best]
}
