package core

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/netsim"
	"dragonvar/internal/nn"
	"dragonvar/internal/topology"
)

// testCampaign generates (once) a small campaign shared by the package's
// tests: Small machine, 8 days, shortened AMG/MILC models.
var (
	campOnce sync.Once
	campVal  *dataset.Campaign
	clustVal *cluster.Cluster
)

func testCampaign(t *testing.T) (*dataset.Campaign, *cluster.Cluster) {
	t.Helper()
	campOnce.Do(func() {
		amg := *apps.Find(apps.AMG, 128)
		amg.Steps = 12
		milc := *apps.Find(apps.MILC, 128)
		milc.Steps = 32
		c, err := cluster.New(cluster.Config{
			Machine:        topology.Small(),
			Net:            netsim.DefaultConfig(),
			Days:           8,
			Seed:           7,
			Models:         []*apps.Model{&amg, &milc},
			MeanRunsPerDay: 2,
		})
		if err != nil {
			panic(err)
		}
		camp, err := c.RunCampaign()
		if err != nil {
			panic(err)
		}
		campVal, clustVal = camp, c
	})
	if campVal == nil {
		t.Fatal("campaign generation failed")
	}
	return campVal, clustVal
}

func TestAnalyzeNeighborhood(t *testing.T) {
	camp, _ := testCampaign(t)
	ds := camp.Get("MILC-128")
	res := AnalyzeNeighborhood(ds, NeighborhoodOptions{MinNodes: 32})
	if res.Runs != len(ds.Runs) {
		t.Fatalf("runs = %d", res.Runs)
	}
	if res.Optimal == 0 || res.Optimal == res.Runs {
		t.Fatalf("optimality split degenerate: %d/%d", res.Optimal, res.Runs)
	}
	if len(res.Users) == 0 {
		t.Fatal("no users analyzed")
	}
	// sorted by MI descending
	for i := 1; i < len(res.Users); i++ {
		if res.Users[i].MI > res.Users[i-1].MI {
			t.Fatal("users not sorted by MI")
		}
	}
	for _, u := range res.Users {
		if u.MI < 0 {
			t.Fatal("negative MI")
		}
		if u.Present <= 0 {
			t.Fatal("listed user never present")
		}
	}
}

func TestTopUsersRespectsPositiveMI(t *testing.T) {
	r := NeighborhoodResult{Users: []UserScore{
		{User: "User-2", MI: 0.5}, {User: "User-3", MI: 0.1}, {User: "User-4", MI: 0},
	}}
	top := r.TopUsers(5)
	if len(top) != 2 {
		t.Fatalf("TopUsers = %v", top)
	}
	if got := r.TopUsers(1); len(got) != 1 || got[0] != "User-2" {
		t.Fatalf("TopUsers(1) = %v", got)
	}
}

func TestTable3(t *testing.T) {
	camp, _ := testCampaign(t)
	rows, recurring := Table3(camp, NeighborhoodOptions{MinNodes: 32, TopK: 8})
	if len(rows) != len(camp.Datasets) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Dataset == "" || row.Nodes == 0 {
			t.Fatal("row metadata missing")
		}
		// users in rows must be recurring
		for _, u := range row.Users {
			if recurring[u] < 2 {
				t.Fatalf("user %s in row but not recurring", u)
			}
		}
		// numerically sorted
		for i := 1; i < len(row.Users); i++ {
			if len(row.Users[i]) < len(row.Users[i-1]) {
				t.Fatalf("users not numerically sorted: %v", row.Users)
			}
		}
	}
}

func TestAnalyzeDeviation(t *testing.T) {
	camp, _ := testCampaign(t)
	ds := camp.Get("MILC-128")
	res := AnalyzeDeviation(ds, DeviationOptions{Folds: 4, MaxSamples: 600}, 11)
	if len(res.Relevance) != counters.NumJob || len(res.FeatureNames) != counters.NumJob {
		t.Fatalf("relevance size = %d", len(res.Relevance))
	}
	for _, v := range res.Relevance {
		if v < 0 || v > 1 {
			t.Fatalf("relevance out of range: %v", v)
		}
	}
	if math.IsNaN(res.MAPE) || res.MAPE < 0 {
		t.Fatalf("MAPE = %v", res.MAPE)
	}
	// the §V-B claim, with slack for the tiny test campaign
	if res.MAPE > 20 {
		t.Fatalf("deviation MAPE = %v%%, expected small", res.MAPE)
	}
	if res.TopCounter() == "" {
		t.Fatal("no top counter")
	}
	want := len(ds.Runs) * ds.Steps()
	if want > 600 {
		want = 600
	}
	if res.Samples != want {
		t.Fatalf("samples = %d, want %d", res.Samples, want)
	}
}

func fastForecastOpts() ForecastOptions {
	return ForecastOptions{
		Folds: 3,
		NN: nn.Config{
			EmbedDim: 6, HiddenDim: 12, Epochs: 20, BatchSize: 16,
			LearningRate: 0.015, UseAttention: true, MaxSamples: 400,
		},
	}
}

func TestForecast(t *testing.T) {
	camp, _ := testCampaign(t)
	ds := camp.Get("MILC-128")
	spec := ForecastSpec{M: 5, K: 5, Features: counters.FeatureSet{}}
	res := Forecast(ds, spec, fastForecastOpts(), 13)
	if res.Windows == 0 {
		t.Fatal("no windows")
	}
	if math.IsNaN(res.MAPE) || res.MAPE <= 0 {
		t.Fatalf("MAPE = %v", res.MAPE)
	}
	if res.MAPE > 60 {
		t.Fatalf("MAPE = %v%%, model learned nothing", res.MAPE)
	}
}

func TestForecastTooShort(t *testing.T) {
	camp, _ := testCampaign(t)
	ds := camp.Get("AMG-128") // 12 steps
	spec := ForecastSpec{M: 10, K: 10, Features: counters.FeatureSet{}}
	res := Forecast(ds, spec, fastForecastOpts(), 13)
	if res.MAPE != -1 {
		t.Fatalf("expected sentinel MAPE for impossible windows, got %v", res.MAPE)
	}
}

func TestForecastSpecString(t *testing.T) {
	spec := ForecastSpec{M: 30, K: 40, Features: counters.FeatureSet{Placement: true, IO: true}}
	if spec.String() != "m=30 k=40 app + placement + io" {
		t.Fatalf("String = %q", spec.String())
	}
}

func TestForecastImportances(t *testing.T) {
	camp, _ := testCampaign(t)
	ds := camp.Get("MILC-128")
	spec := ForecastSpec{M: 5, K: 5, Features: counters.FeatureSet{Placement: true}}
	names, imp := ForecastImportances(ds, spec, fastForecastOpts(), 17)
	if len(names) != spec.Features.Count() {
		t.Fatalf("names = %d", len(names))
	}
	if len(imp) != len(names) {
		t.Fatalf("importances = %d, names = %d", len(imp), len(names))
	}
	var total float64
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		total += v
	}
	if total == 0 {
		t.Fatal("all importances zero")
	}
}

func TestForecastLongRun(t *testing.T) {
	camp, cl := testCampaign(t)
	ds := camp.Get("MILC-128")
	milc := apps.Find(apps.MILC, 128)
	long, err := cl.SimulateLongRun(milc, 60, 86400, 23)
	if err != nil {
		t.Fatal(err)
	}
	spec := ForecastSpec{M: 8, K: 8, Features: counters.FeatureSet{}}
	segs := ForecastLongRun(ds, long, spec, fastForecastOpts(), 19)
	if len(segs) < 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	for i, sg := range segs {
		if sg.Observed <= 0 || sg.Predicted <= 0 {
			t.Fatalf("segment %d: obs %v pred %v", i, sg.Observed, sg.Predicted)
		}
		if i > 0 && sg.StartStep != segs[i-1].StartStep+spec.K {
			t.Fatal("segments not contiguous")
		}
	}
	if m := SegmentMAPE(segs); math.IsNaN(m) || m > 80 {
		t.Fatalf("segment MAPE = %v", m)
	}
}

func TestRelativePerformance(t *testing.T) {
	camp, _ := testCampaign(t)
	ds := camp.Get("MILC-128")
	pts := RelativePerformance(ds)
	if len(pts) != len(ds.Runs) {
		t.Fatalf("points = %d", len(pts))
	}
	sawBest := false
	for _, p := range pts {
		if p.Relative < 1 {
			t.Fatalf("relative perf below 1: %v", p.Relative)
		}
		if p.Relative == 1 {
			sawBest = true
		}
	}
	if !sawBest {
		t.Fatal("best run should have relative 1.0")
	}
	if MaxRelative(pts) <= 1 {
		t.Fatal("no variability in relative performance")
	}
	if RelativePerformance(&dataset.Dataset{}) != nil {
		t.Fatal("empty dataset should give nil series")
	}
}

func TestLoadOrGenerateCache(t *testing.T) {
	amg := *apps.Find(apps.AMG, 128)
	amg.Steps = 4
	cfg := CampaignConfig{
		Cluster: cluster.Config{
			Machine:        topology.Small(),
			Days:           1,
			Seed:           31,
			Models:         []*apps.Model{&amg},
			MeanRunsPerDay: 1,
		},
		CachePath: filepath.Join(t.TempDir(), "camp.gob"),
	}
	a, err := LoadOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadOrGenerate(cfg) // second call must hit the cache
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRuns() != b.TotalRuns() {
		t.Fatal("cache roundtrip changed the campaign")
	}
	// different seed must regenerate, not reuse
	cfg.Cluster.Seed = 32
	c, err := LoadOrGenerate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 32 {
		t.Fatalf("stale cache returned: seed %d", c.Seed)
	}
}

func TestAnalyzeDeviationEmptyDataset(t *testing.T) {
	res := AnalyzeDeviation(&dataset.Dataset{Name: "EMPTY-128"}, DeviationOptions{}, 1)
	if res.MAPE != -1 {
		t.Fatalf("empty dataset MAPE = %v, want -1 sentinel", res.MAPE)
	}
	if len(res.Relevance) != counters.NumJob || len(res.FeatureNames) != counters.NumJob {
		t.Fatal("empty result should still carry the feature axis")
	}
	for _, v := range res.Relevance {
		if v != 0 {
			t.Fatal("empty dataset should have zero relevance")
		}
	}
}

func TestForecastImportancesEmptyDataset(t *testing.T) {
	names, imp := ForecastImportances(&dataset.Dataset{Name: "EMPTY-128"},
		ForecastSpec{M: 3, K: 3}, ForecastOptions{}, 1)
	if imp != nil {
		t.Fatal("empty dataset should give nil importances")
	}
	if len(names) == 0 {
		t.Fatal("names should still be returned")
	}
}

func TestTable3EmptyCampaign(t *testing.T) {
	camp := &dataset.Campaign{Datasets: []*dataset.Dataset{{Name: "A-128", App: "A", Nodes: 128}}}
	rows, recurring := Table3(camp, NeighborhoodOptions{})
	if len(rows) != 1 || len(rows[0].Users) != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	if len(recurring) != 0 {
		t.Fatal("no users should recur in an empty campaign")
	}
}
