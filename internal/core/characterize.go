package core

import (
	"context"
	"fmt"
	"os"

	"dragonvar/internal/cluster"
	"dragonvar/internal/dataset"
	"dragonvar/internal/telemetry"
)

// PerfPoint is one run of Figure 1: campaign day versus performance
// relative to the dataset's best observed run (1.0 = best, 3.0 = 3× slower).
type PerfPoint struct {
	Day      int
	Relative float64
}

// RelativePerformance produces the Figure 1 series for one dataset.
func RelativePerformance(ds *dataset.Dataset) []PerfPoint {
	best := ds.BestTotalTime()
	if best <= 0 {
		return nil
	}
	out := make([]PerfPoint, len(ds.Runs))
	for i, r := range ds.Runs {
		out[i] = PerfPoint{Day: r.Day, Relative: r.TotalTime() / best}
	}
	return out
}

// MaxRelative returns the worst relative performance in a Figure 1 series
// (the paper's "up to 3× slower" headline).
func MaxRelative(points []PerfPoint) float64 {
	var m float64
	for _, p := range points {
		if p.Relative > m {
			m = p.Relative
		}
	}
	return m
}

// CampaignConfig couples the cluster configuration with a cache path so
// every consumer (CLI, benches, examples) shares one generated campaign.
type CampaignConfig struct {
	Cluster   cluster.Config
	CachePath string // optional gob cache
}

// LoadOrGenerate returns the campaign from the cache when present (and
// matching seed/days), generating and caching it otherwise.
func LoadOrGenerate(cfg CampaignConfig) (*dataset.Campaign, error) {
	return LoadOrGenerateCtx(context.Background(), cfg)
}

// LoadOrGenerateCtx is LoadOrGenerate with cancellation. A cached campaign
// marked Partial never satisfies the lookup (it is regenerated in full).
// When generation is interrupted, the completed runs are still flushed to
// the cache as a Partial campaign — resuming costs a regeneration, but an
// inspectable dataset beats losing hours of simulation — and the partial
// campaign is returned alongside ctx's error.
func LoadOrGenerateCtx(ctx context.Context, cfg CampaignConfig) (*dataset.Campaign, error) {
	if cfg.Cluster.Days <= 0 {
		cfg.Cluster.Days = 130 // keep the cache check consistent with cluster defaults
	}
	wantRouting, wantPlacement := cfg.Cluster.EffectivePolicies()
	if cfg.CachePath != "" {
		if camp, err := dataset.Load(cfg.CachePath); err == nil {
			if !camp.Partial && camp.Seed == cfg.Cluster.Seed && camp.Days == cfg.Cluster.Days &&
				camp.Faults == cfg.Cluster.FaultSpec &&
				camp.Routing == wantRouting && camp.Placement == wantPlacement {
				telemetry.C(telemetry.MCacheHits).Inc()
				return camp, nil
			}
			if camp.Partial {
				fmt.Fprintf(os.Stderr, "core: cache %s is a partial campaign; regenerating\n", cfg.CachePath)
			} else {
				fmt.Fprintf(os.Stderr, "core: cache %s is for seed=%d days=%v faults=%q routing=%q placement=%q; regenerating\n",
					cfg.CachePath, camp.Seed, camp.Days, camp.Faults, camp.Routing, camp.Placement)
			}
		}
	}
	telemetry.C(telemetry.MCacheMisses).Inc()
	c, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	camp, err := c.RunCampaignCtx(ctx)
	if err != nil {
		if camp != nil && camp.Partial && cfg.CachePath != "" && camp.TotalRuns() > 0 {
			if serr := camp.Save(cfg.CachePath); serr != nil {
				fmt.Fprintf(os.Stderr, "core: could not flush partial campaign: %v\n", serr)
			} else {
				fmt.Fprintf(os.Stderr, "core: interrupted; flushed partial campaign (%d runs) to %s\n",
					camp.TotalRuns(), cfg.CachePath)
			}
		}
		return camp, err
	}
	if cfg.CachePath != "" {
		if err := camp.Save(cfg.CachePath); err != nil {
			fmt.Fprintf(os.Stderr, "core: could not cache campaign: %v\n", err)
		}
	}
	return camp, nil
}
