package core

import (
	"fmt"

	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
)

// The helpers below train the models the serving daemon (cmd/dfserved)
// persists to a modelstore. Unlike Forecast/AnalyzeDeviation they don't
// cross-validate: a serving model trains on everything the campaign has,
// because its job is the next prediction, not an error bar.

// TrainServingForecaster trains a forecaster for online serving on every
// window of the dataset. Returns the model and the window count it saw.
func TrainServingForecaster(ds *dataset.Dataset, spec ForecastSpec, opt ForecastOptions, seed int64) (*nn.Forecaster, int, error) {
	opt = opt.withDefaults()
	s := rng.NewLabeled(seed, "serve-forecast-"+ds.Name+"-"+spec.String())
	windows := ds.BuildWindowsGap(spec.Features, spec.M, spec.K, opt.Gaps)
	if len(windows) == 0 {
		return nil, 0, fmt.Errorf("dataset %s has no %s windows", ds.Name, spec)
	}
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Steps: w.Steps, Target: w.Target}
	}
	return nn.Train(samples, opt.NN, s.Split("train")), len(windows), nil
}

// TrainServingDeviation fits a GBR on the dataset's per-step deviation
// samples (the §IV-B features) for online serving. The sample cap and
// subsampling mirror AnalyzeDeviation so the served model sees the same
// data the reported relevances came from.
func TrainServingDeviation(ds *dataset.Dataset, opt DeviationOptions, seed int64) (*gbr.Model, int, error) {
	opt = opt.withDefaults()
	x, y, _, _ := ds.DeviationSamples()
	if x.Rows == 0 {
		return nil, 0, fmt.Errorf("dataset %s has no deviation samples", ds.Name)
	}
	s := rng.NewLabeled(seed, "serve-deviation-"+ds.Name)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	if opt.MaxSamples > 0 && len(idx) > opt.MaxSamples {
		s.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:opt.MaxSamples]
	}
	xs := linalg.NewMatrix(len(idx), x.Cols)
	ys := make([]float64, len(idx))
	for k, i := range idx {
		copy(xs.Row(k), x.Row(i))
		ys[k] = y[i]
	}
	return gbr.Fit(xs, ys, nil, nil, opt.GBR, s.Split("fit")), len(idx), nil
}

// DeviationFeatureNames returns the column names of the deviation model's
// input, in Table II order.
func DeviationFeatureNames() []string {
	names := make([]string, counters.NumJob)
	for i := 0; i < counters.NumJob; i++ {
		names[i] = counters.Table[i].Abbrev
	}
	return names
}
