package core

import (
	"math"
	"sync"
	"testing"

	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/netsim"
	"dragonvar/internal/topology"
)

// gappyCampaign generates (once) a campaign whose days 2 and 3 fall inside
// a sampler-dropout window, so runs submitted then carry missing markers.
var (
	gappyOnce sync.Once
	gappyVal  *dataset.Campaign
)

func gappyCampaign(t *testing.T) *dataset.Campaign {
	t.Helper()
	gappyOnce.Do(func() {
		amg := *apps.Find(apps.AMG, 128)
		amg.Steps = 12
		milc := *apps.Find(apps.MILC, 128)
		milc.Steps = 32
		c, err := cluster.New(cluster.Config{
			Machine:        topology.Small(),
			Net:            netsim.DefaultConfig(),
			Days:           8,
			Seed:           7,
			Models:         []*apps.Model{&amg, &milc},
			MeanRunsPerDay: 2,
			FaultSpec:      "dropout@86400-259200",
		})
		if err != nil {
			panic(err)
		}
		camp, err := c.RunCampaign()
		if err != nil {
			panic(err)
		}
		gappyVal = camp
	})
	if gappyVal == nil {
		t.Fatal("gappy campaign generation failed")
	}
	return gappyVal
}

func TestAnalyzeDeviationWithGaps(t *testing.T) {
	camp := gappyCampaign(t)
	ds := camp.Get("MILC-128")
	if ds.GapFraction() <= 0 {
		t.Fatal("two dropout days produced no gaps")
	}
	res := AnalyzeDeviation(ds, DeviationOptions{Folds: 4, MaxSamples: 600}, 11)
	if res.GapFraction != ds.GapFraction() {
		t.Fatalf("result gap fraction %v != dataset %v", res.GapFraction, ds.GapFraction())
	}
	if math.IsNaN(res.MAPE) || math.IsInf(res.MAPE, 0) || res.MAPE < 0 {
		t.Fatalf("MAPE = %v on a gappy dataset", res.MAPE)
	}
	// missing samples are excluded, never fed to the fit
	dense := len(ds.Runs) * ds.Steps()
	want := dense - int(math.Round(ds.GapFraction()*float64(dense)))
	if want > 600 {
		want = 600
	}
	if res.Samples != want {
		t.Fatalf("samples = %d, want %d", res.Samples, want)
	}
}

func TestForecastWithGaps(t *testing.T) {
	camp := gappyCampaign(t)
	ds := camp.Get("MILC-128")
	spec := ForecastSpec{M: 5, K: 5, Features: counters.FeatureSet{}}

	optImpute := fastForecastOpts()
	imp := Forecast(ds, spec, optImpute, 13)
	if imp.Windows == 0 {
		t.Fatal("imputation produced no windows")
	}
	if math.IsNaN(imp.MAPE) || math.IsInf(imp.MAPE, 0) || imp.MAPE <= 0 {
		t.Fatalf("imputed MAPE = %v", imp.MAPE)
	}
	if imp.GapFraction != ds.GapFraction() || imp.GapFraction <= 0 {
		t.Fatalf("gap fraction = %v", imp.GapFraction)
	}

	optSkip := fastForecastOpts()
	optSkip.Gaps = dataset.GapSkip
	skip := Forecast(ds, spec, optSkip, 13)
	if skip.Windows >= imp.Windows {
		t.Fatalf("GapSkip kept %d windows, impute %d; skipping should drop some",
			skip.Windows, imp.Windows)
	}
	if skip.Windows > 0 && (math.IsNaN(skip.MAPE) || math.IsInf(skip.MAPE, 0)) {
		t.Fatalf("skip MAPE = %v", skip.MAPE)
	}
}
