package topology

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Dragonfly {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return d
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"valid small", func(c *Config) {}, true},
		{"one group", func(c *Config) { c.Groups = 1 }, false},
		{"zero rows", func(c *Config) { c.Rows = 0 }, false},
		{"zero nodes", func(c *Config) { c.NodesPerRouter = 0 }, false},
		{"zero global", func(c *Config) { c.GlobalLinksPerRouter = 0 }, false},
		{"haswell too big", func(c *Config) { c.HaswellGroups = 100 }, false},
		{"io too big", func(c *Config) { c.IORoutersPerGroup = 1000 }, false},
		{"too many groups for endpoints", func(c *Config) { c.Groups = 200; c.Rows = 2; c.Cols = 2; c.GlobalLinksPerRouter = 1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Small()
			tc.mut(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestCoriStructure(t *testing.T) {
	d := mustNew(t, Cori())
	c := d.TakeCensus()
	if c.Routers != 34*96 {
		t.Fatalf("routers = %d, want %d", c.Routers, 34*96)
	}
	if c.Nodes != 34*96*4 {
		t.Fatalf("nodes = %d", c.Nodes)
	}
	// green: per group, Rows * C(Cols,2) = 6 * 120 = 720
	if want := 34 * 6 * (16 * 15 / 2); c.GreenLinks != want {
		t.Fatalf("green links = %d, want %d", c.GreenLinks, want)
	}
	// black: per group, Cols * C(Rows,2) = 16 * 15 = 240
	if want := 34 * 16 * (6 * 5 / 2); c.BlackLinks != want {
		t.Fatalf("black links = %d, want %d", c.BlackLinks, want)
	}
	if c.MinBluePerGroupPair < 1 {
		t.Fatal("some group pair has no global link")
	}
	// load should be spread: max/min ratio should be small
	if c.MaxBluePerGroupPair > c.MinBluePerGroupPair+1 {
		t.Fatalf("blue links unevenly distributed: min %d max %d", c.MinBluePerGroupPair, c.MaxBluePerGroupPair)
	}
}

func TestRouterCoordinatesRoundTrip(t *testing.T) {
	d := mustNew(t, Small())
	cfg := d.Cfg
	for g := 0; g < cfg.Groups; g++ {
		for row := 0; row < cfg.Rows; row++ {
			for col := 0; col < cfg.Cols; col++ {
				r := d.RouterAt(GroupID(g), row, col)
				if d.Group(r) != GroupID(g) || d.Row(r) != row || d.Col(r) != col {
					t.Fatalf("coordinate roundtrip failed for (%d,%d,%d) -> %d -> (%d,%d,%d)",
						g, row, col, r, d.Group(r), d.Row(r), d.Col(r))
				}
			}
		}
	}
}

func TestRowLinksAllToAll(t *testing.T) {
	d := mustNew(t, Small())
	cfg := d.Cfg
	r := d.RouterAt(1, 2, 3)
	for col := 0; col < cfg.Cols; col++ {
		id := d.RowLink(r, col)
		if col == d.Col(r) {
			if id != -1 {
				t.Fatal("self row link should be -1")
			}
			continue
		}
		if id < 0 {
			t.Fatalf("missing row link to col %d", col)
		}
		l := d.Links[id]
		if l.Type != Green {
			t.Fatalf("row link has type %v", l.Type)
		}
		other := l.Other(r)
		if d.Group(other) != d.Group(r) || d.Row(other) != d.Row(r) || d.Col(other) != col {
			t.Fatalf("row link to col %d connects wrong router", col)
		}
	}
}

func TestColLinksAllToAll(t *testing.T) {
	d := mustNew(t, Small())
	cfg := d.Cfg
	r := d.RouterAt(2, 1, 4)
	for row := 0; row < cfg.Rows; row++ {
		id := d.ColLink(r, row)
		if row == d.Row(r) {
			if id != -1 {
				t.Fatal("self col link should be -1")
			}
			continue
		}
		if id < 0 {
			t.Fatalf("missing col link to row %d", row)
		}
		l := d.Links[id]
		if l.Type != Black {
			t.Fatalf("col link has type %v", l.Type)
		}
		other := l.Other(r)
		if d.Group(other) != d.Group(r) || d.Col(other) != d.Col(r) || d.Row(other) != row {
			t.Fatalf("col link to row %d connects wrong router", row)
		}
	}
}

func TestGlobalLinksConnectCorrectGroups(t *testing.T) {
	d := mustNew(t, Small())
	g := d.Cfg.Groups
	for g1 := 0; g1 < g; g1++ {
		for g2 := 0; g2 < g; g2++ {
			links := d.GlobalBetween(GroupID(g1), GroupID(g2))
			if g1 == g2 {
				if links != nil {
					t.Fatal("GlobalBetween same group should be nil")
				}
				continue
			}
			if len(links) == 0 {
				t.Fatalf("no global links between %d and %d", g1, g2)
			}
			for _, id := range links {
				l := d.Links[id]
				ga, gb := d.Group(l.A), d.Group(l.B)
				if !((ga == GroupID(g1) && gb == GroupID(g2)) || (ga == GroupID(g2) && gb == GroupID(g1))) {
					t.Fatalf("link %d listed for (%d,%d) connects groups (%d,%d)", id, g1, g2, ga, gb)
				}
			}
		}
	}
}

func TestGlobalBetweenSymmetric(t *testing.T) {
	d := mustNew(t, Small())
	a := d.GlobalBetween(0, 3)
	b := d.GlobalBetween(3, 0)
	if len(a) != len(b) {
		t.Fatalf("asymmetric global link lists: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GlobalBetween not symmetric")
		}
	}
}

func TestGlobalPortBudgetRespected(t *testing.T) {
	d := mustNew(t, Small())
	perRouter := make(map[RouterID]int)
	for _, l := range d.Links {
		if l.Type != Blue {
			continue
		}
		perRouter[l.A]++
		perRouter[l.B]++
	}
	for r, n := range perRouter {
		if n > d.Cfg.GlobalLinksPerRouter+1 {
			t.Fatalf("router %d has %d blue links, budget %d", r, n, d.Cfg.GlobalLinksPerRouter)
		}
	}
}

func TestIncidentConsistency(t *testing.T) {
	d := mustNew(t, Small())
	// every link appears in the incident lists of exactly its two endpoints
	count := make(map[LinkID]int)
	for r := 0; r < d.Cfg.NumRouters(); r++ {
		for _, id := range d.Incident(RouterID(r)) {
			l := d.Links[id]
			if l.A != RouterID(r) && l.B != RouterID(r) {
				t.Fatalf("link %d in incident list of non-endpoint %d", id, r)
			}
			count[id]++
		}
	}
	for id, n := range count {
		if n != 2 {
			t.Fatalf("link %d appears in %d incident lists, want 2", id, n)
		}
	}
	if len(count) != len(d.Links) {
		t.Fatalf("%d links appear in incident lists, want %d", len(count), len(d.Links))
	}
}

func TestNodeRouterMapping(t *testing.T) {
	d := mustNew(t, Small())
	f := func(raw uint16) bool {
		n := NodeID(int(raw) % d.Cfg.NumNodes())
		r := d.RouterOfNode(n)
		nodes := d.NodesOfRouter(r)
		for _, nn := range nodes {
			if nn == n {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeClasses(t *testing.T) {
	d := mustNew(t, Small())
	cfg := d.Cfg
	knl := d.ComputeNodes(KNL)
	hsw := d.ComputeNodes(Haswell)
	io := d.ComputeNodes(IONode)
	if len(knl)+len(hsw)+len(io) != cfg.NumNodes() {
		t.Fatal("node classes do not partition the nodes")
	}
	wantIO := cfg.Groups * cfg.IORoutersPerGroup * cfg.NodesPerRouter
	if len(io) != wantIO {
		t.Fatalf("io nodes = %d, want %d", len(io), wantIO)
	}
	wantHsw := cfg.HaswellGroups * (cfg.RoutersPerGroup() - cfg.IORoutersPerGroup) * cfg.NodesPerRouter
	if len(hsw) != wantHsw {
		t.Fatalf("haswell nodes = %d, want %d", len(hsw), wantHsw)
	}
	// IORouters match the IONode class
	for _, r := range d.IORouters() {
		if d.Class(r) != IONode {
			t.Fatalf("router %d in IORouters but class %v", r, d.Class(r))
		}
	}
	if len(d.IORouters()) != cfg.Groups*cfg.IORoutersPerGroup {
		t.Fatalf("io routers = %d", len(d.IORouters()))
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{A: 3, B: 7}
	if l.Other(3) != 7 || l.Other(7) != 3 {
		t.Fatal("Other broken")
	}
}

func TestLinkTypeString(t *testing.T) {
	if Green.String() != "green" || Black.String() != "black" || Blue.String() != "blue" {
		t.Fatal("LinkType strings wrong")
	}
}

func TestDegreeUniformIntraGroup(t *testing.T) {
	d := mustNew(t, Small())
	cfg := d.Cfg
	// every router has exactly Cols-1 green and Rows-1 black links
	for r := 0; r < cfg.NumRouters(); r++ {
		var green, black int
		for _, id := range d.Incident(RouterID(r)) {
			switch d.Links[id].Type {
			case Green:
				green++
			case Black:
				black++
			}
		}
		if green != cfg.Cols-1 {
			t.Fatalf("router %d has %d green links, want %d", r, green, cfg.Cols-1)
		}
		if black != cfg.Rows-1 {
			t.Fatalf("router %d has %d black links, want %d", r, black, cfg.Rows-1)
		}
	}
}
