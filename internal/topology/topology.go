// Package topology models the Cray XC implementation of the dragonfly
// network (Figure 2 of the paper). Routers are arranged in groups; each
// group is a Rows×Cols grid (6×16 on XC systems, 96 Aries routers). The
// sixteen routers of a row are connected all-to-all by green (row) links,
// the six routers of a column all-to-all by black (column) links, and each
// router contributes a number of blue (global) links that connect the
// groups to each other. Every router hosts NodesPerRouter compute nodes
// (four per Aries blade on XC40).
//
// The package is purely structural: it enumerates routers, nodes, and links
// and answers adjacency queries. Path selection lives in package routing,
// traffic and congestion in package netsim.
package topology

import (
	"fmt"
)

// LinkType distinguishes the three classes of dragonfly links.
type LinkType uint8

const (
	// Green links connect the routers within one row of a group all-to-all.
	Green LinkType = iota
	// Black links connect the routers within one column of a group
	// all-to-all.
	Black
	// Blue links are the global links connecting different groups.
	Blue
)

// String returns the Cray color name of the link type.
func (t LinkType) String() string {
	switch t {
	case Green:
		return "green"
	case Black:
		return "black"
	case Blue:
		return "blue"
	default:
		return fmt.Sprintf("LinkType(%d)", uint8(t))
	}
}

// RouterID identifies a router. Routers are numbered contiguously:
// group*RoutersPerGroup + row*Cols + col.
type RouterID int32

// NodeID identifies a compute node: router*NodesPerRouter + slot.
type NodeID int32

// GroupID identifies a dragonfly group.
type GroupID int32

// LinkID indexes into Dragonfly.Links.
type LinkID int32

// Link is an undirected network link between two routers.
type Link struct {
	ID   LinkID
	Type LinkType
	A, B RouterID
}

// Other returns the endpoint of l that is not r.
func (l Link) Other(r RouterID) RouterID {
	if l.A == r {
		return l.B
	}
	return l.A
}

// NodeClass describes the processor / role of the nodes attached to a
// router. The paper's Cori has seven Haswell groups and 27 KNL groups; all
// controlled experiments ran on KNL nodes, and LDMS counters are organized
// by compute versus I/O role (§III-C).
type NodeClass uint8

const (
	// KNL marks Knights Landing compute nodes (68 cores; the paper uses 64).
	KNL NodeClass = iota
	// Haswell marks Haswell compute nodes.
	Haswell
	// IONode marks service nodes that connect to the filesystem.
	IONode
)

// String returns a short label for the node class.
func (c NodeClass) String() string {
	switch c {
	case KNL:
		return "knl"
	case Haswell:
		return "haswell"
	case IONode:
		return "io"
	default:
		return fmt.Sprintf("NodeClass(%d)", uint8(c))
	}
}

// Config parameterizes a dragonfly machine.
type Config struct {
	Groups               int // number of dragonfly groups
	Rows                 int // rows per group (6 on XC)
	Cols                 int // columns per group (16 on XC)
	NodesPerRouter       int // nodes per Aries router (4 on XC)
	GlobalLinksPerRouter int // blue link endpoints per router
	HaswellGroups        int // first HaswellGroups groups carry Haswell nodes
	IORoutersPerGroup    int // routers per group whose nodes are I/O service nodes
}

// Cori returns the configuration of the machine the paper measured: a Cray
// XC40 with 34 groups (7 Haswell + 27 KNL), 96 Aries per group in a 6×16
// grid, four nodes per router.
func Cori() Config {
	return Config{
		Groups:               34,
		Rows:                 6,
		Cols:                 16,
		NodesPerRouter:       4,
		GlobalLinksPerRouter: 4,
		HaswellGroups:        7,
		IORoutersPerGroup:    2,
	}
}

// Small returns a reduced configuration suitable for unit tests and
// benchmarks: the same structure at roughly 1/16 the scale.
func Small() Config {
	return Config{
		Groups:               9,
		Rows:                 4,
		Cols:                 6,
		NodesPerRouter:       4,
		GlobalLinksPerRouter: 4,
		HaswellGroups:        2,
		IORoutersPerGroup:    1,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Groups < 2:
		return fmt.Errorf("topology: need at least 2 groups, got %d", c.Groups)
	case c.Rows < 1 || c.Cols < 1:
		return fmt.Errorf("topology: invalid grid %dx%d", c.Rows, c.Cols)
	case c.NodesPerRouter < 1:
		return fmt.Errorf("topology: need at least 1 node per router, got %d", c.NodesPerRouter)
	case c.GlobalLinksPerRouter < 1:
		return fmt.Errorf("topology: need at least 1 global link per router, got %d", c.GlobalLinksPerRouter)
	case c.HaswellGroups < 0 || c.HaswellGroups > c.Groups:
		return fmt.Errorf("topology: HaswellGroups %d out of range [0,%d]", c.HaswellGroups, c.Groups)
	case c.IORoutersPerGroup < 0 || c.IORoutersPerGroup > c.Rows*c.Cols:
		return fmt.Errorf("topology: IORoutersPerGroup %d out of range", c.IORoutersPerGroup)
	}
	// Every group must be reachable from every other: total blue endpoints
	// per group must be at least Groups-1.
	if c.Rows*c.Cols*c.GlobalLinksPerRouter < c.Groups-1 {
		return fmt.Errorf("topology: %d global endpoints per group cannot connect %d groups",
			c.Rows*c.Cols*c.GlobalLinksPerRouter, c.Groups)
	}
	return nil
}

// RoutersPerGroup returns the number of routers in one group.
func (c Config) RoutersPerGroup() int { return c.Rows * c.Cols }

// NumRouters returns the total router count.
func (c Config) NumRouters() int { return c.Groups * c.RoutersPerGroup() }

// NumNodes returns the total node count.
func (c Config) NumNodes() int { return c.NumRouters() * c.NodesPerRouter }

// Dragonfly is a fully wired dragonfly machine.
type Dragonfly struct {
	Cfg Config

	// Links holds every link; LinkID indexes into it.
	Links []Link

	// incident[r] lists the IDs of the links incident to router r.
	incident [][]LinkID

	// rowLink[r][c] is the green link between router r and the router in
	// the same row at column c (meaningless for r's own column). Similarly
	// colLink[r][row] for black links. Both are indexed by local
	// coordinates and support O(1) intra-group path construction.
	rowLink [][]LinkID
	colLink [][]LinkID

	// globalBetween[g1*Groups+g2] lists the blue links whose endpoints are
	// in groups g1 and g2 (g1 < g2 canonical order; the symmetric entry is
	// filled too).
	globalBetween [][]LinkID

	// routerClass[r] is the NodeClass of the nodes attached to router r.
	routerClass []NodeClass

	// ioRouters lists all routers whose nodes are I/O service nodes.
	ioRouters []RouterID
}

// New wires a dragonfly from the configuration. Wiring is deterministic.
func New(cfg Config) (*Dragonfly, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Dragonfly{Cfg: cfg}
	nr := cfg.NumRouters()
	d.incident = make([][]LinkID, nr)
	d.rowLink = make([][]LinkID, nr)
	d.colLink = make([][]LinkID, nr)
	for r := 0; r < nr; r++ {
		d.rowLink[r] = make([]LinkID, cfg.Cols)
		d.colLink[r] = make([]LinkID, cfg.Rows)
		for i := range d.rowLink[r] {
			d.rowLink[r][i] = -1
		}
		for i := range d.colLink[r] {
			d.colLink[r][i] = -1
		}
	}
	d.wireIntraGroup()
	if err := d.wireGlobal(); err != nil {
		return nil, err
	}
	d.classifyRouters()
	return d, nil
}

// addLink appends a link and updates adjacency.
func (d *Dragonfly) addLink(t LinkType, a, b RouterID) LinkID {
	id := LinkID(len(d.Links))
	d.Links = append(d.Links, Link{ID: id, Type: t, A: a, B: b})
	d.incident[a] = append(d.incident[a], id)
	d.incident[b] = append(d.incident[b], id)
	return id
}

// wireIntraGroup creates the green (row) and black (column) all-to-all
// links inside every group.
func (d *Dragonfly) wireIntraGroup() {
	cfg := d.Cfg
	for g := 0; g < cfg.Groups; g++ {
		// green: all-to-all within each row
		for row := 0; row < cfg.Rows; row++ {
			for c1 := 0; c1 < cfg.Cols; c1++ {
				for c2 := c1 + 1; c2 < cfg.Cols; c2++ {
					a := d.RouterAt(GroupID(g), row, c1)
					b := d.RouterAt(GroupID(g), row, c2)
					id := d.addLink(Green, a, b)
					d.rowLink[a][c2] = id
					d.rowLink[b][c1] = id
				}
			}
		}
		// black: all-to-all within each column
		for col := 0; col < cfg.Cols; col++ {
			for r1 := 0; r1 < cfg.Rows; r1++ {
				for r2 := r1 + 1; r2 < cfg.Rows; r2++ {
					a := d.RouterAt(GroupID(g), r1, col)
					b := d.RouterAt(GroupID(g), r2, col)
					id := d.addLink(Black, a, b)
					d.colLink[a][r2] = id
					d.colLink[b][r1] = id
				}
			}
		}
	}
}

// wireGlobal distributes the blue links evenly over group pairs. Each
// group has RoutersPerGroup*GlobalLinksPerRouter blue endpoints; every
// unordered group pair receives an equal share (remainders are assigned to
// the lexicographically earliest pairs), and within a group the endpoints
// are assigned to routers round-robin so global connectivity is spread over
// the whole group, as on real XC systems.
func (d *Dragonfly) wireGlobal() error {
	cfg := d.Cfg
	g := cfg.Groups
	endpointsPerGroup := cfg.RoutersPerGroup() * cfg.GlobalLinksPerRouter

	d.globalBetween = make([][]LinkID, g*g)
	// next global port to use, per group (round-robin over routers)
	nextPort := make([]int, g)
	portBudget := make([]int, g)
	for i := range portBudget {
		portBudget[i] = endpointsPerGroup
	}

	// Sweep over all group pairs repeatedly, adding one link per pair per
	// sweep while both groups still have free ports. This keeps the pair
	// link counts within one of each other and guarantees that every pair
	// gets a link in the first sweep (Validate ensures the budget suffices).
	// Pairs are capped at floor(E/(G-1))+1 links so the final partial sweep
	// cannot concentrate leftovers on a few pairs; surplus ports simply go
	// unused, as on real installations.
	pairCap := endpointsPerGroup/(g-1) + 1
	for {
		added := false
		for g1 := 0; g1 < g; g1++ {
			for g2 := g1 + 1; g2 < g; g2++ {
				if portBudget[g1] == 0 || portBudget[g2] == 0 {
					continue
				}
				if len(d.globalBetween[g1*g+g2]) >= pairCap {
					continue
				}
				a := d.routerForPort(GroupID(g1), nextPort[g1])
				b := d.routerForPort(GroupID(g2), nextPort[g2])
				nextPort[g1]++
				nextPort[g2]++
				portBudget[g1]--
				portBudget[g2]--
				id := d.addLink(Blue, a, b)
				d.globalBetween[g1*g+g2] = append(d.globalBetween[g1*g+g2], id)
				d.globalBetween[g2*g+g1] = append(d.globalBetween[g2*g+g1], id)
				added = true
			}
		}
		if !added {
			break
		}
	}
	// verify full group connectivity
	for g1 := 0; g1 < g; g1++ {
		for g2 := g1 + 1; g2 < g; g2++ {
			if len(d.globalBetween[g1*g+g2]) == 0 {
				return fmt.Errorf("topology: groups %d and %d ended up with no global link", g1, g2)
			}
		}
	}
	return nil
}

// routerForPort maps a group-local global-port index to a router,
// round-robin: port p belongs to router p mod RoutersPerGroup.
func (d *Dragonfly) routerForPort(g GroupID, port int) RouterID {
	local := port % d.Cfg.RoutersPerGroup()
	return RouterID(int(g)*d.Cfg.RoutersPerGroup() + local)
}

// classifyRouters assigns node classes: the first IORoutersPerGroup routers
// of each group host I/O service nodes; the remaining routers of the first
// HaswellGroups groups host Haswell nodes; everything else is KNL.
func (d *Dragonfly) classifyRouters() {
	cfg := d.Cfg
	d.routerClass = make([]NodeClass, cfg.NumRouters())
	for g := 0; g < cfg.Groups; g++ {
		for local := 0; local < cfg.RoutersPerGroup(); local++ {
			r := RouterID(g*cfg.RoutersPerGroup() + local)
			switch {
			case local < cfg.IORoutersPerGroup:
				d.routerClass[r] = IONode
				d.ioRouters = append(d.ioRouters, r)
			case g < cfg.HaswellGroups:
				d.routerClass[r] = Haswell
			default:
				d.routerClass[r] = KNL
			}
		}
	}
}

// RouterAt returns the router at the given group and grid coordinates.
func (d *Dragonfly) RouterAt(g GroupID, row, col int) RouterID {
	return RouterID(int(g)*d.Cfg.RoutersPerGroup() + row*d.Cfg.Cols + col)
}

// Group returns the group of router r.
func (d *Dragonfly) Group(r RouterID) GroupID {
	return GroupID(int(r) / d.Cfg.RoutersPerGroup())
}

// Row returns the row coordinate of router r within its group.
func (d *Dragonfly) Row(r RouterID) int {
	return (int(r) % d.Cfg.RoutersPerGroup()) / d.Cfg.Cols
}

// Col returns the column coordinate of router r within its group.
func (d *Dragonfly) Col(r RouterID) int {
	return (int(r) % d.Cfg.RoutersPerGroup()) % d.Cfg.Cols
}

// Class returns the node class of the nodes attached to router r.
func (d *Dragonfly) Class(r RouterID) NodeClass { return d.routerClass[r] }

// IORouters returns the routers hosting I/O service nodes. The returned
// slice must not be modified.
func (d *Dragonfly) IORouters() []RouterID { return d.ioRouters }

// Incident returns the IDs of the links incident to router r. The returned
// slice must not be modified.
func (d *Dragonfly) Incident(r RouterID) []LinkID { return d.incident[r] }

// RowLink returns the green link between r and the router of the same row
// at column col, or -1 if col is r's own column.
func (d *Dragonfly) RowLink(r RouterID, col int) LinkID { return d.rowLink[r][col] }

// ColLink returns the black link between r and the router of the same
// column at row row, or -1 if row is r's own row.
func (d *Dragonfly) ColLink(r RouterID, row int) LinkID { return d.colLink[r][row] }

// GlobalBetween returns the blue links connecting groups g1 and g2 (empty
// when g1 == g2). The returned slice must not be modified.
func (d *Dragonfly) GlobalBetween(g1, g2 GroupID) []LinkID {
	if g1 == g2 {
		return nil
	}
	return d.globalBetween[int(g1)*d.Cfg.Groups+int(g2)]
}

// RouterOfNode returns the router a node is attached to.
func (d *Dragonfly) RouterOfNode(n NodeID) RouterID {
	return RouterID(int(n) / d.Cfg.NodesPerRouter)
}

// NodesOfRouter returns the node IDs attached to router r.
func (d *Dragonfly) NodesOfRouter(r RouterID) []NodeID {
	out := make([]NodeID, d.Cfg.NodesPerRouter)
	for i := range out {
		out[i] = NodeID(int(r)*d.Cfg.NodesPerRouter + i)
	}
	return out
}

// NodeClassOf returns the class of a node.
func (d *Dragonfly) NodeClassOf(n NodeID) NodeClass {
	return d.routerClass[d.RouterOfNode(n)]
}

// ComputeNodes returns all node IDs of the given class, in increasing
// order. Useful for building allocation pools.
func (d *Dragonfly) ComputeNodes(class NodeClass) []NodeID {
	var out []NodeID
	for r := 0; r < d.Cfg.NumRouters(); r++ {
		if d.routerClass[r] != class {
			continue
		}
		out = append(out, d.NodesOfRouter(RouterID(r))...)
	}
	return out
}

// Census summarizes the wired machine; used by the Figure 2 report.
type Census struct {
	Groups, RoutersPerGroup, Routers, Nodes  int
	GreenLinks, BlackLinks, BlueLinks        int
	KNLNodes, HaswellNodes, IONodes          int
	MinBluePerGroupPair, MaxBluePerGroupPair int
}

// TakeCensus counts the machine's components.
func (d *Dragonfly) TakeCensus() Census {
	c := Census{
		Groups:          d.Cfg.Groups,
		RoutersPerGroup: d.Cfg.RoutersPerGroup(),
		Routers:         d.Cfg.NumRouters(),
		Nodes:           d.Cfg.NumNodes(),
	}
	for _, l := range d.Links {
		switch l.Type {
		case Green:
			c.GreenLinks++
		case Black:
			c.BlackLinks++
		case Blue:
			c.BlueLinks++
		}
	}
	for r := 0; r < d.Cfg.NumRouters(); r++ {
		n := d.Cfg.NodesPerRouter
		switch d.routerClass[r] {
		case KNL:
			c.KNLNodes += n
		case Haswell:
			c.HaswellNodes += n
		case IONode:
			c.IONodes += n
		}
	}
	c.MinBluePerGroupPair = int(^uint(0) >> 1)
	for g1 := 0; g1 < d.Cfg.Groups; g1++ {
		for g2 := g1 + 1; g2 < d.Cfg.Groups; g2++ {
			n := len(d.GlobalBetween(GroupID(g1), GroupID(g2)))
			if n < c.MinBluePerGroupPair {
				c.MinBluePerGroupPair = n
			}
			if n > c.MaxBluePerGroupPair {
				c.MaxBluePerGroupPair = n
			}
		}
	}
	return c
}
