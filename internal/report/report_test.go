package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "Name", "Value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta-long", 1234567.0)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Name") || !strings.Contains(out, "Value") {
		t.Fatal("missing headers")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Fatalf("missing row data:\n%s", out)
	}
	if !strings.Contains(out, "1234567") {
		t.Fatal("large floats should render without decimals")
	}
	// columns aligned: "beta-long" defines width of column 0
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "beta-long") {
		t.Fatalf("unexpected last row: %q", last)
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := NewTable("")
	tb.AddRow("x", "y")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Fatal("divider without headers")
	}
	if !strings.Contains(out, "x  y") {
		t.Fatalf("row mis-rendered: %q", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "chart") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	aHashes := strings.Count(lines[1], "#")
	bHashes := strings.Count(lines[2], "#")
	if bHashes != 10 || aHashes != 5 {
		t.Fatalf("bar lengths: a=%d b=%d", aHashes, bHashes)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("zero value should have no bar")
	}
}

func TestSpark(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("spark length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("spark endpoints wrong: %q", s)
	}
	if Spark(nil) != "" {
		t.Fatal("empty spark should be empty")
	}
	// constant series: all minimum glyph, no panic
	c := Spark([]float64{5, 5, 5})
	for _, r := range c {
		if r != '▁' {
			t.Fatalf("constant spark = %q", c)
		}
	}
}

func TestSeries(t *testing.T) {
	out := Series("lbl", []float64{1, 2, 3})
	if !strings.Contains(out, "lbl") || !strings.Contains(out, "min 1") || !strings.Contains(out, "max 3") {
		t.Fatalf("series = %q", out)
	}
	if !strings.Contains(Series("x", nil), "empty") {
		t.Fatal("empty series should say so")
	}
}
