// Package report renders the experiment harness's tables and series as
// plain text: fixed-width tables for the paper's tables, and horizontal
// bar / sparkline renderings for its figures, so every table and figure can
// be regenerated on a terminal.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with three significant decimals.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// trim trailing spaces
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var total int
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bars renders a labeled horizontal bar chart scaled to width characters.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(math.Round(v / max * float64(width)))
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-*s |%s %s\n", labelW, label, strings.Repeat("#", n), formatFloat(v))
	}
	return b.String()
}

// Spark renders a numeric series as a one-line unicode sparkline.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(ramp)-1))
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// Series renders a labeled series with its sparkline and range.
func Series(label string, values []float64) string {
	if len(values) == 0 {
		return fmt.Sprintf("%s: (empty)\n", label)
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return fmt.Sprintf("%s: %s  [min %s, max %s]\n", label, Spark(values), formatFloat(lo), formatFloat(hi))
}
