package desim

import (
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func tiny(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.New(topology.Config{
		Groups: 4, Rows: 2, Cols: 3, NodesPerRouter: 2,
		GlobalLinksPerRouter: 2, HaswellGroups: 0, IORoutersPerGroup: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func run(t *testing.T, d *topology.Dragonfly, cfg Config, streams []TrafficSpec, cycles int, seed int64) Stats {
	t.Helper()
	sim := New(d, cfg, rng.New(seed))
	st, err := sim.Run(streams, cycles)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPacketsDelivered(t *testing.T) {
	d := tiny(t)
	streams := []TrafficSpec{{Src: d.RouterAt(0, 0, 0), Dst: d.RouterAt(1, 1, 2), Rate: 0.05}}
	st := run(t, d, DefaultConfig(), streams, 20000, 1)
	if st.Injected == 0 {
		t.Fatal("nothing injected")
	}
	// at low load nearly everything should arrive
	if float64(st.Delivered) < 0.95*float64(st.Injected) {
		t.Fatalf("delivered %d of %d injected", st.Delivered, st.Injected)
	}
	if st.MeanLatency <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	d := tiny(t)
	sim := New(d, DefaultConfig(), rng.New(1))
	r := d.RouterAt(0, 0, 0)
	if _, err := sim.Run([]TrafficSpec{{Src: r, Dst: r, Rate: 0.1}}, 100); err == nil {
		t.Fatal("expected error for self-loop stream")
	}
}

func TestLatencyGrowsConvexlyWithLoad(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(2, 1, 1)
	lat := func(rate float64) float64 {
		st := run(t, d, Config{QueueDepth: 8, PacketFlits: 4, Adaptive: false, MaxCandidates: 1},
			[]TrafficSpec{{Src: src, Dst: dst, Rate: rate}}, 40000, 7)
		return st.MeanLatency
	}
	low := lat(0.02)
	mid := lat(0.12)
	high := lat(0.23) // one packet of 4 flits per 4.3 cycles ≈ near saturation
	if !(low < mid && mid < high) {
		t.Fatalf("latency not increasing: %.1f %.1f %.1f", low, mid, high)
	}
	// convexity: the second step (same rate delta) hurts much more
	if (high - mid) < 2*(mid-low) {
		t.Fatalf("latency not convex: %.1f %.1f %.1f", low, mid, high)
	}
}

func TestStallsConcentrateOnSharedPath(t *testing.T) {
	d := tiny(t)
	// two streams sharing a source router vs. a disjoint stream
	shared := d.RouterAt(0, 0, 0)
	st := run(t, d, Config{QueueDepth: 4, PacketFlits: 4, Adaptive: false, MaxCandidates: 1},
		[]TrafficSpec{
			{Src: shared, Dst: d.RouterAt(1, 1, 1), Rate: 0.15},
			{Src: shared, Dst: d.RouterAt(1, 0, 2), Rate: 0.15},
			{Src: d.RouterAt(3, 1, 0), Dst: d.RouterAt(2, 0, 1), Rate: 0.02},
		}, 30000, 11)
	if st.TotalStallCycles == 0 {
		t.Fatal("no stalls under contention")
	}
	// the shared source must stall far more than the quiet one
	if st.StallCycles[shared] <= st.StallCycles[d.RouterAt(3, 1, 0)] {
		t.Fatalf("stalls did not concentrate: shared %d, quiet %d",
			st.StallCycles[shared], st.StallCycles[d.RouterAt(3, 1, 0)])
	}
}

func TestAdaptiveReducesLatencyUnderContention(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(2, 1, 2)
	streams := []TrafficSpec{
		{Src: src, Dst: dst, Rate: 0.18},
		{Src: src, Dst: dst, Rate: 0.18},
	}
	fixed := run(t, d, Config{QueueDepth: 8, PacketFlits: 4, Adaptive: false, MaxCandidates: 4}, streams, 40000, 13)
	adaptive := run(t, d, Config{QueueDepth: 8, PacketFlits: 4, Adaptive: true, MaxCandidates: 4}, streams, 40000, 13)
	if adaptive.MeanLatency >= fixed.MeanLatency {
		t.Fatalf("adaptive %.1f cycles should beat fixed %.1f cycles",
			adaptive.MeanLatency, fixed.MeanLatency)
	}
}

func TestBackpressureBoundsQueues(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(3, 1, 2)
	// overload hard: injection rate far beyond a single path's capacity
	st := run(t, d, Config{QueueDepth: 3, PacketFlits: 4, Adaptive: false, MaxCandidates: 1},
		[]TrafficSpec{{Src: src, Dst: dst, Rate: 0.9}}, 20000, 17)
	// deliveries bounded by channel capacity: ≤ cycles/PacketFlits
	if st.Delivered > 20000/4+10 {
		t.Fatalf("delivered %d packets exceeds channel capacity", st.Delivered)
	}
	if st.TotalStallCycles == 0 {
		t.Fatal("overload must stall")
	}
	// utilization of the bottleneck approaches 1 but never exceeds it
	if st.MaxChannelUtil > 1.0001 {
		t.Fatalf("channel utilization %v exceeds 1", st.MaxChannelUtil)
	}
	if st.MaxChannelUtil < 0.9 {
		t.Fatalf("bottleneck only %.2f utilized under overload", st.MaxChannelUtil)
	}
}

func TestLatencyLowerBoundIsHopDistance(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(0, 0, 1) // same row: 1 hop
	st := run(t, d, Config{QueueDepth: 8, PacketFlits: 4, Adaptive: false, MaxCandidates: 1},
		[]TrafficSpec{{Src: src, Dst: dst, Rate: 0.01}}, 20000, 19)
	// 1 hop × 4 flits = 4 cycles minimum
	if st.MeanLatency < 4 {
		t.Fatalf("mean latency %.1f below physical minimum", st.MeanLatency)
	}
	if st.MeanLatency > 8 {
		t.Fatalf("idle 1-hop latency %.1f too high", st.MeanLatency)
	}
}

func TestDeterministic(t *testing.T) {
	d := tiny(t)
	streams := []TrafficSpec{{Src: d.RouterAt(0, 0, 0), Dst: d.RouterAt(1, 1, 1), Rate: 0.1}}
	a := run(t, d, DefaultConfig(), streams, 10000, 23)
	b := run(t, d, DefaultConfig(), streams, 10000, 23)
	if a.Delivered != b.Delivered || a.MeanLatency != b.MeanLatency {
		t.Fatal("simulation not deterministic")
	}
}

// TestFlowModelAgreesWithPacketModel is the cross-check DESIGN.md promises:
// the flow model's slowdown ordering across load levels must match the
// packet model's latency ordering.
func TestFlowModelAgreesWithPacketModel(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(2, 1, 1)

	// packet model latencies at three load levels
	var packetLat [3]float64
	rates := [3]float64{0.03, 0.12, 0.2}
	for i, r := range rates {
		st := run(t, d, Config{QueueDepth: 8, PacketFlits: 4, Adaptive: false, MaxCandidates: 1},
			[]TrafficSpec{{Src: src, Dst: dst, Rate: r}}, 40000, 29)
		packetLat[i] = st.MeanLatency
	}
	// the ordering must be strictly increasing and super-linear — the same
	// property netsim's queueDelay encodes (verified in netsim's tests)
	if !(packetLat[0] < packetLat[1] && packetLat[1] < packetLat[2]) {
		t.Fatalf("packet latencies not ordered: %v", packetLat)
	}
	gain1 := packetLat[1] - packetLat[0]
	gain2 := packetLat[2] - packetLat[1]
	if gain2 <= gain1 {
		t.Fatalf("packet model not convex in load: gains %v then %v", gain1, gain2)
	}
}

func TestVirtualChannelsRelieveHOLBlocking(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(2, 1, 1)
	// a near-saturating "response" stream plus a light "request" stream on
	// the same route: with one VC the requests queue behind the response
	// backlog; with two VCs they keep their own (nearly empty) buffers.
	// Total load stays below channel capacity so the effect is pure
	// head-of-line blocking, not bandwidth sharing.
	streams := []TrafficSpec{
		{Src: src, Dst: dst, Rate: 0.015, VC: 0}, // light requests
		{Src: src, Dst: dst, Rate: 0.23, VC: 1},  // heavy responses (~95% load)
	}
	requestLatency := func(vcs int) float64 {
		cfg := Config{QueueDepth: 6, PacketFlits: 4, Adaptive: false, MaxCandidates: 1, VirtualChannels: vcs}
		sim := New(d, cfg, rng.New(41))
		st, err := sim.Run(streams, 60000)
		if err != nil {
			t.Fatal(err)
		}
		// with one VC both classes share index 0
		return st.LatencyByVC[0]
	}
	one := requestLatency(1)
	two := requestLatency(2)
	if two >= one*0.9 {
		t.Fatalf("separate request VC should cut request latency: 1vc=%.1f 2vc=%.1f", one, two)
	}
}

func TestVCStallAccounting(t *testing.T) {
	d := tiny(t)
	src, dst := d.RouterAt(0, 0, 0), d.RouterAt(1, 1, 2)
	sim := New(d, DefaultConfig(), rng.New(43))
	st, err := sim.Run([]TrafficSpec{
		{Src: src, Dst: dst, Rate: 0.3, VC: 0},
		{Src: src, Dst: dst, Rate: 0.3, VC: 1},
	}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.StallsByVC) != 2 {
		t.Fatalf("StallsByVC = %v", st.StallsByVC)
	}
	sum := st.StallsByVC[0] + st.StallsByVC[1]
	if sum != st.TotalStallCycles {
		t.Fatalf("per-VC stalls %d don't sum to total %d", sum, st.TotalStallCycles)
	}
	// out-of-range VC clamps rather than panics
	sim2 := New(d, DefaultConfig(), rng.New(44))
	if _, err := sim2.Run([]TrafficSpec{{Src: src, Dst: dst, Rate: 0.1, VC: 99}}, 1000); err != nil {
		t.Fatal(err)
	}
}
