// Package desim is a packet-level, cycle-driven network simulator over the
// same dragonfly topology as the flow model in package netsim. It models
// what the flow model abstracts away — per-packet queueing, head-of-line
// blocking, credit-style backpressure — and exists to validate the flow
// model's qualitative behaviour on small configurations: that latency
// grows convexly with utilization, that stalls concentrate on shared
// links, and that adaptive path choice relieves hotspots.
//
// It is deliberately small-scale: cycle-driven simulation of a full Cori
// would be prohibitive, which is exactly why the campaign uses the flow
// model. The cross-check lives in this package's tests and in the
// BenchmarkAblationFlowVsPacket harness.
package desim

import (
	"fmt"
	"sort"

	"dragonvar/internal/rng"
	"dragonvar/internal/routing"
	"dragonvar/internal/topology"
)

// Config parameterizes the packet simulator.
type Config struct {
	// QueueDepth is the per-channel, per-VC input buffer capacity, in
	// packets.
	QueueDepth int
	// VirtualChannels is the number of VCs per channel (default 1).
	// Traffic classes mapped to different VCs do not head-of-line block
	// each other — the mechanism behind the Aries request/response VC
	// split that Table II's PT_*_RQ / PT_*_RS counters observe.
	VirtualChannels int
	// PacketFlits is the packet length; a channel is busy that many cycles
	// per packet.
	PacketFlits int
	// Adaptive picks the least-occupied candidate route at injection;
	// false always takes the first minimal path.
	Adaptive bool
	// MaxCandidates bounds the adaptive candidate set.
	MaxCandidates int
}

// DefaultConfig returns sane defaults.
func DefaultConfig() Config {
	return Config{QueueDepth: 8, PacketFlits: 4, Adaptive: true, MaxCandidates: 4, VirtualChannels: 2}
}

// TrafficSpec is one packet stream: Poisson injections between two routers.
type TrafficSpec struct {
	Src, Dst topology.RouterID
	// Rate is the injection probability per cycle (expected packets/cycle).
	Rate float64
	// VC is the virtual channel the stream's packets travel on (clamped to
	// the configured channel count). Use 0 for requests, 1 for responses.
	VC int
}

// Stats is the outcome of a simulation.
type Stats struct {
	Cycles           int
	Injected         int
	Delivered        int
	MeanLatency      float64 // cycles, delivered packets
	P99Latency       float64
	StallCycles      map[topology.RouterID]int // head-of-line blocked cycles per router
	StallsByVC       []int                     // stall cycles per virtual channel
	LatencyByVC      []float64                 // mean delivered latency per virtual channel
	MaxChannelUtil   float64
	TotalStallCycles int
}

// packet is an in-flight packet.
type packet struct {
	route    []channelID
	hop      int
	vc       int // virtual channel the packet travels on
	injected int // cycle of injection
	readyAt  int // cycle the packet finishes arriving at its current queue
	moved    int // last cycle the packet advanced (one hop per cycle max)
	stream   int
}

// channelID indexes the directed channels: link l has channels 2l (A→B)
// and 2l+1 (B→A).
type channelID int32

// Simulator is a cycle-driven packet simulator. Not safe for concurrent
// use.
type Simulator struct {
	topo *topology.Dragonfly
	eng  *routing.Engine
	cfg  Config

	// per-channel state; queues are indexed channel*numVC + vc
	busyUntil []int // cycle the channel finishes its current packet
	numVC     int
	queues    [][]*packet // per-(channel, vc) input queue at the receiving router

	// per-router, per-VC injection queues (indexed router*numVC + vc):
	// NIC injection FIFOs are per virtual channel, so a backlog of one
	// class does not head-of-line block the other at the source
	inject [][]*packet

	stats Stats
	s     *rng.Stream

	latencies []float64
	latSumVC  []float64
	latCntVC  []int
}

// New builds a simulator over machine d.
func New(d *topology.Dragonfly, cfg Config, s *rng.Stream) *Simulator {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.PacketFlits <= 0 {
		cfg.PacketFlits = 4
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 4
	}
	if cfg.VirtualChannels <= 0 {
		cfg.VirtualChannels = 1
	}
	return &Simulator{
		topo:      d,
		eng:       routing.NewEngine(d),
		cfg:       cfg,
		busyUntil: make([]int, 2*len(d.Links)),
		numVC:     cfg.VirtualChannels,
		queues:    make([][]*packet, 2*len(d.Links)*cfg.VirtualChannels),
		inject:    make([][]*packet, d.Cfg.NumRouters()*cfg.VirtualChannels),
		s:         s,
		stats: Stats{
			StallCycles: make(map[topology.RouterID]int),
			StallsByVC:  make([]int, cfg.VirtualChannels),
			LatencyByVC: make([]float64, cfg.VirtualChannels),
		},
		latSumVC: make([]float64, cfg.VirtualChannels),
		latCntVC: make([]int, cfg.VirtualChannels),
	}
}

// queueOf returns the (channel, vc) input queue index.
func (sim *Simulator) queueOf(c channelID, vc int) int {
	return int(c)*sim.numVC + vc
}

// directedRoute converts a path (undirected link list) from src into the
// directed channel sequence.
func (sim *Simulator) directedRoute(src topology.RouterID, p routing.Path) []channelID {
	out := make([]channelID, len(p.Links))
	cur := src
	for i, l := range p.Links {
		link := sim.topo.Links[l]
		if link.A == cur {
			out[i] = channelID(2 * l)
		} else {
			out[i] = channelID(2*l + 1)
		}
		cur = link.Other(cur)
	}
	return out
}

// receiverOf returns the router a channel delivers into.
func (sim *Simulator) receiverOf(c channelID) topology.RouterID {
	link := sim.topo.Links[c/2]
	if c%2 == 0 {
		return link.B
	}
	return link.A
}

// Run simulates the streams for the given number of cycles and returns
// the statistics. The simulator is single-use.
func (sim *Simulator) Run(streams []TrafficSpec, cycles int) (Stats, error) {
	type streamState struct {
		spec   TrafficSpec
		vc     int
		routes [][]channelID
	}
	states := make([]streamState, len(streams))
	for i, ts := range streams {
		if ts.Src == ts.Dst {
			return Stats{}, fmt.Errorf("desim: stream %d is a self-loop", i)
		}
		vc := ts.VC
		if vc < 0 {
			vc = 0
		}
		if vc >= sim.numVC {
			vc = sim.numVC - 1
		}
		paths := sim.eng.MinimalPaths(ts.Src, ts.Dst, sim.cfg.MaxCandidates, nil)
		routes := make([][]channelID, len(paths))
		for j, p := range paths {
			routes[j] = sim.directedRoute(ts.Src, p)
		}
		states[i] = streamState{spec: ts, vc: vc, routes: routes}
	}

	channelBusyCycles := make([]int, len(sim.busyUntil))

	for cycle := 0; cycle < cycles; cycle++ {
		// 1. inject new packets
		for si := range states {
			st := &states[si]
			if sim.s.Float64() >= st.spec.Rate {
				continue
			}
			ri := 0
			if sim.cfg.Adaptive && len(st.routes) > 1 {
				// UGAL-style choice with global information: take the
				// candidate with the least queued traffic along its route
				best, bestOcc := 0, 1<<30
				for j, r := range st.routes {
					occ := 0
					for _, c := range r {
						occ += len(sim.queues[sim.queueOf(c, st.vc)])
						if sim.busyUntil[c] > cycle {
							occ++
						}
					}
					if occ < bestOcc {
						best, bestOcc = j, occ
					}
				}
				ri = best
			}
			sim.stats.Injected++
			iq := int(st.spec.Src)*sim.numVC + st.vc
			sim.inject[iq] = append(sim.inject[iq], &packet{
				route: st.routes[ri], vc: st.vc, injected: cycle, readyAt: cycle,
				moved: -1, stream: si,
			})
		}

		// 2. move packets: head of each queue tries to enter its next
		// channel. Iterate channels in a fixed order (round-robin fairness
		// is approximated by the per-cycle sweep).
		advance := func(q []*packet, fromRouter topology.RouterID) []*packet {
			if len(q) == 0 {
				return q
			}
			p := q[0]
			if p.readyAt > cycle || p.moved == cycle {
				return q // still arriving, or already advanced this cycle
			}
			if p.hop >= len(p.route) {
				// delivered at the destination router
				sim.stats.Delivered++
				lat := float64(cycle - p.injected)
				sim.latencies = append(sim.latencies, lat)
				sim.latSumVC[p.vc] += lat
				sim.latCntVC[p.vc]++
				return q[1:]
			}
			next := p.route[p.hop]
			if sim.busyUntil[next] > cycle {
				sim.stats.StallCycles[fromRouter]++
				sim.stats.StallsByVC[p.vc]++
				sim.stats.TotalStallCycles++
				return q
			}
			// backpressure: the downstream per-VC buffer must have space
			nextQ := sim.queueOf(next, p.vc)
			if len(sim.queues[nextQ]) >= sim.cfg.QueueDepth {
				sim.stats.StallCycles[fromRouter]++
				sim.stats.StallsByVC[p.vc]++
				sim.stats.TotalStallCycles++
				return q
			}
			sim.busyUntil[next] = cycle + sim.cfg.PacketFlits
			channelBusyCycles[next] += sim.cfg.PacketFlits
			p.hop++
			p.readyAt = cycle + sim.cfg.PacketFlits
			p.moved = cycle
			sim.queues[nextQ] = append(sim.queues[nextQ], p)
			return q[1:]
		}

		for qi := range sim.inject {
			r := topology.RouterID(qi / sim.numVC)
			vc := qi % sim.numVC
			// rotate which VC injects first each cycle, like the channel
			// arbitration below
			slot := int(r)*sim.numVC + (vc+cycle)%sim.numVC
			sim.inject[slot] = advance(sim.inject[slot], r)
		}
		for qi := range sim.queues {
			// per-cycle VC arbitration: rotate which VC of a channel is
			// served first so neither class starves
			c := channelID(qi / sim.numVC)
			vc := qi % sim.numVC
			slot := sim.queueOf(c, (vc+cycle)%sim.numVC)
			recv := sim.receiverOf(c)
			sim.queues[slot] = advance(sim.queues[slot], recv)
		}
	}

	sim.stats.Cycles = cycles
	for vc := 0; vc < sim.numVC; vc++ {
		if sim.latCntVC[vc] > 0 {
			sim.stats.LatencyByVC[vc] = sim.latSumVC[vc] / float64(sim.latCntVC[vc])
		}
	}
	if len(sim.latencies) > 0 {
		var sum float64
		for _, v := range sim.latencies {
			sum += v
		}
		sim.stats.MeanLatency = sum / float64(len(sim.latencies))
		sorted := append([]float64(nil), sim.latencies...)
		sort.Float64s(sorted)
		sim.stats.P99Latency = sorted[len(sorted)*99/100]
	}
	for c, busy := range channelBusyCycles {
		u := float64(busy) / float64(cycles)
		if u > sim.stats.MaxChannelUtil {
			sim.stats.MaxChannelUtil = u
		}
		_ = c
	}
	return sim.stats, nil
}
