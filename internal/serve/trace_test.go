package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"dragonvar/internal/modelstore"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
)

// postJSONHeader is postJSON with an optional traceparent request header.
func postJSONHeader(t *testing.T, url string, body any, traceparent string) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set(telemetry.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestRequestTraceJoinsCallerTrace pins the serving half of the propagation
// contract: a request carrying a traceparent header gets a serve/request
// span in the caller's trace, the span's identity is echoed back in the
// response traceparent header, and serve/admit + serve/predict children
// record the admission and model phases.
func TestRequestTraceJoinsCallerTrace(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{Forecaster: f})

	callerTrace := telemetry.NewTraceID()
	callerSpan := telemetry.NewSpanID()
	header := telemetry.FormatTraceparent(telemetry.SpanContext{Trace: callerTrace, Span: callerSpan})

	win := randomWindow(rng.New(21))
	for i := 0; i < 2; i++ { // second request hits the prediction cache
		resp := postForecastWithHeader(t, ts.URL, win, header)
		got := resp.Header.Get(telemetry.TraceparentHeader)
		sc, err := telemetry.ParseTraceparent(got)
		if err != nil {
			t.Fatalf("response traceparent %q: %v", got, err)
		}
		if sc.Trace != callerTrace {
			t.Fatalf("response trace %s, want the caller's %s", sc.Trace, callerTrace)
		}
	}

	snap := reg.Snapshot()
	var reqSpans, admitSpans, predictSpans []telemetry.SpanRecord
	byID := map[string]telemetry.SpanRecord{}
	for _, sp := range snap.Spans {
		byID[sp.SpanID] = sp
		switch sp.Name {
		case telemetry.SpanServeRequest:
			reqSpans = append(reqSpans, sp)
		case telemetry.SpanServeAdmit:
			admitSpans = append(admitSpans, sp)
		case telemetry.SpanServePredict:
			predictSpans = append(predictSpans, sp)
		}
	}
	if len(reqSpans) != 2 || len(admitSpans) != 2 {
		t.Fatalf("got %d request / %d admit spans, want 2 / 2", len(reqSpans), len(admitSpans))
	}
	if len(predictSpans) != 1 { // cache hit skips the model
		t.Fatalf("got %d predict spans, want 1 (second request is cached)", len(predictSpans))
	}
	cached := map[string]bool{}
	for _, sp := range reqSpans {
		if sp.TraceID != callerTrace.String() {
			t.Errorf("request span in trace %s, want %s", sp.TraceID, callerTrace)
		}
		if sp.ParentSpanID != callerSpan.String() {
			t.Errorf("request span parented to %q, want the caller's span %s", sp.ParentSpanID, callerSpan)
		}
		if sp.Attrs["endpoint"] != "forecast" {
			t.Errorf("request span endpoint = %q, want forecast", sp.Attrs["endpoint"])
		}
		cached[sp.Attrs["cached"]] = true
	}
	if !cached["true"] || !cached["false"] {
		t.Errorf("request spans should record one cached=false and one cached=true, got %v", cached)
	}
	for _, sp := range append(admitSpans, predictSpans...) {
		p, ok := byID[sp.ParentSpanID]
		if !ok || p.Name != telemetry.SpanServeRequest {
			t.Errorf("%s span not parented to a request span (parent %q)", sp.Name, sp.ParentSpanID)
		}
	}
	for _, sp := range admitSpans {
		if sp.Attrs["outcome"] != "admitted" {
			t.Errorf("admit span outcome = %q, want admitted", sp.Attrs["outcome"])
		}
	}
}

// TestRequestTraceMalformedHeaderAndDisabled: a malformed traceparent
// degrades to a fresh root (still echoed back); with telemetry off the
// response carries no traceparent at all.
func TestRequestTraceMalformedHeaderAndDisabled(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)

	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{Forecaster: f})

	resp := postForecastWithHeader(t, ts.URL, randomWindow(rng.New(22)), "00-zznotvalid")
	sc, err := telemetry.ParseTraceparent(resp.Header.Get(telemetry.TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent after malformed request header: %v", err)
	}
	snap := reg.Snapshot()
	found := false
	for _, sp := range snap.Spans {
		if sp.Name == telemetry.SpanServeRequest && sp.SpanID == sc.Span.String() {
			found = true
			if sp.ParentSpanID != "" {
				t.Errorf("malformed header should yield a fresh root, got parent %q", sp.ParentSpanID)
			}
		}
	}
	if !found {
		t.Error("response traceparent does not match any recorded serve/request span")
	}

	telemetry.Disable()
	resp = postForecastWithHeader(t, ts.URL, randomWindow(rng.New(23)), "")
	if got := resp.Header.Get(telemetry.TraceparentHeader); got != "" {
		t.Fatalf("telemetry off but response carries traceparent %q", got)
	}
}

// TestPerEndpointCounters: each API endpoint owns a request counter on
// /metrics, split out from the aggregate serve/requests_total.
func TestPerEndpointCounters(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	f := trainForecaster(t)
	m := trainGBR(t)
	_, ts := newTestServer(t, Config{
		Forecaster: f,
		GBR:        m,
		GBRMeta:    modelstore.Meta{FeatureNames: []string{"x", "y", "z"}},
	})

	postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: randomWindow(rng.New(24))})
	postJSON(t, ts.URL+"/v1/deviation", deviationRequest{Features: []float64{1, 2, 3}})
	postJSON(t, ts.URL+"/v1/deviation", deviationRequest{Features: []float64{4, 5, 6}})
	postJSON(t, ts.URL+"/v1/advisor/blame", blameRequest{RunningUsers: []string{"u1"}}) // 503: no advisor, still counted
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/v1/spec")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	c := reg.Snapshot().Counters
	for name, want := range map[string]int64{
		telemetry.MServeForecastReqs:  1,
		telemetry.MServeDeviationReqs: 2,
		telemetry.MServeBlameReqs:     1,
		telemetry.MServeSpecReqs:      3,
		telemetry.MServeRequests:      4, // spec bypasses the admission pipeline
	} {
		if c[name] != want {
			t.Errorf("%s = %d, want %d", name, c[name], want)
		}
	}
}

// postForecastWithHeader posts a forecast request with an optional
// traceparent header and returns the response (body drained and closed).
func postForecastWithHeader(t *testing.T, base string, win [][]float64, traceparent string) *http.Response {
	t.Helper()
	resp, body := postJSONHeader(t, base+"/v1/forecast", forecastRequest{Window: win}, traceparent)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast: HTTP %d: %s", resp.StatusCode, body)
	}
	return resp
}
