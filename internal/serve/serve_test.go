package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dragonvar/internal/gbr"
	"dragonvar/internal/linalg"
	"dragonvar/internal/modelstore"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
)

const (
	testM = 5 // window steps
	testH = 3 // features per step
)

func trainForecaster(t *testing.T) *nn.Forecaster {
	t.Helper()
	s := rng.New(7)
	samples := make([]nn.Sample, 60)
	for i := range samples {
		steps := make([][]float64, testM)
		for st := range steps {
			row := make([]float64, testH)
			for j := range row {
				row[j] = s.Float64() * 4
			}
			steps[st] = row
		}
		samples[i] = nn.Sample{Steps: steps, Target: 10 + steps[testM-1][0]*2}
	}
	return nn.Train(samples, nn.Config{Epochs: 3}, s)
}

func trainGBR(t *testing.T) *gbr.Model {
	t.Helper()
	s := rng.New(8)
	x := linalg.NewMatrix(200, 3)
	y := make([]float64, 200)
	for i := 0; i < 200; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, s.Float64())
		}
		y[i] = 3*x.At(i, 0) + x.At(i, 1)
	}
	return gbr.Fit(x, y, nil, nil, gbr.Options{NumTrees: 10}, s)
}

// randomWindow yields a fresh valid forecast window.
func randomWindow(s *rng.Stream) [][]float64 {
	w := make([][]float64, testM)
	for i := range w {
		row := make([]float64, testH)
		for j := range row {
			row[j] = s.Float64() * 4
		}
		w[i] = row
	}
	return w
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestForecastMatchesDirectPrediction: the HTTP path (batching, caching,
// JSON) must return exactly what the in-process model returns.
func TestForecastMatchesDirectPrediction(t *testing.T) {
	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{Forecaster: f})
	s := rng.New(11)
	for i := 0; i < 5; i++ {
		w := randomWindow(s)
		want := f.PredictAll([]nn.Sample{{Steps: w}})[0]
		resp, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var got forecastResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Prediction != want {
			t.Fatalf("window %d: served %v, model says %v", i, got.Prediction, want)
		}
		if got.Cached {
			t.Fatalf("window %d: fresh window reported cached", i)
		}
	}
}

// TestForecastCacheHit: the same window served twice must come from the
// LRU on the second request.
func TestForecastCacheHit(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	f := trainForecaster(t)
	srv, ts := newTestServer(t, Config{Forecaster: f})
	w := randomWindow(rng.New(12))

	var first forecastResponse
	_, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	var second forecastResponse
	_, body = postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first %v, second %v; want false, true", first.Cached, second.Cached)
	}
	if second.Prediction != first.Prediction {
		t.Fatalf("cache returned %v, model returned %v", second.Prediction, first.Prediction)
	}
	if srv.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", srv.CacheLen())
	}
	if hits := reg.Counter(telemetry.MServeCacheHits).Value(); hits != 1 {
		t.Fatalf("cache hit counter = %d, want 1", hits)
	}
}

func TestForecastRejectsBadWindows(t *testing.T) {
	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{Forecaster: f})
	cases := []forecastRequest{
		{Window: nil},
		{Window: make([][]float64, testM)}, // nil rows
		{Window: [][]float64{{1, 2, 3}}},   // wrong step count
	}
	for i, c := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/forecast", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/forecast", "application/json",
		strings.NewReader(`{"window": not-json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/forecast"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET forecast: status %d, want 405", resp.StatusCode)
		}
	}
}

func TestDeviationEndpoint(t *testing.T) {
	m := trainGBR(t)
	_, ts := newTestServer(t, Config{GBR: m,
		GBRMeta: modelstore.Meta{FeatureNames: []string{"f0", "f1", "f2"}}})
	features := []float64{0.3, 0.5, 0.9}
	resp, body := postJSON(t, ts.URL+"/v1/deviation", deviationRequest{Features: features})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got deviationResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if want := m.Predict(features); got.Deviation != want {
		t.Fatalf("served %v, model says %v", got.Deviation, want)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/deviation", deviationRequest{Features: []float64{1}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong feature count: status %d, want 400", resp.StatusCode)
	}
	// forecaster not loaded → its endpoint is 503, deviation still works
	if resp, _ := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("forecast without model: status %d, want 503", resp.StatusCode)
	}
}

// TestQueueFullSheds429: with one execution slot and a one-deep queue, a
// third concurrent request must be shed with 429 while the first is
// parked inside a long batch window.
func TestQueueFullSheds429(t *testing.T) {
	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{
		Forecaster:  f,
		MaxInflight: 1,
		MaxQueue:    1,
		MaxBatch:    64,
		BatchWindow: 400 * time.Millisecond, // first request parks here
	})
	s := rng.New(13)

	type shedResult struct {
		status     int
		retryAfter string
	}
	statuses := make(chan shedResult, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := randomWindow(s) // distinct windows: no cache short-circuit
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
			statuses <- shedResult{resp.StatusCode, resp.Header.Get("Retry-After")}
		}()
		// let request i occupy its slot before launching i+1
		time.Sleep(100 * time.Millisecond)
	}
	wg.Wait()
	close(statuses)
	counts := map[int]int{}
	for r := range statuses {
		counts[r.status]++
		if r.status == http.StatusTooManyRequests && r.retryAfter == "" {
			t.Error("429 shed response carries no Retry-After header")
		}
	}
	if counts[http.StatusOK] != 2 || counts[http.StatusTooManyRequests] != 1 {
		t.Fatalf("status mix %v, want two 200s and one 429", counts)
	}
}

// TestGracefulDrain: during Drain, new requests get 503, /readyz flips,
// and the in-flight request completes with a real prediction.
func TestGracefulDrain(t *testing.T) {
	f := trainForecaster(t)
	srv, ts := newTestServer(t, Config{
		Forecaster:  f,
		BatchWindow: 300 * time.Millisecond,
	})
	s := rng.New(14)

	inflight := make(chan forecastResponse, 1)
	inflightStatus := make(chan int, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: randomWindow(s)})
		inflightStatus <- resp.StatusCode
		var fr forecastResponse
		json.Unmarshal(body, &fr)
		inflight <- fr
	}()
	time.Sleep(100 * time.Millisecond) // request is now parked in the batch window

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	time.Sleep(50 * time.Millisecond) // Drain is now waiting on the in-flight request

	if !srv.Draining() {
		t.Fatal("Draining() = false during drain")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: status %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: randomWindow(s)}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("503 drain response carries no Retry-After header")
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz during drain: status %d, want 200", resp.StatusCode)
		}
	}

	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not finish")
	}
	if st := <-inflightStatus; st != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", st)
	}
	fr := <-inflight
	if fr.Prediction == 0 {
		t.Fatal("in-flight request got no prediction")
	}
	// Drain is idempotent
	srv.Drain()
}

// TestBatchingCoalesces: concurrent distinct requests inside one window
// must be answered by fewer model calls than requests, with every answer
// byte-identical to a direct PredictAll.
func TestBatchingCoalesces(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{
		Forecaster:  f,
		BatchWindow: 150 * time.Millisecond,
	})
	s := rng.New(15)
	const n = 8
	windows := make([][][]float64, n)
	for i := range windows {
		windows[i] = randomWindow(s)
	}

	preds := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: windows[i]})
			var fr forecastResponse
			if err := json.Unmarshal(body, &fr); err == nil {
				preds[i] = fr.Prediction
			}
		}()
	}
	wg.Wait()

	samples := make([]nn.Sample, n)
	for i := range samples {
		samples[i] = nn.Sample{Steps: windows[i]}
	}
	want := f.PredictAll(samples)
	for i := range want {
		if preds[i] != want[i] {
			t.Fatalf("request %d: batched %v, direct %v", i, preds[i], want[i])
		}
	}
	if batches := reg.Counter(telemetry.MServeBatches).Value(); batches >= n {
		t.Fatalf("%d model calls for %d concurrent requests: nothing coalesced", batches, n)
	}
}

func TestMetricsAndSpecEndpoints(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	f := trainForecaster(t)
	_, ts := newTestServer(t, Config{
		Forecaster:   f,
		ForecastMeta: modelstore.Meta{Dataset: "AMG-128", Spec: "m=5 k=2 app", M: testM, K: 2, FeatureNames: []string{"a", "b", "c"}},
		ForecastID:   "deadbeef",
	})
	postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: randomWindow(rng.New(16))})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"serve_requests_total", "serve_forecast_seconds", "serve_cache_misses"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/spec")
	if err != nil {
		t.Fatal(err)
	}
	var spec specResponse
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if spec.Dataset != "AMG-128" || spec.M != testM || spec.ForecastModel != "deadbeef" {
		t.Fatalf("spec = %+v", spec)
	}
	if fmt.Sprint(spec.WindowFeatures) != "[a b c]" {
		t.Fatalf("window features = %v", spec.WindowFeatures)
	}
}
