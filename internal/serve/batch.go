package serve

import (
	"context"
	"errors"
	"time"

	"dragonvar/internal/nn"
	"dragonvar/internal/telemetry"
)

// errStopped is returned by predict when the batcher has been stopped
// (the server is past drain and cannot serve model calls anymore).
var errStopped = errors.New("serve: batcher stopped")

// forecastReq is one caller waiting for a prediction. reply is buffered
// (capacity 1) so the batch loop never blocks on a caller that gave up.
type forecastReq struct {
	steps [][]float64
	reply chan float64
}

// batcher coalesces concurrent forecast requests into single model calls:
// the first request of a batch opens a short collection window, everything
// that arrives within it (up to maxBatch) is predicted in one
// nn.PredictAll pass, and the results fan back out. Inference is read-only
// on the trained model, so one batched call is equivalent to n sequential
// Predicts — batching changes latency and throughput, never values.
type batcher struct {
	model    *nn.Forecaster
	in       chan forecastReq
	stopped  chan struct{} // closed by the loop on exit
	maxBatch int
	window   time.Duration

	batches   *telemetry.Counter
	batchSize *telemetry.Histogram
}

// newBatcher starts the collection loop.
func newBatcher(model *nn.Forecaster, maxBatch int, window time.Duration) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	b := &batcher{
		model:     model,
		in:        make(chan forecastReq, maxBatch),
		stopped:   make(chan struct{}),
		maxBatch:  maxBatch,
		window:    window,
		batches:   telemetry.C(telemetry.MServeBatches),
		batchSize: telemetry.H(telemetry.MServeBatchSize, telemetry.CountBuckets),
	}
	go b.loop()
	return b
}

// predict submits one window and waits for its batch to complete. The
// context bounds the wait; an abandoned request still gets its slot in the
// batch but nobody reads the buffered reply.
func (b *batcher) predict(ctx context.Context, steps [][]float64) (float64, error) {
	req := forecastReq{steps: steps, reply: make(chan float64, 1)}
	select {
	case b.in <- req:
	case <-b.stopped:
		return 0, errStopped
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	select {
	case v := <-req.reply:
		return v, nil
	case <-b.stopped:
		// the loop flushes every accepted request before exiting, so a
		// close can still race a late reply: prefer the reply
		select {
		case v := <-req.reply:
			return v, nil
		default:
			return 0, errStopped
		}
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// stop shuts the intake down and waits for the loop to flush accepted
// requests. Call only after in-flight HTTP handlers have drained.
func (b *batcher) stop() {
	close(b.in)
	<-b.stopped
}

// loop is the collection goroutine.
func (b *batcher) loop() {
	defer close(b.stopped)
	for {
		first, ok := <-b.in
		if !ok {
			return
		}
		batch := append(make([]forecastReq, 0, b.maxBatch), first)
		timer := time.NewTimer(b.window)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case r, ok := <-b.in:
				if !ok {
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()

		samples := make([]nn.Sample, len(batch))
		for i, r := range batch {
			samples[i] = nn.Sample{Steps: r.steps}
		}
		preds := b.model.PredictAll(samples)
		for i, r := range batch {
			r.reply <- preds[i] // buffered; never blocks
		}
		b.batches.Inc()
		b.batchSize.Observe(float64(len(batch)))
	}
}
