package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
)

// trainForecasterSeed is trainForecaster with a controllable seed, so a
// swap test can install a model that predicts differently.
func trainForecasterSeed(t *testing.T, seed int64) *nn.Forecaster {
	t.Helper()
	s := rng.New(seed)
	samples := make([]nn.Sample, 60)
	for i := range samples {
		steps := make([][]float64, testM)
		for st := range steps {
			row := make([]float64, testH)
			for j := range row {
				row[j] = s.Float64() * 4
			}
			steps[st] = row
		}
		samples[i] = nn.Sample{Steps: steps, Target: 10 + steps[testM-1][0]*2}
	}
	return nn.Train(samples, nn.Config{Epochs: 3}, s)
}

// TestHotSwap: swapping a new model set in changes predictions, flushes
// the cache, repoints the ids, and bumps the reload counter — all
// without restarting the server.
func TestHotSwap(t *testing.T) {
	reg := telemetry.New()
	telemetry.Enable(reg)
	defer telemetry.Disable()

	a := trainForecasterSeed(t, 7)
	b := trainForecasterSeed(t, 99)
	srv, ts := newTestServer(t, Config{Forecaster: a, ForecastID: "model-a"})
	w := randomWindow(rng.New(12))

	var before forecastResponse
	_, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
	json.Unmarshal(body, &before)

	// Warm the cache, then swap.
	_, body = postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
	var cached forecastResponse
	json.Unmarshal(body, &cached)
	if !cached.Cached {
		t.Fatal("second identical request not served from cache")
	}

	if err := srv.Swap(Models{Forecaster: b, ForecastID: "model-b"}); err != nil {
		t.Fatal(err)
	}
	if fid, _, _ := srv.ModelIDs(); fid != "model-b" {
		t.Fatalf("ModelIDs after swap = %q, want model-b", fid)
	}

	var after forecastResponse
	_, body = postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: w})
	json.Unmarshal(body, &after)
	if after.Cached {
		t.Fatal("request after swap served from the old model's cache")
	}
	if after.Prediction == before.Prediction {
		t.Fatalf("prediction unchanged across swap: %v", after.Prediction)
	}
	if got := reg.Counter(telemetry.MServeModelReloads).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", telemetry.MServeModelReloads, got)
	}

	// The spec endpoint reports the new id too.
	resp, err := http.Get(ts.URL + "/v1/spec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spec struct {
		ForecastModel string `json:"forecast_model"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.ForecastModel != "model-b" {
		t.Fatalf("/v1/spec forecast_model = %q, want model-b", spec.ForecastModel)
	}
}

// TestSwapDrainSafe: a request parked in the batch window when Swap
// lands still completes successfully, and the next request is served by
// the new model. The swap never drops or errors in-flight work.
func TestSwapDrainSafe(t *testing.T) {
	a := trainForecasterSeed(t, 7)
	b := trainForecasterSeed(t, 99)
	srv, ts := newTestServer(t, Config{
		Forecaster:  a,
		ForecastID:  "model-a",
		BatchWindow: 300 * time.Millisecond,
	})
	s := rng.New(14)

	inflightStatus := make(chan int, 1)
	inflight := make(chan forecastResponse, 1)
	go func() {
		resp, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: randomWindow(s)})
		inflightStatus <- resp.StatusCode
		var fr forecastResponse
		json.Unmarshal(body, &fr)
		inflight <- fr
	}()
	time.Sleep(100 * time.Millisecond) // request is now parked in the batch window

	if err := srv.Swap(Models{Forecaster: b, ForecastID: "model-b"}); err != nil {
		t.Fatal(err)
	}

	if st := <-inflightStatus; st != http.StatusOK {
		t.Fatalf("in-flight request during swap: status %d, want 200", st)
	}
	if fr := <-inflight; fr.Prediction == 0 {
		t.Fatal("in-flight request got no prediction")
	}

	var after forecastResponse
	_, body := postJSON(t, ts.URL+"/v1/forecast", forecastRequest{Window: randomWindow(s)})
	json.Unmarshal(body, &after)
	if after.Prediction == 0 {
		t.Fatal("post-swap request got no prediction")
	}
	if fid, _, _ := srv.ModelIDs(); fid != "model-b" {
		t.Fatalf("ModelIDs after swap = %q, want model-b", fid)
	}
}

// TestSwapRefusedWhileDraining: a draining server must not accept new
// models — the replica is going away.
func TestSwapRefusedWhileDraining(t *testing.T) {
	a := trainForecasterSeed(t, 7)
	srv, _ := newTestServer(t, Config{Forecaster: a})
	srv.Drain()
	err := srv.Swap(Models{Forecaster: trainForecasterSeed(t, 99)})
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Swap during drain = %v, want draining refusal", err)
	}
}
