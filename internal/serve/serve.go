// Package serve is the online inference layer of the reproduction: an
// HTTP/JSON service that answers forecast, deviation, and advisor queries
// from models trained on campaign data and persisted in a modelstore
// (internal/modelstore). It is the operational end the paper argues for
// (§V, §VII): counter-driven predictions served to a resource manager from
// live monitoring data, rather than recomputed inside one-shot CLI runs.
//
// The serving path is built for sustained traffic:
//
//   - a request-batching loop coalesces concurrent forecast requests into
//     single matrix-sized model calls (batch.go);
//   - an LRU prediction cache short-circuits repeated queries for the same
//     input window (lru.go);
//   - a concurrency limiter with a bounded wait queue sheds overload with
//     429 (queue full) and 503 (draining) instead of collapsing;
//   - every endpoint reports latency, inflight, queue-depth, and cache
//     metrics through the internal/telemetry registry, exposed in
//     OpenMetrics form on /metrics (docs/OBSERVABILITY.md);
//   - Drain stops intake and waits for every admitted request to finish,
//     so a SIGTERM never drops an in-flight response.
//
// Inference is read-only on the loaded models, so responses are
// byte-identical at any concurrency, batch size, or cache state — the
// serving-time extension of the repository's determinism contract.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dragonvar/internal/advisor"
	"dragonvar/internal/gbr"
	"dragonvar/internal/modelstore"
	"dragonvar/internal/nn"
	"dragonvar/internal/telemetry"
)

// maxBodyBytes bounds request payloads; a forecast window is a few
// thousand floats, so 8 MiB is generous.
const maxBodyBytes = 8 << 20

// Config assembles a server from loaded models. Any model may be nil; its
// endpoints then answer 503 so a partially provisioned daemon still serves
// what it has.
type Config struct {
	Forecaster   *nn.Forecaster
	ForecastMeta modelstore.Meta // schema of the forecaster (M, K, FeatureNames)
	ForecastID   string          // modelstore content id, surfaced on /v1/spec

	GBR       *gbr.Model
	GBRMeta   modelstore.Meta
	GBRID     string
	Adv       *advisor.Advisor
	AdvisorID string

	MaxInflight int           // concurrent executing requests; default 64
	MaxQueue    int           // waiting requests beyond MaxInflight before 429; default 256
	MaxBatch    int           // forecast requests per coalesced model call; default 64
	BatchWindow time.Duration // batch collection window; default 2ms
	CacheSize   int           // LRU prediction-cache entries; default 4096
}

// Models is the hot-swappable part of a Config: the loaded models with
// their schemas and content ids. Swap installs a new set atomically while
// requests are in flight.
type Models struct {
	Forecaster   *nn.Forecaster
	ForecastMeta modelstore.Meta
	ForecastID   string

	GBR       *gbr.Model
	GBRMeta   modelstore.Meta
	GBRID     string
	Adv       *advisor.Advisor
	AdvisorID string
}

func (c Config) models() Models {
	return Models{
		Forecaster: c.Forecaster, ForecastMeta: c.ForecastMeta, ForecastID: c.ForecastID,
		GBR: c.GBR, GBRMeta: c.GBRMeta, GBRID: c.GBRID,
		Adv: c.Adv, AdvisorID: c.AdvisorID,
	}
}

// modelSet is one immutable generation of serving state: the models plus
// the per-generation machinery whose contents are model-dependent (the
// batching loop bound to the forecaster, the prediction cache, the window
// shape). Requests pin a generation for their lifetime under modelsMu's
// read lock, so a swap can never mix predictions across generations.
type modelSet struct {
	Models
	m, h    int // forecaster window shape (0 when no forecaster)
	batcher *batcher
	cache   *lru
}

func newModelSet(m Models, cfg Config) *modelSet {
	ms := &modelSet{Models: m, cache: newLRU(cfg.CacheSize)}
	if m.Forecaster != nil {
		ms.m, ms.h = m.Forecaster.WindowShape()
		ms.batcher = newBatcher(m.Forecaster, cfg.MaxBatch, cfg.BatchWindow)
	}
	return ms
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	return c
}

// Server is the inference service. Create with New, expose with Handler,
// stop with Drain.
type Server struct {
	cfg Config

	// models is the current serving generation; modelsMu is held shared
	// for the duration of any model access, so Swap (write lock) installs
	// a new generation only between requests and can safely stop the old
	// generation's batcher afterwards.
	modelsMu sync.RWMutex
	models   *modelSet

	sem     chan struct{}
	waiting atomic.Int64

	draining atomic.Bool
	drainMu  sync.RWMutex // held shared by every admitted request

	mux *http.ServeMux

	reqs, errs, shed       *telemetry.Counter
	cacheHits, cacheMisses *telemetry.Counter
	reloads                *telemetry.Counter
	inflight, drainG       *telemetry.Gauge
	queueDepth             *telemetry.Histogram
	latForecast            *telemetry.Histogram
	latDeviation           *telemetry.Histogram
	latBlame               *telemetry.Histogram
	latSpec                *telemetry.Histogram

	// per-endpoint request counters, split out from the aggregate
	// serve/requests_total so a traffic mix is readable off /metrics
	reqForecast, reqDeviation *telemetry.Counter
	reqBlame, reqSpec         *telemetry.Counter
}

// New builds the server and starts its batching loop. Enable telemetry
// before calling New: metric handles are captured here, at construction
// time, like every other instrumented component.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		sem:         make(chan struct{}, cfg.MaxInflight),
		reqs:        telemetry.C(telemetry.MServeRequests),
		errs:        telemetry.C(telemetry.MServeErrors),
		shed:        telemetry.C(telemetry.MServeShed),
		cacheHits:   telemetry.C(telemetry.MServeCacheHits),
		cacheMisses: telemetry.C(telemetry.MServeCacheMisses),
		reloads:     telemetry.C(telemetry.MServeModelReloads),
		inflight:    telemetry.G(telemetry.GServeInflight),
		drainG:      telemetry.G(telemetry.GServeDraining),
		queueDepth:  telemetry.H(telemetry.MServeQueueDepth, telemetry.QueueDepthBuckets),
		latForecast: telemetry.H(telemetry.MServeForecastSecs, telemetry.LatencyBuckets),
		latDeviation: telemetry.H(telemetry.MServeDeviationSecs,
			telemetry.LatencyBuckets),
		latBlame:     telemetry.H(telemetry.MServeBlameSecs, telemetry.LatencyBuckets),
		latSpec:      telemetry.H(telemetry.MServeSpecSecs, telemetry.LatencyBuckets),
		reqForecast:  telemetry.C(telemetry.MServeForecastReqs),
		reqDeviation: telemetry.C(telemetry.MServeDeviationReqs),
		reqBlame:     telemetry.C(telemetry.MServeBlameReqs),
		reqSpec:      telemetry.C(telemetry.MServeSpecReqs),
	}
	s.models = newModelSet(cfg.models(), cfg)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/spec", s.handleSpec)
	s.mux.HandleFunc("/v1/forecast", s.limited("forecast",
		func() *telemetry.Histogram { return s.latForecast },
		func() *telemetry.Counter { return s.reqForecast }, s.handleForecast))
	s.mux.HandleFunc("/v1/deviation", s.limited("deviation",
		func() *telemetry.Histogram { return s.latDeviation },
		func() *telemetry.Counter { return s.reqDeviation }, s.handleDeviation))
	s.mux.HandleFunc("/v1/advisor/blame", s.limited("blame",
		func() *telemetry.Histogram { return s.latBlame },
		func() *telemetry.Counter { return s.reqBlame }, s.handleBlame))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether a drain is in progress or complete.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain makes the server stop admitting API requests (new arrivals get
// 503, /readyz flips to 503), waits until every already-admitted request
// has finished, then stops the batching loop. Safe to call once; the
// daemon calls it on SIGTERM before http.Server.Shutdown.
func (s *Server) Drain() {
	if s.draining.Swap(true) {
		return
	}
	s.drainG.Set(1)
	// every admitted request holds drainMu.RLock for its lifetime; taking
	// the write lock therefore blocks until the last one completes
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	// modelsMu excludes a concurrent Swap, whose freshly-built batcher
	// would otherwise escape this stop
	s.modelsMu.Lock()
	defer s.modelsMu.Unlock()
	if s.models.batcher != nil {
		s.models.batcher.stop()
	}
}

// acquire pins the current model generation for the caller's lifetime;
// the returned release must be called when done with the models.
func (s *Server) acquire() (*modelSet, func()) {
	s.modelsMu.RLock()
	return s.models, s.modelsMu.RUnlock
}

// Swap atomically installs a new model set: in-flight requests finish on
// the generation they pinned, new arrivals see the new models, the old
// batching loop is stopped after its last request completes, and the
// prediction cache starts cold (its entries belong to the old model).
// Refused once a drain has begun. This is the hot-reload path dfserved
// takes when a published ref advances (or on SIGHUP).
func (s *Server) Swap(m Models) error {
	next := newModelSet(m, s.cfg)
	s.modelsMu.Lock()
	if s.draining.Load() {
		s.modelsMu.Unlock()
		if next.batcher != nil {
			next.batcher.stop()
		}
		return fmt.Errorf("serve: swap refused: draining")
	}
	old := s.models
	s.models = next
	s.modelsMu.Unlock()
	// the write lock excluded every reader of the old generation, so its
	// batcher has no callers left; stop flushes nothing and exits cleanly
	if old.batcher != nil {
		old.batcher.stop()
	}
	s.reloads.Inc()
	return nil
}

// CacheLen returns the current prediction-cache entry count (for tests
// and the spec endpoint).
func (s *Server) CacheLen() int {
	ms, release := s.acquire()
	defer release()
	return ms.cache.len()
}

// ModelIDs returns the content ids of the currently served models — what
// a reloader compares against the store's refs to decide whether to Swap.
func (s *Server) ModelIDs() (forecast, gbr, advisor string) {
	ms, release := s.acquire()
	defer release()
	return ms.ForecastID, ms.GBRID, ms.AdvisorID
}

// apiError is the JSON error body every non-2xx API response carries.
func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON renders a 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// traced opens the per-request serve/request root span: it joins the
// caller's trace when the request carries a W3C traceparent header (a
// malformed header degrades to a fresh root), and echoes the span's own
// identity back in the response traceparent header so clients can
// correlate server-side spans with their request. Tracing is
// observation-only; with telemetry off this is a no-op returning a nil
// (no-op) span handle.
func (s *Server) traced(w http.ResponseWriter, r *http.Request, endpoint string) (*http.Request, *telemetry.Span) {
	ctx := telemetry.ExtractTraceparent(r.Context(), r.Header)
	ctx, span := telemetry.Start(ctx, telemetry.SpanServeRequest)
	span.SetAttr("endpoint", endpoint)
	if sc, ok := span.SpanContext(); ok {
		w.Header().Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(sc))
	}
	return r.WithContext(ctx), span
}

// limited wraps an API handler with the admission pipeline: drain check,
// bounded wait queue, concurrency semaphore, per-endpoint request
// accounting, and the per-request trace span. The metric handles are
// fetched lazily so the wrapper can be built before New finishes wiring
// them.
func (s *Server) limited(endpoint string, lat func() *telemetry.Histogram, cnt func() *telemetry.Counter, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		r, span := s.traced(w, r, endpoint)
		defer span.End()

		// the admit span covers everything between arrival and holding an
		// execution slot: drain check, queue wait, semaphore acquire
		_, admit := telemetry.Start(r.Context(), telemetry.SpanServeAdmit)

		// admission: a shared drain lock held for the request's lifetime.
		// TryRLock fails only while Drain holds (or waits for) the write
		// lock, at which point refusing is exactly the intent.
		if s.draining.Load() || !s.drainMu.TryRLock() {
			s.shed.Inc()
			admit.SetAttr("outcome", "shed-draining")
			admit.End()
			// a drain usually precedes a restart: tell well-behaved clients
			// when it is worth trying again instead of hammering the drain
			w.Header().Set("Retry-After", "5")
			apiError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		defer s.drainMu.RUnlock()

		// bounded queue: waiting counts requests parked on the semaphore
		depth := s.waiting.Add(1)
		if int(depth) > s.cfg.MaxQueue {
			s.waiting.Add(-1)
			s.shed.Inc()
			admit.SetAttr("outcome", "shed-queue-full")
			admit.End()
			// queue-full overload is transient at request timescales
			w.Header().Set("Retry-After", "1")
			apiError(w, http.StatusTooManyRequests, "overloaded: %d requests queued", depth-1)
			return
		}
		s.queueDepth.Observe(float64(depth - 1))
		select {
		case s.sem <- struct{}{}:
		case <-r.Context().Done():
			s.waiting.Add(-1)
			admit.SetAttr("outcome", "cancelled")
			admit.End()
			return // client went away while queued; nothing to answer
		}
		s.waiting.Add(-1)
		admit.SetAttr("outcome", "admitted")
		admit.End()
		s.inflight.Add(1)
		s.reqs.Inc()
		cnt().Inc()
		defer func() {
			<-s.sem
			s.inflight.Add(-1)
			lat().ObserveSince(start)
		}()

		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		fn(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the process's telemetry snapshot in the
// Prometheus/OpenMetrics text exposition format — the same path the other
// CLIs expose via -pprof.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.Active().Snapshot().WriteOpenMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// specResponse tells clients (and the load generator) what the daemon is
// serving: the forecast window geometry and feature schemas.
type specResponse struct {
	Dataset           string   `json:"dataset,omitempty"`
	Spec              string   `json:"spec,omitempty"`
	M                 int      `json:"m"`
	K                 int      `json:"k"`
	WindowFeatures    []string `json:"window_features,omitempty"`
	DeviationFeatures []string `json:"deviation_features,omitempty"`
	ForecastModel     string   `json:"forecast_model,omitempty"`
	DeviationModel    string   `json:"deviation_model,omitempty"`
	AdvisorModel      string   `json:"advisor_model,omitempty"`
	CacheEntries      int      `json:"cache_entries"`
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	_, span := s.traced(w, r, "spec")
	defer span.End()
	s.reqSpec.Inc()
	defer s.latSpec.ObserveSince(start)
	ms, release := s.acquire()
	defer release()
	writeJSON(w, specResponse{
		Dataset:           ms.ForecastMeta.Dataset,
		Spec:              ms.ForecastMeta.Spec,
		M:                 ms.m,
		K:                 ms.ForecastMeta.K,
		WindowFeatures:    ms.ForecastMeta.FeatureNames,
		DeviationFeatures: ms.GBRMeta.FeatureNames,
		ForecastModel:     ms.ForecastID,
		DeviationModel:    ms.GBRID,
		AdvisorModel:      ms.AdvisorID,
		CacheEntries:      ms.cache.len(),
	})
}

// forecastRequest is the /v1/forecast payload: the per-step feature rows
// of the last m steps, in the model's column order (see /v1/spec).
type forecastRequest struct {
	Window [][]float64 `json:"window"`
}

type forecastResponse struct {
	Prediction float64 `json:"prediction"`
	Cached     bool    `json:"cached"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errs.Inc()
		apiError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ms, release := s.acquire()
	defer release()
	if ms.Forecaster == nil {
		s.errs.Inc()
		apiError(w, http.StatusServiceUnavailable, "no forecaster loaded")
		return
	}
	var req forecastRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errs.Inc()
		apiError(w, http.StatusBadRequest, "bad payload: %v", err)
		return
	}
	if len(req.Window) != ms.m {
		s.errs.Inc()
		apiError(w, http.StatusBadRequest, "window has %d steps, model wants %d", len(req.Window), ms.m)
		return
	}
	for i, row := range req.Window {
		if len(row) != ms.h {
			s.errs.Inc()
			apiError(w, http.StatusBadRequest, "window step %d has %d features, model wants %d", i, len(row), ms.h)
			return
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.errs.Inc()
				apiError(w, http.StatusBadRequest, "window[%d][%d] is not finite", i, j)
				return
			}
		}
	}

	key := windowHash(req.Window)
	if pred, ok := ms.cache.get(key); ok {
		s.cacheHits.Inc()
		telemetry.FromContext(r.Context()).SetAttr("cached", "true")
		writeJSON(w, forecastResponse{Prediction: pred, Cached: true})
		return
	}
	s.cacheMisses.Inc()
	telemetry.FromContext(r.Context()).SetAttr("cached", "false")
	pctx, predictSpan := telemetry.Start(r.Context(), telemetry.SpanServePredict)
	pred, err := ms.batcher.predict(pctx, req.Window)
	predictSpan.End()
	if err != nil {
		s.errs.Inc()
		apiError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	ms.cache.put(key, pred)
	writeJSON(w, forecastResponse{Prediction: pred, Cached: false})
}

// deviationRequest is the /v1/deviation payload: one step's mean-centered
// counter deltas in Table II order (see /v1/spec deviation_features).
type deviationRequest struct {
	Features []float64 `json:"features"`
}

type deviationResponse struct {
	Deviation float64 `json:"deviation"`
}

func (s *Server) handleDeviation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.errs.Inc()
		apiError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ms, release := s.acquire()
	defer release()
	if ms.GBR == nil {
		s.errs.Inc()
		apiError(w, http.StatusServiceUnavailable, "no deviation model loaded")
		return
	}
	var req deviationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.errs.Inc()
		apiError(w, http.StatusBadRequest, "bad payload: %v", err)
		return
	}
	want := len(ms.GBRMeta.FeatureNames)
	if want == 0 {
		want = len(ms.GBR.Importance())
	}
	if len(req.Features) != want {
		s.errs.Inc()
		apiError(w, http.StatusBadRequest, "%d features, model wants %d", len(req.Features), want)
		return
	}
	for j, v := range req.Features {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s.errs.Inc()
			apiError(w, http.StatusBadRequest, "features[%d] is not finite", j)
			return
		}
	}
	writeJSON(w, deviationResponse{Deviation: ms.GBR.Predict(req.Features)})
}

// blameRequest is the /v1/advisor/blame payload: the users currently
// running on the system. A GET with no body returns the full blame list.
type blameRequest struct {
	RunningUsers []string `json:"running_users"`
}

type blameResponse struct {
	Delay         bool     `json:"delay"`
	BlamedPresent []string `json:"blamed_present"`
	BlameListSize int      `json:"blame_list_size"`
	Blamed        []string `json:"blamed,omitempty"` // full list, GET only
}

func (s *Server) handleBlame(w http.ResponseWriter, r *http.Request) {
	ms, release := s.acquire()
	defer release()
	if ms.Adv == nil {
		s.errs.Inc()
		apiError(w, http.StatusServiceUnavailable, "no advisor loaded")
		return
	}
	blamed := ms.Adv.Blamed()
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, blameResponse{BlameListSize: len(blamed), Blamed: blamed})
	case http.MethodPost:
		var req blameRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.errs.Inc()
			apiError(w, http.StatusBadRequest, "bad payload: %v", err)
			return
		}
		delay, present := ms.Adv.ShouldDelay(req.RunningUsers)
		if present == nil {
			present = []string{}
		}
		writeJSON(w, blameResponse{Delay: delay, BlamedPresent: present, BlameListSize: len(blamed)})
	default:
		s.errs.Inc()
		apiError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}
