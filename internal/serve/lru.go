package serve

import (
	"container/list"
	"math"
	"sync"
)

// windowHash fingerprints a forecast input window (FNV-1a over the
// float64 bits, row by row). Two byte-identical windows always collide
// onto the same key — which is the point: repeated queries for the same
// network state hit the cache instead of the model.
func windowHash(steps [][]float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, row := range steps {
		for _, v := range row {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				h ^= (bits >> s) & 0xff
				h *= prime
			}
		}
	}
	return h
}

// lru is a fixed-capacity, mutex-guarded LRU map from window hashes to
// predictions. Predictions are tiny (one float64), so the capacity bounds
// entry count, not bytes.
type lru struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[uint64]*list.Element
}

type lruEntry struct {
	key uint64
	val float64
}

func newLRU(capacity int) *lru {
	if capacity <= 0 {
		capacity = 1024
	}
	return &lru{cap: capacity, order: list.New(), items: make(map[uint64]*list.Element, capacity)}
}

func (c *lru) get(key uint64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lru) put(key uint64, val float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
