package viz

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a row × column matrix as a colored grid — used for the
// monitor's per-group × time congestion view. Values[r][c] pairs Rows[r]
// with X[c]; NaN cells (no samples in that bin) render as a neutral gray.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	W, H   int

	Rows   []string    // row labels, rendered top to bottom
	X      []float64   // column coordinates (e.g. bin start times)
	Values [][]float64 // Values[row][col]; NaN = no data
}

// NewHeatmap returns an 800×450 heatmap over the given matrix.
func NewHeatmap(title, xlabel, ylabel string, rows []string, x []float64, values [][]float64) *Heatmap {
	return &Heatmap{Title: title, XLabel: xlabel, YLabel: ylabel, W: 800, H: 450,
		Rows: rows, X: x, Values: values}
}

// heatColor maps a normalized value in [0,1] onto a white→orange→red ramp.
func heatColor(v float64) string {
	stops := [][3]float64{{255, 255, 204}, {253, 141, 60}, {189, 0, 38}}
	if v <= 0 {
		return rgb(stops[0])
	}
	if v >= 1 {
		return rgb(stops[2])
	}
	seg, frac := 0, v*2
	if frac > 1 {
		seg, frac = 1, frac-1
	}
	a, b := stops[seg], stops[seg+1]
	return rgb([3]float64{
		a[0] + frac*(b[0]-a[0]),
		a[1] + frac*(b[1]-a[1]),
		a[2] + frac*(b[2]-a[2]),
	})
}

func rgb(c [3]float64) string {
	return fmt.Sprintf("#%02x%02x%02x", int(c[0]), int(c[1]), int(c[2]))
}

// bounds returns the finite value range (0, 1 when every cell is NaN).
func (h *Heatmap) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, row := range h.Values {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// SVG renders the heatmap.
func (h *Heatmap) SVG() string {
	const mL, mR, mT, mB = 70, 70, 40, 50
	nr, nc := len(h.Rows), len(h.X)
	iw := float64(h.W - mL - mR)
	ih := float64(h.H - mT - mB)
	lo, hi := h.bounds()

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", h.W, h.H)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", h.W, h.H)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", h.W/2, esc(h.Title))
	if nr == 0 || nc == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">(no data)</text>`+"\n", h.W/2, h.H/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	cw := iw / float64(nc)
	ch := ih / float64(nr)
	for r := 0; r < nr; r++ {
		row := h.Values[r]
		for c := 0; c < nc && c < len(row); c++ {
			x := float64(mL) + float64(c)*cw
			y := float64(mT) + float64(r)*ch
			fill := "#eeeeee" // no data
			if !math.IsNaN(row[c]) {
				fill = heatColor((row[c] - lo) / (hi - lo))
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				x, y, cw+0.5, ch+0.5, fill)
		}
	}
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#888"/>`+"\n", mL, mT, iw, ih)

	// row labels: thin out when there are too many to read
	stride := 1
	for nr/stride > 36 {
		stride++
	}
	for r := 0; r < nr; r += stride {
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			mL-6, float64(mT)+(float64(r)+0.5)*ch+3, esc(h.Rows[r]))
	}
	// x ticks on column coordinates
	x0, x1 := h.X[0], h.X[nc-1]
	if x1 == x0 {
		x1 = x0 + 1
	}
	for _, t := range ticks(x0, x1, 6) {
		px := float64(mL) + (t-x0)/(x1-x0)*iw
		fmt.Fprintf(&b, `<text x="%.1f" y="%.0f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px, float64(mT)+ih+16, num(t))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">%s</text>`+"\n",
		mL+int(iw/2), h.H-10, esc(h.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mT+int(ih/2), mT+int(ih/2), esc(h.YLabel))

	// color legend on the right
	const steps = 24
	lh := ih / steps
	lx := float64(h.W - mR + 16)
	for i := 0; i < steps; i++ {
		v := 1 - float64(i)/(steps-1)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="14" height="%.2f" fill="%s"/>`+"\n",
			lx, float64(mT)+float64(i)*lh, lh+0.5, heatColor(v))
	}
	fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="14" height="%.0f" fill="none" stroke="#888"/>`+"\n", lx, mT, ih)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="start">%s</text>`+"\n", lx+18, mT+8, num(hi))
	fmt.Fprintf(&b, `<text x="%.1f" y="%.0f" font-size="10" text-anchor="start">%s</text>`+"\n", lx+18, float64(mT)+ih, num(lo))
	b.WriteString("</svg>\n")
	return b.String()
}
