package viz

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapSVG(t *testing.T) {
	rows := []string{"g0", "g1"}
	x := []float64{0, 900, 1800}
	values := [][]float64{
		{0.1, 0.5, 0.9},
		{0.2, math.NaN(), 0.4},
	}
	h := NewHeatmap("Congestion", "time (s)", "group", rows, x, values)
	svg := h.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatal("output is not a complete SVG document")
	}
	for _, want := range []string{"Congestion", "time (s)", "group", "g0", "g1"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 5 data cells (one NaN still renders, in gray) + legend + frames.
	if n := strings.Count(svg, "<rect"); n < 6+24 {
		t.Errorf("SVG has %d rects, want at least %d", n, 6+24)
	}
	if !strings.Contains(svg, "#eeeeee") {
		t.Error("NaN cell did not render as the no-data gray")
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := NewHeatmap("empty", "x", "y", nil, nil, nil)
	svg := h.SVG()
	if !strings.Contains(svg, "(no data)") {
		t.Error("empty heatmap should render a no-data message")
	}
}

func TestHeatColorEndpoints(t *testing.T) {
	if got := heatColor(0); got != "#ffffcc" {
		t.Errorf("heatColor(0) = %s, want #ffffcc", got)
	}
	if got := heatColor(1); got != "#bd0026" {
		t.Errorf("heatColor(1) = %s, want #bd0026", got)
	}
	if got := heatColor(-5); got != heatColor(0) {
		t.Error("values below 0 should clamp to the low endpoint")
	}
	if got := heatColor(7); got != heatColor(1) {
		t.Error("values above 1 should clamp to the high endpoint")
	}
}

func TestHeatmapBoundsAllNaN(t *testing.T) {
	h := &Heatmap{Values: [][]float64{{math.NaN(), math.NaN()}}}
	lo, hi := h.bounds()
	if lo != 0 || hi != 1 {
		t.Errorf("bounds() on all-NaN = (%v, %v), want (0, 1)", lo, hi)
	}
}
