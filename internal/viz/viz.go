// Package viz renders the paper's figures as standalone SVG files using
// only the standard library: scatter plots (Figure 1), line series
// (Figures 3, 7, 12), and grouped horizontal bars (Figures 8, 9, 10, 11).
// The goal is readable, dependency-free plot output — not a general
// charting library.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// palette is a small colorblind-friendly cycle.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb",
}

// Series is one named line or scatter series.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a 2D chart under construction.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	W, H   int

	series  []Series
	scatter bool
}

// NewPlot returns an empty 800×450 plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, W: 800, H: 450}
}

// Line adds a line series.
func (p *Plot) Line(name string, x, y []float64) *Plot {
	p.series = append(p.series, Series{Name: name, X: x, Y: y})
	return p
}

// Scatter switches the plot to scatter rendering (points, no connecting
// lines).
func (p *Plot) Scatter() *Plot {
	p.scatter = true
	return p
}

// axes computes the data bounds with a small margin.
func (p *Plot) axes() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	my := (ymax - ymin) * 0.05
	return xmin, xmax, ymin - my, ymax + my
}

// SVG renders the plot.
func (p *Plot) SVG() string {
	const mL, mR, mT, mB = 70, 20, 40, 50
	iw := float64(p.W - mL - mR)
	ih := float64(p.H - mT - mB)
	xmin, xmax, ymin, ymax := p.axes()
	px := func(x float64) float64 { return mL + (x-xmin)/(xmax-xmin)*iw }
	py := func(y float64) float64 { return mT + ih - (y-ymin)/(ymax-ymin)*ih }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", p.W, p.H)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", p.W, p.H)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n", p.W/2, esc(p.Title))

	// axis box and ticks
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#888"/>`+"\n", mL, mT, iw, ih)
	for _, t := range ticks(xmin, xmax, 6) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.0f" x2="%.1f" y2="%.0f" stroke="#ddd"/>`+"\n", px(t), float64(mT), px(t), mT+ih)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.0f" font-size="11" text-anchor="middle">%s</text>`+"\n", px(t), mT+ih+16, num(t))
	}
	for _, t := range ticks(ymin, ymax, 6) {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#ddd"/>`+"\n", mL, py(t), float64(mL)+iw, py(t))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n", mL-6, py(t)+4, num(t))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">%s</text>`+"\n", mL+int(iw/2), p.H-10, esc(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mT+int(ih/2), mT+int(ih/2), esc(p.YLabel))

	// series
	for si, s := range p.series {
		color := palette[si%len(palette)]
		if p.scatter {
			for i := range s.X {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.7"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
			}
		} else if len(s.X) > 0 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// legend entry
		ly := mT + 14 + 16*si
		fmt.Fprintf(&b, `<rect x="%.0f" y="%d" width="10" height="10" fill="%s"/>`+"\n", float64(mL)+iw-120, ly, color)
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="11">%s</text>`+"\n", float64(mL)+iw-106, ly+9, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// BarChart renders labeled horizontal bars (optionally several groups laid
// out vertically) as SVG.
type BarChart struct {
	Title  string
	Labels []string
	Values []float64
	XLabel string
	W      int
}

// SVG renders the bar chart.
func (c *BarChart) SVG() string {
	if c.W == 0 {
		c.W = 700
	}
	const rowH, mT, mB, mR = 22, 40, 40, 30
	labelW := 120
	for _, l := range c.Labels {
		if w := 7*len(l) + 16; w > labelW {
			labelW = w
		}
	}
	h := mT + rowH*len(c.Values) + mB
	iw := float64(c.W - labelW - mR)
	var max float64
	for _, v := range c.Values {
		max = math.Max(max, v)
	}
	if max == 0 {
		max = 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", c.W, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.W, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", c.W/2, esc(c.Title))
	for i, v := range c.Values {
		y := mT + i*rowH
		w := v / max * iw
		label := ""
		if i < len(c.Labels) {
			label = c.Labels[i]
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="end">%s</text>`+"\n", labelW-6, y+14, esc(label))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n", labelW, y+3, w, rowH-8, palette[0])
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" fill="#444">%s</text>`+"\n", float64(labelW)+w+4, y+14, num(v))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n", labelW+int(iw/2), h-10, esc(c.XLabel))
	b.WriteString("</svg>\n")
	return b.String()
}

// ticks returns ~n round tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo {
		return []float64{lo, hi}
	}
	raw := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	for _, m := range []float64{1, 2, 5, 10} {
		if mag*m >= raw {
			step = mag * m
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-12; t += step {
		out = append(out, t)
	}
	return out
}

// num formats a tick or bar value compactly.
func num(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// esc escapes XML-significant characters.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SortedKeys is a small helper for deterministic map iteration in plot
// builders.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
