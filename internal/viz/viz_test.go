package viz

import (
	"strings"
	"testing"
)

func TestLinePlotSVG(t *testing.T) {
	p := NewPlot("Title & Co", "step", "seconds")
	p.Line("a<b", []float64{0, 1, 2}, []float64{1, 4, 2})
	p.Line("s2", []float64{0, 1, 2}, []float64{2, 2, 3})
	svg := p.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("polylines = %d, want 2", strings.Count(svg, "<polyline"))
	}
	// XML escaping
	if !strings.Contains(svg, "Title &amp; Co") || !strings.Contains(svg, "a&lt;b") {
		t.Fatal("special characters not escaped")
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("non-finite coordinates leaked into SVG")
	}
}

func TestScatterPlotSVG(t *testing.T) {
	p := NewPlot("t", "x", "y").Scatter()
	p.Line("pts", []float64{1, 2, 3}, []float64{3, 1, 2})
	svg := p.SVG()
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("circles = %d", strings.Count(svg, "<circle"))
	}
	if strings.Contains(svg, "<polyline") {
		t.Fatal("scatter should not draw lines")
	}
}

func TestEmptyPlotDoesNotPanic(t *testing.T) {
	svg := NewPlot("empty", "x", "y").SVG()
	if !strings.Contains(svg, "<svg") {
		t.Fatal("empty plot should still render a frame")
	}
}

func TestConstantSeries(t *testing.T) {
	p := NewPlot("c", "x", "y")
	p.Line("flat", []float64{0, 1}, []float64{5, 5})
	svg := p.SVG()
	if strings.Contains(svg, "NaN") {
		t.Fatal("flat series produced NaN coordinates")
	}
}

func TestBarChartSVG(t *testing.T) {
	c := &BarChart{
		Title:  "relevance",
		Labels: []string{"RT_FLIT_TOT", "RT_RB_STL"},
		Values: []float64{1, 0.5},
		XLabel: "score",
	}
	svg := c.SVG()
	if strings.Count(svg, "<rect") < 3 { // background + 2 bars
		t.Fatal("missing bars")
	}
	if !strings.Contains(svg, "RT_RB_STL") {
		t.Fatal("missing labels")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{Labels: []string{"a"}, Values: []float64{0}}
	if !strings.Contains(c.SVG(), "<svg") {
		t.Fatal("zero-value chart failed to render")
	}
}

func TestTicks(t *testing.T) {
	ts := ticks(0, 10, 6)
	if len(ts) < 3 {
		t.Fatalf("ticks = %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
		if ts[i] < 0 || ts[i] > 10+1e-9 {
			t.Fatalf("tick out of range: %v", ts)
		}
	}
	// degenerate range
	if got := ticks(5, 5, 6); len(got) != 2 {
		t.Fatalf("degenerate ticks = %v", got)
	}
}

func TestNumFormatting(t *testing.T) {
	cases := map[float64]string{
		2.5e12: "2.5T",
		3e9:    "3.0G",
		4.2e6:  "4.2M",
		50000:  "50k",
		42:     "42",
		0.37:   "0.37",
	}
	for v, want := range cases {
		if got := num(v); got != want {
			t.Errorf("num(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}
