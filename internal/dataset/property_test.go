package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"dragonvar/internal/counters"
	"dragonvar/internal/rng"
)

// randomDataset builds a dataset with randomized (but finite) step times
// and counters.
func randomDataset(seed int64, nRuns, nSteps int) *Dataset {
	s := rng.New(seed)
	d := &Dataset{Name: "RND-128", App: "RND", Nodes: 128}
	for i := 0; i < nRuns; i++ {
		r := &Run{Dataset: d.Name, RunID: i, Day: i % 10, NumRouters: 10 + s.Intn(20), NumGroups: 1 + s.Intn(8)}
		for st := 0; st < nSteps; st++ {
			r.StepTimes = append(r.StepTimes, s.Uniform(1, 100))
			r.Compute = append(r.Compute, s.Uniform(0.1, 5))
			var c [counters.NumJob]float64
			for j := range c {
				c[j] = s.Uniform(0, 1e9)
			}
			r.Counters = append(r.Counters, c)
			r.IO = append(r.IO, [counters.NumLDMS]float64{s.Float64(), s.Float64(), s.Float64(), s.Float64()})
			r.Sys = append(r.Sys, [counters.NumLDMS]float64{s.Float64(), s.Float64(), s.Float64(), s.Float64()})
		}
		d.Runs = append(d.Runs, r)
	}
	return d
}

func TestPropertyDeviationSamplesCentered(t *testing.T) {
	f := func(seed int64, rawRuns, rawSteps uint8) bool {
		nRuns := int(rawRuns%8) + 2
		nSteps := int(rawSteps%12) + 2
		d := randomDataset(seed, nRuns, nSteps)
		x, y, stepMean, stepOf := d.DeviationSamples()
		if x.Rows != nRuns*nSteps || len(stepMean) != nSteps || len(stepOf) != x.Rows {
			return false
		}
		// per step, deviations sum to ~0 over runs, for target and every feature
		for st := 0; st < nSteps; st++ {
			var ySum float64
			fSum := make([]float64, x.Cols)
			for ri := 0; ri < nRuns; ri++ {
				row := x.Row(ri*nSteps + st)
				ySum += y[ri*nSteps+st]
				for j, v := range row {
					fSum[j] += v
				}
			}
			if math.Abs(ySum) > 1e-6 {
				return false
			}
			for _, v := range fSum {
				if math.Abs(v) > 1e-3 { // counters are ~1e9; relative tolerance
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWindowsTargetsConsistent(t *testing.T) {
	f := func(seed int64, rawM, rawK uint8) bool {
		m := int(rawM%5) + 1
		k := int(rawK%5) + 1
		d := randomDataset(seed, 3, 12)
		ws := d.BuildWindows(counters.FeatureSet{Placement: true}, m, k)
		for _, w := range ws {
			if len(w.Steps) != m {
				return false
			}
			r := d.Runs[w.RunIdx]
			var want float64
			for i := w.TC; i < w.TC+k; i++ {
				want += r.StepTimes[i]
			}
			if math.Abs(w.Target-want) > 1e-9 {
				return false
			}
			// features of the last window step are the step tc-1's counters
			lastRow := w.Steps[m-1]
			if lastRow[0] != r.Counters[w.TC-1][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOptimalityThreshold(t *testing.T) {
	// raising τ can only mark more runs optimal
	f := func(seed int64) bool {
		d := randomDataset(seed, 6, 4)
		loose := d.Optimality(1.2)
		strict := d.Optimality(0.8)
		for i := range loose {
			if strict[i] && !loose[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
