package dataset

// Streaming ingest: the daemon-mode alternative to one-shot campaign gob
// caches. Runs arrive one at a time (in deterministic campaign order) and
// are journaled to a CRC32C-framed write-ahead log; once a bounded window
// fills, its runs are sealed into an individually-validated segment file
// and the WAL is compacted down to the still-open window. Segments are a
// pure function of the run sequence and the window parameters, so a
// process killed between any two writes reseals byte-identical segments
// on reopen — the property the daemon's kill/resume test pins down.
//
// On-disk layout under the stream directory:
//
//	wal.gob               header frame + one frame per open-window run
//	segments/seg-%06d.gob one CRC-framed gob frame per sealed window
//
// A segment whose checksum or encoding no longer verifies is quarantined
// by renaming it to <name>.corrupt (mirroring modelstore) so a damaged
// file can never be silently folded into a training set.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"dragonvar/internal/telemetry"
)

// streamVersion is the WAL/segment format version; a mismatch is a hard
// error (no silent migration of a live daemon's state directory).
const streamVersion = 1

// DatasetInfo is the skeleton identity of one dataset in a stream: enough
// to rebuild the Campaign's dataset list in a deterministic order before
// any runs arrive.
type DatasetInfo struct {
	Name  string
	App   string
	Nodes int
}

// StreamMeta is the identity of a run stream. Every field participates in
// the stream digest; reopening a directory with a different identity is
// refused the same way a campaign cache with different faults never
// satisfies a lookup.
type StreamMeta struct {
	Seed      int64
	Days      float64 // days per campaign epoch feeding the stream
	Faults    string
	Routing   string
	Placement string
	Datasets  []DatasetInfo
	// Window bounds: a window seals when it holds WindowRuns runs, or —
	// when WindowSpan > 0 — before admitting a run that would stretch it
	// past WindowSpan campaign-clock seconds (or rewind the clock, which
	// marks an epoch boundary).
	WindowRuns int
	WindowSpan float64
}

// Digest returns the stream identity digest: SHA-256 over a fixed-order
// rendering of every meta field. The rendering is hand-rolled rather
// than gob-encoded because gob wire bytes embed type ids drawn from a
// process-global counter — two processes that did different amounts of
// gob work before digesting would disagree on the same meta.
func (m StreamMeta) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "stream-v1 seed=%d days=%v faults=%q routing=%q placement=%q runs=%d span=%v",
		m.Seed, m.Days, m.Faults, m.Routing, m.Placement, m.WindowRuns, m.WindowSpan)
	for _, d := range m.Datasets {
		fmt.Fprintf(h, " ds=%q app=%q nodes=%d", d.Name, d.App, d.Nodes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Segment is one sealed ingest window: a contiguous slice of the global
// run sequence, persisted as a single CRC-framed gob file.
type Segment struct {
	Index    int    // segment number, 0-based
	FirstRun int64  // global index of Runs[0] in the stream
	Digest   string // owning stream's identity digest
	Runs     []*Run
}

// CorruptSegmentError reports a segment whose frame failed CRC or decode
// validation. The file has been quarantined (renamed to *.corrupt) when
// Quarantined is true.
type CorruptSegmentError struct {
	Path        string
	Quarantined bool
	Err         error
}

func (e *CorruptSegmentError) Error() string {
	q := ""
	if e.Quarantined {
		q = fmt.Sprintf("; quarantined as %s.corrupt", filepath.Base(e.Path))
	}
	return fmt.Sprintf("dataset: corrupt segment %s: %v%s", e.Path, e.Err, q)
}

func (e *CorruptSegmentError) Unwrap() error { return e.Err }

// streamHeader is frame 0 of the WAL. FirstSeg/FirstRun advance at every
// compaction: the WAL body always holds exactly the open window's runs.
type streamHeader struct {
	Version  int
	Digest   string
	Meta     StreamMeta
	FirstSeg int   // index the next sealed segment will get
	FirstRun int64 // global index of the first run frame in the WAL
}

// StreamWriter is the single-writer handle on a run stream directory.
// Not safe for concurrent use; the daemon's ingest path is serial by
// construction (the campaign merge loop).
type StreamWriter struct {
	dir    string
	meta   StreamMeta
	digest string

	wal     *os.File
	nextSeg int    // index of the next segment to seal
	total   int64  // global count of runs ingested (sealed + open)
	open    []*Run // the open window, in arrival order
}

// crcTable is the Castagnoli polynomial, matching internal/dist's
// checkpoint framing (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame encodes v as gob and appends a length-prefixed, CRC32C-
// guarded frame to buf: uvarint payload length, 4-byte little-endian
// checksum, payload.
func appendFrame(buf *bytes.Buffer, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("dataset: stream frame encode: %w", err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(payload.Len()))
	buf.Write(hdr[:n])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(crc[:])
	buf.Write(payload.Bytes())
	return nil
}

// parseFrames splits raw into validated frame payloads. A damaged or
// truncated tail (torn final write from a kill) terminates the scan;
// valid is the byte length of the intact prefix.
func parseFrames(raw []byte) (frames [][]byte, valid int) {
	off := 0
	for off < len(raw) {
		length, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return frames, off
		}
		start := off + n + 4
		end := start + int(length)
		if end > len(raw) || start > len(raw) {
			return frames, off
		}
		want := binary.LittleEndian.Uint32(raw[off+n : start])
		payload := raw[start:end]
		if crc32.Checksum(payload, crcTable) != want {
			return frames, off
		}
		frames = append(frames, payload)
		off = end
	}
	return frames, off
}

func decodeFrame(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// OpenStream opens (or creates) the stream directory for writing. An
// existing directory must carry the same identity digest; its WAL is
// replayed, a damaged tail healed, and any window the WAL already
// completes is sealed — so reopening after a kill always lands in the
// same state an uninterrupted writer would occupy.
func OpenStream(dir string, meta StreamMeta) (*StreamWriter, error) {
	if meta.WindowRuns <= 0 && meta.WindowSpan <= 0 {
		return nil, fmt.Errorf("dataset: stream %s: no window bound (WindowRuns and WindowSpan both unset)", dir)
	}
	if err := os.MkdirAll(filepath.Join(dir, "segments"), 0o755); err != nil {
		return nil, fmt.Errorf("dataset: stream: %w", err)
	}
	w := &StreamWriter{dir: dir, meta: meta, digest: meta.Digest()}
	walPath := w.walPath()
	raw, err := os.ReadFile(walPath)
	switch {
	case os.IsNotExist(err):
		if err := w.rewriteWAL(nil); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("dataset: stream: %w", err)
	default:
		frames, _ := parseFrames(raw)
		if len(frames) == 0 {
			return nil, fmt.Errorf("dataset: stream %s: WAL has no intact header", walPath)
		}
		var hdr streamHeader
		if err := decodeFrame(frames[0], &hdr); err != nil {
			return nil, fmt.Errorf("dataset: stream %s: header: %w", walPath, err)
		}
		if hdr.Version != streamVersion {
			return nil, fmt.Errorf("dataset: stream %s: version %d, want %d", walPath, hdr.Version, streamVersion)
		}
		if hdr.Digest != w.digest {
			return nil, fmt.Errorf("dataset: stream %s: identity mismatch (dir %s, want %s): refusing to mix streams", walPath, hdr.Digest[:12], w.digest[:12])
		}
		w.nextSeg = hdr.FirstSeg
		w.total = hdr.FirstRun
		for _, fr := range frames[1:] {
			var run Run
			if err := decodeFrame(fr, &run); err != nil {
				return nil, fmt.Errorf("dataset: stream %s: run frame: %w", walPath, err)
			}
			w.open = append(w.open, &run)
			w.total++
		}
		// Re-seal any window the WAL already completes (kill landed
		// between segment write and compaction — or before the segment
		// write at all). Sealing is idempotent: deterministic bytes,
		// atomic rename.
		if err := w.recoverSeals(); err != nil {
			return nil, err
		}
		// Heal a torn tail, and fold in any recovery compaction, by
		// rewriting the WAL to exactly header + open window.
		if err := w.rewriteWAL(w.open); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (w *StreamWriter) walPath() string { return filepath.Join(w.dir, "wal.gob") }

func (w *StreamWriter) segPath(i int) string {
	return filepath.Join(w.dir, "segments", fmt.Sprintf("seg-%06d.gob", i))
}

// Meta returns the stream's identity.
func (w *StreamWriter) Meta() StreamMeta { return w.meta }

// TotalRuns returns the global run count ingested so far (sealed + open).
// After a reopen this is the authoritative ingest offset: the daemon
// skips exactly this many runs when it re-derives an interrupted epoch.
func (w *StreamWriter) TotalRuns() int64 { return w.total }

// SealedSegments returns the number of sealed segments.
func (w *StreamWriter) SealedSegments() int { return w.nextSeg }

// OpenRuns returns the number of runs in the still-open window.
func (w *StreamWriter) OpenRuns() int { return len(w.open) }

// rewriteWAL atomically replaces the WAL with header + the given runs and
// reopens it for appending.
func (w *StreamWriter) rewriteWAL(runs []*Run) error {
	if w.wal != nil {
		w.wal.Close()
		w.wal = nil
	}
	var buf bytes.Buffer
	hdr := streamHeader{
		Version:  streamVersion,
		Digest:   w.digest,
		Meta:     w.meta,
		FirstSeg: w.nextSeg,
		FirstRun: w.total - int64(len(runs)),
	}
	if err := appendFrame(&buf, hdr); err != nil {
		return err
	}
	for _, r := range runs {
		if err := appendFrame(&buf, r); err != nil {
			return err
		}
	}
	f, err := os.CreateTemp(w.dir, "wal.gob.tmp-*")
	if err != nil {
		return fmt.Errorf("dataset: stream: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: stream: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: stream: %w", err)
	}
	if err := os.Rename(tmp, w.walPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: stream: %w", err)
	}
	w.wal, err = os.OpenFile(w.walPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("dataset: stream: %w", err)
	}
	return nil
}

// spanExceeded reports whether admitting run into the open window would
// stretch it past WindowSpan (or rewind the campaign clock, which marks
// an epoch boundary). Always false when WindowSpan is unset.
func (w *StreamWriter) spanExceeded(run *Run) bool {
	if w.meta.WindowSpan <= 0 || len(w.open) == 0 {
		return false
	}
	first := w.open[0].Start
	return run.Start < first || run.Start-first > w.meta.WindowSpan
}

// Append journals one run and seals any window it completes, returning
// the sealed segments (usually none or one). The caller's *Run is stored
// by reference and must not be mutated afterwards.
func (w *StreamWriter) Append(run *Run) ([]*Segment, error) {
	var sealed []*Segment
	if w.spanExceeded(run) {
		seg, err := w.sealOpen()
		if err != nil {
			return sealed, err
		}
		sealed = append(sealed, seg)
	}
	var buf bytes.Buffer
	if err := appendFrame(&buf, run); err != nil {
		return sealed, err
	}
	if _, err := w.wal.Write(buf.Bytes()); err != nil {
		return sealed, fmt.Errorf("dataset: stream append: %w", err)
	}
	if err := w.wal.Sync(); err != nil {
		return sealed, fmt.Errorf("dataset: stream append: %w", err)
	}
	w.open = append(w.open, run)
	w.total++
	if w.meta.WindowRuns > 0 && len(w.open) >= w.meta.WindowRuns {
		seg, err := w.sealOpen()
		if err != nil {
			return sealed, err
		}
		sealed = append(sealed, seg)
	}
	return sealed, nil
}

// Seal force-seals the open window (end of a bounded run, tests). No-op
// returning nil when the window is empty.
func (w *StreamWriter) Seal() (*Segment, error) {
	if len(w.open) == 0 {
		return nil, nil
	}
	return w.sealOpen()
}

// sealOpen writes the open window as the next segment, then compacts the
// WAL down to the (now empty) window. Segment first, compaction second:
// a kill between the two leaves a WAL that re-seals the identical
// segment on reopen.
func (w *StreamWriter) sealOpen() (*Segment, error) {
	seg := &Segment{
		Index:    w.nextSeg,
		FirstRun: w.total - int64(len(w.open)),
		Digest:   w.digest,
		Runs:     w.open,
	}
	if err := w.writeSegment(seg); err != nil {
		return nil, err
	}
	w.nextSeg++
	w.open = nil
	if err := w.rewriteWAL(nil); err != nil {
		return nil, err
	}
	telemetry.C(telemetry.MSegmentsSealed).Add(1)
	return seg, nil
}

// recoverSeals replays the open window after a reopen and seals every
// complete window it contains, mirroring Append's boundary logic.
func (w *StreamWriter) recoverSeals() error {
	runs := w.open
	w.open = nil
	w.total -= int64(len(runs))
	for _, run := range runs {
		if w.spanExceeded(run) {
			if _, err := w.sealReplay(); err != nil {
				return err
			}
		}
		w.open = append(w.open, run)
		w.total++
		if w.meta.WindowRuns > 0 && len(w.open) >= w.meta.WindowRuns {
			if _, err := w.sealReplay(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealReplay is sealOpen without the WAL compaction (the caller rewrites
// the WAL once at the end of recovery).
func (w *StreamWriter) sealReplay() (*Segment, error) {
	seg := &Segment{
		Index:    w.nextSeg,
		FirstRun: w.total - int64(len(w.open)),
		Digest:   w.digest,
		Runs:     w.open,
	}
	if err := w.writeSegment(seg); err != nil {
		return nil, err
	}
	w.nextSeg++
	w.open = nil
	telemetry.C(telemetry.MSegmentsSealed).Add(1)
	return seg, nil
}

// writeSegment persists seg atomically (temp + rename). Overwriting an
// existing file is fine: segment content is deterministic, so a re-seal
// writes identical bytes.
func (w *StreamWriter) writeSegment(seg *Segment) error {
	var buf bytes.Buffer
	if err := appendFrame(&buf, seg); err != nil {
		return err
	}
	dir := filepath.Join(w.dir, "segments")
	f, err := os.CreateTemp(dir, "seg.tmp-*")
	if err != nil {
		return fmt.Errorf("dataset: segment: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: segment: %w", err)
	}
	if err := os.Rename(tmp, w.segPath(seg.Index)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: segment: %w", err)
	}
	telemetry.C(telemetry.MSegmentWriteBytes).Add(int64(buf.Len()))
	return nil
}

// Segment loads sealed segment i, verifying its checksum, decoding, and
// identity. A file that fails validation is quarantined (renamed to
// *.corrupt) and reported as a *CorruptSegmentError.
func (w *StreamWriter) Segment(i int) (*Segment, error) {
	path := w.segPath(i)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: segment: %w", err)
	}
	frames, _ := parseFrames(raw)
	if len(frames) != 1 {
		return nil, w.quarantine(path, fmt.Errorf("checksum failed (%d intact frames, want 1)", len(frames)))
	}
	var seg Segment
	if err := decodeFrame(frames[0], &seg); err != nil {
		return nil, w.quarantine(path, err)
	}
	if seg.Digest != w.digest {
		return nil, fmt.Errorf("dataset: segment %s belongs to stream %s, want %s", path, seg.Digest[:12], w.digest[:12])
	}
	if seg.Index != i {
		return nil, fmt.Errorf("dataset: segment %s carries index %d, want %d", path, seg.Index, i)
	}
	return &seg, nil
}

func (w *StreamWriter) quarantine(path string, cause error) error {
	err := os.Rename(path, path+".corrupt")
	return &CorruptSegmentError{Path: path, Quarantined: err == nil, Err: cause}
}

// assemble reconstructs a Campaign from segments 0..SealedSegments-1,
// plus the open window when includeOpen is set. Runs land in their
// datasets in stream order, which is campaign plan order — so a stream
// fed the same rounds as a batch campaign assembles to the identical
// Campaign value (the batch-vs-streaming equivalence test pins the gob
// bytes).
func (w *StreamWriter) assemble(includeOpen bool) (*Campaign, error) {
	camp := &Campaign{
		Seed:      w.meta.Seed,
		Days:      w.meta.Days,
		Faults:    w.meta.Faults,
		Routing:   w.meta.Routing,
		Placement: w.meta.Placement,
	}
	byName := make(map[string]*Dataset, len(w.meta.Datasets))
	for _, info := range w.meta.Datasets {
		d := &Dataset{Name: info.Name, App: info.App, Nodes: info.Nodes, Runs: []*Run{}}
		camp.Datasets = append(camp.Datasets, d)
		byName[d.Name] = d
	}
	add := func(r *Run) error {
		d := byName[r.Dataset]
		if d == nil {
			return fmt.Errorf("dataset: stream run %d belongs to unknown dataset %q", r.RunID, r.Dataset)
		}
		d.Runs = append(d.Runs, r)
		return nil
	}
	for i := 0; i < w.nextSeg; i++ {
		seg, err := w.Segment(i)
		if err != nil {
			return nil, err
		}
		for _, r := range seg.Runs {
			if err := add(r); err != nil {
				return nil, err
			}
		}
	}
	if includeOpen {
		for _, r := range w.open {
			if err := add(r); err != nil {
				return nil, err
			}
		}
	}
	if err := camp.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: stream assemble: %w", err)
	}
	return camp, nil
}

// AssembleSealed reconstructs a Campaign from the sealed segments only —
// the daemon's retraining input, deterministic across kill/resume because
// it never depends on how far the open window happened to get.
func (w *StreamWriter) AssembleSealed() (*Campaign, error) { return w.assemble(false) }

// Assemble reconstructs a Campaign from sealed segments plus the open
// window.
func (w *StreamWriter) Assemble() (*Campaign, error) { return w.assemble(true) }

// Close releases the WAL handle. The stream can be reopened later.
func (w *StreamWriter) Close() error {
	if w.wal == nil {
		return nil
	}
	err := w.wal.Close()
	w.wal = nil
	return err
}
