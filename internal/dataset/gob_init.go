package dataset

import (
	"encoding/gob"
	"io"
)

// gob assigns wire type ids from a process-global counter in first-use
// order, and every encoder embeds those ids in its output. Durable
// artifacts (the stream WAL, sealed segments, campaign caches) must be
// byte-identical across processes regardless of what other gob work a
// process did first — a resumed daemon decodes the WAL before it encodes
// anything, a fresh one doesn't. Encoding each wire type once at init
// pins its id (and the ids of every nested type) before any runtime gob
// activity can shift them.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{streamHeader{}, &Run{}, Segment{}, &Campaign{}} {
		if err := enc.Encode(v); err != nil {
			panic("dataset: gob warm-up: " + err.Error())
		}
	}
}
