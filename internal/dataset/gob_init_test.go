package dataset

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// probeStreamHash writes a small deterministic stream (two sealed
// segments plus an open window) into dir and hashes every byte of it.
func probeStreamHash(t *testing.T, dir string) string {
	t.Helper()
	w, err := OpenStream(dir, streamMetaForTest(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runSeq(10) {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "%s %d\n", rel, len(raw))
		h.Write(raw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestStreamBytesStableAcrossProcesses re-runs itself in a child process
// that deliberately burns gob's process-global type-id counter on junk
// types before touching the stream, then asserts the child still writes
// byte-identical files. This is exactly the failure mode a resumed
// daemon hits — it decodes a WAL (shifting the global counter) before it
// encodes anything — and the init-time warm-up in gob_init.go is what
// keeps the ids, and therefore the bytes, pinned.
func TestStreamBytesStableAcrossProcesses(t *testing.T) {
	if os.Getenv("DATASET_STREAM_BYTES_CHILD") == "1" {
		enc := gob.NewEncoder(io.Discard)
		for _, junk := range []any{
			struct{ PerturbA int }{1},
			struct{ PerturbB string }{"x"},
			struct{ PerturbC []float64 }{},
		} {
			if err := enc.Encode(junk); err != nil {
				t.Fatal(err)
			}
		}
		fmt.Printf("CHILDHASH %s\n", probeStreamHash(t, t.TempDir()))
		return
	}

	want := probeStreamHash(t, t.TempDir())
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe,
		"-test.run", "TestStreamBytesStableAcrossProcesses$", "-test.v")
	cmd.Env = append(os.Environ(), "DATASET_STREAM_BYTES_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process: %v\n%s", err, out)
	}
	var got string
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "CHILDHASH "); ok {
			got = strings.TrimSpace(rest)
		}
	}
	if got == "" {
		t.Fatalf("child printed no hash:\n%s", out)
	}
	if got != want {
		t.Errorf("stream bytes diverged across processes: parent %s, perturbed child %s", want, got)
	}
}
