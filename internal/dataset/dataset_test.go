package dataset

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dragonvar/internal/counters"
	"dragonvar/internal/rng"
)

// synthetic builds a small dataset with a known trend: step time = 10+s
// plus a per-run offset of runIdx, counter 0 = 100*(s+1) plus runIdx.
func synthetic(nRuns, nSteps int) *Dataset {
	d := &Dataset{Name: "TEST-128", App: "TEST", Nodes: 128}
	for i := 0; i < nRuns; i++ {
		r := &Run{
			Dataset: d.Name, RunID: i, Day: i,
			NumRouters: 30 + i, NumGroups: 5,
		}
		for s := 0; s < nSteps; s++ {
			r.StepTimes = append(r.StepTimes, float64(10+s+i))
			r.Compute = append(r.Compute, 2)
			var c [counters.NumJob]float64
			c[0] = float64(100*(s+1) + i)
			r.Counters = append(r.Counters, c)
			r.IO = append(r.IO, [counters.NumLDMS]float64{float64(s), 0, 0, 0})
			r.Sys = append(r.Sys, [counters.NumLDMS]float64{0, float64(i), 0, 0})
		}
		r.Neighbors = []NeighborJob{
			{User: "User-2", MaxNodes: 256},
			{User: "User-20", MaxNodes: 16},
		}
		if i%2 == 0 {
			r.Neighbors = append(r.Neighbors, NeighborJob{User: "User-11", MaxNodes: 512})
		}
		d.Runs = append(d.Runs, r)
	}
	return d
}

func TestRunTotals(t *testing.T) {
	d := synthetic(2, 3)
	r := d.Runs[0]
	if r.Steps() != 3 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	if r.TotalTime() != 10+11+12 {
		t.Fatalf("TotalTime = %v", r.TotalTime())
	}
	if r.TotalCompute() != 6 {
		t.Fatalf("TotalCompute = %v", r.TotalCompute())
	}
}

func TestMeanStepTimes(t *testing.T) {
	d := synthetic(4, 5)
	mean := d.MeanStepTimes()
	// per-run offset averages to (0+1+2+3)/4 = 1.5
	for s, v := range mean {
		want := float64(10+s) + 1.5
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("mean step %d = %v, want %v", s, v, want)
		}
	}
}

func TestMeanCounterTrend(t *testing.T) {
	d := synthetic(4, 5)
	trend := d.MeanCounterTrend(0)
	for s, v := range trend {
		want := float64(100*(s+1)) + 1.5
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("counter trend step %d = %v, want %v", s, v, want)
		}
	}
}

func TestBestAndMeanTotalTime(t *testing.T) {
	d := synthetic(4, 2)
	// run i total = (10+i)+(11+i) = 21+2i → best 21, mean 24
	if d.BestTotalTime() != 21 {
		t.Fatalf("best = %v", d.BestTotalTime())
	}
	if d.MeanTotalTime() != 24 {
		t.Fatalf("mean = %v", d.MeanTotalTime())
	}
}

func TestOptimality(t *testing.T) {
	d := synthetic(4, 2)
	opt := d.Optimality(1.0)
	// totals 21,23,25,27; mean 24 → runs 0,1 optimal
	want := []bool{true, true, false, false}
	for i := range want {
		if opt[i] != want[i] {
			t.Fatalf("optimality = %v, want %v", opt, want)
		}
	}
}

func TestCooccurrence(t *testing.T) {
	d := synthetic(4, 2)
	users, m := d.Cooccurrence(128)
	// User-20's jobs are too small; User-2 always present, User-11 on even runs
	if len(users) != 2 || users[0] != "User-11" || users[1] != "User-2" {
		t.Fatalf("vocab = %v", users)
	}
	for i, row := range m {
		if !row[1] {
			t.Fatalf("User-2 missing from run %d", i)
		}
		if row[0] != (i%2 == 0) {
			t.Fatalf("User-11 presence wrong for run %d", i)
		}
	}
	// minNodes 1 admits the small user too
	users, _ = d.Cooccurrence(1)
	if len(users) != 3 {
		t.Fatalf("vocab with minNodes=1: %v", users)
	}
}

func TestDeviationSamplesCentered(t *testing.T) {
	d := synthetic(4, 5)
	x, y, stepMean, stepOf := d.DeviationSamples()
	if x.Rows != 4*5 || x.Cols != counters.NumJob {
		t.Fatalf("X shape = %dx%d", x.Rows, x.Cols)
	}
	if len(stepMean) != 5 {
		t.Fatal("stepMean length wrong")
	}
	// gap-free dataset: row i is step i%5 of run i/5
	for i, s := range stepOf {
		if s != i%5 {
			t.Fatalf("stepOf[%d] = %d, want %d", i, s, i%5)
		}
	}
	// each step's samples must be centered: mean over runs = 0
	for s := 0; s < 5; s++ {
		var tySum, c0Sum float64
		for r := 0; r < 4; r++ {
			tySum += y[r*5+s]
			c0Sum += x.At(r*5+s, 0)
		}
		if math.Abs(tySum) > 1e-9 || math.Abs(c0Sum) > 1e-9 {
			t.Fatalf("step %d not centered: y %v, c0 %v", s, tySum, c0Sum)
		}
	}
	// deviation + mean reconstructs the absolute time
	r0 := d.Runs[0]
	for s := 0; s < 5; s++ {
		if math.Abs(y[s]+stepMean[s]-r0.StepTimes[s]) > 1e-9 {
			t.Fatal("deviation does not reconstruct absolute time")
		}
	}
}

func TestFeatureVectorColumnOrder(t *testing.T) {
	d := synthetic(1, 3)
	r := d.Runs[0]
	fs := counters.FeatureSet{Placement: true, IO: true, Sys: true}
	v := r.FeatureVector(1, fs, nil)
	if len(v) != fs.Count() {
		t.Fatalf("feature vector length %d, want %d", len(v), fs.Count())
	}
	if v[0] != r.Counters[1][0] {
		t.Fatal("app counters first")
	}
	if v[counters.NumJob] != float64(r.NumRouters) || v[counters.NumJob+1] != float64(r.NumGroups) {
		t.Fatal("placement features misplaced")
	}
	if v[counters.NumJob+2] != r.IO[1][0] {
		t.Fatal("io features misplaced")
	}
	if v[counters.NumJob+2+counters.NumLDMS+1] != r.Sys[1][1] {
		t.Fatal("sys features misplaced")
	}
}

func TestBuildWindows(t *testing.T) {
	d := synthetic(2, 10)
	fs := counters.FeatureSet{}
	m, k := 3, 2
	ws := d.BuildWindows(fs, m, k)
	// per run: tc from 3 to 8 inclusive = 6 windows
	if len(ws) != 2*6 {
		t.Fatalf("window count = %d, want 12", len(ws))
	}
	w := ws[0]
	if w.TC != 3 || len(w.Steps) != 3 || len(w.Steps[0]) != counters.NumJob {
		t.Fatalf("first window shape wrong: %+v", w)
	}
	// target = steps 3 and 4 of run 0: (10+3+0)+(10+4+0) = 27
	if w.Target != 27 {
		t.Fatalf("target = %v, want 27", w.Target)
	}
	// last window of run 0 has tc = 8, target = steps 8,9 = 18+19 = 37
	last := ws[5]
	if last.TC != 8 || last.Target != 37 {
		t.Fatalf("last window = %+v", last)
	}
}

func TestBuildWindowsTooShort(t *testing.T) {
	d := synthetic(2, 4)
	if ws := d.BuildWindows(counters.FeatureSet{}, 3, 2); len(ws) != 0 {
		t.Fatalf("windows from too-short runs: %d", len(ws))
	}
}

func TestKFold(t *testing.T) {
	s := rng.New(7)
	n, k := 23, 5
	seen := make([]int, n)
	folds := 0
	KFold(n, k, s, func(fold int, train, test []int) {
		folds++
		if len(train)+len(test) != n {
			t.Fatalf("fold %d sizes %d+%d != %d", fold, len(train), len(test), n)
		}
		inTest := map[int]bool{}
		for _, i := range test {
			seen[i]++
			inTest[i] = true
		}
		for _, i := range train {
			if inTest[i] {
				t.Fatal("index in both train and test")
			}
		}
	})
	if folds != k {
		t.Fatalf("folds = %d", folds)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appeared in %d test folds", i, c)
		}
	}
}

func TestKFoldDegenerate(t *testing.T) {
	s := rng.New(7)
	count := 0
	KFold(3, 10, s, func(fold int, train, test []int) {
		count++
		if len(test) != 1 {
			t.Fatalf("k>n should reduce to leave-one-out, test = %v", test)
		}
	})
	if count != 3 {
		t.Fatalf("folds = %d", count)
	}
}

func TestCampaignSaveLoad(t *testing.T) {
	c := &Campaign{
		Seed: 42, Days: 130,
		Datasets: []*Dataset{synthetic(3, 4), {Name: "OTHER-512", App: "OTHER", Nodes: 512}},
	}
	path := filepath.Join(t.TempDir(), "campaign.gob")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.Days != 130 || len(got.Datasets) != 2 {
		t.Fatalf("metadata lost: %+v", got)
	}
	if got.TotalRuns() != 3 {
		t.Fatalf("TotalRuns = %d", got.TotalRuns())
	}
	d := got.Get("TEST-128")
	if d == nil {
		t.Fatal("Get failed")
	}
	if got.Get("NOPE") != nil {
		t.Fatal("Get of missing dataset should be nil")
	}
	r := d.Runs[1]
	if r.StepTimes[2] != synthetic(3, 4).Runs[1].StepTimes[2] {
		t.Fatal("step times corrupted by roundtrip")
	}
	if r.Neighbors[0].User != "User-2" {
		t.Fatal("neighbors corrupted by roundtrip")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadCorruptCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.gob")
	if err := os.WriteFile(path, []byte("this is not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("corrupt cache loaded without error")
	}
	if !strings.Contains(err.Error(), "corrupt campaign cache") {
		t.Fatalf("error is not descriptive: %v", err)
	}
}

func TestLoadDimensionMismatch(t *testing.T) {
	// a structurally broken campaign — one run's counter slice is shorter
	// than its step times — must fail Load's validation, not panic later
	c := &Campaign{Seed: 1, Days: 2, Datasets: []*Dataset{synthetic(2, 4)}}
	c.Datasets[0].Runs[1].Counters = c.Datasets[0].Runs[1].Counters[:2]
	path := filepath.Join(t.TempDir(), "mismatch.gob")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil {
		t.Fatal("dimension mismatch loaded without error")
	}
	if !strings.Contains(err.Error(), "observation lengths disagree") {
		t.Fatalf("error is not descriptive: %v", err)
	}
}

func TestValidateMissingMarkers(t *testing.T) {
	c := &Campaign{Datasets: []*Dataset{synthetic(2, 4)}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Datasets[0].Runs[0].Missing = []bool{true} // wrong length
	if err := c.Validate(); err == nil {
		t.Fatal("short missing-marker slice passed validation")
	}
	c.Datasets[0].Runs[0].Missing = make([]bool, 4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// uneven step counts within a dataset are rejected
	c.Datasets[0].Runs[1].StepTimes = c.Datasets[0].Runs[1].StepTimes[:3]
	c.Datasets[0].Runs[1].Compute = c.Datasets[0].Runs[1].Compute[:3]
	c.Datasets[0].Runs[1].Counters = c.Datasets[0].Runs[1].Counters[:3]
	c.Datasets[0].Runs[1].IO = c.Datasets[0].Runs[1].IO[:3]
	c.Datasets[0].Runs[1].Sys = c.Datasets[0].Runs[1].Sys[:3]
	if err := c.Validate(); err == nil {
		t.Fatal("uneven step counts passed validation")
	}
}
