// Package dataset holds the output of the controlled-experiment campaign
// (§III of the paper): per-run, per-time-step execution times and network
// counters, placement features, LDMS io/sys samples, and the run's
// neighborhood. It also implements the ML-facing transforms the analyses
// need — mean-trend removal (§IV-B), sliding forecast windows (§IV-C),
// cross-validation folds, and the user co-occurrence matrix (§IV-A).
package dataset

import (
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"dragonvar/internal/counters"
	"dragonvar/internal/linalg"
	"dragonvar/internal/mpi"
	"dragonvar/internal/rng"
)

// NeighborJob summarizes one other user's presence during a run.
type NeighborJob struct {
	User     string // anonymized user name
	MaxNodes int    // largest concurrent job size of that user
}

// Run is one controlled experiment: a single job submission of one
// application configuration.
type Run struct {
	Dataset string  // dataset label, e.g. "MILC-512"
	RunID   int     // unique within the campaign
	Start   float64 // campaign-clock start time, seconds
	Day     int     // campaign day of submission (for Figure 1's x axis)

	// placement features (§III-C)
	NumRouters int
	NumGroups  int

	// the run's neighborhood (other users with overlapping jobs)
	Neighbors []NeighborJob

	// per-step observations; all slices have length Steps()
	StepTimes []float64                  // wall seconds per step
	Compute   []float64                  // compute seconds per step
	Counters  [][counters.NumJob]float64 // AriesNCL per-step deltas
	IO        [][counters.NumLDMS]float64
	Sys       [][counters.NumLDMS]float64

	// whole-run mpiP-style profile
	Profile mpi.Profile
}

// Steps returns the number of recorded time steps.
func (r *Run) Steps() int { return len(r.StepTimes) }

// TotalTime returns the run's total execution time.
func (r *Run) TotalTime() float64 {
	var s float64
	for _, v := range r.StepTimes {
		s += v
	}
	return s
}

// TotalCompute returns the run's total compute (non-MPI) time.
func (r *Run) TotalCompute() float64 {
	var s float64
	for _, v := range r.Compute {
		s += v
	}
	return s
}

// FeatureVector assembles the model features of one step, in the column
// order of counters.FeatureSet.Names().
func (r *Run) FeatureVector(step int, fs counters.FeatureSet, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, 0, fs.Count())
	}
	dst = append(dst, r.Counters[step][:]...)
	if fs.Placement {
		dst = append(dst, float64(r.NumRouters), float64(r.NumGroups))
	}
	if fs.IO {
		dst = append(dst, r.IO[step][:]...)
	}
	if fs.Sys {
		dst = append(dst, r.Sys[step][:]...)
	}
	return dst
}

// Dataset is all runs of one application configuration — one of the six
// independent datasets of Table I.
type Dataset struct {
	Name  string // "AMG-128", ...
	App   string
	Nodes int
	Runs  []*Run
}

// Steps returns the per-run step count (all runs share it); 0 if empty.
func (d *Dataset) Steps() int {
	if len(d.Runs) == 0 {
		return 0
	}
	return d.Runs[0].Steps()
}

// BestTotalTime returns the fastest run's total time (the normalizer of
// Figure 1).
func (d *Dataset) BestTotalTime() float64 {
	best := 0.0
	for i, r := range d.Runs {
		t := r.TotalTime()
		if i == 0 || t < best {
			best = t
		}
	}
	return best
}

// MeanTotalTime returns the mean total execution time over runs (the t_m
// of §IV-A).
func (d *Dataset) MeanTotalTime() float64 {
	if len(d.Runs) == 0 {
		return 0
	}
	var s float64
	for _, r := range d.Runs {
		s += r.TotalTime()
	}
	return s / float64(len(d.Runs))
}

// MeanStepTimes returns the mean time of each step across runs — the mean
// trend of Figure 3.
func (d *Dataset) MeanStepTimes() []float64 {
	t := d.Steps()
	out := make([]float64, t)
	if len(d.Runs) == 0 {
		return out
	}
	for _, r := range d.Runs {
		for s, v := range r.StepTimes {
			out[s] += v
		}
	}
	for s := range out {
		out[s] /= float64(len(d.Runs))
	}
	return out
}

// MeanCounterTrend returns the mean per-step value of one counter across
// runs (Figure 7's middle and right plots).
func (d *Dataset) MeanCounterTrend(c counters.Index) []float64 {
	t := d.Steps()
	out := make([]float64, t)
	if len(d.Runs) == 0 {
		return out
	}
	for _, r := range d.Runs {
		for s := 0; s < t; s++ {
			out[s] += r.Counters[s][c]
		}
	}
	for s := range out {
		out[s] /= float64(len(d.Runs))
	}
	return out
}

// Optimality returns the per-run optimality vector of §IV-A: run r is
// optimal when its total time t_r < τ · t_m (τ = 1 marks below-mean runs
// as optimal).
func (d *Dataset) Optimality(tau float64) []bool {
	tm := d.MeanTotalTime()
	out := make([]bool, len(d.Runs))
	for i, r := range d.Runs {
		out[i] = r.TotalTime() < tau*tm
	}
	return out
}

// Cooccurrence builds the user co-occurrence matrix of §IV-A: the sorted
// vocabulary of users that had at least one overlapping job of minNodes or
// more, and per run a binary presence vector over that vocabulary.
func (d *Dataset) Cooccurrence(minNodes int) (users []string, m [][]bool) {
	vocab := map[string]bool{}
	for _, r := range d.Runs {
		for _, n := range r.Neighbors {
			if n.MaxNodes >= minNodes {
				vocab[n.User] = true
			}
		}
	}
	for u := range vocab {
		users = append(users, u)
	}
	sort.Strings(users)
	idx := map[string]int{}
	for i, u := range users {
		idx[u] = i
	}
	m = make([][]bool, len(d.Runs))
	for i, r := range d.Runs {
		row := make([]bool, len(users))
		for _, n := range r.Neighbors {
			if n.MaxNodes >= minNodes {
				row[idx[n.User]] = true
			}
		}
		m[i] = row
	}
	return users, m
}

// DeviationSamples builds the mean-centered per-step samples of §IV-B:
// every (run, step) pair is one sample; the features are the counter
// deltas with the per-step mean trend removed, the target is the step time
// with its mean trend removed. Returns X of shape (N·T)×H and y of length
// N·T; stepMean carries the removed trend so callers can reconstruct
// absolute times.
func (d *Dataset) DeviationSamples() (x *linalg.Matrix, y []float64, stepMean []float64) {
	n := len(d.Runs)
	t := d.Steps()
	h := counters.NumJob
	stepMean = d.MeanStepTimes()
	counterMean := make([][]float64, t)
	for s := 0; s < t; s++ {
		counterMean[s] = make([]float64, h)
	}
	for _, r := range d.Runs {
		for s := 0; s < t; s++ {
			for c := 0; c < h; c++ {
				counterMean[s][c] += r.Counters[s][c]
			}
		}
	}
	for s := 0; s < t; s++ {
		for c := 0; c < h; c++ {
			counterMean[s][c] /= float64(n)
		}
	}
	x = linalg.NewMatrix(n*t, h)
	y = make([]float64, n*t)
	for i, r := range d.Runs {
		for s := 0; s < t; s++ {
			row := x.Row(i*t + s)
			for c := 0; c < h; c++ {
				row[c] = r.Counters[s][c] - counterMean[s][c]
			}
			y[i*t+s] = r.StepTimes[s] - stepMean[s]
		}
	}
	return x, y, stepMean
}

// Window is one forecasting sample (§IV-C, Figure 6): the features of the
// last m steps and the total execution time of the next k steps.
type Window struct {
	RunIdx int
	TC     int         // the "current step" t_c
	Steps  [][]float64 // m rows of per-step features
	Target float64     // Σ of the next k step times
}

// BuildWindows slides t_c from m to T−k over every run and returns the
// samples. fs selects the feature columns.
func (d *Dataset) BuildWindows(fs counters.FeatureSet, m, k int) []Window {
	var out []Window
	t := d.Steps()
	for ri, r := range d.Runs {
		for tc := m; tc <= t-k; tc++ {
			w := Window{RunIdx: ri, TC: tc, Steps: make([][]float64, m)}
			for i := 0; i < m; i++ {
				w.Steps[i] = r.FeatureVector(tc-m+i, fs, nil)
			}
			for i := tc; i < tc+k; i++ {
				w.Target += r.StepTimes[i]
			}
			out = append(out, w)
		}
	}
	return out
}

// KFold partitions [0, n) into k shuffled folds; fold i is returned as
// (test, train) index pairs via the callback.
func KFold(n, k int, s *rng.Stream, fn func(fold int, train, test []int)) {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := s.Perm(n)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := make([]int, 0, hi-lo)
		train := make([]int, 0, n-(hi-lo))
		for i, p := range perm {
			if i >= lo && i < hi {
				test = append(test, p)
			} else {
				train = append(train, p)
			}
		}
		fn(f, train, test)
	}
}

// Campaign is the full experiment output: the six datasets plus campaign
// metadata, as written to disk by the generator and consumed by every
// analysis and benchmark.
type Campaign struct {
	Seed     int64
	Days     float64
	Datasets []*Dataset
}

// Get returns the dataset with the given name, or nil.
func (c *Campaign) Get(name string) *Dataset {
	for _, d := range c.Datasets {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// TotalRuns counts all runs across datasets.
func (c *Campaign) TotalRuns() int {
	n := 0
	for _, d := range c.Datasets {
		n += len(d.Runs)
	}
	return n
}

// Save writes the campaign to a gob file.
func (c *Campaign) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(c); err != nil {
		f.Close()
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return f.Close()
}

// Load reads a campaign from a gob file.
func Load(path string) (*Campaign, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var c Campaign
	if err := gob.NewDecoder(f).Decode(&c); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return &c, nil
}
