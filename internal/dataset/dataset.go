// Package dataset holds the output of the controlled-experiment campaign
// (§III of the paper): per-run, per-time-step execution times and network
// counters, placement features, LDMS io/sys samples, and the run's
// neighborhood. It also implements the ML-facing transforms the analyses
// need — mean-trend removal (§IV-B), sliding forecast windows (§IV-C),
// cross-validation folds, and the user co-occurrence matrix (§IV-A).
package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"dragonvar/internal/counters"
	"dragonvar/internal/linalg"
	"dragonvar/internal/mpi"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
)

// NeighborJob summarizes one other user's presence during a run.
type NeighborJob struct {
	User     string // anonymized user name
	MaxNodes int    // largest concurrent job size of that user
}

// Run is one controlled experiment: a single job submission of one
// application configuration.
type Run struct {
	Dataset string  // dataset label, e.g. "MILC-512"
	RunID   int     // unique within the campaign
	Start   float64 // campaign-clock start time, seconds
	Day     int     // campaign day of submission (for Figure 1's x axis)

	// placement features (§III-C)
	NumRouters int
	NumGroups  int

	// the run's neighborhood (other users with overlapping jobs)
	Neighbors []NeighborJob

	// per-step observations; all slices have length Steps()
	StepTimes []float64                  // wall seconds per step
	Compute   []float64                  // compute seconds per step
	Counters  [][counters.NumJob]float64 // AriesNCL per-step deltas
	IO        [][counters.NumLDMS]float64
	Sys       [][counters.NumLDMS]float64
	// Missing[s] marks steps whose counter/io/sys observations were lost
	// to a sampler dropout (the values are counters.Missing() markers).
	// Step times are still known from the job log. Nil when the campaign
	// ran without faults.
	Missing []bool

	// Requeues counts how often this submission lost its nodes to a fault
	// and was resubmitted before this (successful) execution.
	Requeues int

	// whole-run mpiP-style profile
	Profile mpi.Profile
}

// Steps returns the number of recorded time steps.
func (r *Run) Steps() int { return len(r.StepTimes) }

// MissingAt reports whether step s's observations were lost to a sampler
// dropout.
func (r *Run) MissingAt(s int) bool { return s < len(r.Missing) && r.Missing[s] }

// GapFraction is the fraction of the run's steps with missing
// observations.
func (r *Run) GapFraction() float64 {
	if r.Steps() == 0 {
		return 0
	}
	n := 0
	for s := range r.Missing {
		if r.Missing[s] {
			n++
		}
	}
	return float64(n) / float64(r.Steps())
}

// TotalTime returns the run's total execution time.
func (r *Run) TotalTime() float64 {
	var s float64
	for _, v := range r.StepTimes {
		s += v
	}
	return s
}

// TotalCompute returns the run's total compute (non-MPI) time.
func (r *Run) TotalCompute() float64 {
	var s float64
	for _, v := range r.Compute {
		s += v
	}
	return s
}

// FeatureVector assembles the model features of one step, in the column
// order of counters.FeatureSet.Names().
func (r *Run) FeatureVector(step int, fs counters.FeatureSet, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, 0, fs.Count())
	}
	dst = append(dst, r.Counters[step][:]...)
	if fs.Placement {
		dst = append(dst, float64(r.NumRouters), float64(r.NumGroups))
	}
	if fs.IO {
		dst = append(dst, r.IO[step][:]...)
	}
	if fs.Sys {
		dst = append(dst, r.Sys[step][:]...)
	}
	return dst
}

// Dataset is all runs of one application configuration — one of the six
// independent datasets of Table I.
type Dataset struct {
	Name  string // "AMG-128", ...
	App   string
	Nodes int
	Runs  []*Run
}

// Steps returns the per-run step count (all runs share it); 0 if empty.
func (d *Dataset) Steps() int {
	if len(d.Runs) == 0 {
		return 0
	}
	return d.Runs[0].Steps()
}

// BestTotalTime returns the fastest run's total time (the normalizer of
// Figure 1).
func (d *Dataset) BestTotalTime() float64 {
	best := 0.0
	for i, r := range d.Runs {
		t := r.TotalTime()
		if i == 0 || t < best {
			best = t
		}
	}
	return best
}

// MeanTotalTime returns the mean total execution time over runs (the t_m
// of §IV-A).
func (d *Dataset) MeanTotalTime() float64 {
	if len(d.Runs) == 0 {
		return 0
	}
	var s float64
	for _, r := range d.Runs {
		s += r.TotalTime()
	}
	return s / float64(len(d.Runs))
}

// MeanStepTimes returns the mean time of each step across runs — the mean
// trend of Figure 3.
func (d *Dataset) MeanStepTimes() []float64 {
	t := d.Steps()
	out := make([]float64, t)
	if len(d.Runs) == 0 {
		return out
	}
	for _, r := range d.Runs {
		for s, v := range r.StepTimes {
			out[s] += v
		}
	}
	for s := range out {
		out[s] /= float64(len(d.Runs))
	}
	return out
}

// MeanCounterTrend returns the mean per-step value of one counter across
// runs (Figure 7's middle and right plots). Steps a run lost to a sampler
// dropout are averaged over the runs that did observe them.
func (d *Dataset) MeanCounterTrend(c counters.Index) []float64 {
	t := d.Steps()
	out := make([]float64, t)
	if len(d.Runs) == 0 {
		return out
	}
	seen := make([]int, t)
	for _, r := range d.Runs {
		for s := 0; s < t; s++ {
			if r.MissingAt(s) {
				continue
			}
			out[s] += r.Counters[s][c]
			seen[s]++
		}
	}
	for s := range out {
		if seen[s] > 0 {
			out[s] /= float64(seen[s])
		}
	}
	return out
}

// GapFraction is the fraction of (run, step) observations missing across
// the dataset.
func (d *Dataset) GapFraction() float64 {
	var missing, total int
	for _, r := range d.Runs {
		total += r.Steps()
		for s := range r.Missing {
			if r.Missing[s] {
				missing++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(missing) / float64(total)
}

// Optimality returns the per-run optimality vector of §IV-A: run r is
// optimal when its total time t_r < τ · t_m (τ = 1 marks below-mean runs
// as optimal).
func (d *Dataset) Optimality(tau float64) []bool {
	tm := d.MeanTotalTime()
	out := make([]bool, len(d.Runs))
	for i, r := range d.Runs {
		out[i] = r.TotalTime() < tau*tm
	}
	return out
}

// Cooccurrence builds the user co-occurrence matrix of §IV-A: the sorted
// vocabulary of users that had at least one overlapping job of minNodes or
// more, and per run a binary presence vector over that vocabulary.
func (d *Dataset) Cooccurrence(minNodes int) (users []string, m [][]bool) {
	vocab := map[string]bool{}
	for _, r := range d.Runs {
		for _, n := range r.Neighbors {
			if n.MaxNodes >= minNodes {
				vocab[n.User] = true
			}
		}
	}
	for u := range vocab {
		users = append(users, u)
	}
	sort.Strings(users)
	idx := map[string]int{}
	for i, u := range users {
		idx[u] = i
	}
	m = make([][]bool, len(d.Runs))
	for i, r := range d.Runs {
		row := make([]bool, len(users))
		for _, n := range r.Neighbors {
			if n.MaxNodes >= minNodes {
				row[idx[n.User]] = true
			}
		}
		m[i] = row
	}
	return users, m
}

// DeviationSamples builds the mean-centered per-step samples of §IV-B:
// every observed (run, step) pair is one sample; the features are the
// counter deltas with the per-step mean trend removed, the target is the
// step time with its mean trend removed. Steps lost to sampler dropouts
// contribute no sample and are excluded from the per-step means, so the
// transform is gap-tolerant: on a dense dataset X has N·T rows in
// run-major order, on a gappy one fewer. stepMean carries the removed
// trend and stepOf maps each returned row back to its step index, so
// callers can reconstruct absolute times even when rows were skipped.
func (d *Dataset) DeviationSamples() (x *linalg.Matrix, y []float64, stepMean []float64, stepOf []int) {
	t := d.Steps()
	h := counters.NumJob
	stepMean = d.MeanStepTimes()

	// per-step counter means over the runs that observed each step
	counterMean := make([][]float64, t)
	seen := make([]int, t)
	for s := 0; s < t; s++ {
		counterMean[s] = make([]float64, h)
	}
	samples := 0
	for _, r := range d.Runs {
		for s := 0; s < t; s++ {
			if r.MissingAt(s) {
				continue
			}
			samples++
			seen[s]++
			for c := 0; c < h; c++ {
				counterMean[s][c] += r.Counters[s][c]
			}
		}
	}
	for s := 0; s < t; s++ {
		if seen[s] == 0 {
			continue
		}
		for c := 0; c < h; c++ {
			counterMean[s][c] /= float64(seen[s])
		}
	}

	x = linalg.NewMatrix(samples, h)
	y = make([]float64, samples)
	stepOf = make([]int, samples)
	i := 0
	for _, r := range d.Runs {
		for s := 0; s < t; s++ {
			if r.MissingAt(s) {
				continue
			}
			row := x.Row(i)
			for c := 0; c < h; c++ {
				row[c] = r.Counters[s][c] - counterMean[s][c]
			}
			y[i] = r.StepTimes[s] - stepMean[s]
			stepOf[i] = s
			i++
		}
	}
	return x, y, stepMean, stepOf
}

// Window is one forecasting sample (§IV-C, Figure 6): the features of the
// last m steps and the total execution time of the next k steps.
type Window struct {
	RunIdx int
	TC     int         // the "current step" t_c
	Steps  [][]float64 // m rows of per-step features
	Target float64     // Σ of the next k step times
}

// GapPolicy selects how BuildWindowsGap treats history steps whose
// observations were lost to a sampler dropout.
type GapPolicy int

const (
	// GapImpute linearly interpolates missing feature steps from the
	// nearest observed steps of the same run (edge gaps copy the nearest
	// observation). Keeps the window count of a dense dataset.
	GapImpute GapPolicy = iota
	// GapSkip drops every window whose m-step history touches a missing
	// step. Conservative: fewer but fully observed samples.
	GapSkip
)

// BuildWindows slides t_c from m to T−k over every run and returns the
// samples, imputing any dropout gaps (equivalent to
// BuildWindowsGap(fs, m, k, GapImpute)). fs selects the feature columns.
func (d *Dataset) BuildWindows(fs counters.FeatureSet, m, k int) []Window {
	return d.BuildWindowsGap(fs, m, k, GapImpute)
}

// BuildWindowsGap is BuildWindows with an explicit policy for missing
// steps. Forecast targets are unaffected by gaps (step times come from the
// job log, not the samplers); only the feature history can be missing.
func (d *Dataset) BuildWindowsGap(fs counters.FeatureSet, m, k int, policy GapPolicy) []Window {
	var out []Window
	t := d.Steps()
	for ri, r := range d.Runs {
		if t < m+k {
			break
		}
		hasGap := false
		for s := 0; s < t; s++ {
			if r.MissingAt(s) {
				hasGap = true
				break
			}
		}
		// per-step feature rows, shared by every window of the run
		feats := make([][]float64, t)
		for s := 0; s < t; s++ {
			feats[s] = r.FeatureVector(s, fs, nil)
		}
		if hasGap && policy == GapImpute {
			imputeRows(feats, r)
		}
		for tc := m; tc <= t-k; tc++ {
			if hasGap && policy == GapSkip {
				blocked := false
				for s := tc - m; s < tc; s++ {
					if r.MissingAt(s) {
						blocked = true
						break
					}
				}
				if blocked {
					continue
				}
			}
			w := Window{RunIdx: ri, TC: tc, Steps: make([][]float64, m)}
			for i := 0; i < m; i++ {
				w.Steps[i] = feats[tc-m+i]
			}
			for i := tc; i < tc+k; i++ {
				w.Target += r.StepTimes[i]
			}
			out = append(out, w)
		}
	}
	return out
}

// imputeRows replaces the feature rows of missing steps with linear
// interpolations between the nearest observed steps (copying the nearest
// row at the edges; all-missing runs fall back to zeros).
func imputeRows(feats [][]float64, r *Run) {
	t := len(feats)
	prev := make([]int, t) // nearest observed step ≤ s, else -1
	next := make([]int, t) // nearest observed step ≥ s, else -1
	last := -1
	for s := 0; s < t; s++ {
		if !r.MissingAt(s) {
			last = s
		}
		prev[s] = last
	}
	last = -1
	for s := t - 1; s >= 0; s-- {
		if !r.MissingAt(s) {
			last = s
		}
		next[s] = last
	}
	for s := 0; s < t; s++ {
		if !r.MissingAt(s) {
			continue
		}
		p, nx := prev[s], next[s]
		row := feats[s]
		switch {
		case p >= 0 && nx >= 0:
			w := float64(s-p) / float64(nx-p)
			for j := range row {
				row[j] = feats[p][j]*(1-w) + feats[nx][j]*w
			}
		case p >= 0:
			copy(row, feats[p])
		case nx >= 0:
			copy(row, feats[nx])
		default:
			for j := range row {
				row[j] = 0
			}
		}
	}
}

// FoldSplit is one cross-validation fold's (train, test) index pair.
type FoldSplit struct {
	Train, Test []int
}

// KFoldSplits partitions [0, n) into k shuffled folds and returns every
// fold's (train, test) split up front, so callers can fan the folds out to
// parallel workers. The splits depend only on (n, k) and the stream, never
// on the order folds are later processed in.
func KFoldSplits(n, k int, s *rng.Stream) []FoldSplit {
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := s.Perm(n)
	out := make([]FoldSplit, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		test := make([]int, 0, hi-lo)
		train := make([]int, 0, n-(hi-lo))
		for i, p := range perm {
			if i >= lo && i < hi {
				test = append(test, p)
			} else {
				train = append(train, p)
			}
		}
		out[f] = FoldSplit{Train: train, Test: test}
	}
	return out
}

// KFold partitions [0, n) into k shuffled folds; fold i is returned as
// (test, train) index pairs via the callback.
func KFold(n, k int, s *rng.Stream, fn func(fold int, train, test []int)) {
	for f, sp := range KFoldSplits(n, k, s) {
		fn(f, sp.Train, sp.Test)
	}
}

// Campaign is the full experiment output: the six datasets plus campaign
// metadata, as written to disk by the generator and consumed by every
// analysis and benchmark.
type Campaign struct {
	Seed int64
	Days float64
	// Faults is the fault-spec string the campaign ran under (empty for a
	// perfect machine). Part of the cache identity: a cache generated with
	// different faults must not satisfy a request.
	Faults string
	// Routing and Placement name the policies the campaign ran under
	// (netsim routing policy, slurm placement policy). Part of the cache
	// identity for the same reason as Faults: the same seed produces
	// different bytes under a different policy pair. Empty in pre-policy
	// caches, which therefore regenerate once.
	Routing   string
	Placement string
	Datasets  []*Dataset
	// Partial marks a campaign cut short by cancellation: it carries only
	// the runs that completed before the interrupt. Partial campaigns are
	// saved (the work is not lost) but never satisfy a cache lookup.
	Partial bool
}

// GapFraction is the fraction of observations missing across the whole
// campaign.
func (c *Campaign) GapFraction() float64 {
	var missing, total int
	for _, d := range c.Datasets {
		for _, r := range d.Runs {
			total += r.Steps()
			for s := range r.Missing {
				if r.Missing[s] {
					missing++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(missing) / float64(total)
}

// TotalRequeues counts fault requeues across all recorded runs.
func (c *Campaign) TotalRequeues() int {
	n := 0
	for _, d := range c.Datasets {
		for _, r := range d.Runs {
			n += r.Requeues
		}
	}
	return n
}

// Validate checks the structural invariants every consumer indexes by:
// non-nil datasets and runs, per-run observation slices of equal length,
// and a consistent step count within each dataset. A stale or hand-edited
// campaign cache fails here with a clear message instead of panicking
// deep inside an analysis.
func (c *Campaign) Validate() error {
	for di, d := range c.Datasets {
		if d == nil {
			return fmt.Errorf("dataset %d is nil", di)
		}
		steps := -1
		for ri, r := range d.Runs {
			if r == nil {
				return fmt.Errorf("dataset %s: run %d is nil", d.Name, ri)
			}
			t := len(r.StepTimes)
			if len(r.Compute) != t || len(r.Counters) != t || len(r.IO) != t || len(r.Sys) != t {
				return fmt.Errorf("dataset %s: run %d: observation lengths disagree (times=%d compute=%d counters=%d io=%d sys=%d)",
					d.Name, ri, t, len(r.Compute), len(r.Counters), len(r.IO), len(r.Sys))
			}
			if r.Missing != nil && len(r.Missing) != t {
				return fmt.Errorf("dataset %s: run %d: missing-marker length %d != %d steps",
					d.Name, ri, len(r.Missing), t)
			}
			if steps == -1 {
				steps = t
			} else if t != steps {
				return fmt.Errorf("dataset %s: run %d has %d steps, run 0 has %d",
					d.Name, ri, t, steps)
			}
		}
	}
	return nil
}

// Get returns the dataset with the given name, or nil.
func (c *Campaign) Get(name string) *Dataset {
	for _, d := range c.Datasets {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// TotalRuns counts all runs across datasets.
func (c *Campaign) TotalRuns() int {
	n := 0
	for _, d := range c.Datasets {
		n += len(d.Runs)
	}
	return n
}

// Save writes the campaign to a gob file atomically: the encoding goes to a
// temp file in the target directory which is renamed into place only after
// a successful write, so an interrupt (or a full disk) can never leave a
// truncated campaign.gob behind for the next Load to choke on.
func (c *Campaign) Save(path string) error {
	start := time.Now()
	defer telemetry.H(telemetry.MCacheSaveSecs, telemetry.SecondsBuckets).ObserveSince(start)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	tmp := f.Name()
	cw := &countingWriter{w: f}
	if err := gob.NewEncoder(cw).Encode(c); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("dataset: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataset: save: %w", err)
	}
	telemetry.C(telemetry.MCacheWriteBytes).Add(cw.n)
	return nil
}

// Load reads a campaign from a gob file.
func Load(path string) (*Campaign, error) {
	start := time.Now()
	defer telemetry.H(telemetry.MCacheLoadSecs, telemetry.SecondsBuckets).ObserveSince(start)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	var c Campaign
	cr := &countingReader{r: f}
	if err := gob.NewDecoder(cr).Decode(&c); err != nil {
		return nil, fmt.Errorf("dataset: decode %s: %w (stale or corrupt campaign cache; delete it and regenerate)", path, err)
	}
	telemetry.C(telemetry.MCacheReadBytes).Add(cr.n)
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: validate %s: %w (stale or corrupt campaign cache; delete it and regenerate)", path, err)
	}
	return &c, nil
}

// countingWriter / countingReader tally gob traffic for the cache byte
// counters without buffering anything.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
