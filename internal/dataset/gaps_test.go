package dataset

import (
	"math"
	"testing"

	"dragonvar/internal/counters"
)

// markMissing marks the given steps of one run as lost to a sampler
// dropout, the way the campaign generator records them: Missing flags set
// and the per-step observations overwritten with missing markers.
func markMissing(d *Dataset, runIdx int, steps ...int) {
	r := d.Runs[runIdx]
	if r.Missing == nil {
		r.Missing = make([]bool, r.Steps())
	}
	for _, s := range steps {
		r.Missing[s] = true
		for c := range r.Counters[s] {
			r.Counters[s][c] = counters.Missing()
		}
		for c := range r.IO[s] {
			r.IO[s][c] = counters.Missing()
		}
		for c := range r.Sys[s] {
			r.Sys[s][c] = counters.Missing()
		}
	}
}

func TestGapFraction(t *testing.T) {
	d := synthetic(4, 10)
	if d.GapFraction() != 0 {
		t.Fatalf("dense dataset gap fraction = %v", d.GapFraction())
	}
	markMissing(d, 0, 2, 3)
	markMissing(d, 2, 7)
	if got := d.GapFraction(); got != 3.0/40.0 {
		t.Fatalf("gap fraction = %v, want 3/40", got)
	}
	if got := d.Runs[0].GapFraction(); got != 0.2 {
		t.Fatalf("run 0 gap fraction = %v, want 0.2", got)
	}
}

func TestDeviationSamplesSkipsMissing(t *testing.T) {
	d := synthetic(4, 10)
	markMissing(d, 0, 2, 3)
	markMissing(d, 2, 7)
	x, y, stepMean, stepOf := d.DeviationSamples()
	if x.Rows != 37 {
		t.Fatalf("rows = %d, want 40-3", x.Rows)
	}
	if len(y) != 37 || len(stepOf) != 37 || len(stepMean) != 10 {
		t.Fatalf("lengths: y=%d stepOf=%d stepMean=%d", len(y), len(stepOf), len(stepMean))
	}
	// no missing marker leaks into the sample matrix
	for i := 0; i < x.Rows; i++ {
		for _, v := range x.Row(i) {
			if math.IsNaN(v) {
				t.Fatalf("NaN in feature row %d", i)
			}
		}
		if math.IsNaN(y[i]) {
			t.Fatalf("NaN target at row %d", i)
		}
	}
	// run 0's rows skip steps 2 and 3 but keep their step indices
	want := []int{0, 1, 4, 5, 6, 7, 8, 9}
	for i, s := range want {
		if stepOf[i] != s {
			t.Fatalf("stepOf[%d] = %d, want %d", i, stepOf[i], s)
		}
	}
	// steps observed by every run are centered over all four runs: counter 0
	// of step 0 is 100+i, the mean 101.5, so run 0's deviation is -1.5
	if got := x.Row(0)[0]; got != -1.5 {
		t.Fatalf("centered counter = %v, want -1.5", got)
	}
	// step 2 was only observed by runs 1..3 (counter 100*3+i): mean over the
	// observers is 302, so run 1's deviation is 301-302 = -1
	for i, s := range stepOf {
		if s == 2 {
			if got := x.Row(i)[0]; got != -1 {
				t.Fatalf("gappy-step centering = %v, want -1", got)
			}
			break
		}
	}
}

func TestBuildWindowsGapImpute(t *testing.T) {
	d := synthetic(2, 10)
	markMissing(d, 0, 0, 4)
	fs := counters.FeatureSet{}
	windows := d.BuildWindowsGap(fs, 3, 2, GapImpute)
	// imputation keeps the dense window count: tc in [3, 8] → 6 per run
	if len(windows) != 12 {
		t.Fatalf("windows = %d, want 12", len(windows))
	}
	for _, w := range windows {
		for _, row := range w.Steps {
			for _, v := range row {
				if math.IsNaN(v) {
					t.Fatalf("NaN feature in window run=%d tc=%d", w.RunIdx, w.TC)
				}
			}
		}
		if math.IsNaN(w.Target) {
			t.Fatalf("NaN target in window run=%d tc=%d", w.RunIdx, w.TC)
		}
		switch {
		case w.RunIdx == 0 && w.TC == 3:
			// history covers steps 0..2; edge-missing step 0 copies step 1,
			// whose counter 0 is 100*(1+1)+0 = 200
			if got := w.Steps[0][0]; got != 200 {
				t.Fatalf("edge imputation = %v, want 200", got)
			}
		case w.RunIdx == 0 && w.TC == 5:
			// history covers steps 2..4; counter 0 is linear in the step
			// (100·(s+1)), so interior interpolation of step 4 from steps 3
			// and 5 is exact: (400+600)/2 = 500
			if got := w.Steps[2][0]; got != 500 {
				t.Fatalf("interior imputation = %v, want 500", got)
			}
		}
	}
}

func TestBuildWindowsGapSkip(t *testing.T) {
	d := synthetic(2, 10)
	markMissing(d, 0, 0, 4)
	fs := counters.FeatureSet{}
	windows := d.BuildWindowsGap(fs, 3, 2, GapSkip)
	// run 0's histories touching steps 0 or 4 are dropped: of tc 3..8 only
	// tc=4 (steps 1..3) and tc=8 (steps 5..7) survive; run 1 keeps all 6
	if len(windows) != 8 {
		t.Fatalf("windows = %d, want 8", len(windows))
	}
	var run0 []int
	for _, w := range windows {
		if w.RunIdx == 0 {
			run0 = append(run0, w.TC)
		}
		for _, row := range w.Steps {
			for _, v := range row {
				if math.IsNaN(v) {
					t.Fatalf("GapSkip let a missing step through: run=%d tc=%d", w.RunIdx, w.TC)
				}
			}
		}
	}
	if len(run0) != 2 || run0[0] != 4 || run0[1] != 8 {
		t.Fatalf("run 0 surviving windows at tc=%v, want [4 8]", run0)
	}
}

func TestBuildWindowsAllMissingRun(t *testing.T) {
	d := synthetic(2, 10)
	all := make([]int, 10)
	for s := range all {
		all[s] = s
	}
	markMissing(d, 0, all...)
	if got := d.BuildWindowsGap(counters.FeatureSet{}, 3, 2, GapSkip); len(got) != 6 {
		t.Fatalf("GapSkip with an all-missing run: %d windows, want run 1's 6", len(got))
	}
	// GapImpute has nothing to interpolate from: rows fall back to zeros
	// rather than NaN so training never sees a non-finite feature
	for _, w := range d.BuildWindowsGap(counters.FeatureSet{}, 3, 2, GapImpute) {
		for _, row := range w.Steps {
			for _, v := range row {
				if math.IsNaN(v) {
					t.Fatal("all-missing run leaked NaN through imputation")
				}
			}
		}
	}
}
