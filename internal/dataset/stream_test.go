package dataset

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dragonvar/internal/counters"
)

// streamRun builds one valid run for the named dataset. Runs of one
// dataset all get the same step count (Campaign.Validate requires it).
func streamRun(ds string, id int, start float64, steps int) *Run {
	r := &Run{Dataset: ds, RunID: id, Start: start, Day: int(start / 86400),
		NumRouters: 30, NumGroups: 5}
	for s := 0; s < steps; s++ {
		r.StepTimes = append(r.StepTimes, float64(10+s+id))
		r.Compute = append(r.Compute, 2)
		var c [counters.NumJob]float64
		c[0] = float64(100*(s+1) + id)
		r.Counters = append(r.Counters, c)
		r.IO = append(r.IO, [counters.NumLDMS]float64{float64(s), 0, 0, 0})
		r.Sys = append(r.Sys, [counters.NumLDMS]float64{0, float64(id), 0, 0})
	}
	return r
}

func streamMetaForTest(windowRuns int, span float64) StreamMeta {
	return StreamMeta{
		Seed: 7, Days: 3, Routing: "minimal", Placement: "firstfit",
		Datasets: []DatasetInfo{
			{Name: "A-128", App: "A", Nodes: 128},
			{Name: "B-256", App: "B", Nodes: 256},
		},
		WindowRuns: windowRuns, WindowSpan: span,
	}
}

// runSeq deterministically interleaves runs of the two datasets the way a
// campaign merge would: global order by index.
func runSeq(n int) []*Run {
	runs := make([]*Run, n)
	for i := range runs {
		ds := "A-128"
		if i%3 == 2 {
			ds = "B-256"
		}
		runs[i] = streamRun(ds, i, float64(i)*1000, 6)
	}
	return runs
}

func TestStreamSealReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := streamMetaForTest(4, 0)
	w, err := OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	runs := runSeq(10)
	var sealed int
	for _, r := range runs {
		segs, err := w.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		sealed += len(segs)
	}
	if sealed != 2 || w.SealedSegments() != 2 || w.OpenRuns() != 2 || w.TotalRuns() != 10 {
		t.Fatalf("after 10 appends: sealed=%d segments=%d open=%d total=%d",
			sealed, w.SealedSegments(), w.OpenRuns(), w.TotalRuns())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same counts, and the open window survives the WAL replay.
	w, err = OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.SealedSegments() != 2 || w.OpenRuns() != 2 || w.TotalRuns() != 10 {
		t.Fatalf("after reopen: segments=%d open=%d total=%d",
			w.SealedSegments(), w.OpenRuns(), w.TotalRuns())
	}
	seg, err := w.Segment(1)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Index != 1 || seg.FirstRun != 4 || len(seg.Runs) != 4 {
		t.Fatalf("segment 1: index=%d firstRun=%d runs=%d", seg.Index, seg.FirstRun, len(seg.Runs))
	}
	if seg.Runs[0].RunID != runs[4].RunID || seg.Runs[0].Start != runs[4].Start {
		t.Fatalf("segment 1 run 0 = %+v, want run 4", seg.Runs[0])
	}

	// Two more appends complete the third window.
	for i := 10; i < 12; i++ {
		if _, err := w.Append(streamRun("A-128", i, float64(i)*1000, 6)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SealedSegments() != 3 || w.OpenRuns() != 0 {
		t.Fatalf("after 12 appends: segments=%d open=%d", w.SealedSegments(), w.OpenRuns())
	}

	camp, err := w.AssembleSealed()
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalRuns() != 12 {
		t.Fatalf("AssembleSealed runs = %d, want 12", camp.TotalRuns())
	}
	if camp.Seed != meta.Seed || camp.Routing != meta.Routing || camp.Placement != meta.Placement {
		t.Fatalf("assembled identity %d/%s/%s does not match meta", camp.Seed, camp.Routing, camp.Placement)
	}
}

func TestStreamIdentityRefused(t *testing.T) {
	dir := t.TempDir()
	if w, err := OpenStream(dir, streamMetaForTest(4, 0)); err != nil {
		t.Fatal(err)
	} else {
		w.Close()
	}
	other := streamMetaForTest(8, 0) // different window bound = different stream
	if _, err := OpenStream(dir, other); err == nil {
		t.Fatal("reopening with a different identity succeeded, want refusal")
	}
}

func TestStreamWALTornTailHealed(t *testing.T) {
	dir := t.TempDir()
	meta := streamMetaForTest(4, 0)
	w, err := OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runSeq(3) {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// A crash mid-append leaves a torn frame at the WAL tail; the reopen
	// must keep the intact prefix and drop the tail.
	wal := filepath.Join(dir, "wal.gob")
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w, err = OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.TotalRuns() != 2 || w.OpenRuns() != 2 {
		t.Fatalf("after torn tail: total=%d open=%d, want 2/2", w.TotalRuns(), w.OpenRuns())
	}
	// And the stream keeps working from the healed state.
	if _, err := w.Append(streamRun("A-128", 2, 2000, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestStreamRecoverSealsOnReopen(t *testing.T) {
	dir := t.TempDir()
	meta := streamMetaForTest(3, 0)
	w, err := OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	runs := runSeq(3)
	for _, r := range runs[:2] {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash after the WAL append of the window-completing run
	// but before the seal: hand-append the third run's frame.
	var buf bytes.Buffer
	if err := appendFrame(&buf, runs[2]); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.gob"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, err = OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.SealedSegments() != 1 || w.OpenRuns() != 0 || w.TotalRuns() != 3 {
		t.Fatalf("after recovery: segments=%d open=%d total=%d, want 1/0/3",
			w.SealedSegments(), w.OpenRuns(), w.TotalRuns())
	}
	seg, err := w.Segment(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Runs) != 3 || seg.Runs[2].RunID != runs[2].RunID {
		t.Fatalf("recovered segment: %d runs, last id %d", len(seg.Runs), seg.Runs[len(seg.Runs)-1].RunID)
	}
}

func TestStreamWindowSpanSeal(t *testing.T) {
	dir := t.TempDir()
	meta := streamMetaForTest(100, 1500) // count bound effectively off
	w, err := OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, start := range []float64{0, 1000, 2000} {
		if _, err := w.Append(streamRun("A-128", i, start, 6)); err != nil {
			t.Fatal(err)
		}
	}
	// 2000 - 0 > 1500 forced a seal of {0, 1000} before admitting 2000.
	if w.SealedSegments() != 1 || w.OpenRuns() != 1 {
		t.Fatalf("span seal: segments=%d open=%d, want 1/1", w.SealedSegments(), w.OpenRuns())
	}
	// A clock rewind (new campaign epoch) also seals.
	if _, err := w.Append(streamRun("A-128", 3, 100, 6)); err != nil {
		t.Fatal(err)
	}
	if w.SealedSegments() != 2 || w.OpenRuns() != 1 {
		t.Fatalf("rewind seal: segments=%d open=%d, want 2/1", w.SealedSegments(), w.OpenRuns())
	}
}

func TestStreamCorruptSegmentQuarantine(t *testing.T) {
	dir := t.TempDir()
	meta := streamMetaForTest(3, 0)
	w, err := OpenStream(dir, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, r := range runSeq(3) {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	segPath := filepath.Join(dir, "segments", "seg-000000.gob")
	raw, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(segPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = w.Segment(0)
	var cerr *CorruptSegmentError
	if !errors.As(err, &cerr) {
		t.Fatalf("Segment(0) = %v, want CorruptSegmentError", err)
	}
	if !cerr.Quarantined {
		t.Fatalf("segment not quarantined: %v", cerr)
	}
	if _, err := os.Stat(segPath + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(segPath); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still in place: %v", err)
	}
}

// TestStreamBatchEquivalence is the batch-vs-streaming contract: the same
// run sequence ingested through the stream assembles into a campaign that
// saves byte-identically to one built directly.
func TestStreamBatchEquivalence(t *testing.T) {
	dir := t.TempDir()
	meta := streamMetaForTest(4, 0)
	runs := runSeq(11) // deliberately not a multiple of the window size

	batch := &Campaign{Seed: meta.Seed, Days: meta.Days, Faults: meta.Faults,
		Routing: meta.Routing, Placement: meta.Placement}
	for _, info := range meta.Datasets {
		batch.Datasets = append(batch.Datasets,
			&Dataset{Name: info.Name, App: info.App, Nodes: info.Nodes, Runs: []*Run{}})
	}
	for _, r := range runs {
		d := batch.Get(r.Dataset)
		d.Runs = append(d.Runs, r)
	}

	w, err := OpenStream(filepath.Join(dir, "stream"), meta)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, r := range runs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	batchPath := filepath.Join(dir, "batch.gob")
	streamPath := filepath.Join(dir, "streamed.gob")
	if err := batch.Save(batchPath); err != nil {
		t.Fatal(err)
	}
	if err := streamed.Save(streamPath); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("batch and streamed campaigns differ: %d vs %d bytes", len(b1), len(b2))
	}
}
