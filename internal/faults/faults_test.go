package faults

import (
	"reflect"
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func smallTopo(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParseExplicit(t *testing.T) {
	d := smallTopo(t)
	s, err := Parse("link:3@100-200, link:4@0-50*0.5, router:2@10-20, drain:1@5-15, dropout@0-600", d, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Events()); got != 5 {
		t.Fatalf("events = %d, want 5", got)
	}
	v := s.ViewAt(150)
	if !v.LinkDown(3) {
		t.Fatal("link 3 should be down at t=150")
	}
	if v.LinkFactor(4) != 1 {
		t.Fatal("link 4 degradation should have expired by t=150")
	}
	v = s.ViewAt(25)
	if f := v.LinkFactor(4); f != 0.5 {
		t.Fatalf("link 4 factor = %v, want 0.5", f)
	}
	v = s.ViewAt(15)
	if !v.RouterDown(2) {
		t.Fatal("router 2 should be down at t=15")
	}
	for _, l := range d.Incident(2) {
		if !v.LinkDown(l) {
			t.Fatalf("incident link %d of down router should be dead", l)
		}
	}
	if !s.DropoutAt(300) || s.DropoutAt(700) {
		t.Fatal("dropout window [0,600) mislocated")
	}
	if !s.DropoutOverlaps(550, 650) {
		t.Fatal("overlap query missed the window edge")
	}
}

func TestParseErrors(t *testing.T) {
	d := smallTopo(t)
	for _, spec := range []string{
		"bogus",
		"links=-1",
		"links=x",
		"wat=3",
		"link:999999@0-10",
		"router:999999@0-10",
		"link:3@50-10",
		"link:3@0-10*1.5",
		"router:1@0-10*0.5",
		"dropout@nope",
	} {
		if _, err := Parse(spec, d, 86400, 1); err == nil {
			t.Errorf("spec %q: want error", spec)
		}
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	d := smallTopo(t)
	for _, spec := range []string{"", "  ", "none"} {
		s, err := Parse(spec, d, 86400, 1)
		if err != nil || s != nil {
			t.Fatalf("spec %q: got (%v, %v), want (nil, nil)", spec, s, err)
		}
	}
}

func TestNilScheduleQueries(t *testing.T) {
	var s *Schedule
	if !s.Empty() || s.Epoch(100) != 0 || s.DropoutAt(5) || s.DrainedNodes(0) != nil {
		t.Fatal("nil schedule must behave as fault-free")
	}
	if !s.ViewAt(0).Clean() {
		t.Fatal("nil schedule view must be clean")
	}
	if _, ok := s.FirstFailure([]topology.RouterID{1}, 0, 100); ok {
		t.Fatal("nil schedule has no failures")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := smallTopo(t)
	cfg := GenConfig{Horizon: 86400, LinkDown: 3, LinkDegraded: 2, RouterDown: 1, NodeDrain: 2, Dropouts: 4}
	a, err := Generate(d, cfg, rng.NewLabeled(9, "faults"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(d, cfg, rng.NewLabeled(9, "faults"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed must yield the same schedule")
	}
	if len(a.Events()) != 12 {
		t.Fatalf("events = %d, want 12", len(a.Events()))
	}
	for _, e := range a.Events() {
		if e.Start < 0 || e.End > cfg.Horizon+61 || e.Start >= e.End {
			t.Fatalf("event window out of horizon: %+v", e)
		}
	}
}

func TestEpochsPartitionTime(t *testing.T) {
	d := smallTopo(t)
	s, err := Parse("link:3@100-200,dropout@150-300", d, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	// boundaries 100, 150, 200, 300 → epochs change exactly there
	times := []float64{0, 99, 100, 149, 150, 199, 200, 299, 300, 1e6}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4}
	for i, tm := range times {
		if e := s.Epoch(tm); e != want[i] {
			t.Fatalf("Epoch(%g) = %d, want %d", tm, e, want[i])
		}
	}
}

func TestDrainedNodesAndFirstFailure(t *testing.T) {
	d := smallTopo(t)
	s, err := Parse("drain:2@100-200", d, 86400, 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := s.DrainedNodes(150)
	for _, n := range d.NodesOfRouter(2) {
		if !nodes[n] {
			t.Fatalf("node %d of drained router not reported", n)
		}
	}
	if s.DrainedNodes(250) != nil {
		t.Fatal("drain should have ended")
	}
	at, ok := s.FirstFailure([]topology.RouterID{2}, 0, 500)
	if !ok || at != 100 {
		t.Fatalf("FirstFailure = (%v, %v), want (100, true)", at, ok)
	}
	// job starting mid-drain is killed immediately
	at, ok = s.FirstFailure([]topology.RouterID{2}, 120, 500)
	if !ok || at != 120 {
		t.Fatalf("FirstFailure mid-drain = (%v, %v), want (120, true)", at, ok)
	}
	if _, ok := s.FirstFailure([]topology.RouterID{5}, 0, 500); ok {
		t.Fatal("unaffected router must not fail")
	}
	if _, ok := s.FirstFailure([]topology.RouterID{2}, 300, 500); ok {
		t.Fatal("window after drain must not fail")
	}
}
