package faults

import (
	"fmt"
	"strconv"
	"strings"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Parse builds a schedule from a compact spec string. The spec is a
// comma-separated list of clauses of two forms:
//
// Random clauses (counts drawn deterministically from the seed):
//
//	links=N      N random link-down events
//	degraded=N   N random degraded-bandwidth links
//	routers=N    N random router-down events
//	drains=N     N random node-drain events
//	dropouts=N   N random sampler-dropout windows
//	outage=SEC   mean outage duration for link/router/drain events
//	droplen=SEC  mean duration of dropout windows
//
// Explicit clauses (for scripted scenarios and tests):
//
//	link:ID@T0-T1        link ID down over [T0, T1) seconds
//	link:ID@T0-T1*F      link ID at capacity fraction F over [T0, T1)
//	router:ID@T0-T1      router ID down over [T0, T1)
//	drain:ID@T0-T1       router ID's nodes drained over [T0, T1)
//	dropout@T0-T1        sampler dropout over [T0, T1)
//
// Example: "links=3,dropouts=2" or "link:17@3600-7200*0.5,dropout@0-600".
// An empty spec yields a nil schedule (no faults). The horizon is the
// campaign length in seconds; random event windows are drawn inside it.
func Parse(spec string, topo *topology.Dragonfly, horizon float64, seed int64) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	gen := GenConfig{Horizon: horizon}
	var explicit []Event
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		switch {
		case strings.Contains(clause, "="):
			key, val, _ := strings.Cut(clause, "=")
			if err := parseRandomClause(&gen, key, val); err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
		case strings.Contains(clause, "@"):
			ev, err := parseExplicitClause(clause)
			if err != nil {
				return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
			}
			explicit = append(explicit, ev)
		default:
			return nil, fmt.Errorf("faults: clause %q: want key=N or kind:id@t0-t1", clause)
		}
	}
	sched, err := Generate(topo, gen, rng.NewLabeled(seed, "faults"))
	if err != nil {
		return nil, err
	}
	if len(explicit) > 0 {
		sched, err = New(topo, append(sched.Events(), explicit...))
		if err != nil {
			return nil, err
		}
	}
	sched.spec = spec
	return sched, nil
}

func parseRandomClause(gen *GenConfig, key, val string) error {
	switch key {
	case "outage", "droplen":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("want a positive duration in seconds, got %q", val)
		}
		if key == "outage" {
			gen.MeanOutage = f
		} else {
			gen.MeanDropout = f
		}
		return nil
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return fmt.Errorf("want a non-negative count, got %q", val)
	}
	switch key {
	case "links":
		gen.LinkDown = n
	case "degraded":
		gen.LinkDegraded = n
	case "routers":
		gen.RouterDown = n
	case "drains":
		gen.NodeDrain = n
	case "dropouts":
		gen.Dropouts = n
	default:
		return fmt.Errorf("unknown key %q (want links/degraded/routers/drains/dropouts/outage/droplen)", key)
	}
	return nil
}

func parseExplicitClause(clause string) (Event, error) {
	head, window, _ := strings.Cut(clause, "@")
	var ev Event
	var idStr string
	switch {
	case head == "dropout":
		ev.Kind = SamplerDropout
	case strings.HasPrefix(head, "link:"):
		ev.Kind = LinkDown
		idStr = head[len("link:"):]
	case strings.HasPrefix(head, "router:"):
		ev.Kind = RouterDown
		idStr = head[len("router:"):]
	case strings.HasPrefix(head, "drain:"):
		ev.Kind = NodeDrain
		idStr = head[len("drain:"):]
	default:
		return ev, fmt.Errorf("unknown fault %q (want link:/router:/drain:/dropout)", head)
	}
	if factorStr, ok := cutLast(&window, "*"); ok {
		if ev.Kind != LinkDown {
			return ev, fmt.Errorf("capacity factor only applies to link faults")
		}
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || !(f > 0 && f < 1) {
			return ev, fmt.Errorf("capacity factor must be in (0,1), got %q", factorStr)
		}
		ev.Kind = LinkDegraded
		ev.Factor = f
	}
	t0Str, t1Str, ok := strings.Cut(window, "-")
	if !ok {
		return ev, fmt.Errorf("want a time window T0-T1 after @, got %q", window)
	}
	t0, err0 := strconv.ParseFloat(t0Str, 64)
	t1, err1 := strconv.ParseFloat(t1Str, 64)
	if err0 != nil || err1 != nil || !(t0 < t1) || t0 < 0 {
		return ev, fmt.Errorf("bad time window %q (want 0 <= T0 < T1 in seconds)", window)
	}
	ev.Start, ev.End = t0, t1
	if idStr != "" {
		id, err := strconv.Atoi(idStr)
		if err != nil || id < 0 {
			return ev, fmt.Errorf("bad id %q", idStr)
		}
		if ev.Kind == LinkDown || ev.Kind == LinkDegraded {
			ev.Link = topology.LinkID(id)
		} else {
			ev.Router = topology.RouterID(id)
		}
	}
	return ev, nil
}

// cutLast splits s at the last occurrence of sep, keeping the prefix in *s
// and returning the suffix.
func cutLast(s *string, sep string) (string, bool) {
	i := strings.LastIndex(*s, sep)
	if i < 0 {
		return "", false
	}
	suffix := (*s)[i+len(sep):]
	*s = (*s)[:i]
	return suffix, true
}
