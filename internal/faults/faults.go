// Package faults models the imperfections of a production machine that the
// paper's Cori data silently contains: Aries links that are quiesced or run
// at degraded bandwidth, routers (whole blades) that go down, nodes drained
// by operations mid-job, and windows in which the counter samplers (AriesNCL
// or the LDMS feed, §III-C) drop samples. A Schedule is a deterministic,
// seeded list of such events over the campaign horizon; the simulator and
// the analysis stack query it to derate link capacities, reroute around
// failures, requeue killed jobs, and mark missing counter samples.
//
// Schedules are immutable after construction and all queries are read-only,
// so one schedule can be shared by every consumer of a campaign.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Kind enumerates the fault classes.
type Kind uint8

const (
	// LinkDown takes one link out of service entirely (quiesced by the
	// fabric manager, as on real Aries systems).
	LinkDown Kind = iota
	// LinkDegraded leaves a link up at a fraction of its bandwidth
	// (a failed lane group of the 3-lane Aries link).
	LinkDegraded
	// RouterDown takes a whole router down: every incident link is dead and
	// the attached nodes are lost (jobs on them are killed).
	RouterDown
	// NodeDrain drains the nodes of one router: running jobs are killed and
	// the nodes are unallocatable for the duration.
	NodeDrain
	// SamplerDropout is a window during which counter samplers deliver no
	// data; observations taken inside it are missing, not zero.
	SamplerDropout
)

// String returns a short label for the fault kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkDegraded:
		return "link-degraded"
	case RouterDown:
		return "router-down"
	case NodeDrain:
		return "node-drain"
	case SamplerDropout:
		return "sampler-dropout"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one fault with a lifetime [Start, End) in campaign seconds.
type Event struct {
	Kind       Kind
	Start, End float64
	Link       topology.LinkID   // LinkDown, LinkDegraded
	Router     topology.RouterID // RouterDown, NodeDrain
	// Factor is the remaining capacity fraction of a degraded link,
	// in (0, 1).
	Factor float64
}

// String renders the event the way the spec grammar writes it.
func (e Event) String() string {
	switch e.Kind {
	case LinkDown:
		return fmt.Sprintf("link:%d@%g-%g", e.Link, e.Start, e.End)
	case LinkDegraded:
		return fmt.Sprintf("link:%d@%g-%g*%g", e.Link, e.Start, e.End, e.Factor)
	case RouterDown:
		return fmt.Sprintf("router:%d@%g-%g", e.Router, e.Start, e.End)
	case NodeDrain:
		return fmt.Sprintf("drain:%d@%g-%g", e.Router, e.Start, e.End)
	case SamplerDropout:
		return fmt.Sprintf("dropout@%g-%g", e.Start, e.End)
	default:
		return fmt.Sprintf("event(%d)", uint8(e.Kind))
	}
}

// Schedule is an immutable, validated fault schedule over one machine.
type Schedule struct {
	topo   *topology.Dragonfly
	events []Event
	// boundaries are the sorted distinct event start/end times; the fault
	// state of the machine is constant between consecutive boundaries, which
	// is what lets consumers cache per-epoch derived state (path caches,
	// capacity vectors).
	boundaries []float64
	spec       string
}

// New validates the events against the machine and builds a schedule.
func New(topo *topology.Dragonfly, events []Event) (*Schedule, error) {
	nr := topo.Cfg.NumRouters()
	nl := len(topo.Links)
	for i, e := range events {
		if !(e.Start < e.End) {
			return nil, fmt.Errorf("faults: event %d (%s): empty lifetime [%g, %g)", i, e.Kind, e.Start, e.End)
		}
		switch e.Kind {
		case LinkDown, LinkDegraded:
			if e.Link < 0 || int(e.Link) >= nl {
				return nil, fmt.Errorf("faults: event %d: link %d out of range [0,%d)", i, e.Link, nl)
			}
			if e.Kind == LinkDegraded && !(e.Factor > 0 && e.Factor < 1) {
				return nil, fmt.Errorf("faults: event %d: degraded factor %g outside (0,1)", i, e.Factor)
			}
		case RouterDown, NodeDrain:
			if e.Router < 0 || int(e.Router) >= nr {
				return nil, fmt.Errorf("faults: event %d: router %d out of range [0,%d)", i, e.Router, nr)
			}
		case SamplerDropout:
			// no target to validate
		default:
			return nil, fmt.Errorf("faults: event %d: unknown kind %d", i, uint8(e.Kind))
		}
	}
	s := &Schedule{topo: topo, events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Start < s.events[j].Start })
	set := map[float64]bool{}
	for _, e := range s.events {
		set[e.Start] = true
		set[e.End] = true
	}
	for t := range set {
		s.boundaries = append(s.boundaries, t)
	}
	sort.Float64s(s.boundaries)
	return s, nil
}

// Events returns the validated events in start order. The returned slice
// must not be modified.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// Empty reports whether the schedule injects nothing. Nil-safe.
func (s *Schedule) Empty() bool { return s == nil || len(s.events) == 0 }

// Spec returns the spec string the schedule was parsed from (empty for
// schedules built directly from events).
func (s *Schedule) Spec() string {
	if s == nil {
		return ""
	}
	return s.spec
}

// Epoch returns the index of the constant-fault-state interval containing
// time t. Consumers compare epochs to know when cached routing/capacity
// state must be rebuilt. Nil-safe: a nil schedule is always epoch 0.
func (s *Schedule) Epoch(t float64) int {
	if s == nil {
		return 0
	}
	return sort.Search(len(s.boundaries), func(i int) bool { return s.boundaries[i] > t })
}

// View is the machine's fault state at one instant: per-link capacity
// factors (router-down events are expanded onto their incident links),
// down routers, and whether a sampler dropout is active. A View stays valid
// until the schedule's next epoch boundary.
type View struct {
	linkFactor map[topology.LinkID]float64
	routerDown map[topology.RouterID]bool
	dropout    bool
}

// ViewAt computes the fault state at time t. Nil-safe: a nil schedule
// yields a clean view.
func (s *Schedule) ViewAt(t float64) View {
	var v View
	if s == nil {
		return v
	}
	for _, e := range s.events {
		if t < e.Start || t >= e.End {
			continue
		}
		switch e.Kind {
		case LinkDown:
			v.setLinkFactor(e.Link, 0)
		case LinkDegraded:
			v.setLinkFactor(e.Link, e.Factor)
		case RouterDown:
			if v.routerDown == nil {
				v.routerDown = map[topology.RouterID]bool{}
			}
			v.routerDown[e.Router] = true
			for _, l := range s.topo.Incident(e.Router) {
				v.setLinkFactor(l, 0)
			}
		case SamplerDropout:
			v.dropout = true
		}
	}
	return v
}

// setLinkFactor records the most severe factor seen for a link.
func (v *View) setLinkFactor(l topology.LinkID, f float64) {
	if v.linkFactor == nil {
		v.linkFactor = map[topology.LinkID]float64{}
	}
	if cur, ok := v.linkFactor[l]; !ok || f < cur {
		v.linkFactor[l] = f
	}
}

// LinkFactor returns the remaining capacity fraction of a link: 1 when
// healthy, 0 when down.
func (v View) LinkFactor(l topology.LinkID) float64 {
	if f, ok := v.linkFactor[l]; ok {
		return f
	}
	return 1
}

// LinkDown reports whether the link is out of service.
func (v View) LinkDown(l topology.LinkID) bool { return v.LinkFactor(l) <= 0 }

// RouterDown reports whether the router is down.
func (v View) RouterDown(r topology.RouterID) bool { return v.routerDown[r] }

// Dropout reports whether a sampler dropout window is active.
func (v View) Dropout() bool { return v.dropout }

// Clean reports whether the view carries no degradation at all.
func (v View) Clean() bool {
	return len(v.linkFactor) == 0 && len(v.routerDown) == 0 && !v.dropout
}

// DropoutAt reports whether a sampler dropout window covers time t.
// Nil-safe.
func (s *Schedule) DropoutAt(t float64) bool { return s.DropoutOverlaps(t, t) }

// DropoutOverlaps reports whether any dropout window intersects [t0, t1]
// (a per-step sampler read is lost when any part of the step falls inside a
// dropout window). Nil-safe.
func (s *Schedule) DropoutOverlaps(t0, t1 float64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.events {
		if e.Kind == SamplerDropout && e.Start <= t1 && e.End > t0 {
			return true
		}
	}
	return false
}

// DrainedNodes returns the nodes unallocatable at time t because their
// router is drained or down. Nil-safe: returns nil for a clean instant.
func (s *Schedule) DrainedNodes(t float64) map[topology.NodeID]bool {
	if s == nil {
		return nil
	}
	var out map[topology.NodeID]bool
	for _, e := range s.events {
		if (e.Kind != NodeDrain && e.Kind != RouterDown) || t < e.Start || t >= e.End {
			continue
		}
		if out == nil {
			out = map[topology.NodeID]bool{}
		}
		for _, n := range s.topo.NodesOfRouter(e.Router) {
			out[n] = true
		}
	}
	return out
}

// FirstFailure returns the earliest time in (t0, t1) at which a drain or
// router-down event begins on any of the given routers — the moment a job
// running on them is killed. Events already active at t0 report t0.
// Nil-safe.
func (s *Schedule) FirstFailure(routers []topology.RouterID, t0, t1 float64) (float64, bool) {
	if s == nil || len(routers) == 0 {
		return 0, false
	}
	hit := math.Inf(1)
	for _, e := range s.events {
		if e.Kind != NodeDrain && e.Kind != RouterDown {
			continue
		}
		if e.End <= t0 || e.Start >= t1 {
			continue
		}
		affected := false
		for _, r := range routers {
			if r == e.Router {
				affected = true
				break
			}
		}
		if !affected {
			continue
		}
		at := e.Start
		if at < t0 {
			at = t0
		}
		if at < hit {
			hit = at
		}
	}
	if math.IsInf(hit, 1) {
		return 0, false
	}
	return hit, true
}

// Summary counts events by kind, for logs and reports.
func (s *Schedule) Summary() string {
	if s.Empty() {
		return "no faults"
	}
	var n [5]int
	for _, e := range s.events {
		n[e.Kind]++
	}
	parts := make([]string, 0, 5)
	for k := Kind(0); k <= SamplerDropout; k++ {
		if n[k] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n[k], k))
		}
	}
	return strings.Join(parts, ", ")
}

// GenConfig parameterizes random schedule generation. Counts are event
// counts over the horizon; zero means none of that kind.
type GenConfig struct {
	Horizon      float64 // campaign length in seconds
	LinkDown     int
	LinkDegraded int
	RouterDown   int
	NodeDrain    int
	Dropouts     int
	// MeanOutage is the mean duration of link/router/drain events
	// (exponential); default 6 hours.
	MeanOutage float64
	// MeanDropout is the mean duration of sampler dropout windows
	// (exponential); default 10 minutes.
	MeanDropout float64
}

// Generate draws a random schedule from the stream. The draw order is
// fixed, so a given (seed, config, machine) always yields the same
// schedule.
func Generate(topo *topology.Dragonfly, cfg GenConfig, s *rng.Stream) (*Schedule, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("faults: non-positive horizon %g", cfg.Horizon)
	}
	if cfg.MeanOutage <= 0 {
		cfg.MeanOutage = 6 * 3600
	}
	if cfg.MeanDropout <= 0 {
		cfg.MeanDropout = 600
	}
	var events []Event
	window := func(mean float64) (float64, float64) {
		start := s.Uniform(0, cfg.Horizon)
		dur := s.Exp(mean)
		if dur < 60 {
			dur = 60
		}
		end := start + dur
		if end > cfg.Horizon {
			end = cfg.Horizon
		}
		if end <= start {
			// event drawn at the very end of the horizon; give it a minute
			end = start + 60
		}
		return start, end
	}
	for i := 0; i < cfg.LinkDown; i++ {
		t0, t1 := window(cfg.MeanOutage)
		events = append(events, Event{Kind: LinkDown, Start: t0, End: t1,
			Link: topology.LinkID(s.Intn(len(topo.Links)))})
	}
	for i := 0; i < cfg.LinkDegraded; i++ {
		t0, t1 := window(cfg.MeanOutage)
		events = append(events, Event{Kind: LinkDegraded, Start: t0, End: t1,
			Link: topology.LinkID(s.Intn(len(topo.Links))), Factor: s.Uniform(0.25, 0.75)})
	}
	for i := 0; i < cfg.RouterDown; i++ {
		t0, t1 := window(cfg.MeanOutage)
		events = append(events, Event{Kind: RouterDown, Start: t0, End: t1,
			Router: topology.RouterID(s.Intn(topo.Cfg.NumRouters()))})
	}
	for i := 0; i < cfg.NodeDrain; i++ {
		t0, t1 := window(cfg.MeanOutage)
		events = append(events, Event{Kind: NodeDrain, Start: t0, End: t1,
			Router: topology.RouterID(s.Intn(topo.Cfg.NumRouters()))})
	}
	for i := 0; i < cfg.Dropouts; i++ {
		t0, t1 := window(cfg.MeanDropout)
		events = append(events, Event{Kind: SamplerDropout, Start: t0, End: t1})
	}
	return New(topo, events)
}
