package engine

import (
	"context"
	"math/rand"
	"time"
)

// Backoff computes capped exponential retry delays with optional jitter.
// The zero value is usable and gives 100ms · 2^attempt capped at 30s with
// no jitter. Backoff carries no state: Delay is a pure function of the
// attempt number (plus the process-global jitter source when Jitter > 0),
// so one value can be shared by any number of goroutines.
//
// Jitter exists for the distributed layer (internal/dist): it decorrelates
// retry storms when many workers lose the coordinator at once. It affects
// only when work happens, never what is computed — the repository's
// determinism contract is about output bytes, and retry timing is not
// output.
type Backoff struct {
	Base   time.Duration // first delay; default 100ms
	Max    time.Duration // delay cap; default 30s
	Factor float64       // per-attempt growth; default 2
	Jitter float64       // fraction of each delay drawn uniformly at random; 0 = deterministic
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 30 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// Delay returns the delay before retry number attempt (attempt 0 is the
// first retry). The exponential part is min(Base·Factor^attempt, Max);
// with Jitter j, the result is scaled by a uniform draw from [1-j, 1+j]
// and re-capped at Max.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rand.Float64()-1)
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Sleep blocks for Delay(attempt) or until ctx is cancelled, returning
// ctx.Err() in the latter case — the building block of every retry loop in
// the distributed layer.
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SleepFor is Sleep with an explicit duration — used when a server names
// its own retry delay (a Retry-After header) that should override the
// exponential schedule.
func SleepFor(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
