// Package engine is the deterministic parallel execution core shared by
// the campaign simulator, the ML cross-validation loops, and the experiment
// suite. Every hot path in the reproduction is embarrassingly parallel —
// ~1200 independent instrumented runs, k-fold CV, per-dataset figure
// regeneration — and they all run through the same primitives:
//
//   - a bounded worker pool with context cancellation (Map),
//   - ordered result merge (MapOrdered): results land in shard order no
//     matter which worker finished first, so floating-point reductions are
//     identical at every worker count,
//   - per-shard splittable RNG streams (MapSeeded/Shards, reusing
//     internal/rng): each shard derives its stream from the root seed and
//     its own index, never from execution order,
//   - first-error propagation: the first failing shard cancels the rest,
//     and the reported error is the one with the lowest shard index so
//     error output is reproducible too.
//
// The contract every caller relies on (and the tests enforce): for a pure
// per-shard function, workers=1 and workers=N produce byte-identical
// results. Parallelism changes wall-clock time, never output.
package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
)

// EnvWorkers is the environment variable consulted when the caller does not
// pin a worker count. The CLIs' -workers flag overrides it.
const EnvWorkers = "DRAGONVAR_WORKERS"

// Workers resolves a requested worker count: n when positive, otherwise
// $DRAGONVAR_WORKERS when set to a positive integer, otherwise GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if v := os.Getenv(EnvWorkers); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k > 0 {
			return k
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, worker, shard) for every shard in [0, n) on a bounded
// pool. worker identifies the executing goroutine in [0, Workers(workers)),
// so callers can reuse expensive per-worker state (a worker processes its
// shards strictly sequentially). Shards are handed out dynamically for load
// balance; a correct fn must therefore not depend on which worker runs
// which shard.
//
// The first shard error cancels the context passed to the remaining shards
// and Map returns the non-cancellation error with the lowest shard index
// (so the reported failure does not depend on scheduling). When the parent
// context is cancelled, Map drains quickly and returns ctx.Err().
func Map(ctx context.Context, workers, n int, fn func(ctx context.Context, worker, shard int) error) error {
	return MapBatch(ctx, workers, n, 1, fn)
}

// Batch suggests a contiguous batch size for n shards on w workers: large
// enough to amortize the per-shard handout when shards are tiny, small
// enough (~8 claims per worker) that dynamic load balance still works.
func Batch(n, workers int) int {
	workers = Workers(workers)
	b := n / (workers * 8)
	if b < 1 {
		b = 1
	}
	if b > 32 {
		b = 32
	}
	return b
}

// MapBatch is Map with contiguous batch handout: each atomic claim hands a
// worker `batch` consecutive shards, which it runs in index order before
// claiming again. Batching amortizes handout overhead for very small shards
// without changing results — a correct fn depends only on its shard index,
// so Map(workers, n, fn) and MapBatch(workers, n, b, fn) are equivalent for
// every b ≥ 1. batch ≤ 1 behaves exactly like Map.
func MapBatch(ctx context.Context, workers, n, batch int, fn func(ctx context.Context, worker, shard int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if batch < 1 {
		batch = 1
	}
	workers = Workers(workers)
	if claims := (n + batch - 1) / batch; workers > claims {
		workers = claims
	}
	// Telemetry is observation-only: the wrapped fn runs identically, the
	// handles are no-ops when disabled, and nothing below reads a metric.
	if telemetry.Enabled() {
		mapStart := time.Now()
		telemetry.C(telemetry.MEngineMaps).Inc()
		telemetry.C(telemetry.MEngineShards).Add(int64(n))
		telemetry.G(telemetry.GEngineWorkers).Set(float64(workers))
		shardWait := telemetry.H(telemetry.MEngineShardWait, telemetry.SecondsBuckets)
		shardRun := telemetry.H(telemetry.MEngineShardRun, telemetry.SecondsBuckets)
		defer telemetry.H(telemetry.MEngineMapSeconds, telemetry.SecondsBuckets).ObserveSince(mapStart)
		inner := fn
		fn = func(ctx context.Context, worker, shard int) error {
			pickup := time.Now()
			shardWait.Observe(pickup.Sub(mapStart).Seconds())
			err := inner(ctx, worker, shard)
			shardRun.ObserveSince(pickup)
			return err
		}
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				end := int(next.Add(int64(batch)))
				start := end - batch
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if err := cctx.Err(); err != nil {
						errs[i] = err
						continue // keep draining so the shard range stays covered
					}
					if err := fn(cctx, w, i); err != nil {
						errs[i] = err
						cancel()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err // parent cancellation wins over per-shard noise
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapOrdered runs fn over [0, n) on a bounded pool and returns the results
// in shard order — the parallel equivalent of appending inside a serial
// loop. On error the partial slice is returned alongside it (shards that
// never ran hold the zero value).
func MapOrdered[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, shard int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Map(ctx, workers, n, func(ctx context.Context, _, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// Shards derives n independent RNG streams from root: shard i gets
// root.Split("label-i"). Splitting depends only on the root's seed material
// and the label (never on how much of the parent was consumed), so the
// streams are identical at every worker count and shard order.
func Shards(root *rng.Stream, label string, n int) []*rng.Stream {
	out := make([]*rng.Stream, n)
	for i := range out {
		out[i] = root.Split(fmt.Sprintf("%s-%d", label, i))
	}
	return out
}

// MapSeeded is Map with a per-shard stream derived as in Shards. The shard
// function owns its stream exclusively; the root is only read.
func MapSeeded(ctx context.Context, workers, n int, root *rng.Stream, label string, fn func(ctx context.Context, shard int, s *rng.Stream) error) error {
	return Map(ctx, workers, n, func(ctx context.Context, _, i int) error {
		return fn(ctx, i, root.Split(fmt.Sprintf("%s-%d", label, i)))
	})
}
