package engine

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	if got := b.Delay(-3); got != 100*time.Millisecond {
		t.Errorf("Delay(-3) = %v, want Base", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.Delay(0); got != 100*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v, want 100ms", got)
	}
	if got := b.Delay(1000); got != 30*time.Second {
		t.Errorf("zero-value Delay(1000) = %v, want 30s cap", got)
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := b.Delay(0)
		if d < 500*time.Millisecond || d > 1500*time.Millisecond {
			t.Fatalf("jittered Delay(0) = %v outside [0.5s, 1.5s]", d)
		}
	}
	// jitter never exceeds the cap
	for i := 0; i < 200; i++ {
		if d := b.Delay(50); d > time.Minute {
			t.Fatalf("jittered delay %v exceeds Max", d)
		}
	}
}

func TestBackoffSleepHonorsCancel(t *testing.T) {
	b := Backoff{Base: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}

func TestSleepFor(t *testing.T) {
	if err := SleepFor(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("SleepFor: %v", err)
	}
	// non-positive duration returns immediately with the context state
	if err := SleepFor(context.Background(), 0); err != nil {
		t.Fatalf("SleepFor(0): %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepFor(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("SleepFor on cancelled ctx = %v, want Canceled", err)
	}
}
