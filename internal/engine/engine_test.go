package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dragonvar/internal/rng"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d, want 3", got)
	}
	t.Setenv(EnvWorkers, "7")
	if got := Workers(0); got != 7 {
		t.Fatalf("Workers(0) with %s=7 = %d, want 7", EnvWorkers, got)
	}
	if got := Workers(2); got != 2 {
		t.Fatalf("explicit count must beat the environment: got %d, want 2", got)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("garbage %s should fall back to GOMAXPROCS: got %d", EnvWorkers, got)
	}
	t.Setenv(EnvWorkers, "-4")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("non-positive %s should fall back to GOMAXPROCS: got %d", EnvWorkers, got)
	}
}

func TestMapCoversEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		const n = 100
		visits := make([]atomic.Int32, n)
		err := Map(context.Background(), workers, n, func(_ context.Context, _, i int) error {
			visits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if v := visits[i].Load(); v != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, v)
			}
		}
	}
}

func TestMapBatchCoversEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 4, 32} {
		for _, batch := range []int{0, 1, 3, 7, 100, 1000} {
			const n = 100
			visits := make([]atomic.Int32, n)
			err := MapBatch(context.Background(), workers, n, batch, func(_ context.Context, _, i int) error {
				visits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			for i := range visits {
				if v := visits[i].Load(); v != 1 {
					t.Fatalf("workers=%d batch=%d: shard %d ran %d times", workers, batch, i, v)
				}
			}
		}
	}
}

func TestMapBatchReportsTheFailingShard(t *testing.T) {
	boom := errors.New("boom")
	err := MapBatch(context.Background(), 4, 50, 8, func(_ context.Context, _, i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the shard error", err)
	}
}

func TestBatchSuggestion(t *testing.T) {
	if got := Batch(1, 4); got != 1 {
		t.Fatalf("Batch(1,4) = %d, want 1", got)
	}
	if got := Batch(1200, 4); got < 1 || got > 32 {
		t.Fatalf("Batch(1200,4) = %d, want within [1,32]", got)
	}
	if got := Batch(100000, 1); got != 32 {
		t.Fatalf("Batch(100000,1) = %d, want capped at 32", got)
	}
}

func TestMapWorkerIDsBoundedAndSequential(t *testing.T) {
	const workers, n = 4, 64
	var running [workers]atomic.Int32
	err := Map(context.Background(), workers, n, func(_ context.Context, w, _ int) error {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of [0,%d)", w, workers)
		}
		if running[w].Add(1) != 1 {
			t.Errorf("worker %d ran two shards concurrently", w)
		}
		time.Sleep(time.Millisecond)
		running[w].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapReportsTheFailingShard(t *testing.T) {
	sentinel := errors.New("shard 4 exploded")
	for _, workers := range []int{1, 8} {
		err := Map(context.Background(), workers, 20, func(_ context.Context, _, i int) error {
			if i == 4 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: got %v, want the shard error", workers, err)
		}
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	err := Map(context.Background(), 1, 10, func(_ context.Context, _, i int) error {
		ran.Add(1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("serial map ran %d shards after an error at shard 3, want 4", ran.Load())
	}
}

func TestMapParentCancellationWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	errc := make(chan error, 1)
	go func() {
		errc <- Map(ctx, 4, 50, func(ctx context.Context, _, _ int) error {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
			}
			return ctx.Err()
		})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Map did not drain after parent cancellation")
	}
}

func TestMapOrderedResultsLandInShardOrder(t *testing.T) {
	const n = 40
	for _, workers := range []int{1, 8} {
		out, err := MapOrdered(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			// later shards finish first, so unordered collection would scramble
			time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// drain reads k values from a stream.
func drain(s *rng.Stream, k int) []float64 {
	out := make([]float64, k)
	for i := range out {
		out[i] = s.Float64()
	}
	return out
}

func TestShardsIndependentOfParentConsumption(t *testing.T) {
	a := rng.New(99)
	sa := Shards(a, "work", 4)

	b := rng.New(99)
	drain(b, 1000) // consuming the parent must not shift the derived streams
	sb := Shards(b, "work", 4)

	for i := range sa {
		x, y := drain(sa[i], 16), drain(sb[i], 16)
		for k := range x {
			if x[k] != y[k] {
				t.Fatalf("shard %d stream diverged at draw %d", i, k)
			}
		}
	}
}

func TestMapSeededIdenticalAtEveryWorkerCount(t *testing.T) {
	const n = 24
	run := func(workers int) []float64 {
		out := make([]float64, n)
		err := MapSeeded(context.Background(), workers, n, rng.New(7), "shard",
			func(_ context.Context, i int, s *rng.Stream) error {
				v := 0.0
				for k := 0; k < 100; k++ {
					v += s.Float64()
				}
				out[i] = v
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: shard %d = %v, serial %v", workers, i, got[i], serial[i])
			}
		}
	}
}
