// Package linreg implements ridge (L2-regularized) linear regression via
// the normal equations, solved with Cholesky decomposition. It is the
// baseline comparator for the boosted deviation models: related work
// (Groves et al., CLUSTER'17) correlated Aries counters with performance
// using simple linear regression, and the ablation benchmarks quantify how
// much the nonlinear model of §IV-B buys over that.
package linreg

import (
	"fmt"
	"math"

	"dragonvar/internal/linalg"
)

// Model is a fitted linear model y ≈ x·w + b. Features are standardized
// internally, so the regularization treats all columns equally.
type Model struct {
	weights []float64
	bias    float64

	mu, sigma []float64 // feature standardization
}

// Options configures the fit.
type Options struct {
	// Lambda is the L2 penalty; default 1e-3.
	Lambda float64
}

// Fit solves min ||y - Xw - b||² + λ||w||² on the rows of x listed in idx
// (all rows when idx is nil).
func Fit(x *linalg.Matrix, y []float64, idx []int, opt Options) (*Model, error) {
	if opt.Lambda <= 0 {
		opt.Lambda = 1e-3
	}
	if idx == nil {
		idx = make([]int, x.Rows)
		for i := range idx {
			idx[i] = i
		}
	}
	n := len(idx)
	if n == 0 {
		return nil, fmt.Errorf("linreg: no training rows")
	}
	h := x.Cols

	m := &Model{
		weights: make([]float64, h),
		mu:      make([]float64, h),
		sigma:   make([]float64, h),
	}
	// standardization statistics
	for _, i := range idx {
		row := x.Row(i)
		for j, v := range row {
			m.mu[j] += v
		}
	}
	for j := range m.mu {
		m.mu[j] /= float64(n)
	}
	for _, i := range idx {
		row := x.Row(i)
		for j, v := range row {
			d := v - m.mu[j]
			m.sigma[j] += d * d
		}
	}
	for j := range m.sigma {
		m.sigma[j] = math.Sqrt(m.sigma[j] / float64(n))
		if m.sigma[j] == 0 {
			m.sigma[j] = 1
		}
	}
	var yMean float64
	for _, i := range idx {
		yMean += y[i]
	}
	yMean /= float64(n)

	// normal equations on standardized, centered data: (ZᵀZ + λI) w = Zᵀy
	ata := linalg.NewMatrix(h, h)
	atb := make([]float64, h)
	z := make([]float64, h)
	for _, i := range idx {
		row := x.Row(i)
		for j, v := range row {
			z[j] = (v - m.mu[j]) / m.sigma[j]
		}
		yc := y[i] - yMean
		for a := 0; a < h; a++ {
			za := z[a]
			if za == 0 {
				continue
			}
			atb[a] += za * yc
			arow := ata.Row(a)
			for b := 0; b < h; b++ {
				arow[b] += za * z[b]
			}
		}
	}
	for a := 0; a < h; a++ {
		ata.Set(a, a, ata.At(a, a)+opt.Lambda*float64(n))
	}

	w, err := choleskySolve(ata, atb)
	if err != nil {
		return nil, err
	}
	m.weights = w
	m.bias = yMean
	return m, nil
}

// Predict returns the model's prediction for one feature row.
func (m *Model) Predict(row []float64) float64 {
	out := m.bias
	for j, v := range row {
		out += m.weights[j] * (v - m.mu[j]) / m.sigma[j]
	}
	return out
}

// PredictRows returns predictions for the rows of x listed in idx (all
// rows when idx is nil).
func (m *Model) PredictRows(x *linalg.Matrix, idx []int) []float64 {
	if idx == nil {
		idx = make([]int, x.Rows)
		for i := range idx {
			idx[i] = i
		}
	}
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = m.Predict(x.Row(i))
	}
	return out
}

// Coefficients returns the standardized-space weights; their magnitudes
// are comparable across features. The slice aliases model storage.
func (m *Model) Coefficients() []float64 { return m.weights }

// choleskySolve solves the symmetric positive-definite system A x = b.
func choleskySolve(a *linalg.Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linreg: bad system shape")
	}
	// decompose A = L Lᵀ in place into l (lower triangular)
	l := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linreg: matrix not positive definite at %d (pivot %g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// forward solve L z = b
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * z[k]
		}
		z[i] = sum / l.At(i, i)
	}
	// back solve Lᵀ x = z
	xout := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * xout[k]
		}
		xout[i] = sum / l.At(i, i)
	}
	return xout, nil
}
