package linreg

import (
	"math"
	"testing"
	"testing/quick"

	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
)

func linearData(n int, noise float64, s *rng.Stream) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, s.Float64()*10)
		}
		y[i] = 2*x.At(i, 0) - 3*x.At(i, 1) + 7 + noise*s.NormFloat64()
	}
	return x, y
}

func TestRecoversLinearRelation(t *testing.T) {
	s := rng.New(1)
	x, y := linearData(500, 0.01, s)
	m, err := Fit(x, y, nil, Options{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		if math.Abs(m.Predict(x.Row(i))-y[i]) > 0.2 {
			t.Fatalf("row %d: pred %v, want %v", i, m.Predict(x.Row(i)), y[i])
		}
	}
}

func TestCoefficientsReflectImportance(t *testing.T) {
	s := rng.New(2)
	x, y := linearData(500, 0.01, s)
	m, err := Fit(x, y, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Coefficients()
	// features 0 and 1 drive y; feature 2 is noise
	if math.Abs(c[2]) > math.Abs(c[0])/5 || math.Abs(c[2]) > math.Abs(c[1])/5 {
		t.Fatalf("irrelevant feature got large coefficient: %v", c)
	}
	// signs: +2 and -3 (standardized, same input scale → comparable)
	if c[0] <= 0 || c[1] >= 0 {
		t.Fatalf("coefficient signs wrong: %v", c)
	}
}

func TestRidgeShrinks(t *testing.T) {
	s := rng.New(3)
	x, y := linearData(100, 0.5, s)
	weak, err := Fit(x, y, nil, Options{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	strong, err := Fit(x, y, nil, Options{Lambda: 100})
	if err != nil {
		t.Fatal(err)
	}
	if linalg.Norm2(strong.Coefficients()) >= linalg.Norm2(weak.Coefficients()) {
		t.Fatal("stronger penalty should shrink coefficients")
	}
}

func TestTrainSubset(t *testing.T) {
	s := rng.New(4)
	x, y := linearData(200, 0.1, s)
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	m, err := Fit(x, y, idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// held-out half still fits
	var sse float64
	for i := 100; i < 200; i++ {
		d := m.Predict(x.Row(i)) - y[i]
		sse += d * d
	}
	if sse/100 > 1.0 {
		t.Fatalf("held-out MSE = %v", sse/100)
	}
	if _, err := Fit(x, y, []int{}, Options{}); err == nil {
		t.Fatal("empty training set should error")
	}
}

func TestConstantFeature(t *testing.T) {
	s := rng.New(5)
	x := linalg.NewMatrix(50, 2)
	y := make([]float64, 50)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, s.Float64())
		x.Set(i, 1, 3) // constant column: sigma guard must prevent div0
		y[i] = 5 * x.At(i, 0)
	}
	m, err := Fit(x, y, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{0.5, 3})
	if math.IsNaN(p) || math.Abs(p-2.5) > 0.3 {
		t.Fatalf("prediction = %v", p)
	}
}

func TestPredictRows(t *testing.T) {
	s := rng.New(6)
	x, y := linearData(60, 0.01, s)
	m, err := Fit(x, y, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := m.PredictRows(x, nil)
	if len(all) != 60 {
		t.Fatalf("len = %d", len(all))
	}
	some := m.PredictRows(x, []int{5, 10})
	if some[0] != all[5] || some[1] != all[10] {
		t.Fatal("subset predictions disagree")
	}
}

func TestCholeskySolveIdentity(t *testing.T) {
	f := func(raw [3]float64) bool {
		// A = I, so x must equal b
		a := linalg.NewMatrix(3, 3)
		for i := 0; i < 3; i++ {
			a.Set(i, i, 1)
		}
		b := make([]float64, 3)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			b[i] = math.Mod(v, 1e6)
		}
		x, err := choleskySolve(a, b)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(x[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := linalg.FromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := choleskySolve(a, []float64{1, 1}); err == nil {
		t.Fatal("zero matrix should be rejected")
	}
	bad := linalg.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := choleskySolve(bad, []float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix should be rejected")
	}
}

func TestCholeskySolveRandomSPD(t *testing.T) {
	s := rng.New(7)
	// A = MᵀM + I is SPD; check A x = b residual
	for trial := 0; trial < 20; trial++ {
		n := 4
		mrand := linalg.NewMatrix(n, n)
		for i := range mrand.Data {
			mrand.Data[i] = s.NormFloat64()
		}
		a := linalg.MatMul(mrand.T(), mrand, nil)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = s.NormFloat64()
		}
		x, err := choleskySolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r := a.MatVec(x, nil)
		for i := range b {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				t.Fatalf("residual %v at %d", r[i]-b[i], i)
			}
		}
	}
}
