// Package monitor is the streaming network-weather analytics engine: it
// consumes per-router counter samples — live from the campaign driver's
// per-round deltas, or offline by replaying a DFLDMS log — and maintains
// single-pass windowed state over them: Welford online mean/variance per
// series, per-group congestion rollups (stall-ratio from RT_RB_STL over
// RT_FLIT_TOT), EWMA-based anomaly detection emitting structured JSONL
// events (hot router, congestion onset/clear, sampler gap), and a
// per-group × time congestion heatmap.
//
// This is the monitoring half of the paper's measurement stack: LDMS gave
// Cori a 1 Hz system-wide counter feed (§III-C), and the follow-up
// longitudinal-analytics work turns such feeds into queryable aggregates.
// cluster.RecordLDMS produces the feed; this package watches it.
//
// # Observation-only contract
//
// Like internal/telemetry, the monitor NEVER feeds back into simulation:
// it only reads counter deltas the simulation already produced, so a
// monitored campaign is byte-identical to an unmonitored one (enforced by
// TestCampaignIdenticalWithMonitor in internal/cluster). All exported
// methods are safe for concurrent use; the campaign's serial merge phase
// calls ObserveRound from one goroutine at a time, but the lock makes the
// monitor safe under any calling discipline.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
)

// Event types emitted to the JSONL stream.
const (
	EventHotRouter       = "hot_router"       // a router's smoothed flit rate crossed HotZ cross-sectional std devs
	EventHotRouterClear  = "hot_router_clear" // a hot router dropped back below HotZ/2
	EventCongestionOnset = "congestion_onset" // a group's smoothed stall ratio crossed StallOnset
	EventCongestionClear = "congestion_clear" // a congested group dropped back below StallClear
	EventSamplerGap      = "sampler_gap"      // a run of missing samples (or a timestamp jump) closed
	EventModelDrift      = "model_drift"      // rolling live forecast MAPE breached the drift threshold (emitted by the daemon via Emit)
)

// Event is one structured anomaly record. Router and Group are -1 when not
// applicable (router 0 and group 0 are real locations, so absence needs an
// explicit sentinel rather than omitempty).
type Event struct {
	T          float64 `json:"t"`    // simulated time of emission (seconds)
	Type       string  `json:"type"` // one of the Event* constants
	Router     int     `json:"router"`
	Group      int     `json:"group"`
	FlitRate   float64 `json:"flit_rate,omitempty"`   // smoothed flits/s (hot-router events)
	Z          float64 `json:"z,omitempty"`           // cross-sectional z-score (hot-router events)
	StallRatio float64 `json:"stall_ratio,omitempty"` // smoothed stall ratio (congestion events)
	GapStart   float64 `json:"gap_start,omitempty"`   // first missing timestamp (gap events)
	GapEnd     float64 `json:"gap_end,omitempty"`     // last missing timestamp (gap events)
	Missed     int     `json:"missed,omitempty"`      // samples lost in the gap
	LiveMAPE   float64 `json:"live_mape,omitempty"`   // rolling forecast MAPE on live windows (drift events)
	TrainMAPE  float64 `json:"train_mape,omitempty"`  // training-time MAPE of the serving model (drift events)
	Source     string  `json:"source,omitempty"`      // Config.Source tag ("campaign", "replay", …)
}

// Config parameterizes a Monitor. The zero value is not usable: NumRouters
// is required; every other field has a sensible default applied by New.
type Config struct {
	NumRouters      int // required: routers in the machine
	SeriesPerRouter int // counter series per router (default 4, cluster.LDMSSeriesPerRouter)
	RoutersPerGroup int // dragonfly group size for rollups (default: all routers in one group)

	FlitSeries int // series index of the flit-total counter within a router's block (default 0)
	// StallSeries is the series index of the stall-cycle counter. 0 means
	// the default, 1 (the LDMS layout); a monitor whose stall counter truly
	// sits at index 0 must put the flit counter elsewhere.
	StallSeries int

	// Interval is the expected sampling interval in seconds; 0 infers it
	// from the first observed dt. Only used for time-jump gap detection.
	Interval float64
	// DetectTimeGaps infers sampler gaps from timestamp jumps larger than
	// GapFactor×Interval. Enable only for time-ordered streams (offline
	// replay); campaign rounds interleave runs out of order.
	DetectTimeGaps bool
	GapFactor      float64 // default 2.5

	EWMAAlpha     float64 // smoothing factor for rate/ratio EWMAs (default 0.3)
	HotZ          float64 // hot-router onset threshold in cross-sectional std devs (default 3)
	HotMinSamples int     // warm-up samples before hot detection may fire (default 8)
	StallOnset    float64 // group congestion onset threshold on smoothed stall ratio (default 0.25)
	StallClear    float64 // clear threshold (default StallOnset/2)

	HeatmapBin float64 // heatmap time-bin width in seconds (default 900)

	// Events receives one JSON object per line as anomalies are detected;
	// nil discards them (aggregates are still maintained).
	Events io.Writer
	// Source tags every emitted event (e.g. "campaign", "replay").
	Source string
}

// heatCell accumulates one group's stall ratio within one time bin.
type heatCell struct {
	sum float64
	n   int
}

// gapState tracks an open run of missing samples.
type gapState struct {
	open   bool
	start  float64
	last   float64
	missed int
}

// Monitor is the streaming analytics engine. Create with New; feed with
// ObserveRound/ObserveMissing; close with Finish.
type Monitor struct {
	cfg       Config
	numGroups int

	mu sync.Mutex

	// Per-series Welford accumulators over rates (router-major layout, same
	// as the sample rows: series s of router r is index r*SeriesPerRouter+s).
	series []stats.Welford

	// Hot-router detection state.
	flitEWMA []float64 // smoothed flits/s per router
	seen     []int     // observations per router (warm-up gating)
	hot      []bool

	// Group congestion state.
	groupEWMA  []float64 // smoothed stall ratio per group
	congested  []bool
	groupStall []float64 // lifetime Δstall sums per group (for the report)
	groupFlit  []float64 // lifetime Δflit sums per group

	heat map[int64][]heatCell // time bin → per-group cells

	gap      gapState
	lastT    float64
	interval float64 // resolved sampling interval (cfg.Interval or inferred)

	samples    int // healthy observations
	missing    int // missing-sample observations
	eventCount map[string]int
	encodeErr  error // first Events-writer failure, surfaced by Finish

	// Telemetry handles, captured at construction (nil-safe no-ops when
	// telemetry is disabled).
	tmSamples   *telemetry.Counter
	tmEvents    *telemetry.Counter
	tmHot       *telemetry.Gauge
	tmCongested *telemetry.Gauge
	tmMaxStall  *telemetry.Gauge
	tmGapFrac   *telemetry.Gauge
	tmLastT     *telemetry.Gauge
}

// New validates cfg, applies defaults, and returns a ready Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.NumRouters <= 0 {
		return nil, fmt.Errorf("monitor: NumRouters must be positive, got %d", cfg.NumRouters)
	}
	if cfg.SeriesPerRouter == 0 {
		cfg.SeriesPerRouter = 4
	}
	if cfg.SeriesPerRouter < 0 {
		return nil, fmt.Errorf("monitor: negative SeriesPerRouter %d", cfg.SeriesPerRouter)
	}
	if cfg.RoutersPerGroup <= 0 {
		cfg.RoutersPerGroup = cfg.NumRouters
	}
	if cfg.FlitSeries < 0 || cfg.FlitSeries >= cfg.SeriesPerRouter {
		return nil, fmt.Errorf("monitor: FlitSeries %d out of range [0, %d)", cfg.FlitSeries, cfg.SeriesPerRouter)
	}
	if cfg.StallSeries == 0 && cfg.SeriesPerRouter > 1 {
		cfg.StallSeries = 1 // the LDMS layout: RT_FLIT_TOT at 0, RT_RB_STL at 1
	}
	if cfg.StallSeries < 0 || cfg.StallSeries >= cfg.SeriesPerRouter {
		return nil, fmt.Errorf("monitor: StallSeries %d out of range [0, %d)", cfg.StallSeries, cfg.SeriesPerRouter)
	}
	if cfg.GapFactor <= 0 {
		cfg.GapFactor = 2.5
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 0.3
	}
	if cfg.HotZ <= 0 {
		cfg.HotZ = 3
	}
	if cfg.HotMinSamples <= 0 {
		cfg.HotMinSamples = 8
	}
	if cfg.StallOnset <= 0 {
		cfg.StallOnset = 0.25
	}
	if cfg.StallClear <= 0 {
		cfg.StallClear = cfg.StallOnset / 2
	}
	if cfg.HeatmapBin <= 0 {
		cfg.HeatmapBin = 900
	}
	ng := (cfg.NumRouters + cfg.RoutersPerGroup - 1) / cfg.RoutersPerGroup
	m := &Monitor{
		cfg:        cfg,
		numGroups:  ng,
		series:     make([]stats.Welford, cfg.NumRouters*cfg.SeriesPerRouter),
		flitEWMA:   make([]float64, cfg.NumRouters),
		seen:       make([]int, cfg.NumRouters),
		hot:        make([]bool, cfg.NumRouters),
		groupEWMA:  make([]float64, ng),
		congested:  make([]bool, ng),
		groupStall: make([]float64, ng),
		groupFlit:  make([]float64, ng),
		heat:       map[int64][]heatCell{},
		interval:   cfg.Interval,
		eventCount: map[string]int{},

		tmSamples:   telemetry.C(telemetry.MMonitorSamples),
		tmEvents:    telemetry.C(telemetry.MMonitorEvents),
		tmHot:       telemetry.G(telemetry.GMonitorHot),
		tmCongested: telemetry.G(telemetry.GMonitorCongested),
		tmMaxStall:  telemetry.G(telemetry.GMonitorMaxStall),
		tmGapFrac:   telemetry.G(telemetry.GMonitorGapFrac),
		tmLastT:     telemetry.G(telemetry.GMonitorLastT),
	}
	return m, nil
}

// NumGroups returns the number of rollup groups.
func (m *Monitor) NumGroups() int { return m.numGroups }

// ObserveRound feeds one healthy observation: deltas holds the per-router
// counter increases over the last dt seconds, router-major (series s of
// router r at index r*SeriesPerRouter+s), the layout counters.Board.DeltaInto
// produces. len(deltas) must be NumRouters×SeriesPerRouter and dt positive;
// violations are programmer errors and panic.
func (m *Monitor) ObserveRound(t, dt float64, deltas []float64) {
	spr := m.cfg.SeriesPerRouter
	if len(deltas) != m.cfg.NumRouters*spr {
		panic(fmt.Sprintf("monitor: ObserveRound with %d deltas, want %d", len(deltas), m.cfg.NumRouters*spr))
	}
	if dt <= 0 {
		panic(fmt.Sprintf("monitor: ObserveRound with non-positive dt %v", dt))
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	if m.interval <= 0 {
		m.interval = dt
	}
	// Timestamp-jump gap inference (ordered streams only): a forward jump
	// well beyond the sampling interval means samples were never written.
	// A gap already opened by explicit missing markers covers the same span,
	// so skip inference then — closeGapLocked below reports it once.
	if m.cfg.DetectTimeGaps && !m.gap.open && m.samples > 0 && m.interval > 0 {
		jump := t - m.lastT
		if jump > m.cfg.GapFactor*m.interval {
			missed := int(jump/m.interval) - 1
			if missed < 1 {
				missed = 1
			}
			m.emitLocked(Event{
				T: t, Type: EventSamplerGap, Router: -1, Group: -1,
				GapStart: m.lastT + m.interval, GapEnd: t - m.interval, Missed: missed,
			})
		}
	}
	// A healthy sample closes any explicit-marker gap.
	m.closeGapLocked(t)

	alpha := m.cfg.EWMAAlpha
	// Pass 1: per-series stats and per-router flit-rate EWMAs, with a
	// cross-sectional Welford over the updated EWMAs for the z-scores.
	var cross stats.Welford
	for r := 0; r < m.cfg.NumRouters; r++ {
		base := r * spr
		for s := 0; s < spr; s++ {
			m.series[base+s].Add(deltas[base+s] / dt)
		}
		rate := deltas[base+m.cfg.FlitSeries] / dt
		if m.seen[r] == 0 {
			m.flitEWMA[r] = rate
		} else {
			m.flitEWMA[r] += alpha * (rate - m.flitEWMA[r])
		}
		m.seen[r]++
		cross.Add(m.flitEWMA[r])
	}
	// Pass 2: hot-router hysteresis against the cross-sectional spread.
	if std := cross.Std(); std > 0 {
		mean := cross.Mean()
		for r := 0; r < m.cfg.NumRouters; r++ {
			if m.seen[r] < m.cfg.HotMinSamples {
				continue
			}
			z := (m.flitEWMA[r] - mean) / std
			switch {
			case !m.hot[r] && z >= m.cfg.HotZ:
				m.hot[r] = true
				m.emitLocked(Event{T: t, Type: EventHotRouter, Router: r, Group: r / m.cfg.RoutersPerGroup,
					FlitRate: m.flitEWMA[r], Z: z})
			case m.hot[r] && z < m.cfg.HotZ/2:
				m.hot[r] = false
				m.emitLocked(Event{T: t, Type: EventHotRouterClear, Router: r, Group: r / m.cfg.RoutersPerGroup,
					FlitRate: m.flitEWMA[r], Z: z})
			}
		}
	}
	// Pass 3: group stall-ratio rollups, congestion hysteresis, heatmap.
	bin := int64(math.Floor(t / m.cfg.HeatmapBin))
	cells, ok := m.heat[bin]
	if !ok {
		cells = make([]heatCell, m.numGroups)
		m.heat[bin] = cells
	}
	maxStall := 0.0
	for g := 0; g < m.numGroups; g++ {
		r0 := g * m.cfg.RoutersPerGroup
		r1 := r0 + m.cfg.RoutersPerGroup
		if r1 > m.cfg.NumRouters {
			r1 = m.cfg.NumRouters
		}
		var stall, flit float64
		for r := r0; r < r1; r++ {
			base := r * spr
			stall += deltas[base+m.cfg.StallSeries]
			flit += deltas[base+m.cfg.FlitSeries]
		}
		m.groupStall[g] += stall
		m.groupFlit[g] += flit
		ratio := 0.0
		if flit > 0 {
			ratio = stall / flit
		}
		cells[g].sum += ratio
		cells[g].n++
		if m.samples == 0 {
			m.groupEWMA[g] = ratio
		} else {
			m.groupEWMA[g] += alpha * (ratio - m.groupEWMA[g])
		}
		if m.groupEWMA[g] > maxStall {
			maxStall = m.groupEWMA[g]
		}
		switch {
		case !m.congested[g] && m.groupEWMA[g] >= m.cfg.StallOnset:
			m.congested[g] = true
			m.emitLocked(Event{T: t, Type: EventCongestionOnset, Router: -1, Group: g, StallRatio: m.groupEWMA[g]})
		case m.congested[g] && m.groupEWMA[g] <= m.cfg.StallClear:
			m.congested[g] = false
			m.emitLocked(Event{T: t, Type: EventCongestionClear, Router: -1, Group: g, StallRatio: m.groupEWMA[g]})
		}
	}

	m.samples++
	m.lastT = t
	m.tmSamples.Inc()
	m.tmLastT.Set(t)
	m.tmHot.Set(float64(countTrue(m.hot)))
	m.tmCongested.Set(float64(countTrue(m.congested)))
	m.tmMaxStall.Set(maxStall)
	m.tmGapFrac.Set(m.gapFractionLocked())
}

// ObserveMissing feeds one explicit missing-sample marker at time t (the
// samplers were in a dropout window). Consecutive markers coalesce into a
// single sampler_gap event, emitted when a healthy sample arrives or at
// Finish.
func (m *Monitor) ObserveMissing(t float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.gap.open {
		m.gap = gapState{open: true, start: t, last: t, missed: 1}
	} else {
		m.gap.last = t
		m.gap.missed++
	}
	m.missing++
	m.tmGapFrac.Set(m.gapFractionLocked())
}

// closeGapLocked emits the pending sampler_gap event, if any. Callers hold mu.
func (m *Monitor) closeGapLocked(t float64) {
	if !m.gap.open {
		return
	}
	m.emitLocked(Event{
		T: t, Type: EventSamplerGap, Router: -1, Group: -1,
		GapStart: m.gap.start, GapEnd: m.gap.last, Missed: m.gap.missed,
	})
	m.gap = gapState{}
}

// emitLocked counts and writes one event. Callers hold mu.
func (m *Monitor) emitLocked(ev Event) {
	ev.Source = m.cfg.Source
	m.eventCount[ev.Type]++
	m.tmEvents.Inc()
	if m.cfg.Events == nil || m.encodeErr != nil {
		return
	}
	blob, err := json.Marshal(ev)
	if err == nil {
		_, err = m.cfg.Events.Write(append(blob, '\n'))
	}
	if err != nil {
		m.encodeErr = fmt.Errorf("monitor: writing event: %w", err)
	}
}

// Emit writes an externally-detected event into the monitor's stream,
// counting it like any detector event. Callers outside this package (the
// retraining daemon's drift detector) use it so operator tooling sees one
// merged JSONL stream instead of a second file to tail. Router/Group
// should carry the -1 sentinel when not applicable.
func (m *Monitor) Emit(ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.emitLocked(ev)
}

// gapFractionLocked returns missing/(missing+healthy). Callers hold mu.
func (m *Monitor) gapFractionLocked() float64 {
	total := m.samples + m.missing
	if total == 0 {
		return 0
	}
	return float64(m.missing) / float64(total)
}

// Finish closes any open sampler gap and returns the first event-writer
// error, if any. The monitor remains usable afterwards (more observations
// simply reopen state), so live consumers may call it at checkpoints.
func (m *Monitor) Finish() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.gap.open {
		m.closeGapLocked(m.gap.last)
	}
	return m.encodeErr
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// Summary is a point-in-time aggregate view of the stream.
type Summary struct {
	Samples     int            // healthy observations
	Missing     int            // missing-sample markers
	GapFraction float64        // Missing / (Samples+Missing)
	FirstT      float64        // not meaningful before the first sample
	LastT       float64        // time of the most recent healthy sample
	HotRouters  int            // currently hot
	Congested   int            // currently congested groups
	Events      map[string]int // emitted events by type
}

// Summary returns current aggregates.
func (m *Monitor) Summary() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	ev := make(map[string]int, len(m.eventCount))
	for k, v := range m.eventCount {
		ev[k] = v
	}
	return Summary{
		Samples:     m.samples,
		Missing:     m.missing,
		GapFraction: m.gapFractionLocked(),
		LastT:       m.lastT,
		HotRouters:  countTrue(m.hot),
		Congested:   countTrue(m.congested),
		Events:      ev,
	}
}

// RouterStat summarizes one router's flit-rate series.
type RouterStat struct {
	Router   int
	MeanRate float64 // mean flits/s over the stream
	StdRate  float64
	Hot      bool // currently hot
}

// TopRouters returns the k routers with the highest mean flit rate,
// descending (ties broken by router id for determinism).
func (m *Monitor) TopRouters(k int) []RouterStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RouterStat, m.cfg.NumRouters)
	for r := range out {
		w := &m.series[r*m.cfg.SeriesPerRouter+m.cfg.FlitSeries]
		out[r] = RouterStat{Router: r, MeanRate: w.Mean(), StdRate: w.Std(), Hot: m.hot[r]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanRate != out[j].MeanRate {
			return out[i].MeanRate > out[j].MeanRate
		}
		return out[i].Router < out[j].Router
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// GroupStat summarizes one group's congestion over the stream.
type GroupStat struct {
	Group      int
	StallRatio float64 // lifetime Δstall / Δflit
	EWMA       float64 // current smoothed ratio
	Congested  bool
}

// GroupReport returns per-group congestion rollups in group order.
func (m *Monitor) GroupReport() []GroupStat {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]GroupStat, m.numGroups)
	for g := range out {
		ratio := 0.0
		if m.groupFlit[g] > 0 {
			ratio = m.groupStall[g] / m.groupFlit[g]
		}
		out[g] = GroupStat{Group: g, StallRatio: ratio, EWMA: m.groupEWMA[g], Congested: m.congested[g]}
	}
	return out
}

// HeatmapData returns the per-group × time congestion matrix: row labels
// (one per group), bin start times, and vals[group][bin] = mean stall ratio
// in that bin (NaN where the bin holds no samples). Bins are contiguous
// from the first to the last observed bin.
func (m *Monitor) HeatmapData() (rows []string, xs []float64, vals [][]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.heat) == 0 {
		return nil, nil, nil
	}
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for b := range m.heat {
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	nb := int(hi - lo + 1)
	xs = make([]float64, nb)
	for i := range xs {
		xs[i] = float64(lo+int64(i)) * m.cfg.HeatmapBin
	}
	rows = make([]string, m.numGroups)
	vals = make([][]float64, m.numGroups)
	for g := range rows {
		rows[g] = fmt.Sprintf("g%d", g)
		vals[g] = make([]float64, nb)
		for i := range vals[g] {
			vals[g][i] = math.NaN()
		}
	}
	for b, cells := range m.heat {
		i := int(b - lo)
		for g, c := range cells {
			if c.n > 0 {
				vals[g][i] = c.sum / float64(c.n)
			}
		}
	}
	return rows, xs, vals
}

// Report renders a human-readable summary: stream totals, event counts, the
// top-k routers by mean flit rate, and per-group congestion.
func (m *Monitor) Report(k int) string {
	s := m.Summary()
	var b strings.Builder
	fmt.Fprintf(&b, "network-weather monitor")
	if m.cfg.Source != "" {
		fmt.Fprintf(&b, " (%s)", m.cfg.Source)
	}
	fmt.Fprintf(&b, "\n  samples: %d healthy, %d missing (gap fraction %.4f)\n",
		s.Samples, s.Missing, s.GapFraction)
	if len(s.Events) > 0 {
		types := make([]string, 0, len(s.Events))
		for t := range s.Events {
			types = append(types, t)
		}
		sort.Strings(types)
		b.WriteString("  events:")
		for _, t := range types {
			fmt.Fprintf(&b, " %s=%d", t, s.Events[t])
		}
		b.WriteByte('\n')
	} else {
		b.WriteString("  events: none\n")
	}
	if s.Samples == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "  top %d routers by mean flit rate:\n", k)
	for _, rs := range m.TopRouters(k) {
		mark := ""
		if rs.Hot {
			mark = "  [HOT]"
		}
		fmt.Fprintf(&b, "    r%-5d mean=%.1f flits/s  std=%.1f%s\n", rs.Router, rs.MeanRate, rs.StdRate, mark)
	}
	b.WriteString("  group congestion (lifetime stall ratio):\n")
	for _, gs := range m.GroupReport() {
		mark := ""
		if gs.Congested {
			mark = "  [CONGESTED]"
		}
		fmt.Fprintf(&b, "    g%-4d ratio=%.4f  ewma=%.4f%s\n", gs.Group, gs.StallRatio, gs.EWMA, mark)
	}
	return b.String()
}
