package monitor

import (
	"math"
	"testing"
)

func TestStallFeedbackEWMA(t *testing.T) {
	f := NewStallFeedback(2, 0.5)
	f.Accumulate(0, 50, 100)
	f.Accumulate(0, 10, 100) // same group twice in one round: deltas add
	f.Accumulate(1, 0, 100)
	f.Commit()
	if got := f.Ratio(0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("first round sets the EWMA directly: got %v, want 0.3", got)
	}
	if f.Ratio(1) != 0 {
		t.Fatalf("unstalled group ratio = %v", f.Ratio(1))
	}
	f.Accumulate(0, 100, 100)
	f.Commit()
	// ewma = 0.3 + 0.5*(1.0-0.3) = 0.65
	if got := f.Ratio(0); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("EWMA update: got %v, want 0.65", got)
	}
	// a zero-flit round reads as ratio 0, decaying the EWMA
	f.Commit()
	if got := f.Ratio(0); math.Abs(got-0.325) > 1e-12 {
		t.Fatalf("zero-flit round: got %v, want 0.325", got)
	}
	f.Reset()
	if f.Ratio(0) != 0 || f.Ratio(1) != 0 {
		t.Fatal("Reset left state behind")
	}
	f.Accumulate(0, 30, 100)
	f.Commit()
	if got := f.Ratio(0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("post-Reset round must set directly again: got %v, want 0.3", got)
	}
}

func TestStallFeedbackDefaultAlpha(t *testing.T) {
	f := NewStallFeedback(1, 0)
	f.Accumulate(0, 100, 100)
	f.Commit()
	f.Accumulate(0, 0, 100)
	f.Commit()
	// default alpha 0.3: 1.0 + 0.3*(0-1.0) = 0.7
	if got := f.Ratio(0); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("default alpha: got %v, want 0.7", got)
	}
}

func TestCrossSectionHot(t *testing.T) {
	if hot := CrossSectionHot([]float64{1, 1, 1, 1}, 2); hot != nil {
		t.Fatalf("no spread should flag nothing, got %v", hot)
	}
	if hot := CrossSectionHot([]float64{1, 2}, 0.1); hot != nil {
		t.Fatalf("tiny populations should flag nothing, got %v", hot)
	}
	vals := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 10}
	hot := CrossSectionHot(vals, 2)
	if len(hot) != 1 || hot[0] != 9 {
		t.Fatalf("outlier detection: got %v, want [9]", hot)
	}
}
