package monitor

import "dragonvar/internal/stats"

// StallFeedback is the deterministic, single-owner sibling of the
// Monitor's per-group congestion rollup: the same per-round stall-ratio
// EWMA (Δstall / Δflit per group, smoothed with the monitor's default
// alpha), but fed by one simulator from its own counter deltas instead of
// by concurrently interleaved campaign rounds. That distinction is what
// lets the feedback routing policy read it mid-simulation without breaking
// the serial ≡ parallel byte-identity contract: a live shared Monitor sees
// rounds of different runs in a worker-dependent order, while a
// StallFeedback owned by one netsim.Network (and reset per run, next to
// its counter board) evolves identically no matter which worker simulates
// the run or what that worker simulated before.
//
// Usage per simulation round: Accumulate per-group stall and flit deltas
// while the round's counters are written, then Commit once at the end of
// the round to fold the round's ratios into the EWMAs. Ratio reads the
// smoothed value; Reset clears everything for the next run.
type StallFeedback struct {
	alpha float64
	ewma  []float64
	// round accumulators, cleared by Commit
	accStall []float64
	accFlit  []float64
	rounds   int
}

// NewStallFeedback returns a tracker over numGroups groups. alpha ≤ 0 uses
// the Monitor's default EWMA smoothing factor.
func NewStallFeedback(numGroups int, alpha float64) *StallFeedback {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3 // Monitor's default EWMAAlpha
	}
	return &StallFeedback{
		alpha:    alpha,
		ewma:     make([]float64, numGroups),
		accStall: make([]float64, numGroups),
		accFlit:  make([]float64, numGroups),
	}
}

// Accumulate adds one round's stall and flit deltas for group g.
func (f *StallFeedback) Accumulate(g int, stall, flit float64) {
	f.accStall[g] += stall
	f.accFlit[g] += flit
}

// Commit folds the accumulated round into the per-group EWMAs (the same
// update the Monitor applies per observed round) and clears the
// accumulators.
func (f *StallFeedback) Commit() {
	for g := range f.ewma {
		ratio := 0.0
		if f.accFlit[g] > 0 {
			ratio = f.accStall[g] / f.accFlit[g]
		}
		if f.rounds == 0 {
			f.ewma[g] = ratio
		} else {
			f.ewma[g] += f.alpha * (ratio - f.ewma[g])
		}
		f.accStall[g] = 0
		f.accFlit[g] = 0
	}
	f.rounds++
}

// Ratio returns the smoothed stall ratio of group g.
func (f *StallFeedback) Ratio(g int) float64 { return f.ewma[g] }

// Reset clears all state, returning the tracker to its initial condition.
// Simulators call this per run so a run's feedback trajectory depends only
// on the run itself.
func (f *StallFeedback) Reset() {
	for g := range f.ewma {
		f.ewma[g] = 0
		f.accStall[g] = 0
		f.accFlit[g] = 0
	}
	f.rounds = 0
}

// CrossSectionHot flags the indices whose value is a cross-sectional
// outlier: z = (v − mean) / std ≥ minZ over the population, the same
// detector ObserveRound applies to per-router flit-rate EWMAs when it
// flags hot routers. It is exported so the interference-aware placement
// policy (internal/cluster) can apply the monitor's hot-spot criterion to
// its deterministic expected-load view of the groups; like every
// cross-sectional z-score it returns nothing when the population has no
// spread.
func CrossSectionHot(values []float64, minZ float64) []int {
	var w stats.Welford
	for _, v := range values {
		w.Add(v)
	}
	std := w.Std()
	if std <= 0 || len(values) < 3 {
		return nil
	}
	mean := w.Mean()
	var hot []int
	for i, v := range values {
		if (v-mean)/std >= minZ {
			hot = append(hot, i)
		}
	}
	return hot
}
