package monitor

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// readRotation returns every line across the rotated sequence plus the
// active file, oldest first — the reader's view of the whole stream.
func readRotation(t *testing.T, path string) []string {
	t.Helper()
	var files []string
	for seq := 1; ; seq++ {
		p := fmt.Sprintf("%s.%d", path, seq)
		if _, err := os.Stat(p); err != nil {
			break
		}
		files = append(files, p)
	}
	files = append(files, path)
	var lines []string
	for _, p := range files {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) == 0 {
			continue
		}
		if raw[len(raw)-1] != '\n' {
			t.Fatalf("%s does not end in a newline: rotation split a line", p)
		}
		lines = append(lines, strings.Split(strings.TrimRight(string(raw), "\n"), "\n")...)
	}
	return lines
}

// TestRotationGapFree writes numbered lines through a tiny size bound and
// asserts every line lands exactly once, in order, none split across the
// rotation boundary.
func TestRotationGapFree(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := NewRotatingWriter(path, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		line := fmt.Sprintf(`{"seq":%03d,"pad":"xxxxxxxx"}`+"\n", i)
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	lines := readRotation(t, path)
	if len(lines) != n {
		t.Fatalf("got %d lines across rotation, want %d", len(lines), n)
	}
	for i, line := range lines {
		want := fmt.Sprintf(`{"seq":%03d,"pad":"xxxxxxxx"}`, i)
		if line != want {
			t.Fatalf("line %d = %q, want %q", i, line, want)
		}
	}
	// The bound actually rotated: more than one file exists.
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotation happened: %v", err)
	}
}

// TestRotationSequenceContinues restarts the writer and checks it appends
// new rotations after the existing ones instead of clobbering them.
func TestRotationSequenceContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	write := func(lo, hi int) {
		w, err := NewRotatingWriter(path, 48, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := lo; i < hi; i++ {
			if _, err := fmt.Fprintf(w, "line-%04d\n", i); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(0, 20)
	write(20, 40) // second process: must continue the .N sequence

	lines := readRotation(t, path)
	if len(lines) != 40 {
		t.Fatalf("got %d lines, want 40", len(lines))
	}
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("lines out of order across restart: %v", lines)
	}
	for i, line := range lines {
		if want := fmt.Sprintf("line-%04d", i); line != want {
			t.Fatalf("line %d = %q, want %q", i, line, want)
		}
	}
}

// TestRotationDisabled checks both bounds zero means plain append.
func TestRotationDisabled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := NewRotatingWriter(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := fmt.Fprintf(w, "line-%d\n", i); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("unbounded writer rotated: %v", err)
	}
	if lines := readRotation(t, path); len(lines) != 50 {
		t.Fatalf("got %d lines, want 50", len(lines))
	}
}

// TestMonitorEventsThroughRotation runs real monitor JSON events through
// a rotating writer and checks every event line survives whole.
func TestMonitorEventsThroughRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := NewRotatingWriter(path, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{NumRouters: 4, Events: w, Source: "test"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		m.Emit(Event{T: float64(i), Type: EventModelDrift, Router: -1, Group: -1,
			LiveMAPE: 0.5, TrainMAPE: 0.1})
	}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := readRotation(t, path)
	if len(lines) != 40 {
		t.Fatalf("got %d event lines, want 40", len(lines))
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is not a whole JSON object: %q", i, line)
		}
		if !strings.Contains(line, `"model_drift"`) {
			t.Fatalf("line %d missing drift type: %q", i, line)
		}
	}
}
