package monitor

import (
	"fmt"
	"os"
	"sync"
	"time"

	"dragonvar/internal/telemetry"
)

// RotatingWriter is an io.WriteCloser for endless JSONL event streams:
// when the active file exceeds MaxBytes or MaxAge it is rotated out by an
// atomic rename to <path>.<seq> and a fresh file opened at <path>. The
// monitor writes exactly one complete line per Write call, and rotation
// only ever happens between Write calls, so no line is ever split across
// files — the gap-free property the rotation test pins down.
//
// Rotated names count up from 1 (<path>.1 is the oldest). An existing
// rotation sequence in the directory is continued, so a restarted daemon
// never overwrites an earlier run's rotated files.
type RotatingWriter struct {
	path     string
	maxBytes int64
	maxAge   time.Duration

	mu     sync.Mutex
	f      *os.File
	size   int64
	opened time.Time
	seq    int // last rotated suffix in use
}

// NewRotatingWriter opens (appending to) path and rotates it when it
// exceeds maxBytes bytes or maxAge of wall-clock age. A zero maxBytes or
// maxAge disables that bound; both zero means the writer never rotates
// (plain append).
func NewRotatingWriter(path string, maxBytes int64, maxAge time.Duration) (*RotatingWriter, error) {
	w := &RotatingWriter{path: path, maxBytes: maxBytes, maxAge: maxAge}
	// Continue an existing rotation sequence rather than clobbering it.
	for {
		if _, err := os.Stat(w.rotatedPath(w.seq + 1)); err != nil {
			break
		}
		w.seq++
	}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *RotatingWriter) rotatedPath(seq int) string {
	return fmt.Sprintf("%s.%d", w.path, seq)
}

func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("monitor: rotate open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("monitor: rotate open: %w", err)
	}
	w.f = f
	w.size = st.Size()
	w.opened = time.Now()
	return nil
}

// shouldRotateLocked reports whether the next write of n bytes warrants a
// rotation first. Never rotates an empty file (a single over-long line
// still lands somewhere).
func (w *RotatingWriter) shouldRotateLocked(n int) bool {
	if w.size == 0 {
		return false
	}
	if w.maxBytes > 0 && w.size+int64(n) > w.maxBytes {
		return true
	}
	if w.maxAge > 0 && time.Since(w.opened) > w.maxAge {
		return true
	}
	return false
}

func (w *RotatingWriter) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("monitor: rotate close: %w", err)
	}
	w.seq++
	if err := os.Rename(w.path, w.rotatedPath(w.seq)); err != nil {
		return fmt.Errorf("monitor: rotate rename: %w", err)
	}
	telemetry.C(telemetry.MMonitorRotations).Add(1)
	return w.open()
}

// Write appends p to the active file, rotating first if the configured
// bounds are exceeded. The monitor hands complete lines to Write, so
// rotation boundaries always fall between lines.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("monitor: rotating writer is closed")
	}
	if w.shouldRotateLocked(len(p)) {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// Close closes the active file. Rotated files are already closed.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
