package monitor

import (
	"errors"
	"fmt"
	"io"

	"dragonvar/internal/traceio"
)

// ReplayStats reports what a Replay pass consumed.
type ReplayStats struct {
	Samples int     // healthy samples fed to the monitor
	Missing int     // missing-sample markers
	FirstT  float64 // timestamp of the first sample (healthy or missing)
	LastT   float64 // timestamp of the last sample
}

// Replay drains a DFLDMS log through the monitor: cumulative counter rows
// become deltas against the previous healthy sample (gaps of explicit
// missing markers are naturally bridged — the hardware kept counting, only
// the reads were lost, so the post-gap delta spread over the elapsed time
// is the best available rate estimate), and missing markers are forwarded
// as ObserveMissing. The log's series count must equal the monitor's
// NumRouters×SeriesPerRouter.
func Replay(rd *traceio.Reader, m *Monitor) (ReplayStats, error) {
	want := m.cfg.NumRouters * m.cfg.SeriesPerRouter
	if rd.NumSeries() != want {
		return ReplayStats{}, fmt.Errorf("monitor: log has %d series, monitor expects %d (%d routers × %d series)",
			rd.NumSeries(), want, m.cfg.NumRouters, m.cfg.SeriesPerRouter)
	}
	var st ReplayStats
	cur := make([]float64, want)
	prev := make([]float64, want)
	deltas := make([]float64, want)
	havePrev := false
	prevT := 0.0
	first := true
	for {
		t, row, err := rd.Next(cur)
		if errors.Is(err, io.EOF) {
			return st, m.Finish()
		}
		if err != nil {
			return st, err
		}
		if first {
			st.FirstT = t
			first = false
		}
		st.LastT = t
		if rd.Missing() {
			st.Missing++
			m.ObserveMissing(t)
			continue
		}
		if havePrev {
			dt := t - prevT
			if dt > 0 {
				for i := range deltas {
					deltas[i] = row[i] - prev[i]
				}
				m.ObserveRound(t, dt, deltas)
				st.Samples++
			}
		}
		copy(prev, row)
		prevT = t
		havePrev = true
	}
}
