package monitor

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dragonvar/internal/traceio"
)

// decodeEvents parses a JSONL buffer into events, failing on bad lines.
func decodeEvents(t *testing.T, buf *bytes.Buffer) []Event {
	t.Helper()
	var out []Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

func ofType(evs []Event, typ string) []Event {
	var out []Event
	for _, ev := range evs {
		if ev.Type == typ {
			out = append(out, ev)
		}
	}
	return out
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted zero NumRouters")
	}
	if _, err := New(Config{NumRouters: 4, SeriesPerRouter: 2, StallSeries: 2}); err == nil {
		t.Fatal("New accepted out-of-range StallSeries")
	}
	m, err := New(Config{NumRouters: 33, RoutersPerGroup: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3 (ceil 33/16)", m.NumGroups())
	}
}

func TestHotRouterDetection(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{NumRouters: 64, SeriesPerRouter: 4, RoutersPerGroup: 16, Events: &buf, Source: "test"}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg = m.cfg // defaults applied
	deltas := make([]float64, cfg.NumRouters*cfg.SeriesPerRouter)
	hotRouter := 5
	// Base rates carry a per-router spread (100+r flits/s) so the
	// cross-sectional std has a floor; a lone outlier over identical peers
	// would keep a scale-invariant z forever.
	feed := func(t0 float64, n int, hotRate float64) float64 {
		tt := t0
		for i := 0; i < n; i++ {
			for r := 0; r < cfg.NumRouters; r++ {
				rate := 100.0 + float64(r)
				if r == hotRouter && hotRate > 0 {
					rate = hotRate
				}
				deltas[r*cfg.SeriesPerRouter+cfg.FlitSeries] = rate
			}
			m.ObserveRound(tt, 1, deltas)
			tt++
		}
		return tt
	}
	tt := feed(0, 10, 0)     // warm-up: spread alone keeps every z below threshold
	tt = feed(tt, 10, 10000) // router 5 runs ~100× hotter
	_ = feed(tt, 40, 0)      // back to baseline: EWMA decays, clears
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	evs := decodeEvents(t, &buf)
	hots := ofType(evs, EventHotRouter)
	if len(hots) != 1 {
		t.Fatalf("got %d hot_router events, want 1: %+v", len(hots), evs)
	}
	if hots[0].Router != hotRouter || hots[0].Group != 0 {
		t.Errorf("hot event at router %d group %d, want router %d group 0", hots[0].Router, hots[0].Group, hotRouter)
	}
	if hots[0].Z < m.cfg.HotZ {
		t.Errorf("hot event z = %v below threshold %v", hots[0].Z, m.cfg.HotZ)
	}
	if hots[0].Source != "test" {
		t.Errorf("event source = %q, want %q", hots[0].Source, "test")
	}
	clears := ofType(evs, EventHotRouterClear)
	if len(clears) != 1 || clears[0].Router != hotRouter {
		t.Fatalf("got clear events %+v, want exactly one for router %d", clears, hotRouter)
	}
	if s := m.Summary(); s.HotRouters != 0 {
		t.Errorf("summary still reports %d hot routers after clear", s.HotRouters)
	}
}

func TestCongestionOnsetAndClear(t *testing.T) {
	var buf bytes.Buffer
	m, err := New(Config{NumRouters: 8, SeriesPerRouter: 4, RoutersPerGroup: 4, Events: &buf})
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.cfg
	// Group 0 stalls at ratio 0.5 (above onset 0.25); group 1 stays at 0.01.
	deltas := make([]float64, cfg.NumRouters*cfg.SeriesPerRouter)
	tt := 0.0
	feedRatio := func(n int, g0 float64) {
		for i := 0; i < n; i++ {
			for r := 0; r < cfg.NumRouters; r++ {
				base := r * cfg.SeriesPerRouter
				deltas[base+cfg.FlitSeries] = 1000
				ratio := 0.01
				if r < 4 {
					ratio = g0
				}
				deltas[base+cfg.StallSeries] = 1000 * ratio
			}
			m.ObserveRound(tt, 1, deltas)
			tt++
		}
	}
	feedRatio(5, 0.5)
	feedRatio(30, 0.001) // EWMA decays below clear threshold
	evs := decodeEvents(t, &buf)
	onsets := ofType(evs, EventCongestionOnset)
	if len(onsets) != 1 || onsets[0].Group != 0 {
		t.Fatalf("onsets = %+v, want exactly one for group 0", onsets)
	}
	if onsets[0].Router != -1 {
		t.Errorf("group event carries router %d, want -1", onsets[0].Router)
	}
	clears := ofType(evs, EventCongestionClear)
	if len(clears) != 1 || clears[0].Group != 0 {
		t.Fatalf("clears = %+v, want exactly one for group 0", clears)
	}
	gr := m.GroupReport()
	if len(gr) != 2 {
		t.Fatalf("GroupReport has %d groups, want 2", len(gr))
	}
	if gr[0].StallRatio <= gr[1].StallRatio {
		t.Errorf("group 0 lifetime ratio %v not above group 1's %v", gr[0].StallRatio, gr[1].StallRatio)
	}
}

func TestGapCoalescing(t *testing.T) {
	var buf bytes.Buffer
	m, err := New(Config{NumRouters: 2, SeriesPerRouter: 4, Events: &buf})
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]float64, 2*4)
	m.ObserveRound(1, 1, deltas)
	m.ObserveMissing(2)
	m.ObserveMissing(3)
	m.ObserveMissing(4)
	m.ObserveRound(5, 1, deltas) // closes the gap
	evs := ofType(decodeEvents(t, &buf), EventSamplerGap)
	if len(evs) != 1 {
		t.Fatalf("got %d sampler_gap events, want 1", len(evs))
	}
	g := evs[0]
	if g.GapStart != 2 || g.GapEnd != 4 || g.Missed != 3 {
		t.Errorf("gap = [%v, %v] missed %d, want [2, 4] missed 3", g.GapStart, g.GapEnd, g.Missed)
	}
	s := m.Summary()
	if s.Missing != 3 || s.Samples != 2 {
		t.Errorf("summary: %d missing / %d samples, want 3 / 2", s.Missing, s.Samples)
	}
	if want := 3.0 / 5.0; math.Abs(s.GapFraction-want) > 1e-12 {
		t.Errorf("gap fraction = %v, want %v", s.GapFraction, want)
	}

	// A gap still open at Finish is emitted then.
	buf.Reset()
	m.ObserveMissing(6)
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	evs = ofType(decodeEvents(t, &buf), EventSamplerGap)
	if len(evs) != 1 || evs[0].Missed != 1 {
		t.Fatalf("open gap at Finish: events = %+v, want one with missed=1", evs)
	}
}

func TestTimestampJumpGapDetection(t *testing.T) {
	var buf bytes.Buffer
	m, err := New(Config{NumRouters: 2, SeriesPerRouter: 4, DetectTimeGaps: true, Events: &buf})
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]float64, 2*4)
	m.ObserveRound(1, 1, deltas)
	m.ObserveRound(2, 1, deltas)
	m.ObserveRound(10, 1, deltas) // jump of 8 intervals
	evs := ofType(decodeEvents(t, &buf), EventSamplerGap)
	if len(evs) != 1 {
		t.Fatalf("got %d sampler_gap events, want 1", len(evs))
	}
	if evs[0].Missed != 7 {
		t.Errorf("inferred gap missed = %d, want 7", evs[0].Missed)
	}

	// Off by default: the same jump emits nothing.
	var buf2 bytes.Buffer
	m2, err := New(Config{NumRouters: 2, SeriesPerRouter: 4, Events: &buf2})
	if err != nil {
		t.Fatal(err)
	}
	m2.ObserveRound(1, 1, deltas)
	m2.ObserveRound(10, 1, deltas)
	if buf2.Len() != 0 {
		t.Errorf("DetectTimeGaps=false still emitted: %s", buf2.String())
	}
}

// TestExplicitGapNotDoubleCounted guards against a gap being reported twice
// on ordered streams: explicit missing markers AND the timestamp jump they
// cause both describe the same outage, which must yield ONE event.
func TestExplicitGapNotDoubleCounted(t *testing.T) {
	var buf bytes.Buffer
	m, err := New(Config{NumRouters: 2, SeriesPerRouter: 4, DetectTimeGaps: true, Events: &buf})
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]float64, 2*4)
	m.ObserveRound(1, 1, deltas)
	m.ObserveRound(2, 1, deltas)
	m.ObserveMissing(3)
	m.ObserveMissing(4)
	m.ObserveMissing(5)
	m.ObserveRound(6, 4, deltas) // healthy sample after the marked outage
	evs := ofType(decodeEvents(t, &buf), EventSamplerGap)
	if len(evs) != 1 {
		t.Fatalf("got %d sampler_gap events, want 1: %+v", len(evs), evs)
	}
	if evs[0].Missed != 3 {
		t.Errorf("gap missed = %d, want 3", evs[0].Missed)
	}
}

func TestSeriesStatsAndTopRouters(t *testing.T) {
	cfg := Config{NumRouters: 4, SeriesPerRouter: 2, FlitSeries: 0, StallSeries: 1}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Router r receives flit deltas 100·(r+1) per 2-second round → rate 50·(r+1).
	deltas := make([]float64, 4*2)
	for i := 0; i < 6; i++ {
		for r := 0; r < 4; r++ {
			deltas[r*2] = 100 * float64(r+1)
		}
		m.ObserveRound(float64(i)*2, 2, deltas)
	}
	top := m.TopRouters(2)
	if len(top) != 2 {
		t.Fatalf("TopRouters(2) returned %d entries", len(top))
	}
	if top[0].Router != 3 || top[1].Router != 2 {
		t.Errorf("top routers = %d, %d; want 3, 2", top[0].Router, top[1].Router)
	}
	if math.Abs(top[0].MeanRate-200) > 1e-9 {
		t.Errorf("router 3 mean rate = %v, want 200", top[0].MeanRate)
	}
	if top[0].StdRate != 0 {
		t.Errorf("constant-rate std = %v, want 0", top[0].StdRate)
	}
}

func TestHeatmapData(t *testing.T) {
	m, err := New(Config{NumRouters: 2, SeriesPerRouter: 2, FlitSeries: 0, StallSeries: 1,
		RoutersPerGroup: 1, HeatmapBin: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Router 0 ratio 0.5, router 1 ratio 0.1, samples at t = 0..29.
	deltas := []float64{1000, 500, 1000, 100}
	for i := 0; i < 30; i++ {
		m.ObserveRound(float64(i), 1, deltas)
	}
	rows, xs, vals := m.HeatmapData()
	if len(rows) != 2 || len(xs) != 3 {
		t.Fatalf("heatmap %d rows × %d bins, want 2 × 3", len(rows), len(xs))
	}
	if xs[0] != 0 || xs[1] != 10 || xs[2] != 20 {
		t.Errorf("bin starts = %v, want [0 10 20]", xs)
	}
	for _, v := range vals[0] {
		if math.Abs(v-0.5) > 1e-9 {
			t.Errorf("group 0 bin mean = %v, want 0.5", v)
		}
	}
	for _, v := range vals[1] {
		if math.Abs(v-0.1) > 1e-9 {
			t.Errorf("group 1 bin mean = %v, want 0.1", v)
		}
	}
}

func TestReplayRoundTrip(t *testing.T) {
	// Build a synthetic log: 3 routers × 2 series, cumulative counters
	// growing at known rates, with a dropout gap in the middle.
	const nr, spr = 3, 2
	var logBuf bytes.Buffer
	w, err := traceio.NewWriter(&logBuf, nr*spr)
	if err != nil {
		t.Fatal(err)
	}
	cum := make([]float64, nr*spr)
	tt := 0.0
	write := func(n int, missing bool) {
		for i := 0; i < n; i++ {
			tt += 1
			if missing {
				if err := w.WriteMissing(tt); err != nil {
					t.Fatal(err)
				}
				// hardware keeps counting through the dropout
				for r := 0; r < nr; r++ {
					cum[r*spr] += 1000 * float64(r+1)
					cum[r*spr+1] += 10
				}
				continue
			}
			for r := 0; r < nr; r++ {
				cum[r*spr] += 1000 * float64(r+1)
				cum[r*spr+1] += 10
			}
			if err := w.WriteSample(tt, cum); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(5, false)
	write(3, true)
	write(5, false)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rd, err := traceio.NewReader(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var events bytes.Buffer
	m, err := New(Config{NumRouters: nr, SeriesPerRouter: spr, Events: &events, Source: "replay"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Replay(rd, m)
	if err != nil {
		t.Fatal(err)
	}
	// 10 healthy rows, first is the delta baseline → 9 observations.
	if st.Samples != 9 || st.Missing != 3 {
		t.Fatalf("replay stats = %+v, want 9 samples / 3 missing", st)
	}
	if st.FirstT != 1 || st.LastT != 13 {
		t.Errorf("replay span [%v, %v], want [1, 13]", st.FirstT, st.LastT)
	}
	gaps := ofType(decodeEvents(t, &events), EventSamplerGap)
	if len(gaps) != 1 || gaps[0].Missed != 3 {
		t.Fatalf("gap events = %+v, want one with missed=3", gaps)
	}
	// Rates survive the gap: the post-gap delta spans the dropout, and the
	// counters kept growing at the same rate, so every observation is
	// 1000·(r+1) flits/s with zero variance.
	for i, rs := range m.TopRouters(nr) {
		wantRate := 1000 * float64(nr-i)
		if math.Abs(rs.MeanRate-wantRate) > 1e-9 || rs.StdRate > 1e-9 {
			t.Errorf("router %d mean=%v std=%v, want mean=%v std=0", rs.Router, rs.MeanRate, rs.StdRate, wantRate)
		}
	}
}

func TestReplaySeriesMismatch(t *testing.T) {
	var logBuf bytes.Buffer
	w, err := traceio.NewWriter(&logBuf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSample(1, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := traceio.NewReader(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{NumRouters: 3, SeriesPerRouter: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(rd, m); err == nil {
		t.Fatal("Replay accepted a log with the wrong series count")
	}
}

func TestReportRendering(t *testing.T) {
	m, err := New(Config{NumRouters: 4, SeriesPerRouter: 2, RoutersPerGroup: 2, Source: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	deltas := []float64{100, 50, 100, 5, 100, 5, 100, 5}
	for i := 0; i < 4; i++ {
		m.ObserveRound(float64(i), 1, deltas)
	}
	rep := m.Report(2)
	for _, want := range []string{"network-weather monitor (unit)", "4 healthy", "top 2 routers", "group congestion"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
