package routing

import (
	"fmt"
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// The split arithmetic exists in up to four tiers per policy — the generic
// SplitWeights, the arena SplitWeightsSlice, the hoisted SplitWeightsBulk,
// and (for inverse-cost policies) the formula the simulator inlines into
// its relaxation loop. They are required to be bit-identical; this property
// test drives all tiers over randomized candidate sets and load views and
// compares every weight with ==, not a tolerance.
func TestSplitVariantsBitIdentical(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	stall := func(g topology.GroupID) float64 { return 0.04 * float64(g+1) }
	cases := []struct {
		name string
		p    Policy
	}{
		{"minimal", mustPolicy(t, "minimal", PolicyConfig{})},
		{"valiant", mustPolicy(t, "valiant", PolicyConfig{})},
		{"adaptive", mustPolicy(t, "adaptive", PolicyConfig{})},
		{"adaptive-bias", mustPolicy(t, "adaptive", PolicyConfig{NonMinimalBias: 1.7})},
		{"feedback-nil", mustPolicy(t, "feedback", PolicyConfig{NonMinimalBias: 1.3})},
		{"feedback-stall", mustPolicy(t, "feedback", PolicyConfig{GroupStall: stall})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := rng.New(4242)
			load := make([]float64, len(d.Links))
			loadFn := func(l topology.LinkID) float64 { return load[l] }
			for trial := 0; trial < 25; trial++ {
				for i := range load {
					load[i] = s.Float64() * 5
				}
				var links []topology.LinkID
				var pathEnd, flowEnd []int32
				var minimal, active []bool
				var flowPaths [][]Path
				numFlows := 1 + s.Intn(5)
				for f := 0; f < numFlows; f++ {
					a := d.RouterAt(topology.GroupID(s.Intn(9)), s.Intn(4), s.Intn(6))
					b := d.RouterAt(topology.GroupID(s.Intn(9)), s.Intn(4), s.Intn(6))
					for b == a {
						b = d.RouterAt(topology.GroupID(s.Intn(9)), s.Intn(4), s.Intn(6))
					}
					paths := tc.p.Candidates(e, a, b, s.Split(fmt.Sprintf("pair-%d-%d", trial, f)))
					flowPaths = append(flowPaths, paths)
					for _, pa := range paths {
						links = append(links, pa.Links...)
						pathEnd = append(pathEnd, int32(len(links)))
						minimal = append(minimal, pa.Minimal)
					}
					flowEnd = append(flowEnd, int32(len(pathEnd)))
					active = append(active, s.Intn(4) > 0)
				}
				nPaths := len(pathEnd)

				// reference: the generic entry point, one flow at a time
				// (inactive flows keep zero weights in every tier)
				want := make([]float64, nPaths)
				ps := 0
				for fi, paths := range flowPaths {
					pe := int(flowEnd[fi])
					if active[fi] && pe > ps {
						tc.p.SplitWeights(e, paths, loadFn, want[ps:pe])
					}
					ps = pe
				}

				if ss, ok := tc.p.(SliceSplitter); ok {
					got := make([]float64, nPaths)
					ps, start := 0, int32(0)
					for fi := range flowPaths {
						pe := int(flowEnd[fi])
						if active[fi] && pe > ps {
							ss.SplitWeightsSlice(e, links, start, pathEnd[ps:pe], minimal[ps:pe], load, got[ps:pe])
						}
						if pe > ps {
							start = pathEnd[pe-1]
						}
						ps = pe
					}
					compareWeights(t, "slice", trial, want, got)
				}

				if bs, ok := tc.p.(BulkSplitter); ok {
					got := make([]float64, nPaths)
					bs.SplitWeightsBulk(e, links, pathEnd, flowEnd, minimal, active, load, got)
					compareWeights(t, "bulk", trial, want, got)
				}

				if ic, ok := tc.p.(InverseCostSplitter); ok {
					if bias, ok := ic.InverseCostBias(); ok {
						got := make([]float64, nPaths)
						ps, start := int32(0), int32(0)
						for fi := range flowPaths {
							pe := flowEnd[fi]
							fl := start
							if pe > ps {
								start = pathEnd[pe-1]
							}
							if !active[fi] || pe == ps {
								ps = pe
								continue
							}
							var total float64
							ls := fl
							for j := ps; j < pe; j++ {
								cost := 0.0
								for _, l := range links[ls:pathEnd[j]] {
									cost += 1 + load[l]
								}
								if !minimal[j] && bias != 1 {
									cost *= bias
								}
								w := 1 / (cost + 1e-9)
								got[j] = w
								total += w
								ls = pathEnd[j]
							}
							if total > 0 {
								inv := 1 / total
								for j := ps; j < pe; j++ {
									got[j] *= inv
								}
							}
							ps = pe
						}
						compareWeights(t, "inverse-cost-inline", trial, want, got)
					}
				}
			}
		})
	}
}

// TestInverseCostOptIn pins which configurations advertise the inlineable
// inverse-cost rule: adaptive always, feedback only without a stall signal.
func TestInverseCostOptIn(t *testing.T) {
	stall := func(topology.GroupID) float64 { return 0.1 }
	if _, ok := mustPolicy(t, "adaptive", PolicyConfig{}).(InverseCostSplitter); !ok {
		t.Fatal("adaptive must implement InverseCostSplitter")
	}
	p := mustPolicy(t, "adaptive", PolicyConfig{NonMinimalBias: 2})
	if bias, ok := p.(InverseCostSplitter).InverseCostBias(); !ok || bias != 2 {
		t.Fatalf("adaptive InverseCostBias = (%v, %v), want (2, true)", bias, ok)
	}
	fb := mustPolicy(t, "feedback", PolicyConfig{})
	if _, ok := fb.(InverseCostSplitter).InverseCostBias(); !ok {
		t.Fatal("feedback without a stall signal degrades to the inverse-cost rule")
	}
	fbs := mustPolicy(t, "feedback", PolicyConfig{GroupStall: stall})
	if _, ok := fbs.(InverseCostSplitter).InverseCostBias(); ok {
		t.Fatal("feedback with a live stall signal must opt out of the inline rule")
	}
}

// TestBulkSplitAllocFree pins the bulk splitter as allocation-free: the
// round loop calls it per relaxation iteration, so a single alloc here
// multiplies across the whole campaign.
func TestBulkSplitAllocFree(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	p := mustPolicy(t, "adaptive", PolicyConfig{})
	s := rng.New(7)
	var links []topology.LinkID
	var pathEnd, flowEnd []int32
	var minimal, active []bool
	for f := 0; f < 16; f++ {
		a := d.RouterAt(topology.GroupID(s.Intn(9)), s.Intn(4), s.Intn(6))
		b := d.RouterAt(topology.GroupID((int(d.Group(a))+1+s.Intn(8))%9), s.Intn(4), s.Intn(6))
		paths := p.Candidates(e, a, b, s.Split(fmt.Sprintf("p-%d", f)))
		for _, pa := range paths {
			links = append(links, pa.Links...)
			pathEnd = append(pathEnd, int32(len(links)))
			minimal = append(minimal, pa.Minimal)
		}
		flowEnd = append(flowEnd, int32(len(pathEnd)))
		active = append(active, true)
	}
	load := make([]float64, len(d.Links))
	dst := make([]float64, len(pathEnd))
	bs := p.(BulkSplitter)
	allocs := testing.AllocsPerRun(100, func() {
		bs.SplitWeightsBulk(e, links, pathEnd, flowEnd, minimal, active, load, dst)
	})
	if allocs != 0 {
		t.Fatalf("SplitWeightsBulk allocated %.1f times per run, want 0", allocs)
	}
}

func mustPolicy(t *testing.T, name string, cfg PolicyConfig) Policy {
	t.Helper()
	p, err := NewPolicy(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func compareWeights(t *testing.T, tier string, trial int, want, got []float64) {
	t.Helper()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trial %d: %s weight[%d] = %v, generic = %v (must be bit-identical)",
				trial, tier, i, got[i], want[i])
		}
	}
}
