// Package routing enumerates dragonfly paths and implements the adaptive
// (UGAL-style) path choice used by Cray XC systems: for every packet a
// router can choose among several shortest and non-minimal paths, and the
// choice is driven by the back pressure currently observed on the candidate
// links (§II-A of the paper).
//
// The Engine is purely combinatorial: it produces candidate paths as
// sequences of link IDs. Load-aware selection takes the caller's view of
// per-link congestion as a function, so the flow simulator (package netsim)
// can plug in its current utilization estimates.
package routing

import (
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Path is a route between two routers as an ordered list of traversed
// links. An empty Links slice is the degenerate path from a router to
// itself. Minimal records whether the path is a shortest dragonfly route
// (as opposed to a Valiant detour through an intermediate group).
type Path struct {
	Links   []topology.LinkID
	Minimal bool
}

// Hops returns the number of links traversed.
func (p Path) Hops() int { return len(p.Links) }

// Engine answers path queries against a wired dragonfly.
type Engine struct {
	d *topology.Dragonfly
}

// NewEngine returns a path engine for machine d.
func NewEngine(d *topology.Dragonfly) *Engine { return &Engine{d: d} }

// Machine returns the underlying dragonfly.
func (e *Engine) Machine() *topology.Dragonfly { return e.d }

// IntraGroupPaths returns the minimal paths between two routers of the
// same group: the direct green or black link when the routers share a row
// or column, and otherwise the two two-hop corner routes (green-then-black
// and black-then-green). Panics if the routers are in different groups.
func (e *Engine) IntraGroupPaths(a, b topology.RouterID) []Path {
	d := e.d
	if d.Group(a) != d.Group(b) {
		panic("routing: IntraGroupPaths across groups")
	}
	if a == b {
		return []Path{{Minimal: true}}
	}
	ra, ca := d.Row(a), d.Col(a)
	rb, cb := d.Row(b), d.Col(b)
	switch {
	case ra == rb:
		return []Path{{Links: []topology.LinkID{d.RowLink(a, cb)}, Minimal: true}}
	case ca == cb:
		return []Path{{Links: []topology.LinkID{d.ColLink(a, rb)}, Minimal: true}}
	default:
		g := d.Group(a)
		corner1 := d.RouterAt(g, ra, cb) // row move first
		corner2 := d.RouterAt(g, rb, ca) // column move first
		return []Path{
			{Links: []topology.LinkID{d.RowLink(a, cb), d.ColLink(corner1, rb)}, Minimal: true},
			{Links: []topology.LinkID{d.ColLink(a, rb), d.RowLink(corner2, cb)}, Minimal: true},
		}
	}
}

// intraFirst returns one minimal intra-group path (the row-first variant).
func (e *Engine) intraFirst(a, b topology.RouterID) Path {
	return e.IntraGroupPaths(a, b)[0]
}

// concat joins path segments into one path.
func concat(minimal bool, segs ...[]topology.LinkID) Path {
	var n int
	for _, s := range segs {
		n += len(s)
	}
	links := make([]topology.LinkID, 0, n)
	for _, s := range segs {
		links = append(links, s...)
	}
	return Path{Links: links, Minimal: minimal}
}

// globalSegment builds the path a → (blue link l) → b where l connects the
// groups of a and b: intra(a→x) + l + intra(y→b), with x the endpoint of l
// in a's group. variant alternates between the two-hop corner routes of
// the intra-group segments so different candidates do not funnel through
// the same first link.
func (e *Engine) globalSegment(a, b topology.RouterID, l topology.LinkID, minimal bool, variant int) Path {
	d := e.d
	link := d.Links[l]
	x, y := link.A, link.B
	if d.Group(x) != d.Group(a) {
		x, y = y, x
	}
	heads := e.IntraGroupPaths(a, x)
	tails := e.IntraGroupPaths(y, b)
	head := heads[variant%len(heads)]
	tail := tails[variant%len(tails)]
	return concat(minimal, head.Links, []topology.LinkID{l}, tail.Links)
}

// MinimalPaths returns up to maxCandidates minimal paths from a to b. For
// routers in the same group these are the intra-group routes; across groups,
// one candidate per sampled blue link between the two groups. The stream
// picks which blue links are sampled (pass nil for a deterministic prefix).
func (e *Engine) MinimalPaths(a, b topology.RouterID, maxCandidates int, s *rng.Stream) []Path {
	d := e.d
	if maxCandidates < 1 {
		maxCandidates = 1
	}
	ga, gb := d.Group(a), d.Group(b)
	if ga == gb {
		paths := e.IntraGroupPaths(a, b)
		if len(paths) > maxCandidates {
			paths = paths[:maxCandidates]
		}
		return paths
	}
	blues := d.GlobalBetween(ga, gb)
	idxs := sampleIndices(len(blues), maxCandidates, s)
	paths := make([]Path, 0, len(idxs))
	for k, i := range idxs {
		paths = append(paths, e.globalSegment(a, b, blues[i], true, k))
	}
	return paths
}

// ValiantPaths returns up to maxCandidates non-minimal paths from a to b
// through random intermediate groups (the classic Valiant detour used by
// adaptive dragonfly routing when minimal links are congested). For routers
// in the same group it detours through a random other group. The stream
// must be non-nil.
func (e *Engine) ValiantPaths(a, b topology.RouterID, maxCandidates int, s *rng.Stream) []Path {
	d := e.d
	g := d.Cfg.Groups
	ga, gb := d.Group(a), d.Group(b)
	paths := make([]Path, 0, maxCandidates)
	for attempt := 0; attempt < 4*maxCandidates && len(paths) < maxCandidates; attempt++ {
		gi := topology.GroupID(s.Intn(g))
		if gi == ga || gi == gb {
			continue
		}
		b1 := d.GlobalBetween(ga, gi)
		b2 := d.GlobalBetween(gi, gb)
		if len(b1) == 0 || len(b2) == 0 {
			continue
		}
		l1 := b1[s.Intn(len(b1))]
		l2 := b2[s.Intn(len(b2))]
		// a → (l1) → arrival in gi → (l2) → arrival in gb → b
		link1 := d.Links[l1]
		x1, y1 := link1.A, link1.B
		if d.Group(x1) != ga {
			x1, y1 = y1, x1
		}
		link2 := d.Links[l2]
		x2, y2 := link2.A, link2.B
		if d.Group(x2) != gi {
			x2, y2 = y2, x2
		}
		head := e.intraFirst(a, x1)
		mid := e.intraFirst(y1, x2)
		tail := e.intraFirst(y2, b)
		paths = append(paths, concat(false,
			head.Links, []topology.LinkID{l1}, mid.Links, []topology.LinkID{l2}, tail.Links))
	}
	return paths
}

// CandidateOptions bounds the candidate set built by Candidates.
type CandidateOptions struct {
	MaxMinimal int // minimal candidates (default 4)
	MaxValiant int // non-minimal candidates (default 2); 0 disables Valiant
}

// Candidates returns the adaptive-routing candidate set for a flow from a
// to b: a handful of minimal paths plus (optionally) Valiant detours.
func (e *Engine) Candidates(a, b topology.RouterID, opt CandidateOptions, s *rng.Stream) []Path {
	if opt.MaxMinimal <= 0 {
		opt.MaxMinimal = 4
	}
	paths := e.MinimalPaths(a, b, opt.MaxMinimal, s)
	if opt.MaxValiant > 0 && a != b {
		paths = append(paths, e.ValiantPaths(a, b, opt.MaxValiant, s)...)
	}
	return paths
}

// LoadFunc reports the caller's current congestion estimate for a link,
// in stall-inducing utilization units (0 = idle).
type LoadFunc func(topology.LinkID) float64

// PathCost is the UGAL-style cost of sending on a path under the given
// loads: each hop costs 1 plus the congestion backlog on its link.
// Non-minimal paths naturally cost more through their extra hops.
func PathCost(p Path, load LoadFunc) float64 {
	cost := 0.0
	for _, l := range p.Links {
		cost += 1 + load(l)
	}
	return cost
}

// Select returns the index of the cheapest candidate under the loads,
// mimicking adaptive routing's back-pressure-driven choice. Ties go to the
// earliest candidate (which, by construction, is minimal).
func Select(paths []Path, load LoadFunc) int {
	best := -1
	bestCost := 0.0
	for i, p := range paths {
		c := PathCost(p, load)
		if best == -1 || c < bestCost {
			best = i
			bestCost = c
		}
	}
	return best
}

// SplitWeights apportions a flow across the candidate paths with weights
// inversely proportional to path cost, normalized to sum to 1. This models
// per-packet adaptive routing at flow granularity: most traffic takes the
// least-loaded route but congested alternatives still carry a share.
func SplitWeights(paths []Path, load LoadFunc, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(paths))
	}
	var total float64
	for i, p := range paths {
		w := 1 / (PathCost(p, load) + 1e-9)
		dst[i] = w
		total += w
	}
	if total > 0 {
		for i := range dst {
			dst[i] /= total
		}
	}
	return dst
}

// sampleIndices returns up to k distinct indices in [0, n). With a nil
// stream it returns the prefix 0..min(k,n)-1; otherwise a random subset.
func sampleIndices(n, k int, s *rng.Stream) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if s == nil || k == n {
		out := make([]int, k)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// partial Fisher-Yates over an index array
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
