// Package routing enumerates dragonfly paths and implements the adaptive
// (UGAL-style) path choice used by Cray XC systems: for every packet a
// router can choose among several shortest and non-minimal paths, and the
// choice is driven by the back pressure currently observed on the candidate
// links (§II-A of the paper).
//
// The Engine is purely combinatorial: it produces candidate paths as
// sequences of link IDs. Load-aware selection takes the caller's view of
// per-link congestion as a function, so the flow simulator (package netsim)
// can plug in its current utilization estimates.
package routing

import (
	"errors"
	"fmt"

	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// ErrPartitioned is returned (wrapped) by Route when no healthy path exists
// between two routers, i.e. link failures have partitioned the fabric.
var ErrPartitioned = errors.New("routing: topology partitioned")

// Path is a route between two routers as an ordered list of traversed
// links. An empty Links slice is the degenerate path from a router to
// itself. Minimal records whether the path is a shortest dragonfly route
// (as opposed to a Valiant detour through an intermediate group).
type Path struct {
	Links   []topology.LinkID
	Minimal bool
}

// Hops returns the number of links traversed.
func (p Path) Hops() int { return len(p.Links) }

// Engine answers path queries against a wired dragonfly.
type Engine struct {
	d *topology.Dragonfly
	// avoid marks links that must not appear in any returned path (failed
	// or quiesced links). Nil means every link is usable.
	avoid func(topology.LinkID) bool

	// telemetry handles, captured at construction; nil (no-op) without a
	// registry. Observation-only: no routing decision reads them.
	tmSets    *telemetry.Counter
	tmMinimal *telemetry.Counter
	tmNonMin  *telemetry.Counter
	tmBFS     *telemetry.Counter
}

// NewEngine returns a path engine for machine d.
func NewEngine(d *topology.Dragonfly) *Engine {
	return &Engine{
		d:         d,
		tmSets:    telemetry.C(telemetry.MRoutingCandidateSets),
		tmMinimal: telemetry.C(telemetry.MRoutingMinimal),
		tmNonMin:  telemetry.C(telemetry.MRoutingNonMinimal),
		tmBFS:     telemetry.C(telemetry.MRoutingBFSFallback),
	}
}

// Machine returns the underlying dragonfly.
func (e *Engine) Machine() *topology.Dragonfly { return e.d }

// SetAvoid installs the failed-link predicate. Paths returned by every
// enumeration method afterwards avoid links for which avoid reports true.
// Pass nil to restore the fault-free engine.
func (e *Engine) SetAvoid(avoid func(topology.LinkID) bool) { e.avoid = avoid }

// usable reports whether a path traverses no avoided link.
func (e *Engine) usable(p Path) bool {
	if e.avoid == nil {
		return true
	}
	for _, l := range p.Links {
		if e.avoid(l) {
			return false
		}
	}
	return true
}

// linkOK reports whether a single link is usable.
func (e *Engine) linkOK(l topology.LinkID) bool {
	return e.avoid == nil || !e.avoid(l)
}

// IntraGroupPaths returns the minimal paths between two routers of the
// same group: the direct green or black link when the routers share a row
// or column, and otherwise the two two-hop corner routes (green-then-black
// and black-then-green). Panics if the routers are in different groups.
func (e *Engine) IntraGroupPaths(a, b topology.RouterID) []Path {
	d := e.d
	if d.Group(a) != d.Group(b) {
		panic("routing: IntraGroupPaths across groups")
	}
	if a == b {
		return []Path{{Minimal: true}}
	}
	ra, ca := d.Row(a), d.Col(a)
	rb, cb := d.Row(b), d.Col(b)
	switch {
	case ra == rb:
		return []Path{{Links: []topology.LinkID{d.RowLink(a, cb)}, Minimal: true}}
	case ca == cb:
		return []Path{{Links: []topology.LinkID{d.ColLink(a, rb)}, Minimal: true}}
	default:
		g := d.Group(a)
		corner1 := d.RouterAt(g, ra, cb) // row move first
		corner2 := d.RouterAt(g, rb, ca) // column move first
		return []Path{
			{Links: []topology.LinkID{d.RowLink(a, cb), d.ColLink(corner1, rb)}, Minimal: true},
			{Links: []topology.LinkID{d.ColLink(a, rb), d.RowLink(corner2, cb)}, Minimal: true},
		}
	}
}

// intraUsable returns the minimal intra-group paths that avoid failed
// links. May be empty when faults block both corner routes.
func (e *Engine) intraUsable(a, b topology.RouterID) []Path {
	all := e.IntraGroupPaths(a, b)
	if e.avoid == nil {
		return all
	}
	out := all[:0:0]
	for _, p := range all {
		if e.usable(p) {
			out = append(out, p)
		}
	}
	return out
}

// intraFirst returns one usable minimal intra-group path, preferring the
// row-first variant. ok is false when faults block every variant.
func (e *Engine) intraFirst(a, b topology.RouterID) (Path, bool) {
	paths := e.intraUsable(a, b)
	if len(paths) == 0 {
		return Path{}, false
	}
	return paths[0], true
}

// concat joins path segments into one path.
func concat(minimal bool, segs ...[]topology.LinkID) Path {
	var n int
	for _, s := range segs {
		n += len(s)
	}
	links := make([]topology.LinkID, 0, n)
	for _, s := range segs {
		links = append(links, s...)
	}
	return Path{Links: links, Minimal: minimal}
}

// globalSegment builds the path a → (blue link l) → b where l connects the
// groups of a and b: intra(a→x) + l + intra(y→b), with x the endpoint of l
// in a's group. variant alternates between the two-hop corner routes of
// the intra-group segments so different candidates do not funnel through
// the same first link.
// ok is false when the blue link itself or every intra-group variant on
// either side is failed.
func (e *Engine) globalSegment(a, b topology.RouterID, l topology.LinkID, minimal bool, variant int) (Path, bool) {
	if !e.linkOK(l) {
		return Path{}, false
	}
	d := e.d
	link := d.Links[l]
	x, y := link.A, link.B
	if d.Group(x) != d.Group(a) {
		x, y = y, x
	}
	heads := e.intraUsable(a, x)
	tails := e.intraUsable(y, b)
	if len(heads) == 0 || len(tails) == 0 {
		return Path{}, false
	}
	head := heads[variant%len(heads)]
	tail := tails[variant%len(tails)]
	return concat(minimal, head.Links, []topology.LinkID{l}, tail.Links), true
}

// MinimalPaths returns up to maxCandidates minimal paths from a to b. For
// routers in the same group these are the intra-group routes; across groups,
// one candidate per sampled blue link between the two groups. The stream
// picks which blue links are sampled (pass nil for a deterministic prefix).
func (e *Engine) MinimalPaths(a, b topology.RouterID, maxCandidates int, s *rng.Stream) []Path {
	d := e.d
	if maxCandidates < 1 {
		maxCandidates = 1
	}
	ga, gb := d.Group(a), d.Group(b)
	if ga == gb {
		paths := e.intraUsable(a, b)
		if len(paths) > maxCandidates {
			paths = paths[:maxCandidates]
		}
		return paths
	}
	blues := d.GlobalBetween(ga, gb)
	idxs := sampleIndices(len(blues), maxCandidates, s)
	paths := make([]Path, 0, len(idxs))
	for k, i := range idxs {
		if p, ok := e.globalSegment(a, b, blues[i], true, k); ok {
			paths = append(paths, p)
		}
	}
	return paths
}

// ValiantPaths returns up to maxCandidates non-minimal paths from a to b
// through random intermediate groups (the classic Valiant detour used by
// adaptive dragonfly routing when minimal links are congested). For routers
// in the same group it detours through a random other group. The stream
// must be non-nil.
func (e *Engine) ValiantPaths(a, b topology.RouterID, maxCandidates int, s *rng.Stream) []Path {
	d := e.d
	g := d.Cfg.Groups
	ga, gb := d.Group(a), d.Group(b)
	paths := make([]Path, 0, maxCandidates)
	for attempt := 0; attempt < 4*maxCandidates && len(paths) < maxCandidates; attempt++ {
		gi := topology.GroupID(s.Intn(g))
		if gi == ga || gi == gb {
			continue
		}
		b1 := d.GlobalBetween(ga, gi)
		b2 := d.GlobalBetween(gi, gb)
		if len(b1) == 0 || len(b2) == 0 {
			continue
		}
		l1 := b1[s.Intn(len(b1))]
		l2 := b2[s.Intn(len(b2))]
		if !e.linkOK(l1) || !e.linkOK(l2) {
			continue
		}
		// a → (l1) → arrival in gi → (l2) → arrival in gb → b
		link1 := d.Links[l1]
		x1, y1 := link1.A, link1.B
		if d.Group(x1) != ga {
			x1, y1 = y1, x1
		}
		link2 := d.Links[l2]
		x2, y2 := link2.A, link2.B
		if d.Group(x2) != gi {
			x2, y2 = y2, x2
		}
		head, ok1 := e.intraFirst(a, x1)
		mid, ok2 := e.intraFirst(y1, x2)
		tail, ok3 := e.intraFirst(y2, b)
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		paths = append(paths, concat(false,
			head.Links, []topology.LinkID{l1}, mid.Links, []topology.LinkID{l2}, tail.Links))
	}
	return paths
}

// CandidateOptions bounds the candidate set built by Candidates.
type CandidateOptions struct {
	MaxMinimal int // minimal candidates (default 4)
	MaxValiant int // non-minimal candidates (default 2); 0 disables Valiant
}

// Candidates returns the adaptive-routing candidate set for a flow from a
// to b: a handful of minimal paths plus (optionally) Valiant detours. Under
// faults the structured candidates may all be blocked; Candidates then
// degrades to a breadth-first search over the healthy fabric, returning a
// single (possibly long) route, and only yields an empty set when the two
// routers are truly partitioned.
func (e *Engine) Candidates(a, b topology.RouterID, opt CandidateOptions, s *rng.Stream) []Path {
	if opt.MaxMinimal <= 0 {
		opt.MaxMinimal = 4
	}
	paths := e.MinimalPaths(a, b, opt.MaxMinimal, s)
	if opt.MaxValiant > 0 && a != b {
		paths = append(paths, e.ValiantPaths(a, b, opt.MaxValiant, s)...)
	}
	if len(paths) == 0 && a != b && e.avoid != nil {
		if p, ok := e.bfsHealthy(a, b); ok {
			paths = append(paths, p)
			e.tmBFS.Add(1)
		}
	}
	e.tmSets.Add(1)
	for _, p := range paths {
		if p.Minimal {
			e.tmMinimal.Add(1)
		} else {
			e.tmNonMin.Add(1)
		}
	}
	return paths
}

// Route returns the candidate set for a → b, or a wrapped ErrPartitioned
// when link failures have disconnected the two routers.
func (e *Engine) Route(a, b topology.RouterID, opt CandidateOptions, s *rng.Stream) ([]Path, error) {
	paths := e.Candidates(a, b, opt, s)
	if len(paths) == 0 && a != b {
		return nil, fmt.Errorf("no healthy path from router %d to router %d: %w", a, b, ErrPartitioned)
	}
	return paths, nil
}

// bfsHealthy finds a shortest path over healthy links only, ignoring the
// dragonfly routing hierarchy. It is the last-resort fallback once faults
// have blocked every structured candidate.
func (e *Engine) bfsHealthy(a, b topology.RouterID) (Path, bool) {
	d := e.d
	n := d.Cfg.NumRouters()
	prevLink := make([]topology.LinkID, n)
	visited := make([]bool, n)
	for i := range prevLink {
		prevLink[i] = -1
	}
	queue := []topology.RouterID{a}
	visited[a] = true
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, l := range d.Incident(r) {
			if !e.linkOK(l) {
				continue
			}
			link := d.Links[l]
			next := link.A
			if next == r {
				next = link.B
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			prevLink[next] = l
			if next == b {
				// walk back to a collecting links
				var rev []topology.LinkID
				cur := b
				for cur != a {
					pl := prevLink[cur]
					rev = append(rev, pl)
					lk := d.Links[pl]
					if lk.A == cur {
						cur = lk.B
					} else {
						cur = lk.A
					}
				}
				links := make([]topology.LinkID, len(rev))
				for i, l2 := range rev {
					links[len(rev)-1-i] = l2
				}
				return Path{Links: links}, true
			}
			queue = append(queue, next)
		}
	}
	return Path{}, false
}

// LoadFunc reports the caller's current congestion estimate for a link,
// in stall-inducing utilization units (0 = idle).
type LoadFunc func(topology.LinkID) float64

// PathCost is the UGAL-style cost of sending on a path under the given
// loads: each hop costs 1 plus the congestion backlog on its link.
// Non-minimal paths naturally cost more through their extra hops.
func PathCost(p Path, load LoadFunc) float64 {
	cost := 0.0
	for _, l := range p.Links {
		cost += 1 + load(l)
	}
	return cost
}

// Select returns the index of the cheapest candidate under the loads,
// mimicking adaptive routing's back-pressure-driven choice. Ties go to the
// earliest candidate (which, by construction, is minimal).
func Select(paths []Path, load LoadFunc) int {
	best := -1
	bestCost := 0.0
	for i, p := range paths {
		c := PathCost(p, load)
		if best == -1 || c < bestCost {
			best = i
			bestCost = c
		}
	}
	return best
}

// SplitWeights apportions a flow across the candidate paths with weights
// inversely proportional to path cost, normalized to sum to 1. This models
// per-packet adaptive routing at flow granularity: most traffic takes the
// least-loaded route but congested alternatives still carry a share.
func SplitWeights(paths []Path, load LoadFunc, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(paths))
	}
	var total float64
	for i, p := range paths {
		w := 1 / (PathCost(p, load) + 1e-9)
		dst[i] = w
		total += w
	}
	if total > 0 {
		for i := range dst {
			dst[i] /= total
		}
	}
	return dst
}

// sampleIndices returns up to k distinct indices in [0, n). With a nil
// stream it returns the prefix 0..min(k,n)-1; otherwise a random subset.
func sampleIndices(n, k int, s *rng.Stream) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if s == nil || k == n {
		out := make([]int, k)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// partial Fisher-Yates over an index array
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
