package routing

import (
	"math"
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := []string{"adaptive", "feedback", "minimal", "valiant"}
	if len(names) != len(want) {
		t.Fatalf("PolicyNames() = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PolicyNames() = %v, want %v", names, want)
		}
		if !ValidPolicy(n) {
			t.Errorf("ValidPolicy(%q) = false", n)
		}
		p, err := NewPolicy(n, PolicyConfig{})
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("NewPolicy(%q).Name() = %q", n, p.Name())
		}
	}
	if ValidPolicy("ugal-x") {
		t.Error("ValidPolicy accepted an unknown name")
	}
	if _, err := NewPolicy("ugal-x", PolicyConfig{}); err == nil {
		t.Error("NewPolicy accepted an unknown name")
	}
}

// interGroupPair returns a router pair in different groups.
func interGroupPair(e *Engine) (a, b topology.RouterID) {
	d := e.Machine()
	return d.RouterAt(0, 0, 0), d.RouterAt(2, 1, 1)
}

func TestMinimalPolicySingleShortestPath(t *testing.T) {
	e := newEngine(t)
	a, b := interGroupPair(e)
	p, _ := NewPolicy("minimal", PolicyConfig{})
	paths := p.Candidates(e, a, b, rng.New(7))
	if len(paths) != 1 || !paths[0].Minimal {
		t.Fatalf("minimal candidates = %+v, want one minimal path", paths)
	}
	validatePath(t, e, a, b, paths[0])
	w := make([]float64, len(paths))
	p.SplitWeights(e, paths, func(topology.LinkID) float64 { return 3 }, w)
	if w[0] != 1 {
		t.Fatalf("minimal weights = %v, want [1]", w)
	}
}

func TestValiantPolicyUniformOverDetours(t *testing.T) {
	e := newEngine(t)
	a, b := interGroupPair(e)
	p, _ := NewPolicy("valiant", PolicyConfig{MaxValiant: 2})
	paths := p.Candidates(e, a, b, rng.New(7))
	nonMin := 0
	for _, pa := range paths {
		validatePath(t, e, a, b, pa)
		if !pa.Minimal {
			nonMin++
		}
	}
	if nonMin == 0 {
		t.Fatal("valiant produced no non-minimal candidates on a healthy fabric")
	}
	w := make([]float64, len(paths))
	// load must not matter: valiant is oblivious
	p.SplitWeights(e, paths, func(topology.LinkID) float64 { return 100 }, w)
	sum := 0.0
	for i, pa := range paths {
		sum += w[i]
		if pa.Minimal && w[i] != 0 {
			t.Errorf("valiant put weight %v on a minimal path", w[i])
		}
		if !pa.Minimal && math.Abs(w[i]-1/float64(nonMin)) > 1e-12 {
			t.Errorf("valiant weight %v, want uniform %v", w[i], 1/float64(nonMin))
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

func TestValiantFallsBackToMinimal(t *testing.T) {
	e := newEngine(t)
	p, _ := NewPolicy("valiant", PolicyConfig{})
	paths := []Path{{Minimal: true}}
	w := make([]float64, 1)
	p.SplitWeights(e, paths, func(topology.LinkID) float64 { return 0 }, w)
	if w[0] != 1 {
		t.Fatalf("valiant with no detours: weights = %v, want [1]", w)
	}
}

// TestAdaptiveNeutralBiasIsInverseCost pins the adaptive split to the
// engine's historical arithmetic: weight ∝ 1/(Σ(1+load)+1e-9), normalized
// in path order. The campaign-level hash anchor proves the same thing end
// to end; this keeps the unit contract visible.
func TestAdaptiveNeutralBiasIsInverseCost(t *testing.T) {
	e := newEngine(t)
	a, b := interGroupPair(e)
	p, _ := NewPolicy("adaptive", PolicyConfig{})
	paths := p.Candidates(e, a, b, rng.New(7))
	load := func(l topology.LinkID) float64 { return float64(l%5) * 2 }
	got := make([]float64, len(paths))
	p.SplitWeights(e, paths, load, got)

	want := make([]float64, len(paths))
	var total float64
	for i, pa := range paths {
		cost := 0.0
		for _, l := range pa.Links {
			cost += 1 + load(l)
		}
		w := 1 / (cost + 1e-9)
		want[i] = w
		total += w
	}
	inv := 1 / total
	for i := range want {
		want[i] *= inv
		if got[i] != want[i] { // bit-exact, not approximately equal
			t.Fatalf("weight[%d] = %v, want %v (bit-exact)", i, got[i], want[i])
		}
	}
}

func TestAdaptiveBiasPenalizesDetours(t *testing.T) {
	e := newEngine(t)
	a, b := interGroupPair(e)
	neutral, _ := NewPolicy("adaptive", PolicyConfig{})
	biased, _ := NewPolicy("adaptive", PolicyConfig{NonMinimalBias: 4})
	paths := neutral.Candidates(e, a, b, rng.New(7))
	detour := -1
	for i, pa := range paths {
		if !pa.Minimal {
			detour = i
			break
		}
	}
	if detour < 0 {
		t.Skip("no detour in candidate set")
	}
	load := func(topology.LinkID) float64 { return 1 }
	wn := make([]float64, len(paths))
	wb := make([]float64, len(paths))
	neutral.SplitWeights(e, paths, load, wn)
	biased.SplitWeights(e, paths, load, wb)
	if wb[detour] >= wn[detour] {
		t.Fatalf("bias 4 did not reduce detour weight: %v -> %v", wn[detour], wb[detour])
	}
}

// TestFeedbackShiftsAwayFromStalledGroups: raising the stall ratio of the
// groups one candidate path traverses (and only those) moves split weight
// off that path, relative to the plain adaptive split.
func TestFeedbackShiftsAwayFromStalledGroups(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a, b := interGroupPair(e)
	adaptive, _ := NewPolicy("adaptive", PolicyConfig{})
	paths := adaptive.Candidates(e, a, b, rng.New(7))
	detour := -1
	for i, pa := range paths {
		if !pa.Minimal {
			detour = i
			break
		}
	}
	if detour < 0 {
		t.Skip("no detour in candidate set")
	}
	// groups only the detour traverses (its Valiant intermediate)
	common := map[topology.GroupID]bool{d.Group(a): true, d.Group(b): true}
	stalled := map[topology.GroupID]bool{}
	for _, l := range paths[detour].Links {
		for _, r := range []topology.RouterID{d.Links[l].A, d.Links[l].B} {
			if g := d.Group(r); !common[g] {
				stalled[g] = true
			}
		}
	}
	if len(stalled) == 0 {
		t.Skip("detour stays within the endpoint groups")
	}
	fb, _ := NewPolicy("feedback", PolicyConfig{
		GroupStall: func(g topology.GroupID) float64 {
			if stalled[g] {
				return 1
			}
			return 0
		},
	})
	load := func(topology.LinkID) float64 { return 1 }
	wa := make([]float64, len(paths))
	wf := make([]float64, len(paths))
	adaptive.SplitWeights(e, paths, load, wa)
	fb.SplitWeights(e, paths, load, wf)
	if wf[detour] >= wa[detour] {
		t.Fatalf("stalling the detour's groups did not shed its weight: %v -> %v", wa[detour], wf[detour])
	}
	// and with no signal the feedback policy degrades to adaptive exactly
	degraded, _ := NewPolicy("feedback", PolicyConfig{})
	wd := make([]float64, len(paths))
	degraded.SplitWeights(e, paths, load, wd)
	for i := range wd {
		if wd[i] != wa[i] {
			t.Fatalf("feedback without a signal diverged from adaptive at %d: %v != %v", i, wd[i], wa[i])
		}
	}
}
