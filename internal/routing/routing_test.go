package routing

import (
	"testing"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(d)
}

// validatePath walks the path from src verifying link continuity and that
// it ends at dst.
func validatePath(t *testing.T, e *Engine, src, dst topology.RouterID, p Path) {
	t.Helper()
	d := e.Machine()
	cur := src
	for i, id := range p.Links {
		l := d.Links[id]
		if l.A != cur && l.B != cur {
			t.Fatalf("hop %d: link %d (%d-%d) not incident to current router %d", i, id, l.A, l.B, cur)
		}
		cur = l.Other(cur)
	}
	if cur != dst {
		t.Fatalf("path from %d ends at %d, want %d", src, cur, dst)
	}
}

func TestIntraGroupSelf(t *testing.T) {
	e := newEngine(t)
	r := e.Machine().RouterAt(0, 1, 2)
	paths := e.IntraGroupPaths(r, r)
	if len(paths) != 1 || paths[0].Hops() != 0 {
		t.Fatalf("self path = %+v", paths)
	}
}

func TestIntraGroupSameRow(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(1, 2, 0)
	b := d.RouterAt(1, 2, 3)
	paths := e.IntraGroupPaths(a, b)
	if len(paths) != 1 || paths[0].Hops() != 1 {
		t.Fatalf("same-row paths = %+v", paths)
	}
	if d.Links[paths[0].Links[0]].Type != topology.Green {
		t.Fatal("same-row link should be green")
	}
	validatePath(t, e, a, b, paths[0])
}

func TestIntraGroupSameCol(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(1, 0, 4)
	b := d.RouterAt(1, 3, 4)
	paths := e.IntraGroupPaths(a, b)
	if len(paths) != 1 || paths[0].Hops() != 1 {
		t.Fatalf("same-col paths = %+v", paths)
	}
	if d.Links[paths[0].Links[0]].Type != topology.Black {
		t.Fatal("same-col link should be black")
	}
	validatePath(t, e, a, b, paths[0])
}

func TestIntraGroupCorner(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(2, 0, 0)
	b := d.RouterAt(2, 3, 5)
	paths := e.IntraGroupPaths(a, b)
	if len(paths) != 2 {
		t.Fatalf("corner case should yield 2 paths, got %d", len(paths))
	}
	for _, p := range paths {
		if p.Hops() != 2 {
			t.Fatalf("corner path hops = %d, want 2", p.Hops())
		}
		if !p.Minimal {
			t.Fatal("intra-group paths must be minimal")
		}
		validatePath(t, e, a, b, p)
	}
	// the two candidates must differ
	if paths[0].Links[0] == paths[1].Links[0] {
		t.Fatal("corner candidates should take different first hops")
	}
}

func TestIntraGroupPanicsAcrossGroups(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.IntraGroupPaths(d.RouterAt(0, 0, 0), d.RouterAt(1, 0, 0))
}

func TestMinimalPathsInterGroup(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(0, 1, 1)
	b := d.RouterAt(3, 2, 4)
	paths := e.MinimalPaths(a, b, 4, nil)
	if len(paths) == 0 {
		t.Fatal("no minimal paths across groups")
	}
	for _, p := range paths {
		validatePath(t, e, a, b, p)
		if !p.Minimal {
			t.Fatal("MinimalPaths returned non-minimal path")
		}
		// minimal inter-group: at most 2 intra + 1 blue + 2 intra = 5 hops
		if p.Hops() > 5 {
			t.Fatalf("minimal path has %d hops", p.Hops())
		}
		// exactly one blue link
		blues := 0
		for _, id := range p.Links {
			if d.Links[id].Type == topology.Blue {
				blues++
			}
		}
		if blues != 1 {
			t.Fatalf("minimal inter-group path crosses %d blue links, want 1", blues)
		}
	}
}

func TestMinimalPathsRespectsMaxCandidates(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(0, 0, 0)
	b := d.RouterAt(5, 3, 3)
	if got := len(e.MinimalPaths(a, b, 2, nil)); got > 2 {
		t.Fatalf("got %d candidates, cap was 2", got)
	}
	if got := len(e.MinimalPaths(a, b, 1, nil)); got != 1 {
		t.Fatalf("got %d candidates, cap was 1", got)
	}
}

func TestMinimalPathsSampledWithStream(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(0, 0, 1)
	b := d.RouterAt(4, 1, 2)
	s := rng.New(99)
	paths := e.MinimalPaths(a, b, 3, s)
	for _, p := range paths {
		validatePath(t, e, a, b, p)
	}
}

func TestValiantPaths(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(0, 1, 1)
	b := d.RouterAt(3, 2, 2)
	s := rng.New(7)
	paths := e.ValiantPaths(a, b, 3, s)
	if len(paths) == 0 {
		t.Fatal("no valiant paths")
	}
	for _, p := range paths {
		validatePath(t, e, a, b, p)
		if p.Minimal {
			t.Fatal("valiant path marked minimal")
		}
		// valiant crosses exactly two blue links
		blues := 0
		for _, id := range p.Links {
			if d.Links[id].Type == topology.Blue {
				blues++
			}
		}
		if blues != 2 {
			t.Fatalf("valiant path crosses %d blue links, want 2", blues)
		}
		// must not route via source or destination group blue-to-blue
		if p.Hops() > 8 {
			t.Fatalf("valiant path too long: %d hops", p.Hops())
		}
	}
}

func TestValiantSameGroup(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(2, 0, 0)
	b := d.RouterAt(2, 3, 5)
	s := rng.New(11)
	paths := e.ValiantPaths(a, b, 2, s)
	for _, p := range paths {
		validatePath(t, e, a, b, p)
	}
}

func TestCandidatesMixesMinimalAndValiant(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(1, 1, 1)
	b := d.RouterAt(6, 2, 3)
	s := rng.New(5)
	paths := e.Candidates(a, b, CandidateOptions{MaxMinimal: 3, MaxValiant: 2}, s)
	var minimal, valiant int
	for _, p := range paths {
		validatePath(t, e, a, b, p)
		if p.Minimal {
			minimal++
		} else {
			valiant++
		}
	}
	if minimal == 0 || valiant == 0 {
		t.Fatalf("candidates: %d minimal, %d valiant; want both > 0", minimal, valiant)
	}
}

func TestSelectPrefersUnloaded(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(2, 0, 0)
	b := d.RouterAt(2, 3, 5)
	paths := e.IntraGroupPaths(a, b)
	// load the first hop of path 0 heavily
	loaded := paths[0].Links[0]
	load := func(l topology.LinkID) float64 {
		if l == loaded {
			return 100
		}
		return 0
	}
	if Select(paths, load) != 1 {
		t.Fatal("Select should avoid the loaded path")
	}
	// with no load, ties go to the first (minimal) candidate
	if Select(paths, func(topology.LinkID) float64 { return 0 }) != 0 {
		t.Fatal("Select tie-break should pick the first candidate")
	}
}

func TestPathCostCountsHopsAndLoad(t *testing.T) {
	p := Path{Links: []topology.LinkID{1, 2, 3}}
	c := PathCost(p, func(l topology.LinkID) float64 { return float64(l) })
	if c != 3+1+2+3 {
		t.Fatalf("PathCost = %v", c)
	}
}

func TestSplitWeights(t *testing.T) {
	e := newEngine(t)
	d := e.Machine()
	a := d.RouterAt(2, 0, 0)
	b := d.RouterAt(2, 3, 5)
	paths := e.IntraGroupPaths(a, b)
	loaded := paths[0].Links[0]
	load := func(l topology.LinkID) float64 {
		if l == loaded {
			return 10
		}
		return 0
	}
	w := SplitWeights(paths, load, nil)
	var sum float64
	for _, v := range w {
		if v < 0 || v > 1 {
			t.Fatalf("weight out of range: %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum to %v", sum)
	}
	if w[0] >= w[1] {
		t.Fatal("loaded path should receive less traffic")
	}
}

func TestSampleIndicesDistinct(t *testing.T) {
	s := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		idx := sampleIndices(10, 4, s)
		if len(idx) != 4 {
			t.Fatalf("len = %d", len(idx))
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= 10 || seen[i] {
				t.Fatalf("bad sample %v", idx)
			}
			seen[i] = true
		}
	}
	// k > n clamps
	if got := len(sampleIndices(3, 10, s)); got != 3 {
		t.Fatalf("clamped sample len = %d", got)
	}
	if sampleIndices(5, 0, s) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestDeterministicPrefixWithoutStream(t *testing.T) {
	idx := sampleIndices(10, 3, nil)
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("nil-stream sample = %v", idx)
	}
}
