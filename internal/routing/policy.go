package routing

import (
	"fmt"
	"sort"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Policy is a pluggable routing discipline: it decides which candidate
// paths a flow may use (Candidates) and how the flow's traffic is split
// across them under the current congestion view (SplitWeights). The flow
// simulator (package netsim) drives both through one Policy value per
// network; everything a policy does must be a pure function of its inputs —
// the engine, the pair, the dedicated stream, and the load view — so that
// campaigns stay byte-identical across worker counts and run orders.
type Policy interface {
	// Name returns the registry name ("minimal", "valiant", ...).
	Name() string
	// Candidates enumerates the candidate paths for a flow a → b. The
	// stream is dedicated to the pair (split from the network's seed by
	// pair label), so the same pair always yields the same candidates.
	Candidates(e *Engine, a, b topology.RouterID, s *rng.Stream) []Path
	// SplitWeights fills dst (len(paths)) with the share of the flow's
	// traffic assigned to each candidate, normalized to sum to 1.
	SplitWeights(e *Engine, paths []Path, load LoadFunc, dst []float64)
}

// PolicyConfig carries the knobs shared by the built-in policies.
type PolicyConfig struct {
	// MaxMinimal and MaxValiant bound the candidate set (zero values fall
	// back to the Engine defaults, matching CandidateOptions).
	MaxMinimal int
	MaxValiant int
	// NonMinimalBias multiplies the cost of non-minimal candidates in the
	// adaptive and feedback split (UGAL's threshold knob in flow form):
	// >1 penalizes Valiant detours, <1 favors them. 0 means 1 (neutral —
	// exactly the historical inverse-cost split).
	NonMinimalBias float64
	// GroupStall reports the smoothed stall ratio of a group — the signal
	// the feedback policy steers away from. It must be deterministic for
	// the simulation state it is read under (see monitor.StallFeedback);
	// nil disables the feedback term.
	GroupStall func(topology.GroupID) float64
	// FeedbackGain scales how strongly the feedback policy prices group
	// stall ratios into path costs. 0 means the default (4).
	FeedbackGain float64
}

// bias returns the effective non-minimal bias.
func (c PolicyConfig) bias() float64 {
	if c.NonMinimalBias <= 0 {
		return 1
	}
	return c.NonMinimalBias
}

// StaticWeights reports whether the policy's split is load-independent:
// SplitWeights writes the same dst for a given candidate list no matter
// what the load view returns (and never calls it). The simulator uses this
// to compute a flow's split once at resolve time and skip the per-round
// (and per-relaxation-iteration) recomputation entirely — and, because the
// resulting link loads then cannot change between relaxation iterations, to
// collapse the relaxation to a single iteration with bit-identical results.
func StaticWeights(p Policy) bool {
	switch p.(type) {
	case minimalPolicy, valiantPolicy:
		return true
	}
	return false
}

// SliceSplitter is the allocation- and indirection-free fast path of
// SplitWeights over the flat candidate arena the simulator builds per
// resolved flow list. Candidate path j of the flow spans
// links[start:pathEnd[j]], where start advances to the previous path's end
// (the flow's paths are contiguous in the arena); minimal[j] mirrors
// Path.Minimal; load is indexed directly by LinkID, replacing the LoadFunc
// closure. Implementations MUST produce bit-identical weights to
// SplitWeights on the same candidates — the property test in
// policy_slice_test.go enforces it.
type SliceSplitter interface {
	SplitWeightsSlice(e *Engine, links []topology.LinkID, start int32, pathEnd []int32, minimal []bool, load []float64, dst []float64)
}

// PolicyNames lists the built-in routing policies, sorted.
func PolicyNames() []string {
	names := []string{"minimal", "valiant", "adaptive", "feedback"}
	sort.Strings(names)
	return names
}

// ValidPolicy reports whether name is a built-in routing policy.
func ValidPolicy(name string) bool {
	for _, n := range PolicyNames() {
		if n == name {
			return true
		}
	}
	return false
}

// NewPolicy builds a built-in policy by name. The feedback policy requires
// cfg.GroupStall to do anything beyond what adaptive does; it degrades to
// the plain adaptive split when the signal is nil.
func NewPolicy(name string, cfg PolicyConfig) (Policy, error) {
	switch name {
	case "minimal":
		return minimalPolicy{}, nil
	case "valiant":
		return valiantPolicy{cfg: cfg}, nil
	case "adaptive":
		return adaptivePolicy{cfg: cfg}, nil
	case "feedback":
		return feedbackPolicy{cfg: cfg}, nil
	default:
		return nil, fmt.Errorf("routing: unknown policy %q (have %v)", name, PolicyNames())
	}
}

// minimalPolicy always routes on one shortest path — the ablation the
// paper's related simulation studies use as the non-adaptive baseline:
// traffic collapses onto fewer links and hotspots form.
type minimalPolicy struct{}

func (minimalPolicy) Name() string { return "minimal" }

func (minimalPolicy) Candidates(e *Engine, a, b topology.RouterID, s *rng.Stream) []Path {
	return e.Candidates(a, b, CandidateOptions{MaxMinimal: 1, MaxValiant: 0}, s)
}

func (minimalPolicy) SplitWeights(_ *Engine, paths []Path, _ LoadFunc, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	if len(dst) > 0 {
		dst[0] = 1
	}
}

// valiantPolicy is oblivious Valiant routing: traffic is spread uniformly
// over non-minimal detours through random intermediate groups, regardless
// of load. It trades doubled path length for hotspot immunity. One minimal
// path stays in the candidate set as the fallback when faults (or a
// same-router pair) leave no detour.
type valiantPolicy struct{ cfg PolicyConfig }

func (valiantPolicy) Name() string { return "valiant" }

func (p valiantPolicy) Candidates(e *Engine, a, b topology.RouterID, s *rng.Stream) []Path {
	maxV := p.cfg.MaxValiant
	if maxV < 1 {
		maxV = 2
	}
	return e.Candidates(a, b, CandidateOptions{MaxMinimal: 1, MaxValiant: maxV}, s)
}

func (valiantPolicy) SplitWeights(_ *Engine, paths []Path, _ LoadFunc, dst []float64) {
	nonMin := 0
	for _, p := range paths {
		if !p.Minimal {
			nonMin++
		}
	}
	if nonMin == 0 {
		for i := range dst {
			dst[i] = 0
		}
		if len(dst) > 0 {
			dst[0] = 1
		}
		return
	}
	w := 1 / float64(nonMin)
	for i, p := range paths {
		if p.Minimal {
			dst[i] = 0
		} else {
			dst[i] = w
		}
	}
}

// adaptivePolicy is the UGAL-style load-aware split the simulator has
// always used: traffic divides across candidates with weights inversely
// proportional to path cost (1 + backlog per hop), with non-minimal
// candidates' costs scaled by the configured bias. With the neutral bias
// the arithmetic — including summation order — reproduces the historical
// inlined split exactly, so existing campaigns are byte-identical.
type adaptivePolicy struct{ cfg PolicyConfig }

func (adaptivePolicy) Name() string { return "adaptive" }

func (p adaptivePolicy) Candidates(e *Engine, a, b topology.RouterID, s *rng.Stream) []Path {
	return e.Candidates(a, b, CandidateOptions{MaxMinimal: p.cfg.MaxMinimal, MaxValiant: p.cfg.MaxValiant}, s)
}

func (p adaptivePolicy) SplitWeights(_ *Engine, paths []Path, load LoadFunc, dst []float64) {
	bias := p.cfg.bias()
	var total float64
	for i, pa := range paths {
		cost := 0.0
		for _, l := range pa.Links {
			cost += 1 + load(l)
		}
		if !pa.Minimal && bias != 1 {
			cost *= bias
		}
		w := 1 / (cost + 1e-9)
		dst[i] = w
		total += w
	}
	if total > 0 {
		inv := 1 / total
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// SplitWeightsSlice mirrors SplitWeights over the arena layout with the
// identical arithmetic and summation order (cost accumulation in link
// order, bias multiply, inverse-cost weight, normalize by 1/total).
func (p adaptivePolicy) SplitWeightsSlice(_ *Engine, links []topology.LinkID, start int32, pathEnd []int32, minimal []bool, load []float64, dst []float64) {
	bias := p.cfg.bias()
	var total float64
	for i := range dst {
		end := pathEnd[i]
		cost := 0.0
		for _, l := range links[start:end] {
			cost += 1 + load[l]
		}
		if !minimal[i] && bias != 1 {
			cost *= bias
		}
		w := 1 / (cost + 1e-9)
		dst[i] = w
		total += w
		start = end
	}
	if total > 0 {
		inv := 1 / total
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// defaultFeedbackGain prices a sustained group stall ratio of 0.25 as a
// doubling of every hop's cost through that group.
const defaultFeedbackGain = 4

// feedbackPolicy closes the loop between the network-weather signals and
// routing: it is the adaptive split with every hop's cost additionally
// scaled by the smoothed stall ratio of the groups its link touches, so
// traffic drains away from groups the monitor's congestion rollup flags —
// before the link-level backlog alone would have moved it.
type feedbackPolicy struct{ cfg PolicyConfig }

func (feedbackPolicy) Name() string { return "feedback" }

func (p feedbackPolicy) Candidates(e *Engine, a, b topology.RouterID, s *rng.Stream) []Path {
	return e.Candidates(a, b, CandidateOptions{MaxMinimal: p.cfg.MaxMinimal, MaxValiant: p.cfg.MaxValiant}, s)
}

func (p feedbackPolicy) SplitWeights(e *Engine, paths []Path, load LoadFunc, dst []float64) {
	gs := p.cfg.GroupStall
	if gs == nil {
		adaptivePolicy{cfg: p.cfg}.SplitWeights(e, paths, load, dst)
		return
	}
	gain := p.cfg.FeedbackGain
	if gain <= 0 {
		gain = defaultFeedbackGain
	}
	bias := p.cfg.bias()
	d := e.Machine()
	var total float64
	for i, pa := range paths {
		cost := 0.0
		for _, l := range pa.Links {
			link := d.Links[l]
			stall := 0.5 * (gs(d.Group(link.A)) + gs(d.Group(link.B)))
			cost += (1 + load(l)) * (1 + gain*stall)
		}
		if !pa.Minimal && bias != 1 {
			cost *= bias
		}
		w := 1 / (cost + 1e-9)
		dst[i] = w
		total += w
	}
	if total > 0 {
		inv := 1 / total
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// SplitWeightsSlice mirrors feedbackPolicy.SplitWeights over the arena
// layout, bit for bit (see adaptivePolicy.SplitWeightsSlice).
func (p feedbackPolicy) SplitWeightsSlice(e *Engine, links []topology.LinkID, start int32, pathEnd []int32, minimal []bool, load []float64, dst []float64) {
	gs := p.cfg.GroupStall
	if gs == nil {
		adaptivePolicy{cfg: p.cfg}.SplitWeightsSlice(e, links, start, pathEnd, minimal, load, dst)
		return
	}
	gain := p.cfg.FeedbackGain
	if gain <= 0 {
		gain = defaultFeedbackGain
	}
	bias := p.cfg.bias()
	d := e.Machine()
	var total float64
	for i := range dst {
		end := pathEnd[i]
		cost := 0.0
		for _, l := range links[start:end] {
			link := d.Links[l]
			stall := 0.5 * (gs(d.Group(link.A)) + gs(d.Group(link.B)))
			cost += (1 + load[l]) * (1 + gain*stall)
		}
		if !minimal[i] && bias != 1 {
			cost *= bias
		}
		w := 1 / (cost + 1e-9)
		dst[i] = w
		total += w
		start = end
	}
	if total > 0 {
		inv := 1 / total
		for i := range dst {
			dst[i] *= inv
		}
	}
}

// BulkSplitter computes the arena split for every active flow in one call
// — the form the simulator's relaxation loop actually uses. Splitting flow
// by flow through SliceSplitter pays an interface dispatch and a receiver
// (config) copy per flow per iteration; the bulk form hoists that setup
// out of the loop. Flow i's paths span pathEnd[flowEnd[i-1]:flowEnd[i]];
// flows with active[i] == false are skipped (their dst entries are left
// untouched). The weights written MUST be bit-identical to calling
// SplitWeightsSlice per flow — policy_slice_test.go enforces it.
type BulkSplitter interface {
	SplitWeightsBulk(e *Engine, links []topology.LinkID, pathEnd, flowEnd []int32, minimal, active []bool, load []float64, dst []float64)
}

// SplitWeightsBulk applies adaptivePolicy.SplitWeightsSlice to every
// active flow with the bias lookup hoisted out of the flow loop.
func (p adaptivePolicy) SplitWeightsBulk(_ *Engine, links []topology.LinkID, pathEnd, flowEnd []int32, minimal, active []bool, load []float64, dst []float64) {
	bias := p.cfg.bias()
	ps, ls := int32(0), int32(0)
	for fi := range flowEnd {
		fs, fl := ps, ls
		pe := flowEnd[fi]
		ps = pe
		if pe > fs {
			ls = pathEnd[pe-1]
		}
		if !active[fi] || pe == fs {
			continue
		}
		var total float64
		start := fl
		for j := fs; j < pe; j++ {
			end := pathEnd[j]
			cost := 0.0
			for _, l := range links[start:end] {
				cost += 1 + load[l]
			}
			if !minimal[j] && bias != 1 {
				cost *= bias
			}
			w := 1 / (cost + 1e-9)
			dst[j] = w
			total += w
			start = end
		}
		if total > 0 {
			inv := 1 / total
			for j := fs; j < pe; j++ {
				dst[j] *= inv
			}
		}
	}
}

// SplitWeightsBulk applies feedbackPolicy.SplitWeightsSlice to every
// active flow with the stall signal, gain, bias, and machine lookups
// hoisted out of the flow loop.
func (p feedbackPolicy) SplitWeightsBulk(e *Engine, links []topology.LinkID, pathEnd, flowEnd []int32, minimal, active []bool, load []float64, dst []float64) {
	gs := p.cfg.GroupStall
	if gs == nil {
		adaptivePolicy{cfg: p.cfg}.SplitWeightsBulk(e, links, pathEnd, flowEnd, minimal, active, load, dst)
		return
	}
	gain := p.cfg.FeedbackGain
	if gain <= 0 {
		gain = defaultFeedbackGain
	}
	bias := p.cfg.bias()
	d := e.Machine()
	ps, ls := int32(0), int32(0)
	for fi := range flowEnd {
		fs, fl := ps, ls
		pe := flowEnd[fi]
		ps = pe
		if pe > fs {
			ls = pathEnd[pe-1]
		}
		if !active[fi] || pe == fs {
			continue
		}
		var total float64
		start := fl
		for j := fs; j < pe; j++ {
			end := pathEnd[j]
			cost := 0.0
			for _, l := range links[start:end] {
				link := d.Links[l]
				stall := 0.5 * (gs(d.Group(link.A)) + gs(d.Group(link.B)))
				cost += (1 + load[l]) * (1 + gain*stall)
			}
			if !minimal[j] && bias != 1 {
				cost *= bias
			}
			w := 1 / (cost + 1e-9)
			dst[j] = w
			total += w
			start = end
		}
		if total > 0 {
			inv := 1 / total
			for j := fs; j < pe; j++ {
				dst[j] *= inv
			}
		}
	}
}

// InverseCostSplitter is implemented by policies whose split is exactly
// the inverse-path-cost rule — cost = Σ over hops of (1 + load), scaled by
// bias for non-minimal paths, weight 1/(cost+1e-9), normalized — with no
// extra per-hop signal. The simulator uses it to run that arithmetic
// inline in its relaxation loop (fusing the split with the share scatter)
// instead of dispatching through SplitWeights; the inline loop must stay
// bit-identical to SplitWeightsSlice. ok reports whether the rule applies
// in the policy's current configuration.
type InverseCostSplitter interface {
	InverseCostBias() (bias float64, ok bool)
}

// InverseCostBias reports the adaptive policy's bias; the rule always
// applies.
func (p adaptivePolicy) InverseCostBias() (float64, bool) { return p.cfg.bias(), true }

// InverseCostBias applies only when the feedback signal is absent (the
// policy then degrades to the plain adaptive split).
func (p feedbackPolicy) InverseCostBias() (float64, bool) {
	if p.cfg.GroupStall != nil {
		return 0, false
	}
	return p.cfg.bias(), true
}
