package routing

import (
	"errors"
	"testing"
	"testing/quick"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Fault-avoidance properties: with an avoid predicate installed, no
// returned path — minimal, Valiant, or the adaptive candidate set with its
// BFS fallback — may traverse a failed link, and a genuinely partitioned
// pair must surface ErrPartitioned rather than a bogus route.

// randomFailures marks every link id hashing below frac as failed.
func randomFailures(d *topology.Dragonfly, seed int64, frac float64) map[topology.LinkID]bool {
	s := rng.New(seed)
	failed := map[topology.LinkID]bool{}
	for _, l := range d.Links {
		if s.Float64() < frac {
			failed[l.ID] = true
		}
	}
	return failed
}

func TestPropertyNoPathTraversesFailedLink(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	nr := d.Cfg.NumRouters()

	f := func(rawA, rawB uint16, seed int64) bool {
		a := topology.RouterID(int(rawA) % nr)
		b := topology.RouterID(int(rawB) % nr)
		failed := randomFailures(d, seed, 0.15)
		e := NewEngine(d)
		e.SetAvoid(func(l topology.LinkID) bool { return failed[l] })
		s := rng.New(seed + 1)
		var all []Path
		all = append(all, e.MinimalPaths(a, b, 4, s)...)
		if a != b {
			all = append(all, e.ValiantPaths(a, b, 2, s)...)
		}
		all = append(all, e.Candidates(a, b, CandidateOptions{MaxMinimal: 4, MaxValiant: 2}, s)...)
		for _, p := range all {
			if !pathValid(d, a, b, p) {
				return false
			}
			for _, l := range p.Links {
				if failed[l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBFSFallbackWhenStructuredPathsBlocked(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	// Fail every blue link between groups 0 and 1; the fabric stays
	// connected through the other groups, so routing must degrade to a
	// detour instead of giving up.
	failed := map[topology.LinkID]bool{}
	for _, l := range d.GlobalBetween(0, 1) {
		failed[l] = true
	}
	e := NewEngine(d)
	e.SetAvoid(func(l topology.LinkID) bool { return failed[l] })

	a := d.RouterAt(0, 0, 0)
	b := d.RouterAt(1, 0, 0)
	paths, err := e.Route(a, b, CandidateOptions{MaxMinimal: 4, MaxValiant: 2}, rng.New(3))
	if err != nil {
		t.Fatalf("connected fabric reported as partitioned: %v", err)
	}
	if len(paths) == 0 {
		t.Fatal("no path despite connected fabric")
	}
	for _, p := range paths {
		if !pathValid(d, a, b, p) {
			t.Fatalf("invalid path %+v", p)
		}
		for _, l := range p.Links {
			if failed[l] {
				t.Fatalf("path traverses failed blue link %d", l)
			}
		}
	}
}

func TestPartitionedTopologyReturnsError(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	// Isolate one router by failing every incident link.
	var isolated topology.RouterID = 5
	failed := map[topology.LinkID]bool{}
	for _, l := range d.Incident(isolated) {
		failed[l] = true
	}
	e := NewEngine(d)
	e.SetAvoid(func(l topology.LinkID) bool { return failed[l] })

	_, err = e.Route(isolated, 0, CandidateOptions{MaxMinimal: 4, MaxValiant: 2}, rng.New(3))
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	_, err = e.Route(0, isolated, CandidateOptions{MaxMinimal: 4, MaxValiant: 2}, rng.New(3))
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse direction err = %v, want ErrPartitioned", err)
	}
	// Unaffected pairs still route.
	if _, err := e.Route(0, 1, CandidateOptions{MaxMinimal: 4}, rng.New(3)); err != nil {
		t.Fatalf("healthy pair errored: %v", err)
	}
	// Self-route of the isolated router stays valid (it never leaves).
	if paths, err := e.Route(isolated, isolated, CandidateOptions{MaxMinimal: 4}, rng.New(3)); err != nil || len(paths) == 0 {
		t.Fatalf("self route = (%v, %v)", paths, err)
	}
}

func TestSetAvoidNilRestores(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d)
	e.SetAvoid(func(l topology.LinkID) bool { return true })
	if got := e.MinimalPaths(0, 1, 4, nil); len(got) != 0 {
		t.Fatalf("all links failed but got %d paths", len(got))
	}
	e.SetAvoid(nil)
	if got := e.MinimalPaths(0, 1, 4, nil); len(got) == 0 {
		t.Fatal("restored engine returns no paths")
	}
}
