package routing

import (
	"testing"
	"testing/quick"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Property tests: for arbitrary router pairs, every produced path must be
// valid (link-continuous, ending at the destination) and minimal paths
// must respect the dragonfly diameter.

func TestPropertyMinimalPathsValid(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d)
	nr := d.Cfg.NumRouters()

	f := func(rawA, rawB uint16, seed int64) bool {
		a := topology.RouterID(int(rawA) % nr)
		b := topology.RouterID(int(rawB) % nr)
		s := rng.New(seed)
		for _, p := range e.MinimalPaths(a, b, 4, s) {
			if !pathValid(d, a, b, p) {
				return false
			}
			// dragonfly minimal diameter: 2 intra + 1 global + 2 intra
			if p.Hops() > 5 {
				return false
			}
			if !p.Minimal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyValiantPathsValid(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d)
	nr := d.Cfg.NumRouters()

	f := func(rawA, rawB uint16, seed int64) bool {
		a := topology.RouterID(int(rawA) % nr)
		b := topology.RouterID(int(rawB) % nr)
		if a == b {
			return true
		}
		s := rng.New(seed)
		for _, p := range e.ValiantPaths(a, b, 2, s) {
			if !pathValid(d, a, b, p) {
				return false
			}
			if p.Minimal {
				return false
			}
			// valiant diameter: ≤ 2+1+2+1+2
			if p.Hops() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertySplitWeightsDistribution(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(d)
	nr := d.Cfg.NumRouters()

	f := func(rawA, rawB uint16, loadSeed int64) bool {
		a := topology.RouterID(int(rawA) % nr)
		b := topology.RouterID(int(rawB) % nr)
		if a == b {
			return true
		}
		s := rng.New(loadSeed)
		paths := e.MinimalPaths(a, b, 4, nil)
		load := func(l topology.LinkID) float64 { return s.Float64() * 10 }
		w := SplitWeights(paths, load, nil)
		var sum float64
		for _, v := range w {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// pathValid replicates the validation helper without test dependencies.
func pathValid(d *topology.Dragonfly, src, dst topology.RouterID, p Path) bool {
	cur := src
	for _, id := range p.Links {
		if id < 0 || int(id) >= len(d.Links) {
			return false
		}
		l := d.Links[id]
		if l.A != cur && l.B != cur {
			return false
		}
		cur = l.Other(cur)
	}
	return cur == dst
}
