package nn

import (
	"bytes"
	"encoding/gob"
	"testing"

	"dragonvar/internal/rng"
)

// TestGobRoundTripByteIdentical is the persistence contract of the serving
// stack: train → encode → decode must yield a forecaster whose predictions
// are byte-identical to the in-memory model's (exact float64 equality),
// and re-encoding must reproduce the same bytes.
func TestGobRoundTripByteIdentical(t *testing.T) {
	s := rng.New(11)
	samples := mkSamples(120, 6, 4, 0.1, s)
	f := Train(samples, Config{Epochs: 5, UseAttention: true}, s)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	var back Forecaster
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	m, h := back.WindowShape()
	if m != 6 || h != 4 {
		t.Fatalf("loaded window shape %d×%d, want 6×4", m, h)
	}
	want := f.PredictAll(samples)
	got := back.PredictAll(samples)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: loaded model predicts %v, in-memory %v", i, got[i], want[i])
		}
	}
	aw, ab := f.AttentionWeights(samples[0].Steps), back.AttentionWeights(samples[0].Steps)
	for i := range aw {
		if aw[i] != ab[i] {
			t.Fatalf("attention weight %d: %v != %v", i, ab[i], aw[i])
		}
	}

	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoding a decoded forecaster changed the bytes")
	}
}

// TestGobDecodeValidatesLayout corrupts the parameter vector length and
// expects a clear error instead of an out-of-range panic at predict time.
func TestGobDecodeValidatesLayout(t *testing.T) {
	s := rng.New(12)
	f := Train(mkSamples(40, 4, 3, 0.1, s), Config{Epochs: 2}, s)
	w := forecasterWire{
		Cfg: f.cfg, M: f.m, H: f.h,
		Params:    f.params[:len(f.params)-3], // truncated
		FeatMu:    f.featMu,
		FeatSigma: f.featSigma,
		YMu:       f.yMu, YSigma: f.ySigma,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	var back Forecaster
	if err := back.GobDecode(buf.Bytes()); err == nil {
		t.Fatal("decoding a truncated parameter vector succeeded")
	}
}
