package nn

import (
	"math"
	"testing"

	"dragonvar/internal/rng"
)

// mkSamples builds windows where the target is a weighted sum of the LAST
// step's features — attention should learn to focus there.
func mkSamples(n, m, h int, noise float64, s *rng.Stream) []Sample {
	out := make([]Sample, n)
	for i := 0; i < n; i++ {
		steps := make([][]float64, m)
		for t := 0; t < m; t++ {
			row := make([]float64, h)
			for j := range row {
				row[j] = s.Float64() * 10
			}
			steps[t] = row
		}
		last := steps[m-1]
		target := 3*last[0] + 2*last[1] + 50
		if h > 2 {
			target += 0.5 * last[2]
		}
		out[i] = Sample{Steps: steps, Target: target + noise*s.NormFloat64()}
	}
	return out
}

// mkAutocorr builds windows resembling the real problem: a slowly varying
// latent congestion level drives both the features and the target.
func mkAutocorr(nRuns, runLen, m, k, h int, s *rng.Stream) (train, test []Sample) {
	for r := 0; r < nRuns; r++ {
		ar := rng.AR1{Mean: 1, Std: 0.3, Rho: 0.95}
		level := make([]float64, runLen)
		for t := range level {
			level[t] = ar.Next(s)
		}
		feats := make([][]float64, runLen)
		times := make([]float64, runLen)
		for t := range level {
			row := make([]float64, h)
			for j := 0; j < h; j++ {
				row[j] = level[t]*float64(j+1) + 0.1*s.NormFloat64()
			}
			feats[t] = row
			times[t] = 10 * (1 + 0.5*level[t])
		}
		for tc := m; tc <= runLen-k; tc++ {
			var target float64
			for i := tc; i < tc+k; i++ {
				target += times[i]
			}
			smp := Sample{Steps: feats[tc-m : tc], Target: target}
			if r < nRuns*3/4 {
				train = append(train, smp)
			} else {
				test = append(test, smp)
			}
		}
	}
	return train, test
}

func fastCfg() Config {
	return Config{EmbedDim: 6, HiddenDim: 12, Epochs: 40, BatchSize: 16, LearningRate: 0.02, UseAttention: true}
}

func TestForecasterLearnsLastStepSignal(t *testing.T) {
	s := rng.New(1)
	samples := mkSamples(400, 4, 3, 0.1, s)
	f := Train(samples[:300], fastCfg(), rng.New(2))
	mape := f.MAPE(samples[300:])
	if mape > 8 {
		t.Fatalf("test MAPE = %v%%, want < 8%%", mape)
	}
}

func TestForecasterBeatsMeanBaseline(t *testing.T) {
	s := rng.New(3)
	train, test := mkAutocorr(12, 40, 5, 5, 4, s)
	f := Train(train, fastCfg(), rng.New(4))
	mape := f.MAPE(test)

	// mean-prediction baseline
	var mu float64
	for _, smp := range train {
		mu += smp.Target
	}
	mu /= float64(len(train))
	var base float64
	for _, smp := range test {
		base += math.Abs((mu - smp.Target) / smp.Target)
	}
	base = 100 * base / float64(len(test))
	if mape >= base {
		t.Fatalf("forecaster MAPE %v%% not better than mean baseline %v%%", mape, base)
	}
}

func TestAttentionFocusesOnInformativeStep(t *testing.T) {
	s := rng.New(5)
	samples := mkSamples(500, 5, 3, 0.05, s)
	f := Train(samples, fastCfg(), rng.New(6))
	// average attention over test samples: last position should dominate
	avg := make([]float64, 5)
	for _, smp := range samples[:100] {
		w := f.AttentionWeights(smp.Steps)
		for i, v := range w {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= 100
	}
	best := 0
	for i := 1; i < len(avg); i++ {
		if avg[i] > avg[best] {
			best = i
		}
	}
	if best != 4 {
		t.Fatalf("attention focuses on position %d (weights %v), want the last", best, avg)
	}
}

func TestAttentionWeightsSumToOne(t *testing.T) {
	s := rng.New(7)
	samples := mkSamples(50, 4, 3, 0.1, s)
	f := Train(samples, fastCfg(), rng.New(8))
	w := f.AttentionWeights(samples[0].Steps)
	var sum float64
	for _, v := range w {
		if v < 0 {
			t.Fatal("negative attention weight")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("attention sums to %v", sum)
	}
}

func TestMeanPoolAblation(t *testing.T) {
	s := rng.New(9)
	samples := mkSamples(300, 5, 3, 0.05, s)
	cfg := fastCfg()
	cfg.UseAttention = false
	f := Train(samples, cfg, rng.New(10))
	w := f.AttentionWeights(samples[0].Steps)
	for _, v := range w {
		if math.Abs(v-0.2) > 1e-12 {
			t.Fatalf("mean pooling should weight uniformly, got %v", w)
		}
	}
	// it still learns something
	if mape := f.MAPE(samples); mape > 25 {
		t.Fatalf("mean-pool ablation MAPE = %v%%", mape)
	}
}

func TestGradientCheck(t *testing.T) {
	// numerical vs analytical gradient on a tiny model
	s := rng.New(11)
	samples := mkSamples(1, 3, 2, 0, s)
	cfg := Config{EmbedDim: 3, HiddenDim: 4, Epochs: 1, BatchSize: 1, LearningRate: 0.01, UseAttention: true}
	f := newForecaster(3, 2, cfg.withDefaults(), rng.New(12))
	f.featMu = []float64{0, 0}
	f.featSigma = []float64{1, 1}
	f.yMu, f.ySigma = 0, 1

	smp := samples[0]
	target := 1.5
	loss := func() float64 {
		sc := f.newScratch()
		p := f.forward(smp.Steps, sc)
		return (p - target) * (p - target)
	}
	grad := make([]float64, len(f.params))
	sc := f.newScratch()
	pred := f.forward(smp.Steps, sc)
	f.backward(2*(pred-target), sc, grad)

	const eps = 1e-6
	bad := 0
	for i := range f.params {
		orig := f.params[i]
		f.params[i] = orig + eps
		up := loss()
		f.params[i] = orig - eps
		down := loss()
		f.params[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)+math.Abs(grad[i])) {
			bad++
			if bad < 4 {
				t.Errorf("param %d: numerical %v vs analytical %v", i, num, grad[i])
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d gradient mismatches", bad, len(f.params))
	}
}

func TestPermutationImportance(t *testing.T) {
	s := rng.New(13)
	samples := mkSamples(400, 4, 3, 0.05, s)
	f := Train(samples[:300], fastCfg(), rng.New(14))
	imp := f.PermutationImportance(samples[300:], rng.New(15))
	if len(imp) != 3 {
		t.Fatalf("importance length = %d", len(imp))
	}
	// feature 0 (weight 3) must beat feature 2 (weight 0.5)
	if imp[0] <= imp[2] {
		t.Fatalf("importance ordering wrong: %v", imp)
	}
	for _, v := range imp {
		if v < 0 {
			t.Fatal("importance below zero")
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	s := rng.New(16)
	samples := mkSamples(100, 3, 2, 0.1, s)
	cfg := fastCfg()
	cfg.Epochs = 5
	f1 := Train(samples, cfg, rng.New(17))
	f2 := Train(samples, cfg, rng.New(17))
	for i := range f1.params {
		if f1.params[i] != f2.params[i] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestMaxSamplesSubsampling(t *testing.T) {
	s := rng.New(18)
	samples := mkSamples(500, 3, 2, 0.1, s)
	cfg := fastCfg()
	cfg.Epochs = 3
	cfg.MaxSamples = 50
	f := Train(samples, cfg, rng.New(19))
	if f == nil {
		t.Fatal("training failed")
	}
	// prediction still finite and sane
	p := f.Predict(samples[0].Steps)
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction = %v", p)
	}
}

func TestTrainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty training set")
		}
	}()
	Train(nil, Config{}, rng.New(1))
}

func TestConstantTargetNormalization(t *testing.T) {
	s := rng.New(20)
	samples := mkSamples(50, 3, 2, 0, s)
	for i := range samples {
		samples[i].Target = 42
	}
	cfg := fastCfg()
	cfg.Epochs = 5
	f := Train(samples, cfg, rng.New(21))
	p := f.Predict(samples[0].Steps)
	if math.Abs(p-42) > 2 {
		t.Fatalf("constant target prediction = %v", p)
	}
}
