// Package nn implements the performance forecaster of §IV-C: a scalar
// dot-product attention layer over the feature vectors of the last m time
// steps, followed by a fully connected network that predicts the total
// execution time of the next k steps. Training is mini-batch Adam on mean
// squared error, with manual backpropagation — no external ML runtime.
//
// The architecture, per sample (window W ∈ R^{m×H}):
//
//	E_t   = norm(W_t)·We + be + pos_t    (embedding, d dims, learnable
//	                                      positional term)
//	K_t   = E_t·Wk     V_t = E_t·Wv      (keys and values)
//	α     = softmax(q·K_t / √d)          (scalar dot-product attention)
//	c     = Σ_t α_t V_t                  (context)
//	h     = relu(c·W1 + b1)
//	ŷ     = h·w2 + b2
//
// Inputs and targets are z-score normalized from training statistics.
// Setting Config.UseAttention to false replaces α with uniform weights
// (mean pooling) — the ablation baseline.
package nn

import (
	"context"
	"fmt"
	"math"
	"time"

	"dragonvar/internal/engine"
	"dragonvar/internal/linalg"
	"dragonvar/internal/rng"
	"dragonvar/internal/stats"
	"dragonvar/internal/telemetry"
)

// Sample is one forecasting example: the per-step features of the m
// historical steps and the aggregate target.
type Sample struct {
	Steps  [][]float64
	Target float64
}

// Config sets the forecaster's hyperparameters.
type Config struct {
	EmbedDim     int     // d; default 8
	HiddenDim    int     // fully connected width; default 16
	Epochs       int     // default 60
	BatchSize    int     // default 16
	LearningRate float64 // Adam step size; default 0.01
	UseAttention bool    // false = mean pooling ablation
	MaxSamples   int     // subsample cap for training; 0 = no cap
}

func (c Config) withDefaults() Config {
	if c.EmbedDim <= 0 {
		c.EmbedDim = 8
	}
	if c.HiddenDim <= 0 {
		c.HiddenDim = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	return c
}

// Forecaster is a trained model.
type Forecaster struct {
	cfg  Config
	m, h int // window length and feature count

	// parameters, one flat vector with named views
	params []float64
	we     []float64 // h×d
	be     []float64 // d
	pos    []float64 // m×d learnable positional embeddings
	wk     []float64 // d×d
	wv     []float64 // d×d
	q      []float64 // d
	w1     []float64 // d×p
	b1     []float64 // p
	w2     []float64 // p
	b2     []float64 // 1

	// normalization statistics from the training set
	featMu, featSigma []float64
	yMu, ySigma       float64
}

// newForecaster allocates parameters with small random init.
func newForecaster(m, h int, cfg Config, s *rng.Stream) *Forecaster {
	d, p := cfg.EmbedDim, cfg.HiddenDim
	total := h*d + d + m*d + d*d + d*d + d + d*p + p + p + 1
	f := &Forecaster{cfg: cfg, m: m, h: h, params: make([]float64, total)}
	f.carve()
	scale := func(fanIn int) float64 { return math.Sqrt(2 / float64(fanIn)) }
	fill := func(v []float64, sc float64) {
		for i := range v {
			v[i] = sc * s.NormFloat64()
		}
	}
	fill(f.we, scale(h))
	fill(f.pos, 0.1)
	fill(f.wk, scale(d))
	fill(f.wv, scale(d))
	fill(f.q, scale(d))
	fill(f.w1, scale(d))
	fill(f.w2, scale(p))
	return f
}

// carve sets the parameter views into the flat vector.
func (f *Forecaster) carve() {
	d, p := f.cfg.EmbedDim, f.cfg.HiddenDim
	h := f.h
	off := 0
	take := func(n int) []float64 {
		v := f.params[off : off+n]
		off += n
		return v
	}
	f.we = take(h * d)
	f.be = take(d)
	f.pos = take(f.m * d)
	f.wk = take(d * d)
	f.wv = take(d * d)
	f.q = take(d)
	f.w1 = take(d * p)
	f.b1 = take(p)
	f.w2 = take(p)
	f.b2 = take(1)
}

// scratch holds per-sample forward/backward buffers, reused across samples.
type scratch struct {
	norm  []float64 // m×h normalized input
	e     []float64 // m×d embeddings
	k     []float64 // m×d keys
	v     []float64 // m×d values
	score []float64 // m
	alpha []float64 // m
	ctx   []float64 // d
	pre1  []float64 // p
	hid   []float64 // p

	gE   []float64 // m×d
	gCtx []float64 // d
	gPre []float64 // p
	gSc  []float64 // m
}

func (f *Forecaster) newScratch() *scratch {
	d, p := f.cfg.EmbedDim, f.cfg.HiddenDim
	return &scratch{
		norm:  make([]float64, f.m*f.h),
		e:     make([]float64, f.m*d),
		k:     make([]float64, f.m*d),
		v:     make([]float64, f.m*d),
		score: make([]float64, f.m),
		alpha: make([]float64, f.m),
		ctx:   make([]float64, d),
		pre1:  make([]float64, p),
		hid:   make([]float64, p),
		gE:    make([]float64, f.m*d),
		gCtx:  make([]float64, d),
		gPre:  make([]float64, p),
		gSc:   make([]float64, f.m),
	}
}

// forward computes the normalized-space prediction for one window.
func (f *Forecaster) forward(steps [][]float64, sc *scratch) float64 {
	d, p := f.cfg.EmbedDim, f.cfg.HiddenDim
	m, h := f.m, f.h
	// normalize
	for t := 0; t < m; t++ {
		row := steps[t]
		for j := 0; j < h; j++ {
			sc.norm[t*h+j] = (row[j] - f.featMu[j]) / f.featSigma[j]
		}
	}
	// embeddings and projections
	for t := 0; t < m; t++ {
		et := sc.e[t*d : (t+1)*d]
		nt := sc.norm[t*h : (t+1)*h]
		for a := 0; a < d; a++ {
			et[a] = f.be[a] + f.pos[t*d+a]
		}
		for j := 0; j < h; j++ {
			x := nt[j]
			if x == 0 {
				continue
			}
			wrow := f.we[j*d : (j+1)*d]
			for a := 0; a < d; a++ {
				et[a] += x * wrow[a]
			}
		}
		kt := sc.k[t*d : (t+1)*d]
		vt := sc.v[t*d : (t+1)*d]
		for a := 0; a < d; a++ {
			var ks, vs float64
			for b := 0; b < d; b++ {
				ks += et[b] * f.wk[b*d+a]
				vs += et[b] * f.wv[b*d+a]
			}
			kt[a] = ks
			vt[a] = vs
		}
	}
	// attention weights
	if f.cfg.UseAttention {
		inv := 1 / math.Sqrt(float64(d))
		for t := 0; t < m; t++ {
			sc.score[t] = linalg.Dot(f.q, sc.k[t*d:(t+1)*d]) * inv
		}
		linalg.Softmax(sc.score, sc.alpha)
	} else {
		for t := 0; t < m; t++ {
			sc.alpha[t] = 1 / float64(m)
		}
	}
	// context
	for a := 0; a < d; a++ {
		sc.ctx[a] = 0
	}
	for t := 0; t < m; t++ {
		linalg.Axpy(sc.alpha[t], sc.v[t*d:(t+1)*d], sc.ctx)
	}
	// head
	for j := 0; j < p; j++ {
		sum := f.b1[j]
		for a := 0; a < d; a++ {
			sum += sc.ctx[a] * f.w1[a*p+j]
		}
		sc.pre1[j] = sum
		if sum > 0 {
			sc.hid[j] = sum
		} else {
			sc.hid[j] = 0
		}
	}
	return linalg.Dot(sc.hid, f.w2) + f.b2[0]
}

// backward accumulates parameter gradients for one sample given the loss
// gradient dL/dŷ. Must be called right after forward with the same scratch.
func (f *Forecaster) backward(dOut float64, sc *scratch, grad []float64) {
	d, p := f.cfg.EmbedDim, f.cfg.HiddenDim
	m, h := f.m, f.h
	// carve gradient views (same layout as params)
	off := 0
	take := func(n int) []float64 {
		v := grad[off : off+n]
		off += n
		return v
	}
	gWe := take(h * d)
	gBe := take(d)
	gPos := take(m * d)
	gWk := take(d * d)
	gWv := take(d * d)
	gQ := take(d)
	gW1 := take(d * p)
	gB1 := take(p)
	gW2 := take(p)
	gB2 := take(1)

	// head
	gB2[0] += dOut
	for j := 0; j < p; j++ {
		gW2[j] += dOut * sc.hid[j]
		g := dOut * f.w2[j]
		if sc.pre1[j] <= 0 {
			g = 0
		}
		sc.gPre[j] = g
		gB1[j] += g
	}
	for a := 0; a < d; a++ {
		var s float64
		for j := 0; j < p; j++ {
			g := sc.gPre[j]
			if g == 0 {
				continue
			}
			gW1[a*p+j] += sc.ctx[a] * g
			s += f.w1[a*p+j] * g
		}
		sc.gCtx[a] = s
	}

	// attention
	for i := range sc.gE {
		sc.gE[i] = 0
	}
	if f.cfg.UseAttention {
		// gAlpha_t = V_t · gCtx; softmax backward
		var dot float64
		for t := 0; t < m; t++ {
			sc.gSc[t] = linalg.Dot(sc.v[t*d:(t+1)*d], sc.gCtx)
		}
		for t := 0; t < m; t++ {
			dot += sc.alpha[t] * sc.gSc[t]
		}
		inv := 1 / math.Sqrt(float64(d))
		for t := 0; t < m; t++ {
			gScore := sc.alpha[t] * (sc.gSc[t] - dot) * inv
			kt := sc.k[t*d : (t+1)*d]
			et := sc.e[t*d : (t+1)*d]
			// q and K gradients
			for a := 0; a < d; a++ {
				gQ[a] += gScore * kt[a]
			}
			// gK_t = gScore * q → backprop through Wk into E
			for a := 0; a < d; a++ {
				gk := gScore * f.q[a]
				if gk == 0 {
					continue
				}
				for b := 0; b < d; b++ {
					gWk[b*d+a] += et[b] * gk
					sc.gE[t*d+b] += f.wk[b*d+a] * gk
				}
			}
		}
	}
	// values: gV_t = alpha_t * gCtx → through Wv into E
	for t := 0; t < m; t++ {
		at := sc.alpha[t]
		if at == 0 {
			continue
		}
		et := sc.e[t*d : (t+1)*d]
		for a := 0; a < d; a++ {
			gv := at * sc.gCtx[a]
			if gv == 0 {
				continue
			}
			for b := 0; b < d; b++ {
				gWv[b*d+a] += et[b] * gv
				sc.gE[t*d+b] += f.wv[b*d+a] * gv
			}
		}
	}
	// embeddings
	for t := 0; t < m; t++ {
		nt := sc.norm[t*h : (t+1)*h]
		ge := sc.gE[t*d : (t+1)*d]
		for a := 0; a < d; a++ {
			gBe[a] += ge[a]
			gPos[t*d+a] += ge[a]
		}
		for j := 0; j < h; j++ {
			x := nt[j]
			if x == 0 {
				continue
			}
			wrow := gWe[j*d : (j+1)*d]
			for a := 0; a < d; a++ {
				wrow[a] += x * ge[a]
			}
		}
	}
}

// Train fits a forecaster to the samples. All samples must share the same
// window shape. The stream drives initialization, shuffling, and the
// optional subsampling.
func Train(samples []Sample, cfg Config, s *rng.Stream) *Forecaster {
	if telemetry.Enabled() {
		telemetry.C(telemetry.MNNFits).Inc()
		defer telemetry.H(telemetry.MNNFitSecs, telemetry.SecondsBuckets).ObserveSince(time.Now())
	}
	cfg = cfg.withDefaults()
	if len(samples) == 0 {
		panic("nn: no training samples")
	}
	if cfg.MaxSamples > 0 && len(samples) > cfg.MaxSamples {
		idx := s.Perm(len(samples))[:cfg.MaxSamples]
		sub := make([]Sample, cfg.MaxSamples)
		for i, j := range idx {
			sub[i] = samples[j]
		}
		samples = sub
	}
	m := len(samples[0].Steps)
	h := len(samples[0].Steps[0])
	f := newForecaster(m, h, cfg, s)

	// normalization statistics
	f.featMu = make([]float64, h)
	f.featSigma = make([]float64, h)
	var ws stats.Welford
	col := make([]stats.Welford, h)
	for _, smp := range samples {
		ws.Add(smp.Target)
		for _, row := range smp.Steps {
			for j, v := range row {
				col[j].Add(v)
			}
		}
	}
	f.yMu, f.ySigma = ws.Mean(), ws.Std()
	if f.ySigma == 0 {
		f.ySigma = 1
	}
	for j := 0; j < h; j++ {
		f.featMu[j] = col[j].Mean()
		f.featSigma[j] = col[j].Std()
		if f.featSigma[j] == 0 {
			f.featSigma[j] = 1
		}
	}

	// Adam state
	grad := make([]float64, len(f.params))
	mAdam := make([]float64, len(f.params))
	vAdam := make([]float64, len(f.params))
	beta1, beta2, eps := 0.9, 0.999, 1e-8
	step := 0
	sc := f.newScratch()

	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		s.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			for i := range grad {
				grad[i] = 0
			}
			for _, oi := range order[lo:hi] {
				smp := samples[oi]
				pred := f.forward(smp.Steps, sc)
				target := (smp.Target - f.yMu) / f.ySigma
				dOut := 2 * (pred - target) / float64(hi-lo)
				f.backward(dOut, sc, grad)
			}
			step++
			c1 := 1 - math.Pow(beta1, float64(step))
			c2 := 1 - math.Pow(beta2, float64(step))
			for i := range f.params {
				g := grad[i]
				mAdam[i] = beta1*mAdam[i] + (1-beta1)*g
				vAdam[i] = beta2*vAdam[i] + (1-beta2)*g*g
				f.params[i] -= cfg.LearningRate * (mAdam[i] / c1) / (math.Sqrt(vAdam[i]/c2) + eps)
			}
		}
	}
	return f
}

// Predict returns the forecast (in target units) for one window,
// clamped to be non-negative (execution times cannot be negative, and the
// clamp keeps extrapolation outside the training regime sane).
func (f *Forecaster) Predict(steps [][]float64) float64 {
	sc := f.newScratch()
	return clampPred(f.forward(steps, sc)*f.ySigma + f.yMu)
}

// PredictAll returns forecasts for many samples, reusing buffers.
func (f *Forecaster) PredictAll(samples []Sample) []float64 {
	sc := f.newScratch()
	out := make([]float64, len(samples))
	for i, smp := range samples {
		out[i] = clampPred(f.forward(smp.Steps, sc)*f.ySigma + f.yMu)
	}
	return out
}

// clampPred floors predictions at zero.
func clampPred(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// MAPE evaluates the model on samples and returns the mean absolute
// percentage error (the metric of Figures 8 and 10).
func (f *Forecaster) MAPE(samples []Sample) float64 {
	pred := f.PredictAll(samples)
	obs := make([]float64, len(samples))
	for i, smp := range samples {
		obs[i] = smp.Target
	}
	return stats.MAPE(pred, obs)
}

// AttentionWeights returns the attention distribution over the m window
// positions for one sample (uniform when attention is disabled).
func (f *Forecaster) AttentionWeights(steps [][]float64) []float64 {
	sc := f.newScratch()
	f.forward(steps, sc)
	out := make([]float64, f.m)
	copy(out, sc.alpha)
	return out
}

// PermutationImportance measures each feature column's contribution: the
// increase in MAPE when that column is shuffled across samples (at every
// window position). Larger is more important; floors at 0.
//
// Feature columns are scored concurrently; each column's shuffle uses its
// own stream split from s by column index, so the scores are identical at
// every worker count (inference is read-only on the trained model).
func (f *Forecaster) PermutationImportance(samples []Sample, s *rng.Stream) []float64 {
	base := f.MAPE(samples)
	out, _ := engine.MapOrdered(context.Background(), 0, f.h,
		func(_ context.Context, j int) (float64, error) {
			perm := make([]int, len(samples))
			for i := range perm {
				perm[i] = i
			}
			cs := s.Split(fmt.Sprintf("feat-%d", j))
			cs.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
			shuffled := make([]Sample, len(samples))
			for i := range samples {
				src := samples[perm[i]]
				steps := make([][]float64, f.m)
				for t := 0; t < f.m; t++ {
					row := make([]float64, f.h)
					copy(row, samples[i].Steps[t])
					row[j] = src.Steps[t][j]
					steps[t] = row
				}
				shuffled[i] = Sample{Steps: steps, Target: samples[i].Target}
			}
			delta := f.MAPE(shuffled) - base
			if delta < 0 {
				delta = 0
			}
			return delta, nil
		})
	return out
}
