package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Pin forecasterWire's process-global gob id at init so serialized model
// bytes don't depend on encode order within the process (gob wire ids
// come from a global counter; see internal/dataset/gob_init.go).
func init() {
	if err := gob.NewEncoder(io.Discard).Encode(forecasterWire{}); err != nil {
		panic("nn: gob warm-up: " + err.Error())
	}
}

// forecasterWire is the gob wire form of a trained forecaster: the
// hyperparameters that fix the parameter layout, the flat parameter
// vector, and the normalization statistics fitted on the training set.
// carve() rebuilds the named views after decoding, so a loaded model's
// forward pass touches exactly the same float64 values as the trained
// one — predictions are byte-identical.
type forecasterWire struct {
	Cfg         Config
	M, H        int
	Params      []float64
	FeatMu      []float64
	FeatSigma   []float64
	YMu, YSigma float64
}

// GobEncode implements gob.GobEncoder, making trained forecasters
// persistable by internal/modelstore.
func (f *Forecaster) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(forecasterWire{
		Cfg:       f.cfg,
		M:         f.m,
		H:         f.h,
		Params:    f.params,
		FeatMu:    f.featMu,
		FeatSigma: f.featSigma,
		YMu:       f.yMu,
		YSigma:    f.ySigma,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (f *Forecaster) GobDecode(b []byte) error {
	var w forecasterWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	cfg := w.Cfg.withDefaults()
	d, p := cfg.EmbedDim, cfg.HiddenDim
	want := w.H*d + d + w.M*d + d*d + d*d + d + d*p + p + p + 1
	if w.M <= 0 || w.H <= 0 {
		return fmt.Errorf("nn: corrupt wire form: window %d×%d", w.M, w.H)
	}
	if len(w.Params) != want {
		return fmt.Errorf("nn: corrupt wire form: %d parameters, layout needs %d (m=%d h=%d d=%d p=%d)",
			len(w.Params), want, w.M, w.H, d, p)
	}
	if len(w.FeatMu) != w.H || len(w.FeatSigma) != w.H {
		return fmt.Errorf("nn: corrupt wire form: normalization stats cover %d/%d features, window has %d",
			len(w.FeatMu), len(w.FeatSigma), w.H)
	}
	f.cfg = cfg
	f.m, f.h = w.M, w.H
	f.params = w.Params
	f.featMu, f.featSigma = w.FeatMu, w.FeatSigma
	f.yMu, f.ySigma = w.YMu, w.YSigma
	f.carve()
	return nil
}

// WindowShape returns the fitted window geometry: m history steps of h
// features each — the input contract of Predict. Serving code validates
// request payloads against it.
func (f *Forecaster) WindowShape() (m, h int) { return f.m, f.h }
