package daemon

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"dragonvar/internal/core"
	"dragonvar/internal/modelstore"
	"dragonvar/internal/topology"
)

// testConfig is the smallest daemon that still seals windows and
// retrains: two short epochs on the small machine with fast training.
func testConfig(t *testing.T, stateDir string, store *modelstore.Store) Config {
	t.Helper()
	return Config{
		StateDir:     stateDir,
		Store:        store,
		Seed:         7,
		Machine:      topology.Small(),
		EpochDays:    3,
		WindowRuns:   4,
		RetrainEvery: 2,
		DriftFactor:  -1, // keep the unit test to the schedule path
		Fast:         true,
		MaxEpochs:    2,
		Logf:         t.Logf,
	}
}

func openStore(t *testing.T) (*modelstore.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

// dirBytes snapshots every regular file under root, keyed by relative
// path — the byte-identity comparison unit.
func dirBytes(t *testing.T, root string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		files[rel] = raw
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func sameFiles(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	for rel, w := range want {
		g, ok := got[rel]
		if !ok {
			t.Errorf("%s: %s missing from resumed run", label, rel)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: %s differs (%d vs %d bytes)", label, rel, len(w), len(g))
		}
	}
	for rel := range got {
		if _, ok := want[rel]; !ok {
			t.Errorf("%s: resumed run has extra file %s", label, rel)
		}
	}
}

func runToCompletion(t *testing.T, cfg Config) {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestKillResumeByteIdentity is the daemon's core contract: a daemon
// killed mid-window (and with its checkpoint tail torn, as a SIGKILL
// mid-append would leave it) resumes to the byte-identical stream,
// publish log, and model refs of a daemon that was never interrupted.
func TestKillResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full campaigns")
	}

	// Reference: uninterrupted run.
	refStore, _ := openStore(t)
	refState := filepath.Join(t.TempDir(), "state")
	runToCompletion(t, testConfig(t, refState, refStore))

	// Interrupted run: cancel mid-window partway through epoch 1, then
	// tear the checkpoint tail like a kill mid-append would.
	livStore, _ := openStore(t)
	livState := filepath.Join(t.TempDir(), "state")
	ctx, cancel := context.WithCancel(context.Background())
	cfg := testConfig(t, livState, livStore)
	cfg.afterIngest = func(total int64) {
		if total >= 6 {
			cancel()
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = d.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Run = %v, want context.Canceled", err)
	}
	if d.stream.TotalRuns() < 6 {
		t.Fatalf("cancel fired before 6 runs ingested (%d)", d.stream.TotalRuns())
	}
	d.Close()

	ckPath := filepath.Join(livState, "checkpoint.gob")
	raw, err := os.ReadFile(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume is the same call as starting fresh.
	cfg = testConfig(t, livState, livStore)
	runToCompletion(t, cfg)

	// The durable dataset is byte-identical: sealed segments, the WAL
	// (header + open-window runs), and the publish log. checkpoint.gob is
	// deliberately excluded — the resumed file holds extra replayed
	// records by design.
	sameFiles(t, "segments",
		dirBytes(t, filepath.Join(refState, "stream", "segments")),
		dirBytes(t, filepath.Join(livState, "stream", "segments")))
	for _, rel := range []string{filepath.Join("stream", "wal.gob"), "published.json"} {
		w, err := os.ReadFile(filepath.Join(refState, rel))
		if err != nil {
			t.Fatal(err)
		}
		g, err := os.ReadFile(filepath.Join(livState, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s differs (%d vs %d bytes)", rel, len(w), len(g))
		}
	}

	// The published model chain converged on identical content ids.
	dc := cfg.withDefaults()
	spec := core.ForecastSpec{M: dc.M, K: dc.K, Features: dc.Features}
	fRef, dRef, aRef := RefNames(dc.Dataset, dc.Seed, spec)
	for _, ref := range []string{fRef, dRef, aRef} {
		w, _, err := refStore.Resolve(ref)
		if err != nil {
			t.Fatalf("reference store %s: %v", ref, err)
		}
		g, _, err := livStore.Resolve(ref)
		if err != nil {
			t.Fatalf("resumed store %s: %v", ref, err)
		}
		if w != g {
			t.Errorf("ref %s: reference %s vs resumed %s", ref, w, g)
		}
	}

	// And the checkpointed counters agree.
	rd, err := New(testConfig(t, refState, refStore))
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	ld, err := New(testConfig(t, livState, livStore))
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()
	re, rs, rr, rdr := rd.Progress()
	le, ls, lr, ldr := ld.Progress()
	if re != le || rs != ls || rr != lr || rdr != ldr {
		t.Errorf("progress diverged: ref %d/%d/%d/%d vs resumed %d/%d/%d/%d",
			re, rs, rr, rdr, le, ls, lr, ldr)
	}
	if rr == 0 {
		t.Error("reference run never retrained — the test exercised nothing")
	}
}

// TestDaemonIdentityRefused: a state dir can only be resumed by the
// configuration that created it.
func TestDaemonIdentityRefused(t *testing.T) {
	st, _ := openStore(t)
	state := filepath.Join(t.TempDir(), "state")
	cfg := testConfig(t, state, st)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	other := cfg
	other.RetrainEvery = 3 // different schedule = different history
	if _, err := New(other); err == nil {
		t.Fatal("resume with a different retrain schedule succeeded, want refusal")
	}
}

func TestCheckpointTornTailHealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.gob")
	ck, p, err := openCheckpoint(path, "digest-a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 0 || p.Sealed != 0 {
		t.Fatalf("fresh checkpoint progress = %+v, want zero", p)
	}
	for i := 1; i <= 3; i++ {
		if err := ck.append(progress{Epoch: i, Sealed: i * 2}); err != nil {
			t.Fatal(err)
		}
	}
	ck.Close()

	// Tear the tail: the third record is lost, the second survives.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	ck, p, err = openCheckpoint(path, "digest-a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 2 || p.Sealed != 4 {
		t.Fatalf("healed progress = %+v, want epoch 2 sealed 4", p)
	}
	// The heal rewrote a clean file: appends keep working.
	if err := ck.append(progress{Epoch: 3, Sealed: 6}); err != nil {
		t.Fatal(err)
	}
	ck.Close()

	if _, _, err := openCheckpoint(path, "digest-b"); err == nil {
		t.Fatal("checkpoint opened under a different identity digest, want refusal")
	}
}
