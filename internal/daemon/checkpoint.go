package daemon

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Pin the checkpoint wire types' process-global gob ids before any
// runtime gob activity, so record bytes don't depend on whether this
// process decoded a WAL (resume) or started fresh. See
// internal/dataset/gob_init.go for the full rationale.
func init() {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range []any{checkpointHeader{}, progress{}} {
		if err := enc.Encode(v); err != nil {
			panic("daemon: gob warm-up: " + err.Error())
		}
	}
}

// The daemon checkpoint is an append-only file of CRC32C-framed gob
// records — the same framing as the dataset stream WAL and the dist
// checkpoint, kept local because the formats version independently. The
// first frame is a header binding the file to a config identity digest;
// every frame after it is one progress record, and the last valid record
// wins. A torn tail (the bytes a crash left behind mid-append) is healed
// on open by atomically rewriting the valid prefix.

const checkpointVersion = 1

// progress is one checkpoint record: everything the daemon needs to
// continue exactly where it stopped. Every field is a pure function of
// the run so far — no wall-clock, no pointers — so an interrupted and an
// uninterrupted daemon write identical record sequences.
type progress struct {
	// Epoch is the epoch currently (or next) being simulated; RunsBefore
	// is the stream's TotalRuns when that epoch started. Their difference
	// from the live stream total is the resume skip count.
	Epoch      int
	RunsBefore int64

	// Sealed counts window-seal events fully processed (drift evaluated,
	// record appended). The stream's own SealedSegments may be ahead of
	// it after a crash; reconcile() replays the difference.
	Sealed int

	// Retraining state. LastRetrainSeal is the Sealed value at the last
	// completed retrain; DriftPending latches a drift breach until the
	// retrain it triggers completes.
	Retrains        int
	DriftRetrains   int
	LastRetrainSeal int
	DriftPending    bool

	// TrainMAPE is the serving forecaster's MAPE on its own training
	// windows; LiveMAPEs is the rolling per-segment forecast MAPE window
	// the drift detector compares against it.
	TrainMAPE float64
	LiveMAPEs []float64

	// RefForecast/RefDeviation/RefAdvisor are the object IDs this daemon
	// last published under its store refs — the compare-and-swap expect
	// values for the next publish.
	RefForecast  string
	RefDeviation string
	RefAdvisor   string

	// Published is the full publish log, re-rendered to published.json
	// after every retrain. Kept in the record so the file is a pure
	// function of checkpointed state.
	Published []publication
}

// publication is one entry of the publish log.
type publication struct {
	Retrain   int     `json:"retrain"`
	Seal      int     `json:"seal"`
	Reason    string  `json:"reason"` // "scheduled" or "drift"
	TrainMAPE float64 `json:"train_mape"`
	Windows   int     `json:"windows"`
	Forecast  string  `json:"forecast"`
	Deviation string  `json:"deviation"`
	Advisor   string  `json:"advisor"`
}

type checkpointHeader struct {
	Version int
	Digest  string // StreamMeta-style config identity digest
}

var ckCRCTable = crc32.MakeTable(crc32.Castagnoli)

func ckAppendFrame(buf *bytes.Buffer, v any) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(payload.Len()))
	buf.Write(hdr[:n])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), ckCRCTable))
	buf.Write(crc[:])
	buf.Write(payload.Bytes())
	return nil
}

// ckParseFrames splits raw into whole valid frames and reports how many
// bytes of prefix they cover; anything past that is a torn tail.
func ckParseFrames(raw []byte) (frames [][]byte, valid int) {
	for {
		rest := raw[valid:]
		ln, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)) < uint64(n)+4+ln {
			return frames, valid
		}
		payload := rest[n+4 : uint64(n+4)+ln]
		want := binary.LittleEndian.Uint32(rest[n : n+4])
		if crc32.Checksum(payload, ckCRCTable) != want {
			return frames, valid
		}
		frames = append(frames, payload)
		valid += n + 4 + int(ln)
	}
}

func ckDecode(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// checkpoint is the open checkpoint file, positioned for appends.
type checkpoint struct {
	path string
	f    *os.File
}

// openCheckpoint opens (or creates) the checkpoint at path, validates its
// identity digest, heals any torn tail, and returns the last recorded
// progress. A fresh checkpoint returns the zero progress.
func openCheckpoint(path, digest string) (*checkpoint, progress, error) {
	var last progress
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		var buf bytes.Buffer
		if err := ckAppendFrame(&buf, checkpointHeader{Version: checkpointVersion, Digest: digest}); err != nil {
			return nil, last, fmt.Errorf("daemon: checkpoint header: %w", err)
		}
		if err := writeFileAtomic(path, buf.Bytes()); err != nil {
			return nil, last, err
		}
		raw = buf.Bytes()
	case err != nil:
		return nil, last, fmt.Errorf("daemon: checkpoint read: %w", err)
	}

	frames, valid := ckParseFrames(raw)
	if len(frames) == 0 {
		return nil, last, fmt.Errorf("daemon: checkpoint %s: no valid header frame", path)
	}
	var hdr checkpointHeader
	if err := ckDecode(frames[0], &hdr); err != nil {
		return nil, last, fmt.Errorf("daemon: checkpoint header: %w", err)
	}
	if hdr.Version != checkpointVersion {
		return nil, last, fmt.Errorf("daemon: checkpoint %s: version %d, want %d", path, hdr.Version, checkpointVersion)
	}
	if hdr.Digest != digest {
		return nil, last, fmt.Errorf("daemon: checkpoint %s was written by a different configuration (digest %s, want %s)", path, hdr.Digest, digest)
	}
	for _, fr := range frames[1:] {
		var p progress
		if err := ckDecode(fr, &p); err != nil {
			return nil, last, fmt.Errorf("daemon: checkpoint record: %w", err)
		}
		last = p
	}
	if valid < len(raw) {
		// Torn tail from a crash mid-append: heal by rewriting the valid
		// prefix so the file is clean before we append to it.
		if err := writeFileAtomic(path, raw[:valid]); err != nil {
			return nil, last, err
		}
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, last, fmt.Errorf("daemon: checkpoint open: %w", err)
	}
	return &checkpoint{path: path, f: f}, last, nil
}

// append durably records one progress frame. The fsync is the commit
// point: once append returns, a resume sees this record (or a later one).
func (c *checkpoint) append(p progress) error {
	var buf bytes.Buffer
	if err := ckAppendFrame(&buf, p); err != nil {
		return fmt.Errorf("daemon: checkpoint encode: %w", err)
	}
	if _, err := c.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("daemon: checkpoint append: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("daemon: checkpoint sync: %w", err)
	}
	return nil
}

func (c *checkpoint) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// writeFileAtomic writes data to path via a same-directory temp file,
// fsync, and rename, so readers only ever see complete contents.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("daemon: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("daemon: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	return nil
}
