// Package daemon implements dfvard's continuous-operation loop: an
// endless sequence of seeded campaign epochs whose completed runs stream
// into an append-only windowed dataset, with models retrained on a seal
// schedule (or early, on forecast drift) and published to a modelstore
// for live dfserved replicas to hot-reload.
//
// The loop is crash-safe and byte-deterministic: all durable state (the
// run stream's WAL and sealed segments, the CRC-framed progress
// checkpoint, the publish log) is a pure function of the seed and the
// configuration, and every step is either idempotent or replayed from
// the checkpoint on resume. A daemon SIGKILL'd at any instant and
// restarted produces byte-identical segments, publish log, and model
// refs to one that was never interrupted.
package daemon

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dragonvar/internal/advisor"
	"dragonvar/internal/apps"
	"dragonvar/internal/cluster"
	"dragonvar/internal/core"
	"dragonvar/internal/counters"
	"dragonvar/internal/dataset"
	"dragonvar/internal/modelstore"
	"dragonvar/internal/monitor"
	"dragonvar/internal/nn"
	"dragonvar/internal/rng"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// Config parameterizes a Daemon. StateDir and Store are required; every
// other field has a default. All fields except Workers, Monitor, and
// Logf are part of the daemon's identity digest — resuming a StateDir
// with a different identity is refused rather than silently diverging.
type Config struct {
	// StateDir holds the run stream (stream/), the progress checkpoint
	// (checkpoint.gob), and the publish log (published.json).
	StateDir string
	// Store is the modelstore retrained models are published to.
	Store *modelstore.Store

	// Campaign parameters, applied to every epoch. Each epoch e is an
	// independent campaign seeded from (Seed, e), so the endless workload
	// is reproducible from Seed alone.
	Seed      int64
	Machine   topology.Config // zero value: topology.Cori()
	Routing   string          // cluster routing policy name ("" = default)
	Placement string          // placement policy name ("" = "firstfit")
	FaultSpec string          // faults.Parse spec ("" = perfect machine)
	EpochDays float64         // simulated days per epoch (default 7)

	// Ingest window bounds (dataset.StreamMeta): a window seals at
	// WindowRuns runs, or earlier when WindowSpan campaign-clock seconds
	// would be exceeded (0 disables the span bound).
	WindowRuns int // default 16
	WindowSpan float64

	// RetrainEvery schedules a retrain every N sealed windows (default
	// 4). DriftFactor triggers an early retrain when the rolling mean of
	// the last DriftWindow per-segment forecast MAPEs exceeds
	// DriftFactor× the serving model's training MAPE (defaults 1.5 and
	// 3; DriftFactor <= 0 disables drift detection).
	RetrainEvery int
	DriftFactor  float64
	DriftWindow  int

	// Serving spec: which dataset's forecaster to train and the window
	// shape it serves, matching dfserved's flags so the published ref
	// names line up.
	Dataset  string              // default "AMG-128"
	M, K     int                 // defaults 5, 2
	Features counters.FeatureSet // zero value: app counters only
	// Fast selects the reduced training knobs (-fast in the CLIs).
	Fast bool

	// MaxEpochs stops the daemon after N epochs; 0 means run until the
	// context is cancelled.
	MaxEpochs int

	// Workers is the per-epoch campaign worker count (0 = automatic).
	// Not part of the identity digest: every worker count produces
	// byte-identical output.
	Workers int
	// Monitor, when non-nil, receives the live counter feed of every
	// epoch (and the daemon's own drift events).
	Monitor *monitor.Monitor
	// Logf, when non-nil, receives human-readable progress lines.
	Logf func(format string, args ...any)

	// afterIngest is a test hook called after every ingested run with
	// the stream's new total; tests use it to cancel mid-window.
	afterIngest func(total int64)
}

func (c Config) withDefaults() Config {
	if c.EpochDays <= 0 {
		c.EpochDays = 7
	}
	if c.WindowRuns <= 0 {
		c.WindowRuns = 16
	}
	if c.RetrainEvery <= 0 {
		c.RetrainEvery = 4
	}
	if c.DriftFactor == 0 {
		c.DriftFactor = 1.5
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 3
	}
	if c.Dataset == "" {
		c.Dataset = "AMG-128"
	}
	if c.M <= 0 {
		c.M = 5
	}
	if c.K <= 0 {
		c.K = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// streamMeta derives the run stream identity from the campaign
// parameters. The dataset skeleton comes from the same registry every
// epoch's cluster uses.
func (c Config) streamMeta() dataset.StreamMeta {
	ccfg := cluster.Config{Machine: c.Machine, Days: c.EpochDays, Seed: c.Seed,
		FaultSpec: c.FaultSpec, Placement: c.Placement}
	ccfg.Net.Routing = c.Routing
	routing, placement := ccfg.EffectivePolicies()
	meta := dataset.StreamMeta{
		Seed:       c.Seed,
		Days:       c.EpochDays,
		Faults:     c.FaultSpec,
		Routing:    routing,
		Placement:  placement,
		WindowRuns: c.WindowRuns,
		WindowSpan: c.WindowSpan,
	}
	for _, m := range apps.Registry() {
		meta.Datasets = append(meta.Datasets, dataset.DatasetInfo{
			Name: m.Name(), App: m.App.String(), Nodes: m.Nodes,
		})
	}
	return meta
}

// identityDigest binds the checkpoint to everything that shapes the
// daemon's deterministic output: the stream identity plus the machine,
// serving spec, and retraining schedule.
func (c Config) identityDigest(meta dataset.StreamMeta) string {
	// Fixed-order rendering, not gob: gob wire bytes embed process-global
	// type ids, so a resumed process (which decodes the WAL before
	// digesting) would hash different bytes than the process that wrote
	// the checkpoint header.
	h := sha256.New()
	fmt.Fprintf(h, "daemon-v1 stream=%s machine=%+v dataset=%q m=%d k=%d features=%q fast=%t retrain=%d driftf=%v driftw=%d",
		meta.Digest(), c.Machine, c.Dataset, c.M, c.K, c.Features.String(),
		c.Fast, c.RetrainEvery, c.DriftFactor, c.DriftWindow)
	return hex.EncodeToString(h.Sum(nil))
}

// RefNames derives the modelstore ref names the daemon publishes under —
// the exact scheme dfserved resolves, so a daemon and a serving replica
// pointed at the same store and spec meet on the same refs.
func RefNames(ds string, seed int64, spec core.ForecastSpec) (forecast, deviation, adv string) {
	slug := strings.ReplaceAll(spec.Features.String(), " + ", "+")
	forecast = fmt.Sprintf("forecast/%s/m%d-k%d-%s", ds, spec.M, spec.K, slug)
	deviation = fmt.Sprintf("deviation/%s", ds)
	adv = fmt.Sprintf("advisor/seed%d", seed)
	return
}

// daemonMetrics bundles the daemon's telemetry handles, captured once in
// New (nil/no-op when telemetry is disabled). Observation-only.
type daemonMetrics struct {
	epochs        *telemetry.Counter
	runs          *telemetry.Counter
	resumed       *telemetry.Counter
	retrains      *telemetry.Counter
	driftRetrains *telemetry.Counter
	publishes     *telemetry.Counter
	epochSecs     *telemetry.Histogram
	retrainSecs   *telemetry.Histogram
	liveMAPE      *telemetry.Gauge
	trainMAPE     *telemetry.Gauge
}

func newDaemonMetrics() daemonMetrics {
	return daemonMetrics{
		epochs:        telemetry.C(telemetry.MDaemonEpochs),
		runs:          telemetry.C(telemetry.MDaemonRunsIngested),
		resumed:       telemetry.C(telemetry.MDaemonResumedRuns),
		retrains:      telemetry.C(telemetry.MDaemonRetrains),
		driftRetrains: telemetry.C(telemetry.MDaemonDriftRetrains),
		publishes:     telemetry.C(telemetry.MDaemonPublishes),
		epochSecs:     telemetry.H(telemetry.MDaemonEpochSecs, telemetry.SecondsBuckets),
		retrainSecs:   telemetry.H(telemetry.MDaemonRetrainSecs, telemetry.SecondsBuckets),
		liveMAPE:      telemetry.G(telemetry.GDaemonLiveMAPE),
		trainMAPE:     telemetry.G(telemetry.GDaemonTrainMAPE),
	}
}

// Daemon is the continuous-operation loop. Not safe for concurrent use;
// Run drives everything from one goroutine.
type Daemon struct {
	cfg  Config
	spec core.ForecastSpec
	fo   core.ForecastOptions
	do   core.DeviationOptions

	fRef, dRef, aRef string

	stream *dataset.StreamWriter
	ck     *checkpoint
	p      progress

	// cur is the serving forecaster of retrain p.Retrains (nil before
	// the first retrain); the drift detector scores live segments with
	// it.
	cur *nn.Forecaster

	tm daemonMetrics
}

// New opens (or creates) the daemon state under cfg.StateDir, replays
// whatever a previous process left behind, and returns a Daemon ready to
// Run. Resuming after a kill is the same call as starting fresh.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("daemon: Config.StateDir is required")
	}
	if cfg.Store == nil {
		return nil, errors.New("daemon: Config.Store is required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	meta := cfg.streamMeta()
	stream, err := dataset.OpenStream(filepath.Join(cfg.StateDir, "stream"), meta)
	if err != nil {
		return nil, err
	}
	ck, p, err := openCheckpoint(filepath.Join(cfg.StateDir, "checkpoint.gob"), cfg.identityDigest(meta))
	if err != nil {
		stream.Close()
		return nil, err
	}

	d := &Daemon{cfg: cfg, stream: stream, ck: ck, p: p, tm: newDaemonMetrics()}
	d.spec = core.ForecastSpec{M: cfg.M, K: cfg.K, Features: cfg.Features}
	if cfg.Fast {
		d.fo.NN = nn.Config{EmbedDim: 8, HiddenDim: 16, Epochs: 10, BatchSize: 16,
			LearningRate: 0.01, UseAttention: true, MaxSamples: 400}
		d.do.MaxSamples = 800
	}
	d.fRef, d.dRef, d.aRef = RefNames(cfg.Dataset, cfg.Seed, d.spec)

	if p.Retrains > 0 {
		// Reload the serving forecaster the checkpoint says we published
		// last. If the process died between a publish and its checkpoint
		// record, the ref may briefly be one retrain ahead; reconcile()
		// re-runs that retrain deterministically and overwrites cur
		// before anything reads it.
		f, _, err := cfg.Store.GetForecaster(d.fRef)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("daemon: resume: serving forecaster %s: %w", d.fRef, err)
		}
		d.cur = f
	}
	return d, nil
}

// Close releases the stream and checkpoint handles. The state directory
// can be reopened later.
func (d *Daemon) Close() error {
	err := d.stream.Close()
	if cerr := d.ck.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stream exposes the underlying run stream (read-only use: totals,
// segment counts). Tests and the CLI status line read it.
func (d *Daemon) Stream() *dataset.StreamWriter { return d.stream }

// Progress returns a snapshot of the daemon's checkpointed counters.
func (d *Daemon) Progress() (epoch, sealed, retrains, driftRetrains int) {
	return d.p.Epoch, d.p.Sealed, d.p.Retrains, d.p.DriftRetrains
}

// reconcile replays whatever the last process observed durably but never
// checkpointed: a retrain the predicate still demands, and seal events
// the stream persisted that the checkpoint hasn't seen. Both replays are
// deterministic, and the publishes they repeat are idempotent under
// compare-and-swap, so reconciling after a crash converges on exactly
// the uninterrupted history.
func (d *Daemon) reconcile(ctx context.Context) error {
	if err := d.maybeRetrain(ctx); err != nil {
		return err
	}
	for i := d.p.Sealed; i < d.stream.SealedSegments(); i++ {
		seg, err := d.stream.Segment(i)
		if err != nil {
			return err
		}
		d.cfg.Logf("daemon: reconcile: replaying seal of segment %d", i)
		if err := d.onSeal(ctx, seg); err != nil {
			return err
		}
	}
	return nil
}

// Run drives the loop: reconcile, then epochs until MaxEpochs or context
// cancellation. Returns the context error on cancellation — state is
// durable either way, and a later Run continues where this one stopped.
func (d *Daemon) Run(ctx context.Context) error {
	if err := d.reconcile(ctx); err != nil {
		return err
	}
	for d.cfg.MaxEpochs == 0 || d.p.Epoch < d.cfg.MaxEpochs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := d.runEpoch(ctx); err != nil {
			return err
		}
	}
	d.cfg.Logf("daemon: reached max epochs (%d), stopping", d.cfg.MaxEpochs)
	return nil
}

// epochSeed derives epoch e's campaign seed from the daemon seed.
func (d *Daemon) epochSeed(e int) int64 {
	return rng.NewLabeled(d.cfg.Seed, fmt.Sprintf("dfvard-epoch-%d", e)).Int63()
}

// runEpoch simulates the current epoch's campaign, streaming every
// merged run into the ingest window. On resume the first runs of the
// epoch were already ingested before the kill; they re-simulate
// byte-identically and are skipped by count.
func (d *Daemon) runEpoch(ctx context.Context) error {
	e := d.p.Epoch
	start := time.Now()
	ctx, span := telemetry.Start(ctx, telemetry.SpanDaemonEpoch)
	defer span.End()
	defer d.tm.epochSecs.ObserveSince(start)

	skip := d.stream.TotalRuns() - d.p.RunsBefore
	if skip > 0 {
		d.cfg.Logf("daemon: epoch %d: resuming, skipping %d already-ingested runs", e, skip)
		d.tm.resumed.Add(skip)
	}
	d.cfg.Logf("daemon: epoch %d: simulating %g days (seed %d)", e, d.cfg.EpochDays, d.cfg.Seed)

	var seen int64
	var ingestErr error
	ccfg := cluster.Config{
		Machine:   d.cfg.Machine,
		Days:      d.cfg.EpochDays,
		Seed:      d.epochSeed(e),
		FaultSpec: d.cfg.FaultSpec,
		Placement: d.cfg.Placement,
		Workers:   d.cfg.Workers,
		OnRunMerged: func(run *dataset.Run) {
			if ingestErr != nil {
				return
			}
			seen++
			if seen <= skip {
				return
			}
			sealed, err := d.stream.Append(run)
			if err != nil {
				ingestErr = err
				return
			}
			d.tm.runs.Inc()
			for _, seg := range sealed {
				if err := d.onSeal(ctx, seg); err != nil {
					ingestErr = err
					return
				}
			}
			if d.cfg.afterIngest != nil {
				d.cfg.afterIngest(d.stream.TotalRuns())
			}
		},
	}
	ccfg.Net.Routing = d.cfg.Routing
	if d.cfg.Monitor != nil {
		ccfg.Monitor = d.cfg.Monitor
	}

	cl, err := cluster.New(ccfg)
	if err != nil {
		return fmt.Errorf("daemon: epoch %d: %w", e, err)
	}
	_, runErr := cl.RunCampaignCtx(ctx)
	if ingestErr != nil {
		return fmt.Errorf("daemon: epoch %d ingest: %w", e, ingestErr)
	}
	if runErr != nil {
		return fmt.Errorf("daemon: epoch %d: %w", e, runErr)
	}

	d.p.Epoch = e + 1
	d.p.RunsBefore = d.stream.TotalRuns()
	if err := d.ck.append(d.p); err != nil {
		return err
	}
	d.tm.epochs.Inc()
	d.cfg.Logf("daemon: epoch %d done: %d runs total, %d segments sealed", e, d.p.RunsBefore, d.p.Sealed)
	return nil
}

// onSeal processes one sealed window: score it for drift, checkpoint,
// and retrain if the schedule (or a drift breach) demands it. The
// checkpoint append is the commit point — a crash before it replays this
// seal on resume, a crash after it doesn't.
func (d *Daemon) onSeal(ctx context.Context, seg *dataset.Segment) error {
	d.p.Sealed++
	if d.cur != nil && d.cfg.DriftFactor > 0 {
		if mape := d.liveMAPE(seg); !math.IsNaN(mape) {
			d.p.LiveMAPEs = append(d.p.LiveMAPEs, mape)
			if len(d.p.LiveMAPEs) > d.cfg.DriftWindow {
				d.p.LiveMAPEs = d.p.LiveMAPEs[len(d.p.LiveMAPEs)-d.cfg.DriftWindow:]
			}
			live := mean(d.p.LiveMAPEs)
			d.tm.liveMAPE.Set(live)
			if !d.p.DriftPending && len(d.p.LiveMAPEs) >= d.cfg.DriftWindow &&
				d.p.TrainMAPE > 0 && live > d.cfg.DriftFactor*d.p.TrainMAPE {
				d.p.DriftPending = true
				d.cfg.Logf("daemon: drift detected at segment %d: live MAPE %.4f > %.2f x train MAPE %.4f",
					seg.Index, live, d.cfg.DriftFactor, d.p.TrainMAPE)
				if d.cfg.Monitor != nil {
					t := 0.0
					if n := len(seg.Runs); n > 0 {
						t = seg.Runs[n-1].Start
					}
					d.cfg.Monitor.Emit(monitor.Event{
						T: t, Type: monitor.EventModelDrift, Router: -1, Group: -1,
						LiveMAPE: live, TrainMAPE: d.p.TrainMAPE,
					})
				}
			}
		}
	}
	if err := d.ck.append(d.p); err != nil {
		return err
	}
	return d.maybeRetrain(ctx)
}

// maybeRetrain evaluates the retraining predicate on checkpointed state
// only — the same decision falls out on replay as fell out live.
func (d *Daemon) maybeRetrain(ctx context.Context) error {
	if d.p.Sealed == 0 {
		return nil
	}
	scheduled := d.p.Sealed-d.p.LastRetrainSeal >= d.cfg.RetrainEvery
	if !scheduled && !d.p.DriftPending {
		return nil
	}
	reason := "scheduled"
	if d.p.DriftPending {
		reason = "drift"
	}
	return d.retrain(ctx, reason)
}

// retrain trains forecaster, deviation model, and advisor on every
// sealed window, publishes all three under compare-and-swap, and
// advances the checkpoint. Training input is AssembleSealed — never the
// open window — so an interrupted and an uninterrupted daemon train on
// identical bytes.
func (d *Daemon) retrain(ctx context.Context, reason string) error {
	start := time.Now()
	_, span := telemetry.Start(ctx, telemetry.SpanDaemonRetrain)
	defer span.End()
	defer d.tm.retrainSecs.ObserveSince(start)
	span.SetAttr("reason", reason)
	span.SetAttr("retrain", fmt.Sprintf("%d", d.p.Retrains))

	camp, err := d.stream.AssembleSealed()
	if err != nil {
		return err
	}
	ds := camp.Get(d.cfg.Dataset)
	if ds == nil {
		return fmt.Errorf("daemon: dataset %q not in stream (have %d datasets)", d.cfg.Dataset, len(camp.Datasets))
	}
	windows := ds.BuildWindowsGap(d.spec.Features, d.spec.M, d.spec.K, d.fo.Gaps)
	if len(ds.Runs) == 0 || len(windows) == 0 {
		// Not enough sealed data for this dataset yet: postpone. The
		// predicate stays armed, so the retrain fires on the first seal
		// that provides windows — deterministically, since this check is
		// a pure function of the sealed segments.
		d.cfg.Logf("daemon: retrain postponed at seal %d: no %s windows sealed yet", d.p.Sealed, d.cfg.Dataset)
		return nil
	}

	k := d.p.Retrains
	tseed := rng.NewLabeled(d.cfg.Seed, fmt.Sprintf("dfvard-retrain-%d", k)).Int63()
	d.cfg.Logf("daemon: retrain %d (%s) at seal %d: %d runs, %d windows",
		k, reason, d.p.Sealed, len(ds.Runs), len(windows))

	model, nwin, err := core.TrainServingForecaster(ds, d.spec, d.fo, tseed)
	if err != nil {
		return fmt.Errorf("daemon: retrain %d: %w", k, err)
	}
	trainMAPE := model.MAPE(forecastSamples(windows))
	gm, _, err := core.TrainServingDeviation(ds, d.do, tseed)
	if err != nil {
		return fmt.Errorf("daemon: retrain %d: %w", k, err)
	}
	adv := advisor.Train(camp, advisor.Options{})

	_, pubSpan := telemetry.Start(ctx, telemetry.SpanDaemonPublish)
	fid, err := d.cfg.Store.PutForecasterCAS(d.fRef, modelstore.Meta{
		Dataset: d.cfg.Dataset, Seed: d.cfg.Seed, Spec: d.spec.String(),
		M: d.spec.M, K: d.spec.K, FeatureNames: d.spec.Features.Names(),
	}, model, d.p.RefForecast)
	if err == nil {
		d.tm.publishes.Inc()
		var did string
		did, err = d.cfg.Store.PutGBRCAS(d.dRef, modelstore.Meta{
			Dataset: d.cfg.Dataset, Seed: d.cfg.Seed,
			FeatureNames: core.DeviationFeatureNames(),
		}, gm, d.p.RefDeviation)
		if err == nil {
			d.tm.publishes.Inc()
			var aid string
			aid, err = d.cfg.Store.PutAdvisorCAS(d.aRef, modelstore.Meta{Seed: d.cfg.Seed}, adv, d.p.RefAdvisor)
			if err == nil {
				d.tm.publishes.Inc()
				d.p.RefForecast, d.p.RefDeviation, d.p.RefAdvisor = fid, did, aid
			}
		}
	}
	pubSpan.End()
	if err != nil {
		var moved *modelstore.RefMovedError
		if errors.As(err, &moved) {
			return fmt.Errorf("daemon: retrain %d: %w (another publisher owns this store; refusing to clobber)", k, err)
		}
		return fmt.Errorf("daemon: retrain %d publish: %w", k, err)
	}

	wasDrift := d.p.DriftPending
	d.p.Retrains = k + 1
	d.p.LastRetrainSeal = d.p.Sealed
	d.p.DriftPending = false
	if wasDrift {
		d.p.DriftRetrains++
	}
	d.p.TrainMAPE = trainMAPE
	d.p.LiveMAPEs = nil
	d.p.Published = append(d.p.Published, publication{
		Retrain: k, Seal: d.p.Sealed, Reason: reason, TrainMAPE: trainMAPE,
		Windows: nwin, Forecast: d.p.RefForecast, Deviation: d.p.RefDeviation,
		Advisor: d.p.RefAdvisor,
	})
	if err := d.writePublishLog(); err != nil {
		return err
	}
	if err := d.ck.append(d.p); err != nil {
		return err
	}
	d.cur = model
	d.tm.retrains.Inc()
	if wasDrift {
		d.tm.driftRetrains.Inc()
	}
	d.tm.trainMAPE.Set(trainMAPE)
	d.cfg.Logf("daemon: retrain %d published: forecast=%s train MAPE %.4f (%d windows, blamed %d users)",
		k, short(d.p.RefForecast), trainMAPE, nwin, len(adv.Blamed()))
	return nil
}

// writePublishLog re-renders published.json from the checkpointed
// publish history. Atomic and byte-deterministic (no timestamps).
func (d *Daemon) writePublishLog() error {
	data, err := json.MarshalIndent(d.p.Published, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: publish log: %w", err)
	}
	return writeFileAtomic(filepath.Join(d.cfg.StateDir, "published.json"), append(data, '\n'))
}

// liveMAPE scores the serving forecaster on the windows of one freshly
// sealed segment — the live half of the drift comparison. NaN when the
// segment holds no scorable windows of the serving dataset.
func (d *Daemon) liveMAPE(seg *dataset.Segment) float64 {
	var runs []*dataset.Run
	for _, r := range seg.Runs {
		if r.Dataset == d.cfg.Dataset {
			runs = append(runs, r)
		}
	}
	if len(runs) == 0 {
		return math.NaN()
	}
	tmp := &dataset.Dataset{Name: d.cfg.Dataset, Runs: runs}
	windows := tmp.BuildWindowsGap(d.spec.Features, d.spec.M, d.spec.K, d.fo.Gaps)
	if len(windows) == 0 {
		return math.NaN()
	}
	return d.cur.MAPE(forecastSamples(windows))
}

func forecastSamples(windows []dataset.Window) []nn.Sample {
	samples := make([]nn.Sample, len(windows))
	for i, w := range windows {
		samples[i] = nn.Sample{Steps: w.Steps, Target: w.Target}
	}
	return samples
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
