package apps

import (
	"math"
	"testing"
	"testing/quick"

	"dragonvar/internal/mpi"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

func smallMachine(t *testing.T) *topology.Dragonfly {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func place(t *testing.T, d *topology.Dragonfly, n int) []topology.NodeID {
	t.Helper()
	knl := d.ComputeNodes(topology.KNL)
	if len(knl) < n {
		t.Fatalf("machine has %d KNL nodes, need %d", len(knl), n)
	}
	return knl[:n]
}

func TestRegistryMatchesTable1(t *testing.T) {
	reg := Registry()
	if len(reg) != 6 {
		t.Fatalf("registry has %d datasets, Table I has 6", len(reg))
	}
	type row struct {
		app   App
		nodes int
		steps int
	}
	want := []row{
		{AMG, 128, 20}, {AMG, 512, 20},
		{MILC, 128, 80}, {MILC, 512, 80},
		{MiniVite, 128, 6}, {UMT, 128, 7},
	}
	for i, w := range want {
		m := reg[i]
		if m.App != w.app || m.Nodes != w.nodes || m.Steps != w.steps {
			t.Fatalf("row %d = %s/%d/%d steps, want %v/%d/%d", i, m.App, m.Nodes, m.Steps, w.app, w.nodes, w.steps)
		}
		if m.InputParams == "" || m.Version == "" {
			t.Fatalf("row %d missing Table I metadata", i)
		}
		if m.RanksPerNode != 64 {
			t.Fatalf("row %d: paper uses 64 of 68 KNL cores, got %d", i, m.RanksPerNode)
		}
		var mixSum float64
		for _, v := range m.RoutineMix {
			mixSum += v
		}
		if math.Abs(mixSum-1) > 1e-9 {
			t.Fatalf("%s routine mix sums to %v", m.Name(), mixSum)
		}
		if m.MPIFraction <= 0 || m.MPIFraction >= 1 {
			t.Fatalf("%s MPI fraction %v out of range", m.Name(), m.MPIFraction)
		}
	}
}

func TestMPIFractionsMatchPaper(t *testing.T) {
	// §III-B: AMG 76/82%, MILC 89%, miniVite 98%, UMT 30%
	cases := map[string]float64{
		"AMG-128": 0.76, "AMG-512": 0.82,
		"MILC-128": 0.89, "MILC-512": 0.89,
		"miniVite-128": 0.98, "UMT-128": 0.30,
	}
	for _, m := range Registry() {
		want, ok := cases[m.Name()]
		if !ok {
			t.Fatalf("unexpected dataset %s", m.Name())
		}
		if math.Abs(m.MPIFraction-want) > 1e-9 {
			t.Errorf("%s MPI fraction = %v, want %v", m.Name(), m.MPIFraction, want)
		}
	}
}

func TestDominantRoutinesMatchPaper(t *testing.T) {
	// §III-B names the dominant routines per app.
	top := func(m *Model) mpi.Routine {
		return m.RoutineMix.Dominant()[0].Routine
	}
	if r := top(Find(MiniVite, 128)); r != mpi.Waitall {
		t.Errorf("miniVite dominant routine = %v, want Waitall", r)
	}
	if r := top(Find(UMT, 128)); r != mpi.Allreduce && r != mpi.Wait && r != mpi.Barrier {
		t.Errorf("UMT dominant routine = %v, want Allreduce/Barrier/Wait", r)
	}
	amg := Find(AMG, 128).RoutineMix
	for _, r := range []mpi.Routine{mpi.Iprobe, mpi.Test, mpi.Testall, mpi.Waitall, mpi.Allreduce} {
		if amg[r] <= 0 {
			t.Errorf("AMG routine %v missing from mix", r)
		}
	}
	milc := Find(MILC, 128).RoutineMix
	for _, r := range []mpi.Routine{mpi.Allreduce, mpi.Wait, mpi.Isend, mpi.Irecv} {
		if milc[r] <= 0 {
			t.Errorf("MILC routine %v missing from mix", r)
		}
	}
}

func TestFind(t *testing.T) {
	if Find(AMG, 512) == nil || Find(MILC, 128) == nil {
		t.Fatal("Find failed for existing datasets")
	}
	if Find(UMT, 512) != nil {
		t.Fatal("UMT-512 should not exist (paper ran UMT on 128 nodes only)")
	}
}

func TestAppString(t *testing.T) {
	if AMG.String() != "AMG" || MiniVite.String() != "miniVite" {
		t.Fatal("app names wrong")
	}
	if App(42).String() != "App(42)" {
		t.Fatal("out-of-range app name should be diagnostic")
	}
}

func TestMILCWarmupSteps(t *testing.T) {
	m := Find(MILC, 128)
	// first 20 steps are much faster warmup trajectories (Fig 3 middle)
	if m.BaseStep(5) >= m.BaseStep(30) {
		t.Fatal("MILC warmup steps should be faster than main steps")
	}
	if m.VolumeFactor(5) >= m.VolumeFactor(30) {
		t.Fatal("MILC warmup traffic should be lighter")
	}
	if m.BaseStep(20) != m.BaseStep(79) {
		t.Fatal("main trajectory steps should be flat")
	}
}

func TestMiniViteDecreasingSteps(t *testing.T) {
	m := Find(MiniVite, 128)
	for s := 1; s < m.Steps; s++ {
		if m.BaseStep(s) > m.BaseStep(s-1) {
			t.Fatal("miniVite step times should not increase")
		}
	}
}

func TestUMTIncreasingSteps(t *testing.T) {
	m := Find(UMT, 128)
	for s := 1; s < m.Steps; s++ {
		if m.BaseStep(s) <= m.BaseStep(s-1) {
			t.Fatal("UMT step times should increase")
		}
	}
}

func TestTotalBaseTimeInPaperRange(t *testing.T) {
	// §III-B: executions restricted to roughly five to ten minutes
	for _, m := range Registry() {
		total := m.TotalBaseTime()
		if total < 4.5*60 || total > 13*60 {
			t.Errorf("%s total base time %.0fs outside the 5-10 minute ballpark", m.Name(), total)
		}
	}
}

func TestInstantiateAndStepFlows(t *testing.T) {
	d := smallMachine(t)
	m := Find(AMG, 128)
	nodes := place(t, d, 128)
	inst, err := m.Instantiate(d, nodes, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	flows := inst.StepFlows(0, nil)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var flits, pkts float64
	for _, f := range flows {
		flits += f.Flits
		pkts += f.Packets
		if f.Flits < 0 || f.Packets < 0 {
			t.Fatal("negative flow volume")
		}
	}
	if flits <= 0 || pkts <= 0 {
		t.Fatal("zero traffic")
	}
	// AMG: small messages, so messages per byte is high
	msgSize := flits * mpi.FlitBytes / pkts
	if msgSize > 2048 {
		t.Fatalf("AMG effective message size %v bytes, expected small", msgSize)
	}
}

func TestInstantiateWrongNodeCount(t *testing.T) {
	d := smallMachine(t)
	m := Find(AMG, 128)
	if _, err := m.Instantiate(d, place(t, d, 64), rng.New(1)); err == nil {
		t.Fatal("expected node-count mismatch error")
	}
}

func TestMILCMessagesAreLarge(t *testing.T) {
	d := smallMachine(t)
	amg, err := Find(AMG, 128).Instantiate(d, place(t, d, 128), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	milc, err := Find(MILC, 128).Instantiate(d, place(t, d, 128), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(inst *Instance) float64 {
		flows := inst.StepFlows(30, nil)
		var flits, pkts float64
		for _, f := range flows {
			flits += f.Flits
			pkts += f.Packets
		}
		return flits / pkts // flits per message
	}
	if ratio(milc) < 10*ratio(amg) {
		t.Fatalf("MILC messages should be much larger than AMG's: milc=%v amg=%v flits/msg",
			ratio(milc), ratio(amg))
	}
}

func TestStepTimeIdleMatchesBase(t *testing.T) {
	d := smallMachine(t)
	m := Find(UMT, 128)
	inst, err := m.Instantiate(d, place(t, d, 128), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(4)
	res := inst.StepTime(0, 1.0, s)
	base := m.BaseStep(0)
	if res.Total < base*0.8 || res.Total > base*1.2 {
		t.Fatalf("idle step time %v far from base %v", res.Total, base)
	}
	// profile total + compute = step total
	if math.Abs(res.Compute+res.MPI.Total()-res.Total) > 1e-9 {
		t.Fatal("profile does not account for step time")
	}
	// UMT: ~30% MPI on an idle machine
	frac := res.MPI.Total() / res.Total
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("UMT idle MPI fraction = %v", frac)
	}
}

func TestStepTimeContentionHitsMPIOnly(t *testing.T) {
	d := smallMachine(t)
	m := Find(MILC, 128)
	inst, err := m.Instantiate(d, place(t, d, 128), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	idle := inst.StepTime(30, 1.0, rng.New(7))
	busy := inst.StepTime(30, 2.0, rng.New(7))
	if busy.MPI.Total() <= idle.MPI.Total()*1.5 {
		t.Fatalf("2x slowdown should inflate MPI time: idle %v busy %v", idle.MPI.Total(), busy.MPI.Total())
	}
	// compute time is unaffected by network contention (no OS noise story)
	if math.Abs(busy.Compute-idle.Compute) > idle.Compute*0.1 {
		t.Fatalf("compute time should not react to congestion: %v vs %v", idle.Compute, busy.Compute)
	}
}

func TestUMTAmplifiesContention(t *testing.T) {
	d := smallMachine(t)
	umt, err := Find(UMT, 128).Instantiate(d, place(t, d, 128), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	milc, err := Find(MILC, 128).Instantiate(d, place(t, d, 128), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	rel := func(inst *Instance, step int) float64 {
		idle := inst.StepTime(step, 1.0, rng.New(9))
		busy := inst.StepTime(step, 1.5, rng.New(9))
		return busy.MPI.Total() / idle.MPI.Total()
	}
	if rel(umt, 0) <= rel(milc, 30) {
		t.Fatal("UMT's latency-critical collectives should amplify contention more than MILC")
	}
}

func TestStepTimeSlowdownBelowOneClamped(t *testing.T) {
	d := smallMachine(t)
	inst, err := Find(AMG, 128).Instantiate(d, place(t, d, 128), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a := inst.StepTime(0, 0.5, rng.New(5))
	b := inst.StepTime(0, 1.0, rng.New(5))
	if math.Abs(a.Total-b.Total) > 1e-9 {
		t.Fatal("slowdown below 1 should clamp to 1")
	}
}

func TestRunFactorVariesAcrossRuns(t *testing.T) {
	d := smallMachine(t)
	m := Find(AMG, 128)
	nodes := place(t, d, 128)
	i1, _ := m.Instantiate(d, nodes, rng.New(1))
	i2, _ := m.Instantiate(d, nodes, rng.New(2))
	if i1.StepDuration(0) == i2.StepDuration(0) {
		t.Fatal("different runs should have different run factors")
	}
}

func TestFactorDims(t *testing.T) {
	cases := []struct {
		n, d int
	}{
		{8192, 3}, {8192, 4}, {32768, 3}, {32768, 4}, {64, 3}, {60, 4}, {1, 3}, {17, 2},
	}
	for _, tc := range cases {
		dims, err := FactorDims(tc.n, tc.d)
		if err != nil {
			t.Fatalf("FactorDims(%d,%d): %v", tc.n, tc.d, err)
		}
		prod := 1
		for _, v := range dims {
			prod *= v
		}
		if prod != tc.n {
			t.Fatalf("FactorDims(%d,%d) = %v, product %d", tc.n, tc.d, dims, prod)
		}
		// descending
		for i := 1; i < len(dims); i++ {
			if dims[i] > dims[i-1] {
				t.Fatalf("dims not sorted: %v", dims)
			}
		}
	}
	if _, err := FactorDims(0, 3); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestFactorDimsBalancedPowersOfTwo(t *testing.T) {
	f := func(exp uint8) bool {
		e := int(exp%14) + 2
		n := 1 << e
		dims, err := FactorDims(n, 4)
		if err != nil {
			return false
		}
		// max/min ratio at most 2x per balanced power-of-two split
		return dims[0] <= dims[3]*4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternSpansGroupsWhenPlacementDoes(t *testing.T) {
	d := smallMachine(t)
	m := Find(MiniVite, 128)
	nodes := place(t, d, 128) // contiguous KNL nodes span multiple groups on Small
	inst, err := m.Instantiate(d, nodes, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	groups := map[topology.GroupID]bool{}
	for _, f := range inst.StepFlows(0, nil) {
		groups[d.Group(f.Src)] = true
	}
	if len(groups) < 2 {
		t.Fatal("placement spans groups but traffic does not")
	}
}
