// Package apps models the four applications of the paper's controlled
// experiments (§III-A/B, Table I): AMG, MILC, miniVite, and UMT. Each model
// captures what the analyses depend on:
//
//   - the mean time-per-step curve (Figure 3) — every run shares a
//     discernible mean behaviour that individual runs deviate from;
//   - the compute/MPI split and the dominant MPI routines (Figures 4, 5);
//   - the communication pattern and volume, which determine how the job
//     loads the network and which congestion mechanism (endpoint packet
//     processing vs. link bandwidth) throttles it — AMG sends a large
//     number of small messages, MILC large 4D-stencil point-to-point
//     messages, miniVite bulk irregular exchanges, UMT latency-critical
//     collectives;
//   - the sensitivity of MPI time to network contention, which produces
//     the run-to-run variability the paper studies.
package apps

import (
	"fmt"
	"math"

	"dragonvar/internal/mpi"
	"dragonvar/internal/netsim"
	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// App identifies one of the studied applications.
type App int

const (
	AMG App = iota
	MILC
	MiniVite
	UMT

	// NumApps is the number of modeled applications.
	NumApps int = iota
)

var appNames = [NumApps]string{"AMG", "MILC", "miniVite", "UMT"}

// String returns the application name as used in the paper.
func (a App) String() string {
	if a < 0 || int(a) >= NumApps {
		return fmt.Sprintf("App(%d)", int(a))
	}
	return appNames[a]
}

// PatternKind selects how a model's rank-level communication is expanded
// into router-level traffic.
type PatternKind int

const (
	// Stencil3D is AMG's structured neighbor exchange.
	Stencil3D PatternKind = iota
	// Stencil4D is MILC's 4D lattice halo exchange.
	Stencil4D
	// Irregular is miniVite's unstructured graph exchange.
	Irregular
	// SweepCollective is UMT's transport sweep plus heavy collectives.
	SweepCollective
)

// Model is one application/node-count configuration — one row of Table I,
// and therefore one of the paper's six datasets.
type Model struct {
	App          App
	Version      string
	Nodes        int
	RanksPerNode int
	InputParams  string // the exact input column of Table I
	Steps        int    // recorded time steps per run

	// BaseStep returns the contention-free time of a step in seconds; the
	// mean trend of Figure 3 is this curve (plus the mean congestion of the
	// machine).
	BaseStep func(step int) float64

	// VolumeFactor scales the step's traffic relative to a nominal step;
	// warmup steps inject less (MILC's first 20 trajectories).
	VolumeFactor func(step int) float64

	// MPIFraction is the share of an uncongested step spent in MPI
	// (§III-B: 0.76–0.82 for AMG, 0.89 MILC, 0.98 miniVite, 0.30 UMT).
	MPIFraction float64

	// RoutineMix is the relative distribution of MPI time over routines;
	// entries sum to 1.
	RoutineMix mpi.Profile

	// BytesPerNode is the per-node traffic volume of a nominal step.
	BytesPerNode float64
	// MsgBytes is the typical message size; together with BytesPerNode it
	// fixes the message rate, and thereby whether the app is endpoint- or
	// bandwidth-limited.
	MsgBytes float64
	// ReqFraction is the share of flits on request VCs.
	ReqFraction float64
	// IOBytesPerNode is per-step filesystem traffic (to I/O routers).
	IOBytesPerNode float64

	// Sensitivity multiplies the network slowdown's effect on MPI time.
	// Latency-critical collectives (UMT) amplify small contention delays:
	// every rank waits for the slowest message.
	Sensitivity float64

	// ComputeNoise is the relative std of compute time (OS noise is small
	// on Cori: 4 of 68 cores are set aside for daemons).
	ComputeNoise float64
	// StepNoise is the relative std of per-step bursty MPI-time variation
	// (independent across steps). Forecasting over larger k amortizes it —
	// the mechanism behind §V-C's "larger values of k allow bursty
	// performance changes per time step to be amortized".
	StepNoise float64
	// RunNoise is the std of the per-run lognormal factor modeling
	// input/placement-specific effects common to all steps of one run.
	RunNoise float64

	Pattern         PatternKind
	IrregularFanout int // for Irregular / SweepCollective patterns
}

// Name returns the dataset label, e.g. "AMG-512".
func (m *Model) Name() string { return fmt.Sprintf("%s-%d", m.App, m.Nodes) }

// NumRanks returns the total MPI ranks of the configuration.
func (m *Model) NumRanks() int { return m.Nodes * m.RanksPerNode }

// TotalBaseTime returns the contention-free run time (sum over steps).
func (m *Model) TotalBaseTime() float64 {
	var s float64
	for i := 0; i < m.Steps; i++ {
		s += m.BaseStep(i)
	}
	return s
}

// Registry returns the six dataset configurations of Table I, in the
// paper's row order.
func Registry() []*Model {
	amgMix := mpi.Profile{}
	amgMix[mpi.Iprobe] = 0.22
	amgMix[mpi.Test] = 0.16
	amgMix[mpi.Testall] = 0.12
	amgMix[mpi.Waitall] = 0.27
	amgMix[mpi.Allreduce] = 0.18
	amgMix[mpi.Other] = 0.05

	milcMix := mpi.Profile{}
	milcMix[mpi.Allreduce] = 0.24
	milcMix[mpi.Wait] = 0.31
	milcMix[mpi.Isend] = 0.20
	milcMix[mpi.Irecv] = 0.20
	milcMix[mpi.Other] = 0.05

	vitMix := mpi.Profile{}
	vitMix[mpi.Waitall] = 0.90
	vitMix[mpi.Irecv] = 0.04
	vitMix[mpi.Isend] = 0.03
	vitMix[mpi.Other] = 0.03

	umtMix := mpi.Profile{}
	umtMix[mpi.Allreduce] = 0.33
	umtMix[mpi.Barrier] = 0.24
	umtMix[mpi.Wait] = 0.31
	umtMix[mpi.Waitall] = 0.07
	umtMix[mpi.Other] = 0.05

	// AMG's step times decay slightly as the GMRES loop warms up.
	amgStep := func(scale float64) func(int) float64 {
		return func(step int) float64 {
			return scale * (1 + 0.25*math.Exp(-float64(step)/3))
		}
	}
	// MILC: 20 fast warmup trajectories, then 60 slower ones.
	milcStep := func(warm, main float64) func(int) float64 {
		return func(step int) float64 {
			if step < 20 {
				return warm
			}
			return main
		}
	}
	milcVol := func(step int) float64 {
		if step < 20 {
			return 0.3
		}
		return 1
	}
	flat := func(step int) float64 { return 1 }
	// miniVite: the first Louvain phase is the most expensive; later outer
	// iterations shrink as communities stabilize.
	vitSteps := []float64{100, 74, 65, 60, 58, 57}
	vitStep := func(step int) float64 {
		if step >= len(vitSteps) {
			step = len(vitSteps) - 1
		}
		return vitSteps[step]
	}
	vitVol := func(step int) float64 { return vitStep(step) / vitSteps[0] }
	// UMT: sweep iterations grow as angles/groups converge.
	umtStep := func(step int) float64 { return 60 + 9*float64(step) }

	return []*Model{
		{
			App: AMG, Version: "1.1", Nodes: 128, RanksPerNode: 64,
			InputParams: "-P 32 16 16 -n 32 32 32 -problem 2",
			Steps:       20,
			BaseStep:    amgStep(21), VolumeFactor: flat,
			MPIFraction: 0.76, RoutineMix: amgMix,
			BytesPerNode: 3.4e10, MsgBytes: 512, ReqFraction: 0.85,
			IOBytesPerNode: 2e8,
			Sensitivity:    0.8, ComputeNoise: 0.01, RunNoise: 0.02, StepNoise: 0.05,
			Pattern: Stencil3D,
		},
		{
			App: AMG, Version: "1.1", Nodes: 512, RanksPerNode: 64,
			InputParams: "-P 32 32 32 -n 32 32 32 -problem 2",
			Steps:       20,
			BaseStep:    amgStep(35), VolumeFactor: flat,
			MPIFraction: 0.82, RoutineMix: amgMix,
			BytesPerNode: 3.8e10, MsgBytes: 512, ReqFraction: 0.85,
			IOBytesPerNode: 2e8,
			Sensitivity:    0.9, ComputeNoise: 0.01, RunNoise: 0.02, StepNoise: 0.05,
			Pattern: Stencil3D,
		},
		{
			App: MILC, Version: "7.8.0", Nodes: 128, RanksPerNode: 64,
			InputParams: "n128_large.in",
			Steps:       80,
			BaseStep:    milcStep(1.6, 6.3), VolumeFactor: milcVol,
			MPIFraction: 0.89, RoutineMix: milcMix,
			BytesPerNode: 5.5e10, MsgBytes: 65536, ReqFraction: 0.7,
			IOBytesPerNode: 1.5e9,
			Sensitivity:    1.4, ComputeNoise: 0.01, RunNoise: 0.02, StepNoise: 0.06,
			Pattern: Stencil4D,
		},
		{
			App: MILC, Version: "7.8.0", Nodes: 512, RanksPerNode: 64,
			InputParams: "n512_large.in",
			Steps:       80,
			BaseStep:    milcStep(1.8, 7.1), VolumeFactor: milcVol,
			MPIFraction: 0.89, RoutineMix: milcMix,
			BytesPerNode: 6.0e10, MsgBytes: 65536, ReqFraction: 0.7,
			IOBytesPerNode: 1.5e9,
			Sensitivity:    1.5, ComputeNoise: 0.01, RunNoise: 0.025, StepNoise: 0.06,
			Pattern: Stencil4D,
		},
		{
			App: MiniVite, Version: "1.0", Nodes: 128, RanksPerNode: 64,
			InputParams: "-f nlpkkt240.bin -t 1E-02 -i 6",
			Steps:       6,
			BaseStep:    vitStep, VolumeFactor: vitVol,
			MPIFraction: 0.98, RoutineMix: vitMix,
			BytesPerNode: 6.5e11, MsgBytes: 4096, ReqFraction: 0.8,
			IOBytesPerNode: 5e8,
			Sensitivity:    3.0, ComputeNoise: 0.02, RunNoise: 0.03, StepNoise: 0.05,
			Pattern: Irregular, IrregularFanout: 14,
		},
		{
			App: UMT, Version: "2.0", Nodes: 128, RanksPerNode: 64,
			InputParams: "custom_8k.cmg 4 2 4 4 4 0.04",
			Steps:       7,
			BaseStep:    umtStep, VolumeFactor: flat,
			MPIFraction: 0.30, RoutineMix: umtMix,
			BytesPerNode: 2.2e10, MsgBytes: 2048, ReqFraction: 0.9,
			IOBytesPerNode: 3e9,
			Sensitivity:    6.0, ComputeNoise: 0.015, RunNoise: 0.02, StepNoise: 0.06,
			Pattern: SweepCollective, IrregularFanout: 6,
		},
	}
}

// Find returns the registry model with the given app and node count, or
// nil when no such dataset exists.
func Find(app App, nodes int) *Model {
	for _, m := range Registry() {
		if m.App == app && m.Nodes == nodes {
			return m
		}
	}
	return nil
}

// Instance is a model placed onto concrete nodes: the run-specific state
// of one job, including its prebuilt traffic pattern.
type Instance struct {
	Model  *Model
	Mapper *mpi.RankMapper

	pattern   *mpi.Pattern
	runFactor float64 // per-run lognormal factor on step times

	// nominal step duration used to convert per-step volume into rates
	stepFlits   float64
	stepPackets float64
	ioFlits     float64
	ioPackets   float64
}

// BuiltPattern is the stream-independent half of an instantiation: the
// rank mapping and router-level traffic pattern a placement determines.
// Building it is the expensive part of Instantiate (stencil expansion,
// aggregation, downsampling), and it depends only on (model, topology,
// node list) — never on the run's random stream — so campaign schedulers
// build it once per placement and stamp out per-run Instances with
// InstantiateWith.
type BuiltPattern struct {
	Mapper  *mpi.RankMapper
	Pattern *mpi.Pattern
}

// BuildPattern places the model on the given nodes and builds its traffic
// pattern. Deterministic: no random stream is consumed.
func (m *Model) BuildPattern(topo *topology.Dragonfly, nodes []topology.NodeID) (*BuiltPattern, error) {
	if len(nodes) != m.Nodes {
		return nil, fmt.Errorf("apps: %s expects %d nodes, placement has %d", m.Name(), m.Nodes, len(nodes))
	}
	mapper := &mpi.RankMapper{Topo: topo, Nodes: nodes, RanksPerNode: m.RanksPerNode}
	b := mpi.NewPatternBuilder()
	switch m.Pattern {
	case Stencil3D:
		dims, err := FactorDims(m.NumRanks(), 3)
		if err != nil {
			return nil, err
		}
		if err := b.AddStencil3D(mapper, [3]int{dims[0], dims[1], dims[2]}); err != nil {
			return nil, err
		}
		// the multigrid hierarchy adds an allreduce per GMRES iteration
		b.AddAllreduce(mapper, 0.15)
	case Stencil4D:
		dims, err := FactorDims(m.NumRanks(), 4)
		if err != nil {
			return nil, err
		}
		if err := b.AddStencil4D(mapper, [4]int{dims[0], dims[1], dims[2], dims[3]}); err != nil {
			return nil, err
		}
		b.AddAllreduce(mapper, 0.05)
	case Irregular:
		b.AddIrregular(mapper, m.IrregularFanout, 1)
	case SweepCollective:
		b.AddIrregular(mapper, m.IrregularFanout, 0.4)
		b.AddAllreduce(mapper, 0.6)
	default:
		return nil, fmt.Errorf("apps: unknown pattern kind %d", m.Pattern)
	}
	if m.IOBytesPerNode > 0 {
		b.AddIOTraffic(mapper, 0.02)
	}

	// cap the router-pair count: beyond ~1500 pairs the extra pairs carry
	// negligible volume but dominate simulation cost
	return &BuiltPattern{Mapper: mapper, Pattern: b.Build().Downsample(1500)}, nil
}

// InstantiateWith stamps a run-specific Instance out of a prebuilt
// pattern. It consumes exactly one Normal draw from the stream — the
// per-run noise factor — which is the entire stream consumption of
// Instantiate, so Instantiate(topo, nodes, s) and
// InstantiateWith(BuildPattern(topo, nodes), s) leave s in identical
// states and produce identical Instances.
func (m *Model) InstantiateWith(bp *BuiltPattern, s *rng.Stream) *Instance {
	totalBytes := m.BytesPerNode * float64(m.Nodes)
	ioBytes := m.IOBytesPerNode * float64(m.Nodes)
	return &Instance{
		Model:       m,
		Mapper:      bp.Mapper,
		pattern:     bp.Pattern,
		runFactor:   math.Exp(s.Normal(0, m.RunNoise)),
		stepFlits:   mpi.FlitsFor(totalBytes),
		stepPackets: math.Ceil(totalBytes / m.MsgBytes), // message count drives endpoint processing
		ioFlits:     mpi.FlitsFor(ioBytes),
		ioPackets:   math.Ceil(ioBytes / (1 << 20)), // I/O moves in ~1 MiB transfers
	}
}

// Instantiate places the model on the given nodes and builds its traffic
// pattern. The stream provides the per-run noise factor and must be the
// run's dedicated stream.
func (m *Model) Instantiate(topo *topology.Dragonfly, nodes []topology.NodeID, s *rng.Stream) (*Instance, error) {
	bp, err := m.BuildPattern(topo, nodes)
	if err != nil {
		return nil, err
	}
	return m.InstantiateWith(bp, s), nil
}

// Routers returns the routers of the instance's placement.
func (inst *Instance) Routers() []topology.RouterID { return inst.Mapper.Routers() }

// StepFlows appends the instance's traffic for the given step to dst.
func (inst *Instance) StepFlows(step int, dst []netsim.Flow) []netsim.Flow {
	vf := inst.Model.VolumeFactor(step)
	return inst.pattern.Instantiate(
		(inst.stepFlits+inst.ioFlits)*vf,
		(inst.stepPackets+inst.ioPackets)*vf,
		inst.Model.ReqFraction, dst)
}

// StepDuration returns the nominal (contention-free) duration of a step,
// used as the simulation round length.
func (inst *Instance) StepDuration(step int) float64 {
	return inst.Model.BaseStep(step) * inst.runFactor
}

// StepResult is the outcome of one application time step.
type StepResult struct {
	Total   float64     // wall time of the step, seconds
	Compute float64     // time outside MPI
	MPI     mpi.Profile // per-routine MPI time
}

// StepTime converts the network slowdown of a step into the step's wall
// time and mpiP-style routine profile. slowdown ≥ 1 is the contention
// factor reported by the network simulator for the job's flows.
func (inst *Instance) StepTime(step int, slowdown float64, s *rng.Stream) StepResult {
	m := inst.Model
	base := m.BaseStep(step) * inst.runFactor
	baseCompute := base * (1 - m.MPIFraction)
	baseMPI := base * m.MPIFraction

	compute := baseCompute * math.Max(0.5, 1+m.ComputeNoise*s.NormFloat64())
	if slowdown < 1 {
		slowdown = 1
	}
	// bursty per-step variation on top of the congestion-driven trend
	burst := math.Exp(m.StepNoise * s.NormFloat64())
	mpiTime := baseMPI * (1 + m.Sensitivity*(slowdown-1)) * burst
	res := StepResult{
		Total:   compute + mpiTime,
		Compute: compute,
		MPI:     m.RoutineMix.Scaled(mpiTime),
	}
	return res
}

// FactorDims factors n into d balanced integer dimensions whose product is
// exactly n (largest factors first). Returns an error when n < 1.
func FactorDims(n, d int) ([]int, error) {
	if n < 1 || d < 1 {
		return nil, fmt.Errorf("apps: cannot factor %d into %d dims", n, d)
	}
	dims := make([]int, d)
	for i := range dims {
		dims[i] = 1
	}
	// distribute prime factors, always onto the currently smallest dim
	rem := n
	for p := 2; p*p <= rem; p++ {
		for rem%p == 0 {
			smallest := 0
			for i := 1; i < d; i++ {
				if dims[i] < dims[smallest] {
					smallest = i
				}
			}
			dims[smallest] *= p
			rem /= p
		}
	}
	if rem > 1 {
		smallest := 0
		for i := 1; i < d; i++ {
			if dims[i] < dims[smallest] {
				smallest = i
			}
		}
		dims[smallest] *= rem
	}
	// largest first for readability
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims, nil
}
