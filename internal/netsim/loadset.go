package netsim

import (
	"sort"

	"dragonvar/internal/routing"
	"dragonvar/internal/topology"
)

// LoadSet is the precomputed network footprint of a traffic pattern at
// unit intensity: per-link flit loads and per-router endpoint loads. A
// background job's pattern and routing do not change over its lifetime, so
// the simulator computes its LoadSet once at placement (with an even split
// over minimal path candidates) and then adds Scale×LoadSet per round. This
// makes a round's cost linear in the number of active background jobs'
// footprints instead of re-routing every flow of every job.
type LoadSet struct {
	// sparse link loads (flits at unit intensity), parallel slices
	LinkIDs   []topology.LinkID
	LinkFlits []float64

	// sparse per-router endpoint loads, parallel slices
	RouterIDs []topology.RouterID
	InjFlits  []float64
	EjFlits   []float64
	InjPkts   []float64
	EjPkts    []float64
	ArriveVC0 []float64 // request flits arriving at the router's NICs
	ArriveVC4 []float64 // response flits (incl. acks) arriving
}

// ScaledLoad pairs a LoadSet with the intensity to apply this round.
type ScaledLoad struct {
	Set   *LoadSet
	Scale float64
}

// BuildLoadSet routes the flows with an even split across their minimal
// path candidates and returns the aggregated unit-intensity footprint.
func (n *Network) BuildLoadSet(flows []Flow) *LoadSet {
	linkLoad := make(map[topology.LinkID]float64)
	type endpoint struct {
		injF, ejF, injP, ejP, vc0, vc4 float64
	}
	routers := make(map[topology.RouterID]*endpoint)
	ep := func(r topology.RouterID) *endpoint {
		e, ok := routers[r]
		if !ok {
			e = &endpoint{}
			routers[r] = e
		}
		return e
	}

	eng := routing.NewEngine(n.topo)
	for _, f := range flows {
		if f.Src == f.Dst || f.Flits <= 0 {
			continue
		}
		// even split over minimal candidates only: background traffic is
		// routed statically, Valiant detours are reserved for the
		// adaptively routed foreground flows. Paths are computed directly
		// rather than through the adaptive path cache: footprints are built
		// once per job, and caching their pairs would bloat the cache.
		minimal := eng.MinimalPaths(f.Src, f.Dst, 2, nil)
		share := f.Flits / float64(len(minimal))
		for _, p := range minimal {
			for _, l := range p.Links {
				linkLoad[l] += share
			}
		}
		src, dst := ep(f.Src), ep(f.Dst)
		src.injF += f.Flits
		dst.ejF += f.Flits
		src.injP += f.Packets
		dst.ejP += f.Packets
		req := clamp01(f.RequestFraction)
		dst.vc0 += f.Flits * req
		dst.vc4 += f.Flits * (1 - req)
		src.vc4 += f.Packets // acks
	}

	ls := &LoadSet{}
	for id := range linkLoad {
		ls.LinkIDs = append(ls.LinkIDs, id)
	}
	sort.Slice(ls.LinkIDs, func(i, j int) bool { return ls.LinkIDs[i] < ls.LinkIDs[j] })
	ls.LinkFlits = make([]float64, len(ls.LinkIDs))
	for i, id := range ls.LinkIDs {
		ls.LinkFlits[i] = linkLoad[id]
	}
	for r := range routers {
		ls.RouterIDs = append(ls.RouterIDs, r)
	}
	sort.Slice(ls.RouterIDs, func(i, j int) bool { return ls.RouterIDs[i] < ls.RouterIDs[j] })
	for _, r := range ls.RouterIDs {
		e := routers[r]
		ls.InjFlits = append(ls.InjFlits, e.injF)
		ls.EjFlits = append(ls.EjFlits, e.ejF)
		ls.InjPkts = append(ls.InjPkts, e.injP)
		ls.EjPkts = append(ls.EjPkts, e.ejP)
		ls.ArriveVC0 = append(ls.ArriveVC0, e.vc0)
		ls.ArriveVC4 = append(ls.ArriveVC4, e.vc4)
	}
	return ls
}

// NumLinks returns the number of links the footprint touches.
func (ls *LoadSet) NumLinks() int { return len(ls.LinkIDs) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
