package netsim

import (
	"testing"
	"testing/quick"

	"dragonvar/internal/rng"
	"dragonvar/internal/routing"
	"dragonvar/internal/topology"
)

// TestPropertyNoPolicyRoutesDeadLinks: under arbitrary link-failure sets,
// no routing policy's candidate paths traverse a dead link — the
// failed-link avoidance contract holds for minimal, valiant, adaptive, and
// feedback alike (feedback with live stall state, since its candidate
// enumeration must not depend on the stall view).
func TestPropertyNoPolicyRoutesDeadLinks(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	numLinks := len(d.Links)
	nr := d.Cfg.NumRouters()
	nets := map[string]*Network{}
	for _, name := range routing.PolicyNames() {
		cfg := DefaultConfig()
		cfg.Routing = name
		nets[name] = New(d, cfg, rng.New(77))
	}

	f := func(kill [5]uint16, pairs [4][2]uint16) bool {
		dead := map[topology.LinkID]bool{}
		for _, k := range kill {
			dead[topology.LinkID(int(k)%numLinks)] = true
		}
		for name, n := range nets {
			n.SetLinkHealth(func(l topology.LinkID) float64 {
				if dead[l] {
					return 0
				}
				return 1
			})
			if n.fb != nil {
				// non-trivial stall state must not leak dead links back in
				n.fb.Accumulate(0, 50, 100)
				n.fb.Commit()
			}
			for _, pr := range pairs {
				a := topology.RouterID(int(pr[0]) % nr)
				b := topology.RouterID(int(pr[1]) % nr)
				for _, p := range n.candidates(a, b) {
					for _, l := range p.Links {
						if dead[l] {
							t.Logf("policy %s routed pair %d->%d over dead link %d", name, a, b, l)
							return false
						}
					}
				}
			}
			n.SetLinkHealth(nil)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPolicyCachesAreIsolated: switching policies never serves another
// policy's cached candidate set, and ResetCache clears all of them.
func TestPolicyCachesAreIsolated(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Routing = "adaptive"
	n := New(d, cfg, rng.New(5))
	a, b := topology.RouterID(0), topology.RouterID(20)

	adaptive := n.candidates(a, b)
	if err := n.SetPolicy("minimal"); err != nil {
		t.Fatal(err)
	}
	minimal := n.candidates(a, b)
	if len(minimal) >= len(adaptive) {
		t.Fatalf("minimal candidate set (%d) not smaller than adaptive (%d) — cache crosstalk?",
			len(minimal), len(adaptive))
	}
	if err := n.SetPolicy("adaptive"); err != nil {
		t.Fatal(err)
	}
	again := n.candidates(a, b)
	if len(again) != len(adaptive) {
		t.Fatalf("adaptive candidates changed across a policy round-trip: %d != %d", len(again), len(adaptive))
	}
	n.ResetCache()
	if len(n.pathCaches[cacheKey{policy: "adaptive"}]) != 0 || len(n.pathCaches[cacheKey{policy: "minimal"}]) != 0 {
		t.Fatal("ResetCache left stale per-policy entries")
	}
}

// TestFeedbackPolicyDeterministicAcrossNetworks: two identically-seeded
// networks under the feedback policy, fed identical rounds, produce
// identical split weights — the per-network stall tracker keeps the
// feedback loop inside the determinism contract.
func TestFeedbackPolicyDeterministicAcrossNetworks(t *testing.T) {
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Routing = "feedback"
	mk := func() Result {
		n := New(d, cfg, rng.New(31))
		flows := []Flow{
			{Src: 0, Dst: 25, Flits: 5e8, Packets: 5e5, RequestFraction: 0.8},
			{Src: 3, Dst: 17, Flits: 2e8, Packets: 2e5, RequestFraction: 0.8},
		}
		var last Result
		for round := 0; round < 5; round++ {
			last = n.RunRound(flows, nil, 1.0)
		}
		return last
	}
	r1, r2 := mk(), mk()
	if len(r1.Slowdown) != len(r2.Slowdown) {
		t.Fatal("round shapes differ")
	}
	for i := range r1.Slowdown {
		if r1.Slowdown[i] != r2.Slowdown[i] {
			t.Fatalf("slowdown[%d]: %v != %v across identically-seeded networks", i, r1.Slowdown[i], r2.Slowdown[i])
		}
	}
	// and the feedback state actually accumulated (the loop is live)
	n := New(d, cfg, rng.New(31))
	if n.fb == nil {
		t.Fatal("feedback policy without a stall tracker")
	}
	n.RunRound([]Flow{{Src: 0, Dst: 25, Flits: 5e9, Packets: 5e6, RequestFraction: 0.8}}, nil, 1.0)
	sum := 0.0
	for g := 0; g < d.Cfg.Groups; g++ {
		sum += n.fb.Ratio(g)
	}
	if sum == 0 {
		t.Fatal("no stall signal accumulated after a heavily loaded round")
	}
	n.ResetFeedback()
	for g := 0; g < d.Cfg.Groups; g++ {
		if n.fb.Ratio(g) != 0 {
			t.Fatal("ResetFeedback left stall state behind")
		}
	}
}
