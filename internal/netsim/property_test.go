package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"dragonvar/internal/rng"
	"dragonvar/internal/topology"
)

// Property tests on simulator invariants for arbitrary traffic.

func propertyNet(t *testing.T) *Network {
	t.Helper()
	d, err := topology.New(topology.Small())
	if err != nil {
		t.Fatal(err)
	}
	return New(d, DefaultConfig(), rng.New(99))
}

func TestPropertySlowdownAtLeastOne(t *testing.T) {
	n := propertyNet(t)
	nr := n.Topology().Cfg.NumRouters()
	f := func(pairs [6][2]uint16, volumes [6]uint32) bool {
		var flows []Flow
		for i := range pairs {
			flows = append(flows, Flow{
				Src:             topology.RouterID(int(pairs[i][0]) % nr),
				Dst:             topology.RouterID(int(pairs[i][1]) % nr),
				Flits:           float64(volumes[i]) * 1e3,
				Packets:         float64(volumes[i]),
				RequestFraction: 0.8,
			})
		}
		res := n.RunRound(flows, nil, 1.0)
		for _, s := range res.Slowdown {
			if s < 1 || math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountersNeverNegative(t *testing.T) {
	n := propertyNet(t)
	d := n.Topology()
	nr := d.Cfg.NumRouters()
	zero := n.Board.Snapshot()
	all := make([]topology.RouterID, nr)
	for i := range all {
		all[i] = topology.RouterID(i)
	}
	f := func(a, b uint16, vol uint32) bool {
		flows := []Flow{{
			Src:             topology.RouterID(int(a) % nr),
			Dst:             topology.RouterID(int(b) % nr),
			Flits:           float64(vol) * 1e4,
			Packets:         float64(vol),
			RequestFraction: 0.5,
		}}
		n.RunRound(flows, nil, 1.0)
		delta := n.Board.DeltaSum(zero, all)
		for _, v := range delta {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreTrafficMoreSlowdown(t *testing.T) {
	// monotonicity: scaling all volumes up never speeds the first flow up
	n := propertyNet(t)
	d := n.Topology()
	f := func(seed int64) bool {
		s := rng.New(seed)
		nr := d.Cfg.NumRouters()
		src := topology.RouterID(s.Intn(nr))
		dst := topology.RouterID(s.Intn(nr))
		if src == dst {
			return true
		}
		base := s.Uniform(1e8, 2e9)
		mk := func(scale float64) float64 {
			flows := []Flow{
				{Src: src, Dst: dst, Flits: base * scale, Packets: base * scale / 1e3, RequestFraction: 1},
				{Src: src, Dst: dst, Flits: base * scale, Packets: base * scale / 1e3, RequestFraction: 1},
			}
			return n.RunRound(flows, nil, 1.0).Slowdown[0]
		}
		lo := mk(1)
		hi := mk(4)
		return hi >= lo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLoadSetScaleLinearity(t *testing.T) {
	// a LoadSet's link totals scale linearly with flow volume
	n := propertyNet(t)
	d := n.Topology()
	f := func(a, b uint16, rawVol uint32) bool {
		nr := d.Cfg.NumRouters()
		src := topology.RouterID(int(a) % nr)
		dst := topology.RouterID(int(b) % nr)
		if src == dst {
			return true
		}
		vol := float64(rawVol%1000000) + 1
		ls1 := n.BuildLoadSet([]Flow{{Src: src, Dst: dst, Flits: vol, Packets: 1, RequestFraction: 1}})
		ls2 := n.BuildLoadSet([]Flow{{Src: src, Dst: dst, Flits: 2 * vol, Packets: 2, RequestFraction: 1}})
		if ls1.NumLinks() != ls2.NumLinks() {
			return false
		}
		for i := range ls1.LinkFlits {
			if math.Abs(ls2.LinkFlits[i]-2*ls1.LinkFlits[i]) > 1e-6*ls1.LinkFlits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
