// Package netsim is the flow-level congestion simulator that stands in for
// the Aries hardware. For every simulation round (one application time step,
// or a fraction of one), the caller supplies the traffic demands of all jobs
// sharing the machine; the simulator routes them adaptively over the
// dragonfly, derives per-link utilization, converts contention into stall
// cycles and slowdown factors, and accumulates the Table II hardware
// counters into a counters.Board.
//
// Two properties of the real system are preserved because the analyses
// depend on them:
//
//  1. Slowdowns and counters come from the same mechanism — shared links.
//     A job is slowed exactly when the routers it can see record stalls,
//     which is what makes counter-based deviation prediction (§V-B) work.
//  2. Transit congestion (router tiles) and endpoint congestion (processor
//     tiles) are distinct. Flows with many packets per flit (small-message
//     traffic, e.g. AMG) saturate endpoint packet processing and show up in
//     PT_* stall counters; bandwidth-heavy flows (MILC) saturate link
//     bandwidth and show up in RT_* stall counters — the split Figure 9
//     reports.
package netsim

import (
	"fmt"
	"math"
	"time"

	"dragonvar/internal/counters"
	"dragonvar/internal/monitor"
	"dragonvar/internal/rng"
	"dragonvar/internal/routing"
	"dragonvar/internal/telemetry"
	"dragonvar/internal/topology"
)

// Config sets the physical constants of the simulated interconnect. The
// defaults (see DefaultConfig) are loosely calibrated to Aries: what matters
// for the paper's analyses is the relative balance between link bandwidth,
// injection bandwidth, and packet processing rate, not the absolute values.
type Config struct {
	// LinkBandwidth is the flit capacity of a green/black link, flits/s.
	LinkBandwidth float64
	// BlueBandwidth is the flit capacity of a global link, flits/s.
	BlueBandwidth float64
	// InjectionBandwidth is the NIC flit capacity of one router, flits/s
	// (all of the router's nodes combined).
	InjectionBandwidth float64
	// PacketRate is the endpoint message/transaction processing capacity of
	// one router, messages/s (all its NICs combined). Small-message traffic
	// exhausts this before it exhausts bandwidth.
	PacketRate float64
	// StallScale converts queueing delay into stall cycles per flit, so
	// counters have hardware-plausible magnitudes.
	StallScale float64
	// FlitsPerPacket is used to derive packet counts from flit counts for
	// the RT_PKT_TOT counter.
	FlitsPerPacket float64
	// MaxMinimal and MaxValiant bound the adaptive-routing candidate set.
	MaxMinimal int
	MaxValiant int
	// Adaptive enables load-aware path splitting. When false the simulator
	// always uses the first minimal path (the ablation of §VI's related
	// simulation studies: variability collapses onto fewer links and
	// hotspots form). Superseded by Routing; kept as the back-compat
	// default when Routing is empty.
	Adaptive bool
	// Routing names the routing policy ("minimal", "valiant", "adaptive",
	// "feedback" — see routing.PolicyNames). Empty falls back to the
	// Adaptive flag: true means "adaptive", false means "minimal".
	Routing string
	// NonMinimalBias scales the cost of non-minimal candidates in the
	// adaptive/feedback split (UGAL's threshold knob); 0 means neutral (1),
	// reproducing the historical split exactly.
	NonMinimalBias float64
	// RelaxationRounds is the number of route/measure iterations per round;
	// 2 is enough for the split weights to react to the round's own load.
	RelaxationRounds int
}

// PolicyName returns the effective routing-policy name: Routing when set,
// otherwise the Adaptive flag's historical meaning.
func (c Config) PolicyName() string {
	if c.Routing != "" {
		return c.Routing
	}
	if c.Adaptive {
		return "adaptive"
	}
	return "minimal"
}

// DefaultConfig returns the calibration used by the campaign.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth:      5.25e9, // ~5 GB/s expressed in flit units
		BlueBandwidth:      4.7e9,
		InjectionBandwidth: 8e9,
		PacketRate:         4e7,
		StallScale:         0.9,
		FlitsPerPacket:     12,
		MaxMinimal:         3,
		MaxValiant:         1,
		Adaptive:           true,
		RelaxationRounds:   2,
	}
}

// Flow is a directed traffic demand between two routers for one round.
type Flow struct {
	Src, Dst topology.RouterID
	// Flits is the data volume of the flow during the round.
	Flits float64
	// Packets is the number of messages/transactions carrying those flits.
	// High message counts at low flit volume model small-message traffic,
	// which is throttled by endpoint processing rather than bandwidth.
	Packets float64
	// RequestFraction is the share of the flow's flits on request virtual
	// channels (VC0); the rest are responses (VC4). Put/Send traffic is
	// request-dominated; Get-based protocols see more response flits.
	RequestFraction float64
}

// Result reports what one simulation round did to each flow and to the
// machine.
type Result struct {
	// Slowdown[i] is the contention delay factor (≥ 1) experienced by
	// flows[i]: the factor by which the flow's communication was stretched
	// relative to an idle machine.
	Slowdown []float64
	// MaxLinkUtilization is the highest per-link utilization observed.
	MaxLinkUtilization float64
	// MeanLinkUtilization averages utilization over links that carried
	// any traffic.
	MeanLinkUtilization float64
}

// Network simulates one machine. It is not safe for concurrent use.
type Network struct {
	topo *topology.Dragonfly
	eng  *routing.Engine
	cfg  Config

	// Board accumulates the cumulative hardware counters, like the real
	// chips do; consumers snapshot and diff it.
	Board *counters.Board

	s *rng.Stream

	// per-link state, reused across rounds
	linkLoad []float64 // flits assigned to each link this round
	linkCap  []float64 // current flit capacity (baseCap derated by faults)
	baseCap  []float64 // fault-free flit capacity of each link
	prevLoad []float64 // utilizations of the previous relaxation iteration
	bgLoad   []float64 // background (precomputed) flits per link this round

	// active-set tracking: only links/routers touched this round are reset
	// and scanned, so round cost scales with traffic, not machine size
	activeLinks   []topology.LinkID
	linkOnList    []bool
	activeRouters []topology.RouterID
	routerOnList  []bool

	// per-router endpoint state, reused across rounds
	injFlits []float64 // flits injected at each router this round
	ejFlits  []float64 // flits ejected at each router this round
	injPkts  []float64
	ejPkts   []float64

	// routing policy: candidate generation and split weighting are
	// delegated to one routing.Policy per network (SetPolicy switches)
	policy routing.Policy
	// loadOf adapts prevLoad for the policy's LoadFunc view; built once
	// (prevLoad is never reallocated)
	loadOf routing.LoadFunc
	// fb is the deterministic stall-feedback tracker feeding the
	// "feedback" policy; nil for every other policy
	fb *monitor.StallFeedback

	// path cache: flows between the same router pair recur every step.
	// Keyed per policy name — different policies build different candidate
	// sets for the same pair — with pathCache aliasing the active policy's
	// map. Fault-epoch invalidation (ResetCache) drops every policy's
	// entries.
	pathCaches map[string]map[uint64][]routing.Path
	pathCache  map[uint64][]routing.Path

	// telemetry handles, captured at construction; nil (no-op) when the
	// process runs without telemetry. Observation-only: nothing in the
	// simulation reads them, so results are identical with telemetry on.
	tmCacheHits   *telemetry.Counter
	tmCacheMisses *telemetry.Counter
	tmCacheInval  *telemetry.Counter
	tmRounds      *telemetry.Counter
	tmRoundFlits  *telemetry.Histogram
	tmRoundSecs   *telemetry.Histogram
	tmMaxUtil     *telemetry.Gauge
}

// New creates a network simulator over machine d. The stream drives path
// sampling and must be dedicated to this network.
func New(d *topology.Dragonfly, cfg Config, s *rng.Stream) *Network {
	n := &Network{
		topo:       d,
		eng:        routing.NewEngine(d),
		cfg:        cfg,
		Board:      counters.NewBoard(d.Cfg.NumRouters()),
		s:          s,
		linkLoad:   make([]float64, len(d.Links)),
		linkCap:    make([]float64, len(d.Links)),
		prevLoad:   make([]float64, len(d.Links)),
		bgLoad:     make([]float64, len(d.Links)),
		injFlits:   make([]float64, d.Cfg.NumRouters()),
		ejFlits:    make([]float64, d.Cfg.NumRouters()),
		injPkts:    make([]float64, d.Cfg.NumRouters()),
		ejPkts:     make([]float64, d.Cfg.NumRouters()),
		pathCaches: make(map[string]map[uint64][]routing.Path),

		tmCacheHits:   telemetry.C(telemetry.MNetsimCacheHits),
		tmCacheMisses: telemetry.C(telemetry.MNetsimCacheMisses),
		tmCacheInval:  telemetry.C(telemetry.MNetsimCacheInval),
		tmRounds:      telemetry.C(telemetry.MNetsimRounds),
		tmRoundFlits:  telemetry.H(telemetry.MNetsimRoundFlits, telemetry.CountBuckets),
		tmRoundSecs:   telemetry.H(telemetry.MNetsimRoundSecs, telemetry.SecondsBuckets),
		tmMaxUtil:     telemetry.G(telemetry.GNetsimMaxUtil),
	}
	n.linkOnList = make([]bool, len(d.Links))
	n.routerOnList = make([]bool, d.Cfg.NumRouters())
	n.baseCap = make([]float64, len(d.Links))
	for i, l := range d.Links {
		if l.Type == topology.Blue {
			n.baseCap[i] = cfg.BlueBandwidth
		} else {
			n.baseCap[i] = cfg.LinkBandwidth
		}
	}
	copy(n.linkCap, n.baseCap)
	n.loadOf = func(l topology.LinkID) float64 { return n.prevLoad[l] }
	if err := n.SetPolicy(cfg.PolicyName()); err != nil {
		// configs are validated where they enter the system (cluster.New,
		// the CLIs); by this point an unknown name is a programming error
		panic(err)
	}
	return n
}

// SetPolicy switches the network to the named routing policy. Each
// policy's candidate paths are cached separately, so switching back and
// forth never mixes candidate sets; fault-epoch invalidation still clears
// every policy's cache. The "feedback" policy additionally attaches a
// deterministic per-network stall tracker (see monitor.StallFeedback),
// reset per run via ResetFeedback.
func (n *Network) SetPolicy(name string) error {
	pcfg := routing.PolicyConfig{
		MaxMinimal:     n.cfg.MaxMinimal,
		MaxValiant:     n.cfg.MaxValiant,
		NonMinimalBias: n.cfg.NonMinimalBias,
	}
	if name == "feedback" {
		if n.fb == nil {
			n.fb = monitor.NewStallFeedback(n.topo.Cfg.Groups, 0)
		}
		fb := n.fb
		pcfg.GroupStall = func(g topology.GroupID) float64 { return fb.Ratio(int(g)) }
	}
	pol, err := routing.NewPolicy(name, pcfg)
	if err != nil {
		return fmt.Errorf("netsim: %w", err)
	}
	n.policy = pol
	if name != "feedback" {
		n.fb = nil
	}
	cache, ok := n.pathCaches[name]
	if !ok {
		cache = make(map[uint64][]routing.Path)
		n.pathCaches[name] = cache
	}
	n.pathCache = cache
	return nil
}

// Policy returns the name of the active routing policy.
func (n *Network) Policy() string { return n.policy.Name() }

// ResetFeedback clears the stall-feedback state read by the "feedback"
// policy; a no-op under any other policy. Campaign workers call this next
// to Board.Reset before every run, so a run's feedback trajectory — like
// its counters — depends only on the run itself.
func (n *Network) ResetFeedback() {
	if n.fb != nil {
		n.fb.Reset()
	}
}

// SetLinkHealth applies a fault view to the fabric: each link's capacity
// becomes baseCap · factor(link), links with factor ≤ 0 are dead and are
// avoided by all subsequent route resolution, and the path cache is
// invalidated (routes picked under the old fault state may now traverse
// dead links). Pass nil to restore the fault-free machine. The caller
// re-resolves routes after changing health; stale RoutedFlows remain
// usable but their traffic across dead links is priced at effectively
// infinite congestion rather than dropped.
func (n *Network) SetLinkHealth(factor func(topology.LinkID) float64) {
	if factor == nil {
		copy(n.linkCap, n.baseCap)
		n.eng.SetAvoid(nil)
		n.ResetCache()
		return
	}
	anyDead := false
	for i := range n.linkCap {
		f := factor(topology.LinkID(i))
		if f < 0 {
			f = 0
		} else if f > 1 {
			f = 1
		}
		n.linkCap[i] = n.baseCap[i] * f
		if n.linkCap[i] <= 0 {
			anyDead = true
		}
	}
	if anyDead {
		n.eng.SetAvoid(func(l topology.LinkID) bool { return n.linkCap[l] <= 0 })
	} else {
		n.eng.SetAvoid(nil)
	}
	n.ResetCache()
}

// Topology returns the machine being simulated.
func (n *Network) Topology() *topology.Dragonfly { return n.topo }

// Config returns the simulator configuration.
func (n *Network) Config() Config { return n.cfg }

// pairKey builds the path-cache key.
func pairKey(a, b topology.RouterID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// candidates returns the cached adaptive-routing candidate set for a pair.
// Path sampling uses a per-pair stream split from n.s rather than n.s
// itself, so the candidate set for a pair depends only on the network's
// seed and the pair — never on which pairs were resolved before it. This
// is what lets runs be simulated in any order (or sharded across workers,
// each with an identically-seeded Network) with bit-identical results:
// a cache hit and a recomputation always return the same paths.
func (n *Network) candidates(a, b topology.RouterID) []routing.Path {
	key := pairKey(a, b)
	if p, ok := n.pathCache[key]; ok {
		n.tmCacheHits.Add(1)
		return p
	}
	n.tmCacheMisses.Add(1)
	p := n.policy.Candidates(n.eng, a, b, n.s.Split(fmt.Sprintf("pair-%d-%d", a, b)))
	n.pathCache[key] = p
	return p
}

// deadUtil is the utilization assigned to a dead (zero-capacity) link so
// that any stale route still crossing it is priced out by the adaptive
// split and shows up as an enormous — but finite — slowdown.
const deadUtil = 1e6

// queueDelay is the congestion delay at utilization u: an M/M/1-style
// convex curve, clamped so overload stays finite but very painful.
func queueDelay(u float64) float64 {
	if u <= 0 {
		return 0
	}
	const uMax = 0.97
	if u > uMax {
		// linear continuation beyond the pole so overload keeps ordering
		base := uMax / (1 - uMax)
		return base + (u-uMax)*25
	}
	return u / (1 - u)
}

// touchLink marks a link as active this round.
func (n *Network) touchLink(l topology.LinkID) {
	if !n.linkOnList[l] {
		n.linkOnList[l] = true
		n.activeLinks = append(n.activeLinks, l)
	}
}

// touchRouter marks a router as active this round.
func (n *Network) touchRouter(r topology.RouterID) {
	if !n.routerOnList[r] {
		n.routerOnList[r] = true
		n.activeRouters = append(n.activeRouters, r)
	}
}

// RoutedFlows holds the resolved adaptive-routing candidate sets for a
// fixed list of flows. An application's router-pair list does not change
// across time steps, so callers resolve once per run and reuse.
type RoutedFlows struct {
	paths   [][]routing.Path
	weights [][]float64
}

// Resolve computes (and caches) the candidate paths for each flow.
func (n *Network) Resolve(flows []Flow) *RoutedFlows {
	r := &RoutedFlows{
		paths:   make([][]routing.Path, len(flows)),
		weights: make([][]float64, len(flows)),
	}
	for i, f := range flows {
		r.paths[i] = n.candidates(f.Src, f.Dst)
		r.weights[i] = make([]float64, len(r.paths[i]))
	}
	return r
}

// ResolveHealthy is Resolve for a faulted fabric: it errors (wrapping
// routing.ErrPartitioned) when any flow's endpoints are disconnected by
// link failures instead of silently returning an unroutable flow.
func (n *Network) ResolveHealthy(flows []Flow) (*RoutedFlows, error) {
	r := &RoutedFlows{
		paths:   make([][]routing.Path, len(flows)),
		weights: make([][]float64, len(flows)),
	}
	for i, f := range flows {
		paths := n.candidates(f.Src, f.Dst)
		if len(paths) == 0 && f.Src != f.Dst {
			return nil, fmt.Errorf("netsim: flow %d (router %d → %d): %w", i, f.Src, f.Dst, routing.ErrPartitioned)
		}
		r.paths[i] = paths
		r.weights[i] = make([]float64, len(paths))
	}
	return r, nil
}

// RunRound simulates `duration` seconds of traffic: the adaptively routed
// foreground flows plus any number of precomputed background footprints
// (production jobs whose routing was fixed at placement). Returns the
// per-flow slowdowns of the foreground flows; counters for all traffic
// accumulate into n.Board.
func (n *Network) RunRound(flows []Flow, background []ScaledLoad, duration float64) Result {
	return n.RunRoundRouted(flows, n.Resolve(flows), background, duration)
}

// RunRoundRouted is RunRound with pre-resolved foreground routes; flows
// must match the list the routes were resolved for pair by pair.
func (n *Network) RunRoundRouted(flows []Flow, routed *RoutedFlows, background []ScaledLoad, duration float64) Result {
	if duration <= 0 {
		duration = 1
	}
	if n.tmRounds != nil { // telemetry on: per-round throughput accounting
		roundStart := time.Now()
		defer n.tmRoundSecs.ObserveSince(roundStart)
		n.tmRounds.Add(1)
		var offered float64
		for _, f := range flows {
			offered += f.Flits
		}
		n.tmRoundFlits.Observe(offered)
	}

	// reset the previous round's active state
	for _, l := range n.activeLinks {
		n.linkLoad[l] = 0
		n.bgLoad[l] = 0
		n.prevLoad[l] = 0
		n.linkOnList[l] = false
	}
	n.activeLinks = n.activeLinks[:0]
	for _, r := range n.activeRouters {
		n.injFlits[r] = 0
		n.ejFlits[r] = 0
		n.injPkts[r] = 0
		n.ejPkts[r] = 0
		n.routerOnList[r] = false
	}
	n.activeRouters = n.activeRouters[:0]

	// fold in the background footprints: link loads, endpoint loads, and
	// the endpoint flit-arrival counters
	for _, bg := range background {
		if bg.Set == nil || bg.Scale <= 0 {
			continue
		}
		s := bg.Scale
		for i, id := range bg.Set.LinkIDs {
			if n.linkCap[id] <= 0 {
				// the link is dead; its static background footprint was
				// routed before the fault and simply does not flow
				continue
			}
			n.bgLoad[id] += bg.Set.LinkFlits[i] * s
			n.touchLink(id)
		}
		for i, r := range bg.Set.RouterIDs {
			n.injFlits[r] += bg.Set.InjFlits[i] * s
			n.ejFlits[r] += bg.Set.EjFlits[i] * s
			n.injPkts[r] += bg.Set.InjPkts[i] * s
			n.ejPkts[r] += bg.Set.EjPkts[i] * s
			n.touchRouter(r)
			rc := &n.Board.PerRouter[r]
			rc[counters.PTFlitVC0] += bg.Set.ArriveVC0[i] * s
			rc[counters.PTFlitVC4] += bg.Set.ArriveVC4[i] * s
			rc[counters.PTFlitTot] += (bg.Set.ArriveVC0[i] + bg.Set.ArriveVC4[i]) * s
		}
	}
	// mark the foreground's links active up front so resets stay complete
	for i, f := range flows {
		if f.Src == f.Dst || f.Flits <= 0 {
			continue
		}
		for _, p := range routed.paths[i] {
			for _, l := range p.Links {
				n.touchLink(l)
			}
		}
	}
	// the adaptive foreground reacts to the background from iteration 0
	invDur := 1 / duration
	for _, l := range n.activeLinks {
		if n.linkCap[l] <= 0 {
			n.prevLoad[l] = deadUtil
			continue
		}
		n.prevLoad[l] = n.bgLoad[l] / n.linkCap[l] * invDur
	}

	rounds := n.cfg.RelaxationRounds
	if rounds < 1 {
		rounds = 1
	}
	for it := 0; it < rounds; it++ {
		for _, l := range n.activeLinks {
			n.linkLoad[l] = n.bgLoad[l]
		}
		for i, f := range flows {
			if f.Src == f.Dst || f.Flits <= 0 {
				continue
			}
			paths := routed.paths[i]
			weights := routed.weights[i]
			// the policy's load-aware split; for the adaptive policy with
			// neutral bias this reproduces the historical inverse-cost
			// split bit for bit
			n.policy.SplitWeights(n.eng, paths, n.loadOf, weights)
			for j, p := range paths {
				share := f.Flits * weights[j]
				if share == 0 {
					continue
				}
				for _, l := range p.Links {
					if n.linkCap[l] <= 0 {
						continue // dead link carries nothing
					}
					n.linkLoad[l] += share
				}
			}
		}
		// feed utilizations back for the next iteration
		for _, l := range n.activeLinks {
			if n.linkCap[l] <= 0 {
				n.prevLoad[l] = deadUtil
				continue
			}
			n.prevLoad[l] = n.linkLoad[l] / n.linkCap[l] * invDur
		}
	}

	// Endpoint loads.
	for _, f := range flows {
		if f.Flits <= 0 {
			continue
		}
		n.injFlits[f.Src] += f.Flits
		n.ejFlits[f.Dst] += f.Flits
		n.injPkts[f.Src] += f.Packets
		n.ejPkts[f.Dst] += f.Packets
		n.touchRouter(f.Src)
		n.touchRouter(f.Dst)
	}

	// Utilizations and counter accumulation.
	util := n.prevLoad // final per-link utilization
	res := Result{Slowdown: make([]float64, len(flows))}
	var utilSum float64
	var utilN int
	for _, l := range n.activeLinks {
		u := util[l]
		if u > res.MaxLinkUtilization {
			res.MaxLinkUtilization = u
		}
		if n.linkLoad[l] > 0 {
			utilSum += u
			utilN++
		}
	}
	if utilN > 0 {
		res.MeanLinkUtilization = utilSum / float64(utilN)
	}
	n.tmMaxUtil.Set(res.MaxLinkUtilization)

	n.accumulateTransitCounters(duration)
	n.accumulateEndpointCounters(flows, duration)
	if n.fb != nil {
		// fold this round's per-group stall/flit deltas into the feedback
		// EWMAs; the feedback policy reads them from the NEXT round on, so
		// the loop is causal and the round's own result stays a pure
		// function of its inputs
		n.fb.Commit()
	}

	// Per-flow slowdowns: transit queueing along the flow's weighted paths
	// plus endpoint queueing at its source and destination.
	injCap := n.cfg.InjectionBandwidth * duration
	pktCap := n.cfg.PacketRate * duration
	for i, f := range flows {
		if f.Src == f.Dst || f.Flits <= 0 {
			res.Slowdown[i] = 1
			continue
		}
		var transit float64
		for j, p := range routed.paths[i] {
			w := routed.weights[i][j]
			if w == 0 {
				continue
			}
			var pathDelay float64
			for _, l := range p.Links {
				pathDelay += queueDelay(util[l])
			}
			// normalize by hops so the value is delay per traversed link
			transit += w * pathDelay / float64(len(p.Links))
		}
		endFlit := queueDelay(n.injFlits[f.Src]/injCap) + queueDelay(n.ejFlits[f.Dst]/injCap)
		endPkt := queueDelay(n.injPkts[f.Src]/pktCap) + queueDelay(n.ejPkts[f.Dst]/pktCap)
		res.Slowdown[i] = 1 + 0.8*transit + 0.5*endFlit + 0.5*endPkt

		// Backpressure echo: credit exhaustion on congested downstream
		// links propagates stalls back to the tiles of the routers the
		// flow's packets sit in — which is why per-job counter collection
		// works on the real machine. The echo is attenuated: backpressure
		// decays over hops, so remote congestion is only partially visible
		// in a job's own counters (leaving room for the io/sys features of
		// §V-C to add information).
		echo := 0.4 * f.Flits * transit * n.cfg.StallScale
		if echo > 0 {
			src := &n.Board.PerRouter[f.Src]
			dst := &n.Board.PerRouter[f.Dst]
			half := echo / 2
			src[counters.RTRBStl] += half
			dst[counters.RTRBStl] += half
			twoX := half * math.Min(transit, 1)
			src[counters.RTRB2xUsg] += twoX
			dst[counters.RTRB2xUsg] += twoX
		}
	}
	return res
}

// accumulateTransitCounters writes the RT_* counters for this round: each
// link's traffic is received by both endpoint routers' router tiles (we
// split the undirected aggregate evenly; flow direction is already encoded
// in the endpoint counters).
func (n *Network) accumulateTransitCounters(duration float64) {
	b := n.Board
	for _, i := range n.activeLinks {
		load := n.linkLoad[i]
		if load == 0 || n.linkCap[i] <= 0 {
			continue
		}
		l := n.topo.Links[i]
		u := load / (n.linkCap[i] * duration)
		stalls := load * queueDelay(u) * n.cfg.StallScale
		half := load / 2
		pkts := load / n.cfg.FlitsPerPacket / 2
		stHalf := stalls / 2
		if n.fb != nil {
			// the same Δstall/Δflit the monitor's group rollup consumes
			n.fb.Accumulate(int(n.topo.Group(l.A)), stHalf, half)
			n.fb.Accumulate(int(n.topo.Group(l.B)), stHalf, half)
		}
		// 2X usage grows superlinearly with utilization: both stall events
		// in a cycle require sustained backpressure.
		twoX := stHalf * math.Min(u, 1)
		for _, r := range [2]topology.RouterID{l.A, l.B} {
			rc := &b.PerRouter[r]
			rc[counters.RTFlitTot] += half
			rc[counters.RTPktTot] += pkts
			rc[counters.RTRBStl] += stHalf
			rc[counters.RTRB2xUsg] += twoX
		}
	}
}

// accumulateEndpointCounters writes the PT_* counters: processor tiles see
// the traffic of their own NICs, split over request (VC0) and response
// (VC4) virtual channels, and stall when injection bandwidth or packet
// processing saturates.
func (n *Network) accumulateEndpointCounters(flows []Flow, duration float64) {
	b := n.Board
	injCap := n.cfg.InjectionBandwidth * duration
	pktCap := n.cfg.PacketRate * duration

	// flit arrivals per router, split by VC
	for _, f := range flows {
		if f.Flits <= 0 {
			continue
		}
		req := f.RequestFraction
		if req < 0 {
			req = 0
		} else if req > 1 {
			req = 1
		}
		// data arrives at the destination's processor tiles
		dst := &b.PerRouter[f.Dst]
		dst[counters.PTFlitVC0] += f.Flits * req
		dst[counters.PTFlitVC4] += f.Flits * (1 - req)
		dst[counters.PTFlitTot] += f.Flits
		// responses/acks flow back to the source's processor tiles
		src := &b.PerRouter[f.Src]
		ack := f.Packets // one ack-sized response per packet
		src[counters.PTFlitVC4] += ack
		src[counters.PTFlitTot] += ack
	}

	for _, r := range n.activeRouters {
		flits := n.injFlits[r] + n.ejFlits[r]
		pkts := n.injPkts[r] + n.ejPkts[r]
		if flits == 0 && pkts == 0 {
			continue
		}
		uFlit := (n.injFlits[r] + n.ejFlits[r]) / (2 * injCap)
		uPkt := (n.injPkts[r] + n.ejPkts[r]) / (2 * pktCap)
		// Request-channel stalls are driven by packet processing (small
		// messages); response-channel stalls by bandwidth pressure.
		stallRq := pkts * queueDelay(uPkt) * n.cfg.StallScale
		stallRs := flits * queueDelay(uFlit) * n.cfg.StallScale / n.cfg.FlitsPerPacket
		rc := &b.PerRouter[r]
		rc[counters.PTRBStlRq] += stallRq
		rc[counters.PTRBStlRs] += stallRs
		rc[counters.PTCBStlRq] += 0.6 * stallRq
		rc[counters.PTCBStlRs] += 0.6 * stallRs
		rc[counters.PTRB2xUsg] += stallRq * math.Min(uPkt, 1)
		// Table II: PT_PKT_TOT is derived as PT_RB_STL_RQ + PT_RB_STL_RS.
		rc[counters.PTPktTot] += stallRq + stallRs
	}
}

// ResetCache clears every policy's path cache — fault-epoch changes
// invalidate candidates no matter which policy computed them. Also call
// between campaigns if memory is a concern (the cache grows with the
// number of distinct router pairs seen).
func (n *Network) ResetCache() {
	n.tmCacheInval.Add(1)
	for name := range n.pathCaches {
		delete(n.pathCaches, name)
	}
	n.pathCache = make(map[uint64][]routing.Path)
	n.pathCaches[n.policy.Name()] = n.pathCache
}
